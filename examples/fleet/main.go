// Fleet: demonstrate the multi-tenant fair-share layer — two tenants with
// unequal quotas share a 2-GPU fleet, a zero-quota scavenger rides the idle
// capacity, and the time-aware scheduler keeps allocations proportional to
// deserved shares while DASE slowdown estimates steer job placement.
package main

import (
	"fmt"
	"log"

	"dasesim/internal/config"
	"dasesim/internal/fleet"
	"dasesim/internal/kernels"
)

func main() {
	f, err := fleet.New(fleet.Config{
		GPUs: 2,
		GPU:  config.Default(),
		Tenants: []fleet.TenantSpec{
			{Name: "prod", QuotaSMs: 24, Weight: 1}, // deserves 3/4 of the fleet
			{Name: "batch", QuotaSMs: 8, Weight: 1}, // deserves 1/4
			{Name: "scav", QuotaSMs: 0, Weight: 0},  // idle capacity only
		},
		WindowIntervals: 6,
		Seed:            1,
	})
	if err != nil {
		log.Fatal(err)
	}

	// A steady stream of jobs: prod submits bandwidth-hungry streamers,
	// batch cache-sensitive kernels, the scavenger tiny fillers.
	bs, _ := kernels.ByAbbr("BS")
	ct, _ := kernels.ByAbbr("CT")
	sc, _ := kernels.ByAbbr("SC")
	jobs := []fleet.JobSpec{
		{ID: "prod-0", Tenant: "prod", Kernel: bs, MinSMs: 8, Work: 400_000},
		{ID: "prod-1", Tenant: "prod", Kernel: ct, MinSMs: 6, Work: 400_000},
		{ID: "prod-2", Tenant: "prod", Kernel: bs, MinSMs: 8, Work: 300_000},
		{ID: "batch-0", Tenant: "batch", Kernel: ct, MinSMs: 4, Work: 300_000},
		{ID: "batch-1", Tenant: "batch", Kernel: sc, MinSMs: 4, Work: 300_000},
		{ID: "scav-0", Tenant: "scav", Kernel: sc, MinSMs: 1, Work: 200_000},
		{ID: "scav-1", Tenant: "scav", Kernel: sc, MinSMs: 1, Work: 200_000},
	}
	for _, js := range jobs {
		if err := f.Submit(js); err != nil {
			log.Fatal(err)
		}
	}

	for i := 0; i < 12 && f.QueuedJobs()+f.RunningJobs() > 0; i++ {
		if err := f.Tick(); err != nil {
			log.Fatal(err)
		}
	}

	rec := f.Records()
	if err := fleet.CheckAll(rec, f.Capacity(), config.Default().NumSMs); err != nil {
		log.Fatalf("fairness invariant violated: %v", err)
	}

	fmt.Println("interval  prod  batch  scav  idle")
	for _, r := range rec {
		alloc := map[string]int{}
		for _, t := range r.Tenants {
			alloc[t.Name] = t.AllocatedSMs
		}
		fmt.Printf("%8d  %4d  %5d  %4d  %4d\n",
			r.Interval, alloc["prod"], alloc["batch"], alloc["scav"], r.IdleSMs)
	}

	s := fleet.Summarize(rec, f.Capacity())
	fmt.Printf("\nJain fairness index over deserved shares: %.4f\n", s.JainIndex)
	for _, t := range s.Tenants {
		fmt.Printf("  %-6s quota %2d  allocated %4d SM-intervals  mean deserved %6.2f\n",
			t.Name, t.QuotaSMs, t.TotalSMs, t.MeanDeserved)
	}
	fmt.Println("\nall fairness invariants hold (work conservation, quota safety, accounting)")
}
