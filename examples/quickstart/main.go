// Quickstart: run two kernels concurrently on the simulated GPU, measure
// their actual slowdowns against alone runs, and compare with DASE's
// run-time estimates.
package main

import (
	"fmt"
	"log"

	"dasesim"
)

func main() {
	cfg := dasesim.DefaultConfig()
	const cycles = 300_000

	sb, ok := dasesim.KernelByAbbr("SB")
	if !ok {
		log.Fatal("kernel SB not found")
	}
	sd, ok := dasesim.KernelByAbbr("SD")
	if !ok {
		log.Fatal("kernel SD not found")
	}
	apps := []dasesim.KernelProfile{sb, sd}

	// Shared run: even SM split (8+8 of 16).
	shared, err := dasesim.RunShared(cfg, apps, dasesim.EvenAllocation(cfg.NumSMs, 2), cycles, 1)
	if err != nil {
		log.Fatal(err)
	}

	// Alone baselines (each kernel on all 16 SMs).
	var aloneIPC []float64
	for _, p := range apps {
		alone, err := dasesim.RunAlone(cfg, p, cycles, 1)
		if err != nil {
			log.Fatal(err)
		}
		aloneIPC = append(aloneIPC, alone.Apps[0].IPC)
	}

	// DASE's run-time estimates, averaged over the run's intervals.
	est := dasesim.AverageEstimates(dasesim.NewDASE(), shared.Snapshots, 1)

	fmt.Println("app  IPC(alone)  IPC(shared)  slowdown  DASE estimate  error")
	var slowdowns []float64
	for i, a := range shared.Apps {
		actual := dasesim.Slowdown(aloneIPC[i], a.IPC)
		slowdowns = append(slowdowns, actual)
		fmt.Printf("%-3s  %10.2f  %11.2f  %8.2f  %13.2f  %5.1f%%\n",
			a.Abbr, aloneIPC[i], a.IPC, actual, est[i],
			dasesim.EstimationError(est[i], actual)*100)
	}
	fmt.Printf("\nunfairness = %.2f (ideal 1.00), harmonic speedup = %.2f\n",
		dasesim.Unfairness(slowdowns), dasesim.HarmonicSpeedup(slowdowns))
}
