// Slowdown: compare the three run-time slowdown estimators (DASE, MISE,
// ASM) on a four-application mix, interval by interval — the scenario of
// the paper's Figure 6, where the CPU-born models fall apart because no
// application can be credited for the SMs it would have alone.
//
// Each estimator is evaluated on the system it is designed for: DASE reads
// passive counters from a plain FR-FCFS run; MISE/ASM need the rotating
// highest-priority memory-controller epochs, so they read a second run with
// epochs enabled and are judged against that run's actual slowdowns.
package main

import (
	"fmt"
	"log"

	"dasesim"
)

func main() {
	cfg := dasesim.DefaultConfig()
	const cycles = 300_000

	var apps []dasesim.KernelProfile
	for _, abbr := range []string{"SB", "SD", "CT", "QR"} {
		p, ok := dasesim.KernelByAbbr(abbr)
		if !ok {
			log.Fatalf("kernel %s not found", abbr)
		}
		apps = append(apps, p)
	}
	alloc := dasesim.EvenAllocation(cfg.NumSMs, 4)

	plain, err := dasesim.RunShared(cfg, apps, alloc, cycles, 1)
	if err != nil {
		log.Fatal(err)
	}
	epochs, err := dasesim.RunSharedWithEpochs(cfg, apps, alloc, cycles, 1)
	if err != nil {
		log.Fatal(err)
	}

	aloneIPC := make([]float64, len(apps))
	for i, p := range apps {
		alone, err := dasesim.RunAlone(cfg, p, cycles, 1)
		if err != nil {
			log.Fatal(err)
		}
		aloneIPC[i] = alone.Apps[0].IPC
	}

	dase := dasesim.NewDASE()
	fmt.Println("per-interval DASE estimates (slowdown per app):")
	for si := range plain.Snapshots {
		if si == 0 {
			continue // warm-up interval
		}
		vals := dase.Estimate(&plain.Snapshots[si])
		fmt.Printf("  interval %d:", si)
		for i, v := range vals {
			fmt.Printf("  %s=%.2f", apps[i].Abbr, v)
		}
		fmt.Println()
	}

	type evalCase struct {
		est dasesim.Estimator
		run *dasesim.Result
	}
	cases := []evalCase{
		{dase, plain},
		{dasesim.NewMISE(), epochs},
		{dasesim.NewASM(), epochs},
	}

	fmt.Println("\napp  actual   DASE    MISE    ASM    (each vs its own system's actual)")
	for i := range apps {
		actual := dasesim.Slowdown(aloneIPC[i], plain.Apps[i].IPC)
		fmt.Printf("%-3s  %6.2f", apps[i].Abbr, actual)
		for _, c := range cases {
			v := dasesim.AverageEstimates(c.est, c.run.Snapshots, 1)[i]
			fmt.Printf("  %5.2f", v)
		}
		fmt.Println()
	}

	fmt.Println("\nmean |error|:")
	for _, c := range cases {
		vals := dasesim.AverageEstimates(c.est, c.run.Snapshots, 1)
		var sum float64
		for i := range vals {
			actual := dasesim.Slowdown(aloneIPC[i], c.run.Apps[i].IPC)
			sum += dasesim.EstimationError(vals[i], actual)
		}
		fmt.Printf("  %-5s %.1f%%\n", c.est.Name(), sum/float64(len(vals))*100)
	}
}
