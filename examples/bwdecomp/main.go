// Bwdecomp: reproduce the paper's motivation analysis (Figure 2) for any
// kernel pair — decompose the DRAM data-bus bandwidth into per-application
// shares, timing-constraint waste and idle time, and show how the victim's
// share collapses relative to running alone.
package main

import (
	"flag"
	"fmt"
	"log"

	"dasesim"
)

func main() {
	first := flag.String("a", "SA", "first kernel (abbreviation)")
	second := flag.String("b", "SD", "second kernel (treated as the victim)")
	cycles := flag.Uint64("cycles", 300_000, "shared simulation cycles")
	flag.Parse()

	cfg := dasesim.DefaultConfig()
	a, ok := dasesim.KernelByAbbr(*first)
	if !ok {
		log.Fatalf("unknown kernel %q (have %v)", *first, dasesim.KernelNames())
	}
	b, ok := dasesim.KernelByAbbr(*second)
	if !ok {
		log.Fatalf("unknown kernel %q (have %v)", *second, dasesim.KernelNames())
	}

	shared, err := dasesim.RunShared(cfg, []dasesim.KernelProfile{a, b},
		dasesim.EvenAllocation(cfg.NumSMs, 2), *cycles, 1)
	if err != nil {
		log.Fatal(err)
	}
	bAlone, err := dasesim.RunAlone(cfg, b, *cycles, 1)
	if err != nil {
		log.Fatal(err)
	}
	aAlone, err := dasesim.RunAlone(cfg, a, *cycles, 1)
	if err != nil {
		log.Fatal(err)
	}

	wasted := float64(shared.BusWasted) / float64(shared.BusCycles)
	idle := float64(shared.BusIdle) / float64(shared.BusCycles)

	fmt.Printf("DRAM bandwidth decomposition, %s+%s shared (even split):\n", a.Abbr, b.Abbr)
	fmt.Printf("  %-3s data   %5.1f%%   (alone: %5.1f%%)\n", a.Abbr, shared.Apps[0].BWUtil*100, aAlone.Apps[0].BWUtil*100)
	fmt.Printf("  %-3s data   %5.1f%%   (alone: %5.1f%%)\n", b.Abbr, shared.Apps[1].BWUtil*100, bAlone.Apps[0].BWUtil*100)
	fmt.Printf("  wasted-BW  %5.1f%%   (DRAM timing constraints, no data moving)\n", wasted*100)
	fmt.Printf("  idle-BW    %5.1f%%\n", idle*100)

	share := shared.Apps[1].BWUtil / bAlone.Apps[0].BWUtil
	slow := dasesim.Slowdown(bAlone.Apps[0].IPC, shared.Apps[1].IPC)
	switch {
	case share < 1:
		fmt.Printf("\n%s keeps only %.1f%% of its alone bandwidth; its measured slowdown is %.2fx\n",
			b.Abbr, share*100, slow)
		fmt.Printf("(the paper's observation: the inverse bandwidth ratio 1/%.3f = %.2f tracks the slowdown)\n",
			share, 1/share)
	default:
		fmt.Printf("\n%s draws %.2fx MORE DRAM bandwidth than alone yet still slows down %.2fx:\n",
			b.Abbr, share, slow)
		fmt.Println("its working set was evicted from the shared L2 by the co-runner, so the extra")
		fmt.Println("traffic is contention misses — shared-cache interference, not useful bandwidth.")
	}

	fmt.Println("\nrow-buffer behaviour under sharing:")
	fmt.Printf("  %-3s row-hit rate %5.1f%% shared vs %5.1f%% alone\n",
		a.Abbr, shared.Apps[0].RowHitRate*100, aAlone.Apps[0].RowHitRate*100)
	fmt.Printf("  %-3s row-hit rate %5.1f%% shared vs %5.1f%% alone\n",
		b.Abbr, shared.Apps[1].RowHitRate*100, bAlone.Apps[0].RowHitRate*100)
}
