// Estimate: serve DASE online over HTTP. The example starts the daemon's
// handler in-process, runs a short two-app shared simulation to obtain
// realistic per-interval counter snapshots, and POSTs them to
// /v1/estimate — one single-shot request, then one array batch — printing
// the estimated slowdowns and the recommended SM partition from each
// response. This is the flow a cluster scheduler would use: counters in,
// slowdowns and a partition out, no simulation in the serving loop.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"log/slog"
	"net/http"
	"net/http/httptest"

	"dasesim"
	"dasesim/internal/estimate"
	"dasesim/internal/server"
)

func main() {
	cfg := dasesim.DefaultConfig()

	// An in-process dased; in production this is `dased -addr :8844`.
	srv, err := server.New(server.Options{
		Cfg:    cfg,
		Logger: slog.New(slog.NewTextHandler(io.Discard, nil)),
	})
	if err != nil {
		log.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Produce counter snapshots the way a real deployment would: from a
	// running workload. Here, a short SB+SD shared simulation.
	var apps []dasesim.KernelProfile
	for _, abbr := range []string{"SB", "SD"} {
		p, ok := dasesim.KernelByAbbr(abbr)
		if !ok {
			log.Fatalf("kernel %s not found", abbr)
		}
		apps = append(apps, p)
	}
	res, err := dasesim.RunShared(cfg, apps, dasesim.EvenAllocation(cfg.NumSMs, 2), 200_000, 1)
	if err != nil {
		log.Fatal(err)
	}
	var bodies [][]byte
	for i := range res.Snapshots {
		snap := &res.Snapshots[i]
		if snap.IntervalCycles == 0 || len(snap.Apps) == 0 {
			continue
		}
		req := estimate.FromSnapshot(snap)
		bodies = append(bodies, estimate.AppendRequest(nil, &req))
	}
	if len(bodies) == 0 {
		log.Fatal("simulation recorded no snapshots")
	}

	// Single-shot: one snapshot in, one estimate out.
	fmt.Println("single-shot POST /v1/estimate (last interval):")
	printResponse(post(ts.URL, bodies[len(bodies)-1]))

	// Batch: an array body answers per element, preserving order.
	batch := append([]byte{'['}, bytes.Join(bodies, []byte{','})...)
	batch = append(batch, ']')
	fmt.Printf("\nbatch POST /v1/estimate (%d intervals): first and last answers:\n", len(bodies))
	var batchResp []response
	mustUnmarshal(post(ts.URL, batch), &batchResp)
	printDecoded(batchResp[0])
	printDecoded(batchResp[len(batchResp)-1])
}

// response mirrors the wire shape of one estimate answer.
type response struct {
	Apps []struct {
		Slowdown float64 `json:"slowdown"`
		MBB      bool    `json:"mbb"`
		Alpha    float64 `json:"alpha"`
	} `json:"apps"`
	Partition           []int   `json:"partition"`
	Unfairness          float64 `json:"unfairness"`
	PartitionUnfairness float64 `json:"partition_unfairness"`
}

func post(base string, body []byte) []byte {
	resp, err := http.Post(base+"/v1/estimate", "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("estimate rejected (%d): %s", resp.StatusCode, out)
	}
	return out
}

func printResponse(raw []byte) {
	var r response
	mustUnmarshal(raw, &r)
	printDecoded(r)
}

func printDecoded(r response) {
	for i, a := range r.Apps {
		fmt.Printf("  app %d: slowdown %.3f  alpha %.3f  mbb=%v\n", i, a.Slowdown, a.Alpha, a.MBB)
	}
	fmt.Printf("  unfairness %.3f -> recommended partition %v (unfairness %.3f)\n",
		r.Unfairness, r.Partition, r.PartitionUnfairness)
}

func mustUnmarshal(raw []byte, v any) {
	if err := json.Unmarshal(raw, v); err != nil {
		log.Fatalf("decode %s: %v", raw, err)
	}
}
