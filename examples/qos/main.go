// Qos: demonstrate the DASE-QoS policy (the paper's stated future work) —
// protect a latency-critical application with a maximum-slowdown guarantee
// while batch applications absorb the remaining SMs. Sweeps the target to
// show the knob trading the critical app's guarantee against batch
// throughput.
package main

import (
	"fmt"
	"log"

	"dasesim"
)

func main() {
	cfg := dasesim.DefaultConfig()
	const cycles = 500_000

	ct, _ := dasesim.KernelByAbbr("CT") // latency-critical: cache-sensitive
	va, _ := dasesim.KernelByAbbr("VA") // batch: bandwidth streamer
	nn, _ := dasesim.KernelByAbbr("NN") // batch: bandwidth streamer
	apps := []dasesim.KernelProfile{ct, va, nn}

	aloneIPC := make([]float64, len(apps))
	for i, p := range apps {
		alone, err := dasesim.RunAlone(cfg, p, cycles, 1)
		if err != nil {
			log.Fatal(err)
		}
		aloneIPC[i] = alone.Apps[0].IPC
	}

	fmt.Println("critical app: CT;  batch: VA, NN;  16 SMs total")
	fmt.Println("policy          CT slow  VA slow  NN slow  batch-H.speedup  CT SMs")

	show := func(name string, res *dasesim.Result, smsCT int) {
		s := make([]float64, len(apps))
		for i := range apps {
			s[i] = dasesim.Slowdown(aloneIPC[i], res.Apps[i].IPC)
		}
		fmt.Printf("%-14s  %7.2f  %7.2f  %7.2f  %15.2f  %6d\n",
			name, s[0], s[1], s[2], dasesim.HarmonicSpeedup(s[1:]), smsCT)
	}

	even, err := dasesim.RunWithPolicy(cfg, apps, []int{6, 5, 5}, cycles, 1, dasesim.EvenPolicy{})
	if err != nil {
		log.Fatal(err)
	}
	show("even", even, 6)

	for _, target := range []float64{2.0, 1.6, 1.3} {
		pol := dasesim.NewDASEQoS(0, target)
		res, err := dasesim.RunWithPolicy(cfg, apps, []int{6, 5, 5}, cycles, 1, pol)
		if err != nil {
			log.Fatal(err)
		}
		final := res.Snapshots[len(res.Snapshots)-1]
		show(fmt.Sprintf("qos(CT<=%.1fx)", target), res, final.Apps[0].SMs)
	}
	fmt.Println("\ntighter targets pull CT's slowdown down by granting it SMs,")
	fmt.Println("at the cost of batch throughput — the QoS/throughput trade-off.")
}
