// Fairsched: demonstrate the DASE-Fair SM partition policy fixing an unfair
// workload mix — a streaming kernel co-running with a cache-sensitive one —
// and compare unfairness and harmonic speedup against the static even split
// and the LEFTOVER policy of current GPUs.
package main

import (
	"fmt"
	"log"

	"dasesim"
)

func main() {
	cfg := dasesim.DefaultConfig()
	const cycles = 400_000

	va, _ := dasesim.KernelByAbbr("VA") // vectorAdd: bandwidth-hungry streamer
	ct, _ := dasesim.KernelByAbbr("CT") // convolutionTexture: cache-sensitive victim
	apps := []dasesim.KernelProfile{va, ct}

	aloneIPC := make([]float64, len(apps))
	for i, p := range apps {
		alone, err := dasesim.RunAlone(cfg, p, cycles, 1)
		if err != nil {
			log.Fatal(err)
		}
		aloneIPC[i] = alone.Apps[0].IPC
	}

	slowdownsOf := func(res *dasesim.Result) []float64 {
		out := make([]float64, len(res.Apps))
		for i, a := range res.Apps {
			out[i] = dasesim.Slowdown(aloneIPC[i], a.IPC)
		}
		return out
	}

	fmt.Println("policy     alloc        VA slow  CT slow  unfairness  h.speedup")

	// 1. Static even split.
	even, err := dasesim.RunWithPolicy(cfg, apps, []int{8, 8}, cycles, 1, dasesim.EvenPolicy{})
	if err != nil {
		log.Fatal(err)
	}
	report("even", "8+8", slowdownsOf(even))

	// 2. LEFTOVER (what current GPUs do): the first kernel grabs all the
	// SMs it can fill, the next gets what is left. Both VA and CT have
	// thousands of thread blocks, so whichever is first takes all 16 SMs
	// and the other never runs concurrently — the policy's known flaw.
	lo := dasesim.LeftoverAllocation(cfg, apps)
	if lo[1] == 0 {
		fmt.Printf("%-9s  %-11s  (CT gets 0 SMs: no concurrency at all)\n",
			"leftover", fmt.Sprintf("%d+%d", lo[0], lo[1]))
	}
	// With a small kernel first (SN: 24 blocks fill only 4 SMs), LEFTOVER
	// does produce a split.
	sn, _ := dasesim.KernelByAbbr("SN")
	lo2 := dasesim.LeftoverAllocation(cfg, []dasesim.KernelProfile{sn, va})
	fmt.Printf("%-9s  %-11s  (works only when the first kernel is small, e.g. SN+VA)\n",
		"leftover", fmt.Sprintf("%d+%d", lo2[0], lo2[1]))

	// 3. DASE-Fair: re-partitions SMs at run time from DASE estimates.
	pol := dasesim.NewDASEFair()
	fair, err := dasesim.RunWithPolicy(cfg, apps, []int{8, 8}, cycles, 1, pol)
	if err != nil {
		log.Fatal(err)
	}
	final := fair.Snapshots[len(fair.Snapshots)-1]
	report("DASE-Fair", fmt.Sprintf("%d+%d after %d reallocs", final.Apps[0].SMs, final.Apps[1].SMs, pol.Reallocations), slowdownsOf(fair))
}

func report(policy, alloc string, slowdowns []float64) {
	fmt.Printf("%-9s  %-11s  %7.2f  %7.2f  %10.2f  %9.2f\n",
		policy, alloc, slowdowns[0], slowdowns[1],
		dasesim.Unfairness(slowdowns), dasesim.HarmonicSpeedup(slowdowns))
}
