package dasesim

// Determinism golden tests: the simulator's correctness contract is that a
// (config, profiles, alloc, cycles, seed) tuple maps to exactly one Result —
// the journal's crash recovery and the content-addressed result cache both
// depend on it, and every engine optimization must preserve it byte for byte.
//
// Two layers of protection:
//
//  1. Same-process: each scenario runs twice on fresh GPUs and the Results
//     (including every IntervalSnapshot) must be deeply equal.
//  2. Cross-process/cross-commit: a SHA-256 fingerprint of the canonical JSON
//     encoding of the Result is compared against testdata/determinism_golden.json.
//     Running the suite with -count=2, on another machine, or after an engine
//     refactor must reproduce the recorded fingerprints exactly.
//
// Regenerate the golden file (only when an *intentional* model change lands)
// with: go test -run TestDeterminismGolden -update-golden

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"dasesim/internal/faults"
	"dasesim/internal/sched"
	"dasesim/internal/sim"
	"dasesim/internal/telemetry"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata/determinism_golden.json with the current engine's fingerprints")

const goldenPath = "testdata/determinism_golden.json"

// fingerprint canonically encodes a Result and hashes it. JSON encoding of
// Go float64s is deterministic (shortest round-trip representation), so the
// hash covers every field of the Result and all snapshots bit-exactly.
func fingerprint(t *testing.T, res *sim.Result) string {
	t.Helper()
	data, err := json.Marshal(res)
	if err != nil {
		t.Fatalf("marshal result: %v", err)
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

type detCase struct {
	name   string
	abbrs  []string
	alloc  []int
	cycles uint64
	seed   uint64
	// opts is appended to each run's sim options; TestInvariantChecksGolden
	// reuses the cases with WithInvariantChecks added here.
	opts []sim.Option
	run  func(t *testing.T, c detCase) *sim.Result
}

func runShared(t *testing.T, c detCase) *sim.Result {
	t.Helper()
	res, err := sim.RunShared(DefaultConfig(), detProfiles(t, c.abbrs), c.alloc, c.cycles, c.seed, c.opts...)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func runSharedEpochs(t *testing.T, c detCase) *sim.Result {
	t.Helper()
	opts := append([]sim.Option{sim.WithPriorityEpochs()}, c.opts...)
	res, err := sim.RunShared(DefaultConfig(), detProfiles(t, c.abbrs), c.alloc, c.cycles, c.seed, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// runFairPolicy exercises the dynamic-reallocation path: DASE-Fair triggers
// SetAllocation, SM draining and reassignment — the parts of the engine a
// performance refactor is most likely to disturb.
func runFairPolicy(t *testing.T, c detCase) *sim.Result {
	t.Helper()
	res, err := sched.Run(DefaultConfig(), detProfiles(t, c.abbrs), c.alloc, c.cycles, c.seed, sched.NewDASEFair(), c.opts...)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// runRetentionFaultRetry exercises the operational paths the daemon leans on:
// the first attempt dies to an injected sim.step fault (as a crashed worker
// would), the retry must succeed, and the whole run executes under a snapshot
// retention cap small enough to force eviction folding. The fingerprint
// therefore covers WithSnapshotRetention's truncated-snapshot encoding and
// proves a post-fault retry reproduces the canonical result bit for bit.
func runRetentionFaultRetry(t *testing.T, c detCase) *sim.Result {
	t.Helper()
	reg := faults.New(99)
	reg.Arm(faults.Spec{Point: "sim.step", Mode: faults.ModeError, Count: 1})
	faults.Activate(reg)
	defer faults.Deactivate()

	// Retention 2 with IntervalCycles 50_000 over 160_000 cycles produces 3
	// snapshots and evicts the first, so the fold-into-aggregates path is on
	// the golden fingerprint.
	opts := append([]sim.Option{sim.WithSnapshotRetention(2)}, c.opts...)
	if _, err := sim.RunSharedContext(context.Background(), DefaultConfig(), detProfiles(t, c.abbrs), c.alloc, c.cycles, c.seed, opts...); err == nil {
		t.Fatal("first attempt survived the armed sim.step fault")
	}
	res, err := sim.RunSharedContext(context.Background(), DefaultConfig(), detProfiles(t, c.abbrs), c.alloc, c.cycles, c.seed, opts...)
	if err != nil {
		t.Fatalf("retry after injected fault: %v", err)
	}
	if len(res.Snapshots) != 2 {
		t.Fatalf("retention cap kept %d snapshots, want 2", len(res.Snapshots))
	}
	return res
}

// runParFairRetentionFaultRetry is the parallel-engine operational scenario:
// the DASE-Fair policy repartitions SMs mid-run (draining + reassignment on
// the phased engine), snapshots are evicted under a retention cap, the first
// attempt dies to an injected sim.step fault, and the retry must reproduce
// the canonical result bit for bit. The case carries WithParallelism in
// c.opts, so its golden fingerprint is recorded from a parallel run;
// TestParallelGolden overrides the shard count (including forcing the
// sequential engine) and requires the same fingerprint.
func runParFairRetentionFaultRetry(t *testing.T, c detCase) *sim.Result {
	t.Helper()
	reg := faults.New(101)
	reg.Arm(faults.Spec{Point: "sim.step", Mode: faults.ModeError, Count: 1})
	faults.Activate(reg)
	defer faults.Deactivate()

	opts := append([]sim.Option{sim.WithSnapshotRetention(2)}, c.opts...)
	if _, err := sched.RunContext(context.Background(), DefaultConfig(), detProfiles(t, c.abbrs), c.alloc, c.cycles, c.seed, sched.NewDASEFair(), opts...); err == nil {
		t.Fatal("first attempt survived the armed sim.step fault")
	}
	res, err := sched.RunContext(context.Background(), DefaultConfig(), detProfiles(t, c.abbrs), c.alloc, c.cycles, c.seed, sched.NewDASEFair(), opts...)
	if err != nil {
		t.Fatalf("retry after injected fault: %v", err)
	}
	if len(res.Snapshots) != 2 {
		t.Fatalf("retention cap kept %d snapshots, want 2", len(res.Snapshots))
	}
	// The deliberately unfair starting allocation must have been repartitioned
	// mid-run, or the scenario is not exercising parallel-mode reassignment.
	last := res.Snapshots[len(res.Snapshots)-1]
	moved := false
	for a := range last.Apps {
		if last.Apps[a].SMs != c.alloc[a] {
			moved = true
		}
	}
	if !moved {
		t.Fatal("DASE-Fair never repartitioned the unfair starting allocation")
	}
	return res
}

func detProfiles(t *testing.T, abbrs []string) []KernelProfile {
	t.Helper()
	ps := make([]KernelProfile, len(abbrs))
	for i, ab := range abbrs {
		p, ok := KernelByAbbr(ab)
		if !ok {
			t.Fatalf("kernel %s missing", ab)
		}
		ps[i] = p
	}
	return ps
}

func detCases() []detCase {
	return []detCase{
		{name: "pair-SB-SD", abbrs: []string{"SB", "SD"}, alloc: []int{8, 8}, cycles: 120_000, seed: 1, run: runShared},
		{name: "pair-VA-CT-uneven", abbrs: []string{"VA", "CT"}, alloc: []int{6, 10}, cycles: 120_000, seed: 3, run: runShared},
		{name: "quad-SB-SD-CT-QR", abbrs: []string{"SB", "SD", "CT", "QR"}, alloc: []int{4, 4, 4, 4}, cycles: 120_000, seed: 7, run: runShared},
		{name: "pair-SB-SD-epochs", abbrs: []string{"SB", "SD"}, alloc: []int{8, 8}, cycles: 120_000, seed: 1, run: runSharedEpochs},
		{name: "pair-VA-CT-dasefair", abbrs: []string{"VA", "CT"}, alloc: []int{8, 8}, cycles: 160_000, seed: 5, run: runFairPolicy},
		{name: "pair-SB-SD-retention-faultretry", abbrs: []string{"SB", "SD"}, alloc: []int{8, 8}, cycles: 160_000, seed: 11, run: runRetentionFaultRetry},
		{name: "pair-VA-CT-parallel-fair-retention-faultretry", abbrs: []string{"VA", "CT"}, alloc: []int{12, 4}, cycles: 160_000, seed: 13,
			opts: []sim.Option{sim.WithParallelism(2)}, run: runParFairRetentionFaultRetry},
	}
}

// TestParallelGolden is the parallel engine's determinism contract: every
// golden scenario, run under WithParallelism, must reproduce the recorded
// fingerprint byte for byte. The six sequential scenarios run at 1, 2 and 4
// shards against fingerprints recorded from the sequential engine; the
// parallel scenario (recorded at 2 shards) additionally runs with the
// sequential engine forced, closing the loop in the other direction.
func TestParallelGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy; skipped with -short")
	}
	data, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read %s: %v (regenerate with -update-golden)", goldenPath, err)
	}
	golden := map[string]string{}
	if err := json.Unmarshal(data, &golden); err != nil {
		t.Fatalf("parse %s: %v", goldenPath, err)
	}
	for _, base := range detCases() {
		shards := []int{1, 2, 4}
		if len(base.opts) > 0 {
			shards = []int{-1, 1, 4} // recorded at 2; prove seq == p1 == p2 == p4
		}
		for _, n := range shards {
			c := base
			c.opts = append(append([]sim.Option{}, base.opts...), sim.WithParallelism(n))
			label := fmt.Sprintf("%s/p%d", c.name, n)
			if n < 0 {
				label = c.name + "/seq"
			}
			t.Run(label, func(t *testing.T) {
				fp := fingerprint(t, c.run(t, c))
				want, ok := golden[c.name]
				if !ok {
					t.Fatalf("no golden fingerprint for %q", c.name)
				}
				if fp != want {
					t.Errorf("fingerprint mismatch under WithParallelism(%d): got %s want %s\nthe parallel engine must be byte-identical to the sequential engine", n, fp, want)
				}
			})
		}
	}
}

// TestInvariantChecksGolden reruns every determinism scenario with the
// runtime invariant checker enabled and requires the recorded golden
// fingerprint: the sweep must pass on every state the scenarios reach AND
// must not perturb the simulation by a single byte.
func TestInvariantChecksGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy; skipped with -short")
	}
	data, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read %s: %v (regenerate with -update-golden)", goldenPath, err)
	}
	golden := map[string]string{}
	if err := json.Unmarshal(data, &golden); err != nil {
		t.Fatalf("parse %s: %v", goldenPath, err)
	}
	for _, c := range detCases() {
		c := c
		c.opts = append(c.opts, sim.WithInvariantChecks())
		t.Run(c.name, func(t *testing.T) {
			fp := fingerprint(t, c.run(t, c))
			want, ok := golden[c.name]
			if !ok {
				t.Fatalf("no golden fingerprint for %q", c.name)
			}
			if fp != want {
				t.Errorf("fingerprint mismatch with invariant checks on: got %s want %s\nchecking must be observation-only", fp, want)
			}
		})
	}
}

// TestTracingGolden reruns every determinism scenario with the event tracer
// attached and requires the recorded golden fingerprint: tracing must be
// observation-only — enabling it cannot change a single byte of any result —
// while still capturing the engine's interval and (for the DASE-Fair case)
// estimator events.
func TestTracingGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy; skipped with -short")
	}
	data, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read %s: %v (regenerate with -update-golden)", goldenPath, err)
	}
	golden := map[string]string{}
	if err := json.Unmarshal(data, &golden); err != nil {
		t.Fatalf("parse %s: %v", goldenPath, err)
	}
	for _, c := range detCases() {
		c := c
		tr := telemetry.New(0)
		c.opts = append(c.opts, sim.WithTracer(tr))
		t.Run(c.name, func(t *testing.T) {
			fp := fingerprint(t, c.run(t, c))
			want, ok := golden[c.name]
			if !ok {
				t.Fatalf("no golden fingerprint for %q", c.name)
			}
			if fp != want {
				t.Errorf("fingerprint mismatch with tracing on: got %s want %s\ntracing must be observation-only", fp, want)
			}
			if tr.Len() == 0 {
				t.Fatal("traced run emitted no events")
			}
			kinds := map[telemetry.Kind]int{}
			for _, e := range tr.Events() {
				kinds[e.Kind]++
			}
			if kinds[telemetry.KindInterval] == 0 {
				t.Error("no interval events traced")
			}
			if c.name == "pair-VA-CT-dasefair" {
				if kinds[telemetry.KindDASEApp] == 0 {
					t.Error("DASE-Fair run traced no dase.app events")
				}
				if kinds[telemetry.KindSchedDecision] == 0 {
					t.Error("DASE-Fair run traced no sched.decision events")
				}
			}
		})
	}
}

// TestDeterminismGolden is the safety net for engine optimizations: two runs
// in-process must be deeply equal, and their fingerprint must match the
// recorded golden value.
func TestDeterminismGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy; skipped with -short")
	}
	golden := map[string]string{}
	if data, err := os.ReadFile(goldenPath); err == nil {
		if err := json.Unmarshal(data, &golden); err != nil {
			t.Fatalf("parse %s: %v", goldenPath, err)
		}
	} else if !*updateGolden {
		t.Fatalf("read %s: %v (regenerate with -update-golden)", goldenPath, err)
	}

	got := map[string]string{}
	for _, c := range detCases() {
		c := c
		t.Run(c.name, func(t *testing.T) {
			first := c.run(t, c)
			second := c.run(t, c)
			if !reflect.DeepEqual(first, second) {
				t.Fatalf("two identical runs diverged:\nfirst:  %+v\nsecond: %+v", first, second)
			}
			if len(first.Snapshots) == 0 {
				t.Fatal("run produced no interval snapshots; the golden would not cover them")
			}
			fp := fingerprint(t, first)
			got[c.name] = fp
			if *updateGolden {
				return
			}
			want, ok := golden[c.name]
			if !ok {
				t.Fatalf("no golden fingerprint for %q (regenerate with -update-golden)", c.name)
			}
			if fp != want {
				t.Errorf("fingerprint mismatch: got %s want %s\nthe engine no longer produces byte-identical results for this scenario", fp, want)
			}
		})
	}

	if *updateGolden {
		// Merge into the existing file rather than overwriting it: the golden
		// map also holds keys owned by other suites (the fleet CSV golden among
		// them), and regenerating the engine fingerprints must not drop those.
		for k, v := range got {
			golden[k] = v
		}
		data, err := json.MarshalIndent(golden, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", goldenPath)
	}
}
