package dasesim

// Benchmarks regenerating (at reduced cycle budgets) the measurement behind
// every table and figure of the paper, plus ablation benches for the design
// choices called out in DESIGN.md §5. Each benchmark reports its headline
// quantity as a custom metric so `go test -bench . -benchmem` doubles as a
// miniature reproduction run:
//
//	err%        mean slowdown-estimation error (Figs. 5-8)
//	unfairness  measured MAX/MIN slowdown (Figs. 2, 9)
//	bw%         attained DRAM bandwidth (Table III)
//	corr        service-rate/IPC correlation (Fig. 3)
//
// The full-budget reproduction lives in cmd/experiments.

import (
	"testing"

	"dasesim/internal/baseline"
	"dasesim/internal/core"
	"dasesim/internal/experiments"
	"dasesim/internal/metrics"
	"dasesim/internal/sched"
	"dasesim/internal/sim"
	"dasesim/internal/workload"
)

const benchCycles = 100_000

func benchParams() experiments.Params {
	p := experiments.DefaultParams()
	p.SharedCycles = benchCycles
	p.PairSample = 4
	p.QuadCount = 2
	return p
}

func benchEvalOptions(ests ...core.Estimator) workload.Options {
	opt := workload.DefaultOptions(benchCycles)
	opt.Estimators = ests
	return opt
}

func benchPair(b *testing.B, ab1, ab2 string) workload.Combo {
	b.Helper()
	p1, ok := KernelByAbbr(ab1)
	if !ok {
		b.Fatalf("kernel %s missing", ab1)
	}
	p2, ok := KernelByAbbr(ab2)
	if !ok {
		b.Fatalf("kernel %s missing", ab2)
	}
	return workload.Combo{Profiles: []KernelProfile{p1, p2}}
}

// BenchmarkTableIII measures one representative kernel's alone bandwidth
// utilisation (full table: cmd/experiments -run tableIII).
func BenchmarkTableIII(b *testing.B) {
	sb, _ := KernelByAbbr("SB")
	var bw float64
	for i := 0; i < b.N; i++ {
		res, err := RunAlone(DefaultConfig(), sb, benchCycles, 1)
		if err != nil {
			b.Fatal(err)
		}
		bw = res.Apps[0].BWUtil
	}
	b.ReportMetric(bw*100, "bw%")
}

// BenchmarkFig2a measures the unfairness of one motivation pair.
func BenchmarkFig2a(b *testing.B) {
	combo := benchPair(b, "VA", "CT")
	cache := workload.NewAloneCache(DefaultConfig(), benchCycles, 1)
	var unf float64
	for i := 0; i < b.N; i++ {
		ev, err := workload.Evaluate(benchEvalOptions(), combo, []int{8, 8}, cache)
		if err != nil {
			b.Fatal(err)
		}
		unf = ev.Unfairness
	}
	b.ReportMetric(unf, "unfairness")
}

// BenchmarkFig2b measures the DRAM bandwidth decomposition run.
func BenchmarkFig2b(b *testing.B) {
	p := benchParams()
	cache := workload.NewAloneCache(p.Cfg, p.SharedCycles, p.Seed)
	var wasted float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig2b(p, cache)
		if err != nil {
			b.Fatal(err)
		}
		wasted = rows[0].Wasted
	}
	b.ReportMetric(wasted*100, "wasted%")
}

// BenchmarkFig3 measures the performance-vs-service-rate sweep.
func BenchmarkFig3(b *testing.B) {
	p := benchParams()
	var corr float64
	for i := 0; i < b.N; i++ {
		var err error
		_, corr, err = experiments.Fig3(p)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(corr, "corr")
}

// BenchmarkFig4 measures the MBB alone-vs-shared-sum comparison.
func BenchmarkFig4(b *testing.B) {
	p := benchParams()
	cache := workload.NewAloneCache(p.Cfg, p.SharedCycles, p.Seed)
	var ratio float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig4(p, cache)
		if err != nil {
			b.Fatal(err)
		}
		ratio = rows[0].SharedSum / rows[0].AloneRate
	}
	b.ReportMetric(ratio, "sum/alone")
}

// benchAccuracy evaluates one pair with the three estimators and reports
// DASE's error.
func benchAccuracy(b *testing.B, alloc []int, combo workload.Combo) {
	b.Helper()
	opt := benchEvalOptions(core.New(core.Options{}))
	opt.EpochEstimators = []core.Estimator{baseline.NewMISE(), baseline.NewASM()}
	cache := workload.NewAloneCache(opt.Cfg, opt.SharedCycles, opt.Seed)
	var dase, mise float64
	for i := 0; i < b.N; i++ {
		ev, err := workload.Evaluate(opt, combo, alloc, cache)
		if err != nil {
			b.Fatal(err)
		}
		dase = metrics.Mean(ev.Errors["DASE"])
		mise = metrics.Mean(ev.Errors["MISE"])
	}
	b.ReportMetric(dase*100, "err%")
	b.ReportMetric(mise*100, "mise-err%")
}

// BenchmarkFig5 measures estimation accuracy on one two-app workload
// (full 105-pair sweep: cmd/experiments -run fig5).
func BenchmarkFig5(b *testing.B) {
	benchAccuracy(b, []int{8, 8}, benchPair(b, "SB", "SD"))
}

// BenchmarkFig6 measures estimation accuracy on one four-app workload.
func BenchmarkFig6(b *testing.B) {
	var ps []KernelProfile
	for _, ab := range []string{"SB", "SD", "CT", "QR"} {
		p, _ := KernelByAbbr(ab)
		ps = append(ps, p)
	}
	benchAccuracy(b, []int{4, 4, 4, 4}, workload.Combo{Profiles: ps})
}

// BenchmarkFig7 measures the error-distribution bucketing over a small
// sample.
func BenchmarkFig7(b *testing.B) {
	p := benchParams()
	cache := workload.NewAloneCache(p.Cfg, p.SharedCycles, p.Seed)
	opt := benchEvalOptions(core.New(core.Options{}))
	opt.EpochEstimators = []core.Estimator{baseline.NewMISE(), baseline.NewASM()}
	jobs := []workload.Job{
		{Combo: benchPair(b, "SB", "SD"), Alloc: []int{8, 8}},
		{Combo: benchPair(b, "VA", "CT"), Alloc: []int{8, 8}},
	}
	evals, err := workload.EvaluateAll(opt, jobs, cache)
	if err != nil {
		b.Fatal(err)
	}
	acc := &experiments.AccuracyResult{Evals: evals, MeanError: map[string]float64{}}
	b.ResetTimer()
	var below float64
	for i := 0; i < b.N; i++ {
		r := experiments.Fig7(acc, nil)
		below = r.Fractions["DASE"][0]
	}
	b.ReportMetric(below*100, "dase<10%")
}

// BenchmarkFig8a measures DASE accuracy under an uneven SM allocation.
func BenchmarkFig8a(b *testing.B) {
	benchAccuracy(b, []int{6, 10}, benchPair(b, "SB", "SD"))
}

// BenchmarkFig8b measures DASE accuracy with fewer SMs per app.
func BenchmarkFig8b(b *testing.B) {
	benchAccuracy(b, []int{4, 4}, benchPair(b, "SB", "SD"))
}

// BenchmarkFig9 compares the even split against DASE-Fair on one unfair
// workload and reports the unfairness reduction.
func BenchmarkFig9(b *testing.B) {
	cfg := DefaultConfig()
	combo := benchPair(b, "VA", "CT")
	cache := workload.NewAloneCache(cfg, benchCycles, 1)
	aloneIPC := make([]float64, 2)
	for i, prof := range combo.Profiles {
		res, err := cache.Get(prof)
		if err != nil {
			b.Fatal(err)
		}
		aloneIPC[i] = res.Apps[0].IPC
	}
	// The dynamic policy needs warm-up intervals plus SM-draining time
	// before its allocation pays off, so this bench runs 3x the usual
	// budget (see EXPERIMENTS.md Fig. 9 notes).
	policyCycles := uint64(3 * benchCycles)
	var improvement float64
	for i := 0; i < b.N; i++ {
		even, err := sched.Run(cfg, combo.Profiles, []int{8, 8}, policyCycles, 1, sched.Even{})
		if err != nil {
			b.Fatal(err)
		}
		fair, err := sched.Run(cfg, combo.Profiles, []int{8, 8}, policyCycles, 1, sched.NewDASEFair())
		if err != nil {
			b.Fatal(err)
		}
		ue := metrics.Unfairness([]float64{
			metrics.Slowdown(aloneIPC[0], even.Apps[0].IPC),
			metrics.Slowdown(aloneIPC[1], even.Apps[1].IPC),
		})
		uf := metrics.Unfairness([]float64{
			metrics.Slowdown(aloneIPC[0], fair.Apps[0].IPC),
			metrics.Slowdown(aloneIPC[1], fair.Apps[1].IPC),
		})
		improvement = (ue - uf) / ue
	}
	b.ReportMetric(improvement*100, "fairness-gain%")
}

// BenchmarkTableI measures the hardware-cost computation.
func BenchmarkTableI(b *testing.B) {
	var bits int
	for i := 0; i < b.N; i++ {
		c := core.HardwareCost(4, 16, 8, 8, 16)
		bits = c.PerPartitionBits
	}
	b.ReportMetric(float64(bits), "bits")
}

// --- Ablation benches (DESIGN.md §5): each reports DASE's error with one
// design element changed, on the same workload as BenchmarkFig5.

func benchAblation(b *testing.B, opt core.Options) {
	b.Helper()
	eval := benchEvalOptions(core.New(opt))
	cache := workload.NewAloneCache(eval.Cfg, eval.SharedCycles, eval.Seed)
	combo := benchPair(b, "SB", "SD")
	var errv float64
	for i := 0; i < b.N; i++ {
		ev, err := workload.Evaluate(eval, combo, []int{8, 8}, cache)
		if err != nil {
			b.Fatal(err)
		}
		errv = metrics.Mean(ev.Errors["DASE"])
	}
	b.ReportMetric(errv*100, "err%")
}

// BenchmarkAblationBaselineDASE is the reference point for the ablations.
func BenchmarkAblationBaselineDASE(b *testing.B) {
	benchAblation(b, core.Options{})
}

// BenchmarkAblationNoBLPNormalization drops the Eq. 14 division.
func BenchmarkAblationNoBLPNormalization(b *testing.B) {
	benchAblation(b, core.Options{DisableBLPNormalization: true})
}

// BenchmarkAblationNoAlphaDiscount drops the Eq. 15 TLP discount.
func BenchmarkAblationNoAlphaDiscount(b *testing.B) {
	benchAblation(b, core.Options{DisableAlphaDiscount: true})
}

// BenchmarkAblationNoScalingCaps drops the Eq. 24/25 caps.
func BenchmarkAblationNoScalingCaps(b *testing.B) {
	benchAblation(b, core.Options{DisableScalingCaps: true})
}

// BenchmarkAblationLiteralBankInterference uses the paper's literal Eq. 9.
func BenchmarkAblationLiteralBankInterference(b *testing.B) {
	benchAblation(b, core.Options{LiteralBankInterference: true})
}

// BenchmarkAblationStaticRequestMax uses the paper's static Eq. 20.
func BenchmarkAblationStaticRequestMax(b *testing.B) {
	benchAblation(b, core.Options{StaticRequestMax: true})
}

// BenchmarkAblationForceNMBB forces every app down the NMBB path.
func BenchmarkAblationForceNMBB(b *testing.B) {
	benchAblation(b, core.Options{ForceClass: core.ForceNMBB})
}

// BenchmarkAblationForceMBB forces every app down the MBB path.
func BenchmarkAblationForceMBB(b *testing.B) {
	benchAblation(b, core.Options{ForceClass: core.ForceMBB})
}

// BenchmarkAblationRefresh enables DRAM refresh (off by default because the
// paper's Table II lists no refresh timing) and reports the bandwidth cost.
func BenchmarkAblationRefresh(b *testing.B) {
	cfg := DefaultConfig()
	cfg.Mem.TREFI = 5460 // ~3.9 us at 1.4 GHz
	cfg.Mem.TRFC = 224   // ~160 ns
	sb, _ := KernelByAbbr("SB")
	var bw float64
	for i := 0; i < b.N; i++ {
		res, err := RunAlone(cfg, sb, benchCycles, 1)
		if err != nil {
			b.Fatal(err)
		}
		bw = res.Apps[0].BWUtil
	}
	b.ReportMetric(bw*100, "bw%")
}

// BenchmarkAblationAppAwareRR uses the application-aware round-robin memory
// scheduler instead of FR-FCFS and reports the resulting unfairness on the
// Fig. 2 victim pair.
func BenchmarkAblationAppAwareRR(b *testing.B) {
	cfg := DefaultConfig()
	cfg.Mem.AppAwareRR = true
	combo := benchPair(b, "VA", "CT")
	cache := workload.NewAloneCache(cfg, benchCycles, 1)
	opt := benchEvalOptions()
	opt.Cfg = cfg
	var unf float64
	for i := 0; i < b.N; i++ {
		ev, err := workload.Evaluate(opt, combo, []int{8, 8}, cache)
		if err != nil {
			b.Fatal(err)
		}
		unf = ev.Unfairness
	}
	b.ReportMetric(unf, "unfairness")
}

// BenchmarkAblationWriteback enables the writeback L2 (dirty-eviction write
// traffic) and reports the bandwidth effect.
func BenchmarkAblationWriteback(b *testing.B) {
	cfg := DefaultConfig()
	cfg.L2.Writeback = true
	sb, _ := KernelByAbbr("SB")
	var bw float64
	for i := 0; i < b.N; i++ {
		res, err := RunAlone(cfg, sb, benchCycles, 1)
		if err != nil {
			b.Fatal(err)
		}
		bw = res.Apps[0].BWUtil
	}
	b.ReportMetric(bw*100, "bw%")
}

// BenchmarkAblationFullATD samples every L2 set in the auxiliary tag
// directories instead of 8, measuring the accuracy effect of set sampling.
func BenchmarkAblationFullATD(b *testing.B) {
	cfg := DefaultConfig()
	cfg.ATDSampledSets = cfg.L2.Sets()
	eval := benchEvalOptions(core.New(core.Options{}))
	eval.Cfg = cfg
	cache := workload.NewAloneCache(cfg, benchCycles, 1)
	combo := benchPair(b, "VA", "CT") // cache-sensitive victim
	var errv float64
	for i := 0; i < b.N; i++ {
		ev, err := workload.Evaluate(eval, combo, []int{8, 8}, cache)
		if err != nil {
			b.Fatal(err)
		}
		errv = metrics.Mean(ev.Errors["DASE"])
	}
	b.ReportMetric(errv*100, "err%")
}

// --- Engine microbenchmarks.

// BenchmarkGPUCycle measures raw simulation speed (ns/op / 10000 is the cost
// per simulated cycle). The seq sub-benchmark is the sequential engine; the
// pN variants run the bulk-synchronous parallel engine (WithParallelism) on N
// shards — byte-identical results, so the delta is pure engine speed. pN
// numbers only beat seq when GOMAXPROCS provides real cores; on fewer cores
// than shards they measure barrier overhead instead (see BENCH_cycles.json
// notes).
func BenchmarkGPUCycle(b *testing.B) {
	for _, bc := range []struct {
		name string
		opts []sim.Option
	}{
		{"seq", nil},
		{"p1", []sim.Option{sim.WithParallelism(1)}},
		{"p2", []sim.Option{sim.WithParallelism(2)}},
		{"p4", []sim.Option{sim.WithParallelism(4)}},
		{"p8", []sim.Option{sim.WithParallelism(8)}},
	} {
		b.Run(bc.name, func(b *testing.B) {
			cfg := DefaultConfig()
			sb, _ := KernelByAbbr("SB")
			sd, _ := KernelByAbbr("SD")
			g, err := sim.New(cfg, []KernelProfile{sb, sd}, []int{8, 8}, 1, bc.opts...)
			if err != nil {
				b.Fatal(err)
			}
			g.Run(10_000) // warm up
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				g.Run(10_000)
			}
		})
	}
}

// BenchmarkDASEEstimate measures one estimator invocation on a live
// snapshot.
func BenchmarkDASEEstimate(b *testing.B) {
	cfg := DefaultConfig()
	sb, _ := KernelByAbbr("SB")
	sd, _ := KernelByAbbr("SD")
	res, err := RunShared(cfg, []KernelProfile{sb, sd}, []int{8, 8}, 60_000, 1)
	if err != nil {
		b.Fatal(err)
	}
	snap := &res.Snapshots[len(res.Snapshots)-1]
	d := core.New(core.Options{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Estimate(snap)
	}
}

// BenchmarkPartitionSearch measures the DASE-Fair exhaustive search for
// four applications (C(15,3) = 455 candidate partitions).
func BenchmarkPartitionSearch(b *testing.B) {
	slow := []float64{3.2, 1.4, 2.1, 1.1}
	cur := []int{4, 4, 4, 4}
	for i := 0; i < b.N; i++ {
		sched.SearchBestPartition(slow, cur, 16, 1)
	}
}
