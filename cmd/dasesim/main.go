// Command dasesim runs one multiprogrammed workload on the simulated GPU
// and reports per-application performance, actual slowdowns, estimator
// outputs and the DRAM bandwidth decomposition.
//
// Usage:
//
//	dasesim -apps SB,SD                     # even split, 300K cycles
//	dasesim -apps VA,CT -alloc 4,12
//	dasesim -apps SB,SD,CT,QR -policy fair  # DASE-Fair dynamic partitioning
//	dasesim -list                           # show the Table III kernels
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"dasesim"
	"dasesim/internal/trace"
)

func main() {
	appsFlag := flag.String("apps", "SB,SD", "comma-separated kernel abbreviations")
	allocFlag := flag.String("alloc", "", "comma-separated SM counts (default: even split)")
	cycles := flag.Uint64("cycles", 300_000, "shared simulation cycles")
	seed := flag.Uint64("seed", 1, "simulation seed")
	policy := flag.String("policy", "even", "SM policy: even | fair")
	csvPath := flag.String("csv", "", "write per-interval counters to this CSV file")
	seeds := flag.Int("seeds", 1, "run this many seeds and report mean±spread of the slowdowns")
	parallelism := flag.Int("parallelism", -1, "cycle-engine shards per simulation (-1: DASESIM_PARALLEL env default, else sequential; 0: GOMAXPROCS; n: n shards); results are byte-identical at any value")
	configPath := flag.String("config", "", "load the GPU configuration from this JSON file")
	kernelsPath := flag.String("kernels", "", "load custom kernel profiles from this JSON file")
	dumpConfig := flag.String("dump-config", "", "write the active configuration as JSON and exit")
	list := flag.Bool("list", false, "list available kernels and exit")
	flag.Parse()

	cfg := dasesim.DefaultConfig()
	if *configPath != "" {
		var err error
		cfg, err = dasesim.LoadConfig(*configPath)
		if err != nil {
			log.Fatal(err)
		}
	}
	if *dumpConfig != "" {
		if err := dasesim.SaveConfig(cfg, *dumpConfig); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("configuration written to %s\n", *dumpConfig)
		return
	}

	catalogue := dasesim.Kernels()
	if *kernelsPath != "" {
		var err error
		catalogue, err = dasesim.LoadKernels(*kernelsPath)
		if err != nil {
			log.Fatal(err)
		}
	}
	lookup := func(abbr string) (dasesim.KernelProfile, bool) {
		for _, p := range catalogue {
			if p.Abbr == abbr {
				return p, true
			}
		}
		return dasesim.KernelProfile{}, false
	}

	if *list {
		fmt.Println("available kernels:")
		for _, p := range catalogue {
			fmt.Printf("  %-3s %-22s alone-BW(paper)=%2.0f%%\n", p.Abbr, p.Name, p.PaperBW*100)
		}
		return
	}

	var profiles []dasesim.KernelProfile
	for _, ab := range strings.Split(*appsFlag, ",") {
		p, ok := lookup(strings.TrimSpace(ab))
		if !ok {
			log.Fatalf("unknown kernel %q; try -list", ab)
		}
		profiles = append(profiles, p)
	}
	if len(profiles) < 1 {
		log.Fatal("need at least one kernel")
	}

	alloc := dasesim.EvenAllocation(cfg.NumSMs, len(profiles))
	if *allocFlag != "" {
		parts := strings.Split(*allocFlag, ",")
		if len(parts) != len(profiles) {
			log.Fatalf("-alloc needs %d values", len(profiles))
		}
		alloc = alloc[:0]
		for _, s := range parts {
			v, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil {
				log.Fatalf("bad allocation %q: %v", s, err)
			}
			alloc = append(alloc, v)
		}
	}

	var pol dasesim.Policy = dasesim.EvenPolicy{}
	var fair *dasesim.DASEFairPolicy
	switch *policy {
	case "even":
	case "fair":
		fair = dasesim.NewDASEFair()
		pol = fair
	default:
		log.Fatalf("unknown policy %q (even | fair)", *policy)
	}

	var simOpts []dasesim.Option
	if *parallelism >= 0 {
		simOpts = append(simOpts, dasesim.WithParallelism(*parallelism))
	}

	if *seeds > 1 {
		reportMultiSeed(cfg, profiles, alloc, *cycles, *seed, *seeds, *policy, simOpts)
		return
	}

	shared, err := dasesim.RunWithPolicy(cfg, profiles, alloc, *cycles, *seed, pol, simOpts...)
	if err != nil {
		log.Fatal(err)
	}

	est := dasesim.AverageEstimates(dasesim.NewDASE(), shared.Snapshots, 1)

	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			log.Fatal(err)
		}
		if err := trace.NewWriter(f).WriteAll(shared.Snapshots); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("interval trace written to %s\n", *csvPath)
	}

	fmt.Printf("workload: %s, %d cycles, policy %s, initial allocation %v\n\n",
		*appsFlag, *cycles, *policy, alloc)
	fmt.Println("app  IPC(shared)  alpha  DRAM-req   BW-share  rowhit  mem-lat(p95)  DASE-est  alone-IPC  slowdown")
	var slowdowns []float64
	for i, a := range shared.Apps {
		alone, err := dasesim.RunAlone(cfg, profiles[i], *cycles, *seed, simOpts...)
		if err != nil {
			log.Fatal(err)
		}
		slow := dasesim.Slowdown(alone.Apps[0].IPC, a.IPC)
		slowdowns = append(slowdowns, slow)
		fmt.Printf("%-3s  %11.2f  %5.2f  %8d  %8.1f%%  %5.1f%%  %5.0f(%5d)  %8.2f  %9.2f  %8.2f\n",
			a.Abbr, a.IPC, a.Alpha, a.Served, a.BWUtil*100, a.RowHitRate*100,
			a.MeanLatency, a.P95Latency,
			est[i], alone.Apps[0].IPC, slow)
	}

	fmt.Printf("\nDRAM bus: %.1f%% data, %.1f%% wasted (timing), %.1f%% idle\n",
		shared.BWUtilTotal()*100,
		float64(shared.BusWasted)/float64(shared.BusCycles)*100,
		float64(shared.BusIdle)/float64(shared.BusCycles)*100)
	fmt.Printf("unfairness %.2f (ideal 1.00), harmonic speedup %.2f\n",
		dasesim.Unfairness(slowdowns), dasesim.HarmonicSpeedup(slowdowns))
	if fair != nil {
		final := shared.Snapshots[len(shared.Snapshots)-1]
		var parts []string
		for _, ai := range final.Apps {
			parts = append(parts, strconv.Itoa(ai.SMs))
		}
		fmt.Printf("DASE-Fair: %d reallocations, final allocation %s\n",
			fair.Reallocations, strings.Join(parts, "+"))
	}
}

// reportMultiSeed reruns the workload across several seeds and prints the
// mean and spread of each application's slowdown — simulation-methodology
// hygiene for checking that a conclusion is not a single-seed artefact.
func reportMultiSeed(cfg dasesim.Config, profiles []dasesim.KernelProfile, alloc []int, cycles, seed uint64, n int, policy string, simOpts []dasesim.Option) {
	slow := make([][]float64, len(profiles))
	for s := uint64(0); s < uint64(n); s++ {
		var pol dasesim.Policy = dasesim.EvenPolicy{}
		if policy == "fair" {
			pol = dasesim.NewDASEFair()
		}
		shared, err := dasesim.RunWithPolicy(cfg, profiles, alloc, cycles, seed+s, pol, simOpts...)
		if err != nil {
			log.Fatal(err)
		}
		for i := range profiles {
			alone, err := dasesim.RunAlone(cfg, profiles[i], cycles, seed+s, simOpts...)
			if err != nil {
				log.Fatal(err)
			}
			slow[i] = append(slow[i], dasesim.Slowdown(alone.Apps[0].IPC, shared.Apps[i].IPC))
		}
	}
	fmt.Printf("\nslowdowns over %d seeds (mean, min..max):\n", n)
	for i, p := range profiles {
		mean, min, max := 0.0, slow[i][0], slow[i][0]
		for _, v := range slow[i] {
			mean += v
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
		}
		mean /= float64(len(slow[i]))
		fmt.Printf("  %-3s  %.3f  (%.3f..%.3f)\n", p.Abbr, mean, min, max)
	}
}
