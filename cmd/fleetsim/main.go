// Command fleetsim replays a multi-tenant job trace against a simulated GPU
// fleet and reports the allocation history and fairness digest of the
// time-aware fair-share scheduler (internal/fleet). Arrivals come from a
// deterministic Poisson generator or a CSV trace; runs are seeded and fully
// deterministic — a fixed seed produces byte-identical CSV output, across
// processes and across cycle-engine shard counts.
//
// Usage:
//
//	fleetsim -gpus 4 -intervals 12 -seed 42 -out alloc.csv
//	fleetsim -engine sim -parallelism 4 -golden -out golden.csv
//	fleetsim -trace-in arrivals.csv -trace events.ndjson
//
// The arrival CSV format is one job per line:
//
//	interval,tenant,job_id,kernel_abbr,min_sms,work
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"dasesim/internal/config"
	"dasesim/internal/fleet"
	"dasesim/internal/kernels"
	"dasesim/internal/sim"
	"dasesim/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "fleetsim: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("fleetsim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		gpus        = fs.Int("gpus", 4, "number of identical GPUs in the fleet")
		tenantsFlag = fs.String("tenants", "astra:24:1,borei:16:1,ceres:8:2", "tenant specs as name:quota_sms:weight,...")
		intervals   = fs.Int("intervals", 12, "scheduling intervals to simulate")
		seed        = fs.Uint64("seed", 42, "seed for arrivals and the cycle engine")
		engine      = fs.String("engine", "model", "ground-truth engine: model (closed-form) or sim (cycle engine)")
		parallelism = fs.Int("parallelism", -1, "cycle-engine shards (-1: DASESIM_PARALLEL env default; 0: GOMAXPROCS; n: n shards); output is byte-identical at any value")
		window      = fs.Int("window", 8, "allocation-history window in intervals")
		maxJobs     = fs.Int("max-jobs", 4, "max concurrent jobs per GPU")
		cycles      = fs.Uint64("interval-cycles", 20_000, "GPU cycles per scheduling interval")
		rates       = fs.String("rates", "1.2,0.8,0.5", "Poisson arrival rates (jobs/interval), one per tenant")
		kernelsFlag = fs.String("kernels", "BS,CT,QR,SP,SC,NN", "Table III kernel abbreviations jobs cycle through")
		maxMinSMs   = fs.Int("job-max-sms", 8, "max per-job SM demand drawn by the Poisson generator")
		work        = fs.Uint64("work", 60_000, "per-job warp-instruction budget for generated jobs")
		traceIn     = fs.String("trace-in", "", "replay arrivals from this CSV instead of generating them")
		out         = fs.String("out", "-", "allocation-history CSV destination (- for stdout)")
		tracePath   = fs.String("trace", "", "write NDJSON fleet telemetry to this file")
		golden      = fs.Bool("golden", false, "run the pinned determinism-golden scenario, ignoring scenario flags")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var sc fleet.Scenario
	if *golden {
		sc = fleet.GoldenScenario()
	} else {
		tenants, err := parseTenants(*tenantsFlag)
		if err != nil {
			return err
		}
		sc = fleet.Scenario{
			Config: fleet.Config{
				GPUs:            *gpus,
				GPU:             config.Default(),
				Tenants:         tenants,
				WindowIntervals: *window,
				MaxJobsPerGPU:   *maxJobs,
				IntervalCycles:  *cycles,
				Seed:            *seed,
			},
			Intervals: *intervals,
		}
		if *traceIn != "" {
			f, err := os.Open(*traceIn)
			if err != nil {
				return err
			}
			sc.Arrivals, err = parseArrivalCSV(f)
			f.Close()
			if err != nil {
				return fmt.Errorf("%s: %w", *traceIn, err)
			}
		} else {
			rt, err := parseRates(*rates, len(tenants))
			if err != nil {
				return err
			}
			profiles, err := parseKernels(*kernelsFlag)
			if err != nil {
				return err
			}
			sc.Arrivals = fleet.PoissonArrivals(*seed, tenants, rt, profiles, *intervals, *maxMinSMs, *work)
		}
	}

	switch *engine {
	case "model":
		if !*golden {
			sc.Config.Engine = &fleet.ModelEngine{Cfg: sc.Config.GPU}
		}
	case "sim":
		e := &fleet.SimEngine{Cfg: sc.Config.GPU}
		if *parallelism != -1 {
			e.Opts = append(e.Opts, sim.WithParallelism(*parallelism))
		}
		sc.Config.Engine = e
	default:
		return fmt.Errorf("unknown engine %q (want model or sim)", *engine)
	}

	var tracer *telemetry.Tracer
	if *tracePath != "" {
		tracer = telemetry.New(0)
		sc.Config.Tracer = tracer
	}

	f, err := sc.Run()
	if err != nil {
		return err
	}
	rec := f.Records()

	var csvDst io.Writer = stdout
	if *out != "-" {
		of, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer of.Close()
		csvDst = of
	}
	if err := fleet.WriteCSV(csvDst, rec); err != nil {
		return err
	}

	if tracer != nil {
		tf, err := os.Create(*tracePath)
		if err != nil {
			return err
		}
		if err := telemetry.WriteNDJSON(tf, tracer.Events()); err != nil {
			tf.Close()
			return err
		}
		if err := tf.Close(); err != nil {
			return err
		}
	}

	printSummary(stderr, fleet.Summarize(rec, f.Capacity()))
	return nil
}

// printSummary writes the run-level fairness digest to the diagnostic
// stream, keeping stdout clean for the CSV.
func printSummary(w io.Writer, s Summary) {
	fmt.Fprintf(w, "fleet: %d intervals, %d SMs, idle %d SM-intervals, Jain fairness %.4f\n",
		s.Intervals, s.Capacity, s.IdleSMs, s.JainIndex)
	for _, t := range s.Tenants {
		fmt.Fprintf(w, "  %-12s quota %3d  mean deserved %7.2f  allocated %6d SM-intervals  max debt %6.2f  mean slowdown %.3f\n",
			t.Name, t.QuotaSMs, t.MeanDeserved, t.TotalSMs, t.MaxDebtSMs, t.MeanSlowdown)
	}
}

// Summary aliases the fleet digest so printSummary has a short signature.
type Summary = fleet.Summary

// parseTenants parses "name:quota:weight,..." tenant specs.
func parseTenants(s string) ([]fleet.TenantSpec, error) {
	var tenants []fleet.TenantSpec
	for _, part := range strings.Split(s, ",") {
		fields := strings.Split(strings.TrimSpace(part), ":")
		if len(fields) != 3 {
			return nil, fmt.Errorf("tenant %q: want name:quota_sms:weight", part)
		}
		quota, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("tenant %q: bad quota: %w", part, err)
		}
		weight, err := strconv.ParseFloat(fields[2], 64)
		if err != nil {
			return nil, fmt.Errorf("tenant %q: bad weight: %w", part, err)
		}
		tenants = append(tenants, fleet.TenantSpec{Name: fields[0], QuotaSMs: quota, Weight: weight})
	}
	return tenants, nil
}

// parseRates parses the comma-separated per-tenant arrival rates.
func parseRates(s string, nTenants int) ([]float64, error) {
	parts := strings.Split(s, ",")
	if len(parts) != nTenants {
		return nil, fmt.Errorf("got %d rates for %d tenants", len(parts), nTenants)
	}
	rates := make([]float64, len(parts))
	for i, p := range parts {
		r, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("rate %q: %w", p, err)
		}
		rates[i] = r
	}
	return rates, nil
}

// parseKernels resolves comma-separated Table III abbreviations.
func parseKernels(s string) ([]kernels.Profile, error) {
	var profiles []kernels.Profile
	for _, abbr := range strings.Split(s, ",") {
		abbr = strings.TrimSpace(abbr)
		p, ok := kernels.ByAbbr(abbr)
		if !ok {
			return nil, fmt.Errorf("unknown Table III kernel %q (known: %s)", abbr, strings.Join(kernels.Names(), ","))
		}
		profiles = append(profiles, p)
	}
	return profiles, nil
}

// parseArrivalCSV reads an arrival trace: one job per line as
// interval,tenant,job_id,kernel_abbr,min_sms,work. Blank lines and lines
// starting with '#' are skipped; intervals must be non-decreasing.
func parseArrivalCSV(r io.Reader) ([]fleet.Arrival, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	var arrivals []fleet.Arrival
	last := 0
	for ln, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Split(line, ",")
		if len(fields) != 6 {
			return nil, fmt.Errorf("line %d: want interval,tenant,job_id,kernel_abbr,min_sms,work", ln+1)
		}
		iv, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("line %d: bad interval: %w", ln+1, err)
		}
		if iv < last {
			return nil, fmt.Errorf("line %d: intervals must be non-decreasing", ln+1)
		}
		last = iv
		kp, ok := kernels.ByAbbr(fields[3])
		if !ok {
			return nil, fmt.Errorf("line %d: unknown kernel %q", ln+1, fields[3])
		}
		minSMs, err := strconv.Atoi(fields[4])
		if err != nil {
			return nil, fmt.Errorf("line %d: bad min_sms: %w", ln+1, err)
		}
		work, err := strconv.ParseUint(fields[5], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("line %d: bad work: %w", ln+1, err)
		}
		arrivals = append(arrivals, fleet.Arrival{
			Interval: iv,
			Job: fleet.JobSpec{
				ID: fields[2], Tenant: fields[1], Kernel: kp,
				MinSMs: minSMs, Work: work,
			},
		})
	}
	return arrivals, nil
}
