package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dasesim/internal/telemetry"
)

func runCLI(t *testing.T, args ...string) (string, string, error) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	err := run(args, &stdout, &stderr)
	return stdout.String(), stderr.String(), err
}

func TestRunDefaultsDeterministic(t *testing.T) {
	out1, sum1, err := runCLI(t, "-intervals", "6")
	if err != nil {
		t.Fatal(err)
	}
	out2, sum2, err := runCLI(t, "-intervals", "6")
	if err != nil {
		t.Fatal(err)
	}
	if out1 != out2 {
		t.Fatal("same seed produced different CSV output")
	}
	if sum1 != sum2 {
		t.Fatal("same seed produced different summaries")
	}
	if !strings.HasPrefix(out1, "interval,tenant,") {
		t.Errorf("CSV missing header: %q", out1[:40])
	}
	if !strings.Contains(sum1, "Jain fairness") {
		t.Errorf("summary missing fairness digest: %q", sum1)
	}
	out3, _, err := runCLI(t, "-intervals", "6", "-seed", "7")
	if err != nil {
		t.Fatal(err)
	}
	if out3 == out1 {
		t.Fatal("different seeds produced identical CSV output")
	}
}

func TestRunOutFileAndTrace(t *testing.T) {
	dir := t.TempDir()
	csvPath := filepath.Join(dir, "alloc.csv")
	ndPath := filepath.Join(dir, "events.ndjson")
	stdout, _, err := runCLI(t, "-intervals", "4", "-out", csvPath, "-trace", ndPath)
	if err != nil {
		t.Fatal(err)
	}
	if stdout != "" {
		t.Errorf("-out file still wrote CSV to stdout: %q", stdout)
	}
	data, err := os.ReadFile(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(data, []byte("interval,tenant,")) {
		t.Error("CSV file missing header")
	}
	nf, err := os.Open(ndPath)
	if err != nil {
		t.Fatal(err)
	}
	defer nf.Close()
	events, err := telemetry.ReadNDJSON(nf)
	if err != nil {
		t.Fatal(err)
	}
	var jobs, intervals int
	for _, e := range events {
		switch e.Kind {
		case telemetry.KindFleetJob:
			jobs++
		case telemetry.KindFleetInterval:
			intervals++
		}
	}
	if jobs == 0 || intervals == 0 {
		t.Errorf("NDJSON trace has %d fleet.job and %d fleet.interval events", jobs, intervals)
	}
}

func TestRunTraceInCSV(t *testing.T) {
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "arrivals.csv")
	trace := strings.Join([]string{
		"# interval,tenant,job_id,kernel_abbr,min_sms,work",
		"0,astra,j0,BS,4,5000",
		"0,borei,j1,CT,8,5000",
		"2,astra,j2,QR,2,5000",
		"",
	}, "\n")
	if err := os.WriteFile(tracePath, []byte(trace), 0o644); err != nil {
		t.Fatal(err)
	}
	out, _, err := runCLI(t, "-intervals", "5", "-trace-in", tracePath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "astra") || !strings.Contains(out, "borei") {
		t.Error("replayed trace missing tenant rows")
	}
}

func TestRunSimEngineParallelismMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("cycle-engine run; skipped with -short")
	}
	args := []string{"-engine", "sim", "-intervals", "3", "-interval-cycles", "10000", "-work", "20000"}
	seq, _, err := runCLI(t, append(args, "-parallelism", "1")...)
	if err != nil {
		t.Fatal(err)
	}
	par, _, err := runCLI(t, append(args, "-parallelism", "4")...)
	if err != nil {
		t.Fatal(err)
	}
	if seq != par {
		t.Fatal("sim-engine CSV differs between 1 and 4 shards")
	}
}

func TestRunGoldenFlag(t *testing.T) {
	if testing.Short() {
		t.Skip("cycle-engine run; skipped with -short")
	}
	out1, _, err := runCLI(t, "-golden")
	if err != nil {
		t.Fatal(err)
	}
	out2, _, err := runCLI(t, "-golden")
	if err != nil {
		t.Fatal(err)
	}
	if out1 != out2 {
		t.Fatal("golden runs differ")
	}
}

func TestRunBadFlags(t *testing.T) {
	cases := [][]string{
		{"-engine", "quantum"},
		{"-tenants", "novalue"},
		{"-tenants", "a:x:1"},
		{"-tenants", "a:1:x"},
		{"-rates", "1.0"}, // three default tenants
		{"-rates", "1.0,x,1.0"},
		{"-kernels", "NOPE"},
		{"-trace-in", "/nonexistent/arrivals.csv"},
		{"-gpus", "0"},
		{"-badflag"},
	}
	for _, args := range cases {
		if _, _, err := runCLI(t, args...); err == nil {
			t.Errorf("args %v: run succeeded, want error", args)
		}
	}
}

func TestParseArrivalCSVErrors(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"short line", "0,astra,j0,BS,4"},
		{"bad interval", "x,astra,j0,BS,4,100"},
		{"decreasing interval", "2,astra,j0,BS,4,100\n1,astra,j1,BS,4,100"},
		{"unknown kernel", "0,astra,j0,NOPE,4,100"},
		{"bad min_sms", "0,astra,j0,BS,x,100"},
		{"bad work", "0,astra,j0,BS,4,x"},
	}
	for _, tc := range cases {
		if _, err := parseArrivalCSV(strings.NewReader(tc.in)); err == nil {
			t.Errorf("%s: parsed, want error", tc.name)
		}
	}
	good, err := parseArrivalCSV(strings.NewReader("0,a,j0,BS,4,100\n\n# comment\n1,b,j1,CT,2,50\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(good) != 2 || good[1].Job.ID != "j1" || good[1].Job.Work != 50 {
		t.Fatalf("parsed %+v", good)
	}
}
