// Command experiments regenerates the paper's tables and figures on the
// simulated GPU. Each experiment prints a text table with the measured
// numbers next to the paper's reference values where applicable.
//
// Usage:
//
//	experiments -run all
//	experiments -run fig5,fig9 -cycles 500000
//	experiments -list
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"dasesim/internal/experiments"
	"dasesim/internal/sim"
	"dasesim/internal/workload"
)

var order = []string{
	"tableII", "tableIII", "tableI",
	"fig2a", "fig2b", "fig3", "fig4",
	"fig5", "fig6", "fig7", "fig8a", "fig8b", "fig9",
	"extA", "extB", "extC", "extD", "extE", "extF", "extG",
}

func main() {
	runFlag := flag.String("run", "all", "comma-separated experiments to run, or 'all'")
	cycles := flag.Uint64("cycles", 0, "override shared-run cycle budget")
	pairSample := flag.Int("pairs", 0, "override sensitivity pair sample size")
	quads := flag.Int("quads", 0, "override four-app workload count")
	seed := flag.Uint64("seed", 0, "override random seed")
	jsonPath := flag.String("json", "", "also write results as JSON to this file")
	cacheDir := flag.String("cache-dir", "", "persist alone-run baselines under this directory")
	parallelism := flag.Int("parallelism", -1, "cycle-engine shards per simulation (-1: DASESIM_PARALLEL env default, else sequential; 0: GOMAXPROCS; n: n shards); every table and figure is byte-identical at any value")
	list := flag.Bool("list", false, "list available experiments")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file at exit")
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(order, "\n"))
		return
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows live objects
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			}
		}()
	}

	p := experiments.DefaultParams()
	if *cycles > 0 {
		p.SharedCycles = *cycles
	}
	if *pairSample > 0 {
		p.PairSample = *pairSample
	}
	if *quads > 0 {
		p.QuadCount = *quads
	}
	if *seed > 0 {
		p.Seed = *seed
	}
	if *parallelism >= 0 {
		p.SimOpts = append(p.SimOpts, sim.WithParallelism(*parallelism))
	}

	want := map[string]bool{}
	if *runFlag == "all" {
		for _, n := range order {
			want[n] = true
		}
	} else {
		for _, n := range strings.Split(*runFlag, ",") {
			n = strings.TrimSpace(n)
			if n != "" {
				want[n] = true
			}
		}
	}

	var cache workload.Baseline = workload.NewAloneCache(p.Cfg, p.SharedCycles, p.Seed, p.SimOpts...)
	if *cacheDir != "" {
		dc, err := workload.NewDiskCache(p.Cfg, p.SharedCycles, p.Seed, *cacheDir, p.SimOpts...)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cache dir: %v\n", err)
			os.Exit(1)
		}
		cache = dc
	}
	var fig5Res, fig6Res *experiments.AccuracyResult
	jsonOut := map[string]any{}
	record := func(name string, v any) { jsonOut[name] = v }

	for _, name := range order {
		if !want[name] {
			continue
		}
		start := time.Now()
		var err error
		switch name {
		case "tableII":
			tab := experiments.TableII(p)
			record(name, tab)
			fmt.Println(tab)
		case "tableIII":
			var rows []experiments.TableIIIRow
			if rows, err = experiments.TableIII(p); err == nil {
				record(name, rows)
				fmt.Println(experiments.RenderTableIII(rows))
			}
		case "tableI":
			tab := experiments.TableI(p, 4)
			record(name, tab)
			fmt.Println(tab)
		case "fig2a":
			var rows []experiments.Fig2Row
			if rows, err = experiments.Fig2a(p, cache); err == nil {
				record(name, rows)
				fmt.Println(experiments.RenderFig2a(rows))
			}
		case "fig2b":
			var rows []experiments.Fig2bRow
			if rows, err = experiments.Fig2b(p, cache); err == nil {
				record(name, rows)
				fmt.Println(experiments.RenderFig2b(rows))
			}
		case "fig3":
			var rows []experiments.Fig3Row
			var corr float64
			if rows, corr, err = experiments.Fig3(p); err == nil {
				record(name, map[string]any{"rows": rows, "correlation": corr})
				fmt.Println(experiments.RenderFig3(rows, corr))
			}
		case "fig4":
			var rows []experiments.Fig4Row
			if rows, err = experiments.Fig4(p, cache); err == nil {
				record(name, rows)
				fmt.Println(experiments.RenderFig4(rows))
			}
		case "fig5":
			if fig5Res, err = experiments.Fig5(p, cache); err == nil {
				record(name, fig5Res.MeanError)
				fmt.Println(fig5Res.Render("Fig.5 — Estimation error, two-application workloads"))
			}
		case "fig6":
			if fig6Res, err = experiments.Fig6(p, cache); err == nil {
				record(name, fig6Res.MeanError)
				fmt.Println(fig6Res.Render("Fig.6 — Estimation error, four-application workloads"))
			}
		case "fig7":
			if fig5Res == nil {
				if fig5Res, err = experiments.Fig5(p, cache); err != nil {
					break
				}
			}
			if fig6Res == nil {
				if fig6Res, err = experiments.Fig6(p, cache); err != nil {
					break
				}
			}
			f7 := experiments.Fig7(fig5Res, fig6Res)
			record(name, f7)
			fmt.Println(f7.Render())
		case "fig8a":
			var rows []experiments.SensitivityRow
			if rows, err = experiments.Fig8a(p, cache); err == nil {
				record(name, rows)
				fmt.Println(experiments.RenderSensitivity("Fig.8(a) — DASE error vs SM allocation", rows))
			}
		case "fig8b":
			var rows []experiments.SensitivityRow
			if rows, err = experiments.Fig8b(p, cache); err == nil {
				record(name, rows)
				fmt.Println(experiments.RenderSensitivity("Fig.8(b) — DASE error vs number of SMs", rows))
			}
		case "fig9":
			var res *experiments.Fig9Result
			if res, err = experiments.Fig9(p, cache); err == nil {
				record(name, res)
				fmt.Println(experiments.RenderFig9(res))
			}
		case "extA":
			var rows []experiments.ExtSchedRow
			if rows, err = experiments.ExtSchedulers(p, cache); err == nil {
				record(name, rows)
				fmt.Println(experiments.RenderExtSchedulers(rows))
			}
		case "extB":
			var res *experiments.AccuracyResult
			if res, err = experiments.ExtEstimators(p, cache); err == nil {
				record(name, res.MeanError)
				fmt.Println(experiments.RenderExtEstimators(res))
			}
		case "extC":
			var rows []experiments.SensitivityRow
			if rows, err = experiments.ExtIntervalSensitivity(p); err == nil {
				record(name, rows)
				fmt.Println(experiments.RenderSensitivity("Ext.C — DASE error vs estimation interval length", rows))
			}
		case "extD":
			var rows []experiments.SensitivityRow
			if rows, err = experiments.ExtRequestMaxFactor(p, cache); err == nil {
				record(name, rows)
				fmt.Println(experiments.RenderSensitivity("Ext.D — DASE error vs Requestmax factor (Eq. 20)", rows))
			}
		case "extE":
			var rows []experiments.SensitivityRow
			if rows, err = experiments.ExtLargeGPU(p); err == nil {
				record(name, rows)
				fmt.Println(experiments.RenderSensitivity("Ext.E — DASE accuracy across GPU configurations", rows))
			}
		case "extF":
			var res *experiments.Fig9Result
			if res, err = experiments.ExtQuadFairness(p, cache, 10); err == nil {
				record(name, res)
				tab := experiments.RenderFig9(res)
				tab.Title = "Ext.F — Unfairness and H.Speedup on four-application workloads"
				tab.Notes = []string{
					fmt.Sprintf("fairness improvement: %.1f%%", res.FairnessImprovement()*100),
					fmt.Sprintf("performance improvement: %.1f%%", res.PerformanceImprovement()*100),
					"extension beyond the paper: Fig. 9 evaluates pairs only",
				}
				fmt.Println(tab)
			}
		case "extG":
			var rows []experiments.ExtTemporalRow
			if rows, err = experiments.ExtTemporal(p, cache); err == nil {
				record(name, rows)
				fmt.Println(experiments.RenderExtTemporal(rows))
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiment %s failed: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("[%s took %v]\n\n", name, time.Since(start).Round(time.Millisecond))
	}

	if *jsonPath != "" {
		data, err := json.MarshalIndent(jsonOut, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "marshal results: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*jsonPath, data, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "write %s: %v\n", *jsonPath, err)
			os.Exit(1)
		}
		fmt.Printf("results written to %s\n", *jsonPath)
	}
}
