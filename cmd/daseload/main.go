// Command daseload is a load generator for dased's online estimation API
// (POST /v1/estimate). It drives a running daemon with per-interval counter
// snapshots and reports achieved throughput and latency percentiles in
// `go test -bench` format, so scripts/benchjson can append the numbers to
// the committed serving trajectory (BENCH_serve.json).
//
// Two traffic models:
//
//   - closed loop (-mode closed): -conns workers issue requests
//     back-to-back; latency is the request duration. Measures the service's
//     capacity under saturation.
//   - open loop (-mode open): requests are scheduled at a fixed -qps
//     independent of completions; latency is measured from the scheduled
//     send time, so queueing delay under overload is visible
//     (closed-loop numbers hide it — see "coordinated omission").
//
// The request corpus is an NDJSON file of estimate request bodies
// (-corpus), or, by default, synthesized by running a short two-app shared
// simulation and converting its recorded interval snapshots — so the load
// is shaped like real counter traffic, not toy constants.
//
// Usage:
//
//	daseload -addr http://localhost:8844 -mode closed -conns 8 -duration 10s
//	daseload -mode open -qps 50000 -conns 256 -duration 10s
//	daseload -corpus snapshots.ndjson -name ServeReplay
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dasesim"
	"dasesim/internal/estimate"
)

func main() {
	addr := flag.String("addr", "http://127.0.0.1:8844", "base URL of the dased instance")
	mode := flag.String("mode", "closed", "traffic model: closed | open")
	conns := flag.Int("conns", 8, "closed loop: worker count; open loop: max in-flight requests")
	qps := flag.Float64("qps", 0, "open loop: target request rate (required for -mode open)")
	duration := flag.Duration("duration", 5*time.Second, "measured run length")
	warmup := flag.Duration("warmup", 500*time.Millisecond, "closed-loop warmup before measuring (connections, pools)")
	corpusPath := flag.String("corpus", "", "NDJSON file of estimate request bodies (default: synthesized from a short simulation)")
	batch := flag.Int("batch", 1, "snapshots per request: group this many corpus entries into one array body")
	name := flag.String("name", "", "benchmark name for the output line (default ServeClosed | ServeOpen)")
	flag.Parse()

	fatal := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "daseload: "+format+"\n", args...)
		os.Exit(1)
	}

	var corpus [][]byte
	var err error
	if *corpusPath != "" {
		corpus, err = loadCorpus(*corpusPath)
	} else {
		fmt.Fprintln(os.Stderr, "daseload: synthesizing corpus from a two-app shared simulation")
		corpus, err = synthesizeCorpus(300_000)
	}
	if err != nil {
		fatal("corpus: %v", err)
	}
	fmt.Fprintf(os.Stderr, "daseload: corpus of %d request bodies\n", len(corpus))
	if *batch > 1 {
		corpus = batchCorpus(corpus, *batch)
	} else if *batch < 1 {
		fatal("-batch must be >= 1")
	}

	url := strings.TrimRight(*addr, "/") + "/v1/estimate"
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        *conns,
		MaxIdleConnsPerHost: *conns,
	}}
	if err := waitReady(client, strings.TrimRight(*addr, "/")+"/healthz", 5*time.Second); err != nil {
		fatal("%v", err)
	}

	var res runResult
	benchName := *name
	switch *mode {
	case "closed":
		if benchName == "" {
			benchName = "ServeClosed"
		}
		if *warmup > 0 {
			closedLoop(client, url, corpus, *conns, *warmup)
		}
		res = closedLoop(client, url, corpus, *conns, *duration)
	case "open":
		if benchName == "" {
			benchName = "ServeOpen"
		}
		if *qps <= 0 {
			fatal("-mode open requires -qps > 0")
		}
		res = openLoop(client, url, corpus, *qps, *conns, *duration)
	default:
		fatal("unknown -mode %q (closed | open)", *mode)
	}

	if n := res.errs(); n > 0 {
		fmt.Fprintf(os.Stderr, "daseload: %d requests failed\n", n)
		for _, code := range sortedCodes(res.statusErr) {
			fmt.Fprintf(os.Stderr, "daseload:   HTTP %d: %d\n", code, res.statusErr[code])
		}
		if res.transport > 0 {
			fmt.Fprintf(os.Stderr, "daseload:   transport (no response): %d\n", res.transport)
		}
	}
	s, ok := summarize(res, *batch)
	if !ok {
		fatal("no successful requests")
	}
	fmt.Println(benchLine(benchName, *conns, s, res))
	fmt.Fprintf(os.Stderr, "daseload: %d requests in %v: %.0f qps (%.0f estimates/s), p50 %v p95 %v p99 %v\n",
		s.n, res.elapsed.Round(time.Millisecond), s.qps, s.eps,
		time.Duration(s.p50), time.Duration(s.p95), time.Duration(s.p99))
	if res.errs() > 0 {
		os.Exit(1)
	}
}

// sortedCodes returns the map's status codes in ascending order so the
// failure report is stable run to run.
func sortedCodes(m map[int]int64) []int {
	codes := make([]int, 0, len(m))
	for c := range m {
		codes = append(codes, c)
	}
	sort.Ints(codes)
	return codes
}

// runResult is the raw outcome of one loop: per-request latencies in
// nanoseconds (unsorted), failures broken out by kind, and wall time spent.
// HTTP failures are counted per status code — a 429 (shed load) and a 500
// (broken server) are very different findings — and transport errors
// (refused, reset, timeout) separately from any HTTP answer at all.
type runResult struct {
	lats      []int64
	statusErr map[int]int64 // non-2xx responses by status code
	transport int64         // requests that never got an HTTP response
	elapsed   time.Duration
}

// errs is the total failed-request count.
func (r *runResult) errs() int64 {
	n := r.transport
	for _, c := range r.statusErr {
		n += c
	}
	return n
}

// countErr files one failure; a zero status means no response arrived.
func (r *runResult) countErr(status int) {
	if status == 0 {
		r.transport++
		return
	}
	if r.statusErr == nil {
		r.statusErr = map[int]int64{}
	}
	r.statusErr[status]++
}

// merge folds another result's latencies and failure counts into r.
func (r *runResult) merge(o runResult) {
	r.lats = append(r.lats, o.lats...)
	r.transport += o.transport
	for code, n := range o.statusErr {
		if r.statusErr == nil {
			r.statusErr = map[int]int64{}
		}
		r.statusErr[code] += n
	}
}

// stats condenses a runResult for reporting. qps counts HTTP requests; eps
// counts estimates (snapshots), which differ when bodies are batched.
type stats struct {
	n             int
	qps           float64
	eps           float64
	mean          float64
	p50, p95, p99 int64
}

// closedLoop saturates the endpoint with conns workers issuing requests
// back-to-back for d. Latency is the individual request duration.
func closedLoop(c *http.Client, url string, corpus [][]byte, conns int, d time.Duration) runResult {
	var next uint64
	perWorker := make([]runResult, conns)
	var wg sync.WaitGroup
	start := time.Now()
	deadline := start.Add(d)
	for w := 0; w < conns; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for time.Now().Before(deadline) {
				i := atomic.AddUint64(&next, 1)
				body := corpus[int(i)%len(corpus)]
				t0 := time.Now()
				if status, err := postOnce(c, url, body); err != nil {
					perWorker[w].countErr(status)
					continue
				}
				perWorker[w].lats = append(perWorker[w].lats, time.Since(t0).Nanoseconds())
			}
		}(w)
	}
	wg.Wait()
	res := runResult{elapsed: time.Since(start)}
	for w := range perWorker {
		res.merge(perWorker[w])
	}
	return res
}

// openLoop schedules requests at a fixed rate regardless of completions,
// capping in-flight requests at maxInFlight. Latency is measured from each
// request's scheduled send time, so time spent waiting for an in-flight
// slot (queueing under overload) counts against the service.
func openLoop(c *http.Client, url string, corpus [][]byte, qps float64, maxInFlight int, d time.Duration) runResult {
	interval := time.Duration(float64(time.Second) / qps)
	if interval <= 0 {
		interval = time.Nanosecond
	}
	sem := make(chan struct{}, maxInFlight)
	var mu sync.Mutex
	var res runResult
	var wg sync.WaitGroup
	start := time.Now()
	deadline := start.Add(d)
	for i := 0; ; i++ {
		sched := start.Add(time.Duration(i) * interval)
		if sched.After(deadline) {
			break
		}
		if sleep := time.Until(sched); sleep > 0 {
			time.Sleep(sleep)
		}
		sem <- struct{}{}
		wg.Add(1)
		go func(sched time.Time, body []byte) {
			defer wg.Done()
			defer func() { <-sem }()
			status, err := postOnce(c, url, body)
			if err != nil {
				mu.Lock()
				res.countErr(status)
				mu.Unlock()
				return
			}
			lat := time.Since(sched).Nanoseconds()
			mu.Lock()
			res.lats = append(res.lats, lat)
			mu.Unlock()
		}(sched, corpus[i%len(corpus)])
	}
	wg.Wait()
	res.elapsed = time.Since(start)
	return res
}

// postOnce issues one estimate request, draining and closing the response so
// the transport can reuse the connection. It returns the HTTP status (0 when
// no response arrived) and non-nil err for any failure; a non-200 answer is
// an error carrying its status, so callers can count refusals per code
// separately from transport breakage.
func postOnce(c *http.Client, url string, body []byte) (int, error) {
	resp, err := c.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	_, cerr := io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if cerr != nil {
		return 0, cerr
	}
	if resp.StatusCode != http.StatusOK {
		return resp.StatusCode, fmt.Errorf("status %d", resp.StatusCode)
	}
	return resp.StatusCode, nil
}

// waitReady polls the health endpoint until the daemon answers or the
// budget runs out, so the generator can be started alongside the server.
func waitReady(c *http.Client, healthURL string, budget time.Duration) error {
	deadline := time.Now().Add(budget)
	for {
		resp, err := c.Get(healthURL)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			if err != nil {
				return fmt.Errorf("server not ready after %v: %v", budget, err)
			}
			return fmt.Errorf("server not ready after %v", budget)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// summarize sorts the latencies and derives the reported statistics. batch
// is the number of estimates each request carried. ok is false when no
// request succeeded.
func summarize(r runResult, batch int) (stats, bool) {
	if len(r.lats) == 0 {
		return stats{}, false
	}
	sort.Slice(r.lats, func(i, j int) bool { return r.lats[i] < r.lats[j] })
	var sum int64
	for _, l := range r.lats {
		sum += l
	}
	n := len(r.lats)
	qps := float64(n) / r.elapsed.Seconds()
	return stats{
		n:    n,
		qps:  qps,
		eps:  qps * float64(batch),
		mean: float64(sum) / float64(n),
		p50:  percentile(r.lats, 50),
		p95:  percentile(r.lats, 95),
		p99:  percentile(r.lats, 99),
	}, true
}

// percentile reads the p-th percentile (nearest-rank) from sorted latencies.
func percentile(sorted []int64, p float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(p/100*float64(len(sorted))+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

// benchLine renders the run as one `go test -bench`-style line. The custom
// units (qps, p50-ns, ...) ride after the standard ns/op column and are
// picked up by scripts/benchjson into the entry's extra map. Failures append
// too, broken out per status code (err-429, err-503, ...) and as
// err-transport, so the trajectory records what kind of refusals a run hit —
// but only when non-zero, keeping clean runs' lines clean.
func benchLine(name string, conns int, s stats, res runResult) string {
	line := fmt.Sprintf("Benchmark%s-%d\t%8d\t%10.0f ns/op\t%12.1f qps\t%12.1f eps\t%10d p50-ns\t%10d p95-ns\t%10d p99-ns",
		name, conns, s.n, s.mean, s.qps, s.eps, s.p50, s.p95, s.p99)
	for _, code := range sortedCodes(res.statusErr) {
		line += fmt.Sprintf("\t%10d err-%d", res.statusErr[code], code)
	}
	if res.transport > 0 {
		line += fmt.Sprintf("\t%10d err-transport", res.transport)
	}
	return line
}

// batchCorpus groups size consecutive corpus entries into one JSON array
// body, wrapping around when the corpus does not divide evenly.
func batchCorpus(corpus [][]byte, size int) [][]byte {
	batched := make([][]byte, 0, (len(corpus)+size-1)/size)
	for start := 0; start < len(corpus); start += size {
		body := append([]byte(nil), '[')
		for k := 0; k < size; k++ {
			if k > 0 {
				body = append(body, ',')
			}
			body = append(body, corpus[(start+k)%len(corpus)]...)
		}
		body = append(body, ']')
		batched = append(batched, body)
	}
	return batched
}

// loadCorpus reads one estimate request body per non-empty line.
func loadCorpus(path string) ([][]byte, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var corpus [][]byte
	for _, line := range bytes.Split(data, []byte{'\n'}) {
		line = bytes.TrimSpace(line)
		if len(line) == 0 {
			continue
		}
		corpus = append(corpus, line)
	}
	if len(corpus) == 0 {
		return nil, fmt.Errorf("%s: no request lines", path)
	}
	return corpus, nil
}

// synthesizeCorpus runs a short two-app shared simulation and converts every
// recorded interval snapshot into a wire request, so benchmark traffic
// carries realistic counter values and natural variety across intervals.
func synthesizeCorpus(cycles uint64) ([][]byte, error) {
	cfg := dasesim.DefaultConfig()
	var ps []dasesim.KernelProfile
	for _, abbr := range []string{"SB", "SD"} {
		p, ok := dasesim.KernelByAbbr(abbr)
		if !ok {
			return nil, fmt.Errorf("kernel %s not in catalogue", abbr)
		}
		ps = append(ps, p)
	}
	res, err := dasesim.RunShared(cfg, ps, dasesim.EvenAllocation(cfg.NumSMs, len(ps)), cycles, 1)
	if err != nil {
		return nil, err
	}
	var corpus [][]byte
	for i := range res.Snapshots {
		snap := &res.Snapshots[i]
		if snap.IntervalCycles == 0 || len(snap.Apps) == 0 {
			continue
		}
		req := estimate.FromSnapshot(snap)
		corpus = append(corpus, estimate.AppendRequest(nil, &req))
	}
	if len(corpus) == 0 {
		return nil, fmt.Errorf("simulation recorded no usable snapshots")
	}
	return corpus, nil
}
