package main

import (
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
	"time"

	"dasesim"
	"dasesim/internal/server"
)

func TestPercentile(t *testing.T) {
	sorted := make([]int64, 100)
	for i := range sorted {
		sorted[i] = int64(i + 1) // 1..100
	}
	cases := []struct {
		p    float64
		want int64
	}{
		{50, 50},
		{95, 95},
		{99, 99},
		{100, 100},
		{0, 1},
	}
	for _, c := range cases {
		if got := percentile(sorted, c.p); got != c.want {
			t.Errorf("percentile(1..100, %v) = %d, want %d", c.p, got, c.want)
		}
	}
	if got := percentile(nil, 50); got != 0 {
		t.Errorf("percentile(nil) = %d, want 0", got)
	}
	if got := percentile([]int64{7}, 99); got != 7 {
		t.Errorf("percentile([7], 99) = %d, want 7", got)
	}
}

func TestSummarize(t *testing.T) {
	r := runResult{
		lats:    []int64{3000, 1000, 2000, 4000},
		elapsed: 2 * time.Second,
	}
	s, ok := summarize(r, 1)
	if !ok {
		t.Fatal("summarize reported no data")
	}
	if s.n != 4 || s.qps != 2 || s.eps != 2 || s.mean != 2500 {
		t.Errorf("summarize = %+v", s)
	}
	if s.p50 != 2000 || s.p99 != 4000 {
		t.Errorf("percentiles = p50 %d p99 %d", s.p50, s.p99)
	}
	if s, _ := summarize(r, 8); s.eps != 16 {
		t.Errorf("batched eps = %v, want 16", s.eps)
	}
	if _, ok := summarize(runResult{elapsed: time.Second}, 1); ok {
		t.Error("summarize of empty run must report !ok")
	}
}

func TestBatchCorpus(t *testing.T) {
	corpus := [][]byte{[]byte(`{"a":1}`), []byte(`{"b":2}`), []byte(`{"c":3}`)}
	got := batchCorpus(corpus, 2)
	if len(got) != 2 {
		t.Fatalf("got %d batches, want 2", len(got))
	}
	if string(got[0]) != `[{"a":1},{"b":2}]` {
		t.Errorf("batch 0 = %s", got[0])
	}
	// The tail wraps around to fill the final batch.
	if string(got[1]) != `[{"c":3},{"a":1}]` {
		t.Errorf("batch 1 = %s", got[1])
	}
}

// benchLine must parse under the same regexes scripts/benchjson uses, or the
// trajectory file silently loses the serving numbers.
func TestBenchLineParseable(t *testing.T) {
	line := benchLine("ServeClosed", 8, stats{
		n: 250000, qps: 50123.4, eps: 50123.4, mean: 8123, p50: 7100, p95: 11000, p99: 20000,
	}, runResult{statusErr: map[int]int64{429: 12, 503: 3}, transport: 2})
	benchRe := regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([\d.]+) ns/op`)
	m := benchRe.FindStringSubmatch(line)
	if m == nil {
		t.Fatalf("bench line does not match benchjson's parser: %q", line)
	}
	if m[1] != "BenchmarkServeClosed" {
		t.Errorf("parsed name %q", m[1])
	}
	for _, unit := range []string{"qps", "eps", "p50-ns", "p95-ns", "p99-ns", "err-429", "err-503", "err-transport"} {
		if !strings.Contains(line, " "+unit) {
			t.Errorf("line missing %s metric: %q", unit, line)
		}
	}
}

func TestLoadCorpus(t *testing.T) {
	path := filepath.Join(t.TempDir(), "corpus.ndjson")
	content := "{\"a\":1}\n\n  {\"b\":2}  \n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	corpus, err := loadCorpus(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(corpus) != 2 || string(corpus[0]) != `{"a":1}` || string(corpus[1]) != `{"b":2}` {
		t.Errorf("corpus = %q", corpus)
	}
	empty := filepath.Join(t.TempDir(), "empty.ndjson")
	if err := os.WriteFile(empty, []byte("\n\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadCorpus(empty); err == nil {
		t.Error("empty corpus must be an error")
	}
	if _, err := loadCorpus(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Error("missing file must be an error")
	}
}

// newLoadTestServer serves the real estimation API in-process so the loops
// can be exercised end to end without a network.
func newLoadTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	srv, err := server.New(server.Options{
		Cfg:    dasesim.DefaultConfig(),
		Logger: slog.New(slog.NewTextHandler(io.Discard, nil)),
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts
}

func testCorpus(t *testing.T) [][]byte {
	t.Helper()
	corpus, err := synthesizeCorpus(60_000)
	if err != nil {
		t.Fatal(err)
	}
	return corpus
}

func TestClosedLoopEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a simulation and a timed load loop; skipped with -short")
	}
	ts := newLoadTestServer(t)
	corpus := testCorpus(t)
	res := closedLoop(ts.Client(), ts.URL+"/v1/estimate", corpus, 2, 200*time.Millisecond)
	if n := res.errs(); n != 0 {
		t.Fatalf("%d requests failed", n)
	}
	s, ok := summarize(res, 1)
	if !ok || s.n == 0 {
		t.Fatal("closed loop completed no requests")
	}
	if s.p50 <= 0 || s.p99 < s.p50 {
		t.Errorf("implausible percentiles: %+v", s)
	}
}

func TestOpenLoopEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a simulation and a timed load loop; skipped with -short")
	}
	ts := newLoadTestServer(t)
	corpus := testCorpus(t)
	res := openLoop(ts.Client(), ts.URL+"/v1/estimate", corpus, 500, 16, 200*time.Millisecond)
	if n := res.errs(); n != 0 {
		t.Fatalf("%d requests failed", n)
	}
	s, ok := summarize(res, 1)
	if !ok {
		t.Fatal("open loop completed no requests")
	}
	// 500 qps over 200ms schedules ~100 requests; allow generous slop for
	// slow CI machines, but the loop must have sent a real fraction.
	if s.n < 20 {
		t.Errorf("open loop completed only %d requests", s.n)
	}
}

func TestWaitReady(t *testing.T) {
	ts := newLoadTestServer(t)
	if err := waitReady(ts.Client(), ts.URL+"/healthz", time.Second); err != nil {
		t.Errorf("healthy server reported not ready: %v", err)
	}
	if err := waitReady(http.DefaultClient, "http://127.0.0.1:1/healthz", 100*time.Millisecond); err == nil {
		t.Error("unreachable server must time out")
	}
}

// TestErrorClassification checks failures land in the right bucket: non-2xx
// responses counted per status code, connection failures counted as
// transport errors, and successes in neither.
func TestErrorClassification(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("/ok", func(w http.ResponseWriter, r *http.Request) {})
	mux.HandleFunc("/shed", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusTooManyRequests)
	})
	mux.HandleFunc("/drain", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable)
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)

	var res runResult
	post := func(url string, times int) {
		for i := 0; i < times; i++ {
			if status, err := postOnce(ts.Client(), url, []byte("{}")); err != nil {
				res.countErr(status)
			}
		}
	}
	post(ts.URL+"/ok", 2)
	post(ts.URL+"/shed", 3)
	post(ts.URL+"/drain", 1)
	post("http://127.0.0.1:1/unreachable", 2)

	if res.statusErr[429] != 3 || res.statusErr[503] != 1 {
		t.Errorf("statusErr = %v, want 429:3 503:1", res.statusErr)
	}
	if res.transport != 2 {
		t.Errorf("transport = %d, want 2", res.transport)
	}
	if got := res.errs(); got != 6 {
		t.Errorf("errs() = %d, want 6", got)
	}

	// merge must preserve the breakdown across worker results.
	var merged runResult
	merged.merge(res)
	merged.merge(runResult{statusErr: map[int]int64{429: 1}, transport: 1})
	if merged.statusErr[429] != 4 || merged.transport != 3 || merged.errs() != 8 {
		t.Errorf("merged = %v/%d (total %d), want 429:4 transport:3 total 8",
			merged.statusErr, merged.transport, merged.errs())
	}
}
