// Command dased is the DASE simulation daemon: it serves the simulator as a
// JSON HTTP API with a bounded worker pool, a FIFO job queue, a
// content-addressed result cache, and Prometheus metrics.
//
// Usage:
//
//	dased                          # listen on :8844 with defaults
//	dased -addr :9000 -workers 8 -queue 128
//	dased -config gpu.json -kernels custom.json
//	dased -journal dased.wal -max-retries 3   # crash-safe job journal
//	dased -trace-dir traces -log-format json  # per-job Chrome traces
//
// Cluster mode shards jobs across several daemons by consistent hashing on
// their simulation content address, with heartbeat failure detection,
// journal hand-off from dead nodes, and work-stealing (same -peers string on
// every node; -journal names a shared directory, one <node-id>.wal per
// node):
//
//	dased -node-id n1 -peers n1=http://h1:8844,n2=http://h2:8844,n3=http://h3:8844 \
//	      -journal /shared/dased -addr :8844
//
// Example session:
//
//	curl -s localhost:8844/v1/jobs -d '{"kernels":["SB","SD"],"slowdowns":true}'
//	curl -s localhost:8844/v1/jobs/job-1?wait_ms=30000
//	curl -s localhost:8844/v1/jobs/job-1/trace?format=ndjson
//	curl -s localhost:8844/metrics
//
// Besides the job API, the daemon serves DASE online: POST /v1/estimate
// answers a counter snapshot (or an array batch) with estimated slowdowns
// and a recommended SM partition without running a simulation, and
// POST /v1/estimate/stream does the same over an NDJSON request/response
// stream. Drive it with cmd/daseload to measure serving capacity.
//
// SIGINT/SIGTERM trigger a graceful shutdown that drains queued and running
// jobs (bounded by -drain-grace).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"dasesim"
	"dasesim/internal/cluster"
	"dasesim/internal/server"
)

// parsePeers decodes the -peers flag: comma-separated id=url pairs.
func parsePeers(s string) (map[string]string, error) {
	peers := map[string]string{}
	for _, pair := range strings.Split(s, ",") {
		id, url, ok := strings.Cut(strings.TrimSpace(pair), "=")
		if !ok || id == "" || url == "" {
			return nil, fmt.Errorf("bad -peers entry %q (want id=url)", pair)
		}
		if _, dup := peers[id]; dup {
			return nil, fmt.Errorf("duplicate node %q in -peers", id)
		}
		peers[id] = strings.TrimRight(url, "/")
	}
	return peers, nil
}

func main() {
	addr := flag.String("addr", ":8844", "HTTP listen address")
	workers := flag.Int("workers", 0, "simulation worker pool size (default: GOMAXPROCS)")
	queueDepth := flag.Int("queue", 64, "job queue depth; beyond it submissions get 429")
	jobTimeout := flag.Duration("job-timeout", 2*time.Minute, "per-job wall-time limit")
	defaultCycles := flag.Uint64("default-cycles", 300_000, "cycle budget for jobs that omit cycles")
	maxCycles := flag.Uint64("max-cycles", 20_000_000, "largest accepted cycle budget")
	cacheEntries := flag.Int("cache", 512, "result-cache capacity in entries")
	journalPath := flag.String("journal", "", "append job lifecycle records to this file and recover from it on startup (cluster mode: a shared directory, one <node-id>.wal per node)")
	maxRetries := flag.Int("max-retries", 2, "retries per job for transient failures (negative disables)")
	shedHighWater := flag.Int("shed-highwater", 0, "queue length at which uncached submissions are shed (0: 3/4 of -queue, negative: off)")
	drainGrace := flag.Duration("drain-grace", 30*time.Second, "shutdown drain budget before running jobs are hard-cancelled")
	configPath := flag.String("config", "", "load the GPU configuration from this JSON file")
	kernelsPath := flag.String("kernels", "", "load custom kernel profiles from this JSON file")
	snapRetention := flag.Int("snapshot-retention", 0, "interval snapshots kept per result (0: 4096, negative: unlimited)")
	checkInvariants := flag.Bool("check-invariants", false, "run the engine's periodic invariant sweep in every simulation (debug; a violation fails the job)")
	parallelism := flag.Int("parallelism", 0, "cycle-engine shards per simulation (0: sequential, n: n bulk-synchronous workers, negative: GOMAXPROCS); results are byte-identical at any value")
	debugAddr := flag.String("debug-addr", "", "serve net/http/pprof on this address (e.g. localhost:6060); empty disables")
	logFormat := flag.String("log-format", "text", "log output format: text | json")
	traceEvents := flag.Int("trace-events", 0, "per-job trace ring capacity in events; 0 disables tracing unless -trace-dir is set")
	traceDir := flag.String("trace-dir", "", "write each finished job's Chrome trace JSON into this directory (implies tracing)")
	estMinSMs := flag.Int("estimate-min-sms", 0, "minimum SMs per app in recommended partitions (0: 1)")
	estMaxApps := flag.Int("estimate-max-apps", 0, "most apps accepted per estimate snapshot (0: 8)")
	estMaxBody := flag.Int64("estimate-max-body", 0, "largest accepted estimate body/stream line in bytes (0: 1 MiB)")
	sloInterval := flag.Duration("slo-interval", 0, "evaluate SLO burn-rate objectives on this cadence, exporting dased_slo_burn_rate and a /readyz detail; 0 disables")
	nodeID := flag.String("node-id", "", "this node's cluster identity; required with -peers")
	peersFlag := flag.String("peers", "", "cluster peer map as comma-separated id=url pairs including this node; enables cluster mode")
	hbInterval := flag.Duration("heartbeat-interval", time.Second, "cluster heartbeat period; suspicion and death timeouts scale from it")
	flag.Parse()

	var handler slog.Handler
	switch *logFormat {
	case "text":
		handler = slog.NewTextHandler(os.Stderr, nil)
	case "json":
		handler = slog.NewJSONHandler(os.Stderr, nil)
	default:
		fmt.Fprintf(os.Stderr, "dased: unknown -log-format %q (text | json)\n", *logFormat)
		os.Exit(2)
	}
	logger := slog.New(handler)
	fatal := func(msg string, err error) {
		logger.Error(msg, "err", err)
		os.Exit(1)
	}

	opts := server.Options{
		NodeID:            *nodeID,
		Workers:           *workers,
		QueueDepth:        *queueDepth,
		JobTimeout:        *jobTimeout,
		DefaultCycles:     *defaultCycles,
		MaxCycles:         *maxCycles,
		CacheEntries:      *cacheEntries,
		JournalPath:       *journalPath,
		MaxRetries:        *maxRetries,
		ShedHighWater:     *shedHighWater,
		SnapshotRetention: *snapRetention,
		CheckInvariants:   *checkInvariants,
		Parallelism:       *parallelism,
		Logger:            logger,
		TraceEvents:       *traceEvents,
		TraceDir:          *traceDir,
		EstimateMinSMs:    *estMinSMs,
		EstimateMaxApps:   *estMaxApps,
		EstimateMaxBody:   *estMaxBody,
		SLOInterval:       *sloInterval,
	}
	// In Options, 0 retries means "use the default"; on the command line an
	// explicit 0 means none.
	if *maxRetries == 0 {
		opts.MaxRetries = -1
	}
	clusterMode := *peersFlag != ""
	journalDir := ""
	if clusterMode {
		if *nodeID == "" {
			fatal("cluster init", errors.New("-peers requires -node-id"))
		}
		// In cluster mode -journal names the shared hand-off directory;
		// this node's own journal lives inside it.
		if *journalPath != "" {
			journalDir = *journalPath
			if err := os.MkdirAll(journalDir, 0o755); err != nil {
				fatal("create journal dir", err)
			}
			opts.JournalPath = filepath.Join(journalDir, *nodeID+".wal")
		}
	}
	if *configPath != "" {
		cfg, err := dasesim.LoadConfig(*configPath)
		if err != nil {
			fatal("load config", err)
		}
		opts.Cfg = cfg
	}
	if *kernelsPath != "" {
		catalogue, err := dasesim.LoadKernels(*kernelsPath)
		if err != nil {
			fatal("load kernels", err)
		}
		opts.Catalogue = catalogue
	}

	srv, err := server.New(opts)
	if err != nil {
		fatal("server init", err)
	}
	srv.Start()

	apiHandler := srv.Handler()
	var node *cluster.Node
	if clusterMode {
		peers, err := parsePeers(*peersFlag)
		if err != nil {
			fatal("cluster init", err)
		}
		node, err = cluster.New(srv, cluster.Options{
			Self:              *nodeID,
			Peers:             peers,
			HeartbeatInterval: *hbInterval,
			JournalDir:        journalDir,
			Logger:            logger,
			// The cluster layer shares the job tracer's capacity setting: one
			// flag turns on end-to-end tracing, node-local and cross-node.
			TraceEvents: *traceEvents,
		})
		if err != nil {
			fatal("cluster init", err)
		}
		node.Start()
		apiHandler = node.Handler()
		logger.Info("cluster mode", "node", *nodeID, "peers", len(peers), "journal_dir", journalDir)
	}

	if *debugAddr != "" {
		// The profiling endpoints live on their own listener so they are
		// never exposed on the public API address.
		dbg := http.NewServeMux()
		dbg.HandleFunc("/debug/pprof/", pprof.Index)
		dbg.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dbg.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dbg.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dbg.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			logger.Info("pprof listening", "addr", *debugAddr)
			if err := http.ListenAndServe(*debugAddr, dbg); err != nil {
				logger.Error("pprof server failed", "err", err)
			}
		}()
	}

	// ReadTimeout covers header + body: job submissions are small JSON
	// documents, so a client that cannot deliver one inside 30s is stalled or
	// hostile. No WriteTimeout — long-poll responses legitimately take up to
	// LongPollMax to produce.
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           apiHandler,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	logger.Info("listening", "addr", *addr)

	select {
	case err := <-errCh:
		fatal("http server", err)
	case <-ctx.Done():
	}

	logger.Info("shutting down; draining jobs", "grace", *drainGrace)
	grace, cancel := context.WithTimeout(context.Background(), *drainGrace)
	defer cancel()
	if err := httpSrv.Shutdown(grace); err != nil {
		logger.Error("http shutdown failed", "err", err)
	}
	if node != nil {
		node.Stop()
	}
	if err := srv.Shutdown(grace); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		logger.Error("drain failed", "err", err)
	}
	logger.Info("stopped")
}
