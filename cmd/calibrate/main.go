// Command calibrate runs every Table III kernel alone on the configured GPU
// and reports measured vs target bandwidth utilisation, with a suggested
// ScatterFrac adjustment for kernels that drifted out of band. Use it after
// changing the memory-system model (timings, scheduler, buffer sizes) to
// re-tune the synthetic workloads (see DESIGN.md §2).
//
// The suggestion uses the locally measured sensitivity of saturated
// utilisation to ScatterFrac (~ -0.63 utilisation per unit ScatterFrac on
// the Table II device); treat it as a starting point, not an oracle.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"dasesim"
)

func main() {
	cycles := flag.Uint64("cycles", 150_000, "alone-run cycle budget per kernel")
	band := flag.Float64("band", 0.04, "acceptable |measured-target| band")
	slope := flag.Float64("slope", -0.63, "d(utilisation)/d(ScatterFrac) used for suggestions")
	flag.Parse()

	cfg := dasesim.DefaultConfig()
	fmt.Println("app  target  measured  delta   rowhit  alpha  IPC     suggestion")
	outOfBand := 0
	for _, p := range dasesim.Kernels() {
		res, err := dasesim.RunAlone(cfg, p, *cycles, 1)
		if err != nil {
			log.Fatal(err)
		}
		a := res.Apps[0]
		delta := a.BWUtil - p.PaperBW
		suggestion := "ok"
		if delta > *band || delta < -*band {
			outOfBand++
			// Saturated streamers tune via ScatterFrac (utilisation falls
			// as scatter rises); demand-limited kernels tune via MemFrac.
			if a.Alpha > 0.5 {
				newSF := p.ScatterFrac + delta/(-*slope)
				if newSF < 0 {
					suggestion = fmt.Sprintf("lower MemFrac (ScatterFrac already %.3f)", p.ScatterFrac)
				} else {
					suggestion = fmt.Sprintf("ScatterFrac %.3f -> %.3f", p.ScatterFrac, newSF)
				}
			} else {
				scale := p.PaperBW / a.BWUtil
				suggestion = fmt.Sprintf("MemFrac %.4f -> %.4f", p.MemFrac, p.MemFrac*scale)
			}
		}
		fmt.Printf("%-3s  %5.1f%%  %7.1f%%  %+5.1f%%  %5.1f%%  %4.2f  %6.2f  %s\n",
			p.Abbr, p.PaperBW*100, a.BWUtil*100, delta*100,
			a.RowHitRate*100, a.Alpha, a.IPC, suggestion)
	}
	if outOfBand > 0 {
		fmt.Printf("\n%d kernel(s) out of band\n", outOfBand)
		os.Exit(1)
	}
	fmt.Println("\nall kernels within band")
}
