// Command dasetrace renders a DASE trace (the NDJSON event stream produced
// by dased's GET /v1/jobs/{id}/trace?format=ndjson, or by any
// telemetry.WriteNDJSON caller) as a per-application estimated-vs-actual
// slowdown error timeline: one row per estimation interval with the
// estimate, the signed relative error against the measured whole-run
// slowdown, and an ASCII error bar.
//
// Usage:
//
//	dasetrace trace.ndjson
//	curl -s localhost:8844/v1/jobs/job-1/trace?format=ndjson | dasetrace
//	dasetrace -actual 1.8,2.4 trace.ndjson   # override the ground truth
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"

	"dasesim/internal/telemetry"
)

func main() {
	actualFlag := flag.String("actual", "", "comma-separated measured slowdowns per app, overriding the trace's slowdown.actual events")
	flag.Parse()

	in := io.Reader(os.Stdin)
	if flag.NArg() > 1 {
		fmt.Fprintln(os.Stderr, "dasetrace: at most one trace file")
		os.Exit(2)
	}
	if flag.NArg() == 1 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fmt.Fprintf(os.Stderr, "dasetrace: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
	}

	events, err := telemetry.ReadNDJSON(in)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dasetrace: %v\n", err)
		os.Exit(1)
	}
	actuals, err := parseActuals(*actualFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dasetrace: %v\n", err)
		os.Exit(2)
	}
	out, err := render(events, actuals)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dasetrace: %v\n", err)
		os.Exit(1)
	}
	fmt.Print(out)
}

// parseActuals parses the -actual override ("1.8,2.4" → per-app slowdowns).
func parseActuals(s string) ([]float64, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]float64, len(parts))
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("bad -actual entry %q", p)
		}
		out[i] = v
	}
	return out, nil
}

// render builds the error-timeline report. actuals, when non-nil, replaces
// the trace's slowdown.actual ground truth (entry i applies to app i).
func render(events []telemetry.Event, actuals []float64) (string, error) {
	if actuals != nil {
		// Strip recorded actuals and append the overrides so ErrorTimeline
		// sees exactly the ground truth the user asked for.
		kept := events[:0:0]
		for _, e := range events {
			if e.Kind != telemetry.KindActual {
				kept = append(kept, e)
			}
		}
		for i, a := range actuals {
			kept = append(kept, telemetry.Event{
				Kind: telemetry.KindActual, App: int32(i), SM: -1, Actual: a,
			})
		}
		events = kept
	}
	timelines := telemetry.ErrorTimeline(events)
	if len(timelines) == 0 {
		return "", fmt.Errorf("no dase.app events in trace (was the job traced and run under a DASE policy or with slowdowns?)")
	}
	var sb strings.Builder
	for _, tl := range timelines {
		fmt.Fprintf(&sb, "app %d", tl.App)
		if tl.Actual > 0 {
			fmt.Fprintf(&sb, "  actual slowdown %.3f  mean|err| %s  max|err| %s",
				tl.Actual, pct(tl.MeanAbsErr()), pct(tl.MaxAbsErr()))
		} else {
			sb.WriteString("  (no measured slowdown; errors unavailable)")
		}
		sb.WriteByte('\n')
		fmt.Fprintf(&sb, "  %12s  %8s  %8s  %4s  %s\n", "cycle", "est", "err", "mbb", "")
		for _, p := range tl.Points {
			mbb := ""
			if p.MBB {
				mbb = "mbb"
			}
			fmt.Fprintf(&sb, "  %12d  %8.3f  %8s  %4s  %s\n",
				p.Cycle, p.Est, pct(p.Err), mbb, errBar(p.Err))
		}
	}
	return sb.String(), nil
}

// pct renders a relative error as a signed percentage ("-" when unknown).
func pct(v float64) string {
	if math.IsNaN(v) {
		return "-"
	}
	return fmt.Sprintf("%+.1f%%", v*100)
}

// errBar draws a signed error bar around a center line: '<' for
// underestimation, '>' for overestimation, one character per 5% up to ±50%.
func errBar(err float64) string {
	if math.IsNaN(err) {
		return ""
	}
	n := int(math.Round(math.Abs(err) / 0.05))
	if n > 10 {
		n = 10
	}
	switch {
	case n == 0:
		return "|"
	case err < 0:
		return strings.Repeat("<", n) + "|"
	default:
		return "|" + strings.Repeat(">", n)
	}
}
