// Command dasetrace renders DASE traces (the NDJSON event streams produced
// by dased's GET /v1/jobs/{id}/trace?format=ndjson, the cluster layer's
// GET /cluster/v1/trace?format=ndjson, or any telemetry.WriteNDJSON caller).
//
// Single-stream mode renders a per-application estimated-vs-actual slowdown
// error timeline: one row per estimation interval with the estimate, the
// signed relative error against the measured whole-run slowdown, and an
// ASCII error bar.
//
// Multi-trace mode (-trace, repeatable) merges per-node NDJSON streams by
// trace ID and renders a cross-node span timeline — submit on node A,
// forwarded to B, stolen by C, done — and can export the merged view as a
// single Chrome trace with one track per node (-chrome).
//
// All inputs are validated strictly: a schema-invalid stream (unknown event
// kind, unknown field, malformed trace id) exits non-zero with the offending
// line instead of rendering a partial timeline.
//
// Usage:
//
//	dasetrace trace.ndjson
//	curl -s localhost:8844/v1/jobs/job-1/trace?format=ndjson | dasetrace
//	dasetrace -actual 1.8,2.4 trace.ndjson    # override the ground truth
//	dasetrace -trace n1.ndjson -trace n2.ndjson -trace n3.ndjson
//	dasetrace -trace n1.ndjson -trace n2.ndjson -chrome merged.json
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"

	"dasesim/internal/telemetry"
)

// multiFlag collects a repeatable string flag.
type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, ",") }
func (m *multiFlag) Set(s string) error { *m = append(*m, s); return nil }

func main() {
	var traces multiFlag
	actualFlag := flag.String("actual", "", "comma-separated measured slowdowns per app, overriding the trace's slowdown.actual events")
	flag.Var(&traces, "trace", "per-node NDJSON trace file; repeat to merge multiple nodes (enables cross-node timeline mode)")
	chromeOut := flag.String("chrome", "", "write the merged multi-trace view as Chrome trace JSON to this path ('-' for stdout)")
	flag.Parse()

	if len(traces) > 0 {
		os.Exit(runMerged(traces, *chromeOut))
	}
	if *chromeOut != "" {
		fmt.Fprintln(os.Stderr, "dasetrace: -chrome requires -trace inputs")
		os.Exit(2)
	}

	in := io.Reader(os.Stdin)
	if flag.NArg() > 1 {
		fmt.Fprintln(os.Stderr, "dasetrace: at most one trace file (use -trace to merge several)")
		os.Exit(2)
	}
	if flag.NArg() == 1 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fmt.Fprintf(os.Stderr, "dasetrace: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
	}

	events, err := telemetry.ReadNDJSONStrict(in)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dasetrace: invalid trace: %v\n", err)
		os.Exit(1)
	}
	actuals, err := parseActuals(*actualFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dasetrace: %v\n", err)
		os.Exit(2)
	}
	out, err := render(events, actuals)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dasetrace: %v\n", err)
		os.Exit(1)
	}
	fmt.Print(out)
}

// runMerged is the multi-trace path: strict-read every file, merge, print the
// cross-node timeline, optionally export a Chrome trace. Returns the exit
// code.
func runMerged(paths []string, chromeOut string) int {
	merged, err := readTraces(paths)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dasetrace: %v\n", err)
		return 1
	}
	fmt.Print(renderSpans(merged))
	if chromeOut != "" {
		w := io.Writer(os.Stdout)
		if chromeOut != "-" {
			f, err := os.Create(chromeOut)
			if err != nil {
				fmt.Fprintf(os.Stderr, "dasetrace: %v\n", err)
				return 1
			}
			defer f.Close()
			w = f
		}
		if err := telemetry.WriteChromeTrace(w, merged); err != nil {
			fmt.Fprintf(os.Stderr, "dasetrace: %v\n", err)
			return 1
		}
		if chromeOut != "-" {
			fmt.Fprintf(os.Stderr, "dasetrace: wrote chrome trace to %s\n", chromeOut)
		}
	}
	return 0
}

// readTraces strict-reads every NDJSON file and merges the events on the
// shared wall-clock axis (ties broken by node then sequence), so interleaved
// per-node streams come out as one coherent cluster timeline.
func readTraces(paths []string) ([]telemetry.Event, error) {
	var merged []telemetry.Event
	for _, path := range paths {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		events, err := telemetry.ReadNDJSONStrict(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("%s: invalid trace: %w", path, err)
		}
		merged = append(merged, events...)
	}
	sort.SliceStable(merged, func(i, j int) bool {
		a, b := &merged[i], &merged[j]
		if a.Wall != b.Wall {
			return a.Wall < b.Wall
		}
		if a.Node != b.Node {
			return a.Node < b.Node
		}
		return a.Seq < b.Seq
	})
	return merged, nil
}

// renderSpans reports the merged stream grouped by trace ID: every trace
// becomes a timeline of node-annotated hops with wall-clock offsets from the
// trace's first event. Events without a trace ID (engine cycle-domain
// telemetry) are counted but not listed.
func renderSpans(events []telemetry.Event) string {
	type trace struct {
		id     uint64
		events []*telemetry.Event
	}
	byID := map[uint64]*trace{}
	var order []*trace
	untraced := 0
	for i := range events {
		e := &events[i]
		if e.TraceID == 0 {
			untraced++
			continue
		}
		tr, ok := byID[e.TraceID]
		if !ok {
			tr = &trace{id: e.TraceID}
			byID[e.TraceID] = tr
			order = append(order, tr)
		}
		tr.events = append(tr.events, e)
	}

	var sb strings.Builder
	fmt.Fprintf(&sb, "%d event(s), %d trace(s), %d untraced\n", len(events), len(order), untraced)
	for _, tr := range order {
		nodes := map[string]bool{}
		for _, e := range tr.events {
			if e.Node != "" {
				nodes[e.Node] = true
			}
		}
		fmt.Fprintf(&sb, "\ntrace %s  (%d node(s), %d event(s))\n",
			telemetry.FormatSpanID(tr.id), len(nodes), len(tr.events))
		t0 := tr.events[0].Wall
		for _, e := range tr.events {
			fmt.Fprintf(&sb, "  %10s  %-8s %s\n", offset(e.Wall-t0), e.Node, describe(e))
		}
	}
	return sb.String()
}

// describe renders one traced event's payload for the span timeline.
func describe(e *telemetry.Event) string {
	switch e.Kind {
	case telemetry.KindClusterRPC:
		status := "ok"
		if !e.CacheHit {
			status = "err"
		}
		return fmt.Sprintf("rpc %-10s → %-8s (%s, %s)", e.Note, e.Job, offset(e.Dur), status)
	case telemetry.KindJobRouted:
		return fmt.Sprintf("routed %s → %s", e.Job, e.Note)
	case telemetry.KindJobDone:
		d := e.Kind.String() + " " + e.Job
		if e.Note != "" {
			d += " (" + e.Note + ")"
		} else if e.CacheHit {
			d += " (cache hit)"
		}
		return d
	default:
		d := e.Kind.String() + " " + e.Job
		if e.Note != "" {
			d += " (" + e.Note + ")"
		}
		return d
	}
}

// offset renders a nanosecond offset with an auto-scaled unit.
func offset(ns int64) string {
	switch {
	case ns >= 1e9:
		return fmt.Sprintf("+%.2fs", float64(ns)/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("+%.1fms", float64(ns)/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("+%.0fµs", float64(ns)/1e3)
	default:
		return fmt.Sprintf("+%dns", ns)
	}
}

// parseActuals parses the -actual override ("1.8,2.4" → per-app slowdowns).
func parseActuals(s string) ([]float64, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]float64, len(parts))
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("bad -actual entry %q", p)
		}
		out[i] = v
	}
	return out, nil
}

// render builds the error-timeline report. actuals, when non-nil, replaces
// the trace's slowdown.actual ground truth (entry i applies to app i).
func render(events []telemetry.Event, actuals []float64) (string, error) {
	if actuals != nil {
		// Strip recorded actuals and append the overrides so ErrorTimeline
		// sees exactly the ground truth the user asked for.
		kept := events[:0:0]
		for _, e := range events {
			if e.Kind != telemetry.KindActual {
				kept = append(kept, e)
			}
		}
		for i, a := range actuals {
			kept = append(kept, telemetry.Event{
				Kind: telemetry.KindActual, App: int32(i), SM: -1, Actual: a,
			})
		}
		events = kept
	}
	timelines := telemetry.ErrorTimeline(events)
	if len(timelines) == 0 {
		return "", fmt.Errorf("no dase.app events in trace (was the job traced and run under a DASE policy or with slowdowns?)")
	}
	var sb strings.Builder
	for _, tl := range timelines {
		fmt.Fprintf(&sb, "app %d", tl.App)
		if tl.Actual > 0 {
			fmt.Fprintf(&sb, "  actual slowdown %.3f  mean|err| %s  max|err| %s",
				tl.Actual, pct(tl.MeanAbsErr()), pct(tl.MaxAbsErr()))
		} else {
			sb.WriteString("  (no measured slowdown; errors unavailable)")
		}
		sb.WriteByte('\n')
		fmt.Fprintf(&sb, "  %12s  %8s  %8s  %4s  %s\n", "cycle", "est", "err", "mbb", "")
		for _, p := range tl.Points {
			mbb := ""
			if p.MBB {
				mbb = "mbb"
			}
			fmt.Fprintf(&sb, "  %12d  %8.3f  %8s  %4s  %s\n",
				p.Cycle, p.Est, pct(p.Err), mbb, errBar(p.Err))
		}
	}
	return sb.String(), nil
}

// pct renders a relative error as a signed percentage ("-" when unknown).
func pct(v float64) string {
	if math.IsNaN(v) {
		return "-"
	}
	return fmt.Sprintf("%+.1f%%", v*100)
}

// errBar draws a signed error bar around a center line: '<' for
// underestimation, '>' for overestimation, one character per 5% up to ±50%.
func errBar(err float64) string {
	if math.IsNaN(err) {
		return ""
	}
	n := int(math.Round(math.Abs(err) / 0.05))
	if n > 10 {
		n = 10
	}
	switch {
	case n == 0:
		return "|"
	case err < 0:
		return strings.Repeat("<", n) + "|"
	default:
		return "|" + strings.Repeat(">", n)
	}
}
