package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dasesim/internal/telemetry"
)

// writeTrace serializes events as NDJSON into a temp file and returns its path.
func writeTrace(t *testing.T, dir, name string, events []telemetry.Event) string {
	t.Helper()
	path := filepath.Join(dir, name)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := telemetry.WriteNDJSON(f, events); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// crossNodeEvents builds a three-node forwarded-job story sharing one trace:
// queued on n1, rpc-forwarded to n2, executed and done on n2.
func crossNodeEvents() (n1, n2 []telemetry.Event) {
	const trace = 0xabcdef0123456789
	n1 = []telemetry.Event{
		{Kind: telemetry.KindJobQueued, Seq: 1, Wall: 1000, App: -1, SM: -1,
			Job: "n2-42", Node: "n1", TraceID: trace, SpanID: 0x11, ParentID: 0x1},
		{Kind: telemetry.KindClusterRPC, Seq: 2, Wall: 1200, App: -1, SM: -1,
			Job: "n2", Note: "forward", Node: "n1", Dur: 900, CacheHit: true,
			TraceID: trace, SpanID: 0x12, ParentID: 0x11},
		{Kind: telemetry.KindJobRouted, Seq: 3, Wall: 2200, App: -1, SM: -1,
			Job: "n2-42", Note: "n2", Node: "n1", TraceID: trace, SpanID: 0x12, ParentID: 0x11},
	}
	n2 = []telemetry.Event{
		{Kind: telemetry.KindJobStarted, Seq: 1, Wall: 1600, App: -1, SM: -1,
			Job: "n2-42", Node: "n2", TraceID: trace, SpanID: 0x21, ParentID: 0x12},
		{Kind: telemetry.KindJobDone, Seq: 2, Wall: 2000, App: -1, SM: -1,
			Job: "n2-42", Node: "n2", TraceID: trace, SpanID: 0x21, ParentID: 0x12},
	}
	return n1, n2
}

func TestReadTracesMergesByWallClock(t *testing.T) {
	dir := t.TempDir()
	n1, n2 := crossNodeEvents()
	merged, err := readTraces([]string{
		writeTrace(t, dir, "n1.ndjson", n1),
		writeTrace(t, dir, "n2.ndjson", n2),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(merged) != 5 {
		t.Fatalf("merged %d events, want 5", len(merged))
	}
	// Wall-clock order interleaves the nodes: queued(n1), rpc(n1),
	// started(n2), done(n2), routed(n1).
	wantKinds := []telemetry.Kind{
		telemetry.KindJobQueued, telemetry.KindClusterRPC,
		telemetry.KindJobStarted, telemetry.KindJobDone, telemetry.KindJobRouted,
	}
	for i, k := range wantKinds {
		if merged[i].Kind != k {
			t.Errorf("merged[%d].Kind = %v, want %v", i, merged[i].Kind, k)
		}
	}
}

func TestReadTracesRejectsInvalid(t *testing.T) {
	dir := t.TempDir()
	good := writeTrace(t, dir, "good.ndjson", []telemetry.Event{
		{Kind: telemetry.KindJobQueued, Seq: 1, App: -1, SM: -1, Job: "j", Node: "n1"},
	})
	cases := []struct {
		name, content, wantErr string
	}{
		{"unknown kind", `{"kind":"job.exploded","seq":1,"app":-1,"sm":-1}`, "unknown event kind"},
		{"unknown field", `{"kind":"job.queued","seq":1,"app":-1,"sm":-1,"bogus":true}`, "bogus"},
		{"bad trace id", `{"kind":"job.queued","seq":1,"app":-1,"sm":-1,"trace_id":"zzzz"}`, "invalid trace_id"},
		{"not json", `nope`, "line 1"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			bad := filepath.Join(dir, "bad.ndjson")
			if err := os.WriteFile(bad, []byte(c.content+"\n"), 0o644); err != nil {
				t.Fatal(err)
			}
			_, err := readTraces([]string{good, bad})
			if err == nil {
				t.Fatal("want error for schema-invalid trace")
			}
			if !strings.Contains(err.Error(), c.wantErr) {
				t.Errorf("error %q does not mention %q", err, c.wantErr)
			}
			if !strings.Contains(err.Error(), "bad.ndjson") {
				t.Errorf("error %q does not name the offending file", err)
			}
		})
	}
}

func TestReadTracesMissingFile(t *testing.T) {
	if _, err := readTraces([]string{"/does/not/exist.ndjson"}); err == nil {
		t.Fatal("want error for a missing file")
	}
}

func TestRenderSpansCrossNodeTimeline(t *testing.T) {
	n1, n2 := crossNodeEvents()
	merged := append(append([]telemetry.Event(nil), n1...), n2...)
	// Sort path exercised through readTraces elsewhere; here feed unsorted
	// to show renderSpans groups by trace regardless.
	out := renderSpans(merged)

	for _, want := range []string{
		"1 trace(s)",
		"trace abcdef0123456789",
		"2 node(s), 5 event(s)",
		"rpc forward",
		"routed n2-42 → n2",
		"job.done n2-42",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("renderSpans missing %q:\n%s", want, out)
		}
	}
	// Both nodes must appear as hop annotations.
	if !strings.Contains(out, "n1") || !strings.Contains(out, "n2") {
		t.Errorf("timeline lacks node annotations:\n%s", out)
	}
}

func TestRenderSpansCountsUntraced(t *testing.T) {
	events := []telemetry.Event{
		{Kind: telemetry.KindDASEApp, Seq: 1, App: 0, SM: -1}, // cycle-domain, no trace
		{Kind: telemetry.KindJobQueued, Seq: 2, App: -1, SM: -1, Job: "j",
			Node: "n1", TraceID: 5, SpanID: 6},
	}
	out := renderSpans(events)
	if !strings.Contains(out, "1 untraced") {
		t.Errorf("untraced count missing:\n%s", out)
	}
}

func TestRenderSpansSeparatesTraces(t *testing.T) {
	events := []telemetry.Event{
		{Kind: telemetry.KindJobQueued, Seq: 1, App: -1, SM: -1, Job: "a", Node: "n1", TraceID: 1, SpanID: 2},
		{Kind: telemetry.KindJobQueued, Seq: 2, App: -1, SM: -1, Job: "b", Node: "n1", TraceID: 3, SpanID: 4},
	}
	out := renderSpans(events)
	if !strings.Contains(out, "2 trace(s)") {
		t.Errorf("want two traces:\n%s", out)
	}
}

func TestMergedChromeExportPerNodeTracks(t *testing.T) {
	n1, n2 := crossNodeEvents()
	merged, err := readTraces([]string{
		writeTrace(t, t.TempDir(), "n1.ndjson", n1),
		writeTrace(t, t.TempDir(), "n2.ndjson", n2),
	})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := telemetry.WriteChromeTrace(&sb, merged); err != nil {
		t.Fatal(err)
	}
	data := sb.String()
	if err := telemetry.ValidateChromeTrace([]byte(data)); err != nil {
		t.Fatalf("merged chrome trace invalid: %v", err)
	}
	for _, want := range []string{`"node n1"`, `"node n2"`, "rpc forward", "job.routed"} {
		if !strings.Contains(data, want) {
			t.Errorf("chrome export missing %q", want)
		}
	}
}

func TestMultiFlag(t *testing.T) {
	var m multiFlag
	if err := m.Set("a"); err != nil {
		t.Fatal(err)
	}
	if err := m.Set("b"); err != nil {
		t.Fatal(err)
	}
	if m.String() != "a,b" || len(m) != 2 {
		t.Errorf("multiFlag = %v (%q)", m, m.String())
	}
}

func TestRunMergedChromeFile(t *testing.T) {
	dir := t.TempDir()
	n1, n2 := crossNodeEvents()
	paths := []string{
		writeTrace(t, dir, "n1.ndjson", n1),
		writeTrace(t, dir, "n2.ndjson", n2),
	}
	out := filepath.Join(dir, "merged.json")
	if code := runMerged(paths, out); code != 0 {
		t.Fatalf("runMerged = %d, want 0", code)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if err := telemetry.ValidateChromeTrace(data); err != nil {
		t.Fatalf("written chrome trace invalid: %v", err)
	}

	// A schema-invalid input is a non-zero exit, and no partial chrome file
	// overwrites a good one.
	bad := filepath.Join(dir, "bad.ndjson")
	if err := os.WriteFile(bad, []byte(`{"kind":"job.exploded","seq":1,"app":-1,"sm":-1}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if code := runMerged(append(paths, bad), out); code != 1 {
		t.Errorf("runMerged with invalid input = %d, want 1", code)
	}
	if code := runMerged([]string{filepath.Join(dir, "missing.ndjson")}, ""); code != 1 {
		t.Errorf("runMerged with missing file = %d, want 1", code)
	}
	// An unwritable chrome path is an error too.
	if code := runMerged(paths, filepath.Join(dir, "no", "such", "dir.json")); code != 1 {
		t.Errorf("runMerged with unwritable chrome path = %d, want 1", code)
	}
}

func TestOffsetScales(t *testing.T) {
	cases := []struct {
		ns   int64
		want string
	}{
		{0, "+0ns"},
		{999, "+999ns"},
		{42_000, "+42µs"},
		{7_500_000, "+7.5ms"},
		{2_250_000_000, "+2.25s"},
	}
	for _, c := range cases {
		if got := offset(c.ns); got != c.want {
			t.Errorf("offset(%d) = %q, want %q", c.ns, got, c.want)
		}
	}
}

func TestDescribeKinds(t *testing.T) {
	cases := []struct {
		e    telemetry.Event
		want string
	}{
		{telemetry.Event{Kind: telemetry.KindClusterRPC, Note: "steal", Job: "n2", Dur: 3000, CacheHit: false},
			"err"},
		{telemetry.Event{Kind: telemetry.KindJobDone, Job: "j1", CacheHit: true},
			"(cache hit)"},
		{telemetry.Event{Kind: telemetry.KindJobDone, Job: "j1", Note: "failed"},
			"(failed)"},
		{telemetry.Event{Kind: telemetry.KindJobStarted, Job: "j1", Note: "w0"},
			"job.started j1 (w0)"},
	}
	for _, c := range cases {
		if got := describe(&c.e); !strings.Contains(got, c.want) {
			t.Errorf("describe(%v) = %q, want it to contain %q", c.e.Kind, got, c.want)
		}
	}
}
