package main

import (
	"strings"
	"testing"

	"dasesim/internal/config"
	"dasesim/internal/kernels"
	"dasesim/internal/sched"
	"dasesim/internal/sim"
	"dasesim/internal/telemetry"
)

// TestRenderFromTracedRun drives a small DASE-Fair simulation with tracing
// and checks the rendered timeline end to end.
func TestRenderFromTracedRun(t *testing.T) {
	profs := make([]kernels.Profile, 0, 2)
	for _, ab := range []string{"VA", "CT"} {
		p, ok := kernels.ByAbbr(ab)
		if !ok {
			t.Fatalf("kernel %s missing from the catalogue", ab)
		}
		profs = append(profs, p)
	}
	tr := telemetry.New(0)
	_, err := sched.Run(config.Default(), profs, []int{8, 8}, 160_000, 5,
		sched.NewDASEFair(), sim.WithTracer(tr))
	if err != nil {
		t.Fatal(err)
	}
	events := tr.Events()

	out, err := render(events, []float64{1.5, 2.0})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"app 0", "app 1", "actual slowdown 1.500", "actual slowdown 2.000", "mean|err|"} {
		if !strings.Contains(out, want) {
			t.Errorf("render output missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "|") {
		t.Error("no error bars rendered")
	}

	// Without any ground truth the timeline still renders, errors unknown.
	out, err = render(events, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "no measured slowdown") {
		t.Errorf("expected the no-actual notice:\n%s", out)
	}
}

func TestRenderNoEvents(t *testing.T) {
	if _, err := render(nil, nil); err == nil {
		t.Fatal("want an error for an empty trace")
	}
}

func TestParseActuals(t *testing.T) {
	got, err := parseActuals(" 1.5, 2.25 ")
	if err != nil || len(got) != 2 || got[0] != 1.5 || got[1] != 2.25 {
		t.Fatalf("parseActuals = %v, %v", got, err)
	}
	if v, err := parseActuals(""); v != nil || err != nil {
		t.Fatalf("empty = %v, %v", v, err)
	}
	if _, err := parseActuals("1.5,x"); err == nil {
		t.Fatal("want parse error")
	}
}

func TestErrBar(t *testing.T) {
	cases := []struct {
		err  float64
		want string
	}{
		{0, "|"},
		{0.05, "|>"},
		{-0.12, "<<|"},
		{3, "|>>>>>>>>>>"},
	}
	for _, c := range cases {
		if got := errBar(c.err); got != c.want {
			t.Errorf("errBar(%v) = %q, want %q", c.err, got, c.want)
		}
	}
}
