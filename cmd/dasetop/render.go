package main

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"dasesim/internal/telemetry"
)

// Frame is one poll of the cluster: the decoded body of
// GET /v1/cluster/metrics?by=node&format=json.
type Frame struct {
	Nodes    []string                   `json:"nodes"`
	Families []telemetry.FamilySnapshot `json:"families"`
}

// sparkWidth is how many history samples the latency sparklines keep.
const sparkWidth = 32

// Model is the dashboard's render core: it folds successive Frames (and an
// optional fleet NDJSON event stream) into a terminal screen. It owns only
// plain state — no I/O, no clock — so tests drive it with synthetic frames
// and assert on the rendered buffer.
type Model struct {
	polls     int
	prevDone  map[string]float64 // per-node completed-jobs counter, previous frame
	rateJobs  map[string]float64 // per-node jobs/s from the last frame pair
	p50, p99  []float64          // estimate-latency quantile history, newest last
	frame     Frame
	fleet     []telemetry.Event
	elapsedHz float64 // seconds between the last two frames (0 on the first)
}

// NewModel returns an empty dashboard model.
func NewModel() *Model {
	return &Model{prevDone: map[string]float64{}, rateJobs: map[string]float64{}}
}

// Observe folds one poll into the model. elapsed is the wall time since the
// previous poll (0 on the first), used only for throughput rates; fleetEvents
// may be nil when no fleet telemetry is wired in.
func (m *Model) Observe(f Frame, fleetEvents []telemetry.Event, elapsed float64) {
	m.polls++
	m.frame = f
	m.fleet = fleetEvents
	m.elapsedHz = elapsed

	done := perNodeValue(f.Families, "dased_jobs_completed_total")
	for node, v := range done {
		if prev, ok := m.prevDone[node]; ok && elapsed > 0 && v >= prev {
			m.rateJobs[node] = (v - prev) / elapsed
		}
		m.prevDone[node] = v
	}

	if bounds, counts := clusterHistogram(f.Families, "dased_estimate_latency_seconds"); counts != nil {
		m.p50 = pushSample(m.p50, telemetry.HistogramQuantile(0.50, bounds, counts))
		m.p99 = pushSample(m.p99, telemetry.HistogramQuantile(0.99, bounds, counts))
	}
}

// Render draws the current screen into a string: per-node vitals, estimate
// latency sparklines, per-tenant fairness, and SLO burn rates. Plain ANSI-free
// text — the caller decides whether to clear the terminal around it.
func (m *Model) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "dasetop — poll %d — %d node(s)\n\n", m.polls, len(m.frame.Nodes))
	m.renderNodes(&sb)
	m.renderLatency(&sb)
	m.renderTenants(&sb)
	m.renderSLO(&sb)
	return sb.String()
}

// renderNodes draws the per-node vitals table.
func (m *Model) renderNodes(sb *strings.Builder) {
	queue := perNodeValue(m.frame.Families, "dased_queue_depth")
	running := perNodeValue(m.frame.Families, "dased_jobs_running")
	hits := perNodeValue(m.frame.Families, "dased_cache_hits_total")
	misses := perNodeValue(m.frame.Families, "dased_cache_misses_total")
	done := perNodeValue(m.frame.Families, "dased_jobs_completed_total")

	fmt.Fprintf(sb, "%-10s %6s %8s %10s %8s %8s\n", "NODE", "QUEUE", "RUNNING", "CACHE HIT", "JOBS/S", "DONE")
	nodes := append([]string(nil), m.frame.Nodes...)
	sort.Strings(nodes)
	for _, n := range nodes {
		hitRate := "-"
		if total := hits[n] + misses[n]; total > 0 {
			hitRate = fmt.Sprintf("%.1f%%", 100*hits[n]/total)
		}
		rate := "-"
		if r, ok := m.rateJobs[n]; ok {
			rate = fmt.Sprintf("%.1f", r)
		}
		fmt.Fprintf(sb, "%-10s %6.0f %8.0f %10s %8s %8.0f\n",
			n, queue[n], running[n], hitRate, rate, done[n])
	}
	sb.WriteByte('\n')
}

// renderLatency draws the cluster-wide estimate-service latency quantiles
// with their sparkline history.
func (m *Model) renderLatency(sb *strings.Builder) {
	if len(m.p50) == 0 {
		return
	}
	cur50, cur99 := m.p50[len(m.p50)-1], m.p99[len(m.p99)-1]
	fmt.Fprintf(sb, "ESTIMATE LATENCY   p50 %s   p99 %s\n", duration(cur50), duration(cur99))
	fmt.Fprintf(sb, "  p50 %s\n", sparkline(m.p50))
	fmt.Fprintf(sb, "  p99 %s\n\n", sparkline(m.p99))
}

// tenantRow is one tenant's latest fleet interval.
type tenantRow struct {
	name            string
	deserved, alloc float64
	queued          uint64
	slowdown        float64
}

// renderTenants draws deserved-vs-actual SM shares from the newest fleet
// interval in the NDJSON stream, plus the Jain fairness index over
// allocation/deserved ratios.
func (m *Model) renderTenants(sb *strings.Builder) {
	rows := latestInterval(m.fleet)
	if len(rows) == 0 {
		return
	}
	fmt.Fprintf(sb, "%-10s %9s %7s %7s %9s\n", "TENANT", "DESERVED", "ALLOC", "QUEUED", "SLOWDOWN")
	ratios := make([]float64, 0, len(rows))
	for _, r := range rows {
		slow := "-"
		if r.slowdown > 0 {
			slow = fmt.Sprintf("%.2f", r.slowdown)
		}
		fmt.Fprintf(sb, "%-10s %9.1f %7.0f %7d %9s\n", r.name, r.deserved, r.alloc, r.queued, slow)
		if r.deserved > 0 {
			ratios = append(ratios, r.alloc/r.deserved)
		}
	}
	fmt.Fprintf(sb, "Jain fairness index: %.3f\n\n", jain(ratios))
}

// renderSLO draws per-objective burn rates, worst node wins.
func (m *Model) renderSLO(sb *strings.Builder) {
	burn := maxByObjective(m.frame.Families, "dased_slo_burn_rate")
	alerting := maxByObjective(m.frame.Families, "dased_slo_alerting")
	if len(burn) == 0 {
		return
	}
	names := make([]string, 0, len(burn))
	for n := range burn {
		names = append(names, n)
	}
	sort.Strings(names)
	fmt.Fprintf(sb, "%-24s %8s  %s\n", "SLO", "BURN", "STATUS")
	for _, n := range names {
		status := "ok"
		if alerting[n] >= 1 {
			status = "ALERTING"
		}
		fmt.Fprintf(sb, "%-24s %8.2f  %s\n", n, burn[n], status)
	}
}

// latestInterval extracts the newest fleet interval's tenant rows from a
// fleet NDJSON event stream (one KindFleetInterval event per tenant per
// interval), sorted by tenant name.
func latestInterval(events []telemetry.Event) []tenantRow {
	var last uint64
	for i := range events {
		if events[i].Kind == telemetry.KindFleetInterval && events[i].Cycle > last {
			last = events[i].Cycle
		}
	}
	byName := map[string]tenantRow{}
	for i := range events {
		e := &events[i]
		if e.Kind != telemetry.KindFleetInterval || e.Cycle != last {
			continue
		}
		byName[e.Note] = tenantRow{
			name: e.Note, deserved: e.Deserved, alloc: float64(e.SMs),
			queued: e.Served, slowdown: e.Est,
		}
	}
	rows := make([]tenantRow, 0, len(byName))
	for _, r := range byName {
		rows = append(rows, r)
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].name < rows[j].name })
	return rows
}

// jain is Jain's fairness index (Σx)²/(n·Σx²): 1 when every tenant gets the
// same normalized share, →1/n under maximal skew. Empty input reads as
// perfectly fair.
func jain(xs []float64) float64 {
	if len(xs) == 0 {
		return 1
	}
	var sum, sumSq float64
	for _, x := range xs {
		sum += x
		sumSq += x * x
	}
	if sumSq == 0 {
		return 1
	}
	return sum * sum / (float64(len(xs)) * sumSq)
}

// perNodeValue flattens one by-node family into node → summed value (the
// "node" label is first by ByNodeSnapshots construction; points sharing a
// node across further labels add up).
func perNodeValue(fams []telemetry.FamilySnapshot, name string) map[string]float64 {
	out := map[string]float64{}
	f := famByName(fams, name)
	if f == nil {
		return out
	}
	for _, p := range f.Points {
		if len(p.LabelValues) == 0 {
			continue
		}
		out[p.LabelValues[0]] += p.Value
	}
	return out
}

// maxByObjective reduces a by-node {node, objective} gauge family to
// objective → max across nodes.
func maxByObjective(fams []telemetry.FamilySnapshot, name string) map[string]float64 {
	out := map[string]float64{}
	f := famByName(fams, name)
	if f == nil {
		return out
	}
	for _, p := range f.Points {
		if len(p.LabelValues) < 2 {
			continue
		}
		obj := p.LabelValues[1]
		if cur, ok := out[obj]; !ok || p.Value > cur {
			out[obj] = p.Value
		}
	}
	return out
}

// clusterHistogram sums one histogram family's buckets across all nodes and
// label values; nil counts when the family is absent or empty.
func clusterHistogram(fams []telemetry.FamilySnapshot, name string) ([]float64, []uint64) {
	f := famByName(fams, name)
	if f == nil || len(f.Buckets) == 0 {
		return nil, nil
	}
	counts := make([]uint64, len(f.Buckets)+1)
	any := false
	for _, p := range f.Points {
		for i, c := range p.BucketCounts {
			if i < len(counts) {
				counts[i] += c
				any = any || c > 0
			}
		}
	}
	if !any {
		return nil, nil
	}
	return f.Buckets, counts
}

// famByName finds one family snapshot by metric name.
func famByName(fams []telemetry.FamilySnapshot, name string) *telemetry.FamilySnapshot {
	for i := range fams {
		if fams[i].Name == name {
			return &fams[i]
		}
	}
	return nil
}

// pushSample appends to a bounded history, dropping the oldest sample.
func pushSample(hist []float64, v float64) []float64 {
	hist = append(hist, v)
	if len(hist) > sparkWidth {
		hist = hist[len(hist)-sparkWidth:]
	}
	return hist
}

// sparkBars are the eight block glyphs sparklines scale into.
var sparkBars = []rune("▁▂▃▄▅▆▇█")

// sparkline renders a value history as unicode block bars scaled to the
// history's own maximum.
func sparkline(hist []float64) string {
	max := 0.0
	for _, v := range hist {
		if v > max {
			max = v
		}
	}
	var sb strings.Builder
	for _, v := range hist {
		idx := 0
		if max > 0 {
			idx = int(math.Round(v / max * float64(len(sparkBars)-1)))
		}
		sb.WriteRune(sparkBars[idx])
	}
	return sb.String()
}

// duration renders seconds with an auto-scaled unit.
func duration(sec float64) string {
	switch {
	case sec >= 1:
		return fmt.Sprintf("%.2fs", sec)
	case sec >= 1e-3:
		return fmt.Sprintf("%.1fms", sec*1e3)
	case sec >= 1e-6:
		return fmt.Sprintf("%.1fµs", sec*1e6)
	default:
		return fmt.Sprintf("%.0fns", sec*1e9)
	}
}
