package main

import (
	"math"
	"strings"
	"testing"

	"dasesim/internal/telemetry"
)

// byNodeGauge builds a one-family by-node snapshot: name with a leading
// "node" label and one point per node→value pair.
func byNodeGauge(name string, values map[string]float64, extraLabel ...string) telemetry.FamilySnapshot {
	f := telemetry.FamilySnapshot{
		Name: name, Type: "gauge", LabelNames: append([]string{"node"}, extraLabel...),
	}
	for node, v := range values {
		f.Points = append(f.Points, telemetry.PointSnapshot{
			LabelValues: []string{node}, Value: v,
		})
	}
	return f
}

func testFrame() Frame {
	latency := telemetry.FamilySnapshot{
		Name: "dased_estimate_latency_seconds", Type: "histogram",
		LabelNames: []string{"node"},
		Buckets:    []float64{0.0001, 0.001, 0.01},
		Points: []telemetry.PointSnapshot{
			{LabelValues: []string{"n1"}, BucketCounts: []uint64{90, 8, 2, 0}, Sum: 0.02, Count: 100},
			{LabelValues: []string{"n2"}, BucketCounts: []uint64{50, 50, 0, 0}, Sum: 0.03, Count: 100},
		},
	}
	slo := telemetry.FamilySnapshot{
		Name: "dased_slo_burn_rate", Type: "gauge", LabelNames: []string{"node", "objective"},
		Points: []telemetry.PointSnapshot{
			{LabelValues: []string{"n1", "dase-error"}, Value: 0.2},
			{LabelValues: []string{"n2", "dase-error"}, Value: 15},
			{LabelValues: []string{"n1", "estimate-latency-p99"}, Value: 0.1},
		},
	}
	alerting := telemetry.FamilySnapshot{
		Name: "dased_slo_alerting", Type: "gauge", LabelNames: []string{"node", "objective"},
		Points: []telemetry.PointSnapshot{
			{LabelValues: []string{"n2", "dase-error"}, Value: 1},
			{LabelValues: []string{"n1", "estimate-latency-p99"}, Value: 0},
		},
	}
	return Frame{
		Nodes: []string{"n2", "n1"},
		Families: []telemetry.FamilySnapshot{
			byNodeGauge("dased_queue_depth", map[string]float64{"n1": 4, "n2": 0}),
			byNodeGauge("dased_jobs_running", map[string]float64{"n1": 2, "n2": 1}),
			byNodeGauge("dased_cache_hits_total", map[string]float64{"n1": 75, "n2": 0}),
			byNodeGauge("dased_cache_misses_total", map[string]float64{"n1": 25, "n2": 0}),
			byNodeGauge("dased_jobs_completed_total", map[string]float64{"n1": 100, "n2": 40}),
			latency, slo, alerting,
		},
	}
}

func fleetEvents() []telemetry.Event {
	return []telemetry.Event{
		// Older interval: must be ignored in favor of interval 5.
		{Kind: telemetry.KindFleetInterval, Cycle: 4, App: 0, SM: -1, Note: "acme",
			SMs: 2, Deserved: 8},
		{Kind: telemetry.KindFleetInterval, Cycle: 5, App: 0, SM: -1, Note: "acme",
			SMs: 8, Served: 1, Est: 1.5, Deserved: 8},
		{Kind: telemetry.KindFleetInterval, Cycle: 5, App: 1, SM: -1, Note: "zeta",
			SMs: 4, Deserved: 8},
	}
}

func TestRenderNodeTable(t *testing.T) {
	m := NewModel()
	m.Observe(testFrame(), nil, 0)
	out := m.Render()

	for _, want := range []string{
		"2 node(s)",
		"NODE", "QUEUE", "CACHE HIT",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	// Nodes sorted; n1 hit rate 75/(75+25) = 75%, n2 has no lookups.
	n1 := lineWith(t, out, "n1")
	if !strings.Contains(n1, "75.0%") {
		t.Errorf("n1 row lacks 75.0%% cache hit rate: %q", n1)
	}
	n2 := lineWith(t, out, "n2")
	if !strings.Contains(n2, "-") {
		t.Errorf("n2 row should show '-' for no cache traffic: %q", n2)
	}
	if strings.Index(out, "n1") > strings.Index(out, "n2") {
		t.Errorf("nodes not sorted:\n%s", out)
	}
}

func TestThroughputNeedsTwoPolls(t *testing.T) {
	m := NewModel()
	f := testFrame()
	m.Observe(f, nil, 0)
	if n1 := lineWith(t, m.Render(), "n1"); !strings.Contains(n1, "-") {
		t.Errorf("first poll should show '-' throughput: %q", n1)
	}

	// 10 more jobs on n1 over 2 seconds → 5.0 jobs/s.
	f2 := testFrame()
	for i := range f2.Families {
		if f2.Families[i].Name == "dased_jobs_completed_total" {
			for j := range f2.Families[i].Points {
				if f2.Families[i].Points[j].LabelValues[0] == "n1" {
					f2.Families[i].Points[j].Value = 110
				}
			}
		}
	}
	m.Observe(f2, nil, 2)
	if n1 := lineWith(t, m.Render(), "n1"); !strings.Contains(n1, "5.0") {
		t.Errorf("n1 throughput should be 5.0 jobs/s: %q", n1)
	}
}

func TestRenderLatencySparklines(t *testing.T) {
	m := NewModel()
	m.Observe(testFrame(), nil, 0)
	out := m.Render()
	if !strings.Contains(out, "ESTIMATE LATENCY") {
		t.Fatalf("no latency section:\n%s", out)
	}
	if !strings.Contains(out, "p50") || !strings.Contains(out, "p99") {
		t.Errorf("latency section lacks quantiles:\n%s", out)
	}
	for _, r := range "▁▂▃▄▅▆▇█" {
		if strings.ContainsRune(out, r) {
			return
		}
	}
	t.Errorf("no sparkline glyphs in output:\n%s", out)
}

func TestSparklineHistoryBounded(t *testing.T) {
	m := NewModel()
	for i := 0; i < 3*sparkWidth; i++ {
		m.Observe(testFrame(), nil, 1)
	}
	if len(m.p50) != sparkWidth || len(m.p99) != sparkWidth {
		t.Errorf("history len = %d/%d, want %d", len(m.p50), len(m.p99), sparkWidth)
	}
}

func TestRenderTenants(t *testing.T) {
	m := NewModel()
	m.Observe(testFrame(), fleetEvents(), 0)
	out := m.Render()

	acme := lineWith(t, out, "acme")
	// Latest interval (5) wins over the stale interval-4 row: alloc 8, not 2.
	if !strings.Contains(acme, "8") || !strings.Contains(acme, "1.50") {
		t.Errorf("acme row = %q, want alloc 8 and slowdown 1.50", acme)
	}
	// Jain over ratios {8/8, 4/8} = (1.5)²/(2·1.25) = 0.9.
	if !strings.Contains(out, "Jain fairness index: 0.900") {
		t.Errorf("Jain index missing or wrong:\n%s", out)
	}
}

func TestRenderSLO(t *testing.T) {
	m := NewModel()
	m.Observe(testFrame(), nil, 0)
	out := m.Render()

	// dase-error takes the max across nodes (15, alerting on n2).
	row := lineWith(t, out, "dase-error")
	if !strings.Contains(row, "15.00") || !strings.Contains(row, "ALERTING") {
		t.Errorf("dase-error row = %q, want burn 15.00 ALERTING", row)
	}
	lat := lineWith(t, out, "estimate-latency-p99")
	if !strings.Contains(lat, "ok") {
		t.Errorf("estimate-latency-p99 row = %q, want ok", lat)
	}
}

func TestRenderEmptyFrame(t *testing.T) {
	m := NewModel()
	m.Observe(Frame{}, nil, 0)
	out := m.Render()
	if !strings.Contains(out, "0 node(s)") {
		t.Errorf("empty frame render:\n%s", out)
	}
	// No fleet events, no SLO, no latency — only the header and node table.
	for _, absent := range []string{"ESTIMATE LATENCY", "TENANT", "SLO"} {
		if strings.Contains(out, absent) {
			t.Errorf("empty frame should not render %q section:\n%s", absent, out)
		}
	}
}

func TestJain(t *testing.T) {
	cases := []struct {
		xs   []float64
		want float64
	}{
		{nil, 1},
		{[]float64{1, 1, 1}, 1},
		{[]float64{1, 0.5}, 0.9},
		{[]float64{1, 0, 0, 0}, 0.25},
		{[]float64{0, 0}, 1},
	}
	for _, c := range cases {
		if got := jain(c.xs); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("jain(%v) = %v, want %v", c.xs, got, c.want)
		}
	}
}

func TestSparklineScaling(t *testing.T) {
	s := sparkline([]float64{0, 0.5, 1})
	if s != "▁▅█" {
		t.Errorf("sparkline = %q, want ▁▅█", s)
	}
	if flat := sparkline([]float64{0, 0}); flat != "▁▁" {
		t.Errorf("flat sparkline = %q", flat)
	}
}

func TestDurationUnits(t *testing.T) {
	cases := map[float64]string{
		2.5:       "2.50s",
		0.012:     "12.0ms",
		0.0000124: "12.4µs",
		2e-8:      "20ns",
	}
	for in, want := range cases {
		if got := duration(in); got != want {
			t.Errorf("duration(%v) = %q, want %q", in, got, want)
		}
	}
}

// lineWith returns the first rendered line containing substr.
func lineWith(t *testing.T, out, substr string) string {
	t.Helper()
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, substr) {
			return line
		}
	}
	t.Fatalf("no line containing %q in:\n%s", substr, out)
	return ""
}
