// Command dasetop is a live terminal dashboard for a dased cluster: it polls
// the metrics-federation endpoint (GET /v1/cluster/metrics?by=node) and
// renders per-node queue depth, cache hit rate and throughput, cluster-wide
// estimate-latency p50/p99 sparklines, per-tenant deserved-vs-actual SM
// shares with the Jain fairness index (from a fleet NDJSON telemetry file),
// and SLO burn-rate status.
//
// Usage:
//
//	dasetop                                  # poll localhost every 2s
//	dasetop -addr http://host:8844 -interval 1s
//	dasetop -once                            # one frame to stdout, no ANSI
//	dasetop -fleet fleet.ndjson -once        # include tenant fairness
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"time"

	"dasesim/internal/telemetry"
)

func main() {
	addr := flag.String("addr", "http://127.0.0.1:8844", "base URL of any cluster member")
	interval := flag.Duration("interval", 2*time.Second, "poll interval")
	fleetPath := flag.String("fleet", "", "fleet telemetry NDJSON file for the tenant-fairness panel")
	once := flag.Bool("once", false, "render a single frame and exit (no screen clearing)")
	flag.Parse()

	model := NewModel()
	var lastPoll time.Time
	for {
		frame, err := fetchFrame(*addr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dasetop: %v\n", err)
			os.Exit(1)
		}
		fleetEvents, err := readFleet(*fleetPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dasetop: %v\n", err)
			os.Exit(1)
		}
		now := time.Now()
		elapsed := 0.0
		if !lastPoll.IsZero() {
			elapsed = now.Sub(lastPoll).Seconds()
		}
		lastPoll = now
		model.Observe(frame, fleetEvents, elapsed)
		if *once {
			fmt.Print(model.Render())
			return
		}
		// Home + clear-to-end redraw keeps the screen stable without
		// dragging in a terminal library.
		fmt.Print("\x1b[H\x1b[2J" + model.Render())
		time.Sleep(*interval)
	}
}

// fetchFrame pulls one by-node federation snapshot from any cluster member.
func fetchFrame(addr string) (Frame, error) {
	var f Frame
	resp, err := http.Get(addr + "/v1/cluster/metrics?by=node&format=json")
	if err != nil {
		return f, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return f, err
	}
	if resp.StatusCode != http.StatusOK {
		return f, fmt.Errorf("GET /v1/cluster/metrics: status %d: %s", resp.StatusCode, data)
	}
	if err := json.Unmarshal(data, &f); err != nil {
		return f, fmt.Errorf("decode cluster metrics: %w", err)
	}
	return f, nil
}

// readFleet loads a fleet telemetry NDJSON file; "" means no fleet panel.
func readFleet(path string) ([]telemetry.Event, error) {
	if path == "" {
		return nil, nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return telemetry.ReadNDJSON(f)
}
