package dasesim

// Cross-check of the online estimation service against the in-process model:
// for every interval snapshot recorded by the six determinism-golden
// scenarios, the bytes served over HTTP by POST /v1/estimate must be
// byte-identical to what the in-process estimate.Service produces, and the
// slowdowns inside those bytes must equal core.EstimateDetailed's output
// bit-exactly. Together with the determinism goldens this pins the serving
// path end to end: HTTP transport, wire codec, pooling and scratch reuse may
// not perturb a single bit of the model's answer.

import (
	"bytes"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"testing"

	"dasesim/internal/core"
	"dasesim/internal/estimate"
	"dasesim/internal/server"
)

func TestEstimateServiceCrossCheck(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy; skipped with -short")
	}
	srv, err := server.New(server.Options{
		Cfg:    DefaultConfig(),
		Logger: slog.New(slog.NewTextHandler(io.Discard, nil)),
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	svc := estimate.NewService(estimate.Options{Cfg: DefaultConfig()})
	dase := core.New(core.Options{})
	sc := svc.Get()
	defer svc.Put(sc)

	for _, c := range detCases() {
		c := c
		t.Run(c.name, func(t *testing.T) {
			res := c.run(t, c)
			if len(res.Snapshots) == 0 {
				t.Fatal("scenario recorded no snapshots")
			}
			for si := range res.Snapshots {
				snap := &res.Snapshots[si]
				if snap.IntervalCycles == 0 || len(snap.Apps) == 0 {
					continue
				}
				req := estimate.FromSnapshot(snap)
				body := estimate.AppendRequest(nil, &req)

				resp, err := http.Post(ts.URL+"/v1/estimate", "application/json", bytes.NewReader(body))
				if err != nil {
					t.Fatal(err)
				}
				servedBytes, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil {
					t.Fatal(err)
				}
				if resp.StatusCode != http.StatusOK {
					t.Fatalf("snapshot %d rejected (%d): %s", si, resp.StatusCode, servedBytes)
				}

				// 1. HTTP bytes == in-process service bytes.
				sc.Body = append(sc.Body[:0], body...)
				if perr := svc.Process(sc); perr != nil {
					t.Fatalf("snapshot %d: in-process Process: %v", si, perr)
				}
				if !bytes.Equal(servedBytes, sc.Out) {
					t.Fatalf("snapshot %d: HTTP bytes diverge from in-process bytes:\n got %s\nwant %s",
						si, servedBytes, sc.Out)
				}

				// 2. The slowdowns inside those bytes == EstimateDetailed,
				// bit-exact (JSON float64 round-trips are exact in shortest
				// form).
				det := dase.EstimateDetailed(snap)
				var wire struct {
					Apps []struct {
						Slowdown         float64 `json:"slowdown"`
						SlowdownAssigned float64 `json:"slowdown_assigned"`
						MBB              bool    `json:"mbb"`
						TimeBank         float64 `json:"time_bank"`
						TimeRow          float64 `json:"time_row"`
						TimeLLC          float64 `json:"time_llc"`
					} `json:"apps"`
				}
				if err := json.Unmarshal(servedBytes, &wire); err != nil {
					t.Fatalf("snapshot %d: bad response JSON: %v", si, err)
				}
				if len(wire.Apps) != len(det) {
					t.Fatalf("snapshot %d: %d served apps, %d estimated", si, len(wire.Apps), len(det))
				}
				for ai := range det {
					w, d := wire.Apps[ai], det[ai]
					if w.Slowdown != d.Slowdown || w.SlowdownAssigned != d.SlowdownAssigned ||
						w.MBB != d.MBB || w.TimeBank != d.TimeBank ||
						w.TimeRow != d.TimeRow || w.TimeLLC != d.TimeLLC {
						t.Fatalf("snapshot %d app %d: served estimate diverges from EstimateDetailed:\n got %+v\nwant %+v",
							si, ai, w, d)
					}
				}
			}
		})
	}
}
