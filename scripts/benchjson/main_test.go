package main

import (
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: dasesim
BenchmarkGPUCycle-8       	     100	   1000.0 ns/op	     120 B/op	       3 allocs/op
BenchmarkGPUCycle-8       	     100	   3000.0 ns/op	     240 B/op	       5 allocs/op
BenchmarkSharedPair-8     	      50	   2500.5 ns/op
PASS
ok  	dasesim	1.234s
`

func TestParseBenchAverages(t *testing.T) {
	var echo strings.Builder
	got, err := parseBench(strings.NewReader(sampleBench), &echo)
	if err != nil {
		t.Fatal(err)
	}
	if echo.String() != sampleBench {
		t.Error("parseBench did not echo the input verbatim")
	}
	cyc, ok := got["GPUCycle"]
	if !ok {
		t.Fatalf("GPUCycle missing from %v", got)
	}
	if cyc.Runs != 2 || cyc.NsPerOp != 2000.0 || cyc.BytesPerOp != 180.0 || cyc.AllocsPerOp != 4.0 {
		t.Errorf("GPUCycle averaged to %+v, want 2 runs / 2000 ns / 180 B / 4 allocs", cyc)
	}
	// A line without -benchmem columns parses with zero B/op and allocs/op.
	pair, ok := got["SharedPair"]
	if !ok {
		t.Fatalf("SharedPair missing from %v", got)
	}
	if pair.Runs != 1 || pair.NsPerOp != 2500.5 || pair.BytesPerOp != 0 || pair.AllocsPerOp != 0 {
		t.Errorf("SharedPair parsed as %+v", pair)
	}
}

func TestParseBenchRejectsEmptyStream(t *testing.T) {
	_, err := parseBench(strings.NewReader("PASS\nok dasesim 0.1s\n"), io.Discard)
	if err == nil || !strings.Contains(err.Error(), "no benchmark lines") {
		t.Fatalf("expected a no-benchmark-lines error, got %v", err)
	}
}

func TestAppendEntryGrowsHistory(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	first := Entry{Date: "2026-01-01", Commit: "aaaa", Benchmarks: map[string]BenchStats{
		"GPUCycle": {NsPerOp: 100, Runs: 5},
	}}
	if _, err := appendEntry(path, first); err != nil {
		t.Fatal(err)
	}
	second := Entry{Date: "2026-02-01", Commit: "bbbb", Note: "after refactor",
		GoVersion: "go1.22.0", GoMaxProcs: 8, Benchmarks: map[string]BenchStats{
			"GPUCycle": {NsPerOp: 90, Runs: 5},
		}}
	got, err := appendEntry(path, second)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("history has %d entries, want 2", len(got))
	}

	// The file round-trips: oldest first, all fields preserved.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var onDisk []Entry
	if err := json.Unmarshal(data, &onDisk); err != nil {
		t.Fatal(err)
	}
	if onDisk[0].Commit != "aaaa" || onDisk[1].Commit != "bbbb" {
		t.Errorf("history order wrong: %+v", onDisk)
	}
	if onDisk[1].Note != "after refactor" {
		t.Errorf("note lost: %+v", onDisk[1])
	}
	if onDisk[1].Benchmarks["GPUCycle"].NsPerOp != 90 {
		t.Errorf("benchmark stats lost: %+v", onDisk[1])
	}
	if onDisk[1].GoVersion != "go1.22.0" || onDisk[1].GoMaxProcs != 8 {
		t.Errorf("toolchain stamp lost: %+v", onDisk[1])
	}
	// Entries predating the stamp decode with zero values, not an error.
	if onDisk[0].GoVersion != "" || onDisk[0].GoMaxProcs != 0 {
		t.Errorf("unstamped entry gained a stamp: %+v", onDisk[0])
	}
}

func TestAppendEntryRejectsMalformedHistory(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := appendEntry(path, Entry{Date: "2026-01-01"}); err == nil {
		t.Fatal("appendEntry accepted a corrupt history file")
	}
	// The corrupt file is untouched, not truncated.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "{not json" {
		t.Errorf("corrupt history was rewritten to %q", data)
	}
}

func TestRound1(t *testing.T) {
	for _, tc := range []struct{ in, want float64 }{
		{1.24, 1.2}, {1.25, 1.3}, {0, 0}, {1999.96, 2000.0},
	} {
		if got := round1(tc.in); got != tc.want {
			t.Errorf("round1(%v) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func TestParseBenchExtraMetrics(t *testing.T) {
	in := `BenchmarkServeClosed-8   	  100000	      8000 ns/op	  125000 qps	    7100 p50-ns	   11000 p95-ns	   20000 p99-ns
BenchmarkServeClosed-8   	  100000	      9000 ns/op	  115000 qps	    7300 p50-ns	   13000 p95-ns	   22000 p99-ns
`
	got, err := parseBench(strings.NewReader(in), io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	s, ok := got["ServeClosed"]
	if !ok {
		t.Fatalf("ServeClosed missing from %v", got)
	}
	if s.Runs != 2 || s.NsPerOp != 8500 {
		t.Errorf("ServeClosed averaged to %+v", s)
	}
	want := map[string]float64{"qps": 120000, "p50-ns": 7200, "p95-ns": 12000, "p99-ns": 21000}
	for unit, v := range want {
		if s.Extra[unit] != v {
			t.Errorf("Extra[%q] = %v, want %v", unit, s.Extra[unit], v)
		}
	}
	if _, ok := s.Extra["ns/op"]; ok {
		t.Error("built-in ns/op must not be duplicated into Extra")
	}
}

func TestCheckTrajectory(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) string {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	good := write("good.json", `[{"date":"2026-08-08","commit":"abc","benchmarks":{"GPUCycle":{"ns_per_op":1,"runs":1}}}]`)
	if err := checkTrajectory(good); err != nil {
		t.Errorf("valid trajectory rejected: %v", err)
	}
	cases := []struct {
		name, content, wantErr string
	}{
		{"empty array", `[]`, "empty"},
		{"malformed", `{"not":"an array"`, "parse"},
		{"no benchmarks", `[{"date":"2026-08-08","commit":"abc","benchmarks":{}}]`, "no benchmarks"},
		{"no date", `[{"commit":"abc","benchmarks":{"X":{"ns_per_op":1,"runs":1}}}]`, "no date"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			path := write("bad.json", c.content)
			err := checkTrajectory(path)
			if err == nil {
				t.Fatal("want error")
			}
			if !strings.Contains(err.Error(), c.wantErr) {
				t.Errorf("error %q does not mention %q", err, c.wantErr)
			}
		})
	}
	if err := checkTrajectory(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
}
