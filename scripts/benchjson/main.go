// Command benchjson reads `go test -bench` output on stdin, averages each
// benchmark across its -count repetitions, and appends one dated entry to a
// JSON trajectory file (BENCH_cycles.json at the repository root). The file
// is a JSON array of entries, oldest first, so the committed history shows
// how engine performance moved across changes.
//
// Usage (normally via scripts/bench.sh):
//
//	go test -run '^$' -bench 'GPUCycle' -benchmem -count=5 . |
//	    go run ./scripts/benchjson -out BENCH_cycles.json -note "after X"
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"
)

// BenchStats is the averaged result of one benchmark across repetitions.
// Extra carries custom metrics (b.ReportMetric units like "qps" or
// "p99-ns"), keyed by unit, averaged like the built-ins.
type BenchStats struct {
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op"`
	AllocsPerOp float64            `json:"allocs_per_op"`
	Extra       map[string]float64 `json:"extra,omitempty"`
	Runs        int                `json:"runs"`
}

// Entry is one dated measurement of the benchmark suite. GoVersion and
// GoMaxProcs identify the toolchain and parallelism the numbers were taken
// under, so entries from different machines stay comparable.
type Entry struct {
	Date       string                `json:"date"`
	Commit     string                `json:"commit"`
	Note       string                `json:"note,omitempty"`
	GoVersion  string                `json:"go_version,omitempty"`
	GoMaxProcs int                   `json:"gomaxprocs,omitempty"`
	Benchmarks map[string]BenchStats `json:"benchmarks"`
}

var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([\d.]+) ns/op(?:\s+([\d.]+) B/op)?(?:\s+([\d.]+) allocs/op)?`)

// metricPair matches every "<value> <unit>" pair on a benchmark line; the
// built-in units are filtered out so only custom metrics land in Extra.
var metricPair = regexp.MustCompile(`([\d.]+(?:[eE][+-]?\d+)?) ([A-Za-z][A-Za-z0-9_/%.-]*)`)

// builtinUnits are the go-test metrics already captured by named fields.
var builtinUnits = map[string]bool{"ns/op": true, "B/op": true, "allocs/op": true, "MB/s": false}

// parseBench scans `go test -bench` output, echoing every line to echo (so
// the caller still sees the run) and averaging each benchmark's repetitions.
// It errors when the stream held no benchmark lines at all.
func parseBench(r io.Reader, echo io.Writer) (map[string]BenchStats, error) {
	sums := map[string]*BenchStats{}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := sc.Text()
		fmt.Fprintln(echo, line)
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		name := strings.TrimPrefix(m[1], "Benchmark")
		s := sums[name]
		if s == nil {
			s = &BenchStats{}
			sums[name] = s
		}
		s.NsPerOp += atof(m[2])
		s.BytesPerOp += atof(m[3])
		s.AllocsPerOp += atof(m[4])
		for _, pm := range metricPair.FindAllStringSubmatch(line, -1) {
			if builtinUnits[pm[2]] {
				continue
			}
			if s.Extra == nil {
				s.Extra = map[string]float64{}
			}
			s.Extra[pm[2]] += atof(pm[1])
		}
		s.Runs++
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("read bench output: %w", err)
	}
	if len(sums) == 0 {
		return nil, fmt.Errorf("no benchmark lines found")
	}
	avg := make(map[string]BenchStats, len(sums))
	for name, s := range sums {
		n := float64(s.Runs)
		st := BenchStats{
			NsPerOp:     round1(s.NsPerOp / n),
			BytesPerOp:  round1(s.BytesPerOp / n),
			AllocsPerOp: round1(s.AllocsPerOp / n),
			Runs:        s.Runs,
		}
		if s.Extra != nil {
			st.Extra = make(map[string]float64, len(s.Extra))
			for unit, sum := range s.Extra {
				st.Extra[unit] = round1(sum / n)
			}
		}
		avg[name] = st
	}
	return avg, nil
}

// appendEntry loads the trajectory file (absent is an empty history), appends
// the entry, and writes the array back. Malformed existing JSON is an error —
// the history is never silently truncated.
func appendEntry(path string, entry Entry) ([]Entry, error) {
	var entries []Entry
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &entries); err != nil {
			return nil, fmt.Errorf("parse %s: %w", path, err)
		}
	} else if !os.IsNotExist(err) {
		return nil, fmt.Errorf("read %s: %w", path, err)
	}
	entries = append(entries, entry)

	data, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("marshal: %w", err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return nil, fmt.Errorf("write %s: %w", path, err)
	}
	return entries, nil
}

// checkTrajectory validates a committed trajectory file: it must parse as a
// non-empty entry array and the newest entry must carry at least one dated
// benchmark. CI gates on this so an empty or mangled trajectory — the silent
// failure mode of a piped bench run — turns into a loud error.
func checkTrajectory(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var entries []Entry
	if err := json.Unmarshal(data, &entries); err != nil {
		return fmt.Errorf("parse %s: %w", path, err)
	}
	if len(entries) == 0 {
		return fmt.Errorf("%s: trajectory is empty", path)
	}
	last := entries[len(entries)-1]
	if last.Date == "" {
		return fmt.Errorf("%s: newest entry has no date", path)
	}
	if len(last.Benchmarks) == 0 {
		return fmt.Errorf("%s: newest entry (%s) has no benchmarks", path, last.Date)
	}
	fmt.Fprintf(os.Stderr, "%s: %d entries, newest %s (%s) with %d benchmarks\n",
		path, len(entries), last.Date, last.Commit, len(last.Benchmarks))
	return nil
}

func main() {
	out := flag.String("out", "BENCH_cycles.json", "trajectory file to append to")
	note := flag.String("note", "", "free-form label for this entry")
	commit := flag.String("commit", "", "commit id (default: git rev-parse --short HEAD)")
	check := flag.Bool("check", false, "validate the -out trajectory file and exit instead of reading stdin")
	flag.Parse()

	if *check {
		if err := checkTrajectory(*out); err != nil {
			fatal("%v", err)
		}
		return
	}

	if *commit == "" {
		if b, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output(); err == nil {
			*commit = strings.TrimSpace(string(b))
		} else {
			*commit = "unknown"
		}
	}

	benchmarks, err := parseBench(os.Stdin, os.Stdout)
	if err != nil {
		fatal("%v", err)
	}
	entry := Entry{
		Date:       time.Now().UTC().Format("2006-01-02"),
		Commit:     *commit,
		Note:       *note,
		GoVersion:  runtime.Version(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Benchmarks: benchmarks,
	}
	if _, err := appendEntry(*out, entry); err != nil {
		fatal("%v", err)
	}

	names := make([]string, 0, len(entry.Benchmarks))
	for n := range entry.Benchmarks {
		names = append(names, n)
	}
	sort.Strings(names)
	fmt.Fprintf(os.Stderr, "appended entry %s (%s) to %s:\n", entry.Date, entry.Commit, *out)
	for _, n := range names {
		s := entry.Benchmarks[n]
		fmt.Fprintf(os.Stderr, "  %-20s %12.0f ns/op %10.0f B/op %8.1f allocs/op (n=%d)\n",
			n, s.NsPerOp, s.BytesPerOp, s.AllocsPerOp, s.Runs)
	}
}

func atof(s string) float64 {
	if s == "" {
		return 0
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0
	}
	return v
}

func round1(v float64) float64 {
	return float64(int64(v*10+0.5)) / 10
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchjson: "+format+"\n", args...)
	os.Exit(1)
}
