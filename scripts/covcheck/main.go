// Command covcheck enforces the coverage ratchet: it reads `go test -cover`
// output on stdin, extracts per-package statement coverage, and compares it
// against the committed floor in coverage_ratchet.json. Coverage may only
// move up (minus a small noise margin); a change that drops a package below
// its recorded floor fails CI until either tests are added or the drop is
// consciously committed with -update.
//
// Usage:
//
//	go test -short -cover ./... | go run ./scripts/covcheck -ratchet coverage_ratchet.json
//	go test -short -cover ./... | go run ./scripts/covcheck -ratchet coverage_ratchet.json -update
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
)

// coverLine matches `go test -cover` package result lines, e.g.
//
//	ok  	dasesim/internal/dram	0.123s	coverage: 85.1% of statements
//
// Cached runs ("(cached)" instead of a duration) match too.
var coverLine = regexp.MustCompile(`^ok\s+(\S+)\s+\S+(?:\s+\(cached\))?\s+coverage: ([\d.]+)% of statements`)

// noTestLine matches the coverage line `go test -cover` prints for a package
// with no test files — whitespace-led, no "ok" prefix:
//
//	\tdasesim/cmd/calibrate\t\tcoverage: 0.0% of statements
//
// These packages must be parsed too: a package invisible to the ratchet is a
// package whose coverage can silently rot.
var noTestLine = regexp.MustCompile(`^\s+(\S+)\s+coverage: ([\d.]+)% of statements`)

// parseCover extracts package → coverage percent from a `go test -cover`
// stream, echoing each line to echo. Both result forms count: normal "ok"
// lines and the whitespace-led lines of packages with no test files.
func parseCover(r io.Reader, echo io.Writer) (map[string]float64, error) {
	got := map[string]float64{}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := sc.Text()
		fmt.Fprintln(echo, line)
		m := coverLine.FindStringSubmatch(line)
		if m == nil {
			m = noTestLine.FindStringSubmatch(line)
		}
		if m == nil {
			continue
		}
		v, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			return nil, fmt.Errorf("bad coverage value on %q: %w", line, err)
		}
		got[m[1]] = v
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("read test output: %w", err)
	}
	if len(got) == 0 {
		return nil, fmt.Errorf("no coverage lines found (did you pass -cover?)")
	}
	return got, nil
}

// check compares current coverage against the ratchet floors. A package may
// sit up to margin points below its floor (run-to-run noise from timing-
// dependent paths); anything lower is a failure. Packages missing from the
// current run but present in the ratchet fail too — deleting tests must not
// silently drop a floor. And the reverse direction is enforced as well: a
// package the run reports but the ratchet does not list fails, so a package
// added after the ratchet file was written cannot silently escape coverage
// enforcement forever.
func check(current, floors map[string]float64, margin float64) []string {
	var failures []string
	pkgs := make([]string, 0, len(floors))
	for pkg := range floors {
		pkgs = append(pkgs, pkg)
	}
	sort.Strings(pkgs)
	for _, pkg := range pkgs {
		floor := floors[pkg]
		cov, ok := current[pkg]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: no coverage reported (floor %.1f%%)", pkg, floor))
			continue
		}
		if cov < floor-margin {
			failures = append(failures, fmt.Sprintf("%s: coverage %.1f%% fell below floor %.1f%% (margin %.1f)", pkg, cov, floor, margin))
		}
	}
	unlisted := make([]string, 0)
	for pkg := range current {
		if _, ok := floors[pkg]; !ok {
			unlisted = append(unlisted, pkg)
		}
	}
	sort.Strings(unlisted)
	for _, pkg := range unlisted {
		failures = append(failures, fmt.Sprintf("%s: coverage %.1f%% but the package has no ratchet floor (add one with -update or by hand)", pkg, current[pkg]))
	}
	return failures
}

// updateFloors merges the current run into the ratchet: floors only move up,
// and packages seen for the first time get today's value as their floor.
func updateFloors(current, floors map[string]float64) map[string]float64 {
	out := make(map[string]float64, len(current))
	for pkg, floor := range floors {
		out[pkg] = floor
	}
	for pkg, cov := range current {
		if cov > out[pkg] {
			out[pkg] = cov
		}
	}
	return out
}

func main() {
	ratchetPath := flag.String("ratchet", "coverage_ratchet.json", "committed coverage floor file")
	update := flag.Bool("update", false, "raise the ratchet to the current run's coverage and rewrite the file")
	margin := flag.Float64("margin", 2.0, "allowed points below the floor before failing (run noise)")
	flag.Parse()

	current, err := parseCover(os.Stdin, os.Stdout)
	if err != nil {
		fatal("%v", err)
	}

	floors := map[string]float64{}
	if data, err := os.ReadFile(*ratchetPath); err == nil {
		if err := json.Unmarshal(data, &floors); err != nil {
			fatal("parse %s: %v", *ratchetPath, err)
		}
	} else if !os.IsNotExist(err) || !*update {
		fatal("read %s: %v", *ratchetPath, err)
	}

	if *update {
		merged := updateFloors(current, floors)
		data, err := json.MarshalIndent(merged, "", "  ")
		if err != nil {
			fatal("marshal: %v", err)
		}
		if err := os.WriteFile(*ratchetPath, append(data, '\n'), 0o644); err != nil {
			fatal("write %s: %v", *ratchetPath, err)
		}
		fmt.Fprintf(os.Stderr, "covcheck: wrote %s with %d package floors\n", *ratchetPath, len(merged))
		return
	}

	if failures := check(current, floors, *margin); len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintf(os.Stderr, "covcheck: %s\n", f)
		}
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "covcheck: %d packages at or above their floors\n", len(floors))
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "covcheck: "+format+"\n", args...)
	os.Exit(1)
}
