package main

import (
	"io"
	"strings"
	"testing"
)

const sampleCover = `ok  	dasesim	12.345s	coverage: 81.2% of statements
ok  	dasesim/internal/dram	0.10s	coverage: 90.0% of statements
ok  	dasesim/internal/ring	(cached)	coverage: 100.0% of statements
	dasesim/cmd/calibrate		coverage: 0.0% of statements
?   	dasesim/examples/quickstart	[no test files]
FAIL	dasesim/internal/broken	0.01s
`

func TestParseCover(t *testing.T) {
	got, err := parseCover(strings.NewReader(sampleCover), io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	// The whitespace-led calibrate line is the form `go test -cover` emits
	// for packages with no test files; it must be parsed, not skipped, or
	// such packages escape the ratchet entirely.
	want := map[string]float64{
		"dasesim":               81.2,
		"dasesim/internal/dram": 90.0,
		"dasesim/internal/ring": 100.0,
		"dasesim/cmd/calibrate": 0.0,
	}
	if len(got) != len(want) {
		t.Fatalf("parsed %v, want %v", got, want)
	}
	for pkg, cov := range want {
		if got[pkg] != cov {
			t.Errorf("%s parsed as %.1f, want %.1f", pkg, got[pkg], cov)
		}
	}
}

func TestParseCoverRejectsStreamsWithoutCoverage(t *testing.T) {
	_, err := parseCover(strings.NewReader("ok  	dasesim	1.0s\n"), io.Discard)
	if err == nil || !strings.Contains(err.Error(), "no coverage lines") {
		t.Fatalf("expected a no-coverage-lines error, got %v", err)
	}
}

func TestCheckEnforcesFloors(t *testing.T) {
	floors := map[string]float64{"a": 80.0, "b": 90.0, "gone": 50.0}
	current := map[string]float64{
		"a": 79.0, // within the 2-point margin: fine
		"b": 85.0, // 5 points below: failure
		// "gone" missing entirely: failure
	}
	failures := check(current, floors, 2.0)
	if len(failures) != 2 {
		t.Fatalf("got %d failures %v, want 2", len(failures), failures)
	}
	joined := strings.Join(failures, "\n")
	if !strings.Contains(joined, "b:") || !strings.Contains(joined, "gone:") {
		t.Errorf("failures name the wrong packages: %v", failures)
	}
	if strings.Contains(joined, "a:") {
		t.Errorf("package within the margin reported as a failure: %v", failures)
	}
}

func TestCheckFailsUnlistedPackages(t *testing.T) {
	// A package present in the run but absent from the ratchet must fail:
	// packages added after the ratchet file was written used to be silently
	// skipped, leaving their coverage unenforced forever.
	floors := map[string]float64{"a": 80.0}
	current := map[string]float64{"a": 85.0, "newpkg": 95.0, "newmain": 0.0}
	failures := check(current, floors, 2.0)
	if len(failures) != 2 {
		t.Fatalf("got %d failures %v, want 2 unlisted-package failures", len(failures), failures)
	}
	joined := strings.Join(failures, "\n")
	if !strings.Contains(joined, "newpkg:") || !strings.Contains(joined, "newmain:") {
		t.Errorf("failures name the wrong packages: %v", failures)
	}
	if !strings.Contains(joined, "no ratchet floor") {
		t.Errorf("unlisted failure lacks guidance: %v", failures)
	}
}

func TestCheckPassesWhenAtOrAboveFloors(t *testing.T) {
	floors := map[string]float64{"a": 80.0}
	if failures := check(map[string]float64{"a": 82.5}, floors, 2.0); len(failures) != 0 {
		t.Fatalf("unexpected failures: %v", failures)
	}
}

func TestUpdateFloorsOnlyMovesUp(t *testing.T) {
	floors := map[string]float64{"a": 80.0, "b": 90.0}
	current := map[string]float64{"a": 85.0, "b": 70.0, "new": 60.0}
	got := updateFloors(current, floors)
	if got["a"] != 85.0 {
		t.Errorf("improved package floor = %.1f, want raised to 85.0", got["a"])
	}
	if got["b"] != 90.0 {
		t.Errorf("regressed package floor = %.1f, want unchanged 90.0", got["b"])
	}
	if got["new"] != 60.0 {
		t.Errorf("new package floor = %.1f, want seeded at 60.0", got["new"])
	}
}
