#!/usr/bin/env bash
# Runs the engine benchmark trio and appends the averaged numbers as a dated
# entry to BENCH_cycles.json (see scripts/benchjson). Each entry is stamped
# with the go version and GOMAXPROCS so numbers from different machines stay
# comparable. Pass a note describing the state being measured:
#
#   scripts/bench.sh "after MSHR index rework"
#
# Environment:
#   COUNT  benchmark repetitions per entry (default 5)
#   BENCH  benchmark selector regex (default the engine trio)
set -euo pipefail
cd "$(dirname "$0")/.."

COUNT="${COUNT:-5}"
BENCH="${BENCH:-GPUCycle|DASEEstimate|PartitionSearch}"
NOTE="${1:-}"

go test -run '^$' -bench "$BENCH" -benchmem -count="$COUNT" . |
    go run ./scripts/benchjson -out BENCH_cycles.json -note "$NOTE"
