#!/usr/bin/env bash
# Runs a benchmark suite and appends the averaged numbers as a dated entry to
# the matching trajectory file (see scripts/benchjson). Each entry is stamped
# with the go version and GOMAXPROCS so numbers from different machines stay
# comparable.
#
#   scripts/bench.sh "after MSHR index rework"      # engine trio -> BENCH_cycles.json
#   scripts/bench.sh serve "after codec change"     # serving path -> BENCH_serve.json
#
# The serve mode builds dased and daseload, starts a local daemon on a free
# port, drives it closed-loop (saturation) and open-loop (fixed rate), runs
# the in-process estimation micro-benchmarks, and appends everything as one
# BENCH_serve.json entry.
#
# Environment:
#   COUNT  benchmark repetitions per entry (default 5; serve micro-bench only)
#   BENCH  engine benchmark selector regex (default the engine trio)
#   CONNS  serve mode: closed-loop workers / open-loop in-flight cap (default 8)
#   BATCH  serve mode: snapshots per request in the batched run (default 16)
#   QPS    serve mode: open-loop target rate (default 8000)
#   DUR    serve mode: measured duration per loop (default 5s)
set -euo pipefail
cd "$(dirname "$0")/.."

COUNT="${COUNT:-5}"

if [ "${1:-}" = "serve" ]; then
    NOTE="${2:-}"
    CONNS="${CONNS:-8}"
    BATCH="${BATCH:-16}"
    QPS="${QPS:-8000}"
    DUR="${DUR:-5s}"
    ADDR="127.0.0.1:${PORT:-8876}"

    tmp="$(mktemp -d)"
    trap 'kill "$daemon_pid" 2>/dev/null || true; rm -rf "$tmp"' EXIT
    go build -o "$tmp/dased" ./cmd/dased
    go build -o "$tmp/daseload" ./cmd/daseload

    "$tmp/dased" -addr "$ADDR" >"$tmp/dased.log" 2>&1 &
    daemon_pid=$!

    {
        "$tmp/daseload" -addr "http://$ADDR" -mode closed -conns "$CONNS" -duration "$DUR"
        "$tmp/daseload" -addr "http://$ADDR" -mode closed -conns "$CONNS" -batch "$BATCH" \
            -name "ServeClosedBatch$BATCH" -duration "$DUR"
        "$tmp/daseload" -addr "http://$ADDR" -mode open -qps "$QPS" -conns $((CONNS * 16)) -duration "$DUR"
        go test -run '^$' -bench 'ProcessSingle|ProcessBatch' -benchmem -count="$COUNT" ./internal/estimate
    } | go run ./scripts/benchjson -out BENCH_serve.json -note "$NOTE"

    kill "$daemon_pid" 2>/dev/null || true
    wait "$daemon_pid" 2>/dev/null || true
    exit 0
fi

BENCH="${BENCH:-GPUCycle|DASEEstimate|PartitionSearch}"
NOTE="${1:-}"

go test -run '^$' -bench "$BENCH" -benchmem -count="$COUNT" . |
    go run ./scripts/benchjson -out BENCH_cycles.json -note "$NOTE"
