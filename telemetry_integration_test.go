package dasesim

// End-to-end telemetry check: a traced DASE-Fair run must produce a Chrome
// trace that passes the schema validator and contains per-interval DASE
// estimator events for every application, and the trace must yield a
// non-empty estimated-vs-actual error timeline.

import (
	"bytes"
	"testing"

	"dasesim/internal/sched"
	"dasesim/internal/sim"
	"dasesim/internal/telemetry"
)

func TestTracedDASEFairChromeTrace(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy; skipped with -short")
	}
	const cycles = 160_000
	profs := detProfiles(t, []string{"VA", "CT"})
	tr := telemetry.New(0)
	res, err := sched.Run(DefaultConfig(), profs, []int{8, 8}, cycles, 5,
		sched.NewDASEFair(), sim.WithTracer(tr))
	if err != nil {
		t.Fatal(err)
	}

	// Every app must have a dase.app event in every post-warmup interval
	// (DASE-Fair warms up for 1 interval; IntervalCycles is 50k, so 160k
	// cycles → 3 intervals → 2 estimated ones).
	intervals := map[int32]map[uint64]bool{}
	for _, e := range tr.Events() {
		if e.Kind == telemetry.KindDASEApp {
			if intervals[e.App] == nil {
				intervals[e.App] = map[uint64]bool{}
			}
			intervals[e.App][e.Cycle] = true
		}
	}
	wantIntervals := int(cycles/DefaultConfig().IntervalCycles) - 1
	for app := int32(0); app < int32(len(profs)); app++ {
		if got := len(intervals[app]); got != wantIntervals {
			t.Errorf("app %d has dase.app events in %d intervals, want %d", app, got, wantIntervals)
		}
	}

	// Fabricate ground truth (a real deployment gets it from the slowdowns
	// computation) so the trace is self-contained for the timeline.
	for i := range profs {
		tr.Emit(telemetry.Event{
			Kind: telemetry.KindActual, Cycle: res.Cycles,
			App: int32(i), SM: -1, Actual: 1.5 + 0.5*float64(i),
		})
	}

	var buf bytes.Buffer
	if err := telemetry.WriteChromeTrace(&buf, tr.Events()); err != nil {
		t.Fatal(err)
	}
	if err := telemetry.ValidateChromeTrace(buf.Bytes()); err != nil {
		t.Fatalf("chrome trace fails schema validation: %v", err)
	}

	timelines := telemetry.ErrorTimeline(tr.Events())
	if len(timelines) != len(profs) {
		t.Fatalf("%d app timelines, want %d", len(timelines), len(profs))
	}
	for _, tl := range timelines {
		if len(tl.Points) == 0 {
			t.Errorf("app %d has an empty error timeline", tl.App)
		}
		if m := tl.MeanAbsErr(); m != m { // NaN
			t.Errorf("app %d has no computable estimation error", tl.App)
		}
	}
}
