module dasesim

go 1.22
