package dasesim_test

import (
	"fmt"

	"dasesim"
)

// ExampleSlowdown shows the paper's Eq. 1.
func ExampleSlowdown() {
	// An app retires 8.0 IPC alone but only 2.5 IPC when sharing the GPU.
	fmt.Printf("%.2f\n", dasesim.Slowdown(8.0, 2.5))
	// Output: 3.20
}

// ExampleUnfairness shows the paper's Eq. 2 with its §3 example values.
func ExampleUnfairness() {
	fmt.Printf("%.2f\n", dasesim.Unfairness([]float64{3.44, 1.37}))
	// Output: 2.51
}

// ExampleHarmonicSpeedup shows the paper's Eq. 27.
func ExampleHarmonicSpeedup() {
	fmt.Printf("%.2f\n", dasesim.HarmonicSpeedup([]float64{2, 2}))
	// Output: 0.50
}

// ExampleEstimationError shows the paper's Eq. 26.
func ExampleEstimationError() {
	fmt.Printf("%.1f%%\n", dasesim.EstimationError(2.2, 2.0)*100)
	// Output: 10.0%
}

// ExampleKernelByAbbr looks up a Table III workload.
func ExampleKernelByAbbr() {
	p, ok := dasesim.KernelByAbbr("SD")
	fmt.Println(ok, p.Name)
	// Output: true srad
}

// ExampleEvenAllocation shows the default SM partitioning scheme.
func ExampleEvenAllocation() {
	fmt.Println(dasesim.EvenAllocation(16, 3))
	// Output: [6 5 5]
}

// ExampleLeftoverAllocation shows why the LEFTOVER policy of current GPUs
// fails to provide concurrency: a large kernel first leaves nothing over.
func ExampleLeftoverAllocation() {
	cfg := dasesim.DefaultConfig()
	sb, _ := dasesim.KernelByAbbr("SB") // thousands of thread blocks
	sn, _ := dasesim.KernelByAbbr("SN") // 24 thread blocks
	fmt.Println(dasesim.LeftoverAllocation(cfg, []dasesim.KernelProfile{sb, sn}))
	fmt.Println(dasesim.LeftoverAllocation(cfg, []dasesim.KernelProfile{sn, sb}))
	// Output:
	// [16 0]
	// [4 12]
}
