package dasesim

// Compile-and-run smoke coverage for the examples/ binaries: each must build
// with the current API and run to completion producing output. The examples
// double as the README's usage documentation, so an API change that breaks
// them should fail the suite, not a reader.

import (
	"os"
	"os/exec"
	"path/filepath"
	"testing"
)

// exampleBins lists every example with the arguments that keep the smoke run
// short. Binaries without a -cycles flag use their built-in budgets (300k to
// 500k cycles, a few seconds each).
var exampleBins = []struct {
	name string
	args []string
}{
	{name: "bwdecomp", args: []string{"-cycles", "60000"}},
	{name: "estimate"},
	{name: "fairsched"},
	{name: "fleet"},
	{name: "qos"},
	{name: "quickstart"},
	{name: "slowdown"},
}

func TestExamplesBuildAndRun(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs all example binaries; skipped with -short")
	}
	binDir := t.TempDir()
	for _, ex := range exampleBins {
		ex := ex
		t.Run(ex.name, func(t *testing.T) {
			t.Parallel()
			bin := filepath.Join(binDir, ex.name)
			build := exec.Command("go", "build", "-o", bin, "./examples/"+ex.name)
			if out, err := build.CombinedOutput(); err != nil {
				t.Fatalf("go build examples/%s: %v\n%s", ex.name, err, out)
			}
			if _, err := os.Stat("examples/" + ex.name + "/main.go"); err != nil {
				t.Fatalf("example source missing: %v", err)
			}
			out, err := exec.Command(bin, ex.args...).CombinedOutput()
			if err != nil {
				t.Fatalf("run %s %v: %v\n%s", ex.name, ex.args, err, out)
			}
			if len(out) == 0 {
				t.Fatalf("%s produced no output", ex.name)
			}
		})
	}
}
