// Package dasesim is a cycle-level GPU spatial-multitasking simulator with
// run-time application-slowdown estimation (DASE) and fairness-oriented SM
// scheduling (DASE-Fair), reproducing Hu et al., "Run-Time Performance
// Estimation and Fairness-Oriented Scheduling Policy for Concurrent GPGPU
// Applications" (ICPP 2016).
//
// The package is a facade over the internal subsystems:
//
//   - a GTX 480-like GPU model (SMs with warps and private L1s, a crossbar
//     interconnect, shared L2 slices, FR-FCFS GDDR controllers with banks,
//     row buffers and tRRD/tFAW activation limits);
//   - 15 synthetic kernels calibrated to the paper's Table III workloads;
//   - the DASE slowdown estimator and the MISE/ASM baselines;
//   - SM-partition policies (even, LEFTOVER, DASE-Fair).
//
// Quickstart:
//
//	cfg := dasesim.DefaultConfig()
//	sb, _ := dasesim.KernelByAbbr("SB")
//	sd, _ := dasesim.KernelByAbbr("SD")
//	shared, _ := dasesim.RunShared(cfg, []dasesim.KernelProfile{sb, sd}, []int{8, 8}, 500_000, 1)
//	alone, _ := dasesim.RunAlone(cfg, sd, 500_000, 1)
//	slowdown := dasesim.Slowdown(alone.Apps[0].IPC, shared.Apps[1].IPC)
package dasesim

import (
	"os"

	"dasesim/internal/baseline"
	"dasesim/internal/config"
	"dasesim/internal/core"
	"dasesim/internal/kernels"
	"dasesim/internal/metrics"
	"dasesim/internal/sched"
	"dasesim/internal/sim"
)

// Config is the simulated GPU configuration (Table II parameters).
type Config = config.Config

// DefaultConfig returns the paper's baseline GPU (GTX 480-like).
func DefaultConfig() Config { return config.Default() }

// LargeConfig returns a bigger Kepler-class device (24 SMs, 8 memory
// partitions) for robustness studies across GPU generations.
func LargeConfig() Config { return config.Large() }

// LoadConfig reads a GPU configuration from a JSON file (schema: the Config
// struct; bootstrap one with SaveConfig(DefaultConfig(), path)).
func LoadConfig(path string) (Config, error) { return config.LoadFile(path) }

// SaveConfig writes a configuration as JSON.
func SaveConfig(c Config, path string) error { return c.SaveFile(path) }

// LoadKernels reads custom kernel profiles from a JSON file (schema: the
// KernelProfile struct; bootstrap one with SaveKernels(Kernels(), path)).
func LoadKernels(path string) ([]KernelProfile, error) { return kernels.LoadFile(path) }

// SaveKernels writes kernel profiles as JSON.
func SaveKernels(ps []KernelProfile, path string) error {
	data, err := kernels.ToJSON(ps)
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// KernelProfile describes one synthetic GPGPU kernel.
type KernelProfile = kernels.Profile

// Kernels returns the 15 Table III kernel profiles.
func Kernels() []KernelProfile { return kernels.All() }

// KernelByAbbr looks a kernel up by its two-letter abbreviation (e.g. "SB").
func KernelByAbbr(abbr string) (KernelProfile, bool) { return kernels.ByAbbr(abbr) }

// KernelNames returns the kernel abbreviations in Table III order.
func KernelNames() []string { return kernels.Names() }

// GPU is a running simulation instance; use it directly when you need
// interval hooks or dynamic SM reallocation. Most callers can use RunAlone,
// RunShared or RunWithPolicy instead.
type GPU = sim.GPU

// Option configures a GPU built through this facade (engine parallelism,
// snapshot retention, tracing, ...). All options are observation- or
// speed-only: simulation results are byte-identical with or without them.
type Option = sim.Option

// WithParallelism runs the cycle engine on n bulk-synchronous shards
// (persistent worker goroutines with a barrier per step phase). Results are
// byte-identical to the sequential engine at every n; wall-clock improves
// when GOMAXPROCS provides real cores. n == 0 means GOMAXPROCS; n < 0
// forces the sequential engine, overriding the DASESIM_PARALLEL environment
// default that applies when the option is absent.
func WithParallelism(n int) Option { return sim.WithParallelism(n) }

// WithSnapshotRetention caps how many interval snapshots a run keeps in
// memory; whole-run aggregates stay exact.
func WithSnapshotRetention(n int) Option { return sim.WithSnapshotRetention(n) }

// Result summarises a finished simulation.
type Result = sim.Result

// AppResult summarises one application of a Result.
type AppResult = sim.AppResult

// IntervalSnapshot is the per-interval hardware-counter view that the
// estimators consume.
type IntervalSnapshot = sim.IntervalSnapshot

// NewGPU builds a simulation of the given kernels with alloc[i] SMs for
// kernel i.
func NewGPU(cfg Config, ps []KernelProfile, alloc []int, seed uint64, opts ...Option) (*GPU, error) {
	return sim.New(cfg, ps, alloc, seed, opts...)
}

// RunAlone simulates one kernel alone on all SMs (the IPC-alone baseline).
func RunAlone(cfg Config, p KernelProfile, cycles, seed uint64, opts ...Option) (*Result, error) {
	return sim.RunAlone(cfg, p, cycles, seed, opts...)
}

// RunShared simulates kernels concurrently under a static SM partition.
func RunShared(cfg Config, ps []KernelProfile, alloc []int, cycles, seed uint64, opts ...Option) (*Result, error) {
	return sim.RunShared(cfg, ps, alloc, cycles, seed, opts...)
}

// RunSharedWithEpochs is RunShared with the rotating highest-priority
// memory-controller epochs enabled; required when the run's snapshots will
// feed the MISE or ASM estimators.
func RunSharedWithEpochs(cfg Config, ps []KernelProfile, alloc []int, cycles, seed uint64, opts ...Option) (*Result, error) {
	return sim.RunShared(cfg, ps, alloc, cycles, seed, append([]Option{sim.WithPriorityEpochs()}, opts...)...)
}

// EvenAllocation splits n SMs evenly among k applications.
func EvenAllocation(n, k int) []int { return sim.EvenAllocation(n, k) }

// Estimator produces per-application slowdown estimates from interval
// snapshots.
type Estimator = core.Estimator

// DASEOptions tune the DASE estimator; the zero value is the paper's
// configuration.
type DASEOptions = core.Options

// NewDASE builds the paper's slowdown estimator.
func NewDASE() *core.DASE { return core.New(core.Options{}) }

// NewDASEWithOptions builds a DASE estimator with explicit options
// (ablations: literal Eq. 9 bank interference, static Requestmax, disabled
// BLP normalisation, forced MBB/NMBB classification, ...).
func NewDASEWithOptions(opt DASEOptions) *core.DASE { return core.New(opt) }

// NewMISE builds the MISE baseline estimator (HPCA 2013, ported to GPU).
// Runs feeding its estimates must enable the priority epochs — use
// RunSharedWithEpochs.
func NewMISE() Estimator { return baseline.NewMISE() }

// NewASM builds the ASM baseline estimator (MICRO 2015, ported to GPU).
func NewASM() Estimator { return baseline.NewASM() }

// NewSTFM builds a stall-time-fair (MICRO 2007) style estimator: DASE's
// bank-interference term alone, for historical comparison.
func NewSTFM() Estimator { return baseline.NewSTFM() }

// NewProfiled builds the offline-profiling estimator (Aguilera et al.):
// slowdown approximated as profiled-alone-bandwidth / observed-shared-
// bandwidth. aloneBW[i] is app i's alone bandwidth fraction (Table III).
func NewProfiled(aloneBW []float64) Estimator { return baseline.NewProfiled(aloneBW) }

// AverageEstimates averages an estimator's per-interval outputs over a
// run's snapshots, skipping warm-up intervals.
func AverageEstimates(est Estimator, snaps []IntervalSnapshot, warmup int) []float64 {
	return core.AverageEstimates(est, snaps, warmup)
}

// Policy is an SM-allocation policy reacting to interval snapshots.
type Policy = sched.Policy

// EvenPolicy is the static even-partition baseline policy.
type EvenPolicy = sched.Even

// DASEFairPolicy is the paper's fairness-oriented dynamic SM partitioner.
type DASEFairPolicy = sched.DASEFair

// NewDASEFair builds the DASE-Fair policy with the paper's defaults.
func NewDASEFair() *DASEFairPolicy { return sched.NewDASEFair() }

// DASEQoSPolicy protects one latency-critical application with a maximum
// slowdown target, giving the remaining SMs to the other applications — the
// slowdown-aware QoS policy the paper names as future work.
type DASEQoSPolicy = sched.DASEQoS

// NewDASEQoS builds a QoS policy protecting app index critical with the
// given maximum slowdown relative to running alone.
func NewDASEQoS(critical int, target float64) *DASEQoSPolicy {
	return sched.NewDASEQoS(critical, target)
}

// DASEPerfPolicy maximises estimated weighted speedup instead of fairness —
// the throughput-oriented counterpart of DASE-Fair.
type DASEPerfPolicy = sched.DASEPerf

// NewDASEPerf builds the throughput-oriented policy.
func NewDASEPerf() *DASEPerfPolicy { return sched.NewDASEPerf() }

// TimeSlicePolicy is traditional temporal multitasking: the whole GPU
// rotates among applications every few estimation intervals.
type TimeSlicePolicy = sched.TimeSlice

// NewTimeSlice builds the temporal-multitasking policy with the given slice
// length in estimation intervals.
func NewTimeSlice(sliceIntervals int) *TimeSlicePolicy { return sched.NewTimeSlice(sliceIntervals) }

// WeightedSpeedup is Σ 1/slowdown_i, the system-throughput metric.
func WeightedSpeedup(slowdowns []float64) float64 { return metrics.WeightedSpeedup(slowdowns) }

// RunWithPolicy simulates kernels under a dynamic SM-allocation policy.
func RunWithPolicy(cfg Config, ps []KernelProfile, alloc []int, cycles, seed uint64, pol Policy, opts ...Option) (*Result, error) {
	return sched.Run(cfg, ps, alloc, cycles, seed, pol, opts...)
}

// LeftoverAllocation computes the allocation of the LEFTOVER policy used by
// current GPUs (first kernel takes what it can fill; the rest is left over).
func LeftoverAllocation(cfg Config, ps []KernelProfile) []int {
	return sched.LeftoverAllocation(cfg, ps)
}

// Slowdown is IPCalone/IPCshared (paper Eq. 1).
func Slowdown(ipcAlone, ipcShared float64) float64 { return metrics.Slowdown(ipcAlone, ipcShared) }

// Unfairness is MAX/MIN of the slowdowns (paper Eq. 2).
func Unfairness(slowdowns []float64) float64 { return metrics.Unfairness(slowdowns) }

// HarmonicSpeedup is N/Σslowdowns (paper Eq. 27).
func HarmonicSpeedup(slowdowns []float64) float64 { return metrics.HarmonicSpeedup(slowdowns) }

// EstimationError is |estimated-actual|/actual (paper Eq. 26).
func EstimationError(estimated, actual float64) float64 { return metrics.Error(estimated, actual) }
