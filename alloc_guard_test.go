package dasesim

import (
	"testing"

	"dasesim/internal/sim"
)

// TestSteadyStateAllocations guards the cycle engine's pooled hot path
// against allocation regressions. After warm-up (request pool populated,
// rings grown to their working size, thread blocks resident), advancing the
// simulation must allocate almost nothing: the remaining allocations are
// block dispatch (warp streams for newly launched blocks) and the
// per-interval snapshot, both far off the per-cycle path.
//
// The seed engine spent ~13,500 allocations per 10,000 cycles on this
// workload; the pooled engine spends ~40. The budget of 500 leaves room for
// benign drift while still failing loudly if a hot path starts allocating
// per request or per cycle again.
//
// The parallel variant holds the phased engine to the same budget: workers
// are spawned once per Run (a handful of allocations for goroutine stacks and
// closures), the barrier is two atomics, and the per-entity request pools
// recycle exactly like the shared one — so steady-state cycles must stay free
// of per-cycle channel, closure or slice garbage.
func TestSteadyStateAllocations(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation guard runs full simulation windows")
	}
	cfg := DefaultConfig()
	sb, ok := KernelByAbbr("SB")
	if !ok {
		t.Fatal("kernel SB missing")
	}
	sd, ok := KernelByAbbr("SD")
	if !ok {
		t.Fatal("kernel SD missing")
	}
	for _, tc := range []struct {
		name string
		opts []sim.Option
	}{
		{"sequential", nil},
		{"parallel-p2", []sim.Option{sim.WithParallelism(2)}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			g, err := sim.New(cfg, []KernelProfile{sb, sd}, []int{8, 8}, 1, tc.opts...)
			if err != nil {
				t.Fatal(err)
			}
			g.Run(20_000) // warm up: pools, queues and worker stacks reach steady state

			avg := testing.AllocsPerRun(5, func() { g.Run(10_000) })
			const budget = 500
			if avg > budget {
				t.Fatalf("steady-state GPU.Run(10k cycles) allocates %.0f objects, budget %d — a hot path regressed to per-request allocation", avg, budget)
			}
			t.Logf("steady-state allocations per 10k cycles: %.1f (budget %d)", avg, budget)
		})
	}
}
