package dasesim

import "testing"

// TestFacadeSurface exercises the public API end to end at small scale.
func TestFacadeSurface(t *testing.T) {
	cfg := DefaultConfig()
	cfg.IntervalCycles = 10_000
	if len(Kernels()) != 15 || len(KernelNames()) != 15 {
		t.Fatal("kernel catalogue incomplete")
	}
	sb, ok := KernelByAbbr("SB")
	if !ok {
		t.Fatal("SB missing")
	}
	sd, ok := KernelByAbbr("SD")
	if !ok {
		t.Fatal("SD missing")
	}

	shared, err := RunSharedWithEpochs(cfg, []KernelProfile{sb, sd}, EvenAllocation(cfg.NumSMs, 2), 30_000, 1)
	if err != nil {
		t.Fatal(err)
	}
	alone, err := RunAlone(cfg, sd, 30_000, 1)
	if err != nil {
		t.Fatal(err)
	}

	slow := Slowdown(alone.Apps[0].IPC, shared.Apps[1].IPC)
	if slow < 1 {
		t.Fatalf("shared run faster than alone: %v", slow)
	}
	if u := Unfairness([]float64{slow, 1.5}); u < 1 {
		t.Fatalf("unfairness %v", u)
	}
	if hs := HarmonicSpeedup([]float64{2, 2}); hs != 0.5 {
		t.Fatalf("harmonic speedup %v", hs)
	}
	if e := EstimationError(1.1, 1.0); e < 0.099 || e > 0.101 {
		t.Fatalf("estimation error %v", e)
	}

	for _, est := range []Estimator{NewDASE(), NewMISE(), NewASM()} {
		vals := AverageEstimates(est, shared.Snapshots, 1)
		if len(vals) != 2 {
			t.Fatalf("%s returned %d estimates", est.Name(), len(vals))
		}
		for _, v := range vals {
			if v < 1 {
				t.Fatalf("%s estimate %v below 1", est.Name(), v)
			}
		}
	}

	// Policy path.
	pol := NewDASEFair()
	res, err := RunWithPolicy(cfg, []KernelProfile{sb, sd}, []int{8, 8}, 30_000, 1, pol)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Apps) != 2 {
		t.Fatal("policy run lost apps")
	}

	// LEFTOVER allocation.
	lo := LeftoverAllocation(cfg, []KernelProfile{sb, sd})
	if lo[0] != cfg.NumSMs || lo[1] != 0 {
		t.Fatalf("LEFTOVER with a big kernel first = %v", lo)
	}

	// Ablation options construct.
	ab := NewDASEWithOptions(DASEOptions{LiteralBankInterference: true, StaticRequestMax: true})
	if ab.Name() != "DASE" {
		t.Fatal("ablation estimator broken")
	}

	// Direct GPU use.
	g, err := NewGPU(cfg, []KernelProfile{sb, sd}, []int{8, 8}, 1)
	if err != nil {
		t.Fatal(err)
	}
	g.Run(5_000)
	if g.Cycle() != 5_000 {
		t.Fatalf("cycle = %d", g.Cycle())
	}
}

// TestConfigAndKernelFiles round-trips the JSON import/export facade.
func TestConfigAndKernelFiles(t *testing.T) {
	dir := t.TempDir()

	cfgPath := dir + "/gpu.json"
	if err := SaveConfig(LargeConfig(), cfgPath); err != nil {
		t.Fatal(err)
	}
	cfg, err := LoadConfig(cfgPath)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.NumSMs != 24 {
		t.Fatalf("loaded NumSMs = %d", cfg.NumSMs)
	}

	kPath := dir + "/kernels.json"
	if err := SaveKernels(Kernels()[:2], kPath); err != nil {
		t.Fatal(err)
	}
	ps, err := LoadKernels(kPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != 2 || ps[0].Abbr != "BS" {
		t.Fatalf("loaded kernels %v", ps)
	}
}
