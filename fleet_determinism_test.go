package dasesim

// The eighth determinism golden: a fixed-seed 3-tenant, 4-GPU fleet run over
// the real cycle engine must produce a byte-identical allocation-history
// CSV — across processes (the SHA-256 pin below), across repeated in-process
// runs, and across cycle-engine shard counts (both sim.WithParallelism and
// the DASESIM_PARALLEL environment default). The fleet layer sits on top of
// the whole stack — scheduler, DASE estimator, parallel engine — so this one
// hash transitively pins all of it.
//
// Regenerate (only when an *intentional* model change lands) with:
// go test -run TestFleetDeterminismGolden -update-golden

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"os"
	"testing"

	"dasesim/internal/fleet"
	"dasesim/internal/sim"
)

const fleetGoldenKey = "fleet-3tenant-4gpu-csv"

// fleetGoldenCSV replays the golden scenario with the given engine options,
// checks every fairness invariant over the run, and returns the CSV bytes
// and their hex SHA-256.
func fleetGoldenCSV(t *testing.T, opts ...sim.Option) ([]byte, string) {
	t.Helper()
	sc := fleet.GoldenScenario()
	eng, ok := sc.Config.Engine.(*fleet.SimEngine)
	if !ok {
		t.Fatalf("golden scenario engine is %T, want *fleet.SimEngine", sc.Config.Engine)
	}
	eng.Opts = append(eng.Opts, opts...)
	f, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	if err := fleet.CheckAll(f.Records(), f.Capacity(), sc.Config.GPU.NumSMs); err != nil {
		t.Fatalf("golden run violates a fairness invariant: %v", err)
	}
	var buf bytes.Buffer
	if err := fleet.WriteCSV(&buf, f.Records()); err != nil {
		t.Fatal(err)
	}
	sum := sha256.Sum256(buf.Bytes())
	return buf.Bytes(), hex.EncodeToString(sum[:])
}

func TestFleetDeterminismGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy; skipped with -short")
	}
	golden := map[string]string{}
	if data, err := os.ReadFile(goldenPath); err == nil {
		if err := json.Unmarshal(data, &golden); err != nil {
			t.Fatalf("parse %s: %v", goldenPath, err)
		}
	} else if !*updateGolden {
		t.Fatalf("read %s: %v (regenerate with -update-golden)", goldenPath, err)
	}

	csv1, fp := fleetGoldenCSV(t)
	csv2, fp2 := fleetGoldenCSV(t)
	if !bytes.Equal(csv1, csv2) || fp != fp2 {
		t.Fatal("two identical golden runs produced different CSV bytes")
	}

	if *updateGolden {
		golden[fleetGoldenKey] = fp
		data, err := json.MarshalIndent(golden, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s: %s", goldenPath, fp)
		return
	}
	want, ok := golden[fleetGoldenKey]
	if !ok {
		t.Fatalf("no golden hash for %q (regenerate with -update-golden)", fleetGoldenKey)
	}
	if fp != want {
		t.Errorf("fleet CSV hash mismatch: got %s want %s\nthe fleet layer no longer produces byte-identical allocation histories", fp, want)
	}

	// The same scenario must reproduce the pinned hash at any shard count,
	// requested either explicitly or through the environment default.
	t.Run("parallel-4", func(t *testing.T) {
		if _, got := fleetGoldenCSV(t, sim.WithParallelism(4)); got != want {
			t.Errorf("hash mismatch under WithParallelism(4): got %s want %s", got, want)
		}
	})
	t.Run("env-parallel-4", func(t *testing.T) {
		t.Setenv("DASESIM_PARALLEL", "4")
		if _, got := fleetGoldenCSV(t); got != want {
			t.Errorf("hash mismatch under DASESIM_PARALLEL=4: got %s want %s", got, want)
		}
	})
}
