// Package refmodel holds small, deliberately naive reference implementations
// of the data structures the cycle engine's hot paths optimized (PR 3): a
// slice-based FIFO (vs ring.Buffer), a map-based MSHR address index (vs the
// open-addressed mshrIndex), a fresh-allocation request source (vs
// memreq.Pool), a from-scratch per-bank queue recount (vs the incremental
// queuedPerBank counters), and a row-recomputing FR-FCFS pick (vs the
// cached-Row scheduler path).
//
// Nothing here is fast, and that is the point: each model is written to be
// obviously correct so that native fuzz targets can drive it in lockstep with
// the optimized implementation and flag the first divergence — telling us
// *where* an engine optimization broke, not merely *that* a golden hash
// changed. See DESIGN.md §11 for the methodology and for how to add a model
// alongside a future optimization.
package refmodel

import "dasesim/internal/memreq"

// FIFO is the slice-based queue the ring buffer replaced: PopFront shifts the
// whole slice, RemoveAt splices. It mirrors ring.Buffer's API exactly so a
// fuzz driver can apply one operation stream to both.
type FIFO[T any] struct {
	q []T
}

// Len returns the number of queued elements.
func (f *FIFO[T]) Len() int { return len(f.q) }

// Empty reports whether the queue holds no elements.
func (f *FIFO[T]) Empty() bool { return len(f.q) == 0 }

// PushBack appends v at the tail.
func (f *FIFO[T]) PushBack(v T) { f.q = append(f.q, v) }

// PopFront removes and returns the head element.
func (f *FIFO[T]) PopFront() T {
	if len(f.q) == 0 {
		panic("refmodel: PopFront on empty FIFO")
	}
	v := f.q[0]
	f.q = append(f.q[:0], f.q[1:]...)
	return v
}

// Front returns the head element without removing it.
func (f *FIFO[T]) Front() T {
	if len(f.q) == 0 {
		panic("refmodel: Front on empty FIFO")
	}
	return f.q[0]
}

// At returns the i-th element from the front (0 = head).
func (f *FIFO[T]) At(i int) T {
	if i < 0 || i >= len(f.q) {
		panic("refmodel: At out of range")
	}
	return f.q[i]
}

// RemoveAt removes and returns the i-th element from the front, preserving
// the order of the rest.
func (f *FIFO[T]) RemoveAt(i int) T {
	if i < 0 || i >= len(f.q) {
		panic("refmodel: RemoveAt out of range")
	}
	v := f.q[i]
	f.q = append(f.q[:i], f.q[i+1:]...)
	return v
}

// Reset discards all elements.
func (f *FIFO[T]) Reset() { f.q = f.q[:0] }

// MSHRIndex is the map-based miss-address index the open-addressed
// cache.mshrIndex replaced. Semantics match: Get returns the registered slot
// or -1, Put registers a new address (the address must be absent), Del
// removes an address and is a no-op when it is absent.
type MSHRIndex struct {
	m map[uint64]int32
}

// NewMSHRIndex builds an empty index.
func NewMSHRIndex() *MSHRIndex { return &MSHRIndex{m: map[uint64]int32{}} }

// Get returns the slot registered for addr, or -1.
func (ix *MSHRIndex) Get(addr uint64) int32 {
	if s, ok := ix.m[addr]; ok {
		return s
	}
	return -1
}

// Put registers addr -> slot; addr must not already be present.
func (ix *MSHRIndex) Put(addr uint64, slot int32) {
	if _, ok := ix.m[addr]; ok {
		panic("refmodel: MSHRIndex.Put of present address")
	}
	ix.m[addr] = slot
}

// Del removes addr (no-op when absent).
func (ix *MSHRIndex) Del(addr uint64) { delete(ix.m, addr) }

// Len returns the number of registered addresses.
func (ix *MSHRIndex) Len() int { return len(ix.m) }

// FreshSource is the allocation discipline memreq.Pool replaced: every Get is
// a fresh, zeroed Request and Put drops the request on the floor. A pooled
// implementation is observationally equivalent exactly when every pooled Get
// returns a Request value equal to a fresh one (fully zeroed) at a pointer
// that aliases no live request.
type FreshSource struct{}

// Get returns a brand-new zeroed request.
func (FreshSource) Get() *memreq.Request { return &memreq.Request{} }

// Put discards the request.
func (FreshSource) Put(*memreq.Request) {}

// CountQueued is the naive per-bank queue recount the incremental
// queuedPerBank counters replaced: it walks every bank queue and tallies
// requests per (app, bank). The result is indexed app*numBanks+bank, matching
// the controller's layout.
func CountQueued(queues [][]*memreq.Request, numApps, numBanks int) []int32 {
	counts := make([]int32, numApps*numBanks)
	for b, q := range queues {
		for _, r := range q {
			counts[int(r.App)*numBanks+b]++
		}
	}
	return counts
}

// FRFCFSBank is one bank's scheduler-visible state for FRFCFSPick.
type FRFCFSBank struct {
	// Free reports whether the bank can start a command now (no request in
	// service and past its ready cycle).
	Free    bool
	RowOpen bool
	OpenRow uint64
	// Queue is the bank's request queue in arrival order.
	Queue []FRFCFSReq
}

// FRFCFSReq is one queued request as the reference scheduler sees it. Row is
// deliberately absent: the reference recomputes it from Addr on every
// comparison, which is exactly what the optimized path's cached Request.Row
// is measured against.
type FRFCFSReq struct {
	App  memreq.AppID
	Addr uint64
	Seq  uint64 // arrival sequence number (FCFS tiebreak)
}

// FRFCFSPick is the naive row-scanning FR-FCFS selection: per free bank the
// candidate is the prioritized app's oldest request within the lookahead
// window if one exists, else the first row hit within the window, else the
// head; across banks the order is priority app > row hit > oldest arrival.
// Requests needing a row activation are ineligible while actAllowed is false.
// only restricts the pick to one application (memreq.InvalidApp: any). It
// returns the chosen (bank, queue index), or (-1, -1).
func FRFCFSPick(amap memreq.AddrMap, banks []FRFCFSBank, prio, only memreq.AppID, actAllowed bool, lookahead int) (int, int) {
	bestBank, bestIdx := -1, -1
	var bestSeq uint64
	bestHit := false
	bestPrio := false
	for bi := range banks {
		bnk := &banks[bi]
		if !bnk.Free || len(bnk.Queue) == 0 {
			continue
		}
		q := bnk.Queue
		idx := -1
		hit := false
		if prio != memreq.InvalidApp && (only == memreq.InvalidApp || only == prio) {
			for k := 0; k < len(q) && k < lookahead; k++ {
				if q[k].App == prio {
					h := bnk.RowOpen && amap.Row(q[k].Addr) == bnk.OpenRow
					if !h && !actAllowed {
						break
					}
					idx, hit = k, h
					break
				}
			}
		}
		if idx == -1 && bnk.RowOpen {
			for k := 0; k < len(q) && k < lookahead; k++ {
				if only != memreq.InvalidApp && q[k].App != only {
					continue
				}
				if amap.Row(q[k].Addr) == bnk.OpenRow {
					idx, hit = k, true
					break
				}
			}
		}
		if idx == -1 {
			if !actAllowed {
				continue
			}
			if only == memreq.InvalidApp {
				idx = 0
			} else {
				for k := 0; k < len(q) && k < lookahead; k++ {
					if q[k].App == only {
						idx = k
						break
					}
				}
				if idx == -1 {
					continue
				}
			}
		}
		r := q[idx]
		pr := prio != memreq.InvalidApp && r.App == prio
		better := bestBank == -1 ||
			(pr && !bestPrio) ||
			(pr == bestPrio && hit && !bestHit) ||
			(pr == bestPrio && hit == bestHit && r.Seq < bestSeq)
		if better {
			bestBank, bestIdx, bestSeq, bestHit, bestPrio = bi, idx, r.Seq, hit, pr
		}
	}
	return bestBank, bestIdx
}
