package refmodel

import (
	"testing"

	"dasesim/internal/memreq"
)

func TestFIFOBasics(t *testing.T) {
	var f FIFO[int]
	if !f.Empty() || f.Len() != 0 {
		t.Fatal("new FIFO not empty")
	}
	for i := 1; i <= 5; i++ {
		f.PushBack(i)
	}
	if f.Front() != 1 || f.At(4) != 5 || f.Len() != 5 {
		t.Fatalf("unexpected contents: front=%d at4=%d len=%d", f.Front(), f.At(4), f.Len())
	}
	if got := f.RemoveAt(2); got != 3 {
		t.Fatalf("RemoveAt(2)=%d, want 3", got)
	}
	want := []int{1, 2, 4, 5}
	for _, w := range want {
		if got := f.PopFront(); got != w {
			t.Fatalf("PopFront=%d, want %d", got, w)
		}
	}
	f.PushBack(9)
	f.Reset()
	if !f.Empty() {
		t.Fatal("Reset left elements")
	}
}

func TestMSHRIndexBasics(t *testing.T) {
	ix := NewMSHRIndex()
	if ix.Get(0x40) != -1 {
		t.Fatal("empty index returned a slot")
	}
	ix.Put(0x40, 3)
	ix.Put(0x80, 1)
	if ix.Get(0x40) != 3 || ix.Get(0x80) != 1 || ix.Len() != 2 {
		t.Fatal("lookups after Put wrong")
	}
	ix.Del(0x40)
	ix.Del(0x40) // absent: no-op
	if ix.Get(0x40) != -1 || ix.Len() != 1 {
		t.Fatal("Del did not remove the address")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Put of a present address did not panic")
		}
	}()
	ix.Put(0x80, 2)
}

func TestFreshSourceReturnsZeroedDistinct(t *testing.T) {
	var s FreshSource
	a, b := s.Get(), s.Get()
	if a == b {
		t.Fatal("fresh source aliased two requests")
	}
	if *a != (memreq.Request{}) {
		t.Fatalf("fresh request not zeroed: %+v", a)
	}
	a.Addr = 0xdead
	s.Put(a) // drops the request: the next Get is still fresh and zeroed
	if c := s.Get(); *c != (memreq.Request{}) {
		t.Fatalf("Get after Put not zeroed: %+v", c)
	}
}

func TestCountQueued(t *testing.T) {
	mk := func(app memreq.AppID) *memreq.Request { return &memreq.Request{App: app} }
	queues := [][]*memreq.Request{
		{mk(0), mk(1), mk(0)},
		{},
		{mk(1)},
	}
	got := CountQueued(queues, 2, 3)
	want := []int32{
		2, 0, 0, // app 0: banks 0..2
		1, 0, 1, // app 1
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("counts[%d]=%d, want %d (full: %v)", i, got[i], want[i], got)
		}
	}
}

func TestFRFCFSPickPrefersRowHitThenOldest(t *testing.T) {
	amap := memreq.NewAddrMap(128, 1, 2, 2048)
	// Two banks. Bank 0 has its row open for the row of addr A; bank 1 is
	// closed with an older request.
	addrHit := uint64(0)            // row 0 of bank 0
	addrOld := uint64(2048 * 2 * 4) // some other row
	rowHit := amap.Row(addrHit)
	banks := []FRFCFSBank{
		{Free: true, RowOpen: true, OpenRow: rowHit, Queue: []FRFCFSReq{{App: 0, Addr: addrHit, Seq: 10}}},
		{Free: true, Queue: []FRFCFSReq{{App: 1, Addr: addrOld, Seq: 1}}},
	}
	// Row hit wins over older arrival.
	if b, i := FRFCFSPick(amap, banks, memreq.InvalidApp, memreq.InvalidApp, true, 8); b != 0 || i != 0 {
		t.Fatalf("pick=(%d,%d), want row hit at (0,0)", b, i)
	}
	// With activations forbidden, only the row hit is eligible.
	if b, i := FRFCFSPick(amap, banks, memreq.InvalidApp, memreq.InvalidApp, false, 8); b != 0 || i != 0 {
		t.Fatalf("pick=(%d,%d) with actAllowed=false, want (0,0)", b, i)
	}
	// Priority app preempts the row hit.
	if b, i := FRFCFSPick(amap, banks, 1, memreq.InvalidApp, true, 8); b != 1 || i != 0 {
		t.Fatalf("pick=(%d,%d) with prio=1, want (1,0)", b, i)
	}
	// Restricted to an app with no eligible request: no pick.
	banksClosed := []FRFCFSBank{{Free: true, Queue: []FRFCFSReq{{App: 0, Addr: addrOld, Seq: 1}}}}
	if b, _ := FRFCFSPick(amap, banksClosed, memreq.InvalidApp, 1, true, 8); b != -1 {
		t.Fatalf("pick found a request for an app with none queued (bank %d)", b)
	}
}
