package core

import (
	"testing"

	"dasesim/internal/config"
	"dasesim/internal/kernels"
	"dasesim/internal/sim"
)

// TestDASEOnAloneRun: with a single application on all SMs there is no
// inter-application interference, so every interval estimate must stay very
// close to 1.0 — the model's zero-point.
func TestDASEOnAloneRun(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	cfg := config.Default()
	d := New(Options{})
	for _, ab := range []string{"SB", "SD", "CT", "QR"} {
		p, ok := kernels.ByAbbr(ab)
		if !ok {
			t.Fatalf("kernel %s missing", ab)
		}
		res, err := sim.RunAlone(cfg, p, 150_000, 1)
		if err != nil {
			t.Fatal(err)
		}
		for si := 1; si < len(res.Snapshots); si++ {
			est := d.Estimate(&res.Snapshots[si])[0]
			if est > 1.35 {
				t.Errorf("%s alone, interval %d: DASE estimated %.2f (no interference exists)", ab, si, est)
			}
		}
	}
}

// TestDASEOnAloneRunSubsetSMs: one app on 8 of 16 SMs. The true slowdown vs
// all-SM-alone is the measured IPC ratio; DASE's all-SM scaling (Eqs. 23-25)
// must land near it.
func TestDASEOnAloneRunSubsetSMs(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	cfg := config.Default()
	d := New(Options{})
	for _, ab := range []string{"QR", "CT", "SB"} {
		p, _ := kernels.ByAbbr(ab)
		full, err := sim.RunAlone(cfg, p, 150_000, 1)
		if err != nil {
			t.Fatal(err)
		}
		half, err := sim.RunShared(cfg, []kernels.Profile{p}, []int{8}, 150_000, 1)
		if err != nil {
			t.Fatal(err)
		}
		actual := full.Apps[0].IPC / half.Apps[0].IPC
		est := AverageEstimates(d, half.Snapshots, 1)[0]
		rel := est/actual - 1
		if rel < -0.35 || rel > 0.35 {
			t.Errorf("%s on 8 SMs: actual %.2f, DASE %.2f (off by %.0f%%)", ab, actual, est, rel*100)
		}
	}
}
