package core

// CostItem is one hardware structure of the DASE implementation (Table I).
type CostItem struct {
	Name string
	Bits int
}

// Cost is the per-memory-partition hardware budget of DASE.
type Cost struct {
	Items            []CostItem
	PerPartitionBits int
	// PerSMBits covers the α registers and SM/TB counters held outside the
	// memory partitions.
	PerSMBits int
}

// FractionOfL2 returns the per-partition cost as a fraction of an L2 slice
// of the given byte size (the paper quotes <0.625% of a 64 KB slice).
func (c Cost) FractionOfL2(l2Bytes int) float64 {
	return float64(c.PerPartitionBits) / 8 / float64(l2Bytes)
}

// HardwareCost reproduces the paper's Table I accounting for N concurrent
// applications, a controller with numBanks banks, and an ATD with
// sampledSets sets of the given associativity. Per §4.4, "the slowdown of
// each application is estimated one by one to reduce hardware cost", so the
// ERBMiss/ELLCMiss counters, the ATD, the last-row registers and the
// TimeRequest/BLP counters exist once per partition and are time-multiplexed
// across applications; only the served-request counters are per-app.
func HardwareCost(numApps, numBanks, sampledSets, assoc, numSMs int) Cost {
	items := []CostItem{
		{"ERBMiss/ELLCMiss counters", 2 * 32},
		{"Last access row address registers", numBanks * 16},
		{"Sample ATD", sampledSets * assoc * 32},
		{"Served memory request counters", 32 * numApps},
		{"TimeRequest counters", 32},
		{"BLP/BLPAccess counters", 2 * 32},
	}
	total := 0
	for _, it := range items {
		total += it.Bits
	}
	return Cost{
		Items:            items,
		PerPartitionBits: total,
		PerSMBits:        32 + 32 + 4*32, // α register, interval counter, SM/TB counters
	}
}
