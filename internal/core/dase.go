// Package core implements DASE, the Dynamical Application Slowdown
// Estimation model — the paper's primary contribution (§4). Per estimation
// interval, DASE reads the memory-partition hardware counters and the SM
// stall fractions from an interval snapshot and estimates, for every
// concurrent application, its slowdown relative to running alone on all
// SMs:
//
//   - non-memory-bandwidth-bound (NMBB) apps: interference cycles are
//     decomposed into DRAM bank interference (Eq. 9), row-buffer
//     interference (Eq. 10) and shared-cache interference (Eq. 11),
//     normalised by bank-level parallelism (Eq. 14), discounted by the
//     thread-level-parallelism stall fraction α (Eq. 15), and scaled from
//     the assigned SMs to all SMs with TLP and bandwidth caps (Eqs. 23-25);
//   - memory-bandwidth-bound (MBB) apps: the slowdown is the ratio of the
//     total served requests of all apps to the app's own contention-adjusted
//     served requests (Eqs. 16-18), because a bandwidth-bound app running
//     alone would absorb the whole DRAM throughput;
//   - classification between the two uses Eqs. 19-22.
package core

import (
	"math"

	"dasesim/internal/sim"
)

// Estimator is the common interface of all slowdown estimators (DASE and
// the MISE/ASM baselines): per interval snapshot, one estimated slowdown per
// application, relative to running alone on all SMs.
type Estimator interface {
	Name() string
	Estimate(snap *sim.IntervalSnapshot) []float64
}

// Options tune DASE; the zero value selects the paper's configuration.
type Options struct {
	// AlphaClampThreshold: when α exceeds it, α is treated as 1 (the
	// paper observes this improves accuracy for large α). Default 0.8.
	AlphaClampThreshold float64
	// DisableBLPNormalization skips the Eq. 14 division (ablation).
	DisableBLPNormalization bool
	// DisableAlphaDiscount skips the Eq. 15 TLP discount (ablation).
	DisableAlphaDiscount bool
	// DisableScalingCaps skips the Eq. 24/25 caps on all-SM scaling
	// (ablation).
	DisableScalingCaps bool
	// ForceClass forces every app down one path (ablation): 0 = classify
	// per Eqs. 19-22 (default), 1 = all NMBB, 2 = all MBB.
	ForceClass int
	// LiteralBankInterference uses the paper's literal Eq. 9 approximation
	// (BLP - BLPAccess) for the bank-interference term. The default uses
	// the refined counter — banks occupied by co-runners while this app
	// waits — which excludes self-queueing and is exactly zero when the
	// app runs alone (ablation: compare both).
	LiteralBankInterference bool
	// StaticRequestMax uses the paper's static Eq. 20 Requestmax (peak ×
	// 0.6) in the Eq. 25 bandwidth cap and the MBB slowdown. The default
	// computes a per-application dynamic Requestmax from the app's
	// observed row-miss rate and the activation-rate ceiling — the
	// "dynamically calculating Requestmax based on kernel characteristics"
	// the paper names as an extension (§4.2.3).
	StaticRequestMax bool
	// RowMissPenalty is tRP+tRCD in core cycles (Eq. 10); set from the
	// memory config. Default 36 (the Table II timings).
	RowMissPenalty float64
}

// DASE is the paper's estimator.
type DASE struct {
	opt Options
}

// ForceNMBB / ForceMBB values for Options.ForceClass.
const (
	ClassifyAuto = 0
	ForceNMBB    = 1
	ForceMBB     = 2
)

// New builds a DASE estimator with the given options.
func New(opt Options) *DASE {
	if opt.AlphaClampThreshold == 0 {
		opt.AlphaClampThreshold = 0.8
	}
	if opt.RowMissPenalty == 0 {
		opt.RowMissPenalty = 36
	}
	return &DASE{opt: opt}
}

// Name implements Estimator.
func (d *DASE) Name() string { return "DASE" }

// AppEstimate is the full per-app breakdown, for diagnostics and tests.
type AppEstimate struct {
	Slowdown         float64 // final estimate (all SMs)
	SlowdownAssigned float64 // before all-SM scaling
	MBB              bool
	TimeBank         float64 // Eq. 9
	TimeRow          float64 // Eq. 10
	TimeLLC          float64 // Eq. 11
	TimeInterference float64 // Eq. 14
	Alpha            float64
	RequestShared    float64 // Eq. 17
}

// Estimate implements Estimator.
func (d *DASE) Estimate(snap *sim.IntervalSnapshot) []float64 {
	det := d.EstimateDetailed(snap)
	out := make([]float64, len(det))
	for i := range det {
		out[i] = det[i].Slowdown
	}
	return out
}

// EstimateDetailed returns the full interference breakdown per app.
func (d *DASE) EstimateDetailed(snap *sim.IntervalSnapshot) []AppEstimate {
	return d.EstimateDetailedInto(snap, make([]AppEstimate, 0, len(snap.Apps)))
}

// EstimateDetailedInto is EstimateDetailed writing into caller-provided
// scratch: out is resized to one entry per app (growing only when its
// capacity is insufficient) and returned. With adequate capacity it
// allocates nothing, so online serving paths can reuse one slice across
// requests. The numbers are identical to EstimateDetailed's — it is the
// same computation.
func (d *DASE) EstimateDetailedInto(snap *sim.IntervalSnapshot, out []AppEstimate) []AppEstimate {
	if cap(out) < len(snap.Apps) {
		out = make([]AppEstimate, len(snap.Apps))
	} else {
		out = out[:len(snap.Apps)]
	}
	reqMax := snap.RequestMax()
	totalServed := float64(snap.TotalServed())
	nApps := float64(len(snap.Apps))

	for i := range snap.Apps {
		a := &snap.Apps[i]
		e := &out[i]
		*e = AppEstimate{} // clear any reused entry; the MBB path skips the time fields
		e.Alpha = a.Alpha

		// Eq. 17: requests net of contention-induced extra misses.
		reqShared := float64(a.Served) - a.ELLCMiss
		if reqShared < 1 {
			reqShared = 1
		}
		e.RequestShared = reqShared

		e.MBB = d.classify(a, reqShared, totalServed, reqMax, nApps)

		// Per-application achievable request ceiling over the interval:
		// the paper's static Requestmax, or the dynamic variant derived
		// from the app's own row-miss rate against the activation bound.
		appReqMax := reqMax
		if !d.opt.StaticRequestMax {
			appReqMax = dynamicRequestMax(snap, a)
		}

		if e.MBB {
			// Eqs. 16+18: alone, a bandwidth-bound app would absorb the
			// requests currently served for everyone. With the dynamic
			// Requestmax extension, that is bounded by what the app's own
			// access pattern can draw from the DRAM (the paper's Eq. 18
			// is uncapped).
			alone := totalServed
			if !d.opt.StaticRequestMax && alone > appReqMax {
				alone = appReqMax
			}
			e.SlowdownAssigned = alone / reqShared
			// §4.3: MBB kernels gain nothing from more SMs, so the
			// assigned-SM estimate already is the all-SM estimate.
			e.Slowdown = clampSlowdown(e.SlowdownAssigned)
			continue
		}

		// NMBB path: Eqs. 7-15.
		tShared := float64(snap.IntervalCycles)
		blp := a.BLP
		blpAccess := a.BLPAccess
		if blp < 1 {
			blp = 1
		}
		// Eq. 9: bank-cycles stolen by co-runners, normalised by BLP in
		// Eq. 14 below.
		if d.opt.LiteralBankInterference {
			e.TimeBank = tShared * math.Max(0, blp-blpAccess)
		} else {
			e.TimeBank = tShared * a.BLPBlocked
		}
		e.TimeRow = float64(a.ERBMiss) * d.opt.RowMissPenalty
		if a.Served > 0 {
			avg := float64(a.TimeInBanks) / float64(a.Served)
			e.TimeLLC = a.ELLCMiss * avg
		}
		e.TimeInterference = e.TimeBank + e.TimeRow + e.TimeLLC
		if !d.opt.DisableBLPNormalization {
			e.TimeInterference /= blp
		}
		tAlone := tShared - e.TimeInterference
		if tAlone < tShared*0.05 {
			tAlone = tShared * 0.05
		}
		ratio := tShared / tAlone

		alpha := a.Alpha
		if alpha > d.opt.AlphaClampThreshold {
			alpha = 1
		}
		if d.opt.DisableAlphaDiscount {
			alpha = 1
		}
		e.SlowdownAssigned = 1 - alpha + alpha*ratio

		// Eq. 23: scale from assigned SMs to all SMs.
		sms := a.SMs
		if sms <= 0 {
			sms = 1
		}
		all := e.SlowdownAssigned * float64(snap.NumSMs) / float64(sms)
		if !d.opt.DisableScalingCaps {
			// Eq. 24: thread-level-parallelism cap.
			if a.TBShared > 0 && a.TBSum > 0 {
				tlpCap := e.SlowdownAssigned * float64(a.TBSum) / float64(a.TBShared)
				if tlpCap < all {
					all = tlpCap
				}
			}
			// Eq. 25: memory-bandwidth cap.
			bwCap := appReqMax / reqShared
			if bwCap < all {
				all = bwCap
			}
			// Scaling caps must not push the estimate below the
			// assigned-SM slowdown.
			if all < e.SlowdownAssigned {
				all = e.SlowdownAssigned
			}
		}
		e.Slowdown = clampSlowdown(all)
	}
	return out
}

// classify applies Eqs. 19-22: all three must hold for the MBB class.
func (d *DASE) classify(a *sim.AppInterval, reqShared, totalServed, reqMax, nApps float64) bool {
	switch d.opt.ForceClass {
	case ForceNMBB:
		return false
	case ForceMBB:
		return true
	}
	if totalServed < reqMax { // Eq. 19
		return false
	}
	if reqShared/reqMax < 1/nApps { // Eq. 21
		return false
	}
	alpha := a.Alpha
	if alpha >= 1 {
		return true
	}
	return reqShared/(1-alpha) >= reqMax // Eq. 22
}

// dynamicRequestMax estimates how many requests this application could draw
// from the DRAM over the interval if it ran alone, from its observed
// row-miss rate m: each miss needs an activation, so the line rate is
// bounded by min(bus peak, ACT peak / m).
func dynamicRequestMax(snap *sim.IntervalSnapshot, a *sim.AppInterval) float64 {
	rate := snap.PeakReqPerCyc
	total := a.RowHits + a.RowMisses
	if total > 0 && snap.PeakActPerCyc > 0 {
		m := float64(a.RowMisses) / float64(total)
		if m > 0 {
			if actBound := snap.PeakActPerCyc / m; actBound < rate {
				rate = actBound
			}
		}
	}
	return rate * float64(snap.IntervalCycles) * 0.95
}

func clampSlowdown(s float64) float64 {
	if s < 1 {
		return 1
	}
	if math.IsNaN(s) || math.IsInf(s, 0) {
		return 1
	}
	return s
}

// AverageEstimates averages per-interval estimates over a run (skipping the
// given number of warm-up intervals) to produce the per-app run-level
// estimate compared against the actual slowdown in Figs. 5-8.
func AverageEstimates(est Estimator, snaps []sim.IntervalSnapshot, warmup int) []float64 {
	if len(snaps) == 0 {
		return nil
	}
	n := len(snaps[0].Apps)
	sums := make([]float64, n)
	count := 0
	for i := range snaps {
		if i < warmup {
			continue
		}
		vals := est.Estimate(&snaps[i])
		for j, v := range vals {
			sums[j] += v
		}
		count++
	}
	if count == 0 {
		return AverageEstimates(est, snaps, 0)
	}
	for j := range sums {
		sums[j] /= float64(count)
	}
	return sums
}
