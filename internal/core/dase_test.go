package core

import (
	"math"
	"testing"
	"testing/quick"

	"dasesim/internal/sim"
)

// snap builds a synthetic one-interval snapshot for direct model testing.
func snap(apps ...sim.AppInterval) *sim.IntervalSnapshot {
	return &sim.IntervalSnapshot{
		IntervalCycles: 50_000,
		NumSMs:         16,
		NumMCs:         6,
		PeakReqPerCyc:  1.0,
		PeakActPerCyc:  0.4,
		ReqMaxFactor:   0.6,
		Apps:           apps,
	}
}

// mbbApp is an app that clearly satisfies Eqs. 19-22 when paired with a
// busy co-runner.
func mbbApp(served uint64) sim.AppInterval {
	return sim.AppInterval{
		SMs: 8, Alpha: 0.9, Served: served,
		RowHits: served / 2, RowMisses: served / 2,
		BLP: 60, BLPAccess: 30, BLPBlocked: 10,
		TimeInBanks: served * 30,
		TBSum:       4000, TBShared: 48,
	}
}

func TestMBBClassificationAndSlowdown(t *testing.T) {
	d := New(Options{StaticRequestMax: true})
	// Two heavy apps: total served 40K >= Requestmax 30K; each has >= half
	// of Requestmax; alpha high. Both MBB.
	s := snap(mbbApp(25_000), mbbApp(15_000))
	det := d.EstimateDetailed(s)
	if !det[0].MBB || !det[1].MBB {
		t.Fatalf("both apps should be MBB: %+v %+v", det[0], det[1])
	}
	// Eq. 16/18: slowdown = total/own.
	if want := 40.0 / 25.0; math.Abs(det[0].Slowdown-want) > 1e-9 {
		t.Fatalf("app0 slowdown %v, want %v", det[0].Slowdown, want)
	}
	if want := 40.0 / 15.0; math.Abs(det[1].Slowdown-want) > 1e-9 {
		t.Fatalf("app1 slowdown %v, want %v", det[1].Slowdown, want)
	}
}

func TestMBBRequiresAllThreeConditions(t *testing.T) {
	d := New(Options{StaticRequestMax: true})
	// Eq. 19 fails: total served below Requestmax.
	s := snap(mbbApp(10_000), mbbApp(10_000))
	det := d.EstimateDetailed(s)
	if det[0].MBB {
		t.Fatal("Eq. 19 must gate MBB (total < Requestmax)")
	}
	// Eq. 21 fails for the starved app: its share is below 1/CountApp.
	s = snap(mbbApp(35_000), mbbApp(5_000))
	det = d.EstimateDetailed(s)
	if det[1].MBB {
		t.Fatal("Eq. 21 must exclude the starved app from the MBB class")
	}
	// Eq. 22 fails: low alpha means TLP hides the memory time.
	lowAlpha := mbbApp(20_000)
	lowAlpha.Alpha = 0.05
	s = snap(lowAlpha, mbbApp(20_000))
	det = d.EstimateDetailed(s)
	if det[0].MBB {
		t.Fatal("Eq. 22 must exclude low-alpha apps")
	}
}

func TestForceClassAblation(t *testing.T) {
	s := snap(mbbApp(25_000), mbbApp(15_000))
	if det := New(Options{ForceClass: ForceNMBB, StaticRequestMax: true}).EstimateDetailed(s); det[0].MBB {
		t.Fatal("ForceNMBB ignored")
	}
	if det := New(Options{ForceClass: ForceMBB, StaticRequestMax: true}).EstimateDetailed(s); !det[0].MBB {
		t.Fatal("ForceMBB ignored")
	}
}

// nmbbApp is a lightly loaded app on half the SMs.
func nmbbApp() sim.AppInterval {
	return sim.AppInterval{
		SMs: 8, Alpha: 0.4, Served: 5_000,
		RowHits: 4_000, RowMisses: 1_000,
		BLP: 40, BLPAccess: 20, BLPBlocked: 8,
		TimeInBanks: 5_000 * 30,
		ERBMiss:     100, ELLCMiss: 50,
		TBSum: 4000, TBShared: 48,
	}
}

func TestNMBBInterferenceDecomposition(t *testing.T) {
	d := New(Options{})
	s := snap(nmbbApp(), mbbApp(20_000))
	det := d.EstimateDetailed(s)
	e := det[0]
	if e.MBB {
		t.Fatal("light app must be NMBB")
	}
	// Eq. 9 (refined): Timeshared * BLPBlocked.
	if want := 50_000.0 * 8; e.TimeBank != want {
		t.Fatalf("TimeBank = %v, want %v", e.TimeBank, want)
	}
	// Eq. 10: ERBMiss * (tRP + tRCD) with the default 36-cycle penalty.
	if want := 100.0 * 36; e.TimeRow != want {
		t.Fatalf("TimeRow = %v, want %v", e.TimeRow, want)
	}
	// Eq. 11-12: ELLCMiss * TimeInBanks/Served.
	if want := 50.0 * 30; e.TimeLLC != want {
		t.Fatalf("TimeLLC = %v, want %v", e.TimeLLC, want)
	}
	// Eq. 14: normalised by BLP.
	if want := (e.TimeBank + e.TimeRow + e.TimeLLC) / 40; math.Abs(e.TimeInterference-want) > 1e-9 {
		t.Fatalf("TimeInterference = %v, want %v", e.TimeInterference, want)
	}
	// Eq. 15: alpha-weighted.
	ratio := 50_000.0 / (50_000.0 - e.TimeInterference)
	if want := 1 - 0.4 + 0.4*ratio; math.Abs(e.SlowdownAssigned-want) > 1e-9 {
		t.Fatalf("SlowdownAssigned = %v, want %v", e.SlowdownAssigned, want)
	}
	// Eq. 23: doubled for 8 of 16 SMs (caps not binding here).
	if want := e.SlowdownAssigned * 2; math.Abs(e.Slowdown-want) > 1e-9 {
		t.Fatalf("Slowdown = %v, want %v (Eq. 23)", e.Slowdown, want)
	}
}

func TestLiteralBankInterferenceAblation(t *testing.T) {
	s := snap(nmbbApp(), mbbApp(20_000))
	lit := New(Options{LiteralBankInterference: true}).EstimateDetailed(s)
	// Eq. 9 literal: Timeshared * (BLP - BLPAccess) = 50_000 * 20.
	if want := 50_000.0 * 20; lit[0].TimeBank != want {
		t.Fatalf("literal TimeBank = %v, want %v", lit[0].TimeBank, want)
	}
}

func TestTLPCapEq24(t *testing.T) {
	d := New(Options{})
	a := nmbbApp()
	a.TBSum = 48 // every remaining block is already resident
	a.TBShared = 48
	s := snap(a, mbbApp(20_000))
	det := d.EstimateDetailed(s)
	// With TBsum == TBshared, more SMs cannot help: the all-SM slowdown
	// collapses to the assigned-SM slowdown.
	if math.Abs(det[0].Slowdown-det[0].SlowdownAssigned) > 1e-9 {
		t.Fatalf("Eq. 24 cap not applied: %v vs %v", det[0].Slowdown, det[0].SlowdownAssigned)
	}
}

func TestBWCapEq25(t *testing.T) {
	d := New(Options{StaticRequestMax: true})
	a := nmbbApp()
	a.Served = 20_000 // large demand: Requestmax/reqShared caps the scaling
	a.ELLCMiss = 0
	a.TimeInBanks = 20_000 * 30
	a.Alpha = 0.4
	s := snap(a, mbbApp(20_000))
	det := d.EstimateDetailed(s)
	bwCap := 30_000.0 / 20_000.0
	if det[0].Slowdown > det[0].SlowdownAssigned+1e-9 && det[0].Slowdown > bwCap+1e-9 {
		t.Fatalf("Eq. 25 cap exceeded: slowdown %v, cap %v", det[0].Slowdown, bwCap)
	}
}

func TestAlphaClamp(t *testing.T) {
	a := nmbbApp()
	a.Alpha = 0.95 // above the clamp threshold -> treated as 1
	s := snap(a, mbbApp(20_000))
	det := New(Options{}).EstimateDetailed(s)
	ratio := 50_000.0 / (50_000.0 - det[0].TimeInterference)
	if math.Abs(det[0].SlowdownAssigned-ratio) > 1e-9 {
		t.Fatalf("alpha clamp: assigned %v, want pure ratio %v", det[0].SlowdownAssigned, ratio)
	}
}

func TestDynamicRequestMax(t *testing.T) {
	s := snap(nmbbApp())
	a := &s.Apps[0]
	// 20% miss rate: activation bound 0.4/0.2 = 2 > bus peak 1 -> bus-bound.
	got := dynamicRequestMax(s, a)
	want := 1.0 * 50_000 * 0.95
	if math.Abs(got-want) > 1e-6 {
		t.Fatalf("dynamicRequestMax = %v, want %v", got, want)
	}
	// All-miss app: activation-bound at 0.4 lines/cycle.
	a.RowHits, a.RowMisses = 0, 1000
	got = dynamicRequestMax(s, a)
	want = 0.4 * 50_000 * 0.95
	if math.Abs(got-want) > 1e-6 {
		t.Fatalf("all-miss dynamicRequestMax = %v, want %v", got, want)
	}
}

func TestSlowdownNeverBelowOneProperty(t *testing.T) {
	d := New(Options{})
	f := func(served uint32, alpha8 uint8, blocked uint8, sms uint8) bool {
		a := sim.AppInterval{
			SMs:        int(sms%16) + 1,
			Alpha:      float64(alpha8) / 255,
			Served:     uint64(served % 100_000),
			RowHits:    uint64(served % 7_000),
			RowMisses:  uint64(served % 11_000),
			BLP:        40,
			BLPAccess:  20,
			BLPBlocked: float64(blocked % 40),
			TBSum:      100, TBShared: 10,
			TimeInBanks: uint64(served%100_000) * 30,
		}
		out := d.Estimate(snap(a, mbbApp(20_000)))
		for _, v := range out {
			if v < 1 || math.IsNaN(v) || math.IsInf(v, 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestAverageEstimates(t *testing.T) {
	d := New(Options{StaticRequestMax: true})
	s1 := snap(mbbApp(25_000), mbbApp(15_000))
	s2 := snap(mbbApp(15_000), mbbApp(25_000))
	avg := AverageEstimates(d, []sim.IntervalSnapshot{*s1, *s2}, 0)
	want0 := (40.0/25 + 40.0/15) / 2
	if math.Abs(avg[0]-want0) > 1e-9 {
		t.Fatalf("average = %v, want %v", avg[0], want0)
	}
	// Warmup skips the first snapshot.
	avg = AverageEstimates(d, []sim.IntervalSnapshot{*s1, *s2}, 1)
	if math.Abs(avg[0]-40.0/15) > 1e-9 {
		t.Fatalf("warmup average = %v, want %v", avg[0], 40.0/15)
	}
	// All snapshots warmed up: falls back to using everything.
	avg = AverageEstimates(d, []sim.IntervalSnapshot{*s1}, 5)
	if math.Abs(avg[0]-40.0/25) > 1e-9 {
		t.Fatalf("fallback average = %v", avg[0])
	}
	if AverageEstimates(d, nil, 0) != nil {
		t.Fatal("empty snapshots should return nil")
	}
}

func TestHardwareCostMatchesPaper(t *testing.T) {
	c := HardwareCost(4, 16, 8, 8, 16)
	// The paper quotes < 0.4 KB per partition for N = 4 and < 0.625% of a
	// 64 KB L2 slice.
	if kb := float64(c.PerPartitionBits) / 8 / 1024; kb >= 0.4 {
		t.Fatalf("per-partition cost %.3f KB, paper says < 0.4 KB", kb)
	}
	if frac := c.FractionOfL2(64 * 1024); frac >= 0.00625 {
		t.Fatalf("L2 fraction %.4f, paper says < 0.625%%", frac)
	}
	if len(c.Items) == 0 || c.PerSMBits == 0 {
		t.Fatal("cost breakdown incomplete")
	}
}

func TestName(t *testing.T) {
	if New(Options{}).Name() != "DASE" {
		t.Fatal("estimator name")
	}
}
