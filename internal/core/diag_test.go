package core

import (
	"testing"

	"dasesim/internal/config"
	"dasesim/internal/kernels"
	"dasesim/internal/sim"
)

// TestDiagnosticBreakdown dumps the full DASE interference decomposition for
// a streamer+victim pair; run with -v when tuning the model. It asserts only
// the directional invariant: the victim's estimated slowdown exceeds the
// streamer's.
func TestDiagnosticBreakdown(t *testing.T) {
	if testing.Short() {
		t.Skip("slow diagnostic")
	}
	cfg := config.Default()
	va, _ := kernels.ByAbbr("VA")
	ct, _ := kernels.ByAbbr("CT")
	g, err := sim.New(cfg, []kernels.Profile{va, ct}, []int{8, 8}, 1)
	if err != nil {
		t.Fatal(err)
	}
	g.Run(150_000)
	res := g.FinishRun()
	d := New(Options{})
	for si, snap := range res.Snapshots {
		if si == 0 {
			continue
		}
		det := d.EstimateDetailed(&snap)
		for i, e := range det {
			a := snap.Apps[i]
			t.Logf("int%d app%d(%s): est=%.2f assigned=%.2f mbb=%v alpha=%.2f tBK=%.0f tRB=%.0f tLLC=%.0f tIntf=%.0f blp=%.1f blpAcc=%.1f blpBlk=%.1f served=%d erb=%d ellc=%.0f",
				si, i, res.Apps[i].Abbr, e.Slowdown, e.SlowdownAssigned, e.MBB, e.Alpha,
				e.TimeBank, e.TimeRow, e.TimeLLC, e.TimeInterference,
				a.BLP, a.BLPAccess, a.BLPBlocked, a.Served, a.ERBMiss, a.ELLCMiss)
		}
		if det[1].Slowdown <= det[0].Slowdown {
			t.Errorf("interval %d: victim CT estimate %.2f not above streamer VA %.2f",
				si, det[1].Slowdown, det[0].Slowdown)
		}
	}
}
