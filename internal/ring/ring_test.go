package ring

import (
	"math/rand"
	"testing"
)

// TestBufferAgainstSlice mirrors a seeded churn of every operation into a
// plain slice, requiring identical observable state throughout — including
// across growth and wrap-around.
func TestBufferAgainstSlice(t *testing.T) {
	b := New[int](4) // deliberately small so growth happens often
	var ref []int
	rng := rand.New(rand.NewSource(7))
	next := 0

	for step := 0; step < 100_000; step++ {
		switch op := rng.Intn(5); {
		case op <= 1: // push
			b.PushBack(next)
			ref = append(ref, next)
			next++
		case op == 2 && len(ref) > 0: // pop
			got, want := b.PopFront(), ref[0]
			ref = ref[1:]
			if got != want {
				t.Fatalf("step %d: PopFront = %d, want %d", step, got, want)
			}
		case op == 3 && len(ref) > 0: // remove near head
			i := rng.Intn(min(4, len(ref)))
			got, want := b.RemoveAt(i), ref[i]
			ref = append(ref[:i], ref[i+1:]...)
			if got != want {
				t.Fatalf("step %d: RemoveAt(%d) = %d, want %d", step, i, got, want)
			}
		case op == 4 && len(ref) > 0: // random read
			i := rng.Intn(len(ref))
			if got := b.At(i); got != ref[i] {
				t.Fatalf("step %d: At(%d) = %d, want %d", step, i, got, ref[i])
			}
		}
		if b.Len() != len(ref) {
			t.Fatalf("step %d: Len = %d, want %d", step, b.Len(), len(ref))
		}
		if len(ref) > 0 && b.Front() != ref[0] {
			t.Fatalf("step %d: Front = %d, want %d", step, b.Front(), ref[0])
		}
	}
}

func TestBufferReset(t *testing.T) {
	b := New[*int](8)
	x := 1
	for i := 0; i < 5; i++ {
		b.PushBack(&x)
	}
	b.Reset()
	if b.Len() != 0 {
		t.Fatalf("Len after Reset = %d", b.Len())
	}
	// All slots must have been zeroed (no retained pointers).
	for i := range b.buf {
		if b.buf[i] != nil {
			t.Fatalf("slot %d retains a pointer after Reset", i)
		}
	}
}

func TestBufferMinCapacity(t *testing.T) {
	b := New[int](0)
	for i := 0; i < 100; i++ {
		b.PushBack(i)
	}
	for i := 0; i < 100; i++ {
		if got := b.PopFront(); got != i {
			t.Fatalf("PopFront = %d, want %d", got, i)
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
