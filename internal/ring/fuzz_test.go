package ring

import (
	"testing"

	"dasesim/internal/refmodel"
)

// FuzzRing drives a ring.Buffer and the slice-based refmodel.FIFO it replaced
// with one operation stream decoded from the fuzz input, comparing every
// return value and the full contents after each step. The ring starts at the
// minimum capacity so growth (the only non-O(1) path) is exercised early.
//
// Byte stream: each operation consumes one opcode byte and, for PushBack /
// At / RemoveAt, one operand byte.
func FuzzRing(f *testing.F) {
	f.Add([]byte("0a0b0c0d0e0f0g0h0i1201341"))         // grow past 8, pops, At, RemoveAt
	f.Add([]byte("0a0b50c0d12"))                       // reset mid-stream
	f.Add([]byte("0w0x0y0z40341414040404040404"))      // RemoveAt near tail, wraparound pops
	f.Add([]byte("000102030405060708090a0b0c0d0e0f5")) // fill, then reset
	f.Fuzz(func(t *testing.T, data []byte) {
		r := New[uint16](1)
		var ref refmodel.FIFO[uint16]
		var pushed uint16
		for i := 0; i < len(data); i++ {
			switch data[i] % 6 {
			case 0: // PushBack
				if i+1 >= len(data) {
					return
				}
				i++
				pushed++
				v := uint16(data[i])<<8 | pushed // distinct-ish values
				r.PushBack(v)
				ref.PushBack(v)
			case 1: // PopFront
				if ref.Empty() {
					if !r.Empty() {
						t.Fatalf("ring has %d elements, reference empty", r.Len())
					}
					continue
				}
				got, want := r.PopFront(), ref.PopFront()
				if got != want {
					t.Fatalf("PopFront: ring %d, reference %d", got, want)
				}
			case 2: // Front
				if ref.Empty() {
					continue
				}
				if got, want := r.Front(), ref.Front(); got != want {
					t.Fatalf("Front: ring %d, reference %d", got, want)
				}
			case 3: // At
				if i+1 >= len(data) || ref.Empty() {
					continue
				}
				i++
				k := int(data[i]) % ref.Len()
				if got, want := r.At(k), ref.At(k); got != want {
					t.Fatalf("At(%d): ring %d, reference %d", k, got, want)
				}
			case 4: // RemoveAt
				if i+1 >= len(data) || ref.Empty() {
					continue
				}
				i++
				k := int(data[i]) % ref.Len()
				got, want := r.RemoveAt(k), ref.RemoveAt(k)
				if got != want {
					t.Fatalf("RemoveAt(%d): ring %d, reference %d", k, got, want)
				}
			case 5: // Reset
				r.Reset()
				ref.Reset()
			}
			if r.Len() != ref.Len() {
				t.Fatalf("length diverged: ring %d, reference %d", r.Len(), ref.Len())
			}
			for k := 0; k < ref.Len(); k++ {
				if r.At(k) != ref.At(k) {
					t.Fatalf("contents diverged at %d: ring %d, reference %d", k, r.At(k), ref.At(k))
				}
			}
			if err := r.CheckInvariants(func(v uint16) bool { return v == 0 }); err != nil {
				t.Fatal(err)
			}
		}
		// Drain and compare the survivors.
		for !ref.Empty() {
			if got, want := r.PopFront(), ref.PopFront(); got != want {
				t.Fatalf("drain: ring %d, reference %d", got, want)
			}
		}
		if !r.Empty() {
			t.Fatalf("ring kept %d elements past the reference", r.Len())
		}
	})
}
