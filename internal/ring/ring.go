// Package ring provides the power-of-two ring buffer used on the cycle
// engine's hot paths: SM outboxes and runnable queues, partition reply
// queues, and the interconnect's per-port FIFOs. Compared with the
// slice-shift queues it replaces (copy(q, q[1:]) per pop, append(q[:i],
// q[i+1:]...) per mid-delete), every operation is O(1) — except the bounded
// prefix shift of RemoveAt — and the backing array is reused forever, so
// steady-state queue traffic allocates nothing.
package ring

import "fmt"

// Buffer is a FIFO ring. The zero value is not usable; construct with New.
// Buffers grow by doubling when full, so Push never fails; sizing the initial
// capacity to the queue's structural bound makes growth a cold-path event
// that at most happens during warm-up.
type Buffer[T any] struct {
	buf  []T
	head int
	n    int
}

// New returns a ring with capacity rounded up to a power of two (minimum 8).
func New[T any](capacity int) *Buffer[T] {
	size := 8
	for size < capacity {
		size <<= 1
	}
	return &Buffer[T]{buf: make([]T, size)}
}

// Len returns the number of buffered elements.
func (b *Buffer[T]) Len() int { return b.n }

// Empty reports whether the buffer holds no elements.
func (b *Buffer[T]) Empty() bool { return b.n == 0 }

// PushBack appends v at the tail, growing the backing array if needed.
func (b *Buffer[T]) PushBack(v T) {
	if b.n == len(b.buf) {
		b.grow()
	}
	b.buf[(b.head+b.n)&(len(b.buf)-1)] = v
	b.n++
}

// PopFront removes and returns the head element. The vacated slot is zeroed
// so the ring never retains pointers to recycled objects.
func (b *Buffer[T]) PopFront() T {
	if b.n == 0 {
		panic("ring: PopFront on empty buffer")
	}
	var zero T
	v := b.buf[b.head]
	b.buf[b.head] = zero
	b.head = (b.head + 1) & (len(b.buf) - 1)
	b.n--
	return v
}

// Front returns the head element without removing it.
func (b *Buffer[T]) Front() T {
	if b.n == 0 {
		panic("ring: Front on empty buffer")
	}
	return b.buf[b.head]
}

// At returns the i-th element from the front (0 = head).
func (b *Buffer[T]) At(i int) T {
	if i < 0 || i >= b.n {
		panic("ring: At out of range")
	}
	return b.buf[(b.head+i)&(len(b.buf)-1)]
}

// RemoveAt removes and returns the i-th element from the front, preserving
// the relative order of the remaining elements. It shifts the i elements in
// front of it one slot toward the tail and advances the head, so the cost is
// O(i) — callers remove near the head (the engine's reply picker looks at
// most 4 deep).
func (b *Buffer[T]) RemoveAt(i int) T {
	if i < 0 || i >= b.n {
		panic("ring: RemoveAt out of range")
	}
	mask := len(b.buf) - 1
	pos := (b.head + i) & mask
	v := b.buf[pos]
	for j := i; j > 0; j-- {
		dst := (b.head + j) & mask
		src := (b.head + j - 1) & mask
		b.buf[dst] = b.buf[src]
	}
	var zero T
	b.buf[b.head] = zero
	b.head = (b.head + 1) & mask
	b.n--
	return v
}

// Do calls fn for every buffered element, front to back, without removing
// anything. The invariant checker uses it to walk in-flight requests.
func (b *Buffer[T]) Do(fn func(T)) {
	mask := len(b.buf) - 1
	for i := 0; i < b.n; i++ {
		fn(b.buf[(b.head+i)&mask])
	}
}

// CheckInvariants verifies the structural promises of the ring: the element
// count fits the backing array, and every unoccupied slot holds the zero
// value (the "never retains pointers to recycled objects" contract of
// PopFront/RemoveAt/Reset). isZero reports whether a slot value is zero; it
// is a parameter because T is not guaranteed comparable.
func (b *Buffer[T]) CheckInvariants(isZero func(T) bool) error {
	if b.n < 0 || b.n > len(b.buf) {
		return fmt.Errorf("ring: count %d outside backing array of %d", b.n, len(b.buf))
	}
	if len(b.buf)&(len(b.buf)-1) != 0 {
		return fmt.Errorf("ring: backing array length %d not a power of two", len(b.buf))
	}
	mask := len(b.buf) - 1
	for i := b.n; i < len(b.buf); i++ {
		if pos := (b.head + i) & mask; !isZero(b.buf[pos]) {
			return fmt.Errorf("ring: unused slot %d (head=%d n=%d) not zeroed", pos, b.head, b.n)
		}
	}
	return nil
}

// Reset discards all elements, zeroing the occupied slots.
func (b *Buffer[T]) Reset() {
	var zero T
	mask := len(b.buf) - 1
	for i := 0; i < b.n; i++ {
		b.buf[(b.head+i)&mask] = zero
	}
	b.head = 0
	b.n = 0
}

// grow doubles the backing array, linearising the elements at offset 0.
func (b *Buffer[T]) grow() {
	nbuf := make([]T, 2*len(b.buf))
	mask := len(b.buf) - 1
	for i := 0; i < b.n; i++ {
		nbuf[i] = b.buf[(b.head+i)&mask]
	}
	b.buf = nbuf
	b.head = 0
}
