package estimate

import (
	"fmt"
	"strconv"
	"unsafe"
)

// The wire codec is hand-rolled rather than encoding/json for one reason:
// the serve hot path must not allocate. encoding/json allocates per Decode
// (scanner state, field lookup, boxed values); this decoder parses the known
// flat request schema directly into caller-owned structs, and the encoder
// appends into a caller-owned buffer with strconv. Floats are emitted in
// shortest round-trip form and parsed with strconv.ParseFloat, so a value
// survives encode→decode bit-exactly — the property the byte-identical
// cross-check test leans on. Unknown fields are skipped (forward
// compatibility); only object keys must be escape-free, skipped string
// values may contain any escapes.

// RequestError describes a request the estimation service refused: JSON the
// decoder could not parse (KindDecode), or well-formed JSON carrying values
// the validator rejected (KindInvalid). Handlers map both to HTTP 400; the
// NDJSON stream endpoint terminates the stream on KindDecode — after a
// malformed line the framing can no longer be trusted — and keeps serving
// after KindInvalid.
type RequestError struct {
	Kind string // KindDecode | KindInvalid
	Msg  string
}

// RequestError kinds.
const (
	KindDecode  = "decode"
	KindInvalid = "invalid"
)

// Error implements error.
func (e *RequestError) Error() string { return e.Msg }

// decodeErrf and invalidErrf build RequestErrors; they run only on rejected
// requests, so their allocations never touch the steady-state path.
func decodeErrf(format string, args ...any) *RequestError {
	return &RequestError{Kind: KindDecode, Msg: fmt.Sprintf(format, args...)}
}

func invalidErrf(format string, args ...any) *RequestError {
	return &RequestError{Kind: KindInvalid, Msg: fmt.Sprintf(format, args...)}
}

// bview returns a string view of b without copying. The view is passed only
// to strconv parsers, which do not retain their argument.
func bview(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	return unsafe.String(unsafe.SliceData(b), len(b))
}

// decoder is a single-pass cursor over one request body.
type decoder struct {
	data []byte
	pos  int
}

func (d *decoder) skipWS() {
	for d.pos < len(d.data) {
		switch d.data[d.pos] {
		case ' ', '\t', '\r', '\n':
			d.pos++
		default:
			return
		}
	}
}

// peek returns the next non-whitespace byte without consuming it, or 0 at
// end of input.
func (d *decoder) peek() byte {
	d.skipWS()
	if d.pos >= len(d.data) {
		return 0
	}
	return d.data[d.pos]
}

func (d *decoder) expect(c byte) *RequestError {
	d.skipWS()
	if d.pos >= len(d.data) || d.data[d.pos] != c {
		return decodeErrf("expected %q at offset %d", c, d.pos)
	}
	d.pos++
	return nil
}

// key parses an object key. Keys must be escape-free — every key in the
// schema is plain ASCII, and unknown keys are only compared, never unquoted.
func (d *decoder) key() ([]byte, *RequestError) {
	if err := d.expect('"'); err != nil {
		return nil, err
	}
	start := d.pos
	for d.pos < len(d.data) {
		switch c := d.data[d.pos]; {
		case c == '"':
			k := d.data[start:d.pos]
			d.pos++
			return k, nil
		case c == '\\':
			return nil, decodeErrf("escaped object keys are not supported (offset %d)", d.pos)
		case c < 0x20:
			return nil, decodeErrf("control character in object key at offset %d", d.pos)
		default:
			d.pos++
		}
	}
	return nil, decodeErrf("unterminated object key")
}

// numberSpan consumes the maximal run of number characters.
func (d *decoder) numberSpan() ([]byte, *RequestError) {
	d.skipWS()
	start := d.pos
	for d.pos < len(d.data) {
		c := d.data[d.pos]
		if (c >= '0' && c <= '9') || c == '-' || c == '+' || c == '.' || c == 'e' || c == 'E' {
			d.pos++
			continue
		}
		break
	}
	if d.pos == start {
		return nil, decodeErrf("expected a number at offset %d", start)
	}
	return d.data[start:d.pos], nil
}

func (d *decoder) float(field string) (float64, *RequestError) {
	span, err := d.numberSpan()
	if err != nil {
		return 0, err
	}
	v, perr := strconv.ParseFloat(bview(span), 64)
	if perr != nil {
		return 0, decodeErrf("field %q: bad number %q", field, span)
	}
	return v, nil
}

func (d *decoder) uint(field string) (uint64, *RequestError) {
	span, err := d.numberSpan()
	if err != nil {
		return 0, err
	}
	v, perr := strconv.ParseUint(bview(span), 10, 64)
	if perr != nil {
		return 0, decodeErrf("field %q: bad unsigned integer %q", field, span)
	}
	return v, nil
}

func (d *decoder) int(field string) (int, *RequestError) {
	span, err := d.numberSpan()
	if err != nil {
		return 0, err
	}
	v, perr := strconv.ParseInt(bview(span), 10, 64)
	if perr != nil {
		return 0, decodeErrf("field %q: bad integer %q", field, span)
	}
	return int(v), nil
}

// skipString consumes a string value, escapes included.
func (d *decoder) skipString() *RequestError {
	if err := d.expect('"'); err != nil {
		return err
	}
	for d.pos < len(d.data) {
		switch d.data[d.pos] {
		case '"':
			d.pos++
			return nil
		case '\\':
			d.pos += 2
		default:
			d.pos++
		}
	}
	return decodeErrf("unterminated string")
}

// skipLiteral consumes true/false/null.
func (d *decoder) skipLiteral(lit string) *RequestError {
	if d.pos+len(lit) > len(d.data) || bview(d.data[d.pos:d.pos+len(lit)]) != lit {
		return decodeErrf("bad literal at offset %d", d.pos)
	}
	d.pos += len(lit)
	return nil
}

const maxSkipDepth = 16

// skipValue consumes any JSON value — the escape hatch for unknown fields.
func (d *decoder) skipValue(depth int) *RequestError {
	if depth > maxSkipDepth {
		return decodeErrf("value nested deeper than %d levels", maxSkipDepth)
	}
	switch d.peek() {
	case '"':
		return d.skipString()
	case 't':
		return d.skipLiteral("true")
	case 'f':
		return d.skipLiteral("false")
	case 'n':
		return d.skipLiteral("null")
	case '{':
		d.pos++
		if d.peek() == '}' {
			d.pos++
			return nil
		}
		for {
			if err := d.skipString(); err != nil { // key, escapes allowed here
				return err
			}
			if err := d.expect(':'); err != nil {
				return err
			}
			if err := d.skipValue(depth + 1); err != nil {
				return err
			}
			switch d.peek() {
			case ',':
				d.pos++
				d.skipWS()
			case '}':
				d.pos++
				return nil
			default:
				return decodeErrf("expected ',' or '}' at offset %d", d.pos)
			}
		}
	case '[':
		d.pos++
		if d.peek() == ']' {
			d.pos++
			return nil
		}
		for {
			if err := d.skipValue(depth + 1); err != nil {
				return err
			}
			switch d.peek() {
			case ',':
				d.pos++
			case ']':
				d.pos++
				return nil
			default:
				return decodeErrf("expected ',' or ']' at offset %d", d.pos)
			}
		}
	case 0:
		return decodeErrf("unexpected end of input")
	default:
		_, err := d.numberSpan()
		return err
	}
}

// parseApp fills one AppCounters from the current object.
func (d *decoder) parseApp(a *AppCounters) *RequestError {
	if err := d.expect('{'); err != nil {
		return err
	}
	if d.peek() == '}' {
		d.pos++
		return nil
	}
	for {
		k, err := d.key()
		if err != nil {
			return err
		}
		if err := d.expect(':'); err != nil {
			return err
		}
		switch bview(k) {
		case "sms":
			a.SMs, err = d.int("sms")
		case "alpha":
			a.Alpha, err = d.float("alpha")
		case "served":
			a.Served, err = d.uint("served")
		case "time_in_banks":
			a.TimeInBanks, err = d.uint("time_in_banks")
		case "erb_miss":
			a.ERBMiss, err = d.uint("erb_miss")
		case "ellc_miss":
			a.ELLCMiss, err = d.float("ellc_miss")
		case "row_hits":
			a.RowHits, err = d.uint("row_hits")
		case "row_misses":
			a.RowMisses, err = d.uint("row_misses")
		case "blp":
			a.BLP, err = d.float("blp")
		case "blp_access":
			a.BLPAccess, err = d.float("blp_access")
		case "blp_blocked":
			a.BLPBlocked, err = d.float("blp_blocked")
		case "tb_sum":
			a.TBSum, err = d.int("tb_sum")
		case "tb_shared":
			a.TBShared, err = d.int("tb_shared")
		default:
			err = d.skipValue(0)
		}
		if err != nil {
			return err
		}
		switch d.peek() {
		case ',':
			d.pos++
		case '}':
			d.pos++
			return nil
		default:
			return decodeErrf("expected ',' or '}' at offset %d", d.pos)
		}
	}
}

// parseRequest fills one Request from the current object, reusing the
// capacity of req.Apps.
func (d *decoder) parseRequest(req *Request, maxApps int) *RequestError {
	if err := d.expect('{'); err != nil {
		return err
	}
	if d.peek() == '}' {
		d.pos++
		return nil
	}
	for {
		k, err := d.key()
		if err != nil {
			return err
		}
		if err := d.expect(':'); err != nil {
			return err
		}
		switch bview(k) {
		case "id":
			req.ID, err = d.uint("id")
		case "interval_cycles":
			req.IntervalCycles, err = d.uint("interval_cycles")
		case "num_sms":
			req.NumSMs, err = d.int("num_sms")
		case "peak_req_per_cyc":
			req.PeakReqPerCyc, err = d.float("peak_req_per_cyc")
		case "peak_act_per_cyc":
			req.PeakActPerCyc, err = d.float("peak_act_per_cyc")
		case "req_max_factor":
			req.ReqMaxFactor, err = d.float("req_max_factor")
		case "min_sms":
			req.MinSMs, err = d.int("min_sms")
		case "apps":
			err = d.parseApps(req, maxApps)
		default:
			err = d.skipValue(0)
		}
		if err != nil {
			return err
		}
		switch d.peek() {
		case ',':
			d.pos++
		case '}':
			d.pos++
			return nil
		default:
			return decodeErrf("expected ',' or '}' at offset %d", d.pos)
		}
	}
}

func (d *decoder) parseApps(req *Request, maxApps int) *RequestError {
	if err := d.expect('['); err != nil {
		return err
	}
	if d.peek() == ']' {
		d.pos++
		return nil
	}
	for {
		if len(req.Apps) >= maxApps {
			return invalidErrf("more than %d apps in one snapshot", maxApps)
		}
		req.Apps = append(req.Apps, AppCounters{})
		if err := d.parseApp(&req.Apps[len(req.Apps)-1]); err != nil {
			return err
		}
		switch d.peek() {
		case ',':
			d.pos++
		case ']':
			d.pos++
			return nil
		default:
			return decodeErrf("expected ',' or ']' at offset %d", d.pos)
		}
	}
}

// growRequest extends reqs by one zeroed entry, preserving the Apps capacity
// of recycled entries so steady-state decoding allocates nothing.
func growRequest(reqs []Request) []Request {
	if len(reqs) < cap(reqs) {
		reqs = reqs[:len(reqs)+1]
		r := &reqs[len(reqs)-1]
		apps := r.Apps[:0]
		*r = Request{}
		r.Apps = apps
		return reqs
	}
	return append(reqs, Request{})
}

// decodeRequests parses a body holding either one request object or a JSON
// array batch. It appends into reqs (pass a recycled slice truncated to
// zero) and reports whether the body was a single object, so the encoder
// can mirror the framing.
func decodeRequests(data []byte, reqs []Request, maxBatch, maxApps int) ([]Request, bool, *RequestError) {
	d := decoder{data: data}
	switch d.peek() {
	case '{':
		reqs = growRequest(reqs)
		if err := d.parseRequest(&reqs[len(reqs)-1], maxApps); err != nil {
			return reqs, true, err
		}
		if d.peek() != 0 {
			return reqs, true, decodeErrf("trailing data at offset %d", d.pos)
		}
		return reqs, true, nil
	case '[':
		d.pos++
		if d.peek() == ']' {
			return reqs, false, invalidErrf("empty batch")
		}
		for {
			if len(reqs) >= maxBatch {
				return reqs, false, invalidErrf("batch larger than %d snapshots", maxBatch)
			}
			reqs = growRequest(reqs)
			if err := d.parseRequest(&reqs[len(reqs)-1], maxApps); err != nil {
				return reqs, false, err
			}
			switch d.peek() {
			case ',':
				d.pos++
			case ']':
				d.pos++
				if d.peek() != 0 {
					return reqs, false, decodeErrf("trailing data at offset %d", d.pos)
				}
				return reqs, false, nil
			default:
				return reqs, false, decodeErrf("expected ',' or ']' at offset %d", d.pos)
			}
		}
	case 0:
		return reqs, true, decodeErrf("empty request body")
	default:
		return reqs, true, decodeErrf("expected '{' or '[' at offset %d", d.pos)
	}
}

// --- Encoding. All appenders write into the caller's buffer and return it;
// with adequate capacity they allocate nothing.

func appendFloatField(buf []byte, key string, v float64) []byte {
	buf = append(buf, '"')
	buf = append(buf, key...)
	buf = append(buf, '"', ':')
	return strconv.AppendFloat(buf, v, 'g', -1, 64)
}

func appendResponse(buf []byte, resp *Response) []byte {
	buf = append(buf, '{')
	if resp.ID != 0 {
		buf = append(buf, `"id":`...)
		buf = strconv.AppendUint(buf, resp.ID, 10)
		buf = append(buf, ',')
	}
	buf = append(buf, `"apps":[`...)
	for i := range resp.Apps {
		if i > 0 {
			buf = append(buf, ',')
		}
		a := &resp.Apps[i]
		buf = append(buf, '{')
		buf = appendFloatField(buf, "slowdown", a.Slowdown)
		buf = append(buf, ',')
		buf = appendFloatField(buf, "slowdown_assigned", a.SlowdownAssigned)
		buf = append(buf, `,"mbb":`...)
		buf = strconv.AppendBool(buf, a.MBB)
		buf = append(buf, ',')
		buf = appendFloatField(buf, "alpha", a.Alpha)
		buf = append(buf, ',')
		buf = appendFloatField(buf, "time_bank", a.TimeBank)
		buf = append(buf, ',')
		buf = appendFloatField(buf, "time_row", a.TimeRow)
		buf = append(buf, ',')
		buf = appendFloatField(buf, "time_llc", a.TimeLLC)
		buf = append(buf, '}')
	}
	buf = append(buf, `],"partition":[`...)
	for i, n := range resp.Partition {
		if i > 0 {
			buf = append(buf, ',')
		}
		buf = strconv.AppendInt(buf, int64(n), 10)
	}
	buf = append(buf, `],`...)
	buf = appendFloatField(buf, "unfairness", resp.Unfairness)
	buf = append(buf, ',')
	buf = appendFloatField(buf, "partition_unfairness", resp.PartitionUnfairness)
	return append(buf, '}')
}

// appendResponses encodes a batch, mirroring the request framing: a single
// request gets a bare object, a batch gets an array.
func appendResponses(buf []byte, resps []Response, single bool) []byte {
	if single && len(resps) == 1 {
		return appendResponse(buf, &resps[0])
	}
	buf = append(buf, '[')
	for i := range resps {
		if i > 0 {
			buf = append(buf, ',')
		}
		buf = appendResponse(buf, &resps[i])
	}
	return append(buf, ']')
}

// AppendError encodes the service's JSON error body ({"error":"..."}) into
// buf — used for NDJSON stream error lines, where the HTTP status is already
// on the wire.
func AppendError(buf []byte, msg string) []byte {
	buf = append(buf, `{"error":`...)
	buf = strconv.AppendQuote(buf, msg)
	return append(buf, '}')
}

// AppendRequest encodes req as the wire JSON the service decodes — the
// client-side half of the codec, used by the load generator, the examples
// and the cross-check tests. Optional fields at their zero value are
// omitted.
func AppendRequest(buf []byte, req *Request) []byte {
	buf = append(buf, '{')
	if req.ID != 0 {
		buf = append(buf, `"id":`...)
		buf = strconv.AppendUint(buf, req.ID, 10)
		buf = append(buf, ',')
	}
	buf = append(buf, `"interval_cycles":`...)
	buf = strconv.AppendUint(buf, req.IntervalCycles, 10)
	if req.NumSMs != 0 {
		buf = append(buf, `,"num_sms":`...)
		buf = strconv.AppendInt(buf, int64(req.NumSMs), 10)
	}
	if req.PeakReqPerCyc != 0 {
		buf = append(buf, ',')
		buf = appendFloatField(buf, "peak_req_per_cyc", req.PeakReqPerCyc)
	}
	if req.PeakActPerCyc != 0 {
		buf = append(buf, ',')
		buf = appendFloatField(buf, "peak_act_per_cyc", req.PeakActPerCyc)
	}
	if req.ReqMaxFactor != 0 {
		buf = append(buf, ',')
		buf = appendFloatField(buf, "req_max_factor", req.ReqMaxFactor)
	}
	if req.MinSMs != 0 {
		buf = append(buf, `,"min_sms":`...)
		buf = strconv.AppendInt(buf, int64(req.MinSMs), 10)
	}
	buf = append(buf, `,"apps":[`...)
	for i := range req.Apps {
		if i > 0 {
			buf = append(buf, ',')
		}
		a := &req.Apps[i]
		buf = append(buf, `{"sms":`...)
		buf = strconv.AppendInt(buf, int64(a.SMs), 10)
		buf = append(buf, ',')
		buf = appendFloatField(buf, "alpha", a.Alpha)
		buf = append(buf, `,"served":`...)
		buf = strconv.AppendUint(buf, a.Served, 10)
		buf = append(buf, `,"time_in_banks":`...)
		buf = strconv.AppendUint(buf, a.TimeInBanks, 10)
		buf = append(buf, `,"erb_miss":`...)
		buf = strconv.AppendUint(buf, a.ERBMiss, 10)
		buf = append(buf, ',')
		buf = appendFloatField(buf, "ellc_miss", a.ELLCMiss)
		buf = append(buf, `,"row_hits":`...)
		buf = strconv.AppendUint(buf, a.RowHits, 10)
		buf = append(buf, `,"row_misses":`...)
		buf = strconv.AppendUint(buf, a.RowMisses, 10)
		buf = append(buf, ',')
		buf = appendFloatField(buf, "blp", a.BLP)
		buf = append(buf, ',')
		buf = appendFloatField(buf, "blp_access", a.BLPAccess)
		buf = append(buf, ',')
		buf = appendFloatField(buf, "blp_blocked", a.BLPBlocked)
		buf = append(buf, `,"tb_sum":`...)
		buf = strconv.AppendInt(buf, int64(a.TBSum), 10)
		buf = append(buf, `,"tb_shared":`...)
		buf = strconv.AppendInt(buf, int64(a.TBShared), 10)
		buf = append(buf, '}')
	}
	return append(buf, `]}`...)
}
