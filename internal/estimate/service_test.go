package estimate

import (
	"math"
	"strings"
	"testing"

	"dasesim/internal/core"
	"dasesim/internal/sched"
	"dasesim/internal/sim"
)

// TestServiceMatchesModel: the service's numbers must be exactly those of
// the underlying model primitives — no drift between the served path and
// the in-process path.
func TestServiceMatchesModel(t *testing.T) {
	svc := NewService(Options{})
	req := sampleRequest(0)
	req.PeakReqPerCyc = svc.Options().Cfg.PeakRequestsPerCycle()
	req.PeakActPerCyc = svc.Options().Cfg.PeakActivationsPerCycle()
	req.ReqMaxFactor = svc.Options().Cfg.RequestMaxFactor

	sc := svc.Get()
	defer svc.Put(sc)
	sc.Body = AppendRequest(sc.Body[:0], &req)
	if err := svc.Process(sc); err != nil {
		t.Fatalf("Process: %v", err)
	}

	// Reference: feed the identical snapshot through core+sched directly.
	snap := &sim.IntervalSnapshot{
		IntervalCycles: req.IntervalCycles,
		NumSMs:         req.NumSMs,
		PeakReqPerCyc:  req.PeakReqPerCyc,
		PeakActPerCyc:  req.PeakActPerCyc,
		ReqMaxFactor:   req.ReqMaxFactor,
	}
	for i, a := range req.Apps {
		snap.Apps = append(snap.Apps, sim.AppInterval{
			SMs: a.SMs, Alpha: a.Alpha, Served: a.Served, TimeInBanks: a.TimeInBanks,
			ERBMiss: a.ERBMiss, ELLCMiss: a.ELLCMiss, RowHits: a.RowHits,
			RowMisses: a.RowMisses, BLP: a.BLP, BLPAccess: a.BLPAccess,
			BLPBlocked: a.BLPBlocked, TBSum: a.TBSum, TBShared: a.TBShared,
		})
		_ = i
	}
	det := core.New(core.Options{}).EstimateDetailed(snap)
	slow := make([]float64, len(det))
	cur := make([]int, len(det))
	for i := range det {
		slow[i] = det[i].Slowdown
		cur[i] = req.Apps[i].SMs
	}
	best, bestUnf := sched.SearchBestPartition(slow, cur, req.NumSMs, 1)
	wantUnf := sched.EstimatedUnfairness(slow, cur, cur, req.NumSMs)

	want := Response{Unfairness: wantUnf, PartitionUnfairness: bestUnf}
	for i := range det {
		want.Apps = append(want.Apps, AppResult{
			Slowdown: det[i].Slowdown, SlowdownAssigned: det[i].SlowdownAssigned,
			MBB: det[i].MBB, Alpha: det[i].Alpha, TimeBank: det[i].TimeBank,
			TimeRow: det[i].TimeRow, TimeLLC: det[i].TimeLLC,
		})
	}
	want.Partition = best
	wantBytes := appendResponse(nil, &want)
	if string(sc.Out) != string(wantBytes) {
		t.Fatalf("served response diverges from model:\n got %s\nwant %s", sc.Out, wantBytes)
	}
}

// TestValidationRejections: the input-hardening satellite — garbage counters
// must be rejected as KindInvalid, never reach EstimateDetailed.
func TestValidationRejections(t *testing.T) {
	svc := NewService(Options{})
	base := func() Request { return sampleRequest(0) }
	cases := []struct {
		name   string
		mut    func(*Request)
		direct bool   // NaN/Inf cannot travel as JSON; validate directly
		want   string // substring of the error
	}{
		{"no-apps", func(r *Request) { r.Apps = nil }, false, "apps is empty"},
		{"negative-alpha", func(r *Request) { r.Apps[0].Alpha = -0.1 }, false, "alpha"},
		{"alpha-above-one", func(r *Request) { r.Apps[0].Alpha = 1.5 }, false, "alpha"},
		{"nan-alpha", func(r *Request) { r.Apps[0].Alpha = math.NaN() }, true, "alpha"},
		{"negative-blp", func(r *Request) { r.Apps[1].BLP = -3 }, false, "blp is negative"},
		{"inf-ellc", func(r *Request) { r.Apps[0].ELLCMiss = math.Inf(1) }, true, "ellc_miss is infinite"},
		{"nan-peak", func(r *Request) { r.PeakReqPerCyc = math.NaN() }, true, "peak_req_per_cyc is NaN"},
		{"absurd-served", func(r *Request) { r.Apps[0].Served = 1 << 62 }, false, "served is absurdly large"},
		{"absurd-interval", func(r *Request) { r.IntervalCycles = 1 << 62 }, false, "interval_cycles"},
		{"num-sms-too-big", func(r *Request) { r.NumSMs = 100_000 }, false, "num_sms"},
		{"negative-num-sms", func(r *Request) { r.NumSMs = -4 }, true, "num_sms"},
		{"sms-over-total", func(r *Request) { r.Apps[0].SMs = 99 }, false, "sms is out of range"},
		{"negative-tbsum", func(r *Request) { r.Apps[0].TBSum = -1 }, false, "tb_sum"},
		{"infeasible-min-sms", func(r *Request) { r.MinSMs = 9 }, false, "min_sms"},
		{"negative-min-sms", func(r *Request) { r.MinSMs = -2 }, true, "min_sms"},
		{"req-max-factor-above-one", func(r *Request) { r.ReqMaxFactor = 1.5 }, false, "req_max_factor"},
		{"partition-explosion", func(r *Request) {
			r.NumSMs = 4096
			r.Apps = append(r.Apps, r.Apps...)
			r.Apps = append(r.Apps, r.Apps...) // 8 apps
		}, false, "too many candidate partitions"},
	}
	sc := svc.Get()
	defer svc.Put(sc)
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req := base()
			tc.mut(&req)
			var err error
			if tc.direct {
				svc.applyDefaults(&req)
				if verr := svc.validate(&req, 0, false); verr != nil {
					err = verr
				}
			} else {
				sc.Body = AppendRequest(sc.Body[:0], &req)
				err = svc.Process(sc)
			}
			if err == nil {
				t.Fatalf("want rejection, got accept")
			}
			rerr, ok := err.(*RequestError)
			if !ok || rerr.Kind != KindInvalid {
				t.Fatalf("want KindInvalid RequestError, got %T %v", err, err)
			}
			if !strings.Contains(rerr.Msg, tc.want) {
				t.Fatalf("error %q does not mention %q", rerr.Msg, tc.want)
			}
		})
	}

	// Batch errors must name the failing request index.
	good, bad := base(), base()
	bad.Apps[0].Alpha = -1
	body := append([]byte{'['}, AppendRequest(nil, &good)...)
	body = append(body, ',')
	body = append(body, AppendRequest(nil, &bad)...)
	body = append(body, ']')
	sc.Body = append(sc.Body[:0], body...)
	err := svc.Process(sc)
	if err == nil || !strings.Contains(err.Error(), "request 1:") {
		t.Fatalf("batch rejection must name the request index, got %v", err)
	}
}

// TestDefaultsApplied: a minimal request inherits the service's machine
// configuration.
func TestDefaultsApplied(t *testing.T) {
	svc := NewService(Options{})
	sc := svc.Get()
	defer svc.Put(sc)
	sc.Body = append(sc.Body[:0], `{"apps":[{"sms":8,"alpha":0.3,"served":500,"blp":4},{"sms":8,"alpha":0.4,"served":700,"blp":5}]}`...)
	if err := svc.Process(sc); err != nil {
		t.Fatalf("minimal request rejected: %v", err)
	}
	reqs := sc.Requests()
	cfg := svc.Options().Cfg
	if reqs[0].IntervalCycles != cfg.IntervalCycles || reqs[0].NumSMs != cfg.NumSMs ||
		reqs[0].ReqMaxFactor != cfg.RequestMaxFactor || reqs[0].MinSMs != 1 {
		t.Fatalf("defaults not applied: %+v", reqs[0])
	}
}

// TestEstimateSnapshot exercises the in-process convenience path.
func TestEstimateSnapshot(t *testing.T) {
	svc := NewService(Options{})
	req := sampleRequest(0)
	snap := sim.IntervalSnapshot{
		IntervalCycles: req.IntervalCycles,
		NumSMs:         req.NumSMs,
		PeakReqPerCyc:  svc.Options().Cfg.PeakRequestsPerCycle(),
		PeakActPerCyc:  svc.Options().Cfg.PeakActivationsPerCycle(),
		ReqMaxFactor:   0.6,
	}
	for _, a := range req.Apps {
		snap.Apps = append(snap.Apps, sim.AppInterval{SMs: a.SMs, Alpha: a.Alpha, Served: a.Served, BLP: a.BLP})
	}
	resp, err := svc.EstimateSnapshot(&snap)
	if err != nil {
		t.Fatalf("EstimateSnapshot: %v", err)
	}
	if len(resp.Apps) != 2 || len(resp.Partition) != 2 {
		t.Fatalf("unexpected response: %+v", resp)
	}
}

// TestProcessZeroAlloc is the alloc-budget guard the acceptance criteria
// demand: once a Scratch is warm, the full decode → validate → estimate →
// partition-search → encode path must not allocate at all.
func TestProcessZeroAlloc(t *testing.T) {
	svc := NewService(Options{})
	req := sampleRequest(11)
	single := AppendRequest(nil, &req)
	r2 := sampleRequest(12)
	batch := append([]byte{'['}, AppendRequest(nil, &req)...)
	batch = append(batch, ',')
	batch = append(batch, AppendRequest(nil, &r2)...)
	batch = append(batch, ']')

	sc := svc.Get()
	defer svc.Put(sc)
	warm := func(body []byte) {
		sc.Body = append(sc.Body[:0], body...)
		if err := svc.Process(sc); err != nil {
			t.Fatalf("Process: %v", err)
		}
	}
	// Warm every buffer, alternating shapes so both are at capacity.
	for i := 0; i < 4; i++ {
		warm(single)
		warm(batch)
	}
	for name, body := range map[string][]byte{"single": single, "batch": batch} {
		body := body
		allocs := testing.AllocsPerRun(100, func() {
			sc.Body = append(sc.Body[:0], body...)
			if err := svc.Process(sc); err != nil {
				t.Fatalf("Process: %v", err)
			}
		})
		if allocs != 0 {
			t.Errorf("%s: %v allocs/op on the serve hot path, budget is 0", name, allocs)
		}
	}
}

// BenchmarkProcessSingle is the transport-free serving benchmark recorded in
// BENCH_serve.json.
func BenchmarkProcessSingle(b *testing.B) {
	svc := NewService(Options{})
	req := sampleRequest(0)
	body := AppendRequest(nil, &req)
	sc := svc.Get()
	defer svc.Put(sc)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sc.Body = append(sc.Body[:0], body...)
		if err := svc.Process(sc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkProcessBatch8 serves an 8-snapshot batch per op.
func BenchmarkProcessBatch8(b *testing.B) {
	svc := NewService(Options{})
	req := sampleRequest(0)
	body := []byte{'['}
	for i := 0; i < 8; i++ {
		if i > 0 {
			body = append(body, ',')
		}
		body = AppendRequest(body, &req)
	}
	body = append(body, ']')
	sc := svc.Get()
	defer svc.Put(sc)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sc.Body = append(sc.Body[:0], body...)
		if err := svc.Process(sc); err != nil {
			b.Fatal(err)
		}
	}
}
