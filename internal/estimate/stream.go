package estimate

import (
	"errors"
	"io"
)

// ErrLineTooLong reports an NDJSON line exceeding the scanner's limit.
var ErrLineTooLong = errors.New("estimate: NDJSON line too long")

// lineScanner splits a reader into newline-terminated frames using one
// recycled buffer — bufio.Scanner without the per-stream allocations. Lines
// alias the internal buffer and are valid until the next call.
type lineScanner struct {
	buf        []byte
	start, end int
	eof        bool
	max        int
}

func (ls *lineScanner) reset(max int) {
	ls.start, ls.end, ls.eof = 0, 0, false
	ls.max = max
	if ls.buf == nil {
		ls.buf = make([]byte, 4096)
	}
}

// next returns the next line (newline stripped). It returns io.EOF at clean
// end of input; a final unterminated line is returned before the EOF.
func (ls *lineScanner) next(r io.Reader) ([]byte, error) {
	for {
		// Look for a newline in the buffered window.
		for i := ls.start; i < ls.end; i++ {
			if ls.buf[i] == '\n' {
				line := ls.buf[ls.start:i]
				ls.start = i + 1
				if len(line) > ls.max {
					return nil, ErrLineTooLong
				}
				return trimCR(line), nil
			}
		}
		if ls.eof {
			if ls.start < ls.end {
				line := ls.buf[ls.start:ls.end]
				ls.start = ls.end
				if len(line) > ls.max {
					return nil, ErrLineTooLong
				}
				return trimCR(line), nil
			}
			return nil, io.EOF
		}
		// Compact, then grow if the line still does not fit.
		if ls.start > 0 {
			copy(ls.buf, ls.buf[ls.start:ls.end])
			ls.end -= ls.start
			ls.start = 0
		}
		if ls.end == len(ls.buf) {
			if len(ls.buf) >= ls.max {
				return nil, ErrLineTooLong
			}
			grown := make([]byte, min(len(ls.buf)*2, ls.max))
			copy(grown, ls.buf[:ls.end])
			ls.buf = grown
		}
		n, err := r.Read(ls.buf[ls.end:])
		ls.end += n
		if err == io.EOF {
			ls.eof = true
			continue
		}
		if err != nil {
			return nil, err
		}
	}
}

func trimCR(line []byte) []byte {
	if n := len(line); n > 0 && line[n-1] == '\r' {
		return line[:n-1]
	}
	return line
}

// StreamReset prepares sc's line scanner for a new NDJSON stream whose lines
// are capped at maxLine bytes.
func (sc *Scratch) StreamReset(maxLine int) {
	if maxLine <= 0 {
		maxLine = 1 << 20
	}
	sc.scan.reset(maxLine)
}

// StreamNext reads the next NDJSON line from r into sc.Body. It returns
// io.EOF at end of stream and ErrLineTooLong on an oversized line; any other
// error is the reader's. Empty lines are skipped.
func (sc *Scratch) StreamNext(r io.Reader) error {
	for {
		line, err := sc.scan.next(r)
		if err != nil {
			return err
		}
		if len(line) == 0 {
			continue
		}
		sc.Body = line
		return nil
	}
}
