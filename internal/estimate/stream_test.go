package estimate

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
)

// chunkReader returns its data in tiny reads, forcing the scanner through
// its compact-and-refill path.
type chunkReader struct {
	data []byte
	n    int
}

func (c *chunkReader) Read(p []byte) (int, error) {
	if len(c.data) == 0 {
		return 0, io.EOF
	}
	n := c.n
	if n > len(c.data) {
		n = len(c.data)
	}
	if n > len(p) {
		n = len(p)
	}
	copy(p, c.data[:n])
	c.data = c.data[n:]
	return n, nil
}

func scanAll(t *testing.T, r io.Reader, maxLine int) []string {
	t.Helper()
	var sc Scratch
	sc.StreamReset(maxLine)
	var out []string
	for {
		err := sc.StreamNext(r)
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatalf("StreamNext: %v", err)
		}
		out = append(out, string(sc.Body))
	}
}

func TestStreamScanner(t *testing.T) {
	input := "line one\nline two\r\n\n\nline four"
	want := []string{"line one", "line two", "line four"}

	t.Run("one-read", func(t *testing.T) {
		got := scanAll(t, strings.NewReader(input), 1<<20)
		if strings.Join(got, "|") != strings.Join(want, "|") {
			t.Fatalf("got %q want %q", got, want)
		}
	})
	t.Run("byte-at-a-time", func(t *testing.T) {
		got := scanAll(t, &chunkReader{data: []byte(input), n: 1}, 1<<20)
		if strings.Join(got, "|") != strings.Join(want, "|") {
			t.Fatalf("got %q want %q", got, want)
		}
	})
	t.Run("line-longer-than-initial-buffer", func(t *testing.T) {
		long := strings.Repeat("x", 10_000)
		got := scanAll(t, strings.NewReader(long+"\nshort\n"), 1<<20)
		if len(got) != 2 || got[0] != long || got[1] != "short" {
			t.Fatalf("long line mishandled: %d lines", len(got))
		}
	})
	t.Run("line-over-limit", func(t *testing.T) {
		var sc Scratch
		sc.StreamReset(64)
		err := sc.StreamNext(strings.NewReader(strings.Repeat("y", 100) + "\n"))
		if !errors.Is(err, ErrLineTooLong) {
			t.Fatalf("want ErrLineTooLong, got %v", err)
		}
	})
	t.Run("empty-stream", func(t *testing.T) {
		if got := scanAll(t, bytes.NewReader(nil), 1<<20); len(got) != 0 {
			t.Fatalf("want no lines, got %q", got)
		}
	})
}

// TestStreamScannerReuse: resetting must fully clear prior-stream state.
func TestStreamScannerReuse(t *testing.T) {
	var sc Scratch
	sc.StreamReset(1 << 20)
	if err := sc.StreamNext(strings.NewReader("first stream\n")); err != nil {
		t.Fatal(err)
	}
	sc.StreamReset(1 << 20)
	if err := sc.StreamNext(strings.NewReader("second\n")); err != nil {
		t.Fatal(err)
	}
	if string(sc.Body) != "second" {
		t.Fatalf("stale data after reset: %q", sc.Body)
	}
}

// TestStreamProcessSequence drives Process line-by-line like the stream
// endpoint does, checking that a validation error on one line leaves the
// Scratch usable for the next.
func TestStreamProcessSequence(t *testing.T) {
	svc := NewService(Options{})
	good := sampleRequest(1)
	bad := sampleRequest(2)
	bad.Apps[0].Alpha = -5

	var stream []byte
	stream = AppendRequest(stream, &good)
	stream = append(stream, '\n')
	stream = AppendRequest(stream, &bad)
	stream = append(stream, '\n')
	stream = AppendRequest(stream, &good)
	stream = append(stream, '\n')

	sc := svc.Get()
	defer svc.Put(sc)
	sc.StreamReset(1 << 20)
	r := bytes.NewReader(stream)
	var errs, oks int
	for {
		err := sc.StreamNext(r)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if perr := svc.Process(sc); perr != nil {
			errs++
			continue
		}
		oks++
	}
	if oks != 2 || errs != 1 {
		t.Fatalf("oks=%d errs=%d, want 2/1", oks, errs)
	}
}
