package estimate

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
)

// wireResponse mirrors the response schema for test-side decoding with
// encoding/json (the production decoder never parses responses).
type wireResponse struct {
	ID                  uint64        `json:"id"`
	Apps                []wireAppResp `json:"apps"`
	Partition           []int         `json:"partition"`
	Unfairness          float64       `json:"unfairness"`
	PartitionUnfairness float64       `json:"partition_unfairness"`
}

type wireAppResp struct {
	Slowdown         float64 `json:"slowdown"`
	SlowdownAssigned float64 `json:"slowdown_assigned"`
	MBB              bool    `json:"mbb"`
	Alpha            float64 `json:"alpha"`
	TimeBank         float64 `json:"time_bank"`
	TimeRow          float64 `json:"time_row"`
	TimeLLC          float64 `json:"time_llc"`
}

func sampleRequest(id uint64) Request {
	return Request{
		ID:             id,
		IntervalCycles: 50_000,
		NumSMs:         16,
		MinSMs:         1,
		Apps: []AppCounters{
			{SMs: 8, Alpha: 0.42, Served: 9000, TimeInBanks: 180_000, ERBMiss: 300,
				ELLCMiss: 120.5, RowHits: 7000, RowMisses: 2000, BLP: 9.5, BLPAccess: 6.25,
				BLPBlocked: 2.75, TBSum: 96, TBShared: 48},
			{SMs: 8, Alpha: 0.9, Served: 21_000, TimeInBanks: 400_000, ERBMiss: 800,
				ELLCMiss: 300.25, RowHits: 4000, RowMisses: 16_000, BLP: 18, BLPAccess: 14,
				BLPBlocked: 3.5, TBSum: 120, TBShared: 60},
		},
	}
}

// TestRequestCodecRoundTrip: AppendRequest output must decode back to the
// identical struct — the exact float round-trip the cross-check relies on.
func TestRequestCodecRoundTrip(t *testing.T) {
	req := sampleRequest(7)
	req.PeakReqPerCyc = 1.5
	req.PeakActPerCyc = 0.7342178112 // bit-exact through shortest-form encode
	req.ReqMaxFactor = 0.6
	body := AppendRequest(nil, &req)
	got, single, err := decodeRequests(body, nil, 64, 8)
	if err != nil {
		t.Fatalf("decode: %v (body %s)", err, body)
	}
	if !single || len(got) != 1 {
		t.Fatalf("single=%v len=%d, want single batch of 1", single, len(got))
	}
	g := got[0]
	if g.ID != req.ID || g.IntervalCycles != req.IntervalCycles || g.NumSMs != req.NumSMs ||
		g.PeakReqPerCyc != req.PeakReqPerCyc || g.PeakActPerCyc != req.PeakActPerCyc ||
		g.ReqMaxFactor != req.ReqMaxFactor || g.MinSMs != req.MinSMs {
		t.Fatalf("header mismatch: got %+v want %+v", g, req)
	}
	if len(g.Apps) != len(req.Apps) {
		t.Fatalf("apps: got %d want %d", len(g.Apps), len(req.Apps))
	}
	for i := range req.Apps {
		if g.Apps[i] != req.Apps[i] {
			t.Fatalf("app %d mismatch:\n got %+v\nwant %+v", i, g.Apps[i], req.Apps[i])
		}
	}
}

// TestResponseIsValidJSON: the hand-rolled encoder must emit JSON that a
// standard decoder accepts, for single and batch framing.
func TestResponseIsValidJSON(t *testing.T) {
	svc := NewService(Options{})
	sc := svc.Get()
	defer svc.Put(sc)

	req := sampleRequest(3)
	sc.Body = AppendRequest(sc.Body[:0], &req)
	if err := svc.Process(sc); err != nil {
		t.Fatalf("Process: %v", err)
	}
	var single wireResponse
	if err := json.Unmarshal(sc.Out, &single); err != nil {
		t.Fatalf("single response is not valid JSON: %v\n%s", err, sc.Out)
	}
	if single.ID != 3 || len(single.Apps) != 2 || len(single.Partition) != 2 {
		t.Fatalf("unexpected response shape: %+v", single)
	}
	if single.Apps[0].Slowdown < 1 || single.Apps[1].Slowdown < 1 {
		t.Fatalf("slowdowns must be >= 1: %+v", single.Apps)
	}
	sum := single.Partition[0] + single.Partition[1]
	if sum != 16 {
		t.Fatalf("partition must cover all 16 SMs, got %v", single.Partition)
	}

	// Batch framing mirrors the request framing.
	r2 := sampleRequest(4)
	body := append([]byte{'['}, AppendRequest(nil, &req)...)
	body = append(body, ',')
	body = append(body, AppendRequest(nil, &r2)...)
	body = append(body, ']')
	sc.Body = append(sc.Body[:0], body...)
	if err := svc.Process(sc); err != nil {
		t.Fatalf("batch Process: %v", err)
	}
	var batch []wireResponse
	if err := json.Unmarshal(sc.Out, &batch); err != nil {
		t.Fatalf("batch response is not valid JSON: %v\n%s", err, sc.Out)
	}
	if len(batch) != 2 || batch[0].ID != 3 || batch[1].ID != 4 {
		t.Fatalf("unexpected batch: %+v", batch)
	}
	if sc.BatchSize() != 2 {
		t.Fatalf("BatchSize = %d, want 2", sc.BatchSize())
	}
}

// TestDecodeEdgeCases drives the hand-rolled decoder through its rejection
// paths and its unknown-field tolerance.
func TestDecodeEdgeCases(t *testing.T) {
	valid := `{"interval_cycles":50000,"apps":[{"sms":8,"alpha":0.5,"served":100}]}`
	cases := []struct {
		name, body string
		kind       string // "" = accept
	}{
		{"valid-minimal", valid, ""},
		{"unknown-fields-skipped", `{"interval_cycles":50000,"future":{"a":[1,"x\"y",true,null]},"apps":[{"sms":8,"alpha":0.5,"served":100,"note":"hi"}]}`, ""},
		{"whitespace-tolerant", "  {\n\t\"interval_cycles\": 50000 , \"apps\" : [ { \"sms\" : 8 } ]\n}  ", ""},
		{"empty-body", "", KindDecode},
		{"not-json", "hello", KindDecode},
		{"bare-number", "42", KindDecode},
		{"trailing-data", valid + "x", KindDecode},
		{"trailing-data-batch", "[" + valid + "]x", KindDecode},
		{"unterminated-object", `{"interval_cycles":50000`, KindDecode},
		{"unterminated-string", `{"interval_cycles":50000,"x":"abc`, KindDecode},
		{"escaped-key-rejected", `{"interval_cy\u0063les":50000,"apps":[{}]}`, KindDecode},
		{"bad-number", `{"interval_cycles":12e,"apps":[{}]}`, KindDecode},
		{"negative-uint", `{"interval_cycles":-1,"apps":[{}]}`, KindDecode},
		{"float-for-uint", `{"apps":[{"served":1.5}]}`, KindDecode},
		{"huge-float-overflows", `{"apps":[{"alpha":1e999}]}`, KindDecode},
		{"nan-is-not-json", `{"apps":[{"alpha":NaN}]}`, KindDecode},
		{"deep-nesting-bounded", `{"x":` + strings.Repeat(`[`, 40) + strings.Repeat(`]`, 40) + `,"apps":[{}]}`, KindDecode},
		{"empty-batch", "[]", KindInvalid},
		{"oversized-batch", "[" + strings.Repeat(valid+",", 64) + valid + "]", KindInvalid},
		{"too-many-apps", `{"apps":[{},{},{},{},{},{},{},{},{}]}`, KindInvalid},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, _, err := decodeRequests([]byte(tc.body), nil, 64, 8)
			if tc.kind == "" {
				if err != nil {
					t.Fatalf("want accept, got %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("want %s error, got accept", tc.kind)
			}
			if err.Kind != tc.kind {
				t.Fatalf("want kind %s, got %s (%s)", tc.kind, err.Kind, err.Msg)
			}
		})
	}
}

// TestDecodeReuseKeepsCapacity: recycled request slices must not leak values
// between decodes and must reuse inner-app capacity.
func TestDecodeReuseKeepsCapacity(t *testing.T) {
	big := sampleRequest(1)
	body := AppendRequest(nil, &big)
	reqs, _, err := decodeRequests(body, nil, 64, 8)
	if err != nil {
		t.Fatal(err)
	}
	// Second decode of a one-field request into the recycled slice: no stale
	// apps, no stale header fields.
	small := []byte(`{"interval_cycles":7,"apps":[{"sms":1}]}`)
	reqs2, _, err := decodeRequests(small, reqs[:0], 64, 8)
	if err != nil {
		t.Fatal(err)
	}
	r := reqs2[0]
	if r.ID != 0 || r.NumSMs != 0 || r.MinSMs != 0 || len(r.Apps) != 1 {
		t.Fatalf("stale fields leaked into recycled request: %+v", r)
	}
	if r.Apps[0] != (AppCounters{SMs: 1}) {
		t.Fatalf("stale app counters leaked: %+v", r.Apps[0])
	}
}

// TestAppendErrorQuotes: error bodies must be valid JSON even for messages
// containing quotes.
func TestAppendErrorQuotes(t *testing.T) {
	out := AppendError(nil, `expected '"' somewhere`)
	var e struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(out, &e); err != nil {
		t.Fatalf("invalid JSON: %v (%s)", err, out)
	}
	if e.Error != `expected '"' somewhere` {
		t.Fatalf("message mangled: %q", e.Error)
	}
}

// TestFloatRoundTrip: shortest-form encoding must survive a decode
// bit-exactly, including awkward values.
func TestFloatRoundTrip(t *testing.T) {
	for _, v := range []float64{0, 1, 0.1, 2.0 / 3.0, math.Pi, 1e-300, 1e300, 5e-324, math.MaxFloat64} {
		buf := appendFloatField(nil, "x", v)
		s := strings.TrimPrefix(string(buf), `"x":`)
		got, err := parseFloatForTest(s)
		if err != nil {
			t.Fatalf("%v: %v", v, err)
		}
		if got != v {
			t.Fatalf("round-trip changed %v to %v", v, got)
		}
	}
}

func parseFloatForTest(s string) (float64, error) {
	d := decoder{data: []byte(s)}
	v, err := d.float("x")
	if err != nil {
		return 0, err
	}
	return v, nil
}
