// Package estimate serves DASE slowdown estimation online, with no
// simulation in the loop: callers post the per-app hardware counters one
// estimation interval observed (the same fields sim.WithTracer emits), and
// the service answers with per-app slowdowns, MBB verdicts, and the SM
// partition the DASE-Fair search would pick. The paper's point is that the
// model is cheap enough to run at every scheduling interval; this package is
// that claim as a product surface.
//
// The steady-state path — decode, estimate, partition search, encode — is
// allocation-free: requests and responses are flat structs recycled through
// a pooled Scratch, the wire codec is hand-rolled (codec.go), and the model
// calls are the *Into/*Scratch variants of core and sched. The alloc-budget
// test in service_test.go holds the line at 0 allocs/op.
package estimate

import (
	"math"
	"sync"

	"dasesim/internal/config"
	"dasesim/internal/core"
	"dasesim/internal/memreq"
	"dasesim/internal/sched"
	"dasesim/internal/sim"
)

// Request is one counter snapshot to estimate. Zero-valued header fields
// (interval_cycles, num_sms, peaks, req_max_factor, min_sms) take the
// service's configured defaults, so a minimal request only carries apps.
type Request struct {
	// ID is an optional caller correlation tag, echoed in the response
	// when non-zero.
	ID uint64
	// IntervalCycles is the interval length the counters cover.
	IntervalCycles uint64
	// NumSMs is the machine's total SM count.
	NumSMs int
	// PeakReqPerCyc / PeakActPerCyc are the DRAM peak request and
	// activation rates (Eq. 20 inputs).
	PeakReqPerCyc float64
	PeakActPerCyc float64
	// ReqMaxFactor is the empirical derating of Eq. 20.
	ReqMaxFactor float64
	// MinSMs bounds the partition search (per-app minimum).
	MinSMs int
	// Apps holds the per-app counters, in SM-partition order.
	Apps []AppCounters
}

// AppCounters are the per-app interval counters DASE reads — the subset of
// sim.AppInterval that reaches the model.
type AppCounters struct {
	SMs         int
	Alpha       float64
	Served      uint64
	TimeInBanks uint64
	ERBMiss     uint64
	ELLCMiss    float64
	RowHits     uint64
	RowMisses   uint64
	BLP         float64
	BLPAccess   float64
	BLPBlocked  float64
	TBSum       int
	TBShared    int
}

// AppResult is one app's estimate on the wire.
type AppResult struct {
	Slowdown         float64
	SlowdownAssigned float64
	MBB              bool
	Alpha            float64
	TimeBank         float64
	TimeRow          float64
	TimeLLC          float64
}

// Response answers one Request.
type Response struct {
	ID   uint64
	Apps []AppResult
	// Partition is the SM allocation minimising estimated unfairness.
	Partition []int
	// Unfairness is the estimated MAX/MIN slowdown at the current
	// allocation; PartitionUnfairness the same at Partition.
	Unfairness          float64
	PartitionUnfairness float64
}

// Options configure a Service; zero values take the listed defaults.
type Options struct {
	// Cfg supplies the machine defaults for request header fields the
	// caller omits. Default config.Default().
	Cfg config.Config
	// DASE are the estimator options (zero = the paper's configuration).
	DASE core.Options
	// MinSMs is the default per-app minimum for the partition search.
	// Default 1.
	MinSMs int
	// MaxApps bounds apps per snapshot. Default 8.
	MaxApps int
	// MaxBatch bounds snapshots per batched body. Default 64.
	MaxBatch int
	// MaxPartitions bounds the candidate partitions one request may make
	// the search enumerate — the knob that keeps a hostile num_sms from
	// turning the exhaustive search into a CPU sink. Default 200000.
	MaxPartitions float64
}

func (o Options) withDefaults() Options {
	if o.Cfg.NumSMs == 0 {
		o.Cfg = config.Default()
	}
	if o.MinSMs <= 0 {
		o.MinSMs = 1
	}
	if o.MaxApps <= 0 {
		o.MaxApps = 8
	}
	if o.MaxBatch <= 0 {
		o.MaxBatch = 64
	}
	if o.MaxPartitions <= 0 {
		o.MaxPartitions = 200_000
	}
	return o
}

// Service answers estimation requests. It is safe for concurrent use; all
// per-request state lives in the Scratch.
type Service struct {
	opt  Options
	dase *core.DASE
	pool sync.Pool
}

// NewService builds a Service.
func NewService(opt Options) *Service {
	s := &Service{opt: opt.withDefaults()}
	s.dase = core.New(s.opt.DASE)
	s.pool.New = func() any { return new(Scratch) }
	return s
}

// Options returns the resolved options.
func (s *Service) Options() Options { return s.opt }

// Scratch holds every buffer one request (or one stream) needs. Recycle
// through Get/Put; after the first few requests warm a Scratch, Process
// performs no allocations.
type Scratch struct {
	// Body is the raw request bytes: one JSON object, a JSON array batch,
	// or one NDJSON line. Callers fill it (reusing its capacity) before
	// Process.
	Body []byte
	// Out is the encoded response, valid until the next Process on this
	// Scratch.
	Out []byte

	reqs  []Request
	resps []Response
	snap  sim.IntervalSnapshot
	det   []core.AppEstimate
	slow  []float64
	cur   []int
	best  []int
	cand  []int
	// LineScanner state for NDJSON streams (stream.go).
	scan lineScanner
}

// Get returns a pooled Scratch.
func (s *Service) Get() *Scratch { return s.pool.Get().(*Scratch) }

// Put recycles sc. The caller must not touch sc afterwards.
func (s *Service) Put(sc *Scratch) { s.pool.Put(sc) }

// BatchSize reports how many snapshots the last successful Process handled.
func (sc *Scratch) BatchSize() int { return len(sc.resps) }

// Requests exposes the decoded requests of the last Process — read-only,
// valid until the next Process on this Scratch.
func (sc *Scratch) Requests() []Request { return sc.reqs }

// Process decodes sc.Body, validates it, estimates every snapshot, and
// encodes the response into sc.Out. A non-nil error is always a
// *RequestError; sc.Out is unspecified then. The call allocates nothing
// once sc is warm.
func (s *Service) Process(sc *Scratch) error {
	sc.Out = sc.Out[:0]
	reqs, single, derr := decodeRequests(sc.Body, sc.reqs[:0], s.opt.MaxBatch, s.opt.MaxApps)
	sc.reqs = reqs
	if derr != nil {
		sc.resps = sc.resps[:0]
		return derr
	}
	sc.resps = sc.resps[:0]
	for i := range reqs {
		req := &reqs[i]
		s.applyDefaults(req)
		if verr := s.validate(req, i, len(reqs) > 1); verr != nil {
			sc.resps = sc.resps[:0]
			return verr
		}
		sc.resps = growResponse(sc.resps)
		s.estimateOne(req, &sc.resps[len(sc.resps)-1], sc)
	}
	sc.Out = appendResponses(sc.Out, sc.resps, single)
	return nil
}

// EstimateSnapshot is the in-process convenience path: one live snapshot in,
// one Response out (allocating freely — serving paths use Process).
func (s *Service) EstimateSnapshot(snap *sim.IntervalSnapshot) (Response, error) {
	req := FromSnapshot(snap)
	sc := s.Get()
	defer s.Put(sc)
	s.applyDefaults(&req)
	if err := s.validate(&req, 0, false); err != nil {
		return Response{}, err
	}
	var resp Response
	s.estimateOne(&req, &resp, sc)
	resp.Apps = append([]AppResult(nil), resp.Apps...)
	resp.Partition = append([]int(nil), resp.Partition...)
	return resp, nil
}

func (s *Service) applyDefaults(req *Request) {
	if req.IntervalCycles == 0 {
		req.IntervalCycles = s.opt.Cfg.IntervalCycles
	}
	if req.NumSMs == 0 {
		req.NumSMs = s.opt.Cfg.NumSMs
	}
	if req.PeakReqPerCyc == 0 {
		req.PeakReqPerCyc = s.opt.Cfg.PeakRequestsPerCycle()
	}
	if req.PeakActPerCyc == 0 {
		req.PeakActPerCyc = s.opt.Cfg.PeakActivationsPerCycle()
	}
	if req.ReqMaxFactor == 0 {
		req.ReqMaxFactor = s.opt.Cfg.RequestMaxFactor
	}
	if req.MinSMs == 0 {
		req.MinSMs = s.opt.MinSMs
	}
}

// Absurdity bounds: values past these are garbage no real interval can
// produce, and feeding them onward would only manufacture NaN/Inf estimates.
const (
	maxIntervalCycles = 1e12
	maxNumSMs         = 4096
	maxCounter        = 1e15 // per-interval event counters
	maxRate           = 1e6  // per-cycle peak rates, BLP-like averages
	maxThreadBlocks   = 1e9
)

func checkCounterF(batch bool, idx int, app int, name string, v, max float64) *RequestError {
	if math.IsNaN(v) {
		return appErrf(batch, idx, app, name, "is NaN")
	}
	if math.IsInf(v, 0) {
		return appErrf(batch, idx, app, name, "is infinite")
	}
	if v < 0 {
		return appErrf(batch, idx, app, name, "is negative")
	}
	if v > max {
		return appErrf(batch, idx, app, name, "is absurdly large")
	}
	return nil
}

// appErrf builds a field-rejection error naming the batch index and app.
func appErrf(batch bool, idx int, app int, field, what string) *RequestError {
	switch {
	case batch && app >= 0:
		return invalidErrf("request %d: apps[%d].%s %s", idx, app, field, what)
	case batch:
		return invalidErrf("request %d: %s %s", idx, field, what)
	case app >= 0:
		return invalidErrf("apps[%d].%s %s", app, field, what)
	default:
		return invalidErrf("%s %s", field, what)
	}
}

// validate hardens the estimation path: NaN, negative, or absurd counters
// are rejected here with a 400-mapped error instead of propagating garbage
// into EstimateDetailed. It runs after applyDefaults, so every field is
// populated.
func (s *Service) validate(req *Request, idx int, batch bool) *RequestError {
	n := len(req.Apps)
	if n == 0 {
		return appErrf(batch, idx, -1, "apps", "is empty")
	}
	if req.IntervalCycles > maxIntervalCycles {
		return appErrf(batch, idx, -1, "interval_cycles", "is absurdly large")
	}
	if req.NumSMs < 1 || req.NumSMs > maxNumSMs {
		return appErrf(batch, idx, -1, "num_sms", "is out of range")
	}
	if req.MinSMs < 1 {
		return appErrf(batch, idx, -1, "min_sms", "is out of range")
	}
	if req.MinSMs*n > req.NumSMs {
		return appErrf(batch, idx, -1, "min_sms", "leaves no feasible partition")
	}
	if countCompositions(req.NumSMs, n, req.MinSMs) > s.opt.MaxPartitions {
		return appErrf(batch, idx, -1, "num_sms", "implies too many candidate partitions")
	}
	if err := checkCounterF(batch, idx, -1, "peak_req_per_cyc", req.PeakReqPerCyc, maxRate); err != nil {
		return err
	}
	if req.PeakReqPerCyc == 0 {
		return appErrf(batch, idx, -1, "peak_req_per_cyc", "is zero")
	}
	if err := checkCounterF(batch, idx, -1, "peak_act_per_cyc", req.PeakActPerCyc, maxRate); err != nil {
		return err
	}
	if req.ReqMaxFactor <= 0 || req.ReqMaxFactor > 1 || math.IsNaN(req.ReqMaxFactor) {
		return appErrf(batch, idx, -1, "req_max_factor", "is out of (0,1]")
	}
	for i := range req.Apps {
		a := &req.Apps[i]
		if a.SMs < 0 || a.SMs > req.NumSMs {
			return appErrf(batch, idx, i, "sms", "is out of range")
		}
		if math.IsNaN(a.Alpha) || a.Alpha < 0 || a.Alpha > 1+1e-9 {
			return appErrf(batch, idx, i, "alpha", "is out of [0,1]")
		}
		if err := checkCounterF(batch, idx, i, "ellc_miss", a.ELLCMiss, maxCounter); err != nil {
			return err
		}
		if err := checkCounterF(batch, idx, i, "blp", a.BLP, maxRate); err != nil {
			return err
		}
		if err := checkCounterF(batch, idx, i, "blp_access", a.BLPAccess, maxRate); err != nil {
			return err
		}
		if err := checkCounterF(batch, idx, i, "blp_blocked", a.BLPBlocked, maxRate); err != nil {
			return err
		}
		if float64(a.Served) > maxCounter {
			return appErrf(batch, idx, i, "served", "is absurdly large")
		}
		if float64(a.TimeInBanks) > maxCounter {
			return appErrf(batch, idx, i, "time_in_banks", "is absurdly large")
		}
		if float64(a.ERBMiss) > maxCounter {
			return appErrf(batch, idx, i, "erb_miss", "is absurdly large")
		}
		if float64(a.RowHits) > maxCounter {
			return appErrf(batch, idx, i, "row_hits", "is absurdly large")
		}
		if float64(a.RowMisses) > maxCounter {
			return appErrf(batch, idx, i, "row_misses", "is absurdly large")
		}
		if a.TBSum < 0 || float64(a.TBSum) > maxThreadBlocks {
			return appErrf(batch, idx, i, "tb_sum", "is out of range")
		}
		if a.TBShared < 0 || float64(a.TBShared) > maxThreadBlocks {
			return appErrf(batch, idx, i, "tb_shared", "is out of range")
		}
	}
	return nil
}

// countCompositions counts the compositions of total SMs into n parts of at
// least min each — C(total-n*min+n-1, n-1) — in floating point so huge
// inputs saturate instead of overflowing.
func countCompositions(total, n, min int) float64 {
	s := total - n*min
	k := n - 1
	c := 1.0
	for i := 1; i <= k; i++ {
		c = c * float64(s+i) / float64(i)
		if c > 1e18 {
			return c
		}
	}
	return c
}

// estimateOne runs the model for one validated request, writing into resp
// using only sc-owned buffers.
func (s *Service) estimateOne(req *Request, resp *Response, sc *Scratch) {
	n := len(req.Apps)
	snap := &sc.snap
	*snap = sim.IntervalSnapshot{
		IntervalCycles: req.IntervalCycles,
		NumSMs:         req.NumSMs,
		NumMCs:         s.opt.Cfg.NumMCs,
		PeakReqPerCyc:  req.PeakReqPerCyc,
		PeakActPerCyc:  req.PeakActPerCyc,
		ReqMaxFactor:   req.ReqMaxFactor,
		Apps:           sc.snap.Apps[:0],
	}
	for i := range req.Apps {
		a := &req.Apps[i]
		snap.Apps = append(snap.Apps, sim.AppInterval{
			App:         memreq.AppID(i),
			SMs:         a.SMs,
			Alpha:       a.Alpha,
			Served:      a.Served,
			TimeInBanks: a.TimeInBanks,
			ERBMiss:     a.ERBMiss,
			ELLCMiss:    a.ELLCMiss,
			RowHits:     a.RowHits,
			RowMisses:   a.RowMisses,
			BLP:         a.BLP,
			BLPAccess:   a.BLPAccess,
			BLPBlocked:  a.BLPBlocked,
			TBSum:       a.TBSum,
			TBShared:    a.TBShared,
		})
	}
	sc.det = s.dase.EstimateDetailedInto(snap, sc.det)

	sc.slow = resizeFloats(sc.slow, n)
	sc.cur = resizeInts(sc.cur, n)
	sc.best = resizeInts(sc.best, n)
	sc.cand = resizeInts(sc.cand, n)
	for i := range sc.det {
		sc.slow[i] = sc.det[i].Slowdown
		sc.cur[i] = req.Apps[i].SMs
	}

	resp.ID = req.ID
	resp.Apps = resp.Apps[:0]
	for i := range sc.det {
		d := &sc.det[i]
		resp.Apps = append(resp.Apps, AppResult{
			Slowdown:         d.Slowdown,
			SlowdownAssigned: d.SlowdownAssigned,
			MBB:              d.MBB,
			Alpha:            d.Alpha,
			TimeBank:         d.TimeBank,
			TimeRow:          d.TimeRow,
			TimeLLC:          d.TimeLLC,
		})
	}
	resp.Unfairness = sched.EstimatedUnfairness(sc.slow, sc.cur, sc.cur, req.NumSMs)
	best, bestUnf := sched.SearchBestPartitionScratch(sc.slow, sc.cur, req.NumSMs, req.MinSMs, sc.best, sc.cand)
	resp.Partition = resp.Partition[:0]
	resp.Partition = append(resp.Partition, best...)
	resp.PartitionUnfairness = bestUnf
}

// growResponse extends resps by one entry, preserving the inner slice
// capacities of recycled entries (the same trick as growRequest).
func growResponse(resps []Response) []Response {
	if len(resps) < cap(resps) {
		resps = resps[:len(resps)+1]
		r := &resps[len(resps)-1]
		apps, part := r.Apps[:0], r.Partition[:0]
		*r = Response{}
		r.Apps, r.Partition = apps, part
		return resps
	}
	return append(resps, Response{})
}

func resizeFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

func resizeInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

// FromSnapshot converts a live interval snapshot into the wire Request the
// service accepts — the bridge from sim.WithTracer-style interval data to
// the online API. Fields DASE does not read are not carried.
func FromSnapshot(snap *sim.IntervalSnapshot) Request {
	req := Request{
		IntervalCycles: snap.IntervalCycles,
		NumSMs:         snap.NumSMs,
		PeakReqPerCyc:  snap.PeakReqPerCyc,
		PeakActPerCyc:  snap.PeakActPerCyc,
		ReqMaxFactor:   snap.ReqMaxFactor,
		Apps:           make([]AppCounters, len(snap.Apps)),
	}
	for i := range snap.Apps {
		a := &snap.Apps[i]
		req.Apps[i] = AppCounters{
			SMs:         a.SMs,
			Alpha:       a.Alpha,
			Served:      a.Served,
			TimeInBanks: a.TimeInBanks,
			ERBMiss:     a.ERBMiss,
			ELLCMiss:    a.ELLCMiss,
			RowHits:     a.RowHits,
			RowMisses:   a.RowMisses,
			BLP:         a.BLP,
			BLPAccess:   a.BLPAccess,
			BLPBlocked:  a.BLPBlocked,
			TBSum:       a.TBSum,
			TBShared:    a.TBShared,
		}
	}
	return req
}
