package trace

import (
	"testing"

	"dasesim/internal/config"
	"dasesim/internal/kernels"
	"dasesim/internal/sim"
)

func simDefault() config.Config {
	cfg := config.Default()
	cfg.IntervalCycles = 10_000
	return cfg
}

func runSmall(t *testing.T, cfg config.Config) *sim.Result {
	t.Helper()
	a, _ := kernels.ByAbbr("QR")
	b, _ := kernels.ByAbbr("CT")
	res, err := sim.RunShared(cfg, []kernels.Profile{a, b}, []int{8, 8}, 20_000, 1)
	if err != nil {
		t.Fatal(err)
	}
	return res
}
