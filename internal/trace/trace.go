// Package trace serialises per-interval simulation snapshots as CSV for
// offline analysis (plotting slowdown estimates over time, counter
// debugging, workload characterisation).
package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"dasesim/internal/sim"
)

// Header is the CSV column set, one row per (interval, app).
var Header = []string{
	"cycle", "interval_cycles", "app", "sms",
	"alpha", "issued", "mem_insts",
	"served", "enqueued", "erb_miss", "ellc_miss",
	"row_hits", "row_misses", "data_cycles",
	"blp", "blp_access", "blp_blocked",
	"tb_sum", "tb_shared", "prio_served", "prio_cycles",
	"bus_cycles", "bus_wasted", "bus_idle",
}

// Writer streams interval snapshots to CSV.
type Writer struct {
	w     *csv.Writer
	wrote bool
}

// NewWriter wraps an io.Writer.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: csv.NewWriter(w)}
}

// WriteSnapshot appends one row per application.
func (t *Writer) WriteSnapshot(s *sim.IntervalSnapshot) error {
	if !t.wrote {
		if err := t.w.Write(Header); err != nil {
			return fmt.Errorf("trace: header: %w", err)
		}
		t.wrote = true
	}
	for i := range s.Apps {
		a := &s.Apps[i]
		row := []string{
			u(s.Cycle), u(s.IntervalCycles), strconv.Itoa(int(a.App)), strconv.Itoa(a.SMs),
			f(a.Alpha), u(a.Issued), u(a.MemInsts),
			u(a.Served), u(a.Enqueued), u(a.ERBMiss), f(a.ELLCMiss),
			u(a.RowHits), u(a.RowMisses), u(a.DataCycles),
			f(a.BLP), f(a.BLPAccess), f(a.BLPBlocked),
			strconv.Itoa(a.TBSum), strconv.Itoa(a.TBShared), u(a.PrioServed), u(a.PrioCycles),
			u(s.BusCycles), u(s.BusWasted), u(s.BusIdle),
		}
		if err := t.w.Write(row); err != nil {
			return fmt.Errorf("trace: row: %w", err)
		}
	}
	return nil
}

// WriteAll writes every snapshot of a finished run and flushes.
func (t *Writer) WriteAll(snaps []sim.IntervalSnapshot) error {
	for i := range snaps {
		if err := t.WriteSnapshot(&snaps[i]); err != nil {
			return err
		}
	}
	return t.Flush()
}

// Flush flushes buffered rows and reports any write error.
func (t *Writer) Flush() error {
	t.w.Flush()
	return t.w.Error()
}

func u(v uint64) string  { return strconv.FormatUint(v, 10) }
func f(v float64) string { return strconv.FormatFloat(v, 'g', 6, 64) }
