package trace

import (
	"encoding/csv"
	"strings"
	"testing"

	"dasesim/internal/sim"
)

func sampleSnaps() []sim.IntervalSnapshot {
	return []sim.IntervalSnapshot{
		{
			Cycle: 50_000, IntervalCycles: 50_000,
			BusCycles: 300_000, BusWasted: 100_000, BusIdle: 50_000,
			Apps: []sim.AppInterval{
				{App: 0, SMs: 8, Alpha: 0.5, Served: 100, BLP: 12.5},
				{App: 1, SMs: 8, Alpha: 0.25, Served: 50, ELLCMiss: 7.5},
			},
		},
		{
			Cycle: 100_000, IntervalCycles: 50_000,
			Apps: []sim.AppInterval{{App: 0, SMs: 16}, {App: 1}},
		},
	}
}

func TestWriteAllShape(t *testing.T) {
	var b strings.Builder
	w := NewWriter(&b)
	if err := w.WriteAll(sampleSnaps()); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(strings.NewReader(b.String())).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	// Header + 2 snapshots x 2 apps.
	if len(rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(rows))
	}
	if len(rows[0]) != len(Header) {
		t.Fatalf("header width %d != %d", len(rows[0]), len(Header))
	}
	for i, r := range rows {
		if len(r) != len(Header) {
			t.Fatalf("row %d width %d", i, len(r))
		}
	}
	if rows[1][0] != "50000" || rows[1][2] != "0" || rows[2][2] != "1" {
		t.Fatalf("unexpected leading cells: %v / %v", rows[1][:4], rows[2][:4])
	}
}

func TestHeaderOnlyOnce(t *testing.T) {
	var b strings.Builder
	w := NewWriter(&b)
	snaps := sampleSnaps()
	if err := w.WriteSnapshot(&snaps[0]); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteSnapshot(&snaps[1]); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if strings.Count(b.String(), "cycle,interval_cycles") != 1 {
		t.Fatal("header repeated")
	}
}

func TestRealRunTrace(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a simulation")
	}
	cfg := simDefault()
	var b strings.Builder
	res := runSmall(t, cfg)
	if err := NewWriter(&b).WriteAll(res.Snapshots); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(strings.NewReader(b.String())).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 3 {
		t.Fatalf("trace too short: %d rows", len(rows))
	}
}
