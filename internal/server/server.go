// Package server exposes the simulator as a long-running service: a JSON
// HTTP API that accepts simulation jobs, runs them on a bounded worker pool
// with a FIFO queue, serves repeated queries from a content-addressed result
// cache, and reports health and Prometheus metrics. It turns the one-shot
// CLI reproduction into something continuously queryable — the production
// posture that run-time slowdown estimators are designed for.
//
// Robustness properties:
//
//   - a full queue rejects submissions with 429 instead of blocking, and
//     above a high-water mark non-cached submissions are shed first;
//   - each job runs under a context with a per-job timeout, and client
//     cancellation (DELETE) aborts queued and running jobs;
//   - a panicking simulation fails its job, not the process;
//   - jobs that fail on transient errors (injected faults, journal I/O,
//     worker panics) are retried with capped exponential backoff and full
//     jitter before being marked failed;
//   - with a journal configured, every lifecycle transition is committed to
//     an fsynced write-ahead log; on restart, terminal jobs are restored as
//     queryable records and non-terminal jobs are re-enqueued — simulation
//     results are deterministic, so recovery is semantically invisible;
//   - Shutdown stops intake, drains queued and running jobs, and
//     hard-cancels whatever is still running when its context expires.
package server

import (
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"math/rand/v2"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"

	"dasesim/internal/config"
	"dasesim/internal/estimate"
	"dasesim/internal/journal"
	"dasesim/internal/kernels"
	"dasesim/internal/simcache"
	"dasesim/internal/slo"
	"dasesim/internal/telemetry"
)

// Options configure a Server; zero fields take the documented defaults.
type Options struct {
	// Cfg is the simulated GPU (default: config.Default(), the paper's
	// Table II device). Validated at construction.
	Cfg config.Config
	// Catalogue are the kernels jobs may reference (default: kernels.All()).
	Catalogue []kernels.Profile
	// Workers is the simulation worker-pool size (default: GOMAXPROCS).
	Workers int
	// QueueDepth bounds the FIFO job queue; submissions beyond it get 429
	// (default: 64).
	QueueDepth int
	// JobTimeout caps each job's wall time (default: 2m). Requests may
	// shorten but not extend it.
	JobTimeout time.Duration
	// DefaultCycles is the budget for requests that omit cycles (default:
	// 300000, matching cmd/dasesim).
	DefaultCycles uint64
	// MaxCycles rejects outsized budgets at submission (default: 20000000).
	MaxCycles uint64
	// CacheEntries bounds the result cache (default:
	// simcache.DefaultMaxEntries).
	CacheEntries int
	// MaxJobs bounds the retained job records; the oldest terminal jobs are
	// forgotten beyond it (default: 4096).
	MaxJobs int
	// JournalPath enables the durable job journal at this file. Empty (the
	// default) keeps all job state in memory, as before.
	JournalPath string
	// MaxRetries is how many extra attempts a job failing on a transient
	// error gets before it is marked failed (default: 2; negative disables
	// retries).
	MaxRetries int
	// RetryBaseDelay is the backoff before the first retry; attempt n waits
	// up to RetryBaseDelay<<(n-1), capped at RetryMaxDelay, with full jitter
	// (defaults: 25ms base, 1s cap).
	RetryBaseDelay time.Duration
	RetryMaxDelay  time.Duration
	// ShedHighWater is the queue length at which admission control starts
	// shedding submissions whose result is not already cached (default:
	// 3/4 of QueueDepth; negative disables shedding).
	ShedHighWater int
	// LongPollMax clamps the wait_ms parameter of GET /v1/jobs/{id}
	// (default: 60s).
	LongPollMax time.Duration
	// SnapshotRetention caps how many interval snapshots each simulation
	// keeps (default: 4096, comfortably above MaxCycles/IntervalCycles at
	// the defaults so results are normally untruncated; negative disables
	// the cap). Whole-run aggregates are exact regardless.
	SnapshotRetention int
	// CheckInvariants runs every simulation with the engine's runtime
	// validation sweep (sim.WithInvariantChecks): pool hygiene, request
	// conservation, MSHR agreement and monotonic counters. Checking is
	// observation-only — results and cache keys are unchanged — but costs
	// simulation throughput, so it defaults to off; a violation fails the
	// job with an invariant panic instead of returning corrupt numbers.
	CheckInvariants bool
	// Parallelism shards each simulation's cycle engine across this many
	// bulk-synchronous workers (sim.WithParallelism): 0 (the default) keeps
	// the sequential engine, n >= 1 uses n shards, negative means
	// GOMAXPROCS. Results and cache keys are byte-identical either way.
	// Note the worker pool (Workers) already runs jobs concurrently;
	// per-job engine parallelism multiplies goroutines, so it pays off
	// mainly on servers with more cores than concurrent jobs.
	Parallelism int
	// Logger receives structured request and job logs (default:
	// slog.Default()). Use slog.New(slog.NewTextHandler(io.Discard, nil))
	// to silence.
	Logger *slog.Logger
	// TraceEvents enables per-job event tracing with a ring retaining the
	// most recent N events per job: lifecycle transitions plus, for jobs
	// that actually simulate, engine and DASE scheduler events. Traces are
	// served at GET /v1/jobs/{id}/trace. 0 disables tracing (the default)
	// unless TraceDir is set, which implies telemetry.DefaultCapacity.
	TraceEvents int
	// TraceDir, when set, additionally writes each finished job's trace as
	// Chrome trace-event JSON to <TraceDir>/<jobID>.trace.json.
	TraceDir string
	// EstimateMinSMs is the default per-app minimum SM count for the
	// online estimation endpoints' partition search (default 1).
	EstimateMinSMs int
	// EstimateMaxApps bounds apps per estimation snapshot (default 8).
	EstimateMaxApps int
	// EstimateMaxBody bounds estimate request bodies and NDJSON stream
	// lines, in bytes (default 1 MiB).
	EstimateMaxBody int64
	// NodeID, when set, prefixes job IDs ("<NodeID>-job-7" instead of
	// "job-7") so IDs stay globally unique — and routable — across a
	// multi-node dased cluster. Must not contain "-job-" or "/".
	NodeID string
	// TraceSeed seeds the span-ID source so tests get reproducible trace
	// IDs; 0 (the default) derives a per-node seed from NodeID, keeping IDs
	// distinct across cluster members.
	TraceSeed uint64
	// SLOInterval enables the SLO evaluator: every interval the server
	// snapshots its own metrics registry, recomputes objective statuses and
	// burn rates, and exports dased_slo_burn_rate. 0 (the default) disables
	// evaluation.
	SLOInterval time.Duration
	// SLOObjectives overrides the evaluated objectives; nil takes
	// slo.DefaultObjectives(). Only read when SLOInterval > 0.
	SLOObjectives []slo.Objective
}

// withDefaults fills unset options.
func (o Options) withDefaults() Options {
	if o.Cfg.NumSMs == 0 {
		o.Cfg = config.Default()
	}
	if o.Catalogue == nil {
		o.Catalogue = kernels.All()
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 64
	}
	if o.JobTimeout <= 0 {
		o.JobTimeout = 2 * time.Minute
	}
	if o.DefaultCycles == 0 {
		o.DefaultCycles = 300_000
	}
	if o.MaxCycles == 0 {
		o.MaxCycles = 20_000_000
	}
	if o.MaxJobs <= 0 {
		o.MaxJobs = 4096
	}
	switch {
	case o.MaxRetries == 0:
		o.MaxRetries = 2
	case o.MaxRetries < 0:
		o.MaxRetries = 0
	}
	if o.RetryBaseDelay <= 0 {
		o.RetryBaseDelay = 25 * time.Millisecond
	}
	if o.RetryMaxDelay <= 0 {
		o.RetryMaxDelay = time.Second
	}
	switch {
	case o.ShedHighWater == 0:
		o.ShedHighWater = o.QueueDepth * 3 / 4
		if o.ShedHighWater < 1 {
			o.ShedHighWater = 1
		}
	case o.ShedHighWater < 0:
		o.ShedHighWater = o.QueueDepth + 1 // never reached: shedding off
	}
	if o.LongPollMax <= 0 {
		o.LongPollMax = 60 * time.Second
	}
	switch {
	case o.SnapshotRetention == 0:
		o.SnapshotRetention = 4096
	case o.SnapshotRetention < 0:
		o.SnapshotRetention = 0 // unlimited
	}
	if o.Logger == nil {
		o.Logger = slog.Default()
	}
	if o.TraceDir != "" && o.TraceEvents == 0 {
		o.TraceEvents = telemetry.DefaultCapacity
	}
	if o.TraceEvents < 0 {
		o.TraceEvents = 0
	}
	if o.EstimateMaxBody <= 0 {
		o.EstimateMaxBody = 1 << 20
	}
	return o
}

// Server is the simulation-as-a-service daemon core. Construct with New,
// start the worker pool with Start, serve Handler over HTTP, and stop with
// Shutdown.
type Server struct {
	opts    Options
	cache   *simcache.Memory
	metrics *Metrics
	queue   chan *Job
	journal *journal.Journal
	est     *estimate.Service
	spans   *telemetry.SpanSource

	sloMu   sync.Mutex
	sloEval *slo.Evaluator // nil when SLO evaluation is disabled

	baseCtx    context.Context
	baseCancel context.CancelFunc
	drainCh    chan struct{} // closed when draining begins; wakes retry backoffs
	wg         sync.WaitGroup

	mu          sync.Mutex
	rng         *rand.Rand                        // backoff jitter; guarded by mu
	jitterFn    func(time.Duration) time.Duration // test hook; nil means full jitter
	jobs        map[string]*Job
	jobOrder    []string // submission order, for listing and record eviction
	nextID      uint64
	draining    bool
	started     bool
	readyChecks []readyCheck // extra readiness conditions (cluster quorum)
}

// readyCheck is one named readiness condition; fn returns nil when ready.
type readyCheck struct {
	name string
	fn   func() error
}

// New builds a Server with the given options. When a journal path is
// configured, New replays it: terminal jobs become queryable records (their
// results re-seed the cache), non-terminal jobs are re-enqueued, and the
// journal is compacted to the recovered state.
func New(opts Options) (*Server, error) {
	opts = opts.withDefaults()
	if err := opts.Cfg.Validate(); err != nil {
		return nil, fmt.Errorf("server: %w", err)
	}
	if len(opts.Catalogue) == 0 {
		return nil, fmt.Errorf("server: empty kernel catalogue")
	}
	if strings.Contains(opts.NodeID, "-job-") || strings.ContainsAny(opts.NodeID, "/ ") {
		return nil, fmt.Errorf("server: invalid node id %q", opts.NodeID)
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		opts:       opts,
		cache:      simcache.NewMemory(opts.CacheEntries),
		queue:      make(chan *Job, opts.QueueDepth),
		baseCtx:    ctx,
		baseCancel: cancel,
		drainCh:    make(chan struct{}),
		rng:        rand.New(rand.NewPCG(rand.Uint64(), rand.Uint64())),
		jobs:       map[string]*Job{},
	}
	seed := opts.TraceSeed
	if seed == 0 {
		// FNV-1a over the node ID: distinct nodes mint distinct span IDs
		// even when every TraceSeed is left defaulted.
		seed = 14695981039346656037
		for i := 0; i < len(opts.NodeID); i++ {
			seed = (seed ^ uint64(opts.NodeID[i])) * 1099511628211
		}
	}
	s.spans = telemetry.NewSpanSource(seed)
	if opts.SLOInterval > 0 {
		objectives := opts.SLOObjectives
		if objectives == nil {
			objectives = slo.DefaultObjectives()
		}
		s.sloEval = slo.NewEvaluator(objectives)
	}
	s.est = estimate.NewService(estimate.Options{
		Cfg:     opts.Cfg,
		MinSMs:  opts.EstimateMinSMs,
		MaxApps: opts.EstimateMaxApps,
	})
	s.metrics = newMetrics(
		func() int { return len(s.queue) },
		func() (uint64, uint64, uint64, int) {
			st := s.cache.Stats()
			return st.Hits, st.Misses, st.Evictions, st.Entries
		},
	)
	if s.sloEval != nil {
		names := make([]string, 0, len(s.sloEval.Objectives()))
		for _, o := range s.sloEval.Objectives() {
			names = append(names, o.Name)
		}
		s.metrics.initSLO(names)
	}
	if opts.TraceDir != "" {
		if err := os.MkdirAll(opts.TraceDir, 0o755); err != nil {
			cancel()
			return nil, fmt.Errorf("server: trace dir: %w", err)
		}
	}
	if opts.JournalPath != "" {
		jnl, records, err := journal.Open(opts.JournalPath)
		if err != nil {
			cancel()
			return nil, fmt.Errorf("server: %w", err)
		}
		s.journal = jnl
		s.metrics.setJournalRecords(jnl.Len)
		s.replay(records)
	}
	return s, nil
}

// journal payloads. submittedData carries the request so replay can rebuild
// the plan; finishedData snapshots everything a terminal job needs to stay
// queryable across restarts.
type submittedData struct {
	Request JobRequest `json:"request"`
	// Trace context, as zero-padded hex so the journal stays greppable.
	// Restored on replay and carried through hand-off, the cross-node job
	// timeline survives the crash it is most interesting for.
	TraceID  string `json:"trace_id,omitempty"`
	SpanID   string `json:"span_id,omitempty"`
	ParentID string `json:"parent_id,omitempty"`
}

// spanWire renders a span context in the journal's hex form.
func spanWire(sc telemetry.SpanContext) (traceID, spanID, parentID string) {
	return telemetry.FormatSpanID(sc.TraceID), telemetry.FormatSpanID(sc.SpanID), telemetry.FormatSpanID(sc.ParentID)
}

// spanFromWire parses the journal's hex span form, tolerating absent or
// malformed fields (old journals carry none).
func spanFromWire(traceID, spanID, parentID string) telemetry.SpanContext {
	var sc telemetry.SpanContext
	sc.TraceID, _ = telemetry.ParseSpanID(traceID)
	sc.SpanID, _ = telemetry.ParseSpanID(spanID)
	sc.ParentID, _ = telemetry.ParseSpanID(parentID)
	return sc
}

type startedData struct {
	Attempt int `json:"attempt"`
}

type finishedData struct {
	Status      Status     `json:"status"`
	Error       string     `json:"error,omitempty"`
	CacheHit    bool       `json:"cache_hit,omitempty"`
	Attempts    int        `json:"attempts,omitempty"`
	ForwardedTo string     `json:"forwarded_to,omitempty"`
	Result      *JobResult `json:"result,omitempty"`
}

// appendJournal commits one lifecycle record; it is a no-op without a
// journal. data must be JSON-marshalable.
func (s *Server) appendJournal(ctx context.Context, op, jobID string, data any) error {
	if s.journal == nil {
		return nil
	}
	rec := journal.Record{Op: op, JobID: jobID}
	if data != nil {
		raw, err := json.Marshal(data)
		if err != nil {
			return fmt.Errorf("journal payload: %w", err)
		}
		rec.Data = raw
	}
	return s.journal.Append(ctx, rec)
}

// journalAppendTimeout bounds journal appends that are not already scoped to
// a job context. Several appenders run while holding s.mu; without a bound, a
// hung fsync (or an injected sleep fault) would wedge the whole server.
const journalAppendTimeout = 3 * time.Second

// appendJournalBounded is appendJournal with its own deadline, for call sites
// whose surrounding context is unbounded (submit, cancel, finalize).
func (s *Server) appendJournalBounded(op, jobID string, data any) error {
	if s.journal == nil {
		return nil
	}
	ctx, cancel := context.WithTimeout(context.Background(), journalAppendTimeout)
	defer cancel()
	return s.appendJournal(ctx, op, jobID, data)
}

// replay rebuilds job state from journal records at construction time:
// terminal jobs are restored verbatim (and their results re-seed the result
// cache), non-terminal jobs are re-enqueued for execution. Runs before
// Start, so the queue sends below cannot race workers.
func (s *Server) replay(records []journal.Record) {
	type state struct {
		req      JobRequest
		haveReq  bool
		span     telemetry.SpanContext
		started  time.Time
		submit   time.Time
		finished time.Time
		attempts int
		fin      *finishedData
	}
	states := map[string]*state{}
	var order []string
	for _, rec := range records {
		st, ok := states[rec.JobID]
		if !ok {
			st = &state{}
			states[rec.JobID] = st
			order = append(order, rec.JobID)
		}
		switch rec.Op {
		case journal.OpSubmitted:
			var d submittedData
			if json.Unmarshal(rec.Data, &d) == nil {
				st.req, st.haveReq = d.Request, true
				st.span = spanFromWire(d.TraceID, d.SpanID, d.ParentID)
				st.submit = rec.Time
			}
		case journal.OpStarted:
			var d startedData
			_ = json.Unmarshal(rec.Data, &d)
			st.started = rec.Time
			if d.Attempt > st.attempts {
				st.attempts = d.Attempt
			}
		case journal.OpFinished:
			var d finishedData
			if json.Unmarshal(rec.Data, &d) == nil {
				st.fin = &d
				st.finished = rec.Time
			}
		case journal.OpCanceled:
			st.fin = &finishedData{Status: StatusCanceled, Error: "canceled"}
			st.finished = rec.Time
		}
		// Track the highest numeric job ID so new submissions continue the
		// sequence instead of colliding with replayed ones.
		numeric := strings.TrimPrefix(strings.TrimPrefix(rec.JobID, s.idPrefix()), "job-")
		if n, err := strconv.ParseUint(numeric, 10, 64); err == nil && n > s.nextID {
			s.nextID = n
		}
	}
	for _, id := range order {
		st := states[id]
		if !st.haveReq {
			continue // orphan started/finished records from a torn prefix
		}
		job := &Job{
			ID:          id,
			Request:     st.req,
			SubmittedAt: st.submit,
			Attempts:    st.attempts,
			span:        st.span,
			done:        make(chan struct{}),
		}
		switch {
		case st.fin != nil:
			job.Status = st.fin.Status
			job.Error = st.fin.Error
			job.CacheHit = st.fin.CacheHit
			job.ForwardedTo = st.fin.ForwardedTo
			if st.fin.Attempts > job.Attempts {
				job.Attempts = st.fin.Attempts
			}
			job.Result = st.fin.Result
			job.StartedAt = st.started
			job.FinishedAt = st.finished
			close(job.done)
			// Re-seed the result cache so identical submissions after the
			// restart are still cache hits.
			if job.Result != nil && job.Result.Sim != nil {
				if pl, err := s.buildPlan(st.req); err == nil {
					key := simcache.Key(s.opts.Cfg, pl.profiles, pl.alloc, pl.cycles, pl.seed, pl.variant())
					s.cache.Put(key, job.Result.Sim)
				}
			}
		default:
			pl, err := s.buildPlan(st.req)
			if err != nil {
				// The catalogue or limits changed under the journal; the job
				// can no longer run.
				job.Status = StatusFailed
				job.Error = fmt.Sprintf("recovery: %v", err)
				job.FinishedAt = time.Now()
				close(job.done)
			} else if len(s.queue) == cap(s.queue) {
				job.Status = StatusFailed
				job.Error = "recovery: queue full"
				job.FinishedAt = time.Now()
				close(job.done)
				s.metrics.jobsShed.Add(1)
			} else {
				job.Status = StatusQueued
				job.plan = pl
				if s.opts.TraceEvents > 0 {
					job.tracer = telemetry.New(s.opts.TraceEvents)
					job.emit(s.opts.NodeID, telemetry.Event{
						Kind: telemetry.KindJobQueued, Wall: job.SubmittedAt.UnixNano(),
						App: -1, SM: -1, Job: job.ID, Note: "replayed",
					})
				}
				s.queue <- job
			}
		}
		s.jobs[id] = job
		s.jobOrder = append(s.jobOrder, id)
		s.metrics.journalReplayed.Add(1)
	}
	s.evictJobRecordsLocked()
	if err := s.compactLocked(); err != nil {
		s.opts.Logger.Error("journal compact after replay failed", "err", err)
	}
	if n := len(s.jobs); n > 0 {
		s.opts.Logger.Info("journal replayed", "jobs", n, "requeued", len(s.queue))
	}
}

// compactLocked rewrites the journal as a snapshot of the retained jobs
// (submitted + started/finished per job); the caller holds s.mu or is the
// constructor. MaxJobs is honored because eviction trims jobOrder first.
func (s *Server) compactLocked() error {
	if s.journal == nil {
		return nil
	}
	recs := make([]journal.Record, 0, 2*len(s.jobOrder))
	add := func(op, id string, t time.Time, data any) {
		raw, err := json.Marshal(data)
		if err != nil {
			return
		}
		recs = append(recs, journal.Record{Op: op, JobID: id, Time: t, Data: raw})
	}
	for _, id := range s.jobOrder {
		j, ok := s.jobs[id]
		if !ok {
			continue
		}
		sub := submittedData{Request: j.Request}
		sub.TraceID, sub.SpanID, sub.ParentID = spanWire(j.span)
		add(journal.OpSubmitted, id, j.SubmittedAt, sub)
		switch {
		case j.Status.terminal():
			add(journal.OpFinished, id, j.FinishedAt, finishedData{
				Status: j.Status, Error: j.Error, CacheHit: j.CacheHit,
				Attempts: j.Attempts, ForwardedTo: j.ForwardedTo, Result: j.Result,
			})
		case j.Status == StatusRunning:
			add(journal.OpStarted, id, j.StartedAt, startedData{Attempt: j.Attempts})
		}
	}
	if err := s.journal.Rewrite(recs); err != nil {
		return err
	}
	s.metrics.journalCompactions.Add(1)
	return nil
}

// maybeCompactLocked compacts once the journal holds several times more
// records than there are retained jobs; the caller holds s.mu.
func (s *Server) maybeCompactLocked() {
	if s.journal == nil {
		return
	}
	if s.journal.Len() > 4*len(s.jobs)+16 {
		if err := s.compactLocked(); err != nil {
			s.opts.Logger.Error("journal compact failed", "err", err)
			s.metrics.journalErrors.Add(1)
		}
	}
}

// Start launches the worker pool. It is idempotent.
func (s *Server) Start() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.started {
		return
	}
	s.started = true
	for i := 0; i < s.opts.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	if s.sloEval != nil {
		s.wg.Add(1)
		go s.sloLoop()
	}
}

// sloLoop re-evaluates the SLO objectives on the configured cadence until the
// server starts draining.
func (s *Server) sloLoop() {
	defer s.wg.Done()
	t := time.NewTicker(s.opts.SLOInterval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			s.SLOTick()
		case <-s.drainCh:
			return
		}
	}
}

// SLOTick runs one SLO evaluation over the server's own metrics registry and
// publishes the resulting burn rates. It is exported so tests (and a cluster
// node wanting a fresh reading) can force an evaluation between ticker fires;
// a server without SLO evaluation returns nil.
func (s *Server) SLOTick() []slo.Status {
	if s.sloEval == nil {
		return nil
	}
	snap := s.metrics.reg.Snapshot()
	s.sloMu.Lock()
	statuses := s.sloEval.Tick(snap)
	s.sloMu.Unlock()
	for _, st := range statuses {
		s.metrics.sloBurn.With(st.Name).Set(st.MaxBurn)
		alerting := 0.0
		if st.Alerting {
			alerting = 1
		}
		s.metrics.sloAlerting.With(st.Name).Set(alerting)
	}
	return statuses
}

// SLOStatuses returns the statuses computed by the most recent evaluation
// (nil when SLO evaluation is disabled or has not ticked yet).
func (s *Server) SLOStatuses() []slo.Status {
	if s.sloEval == nil {
		return nil
	}
	s.sloMu.Lock()
	defer s.sloMu.Unlock()
	return s.sloEval.Statuses()
}

// Shutdown gracefully stops the server: no new submissions are accepted,
// queued and running jobs are drained (jobs waiting in retry backoff are
// failed), and when ctx expires before the drain completes the remaining
// jobs are hard-cancelled (still waiting for them to unwind). The journal,
// if any, is closed last. Safe to call more than once.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		close(s.queue)
		close(s.drainCh)
	}
	started := s.started
	s.mu.Unlock()
	if !started {
		if s.journal != nil {
			return s.journal.Close()
		}
		return nil
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		// Abort running simulations; they poll their context and unwind in
		// microseconds, so this second wait is short.
		s.baseCancel()
		<-done
		err = ctx.Err()
	}
	if s.journal != nil {
		if cerr := s.journal.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	return err
}

// lookup resolves a kernel abbreviation against the catalogue.
func (s *Server) lookup(abbr string) (kernels.Profile, bool) {
	for _, p := range s.opts.Catalogue {
		if p.Abbr == abbr {
			return p, true
		}
	}
	return kernels.Profile{}, false
}

// submit registers and enqueues a job built from req. It returns the job,
// or an error classified by the caller into an HTTP status: ErrQueueFull,
// ErrShed, ErrDraining, ErrJournal, or a validation error.
//
// Ordering is write-ahead: the submitted record is committed to the journal
// before the job becomes visible, so an accepted job always survives a
// crash. Queue capacity is checked under the mutex first (all queue sends
// hold it), which keeps the journal free of records for rejected jobs.
func (s *Server) submit(req JobRequest) (*Job, error) {
	return s.submitSpan(req, telemetry.SpanContext{})
}

// submitSpan is submit continuing the caller's trace context; a zero parent
// starts a new trace.
func (s *Server) submitSpan(req JobRequest, parent telemetry.SpanContext) (*Job, error) {
	pl, err := s.buildPlan(req)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return nil, ErrDraining
	}
	if len(s.queue) == cap(s.queue) {
		s.metrics.jobsRejected.Add(1)
		return nil, ErrQueueFull
	}
	if len(s.queue) >= s.opts.ShedHighWater {
		// Over the high-water mark only already-cached (cheap) submissions
		// are admitted: graceful degradation sheds the expensive work first.
		key := simcache.Key(s.opts.Cfg, pl.profiles, pl.alloc, pl.cycles, pl.seed, pl.variant())
		if !s.cache.Peek(key) {
			s.metrics.jobsShed.Add(1)
			return nil, ErrShed
		}
	}
	s.nextID++
	job := &Job{
		ID:          fmt.Sprintf("%sjob-%d", s.idPrefix(), s.nextID),
		Request:     req,
		Status:      StatusQueued,
		SubmittedAt: time.Now(),
		plan:        pl,
		// Every job gets a span: a child of the caller's context when the
		// request carried trace headers (or arrived via a forwarding peer),
		// a fresh root otherwise.
		span: s.spans.Child(parent),
		done: make(chan struct{}),
	}
	if s.opts.TraceEvents > 0 {
		job.tracer = telemetry.New(s.opts.TraceEvents)
		job.emit(s.opts.NodeID, telemetry.Event{
			Kind: telemetry.KindJobQueued, Wall: job.SubmittedAt.UnixNano(),
			App: -1, SM: -1, Job: job.ID,
		})
	}
	sub := submittedData{Request: req}
	sub.TraceID, sub.SpanID, sub.ParentID = spanWire(job.span)
	if err := s.appendJournalBounded(journal.OpSubmitted, job.ID, sub); err != nil {
		s.nextID--
		s.metrics.journalErrors.Add(1)
		return nil, fmt.Errorf("%w: %v", ErrJournal, err)
	}
	s.queue <- job
	s.jobs[job.ID] = job
	s.jobOrder = append(s.jobOrder, job.ID)
	s.evictJobRecordsLocked()
	s.metrics.jobsSubmitted.Add(1)
	return job, nil
}

// evictJobRecordsLocked forgets the oldest terminal job records beyond
// MaxJobs; the caller holds s.mu.
func (s *Server) evictJobRecordsLocked() {
	for len(s.jobs) > s.opts.MaxJobs {
		evicted := false
		for i, id := range s.jobOrder {
			j, ok := s.jobs[id]
			if !ok {
				continue
			}
			if j.Status.terminal() {
				delete(s.jobs, id)
				s.jobOrder = append(s.jobOrder[:i], s.jobOrder[i+1:]...)
				evicted = true
				break
			}
		}
		if !evicted {
			return // everything live; keep the records
		}
	}
}

// cancelJob cancels a queued or running job. It reports whether the job
// exists and whether it could be cancelled.
func (s *Server) cancelJob(id string) (found, canceled bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	job, ok := s.jobs[id]
	if !ok {
		return false, false
	}
	switch job.Status {
	case StatusQueued:
		// The worker (or the retry requeue, if the job was in backoff) will
		// observe the status and skip it.
		job.Status = StatusCanceled
		job.Error = "canceled"
		job.FinishedAt = time.Now()
		close(job.done)
		s.metrics.jobsCanceled.Add(1)
		job.emit(s.opts.NodeID, telemetry.Event{
			Kind: telemetry.KindJobDone, Wall: job.FinishedAt.UnixNano(),
			App: -1, SM: -1, Job: job.ID, Note: string(StatusCanceled),
		})
		if err := s.appendJournalBounded(journal.OpCanceled, job.ID, nil); err != nil {
			s.metrics.journalErrors.Add(1)
			s.opts.Logger.Error("journal append canceled failed", "job", job.ID, "err", err)
		}
		return true, true
	case StatusRunning:
		job.cancel()
		return true, true
	default:
		return true, false
	}
}

// getJob returns the job record for id.
func (s *Server) getJob(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// idPrefix is the job-ID prefix implied by NodeID ("" single-node,
// "<node>-" in a cluster).
func (s *Server) idPrefix() string {
	if s.opts.NodeID == "" {
		return ""
	}
	return s.opts.NodeID + "-"
}

// NodeID returns the configured node identity ("" single-node).
func (s *Server) NodeID() string { return s.opts.NodeID }

// Submit validates, registers and enqueues a job, returning its view. It is
// the in-process equivalent of POST /v1/jobs; map errors to HTTP statuses
// with SubmitStatus. The cluster layer calls it for locally-routed work.
func (s *Server) Submit(req JobRequest) (JobView, error) {
	return s.SubmitWithSpan(req, telemetry.SpanContext{})
}

// SubmitWithSpan is Submit continuing an existing trace: the job's span
// becomes a child of parent, so a forwarded, stolen or handed-off job stays
// on the timeline the submitting node started. A zero parent starts a new
// trace.
func (s *Server) SubmitWithSpan(req JobRequest, parent telemetry.SpanContext) (JobView, error) {
	job, err := s.submitSpan(req, parent)
	if err != nil {
		return JobView{}, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return job.view(), nil
}

// JobSpan returns a job's trace context, for layers that relay the job
// onwards (the cluster's steal response carries it to the thief).
func (s *Server) JobSpan(id string) (telemetry.SpanContext, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return telemetry.SpanContext{}, false
	}
	return j.span, true
}

// View returns the view of one job.
func (s *Server) View(id string) (JobView, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return JobView{}, false
	}
	return j.view(), true
}

// Views returns every retained job view in submission order.
func (s *Server) Views() []JobView {
	s.mu.Lock()
	defer s.mu.Unlock()
	views := make([]JobView, 0, len(s.jobOrder))
	for _, id := range s.jobOrder {
		if j, ok := s.jobs[id]; ok {
			views = append(views, j.view())
		}
	}
	return views
}

// QueueLen reports how many jobs are waiting in the queue; heartbeats carry
// it so peers can steal from saturated nodes.
func (s *Server) QueueLen() int { return len(s.queue) }

// RouteKey returns the content address of the request's main simulation —
// the same key the result cache uses — or a validation error. The cluster
// layer consistent-hashes it so identical submissions land on (and share the
// cache of) one node.
func (s *Server) RouteKey(req JobRequest) (string, error) {
	pl, err := s.buildPlan(req)
	if err != nil {
		return "", err
	}
	return simcache.Key(s.opts.Cfg, pl.profiles, pl.alloc, pl.cycles, pl.seed, pl.variant()), nil
}

// SeedResult inserts a finished job's simulation result into the cache
// without running anything, reporting whether it was new. Hand-off uses it
// to preserve a dead node's completed work; reconciliation after a
// partition uses the report to count duplicated effort.
func (s *Server) SeedResult(req JobRequest, res *JobResult) bool {
	if res == nil || res.Sim == nil {
		return false
	}
	key, err := s.RouteKey(req)
	if err != nil {
		return false
	}
	return s.cache.PutIfAbsent(key, res.Sim)
}

// AddReadinessCheck registers an extra named condition /readyz requires; fn
// must be safe for concurrent use and return nil when ready. The cluster
// layer registers its quorum check here. Register before serving traffic.
func (s *Server) AddReadinessCheck(name string, fn func() error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.readyChecks = append(s.readyChecks, readyCheck{name: name, fn: fn})
}

// Ready reports whether the node should receive traffic: nil when ready, or
// the first failing condition. Distinct from liveness (/healthz): a node
// that has not finished starting, is draining, or has lost its quorum is
// alive but must not be routed to.
func (s *Server) Ready() error {
	s.mu.Lock()
	started, draining := s.started, s.draining
	checks := append([]readyCheck(nil), s.readyChecks...)
	s.mu.Unlock()
	if !started {
		return fmt.Errorf("not started: journal replay or warm-up in progress")
	}
	if draining {
		return fmt.Errorf("draining")
	}
	for _, c := range checks {
		if err := c.fn(); err != nil {
			return fmt.Errorf("%s: %w", c.name, err)
		}
	}
	return nil
}

// MetricsRegistry exposes the server's telemetry registry so co-located
// layers (the cluster node) can register their metrics on the same /metrics
// endpoint.
func (s *Server) MetricsRegistry() *telemetry.Registry { return s.metrics.reg }

// Kill emulates a process kill for tests and abrupt teardown: the journal is
// closed first (no further lifecycle transitions are committed, exactly like
// losing the process), then intake stops and running work is cancelled.
// In-memory state keeps mutating while the workers unwind, but those
// mutations are lost to the journal — only what Append had already fsynced
// survives, which is the point.
func (s *Server) Kill() {
	if s.journal != nil {
		_ = s.journal.Close()
	}
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		close(s.queue)
		close(s.drainCh)
	}
	s.mu.Unlock()
	s.baseCancel()
	s.wg.Wait()
}

// JournaledJob is one job reconstructed from another node's journal records
// during hand-off.
type JournaledJob struct {
	ID       string
	Request  JobRequest
	Status   Status
	Result   *JobResult
	Terminal bool
	// Span is the job's trace context as journaled at submission; re-running
	// the job elsewhere continues its original timeline.
	Span telemetry.SpanContext
}

// ExtractJournalJobs reconstructs job states from raw journal records using
// the server's payload schema — the read-side twin of replay, exported so
// the cluster hand-off can interpret a claimed journal. Jobs whose submitted
// record is missing (torn prefix) are dropped; a job with no finished or
// canceled record is non-terminal and must be re-run somewhere.
func ExtractJournalJobs(records []journal.Record) []JournaledJob {
	type state struct {
		req     JobRequest
		haveReq bool
		span    telemetry.SpanContext
		fin     *finishedData
	}
	states := map[string]*state{}
	var order []string
	for _, rec := range records {
		st, ok := states[rec.JobID]
		if !ok {
			st = &state{}
			states[rec.JobID] = st
			order = append(order, rec.JobID)
		}
		switch rec.Op {
		case journal.OpSubmitted:
			var d submittedData
			if json.Unmarshal(rec.Data, &d) == nil {
				st.req, st.haveReq = d.Request, true
				st.span = spanFromWire(d.TraceID, d.SpanID, d.ParentID)
			}
		case journal.OpFinished:
			var d finishedData
			if json.Unmarshal(rec.Data, &d) == nil {
				st.fin = &d
			}
		case journal.OpCanceled:
			st.fin = &finishedData{Status: StatusCanceled}
		}
	}
	var out []JournaledJob
	for _, id := range order {
		st := states[id]
		if !st.haveReq {
			continue
		}
		jj := JournaledJob{ID: id, Request: st.req, Status: StatusQueued, Span: st.span}
		if st.fin != nil {
			jj.Status = st.fin.Status
			jj.Result = st.fin.Result
			jj.Terminal = st.fin.Status.terminal()
		}
		out = append(out, jj)
	}
	return out
}
