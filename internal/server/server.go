// Package server exposes the simulator as a long-running service: a JSON
// HTTP API that accepts simulation jobs, runs them on a bounded worker pool
// with a FIFO queue, serves repeated queries from a content-addressed result
// cache, and reports health and Prometheus metrics. It turns the one-shot
// CLI reproduction into something continuously queryable — the production
// posture that run-time slowdown estimators are designed for.
//
// Robustness properties:
//
//   - a full queue rejects submissions with 429 instead of blocking;
//   - each job runs under a context with a per-job timeout, and client
//     cancellation (DELETE) aborts queued and running jobs;
//   - a panicking simulation fails its job, not the process;
//   - Shutdown stops intake, drains queued and running jobs, and
//     hard-cancels whatever is still running when its context expires.
package server

import (
	"context"
	"fmt"
	"log"
	"runtime"
	"sync"
	"time"

	"dasesim/internal/config"
	"dasesim/internal/kernels"
	"dasesim/internal/simcache"
)

// Options configure a Server; zero fields take the documented defaults.
type Options struct {
	// Cfg is the simulated GPU (default: config.Default(), the paper's
	// Table II device). Validated at construction.
	Cfg config.Config
	// Catalogue are the kernels jobs may reference (default: kernels.All()).
	Catalogue []kernels.Profile
	// Workers is the simulation worker-pool size (default: GOMAXPROCS).
	Workers int
	// QueueDepth bounds the FIFO job queue; submissions beyond it get 429
	// (default: 64).
	QueueDepth int
	// JobTimeout caps each job's wall time (default: 2m). Requests may
	// shorten but not extend it.
	JobTimeout time.Duration
	// DefaultCycles is the budget for requests that omit cycles (default:
	// 300000, matching cmd/dasesim).
	DefaultCycles uint64
	// MaxCycles rejects outsized budgets at submission (default: 20000000).
	MaxCycles uint64
	// CacheEntries bounds the result cache (default:
	// simcache.DefaultMaxEntries).
	CacheEntries int
	// MaxJobs bounds the retained job records; the oldest terminal jobs are
	// forgotten beyond it (default: 4096).
	MaxJobs int
	// Logger receives request and job logs (default: log.Default()). Use
	// log.New(io.Discard, "", 0) to silence.
	Logger *log.Logger
}

// withDefaults fills unset options.
func (o Options) withDefaults() Options {
	if o.Cfg.NumSMs == 0 {
		o.Cfg = config.Default()
	}
	if o.Catalogue == nil {
		o.Catalogue = kernels.All()
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 64
	}
	if o.JobTimeout <= 0 {
		o.JobTimeout = 2 * time.Minute
	}
	if o.DefaultCycles == 0 {
		o.DefaultCycles = 300_000
	}
	if o.MaxCycles == 0 {
		o.MaxCycles = 20_000_000
	}
	if o.MaxJobs <= 0 {
		o.MaxJobs = 4096
	}
	if o.Logger == nil {
		o.Logger = log.Default()
	}
	return o
}

// Server is the simulation-as-a-service daemon core. Construct with New,
// start the worker pool with Start, serve Handler over HTTP, and stop with
// Shutdown.
type Server struct {
	opts    Options
	cache   *simcache.Memory
	metrics *Metrics
	queue   chan *Job

	baseCtx    context.Context
	baseCancel context.CancelFunc
	wg         sync.WaitGroup

	mu       sync.Mutex
	jobs     map[string]*Job
	jobOrder []string // submission order, for listing and record eviction
	nextID   uint64
	draining bool
	started  bool
}

// New builds a Server with the given options.
func New(opts Options) (*Server, error) {
	opts = opts.withDefaults()
	if err := opts.Cfg.Validate(); err != nil {
		return nil, fmt.Errorf("server: %w", err)
	}
	if len(opts.Catalogue) == 0 {
		return nil, fmt.Errorf("server: empty kernel catalogue")
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		opts:       opts,
		cache:      simcache.NewMemory(opts.CacheEntries),
		queue:      make(chan *Job, opts.QueueDepth),
		baseCtx:    ctx,
		baseCancel: cancel,
		jobs:       map[string]*Job{},
	}
	s.metrics = newMetrics(
		func() int { return len(s.queue) },
		func() (uint64, uint64, uint64, int) {
			st := s.cache.Stats()
			return st.Hits, st.Misses, st.Evictions, st.Entries
		},
	)
	return s, nil
}

// Start launches the worker pool. It is idempotent.
func (s *Server) Start() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.started {
		return
	}
	s.started = true
	for i := 0; i < s.opts.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
}

// Shutdown gracefully stops the server: no new submissions are accepted,
// queued and running jobs are drained, and when ctx expires before the
// drain completes the remaining jobs are hard-cancelled (still waiting for
// them to unwind). Safe to call more than once.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		close(s.queue)
	}
	started := s.started
	s.mu.Unlock()
	if !started {
		return nil
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		// Abort running simulations; they poll their context and unwind in
		// microseconds, so this second wait is short.
		s.baseCancel()
		<-done
		return ctx.Err()
	}
}

// lookup resolves a kernel abbreviation against the catalogue.
func (s *Server) lookup(abbr string) (kernels.Profile, bool) {
	for _, p := range s.opts.Catalogue {
		if p.Abbr == abbr {
			return p, true
		}
	}
	return kernels.Profile{}, false
}

// submit registers and enqueues a job built from req. It returns the job,
// or an error classified by the caller into an HTTP status: errQueueFull,
// errDraining, or a validation error.
func (s *Server) submit(req JobRequest) (*Job, error) {
	pl, err := s.buildPlan(req)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return nil, errDraining
	}
	s.nextID++
	job := &Job{
		ID:          fmt.Sprintf("job-%d", s.nextID),
		Request:     req,
		Status:      StatusQueued,
		SubmittedAt: time.Now(),
		plan:        pl,
		done:        make(chan struct{}),
	}
	select {
	case s.queue <- job:
	default:
		s.metrics.jobsRejected.Add(1)
		return nil, errQueueFull
	}
	s.jobs[job.ID] = job
	s.jobOrder = append(s.jobOrder, job.ID)
	s.evictJobRecordsLocked()
	s.metrics.jobsSubmitted.Add(1)
	return job, nil
}

// evictJobRecordsLocked forgets the oldest terminal job records beyond
// MaxJobs; the caller holds s.mu.
func (s *Server) evictJobRecordsLocked() {
	for len(s.jobs) > s.opts.MaxJobs {
		evicted := false
		for i, id := range s.jobOrder {
			j, ok := s.jobs[id]
			if !ok {
				continue
			}
			if j.Status.terminal() {
				delete(s.jobs, id)
				s.jobOrder = append(s.jobOrder[:i], s.jobOrder[i+1:]...)
				evicted = true
				break
			}
		}
		if !evicted {
			return // everything live; keep the records
		}
	}
}

// cancelJob cancels a queued or running job. It reports whether the job
// exists and whether it could be cancelled.
func (s *Server) cancelJob(id string) (found, canceled bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	job, ok := s.jobs[id]
	if !ok {
		return false, false
	}
	switch job.Status {
	case StatusQueued:
		// The worker will observe the status and skip it.
		job.Status = StatusCanceled
		job.Error = "canceled"
		job.FinishedAt = time.Now()
		close(job.done)
		s.metrics.jobsCanceled.Add(1)
		return true, true
	case StatusRunning:
		job.cancel()
		return true, true
	default:
		return true, false
	}
}

// getJob returns the job record for id.
func (s *Server) getJob(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// logf writes one structured log line.
func (s *Server) logf(format string, args ...any) {
	s.opts.Logger.Printf("dased "+format, args...)
}
