package server

import (
	"fmt"
	"io"
	"math"
	"sync/atomic"
	"time"
)

// Metrics aggregates the daemon's observability counters and renders them in
// Prometheus text exposition format. Counters are atomics so job workers
// never contend; gauges that mirror live state (queue depth, cache fill) are
// read through callbacks at scrape time.
type Metrics struct {
	start time.Time

	jobsSubmitted atomic.Uint64
	jobsCompleted atomic.Uint64
	jobsFailed    atomic.Uint64
	jobsCanceled  atomic.Uint64
	jobsRejected  atomic.Uint64 // queue-full 429s
	jobsShed      atomic.Uint64 // admission control: non-cached work refused over the high-water mark
	jobRetries    atomic.Uint64 // transient failures scheduled for another attempt
	jobsRunning   atomic.Int64

	journalReplayed    atomic.Uint64 // jobs restored from the journal at startup
	journalErrors      atomic.Uint64 // journal appends/compactions that failed
	journalCompactions atomic.Uint64

	simCycles atomic.Uint64 // cycles actually simulated (cache hits excluded)

	jobSeconds atomic.Uint64 // float64 bits; total wall time of finished jobs
	jobCount   atomic.Uint64

	queueDepth     func() int
	cacheStats     func() (hits, misses, evictions uint64, entries int)
	journalRecords func() int // nil when no journal is configured
}

func newMetrics(queueDepth func() int, cacheStats func() (uint64, uint64, uint64, int)) *Metrics {
	return &Metrics{start: time.Now(), queueDepth: queueDepth, cacheStats: cacheStats}
}

// observeJob records one finished job's wall time.
func (m *Metrics) observeJob(d time.Duration) {
	for {
		old := m.jobSeconds.Load()
		next := math.Float64bits(math.Float64frombits(old) + d.Seconds())
		if m.jobSeconds.CompareAndSwap(old, next) {
			break
		}
	}
	m.jobCount.Add(1)
}

// WritePrometheus renders all metrics in Prometheus text format.
func (m *Metrics) WritePrometheus(w io.Writer) {
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v float64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
	}
	counter("dased_jobs_submitted_total", "Jobs accepted into the queue.", m.jobsSubmitted.Load())
	counter("dased_jobs_completed_total", "Jobs finished successfully.", m.jobsCompleted.Load())
	counter("dased_jobs_failed_total", "Jobs that errored, timed out or panicked.", m.jobsFailed.Load())
	counter("dased_jobs_canceled_total", "Jobs canceled by clients.", m.jobsCanceled.Load())
	counter("dased_jobs_rejected_total", "Submissions rejected with 429 (queue full).", m.jobsRejected.Load())
	counter("dased_jobs_shed_total", "Non-cached submissions shed over the queue high-water mark.", m.jobsShed.Load())
	counter("dased_job_retries_total", "Job attempts rescheduled after a transient failure.", m.jobRetries.Load())
	counter("dased_journal_replayed_total", "Jobs restored from the journal at startup.", m.journalReplayed.Load())
	counter("dased_journal_errors_total", "Journal operations that failed.", m.journalErrors.Load())
	counter("dased_journal_compactions_total", "Journal snapshot rewrites.", m.journalCompactions.Load())
	if m.journalRecords != nil {
		gauge("dased_journal_records", "Records in the journal file.", float64(m.journalRecords()))
	}
	hits, misses, evictions, entries := m.cacheStats()
	counter("dased_cache_hits_total", "Result-cache lookups served without simulating.", hits)
	counter("dased_cache_misses_total", "Result-cache lookups that simulated.", misses)
	counter("dased_cache_evictions_total", "Result-cache entries evicted by the size bound.", evictions)
	gauge("dased_cache_entries", "Resident result-cache entries.", float64(entries))
	gauge("dased_queue_depth", "Jobs waiting in the queue.", float64(m.queueDepth()))
	gauge("dased_jobs_running", "Jobs currently executing.", float64(m.jobsRunning.Load()))
	counter("dased_sim_cycles_total", "GPU cycles simulated (cache hits excluded).", m.simCycles.Load())
	fmt.Fprintf(w, "# HELP dased_job_wall_seconds Total wall time of finished jobs.\n# TYPE dased_job_wall_seconds summary\n")
	fmt.Fprintf(w, "dased_job_wall_seconds_sum %g\n", math.Float64frombits(m.jobSeconds.Load()))
	fmt.Fprintf(w, "dased_job_wall_seconds_count %d\n", m.jobCount.Load())
	gauge("dased_uptime_seconds", "Seconds since the server started.", time.Since(m.start).Seconds())
}
