package server

import (
	"io"
	"runtime"
	"runtime/debug"
	"strconv"
	"time"

	"dasesim/internal/telemetry"
)

// Metrics aggregates the daemon's observability signals on a
// telemetry.Registry: counters and histograms updated by job workers without
// contention, plus scrape-time callbacks mirroring live state (queue depth,
// cache fill, journal size). Exposed names are stable across the move from
// the old hand-rolled exposition code; the dased_job_wall_seconds summary
// became the dased_job_duration_seconds histogram.
type Metrics struct {
	start time.Time
	reg   *telemetry.Registry

	jobsSubmitted *telemetry.Counter
	jobsCompleted *telemetry.Counter
	jobsFailed    *telemetry.Counter
	jobsCanceled  *telemetry.Counter
	jobsRejected  *telemetry.Counter // queue-full 429s
	jobsShed      *telemetry.Counter // admission control: non-cached work refused over the high-water mark
	jobRetries    *telemetry.Counter // transient failures scheduled for another attempt
	jobsForwarded *telemetry.Counter // queued jobs given away to a stealing peer
	jobsRunning   *telemetry.Gauge

	journalReplayed    *telemetry.Counter // jobs restored from the journal at startup
	journalErrors      *telemetry.Counter // journal appends/compactions that failed
	journalCompactions *telemetry.Counter

	simCycles *telemetry.Counter // cycles actually simulated (cache hits excluded)

	queueWait   *telemetry.Histogram // submission to first execution
	jobDuration *telemetry.Histogram // wall time of finished jobs
	estError    *telemetry.Histogram // |est-actual|/actual per DASE interval

	estRequests *telemetry.Counter   // snapshots served by the online estimation API
	estRejected *telemetry.Counter   // estimation requests refused (malformed or invalid input)
	estStreams  *telemetry.Gauge     // NDJSON estimation streams in flight
	estLatency  *telemetry.Histogram // per-body estimation service time (transport excluded)
	estBatch    *telemetry.Histogram // snapshots per estimation body

	sloBurn     *telemetry.GaugeVec // max burn rate per objective, from the last SLO tick; nil without SLO evaluation
	sloAlerting *telemetry.GaugeVec // 1 while an objective's burn-rate alert fires; nil without SLO evaluation
}

func newMetrics(queueDepth func() int, cacheStats func() (uint64, uint64, uint64, int)) *Metrics {
	reg := telemetry.NewRegistry()
	m := &Metrics{start: time.Now(), reg: reg}

	m.jobsSubmitted = reg.Counter("dased_jobs_submitted_total", "Jobs accepted into the queue.")
	m.jobsCompleted = reg.Counter("dased_jobs_completed_total", "Jobs finished successfully.")
	m.jobsFailed = reg.Counter("dased_jobs_failed_total", "Jobs that errored, timed out or panicked.")
	m.jobsCanceled = reg.Counter("dased_jobs_canceled_total", "Jobs canceled by clients.")
	m.jobsRejected = reg.Counter("dased_jobs_rejected_total", "Submissions rejected with 429 (queue full).")
	m.jobsShed = reg.Counter("dased_jobs_shed_total", "Non-cached submissions shed over the queue high-water mark.")
	m.jobRetries = reg.Counter("dased_job_retries_total", "Job attempts rescheduled after a transient failure.")
	m.jobsForwarded = reg.Counter("dased_jobs_forwarded_total", "Queued jobs given away to a stealing cluster peer.")
	m.jobsRunning = reg.Gauge("dased_jobs_running", "Jobs currently executing.")

	m.journalReplayed = reg.Counter("dased_journal_replayed_total", "Jobs restored from the journal at startup.")
	m.journalErrors = reg.Counter("dased_journal_errors_total", "Journal operations that failed.")
	m.journalCompactions = reg.Counter("dased_journal_compactions_total", "Journal snapshot rewrites.")

	m.simCycles = reg.Counter("dased_sim_cycles_total", "GPU cycles simulated (cache hits excluded).")

	m.queueWait = reg.Histogram("dased_queue_wait_seconds",
		"Time jobs spent queued before their first execution attempt.",
		0.001, 0.005, 0.025, 0.1, 0.5, 2.5, 10, 60)
	m.jobDuration = reg.Histogram("dased_job_duration_seconds",
		"Wall time of finished jobs.",
		0.001, 0.005, 0.025, 0.1, 0.5, 2.5, 10, 60)
	m.estError = reg.Histogram("dased_estimation_error",
		"Per-interval relative error of the DASE slowdown estimate against the measured slowdown.",
		0.05, 0.1, 0.15, 0.2, 0.3, 0.5, 1)

	m.estRequests = reg.Counter("dased_estimate_requests_total", "Counter snapshots estimated by the online API.")
	m.estRejected = reg.Counter("dased_estimate_rejected_total", "Estimation requests rejected for malformed or invalid input.")
	m.estStreams = reg.Gauge("dased_estimate_streams_active", "NDJSON estimation streams currently open.")
	m.estLatency = reg.Histogram("dased_estimate_latency_seconds",
		"Service time of one estimation body, decode to encode (HTTP transport excluded).",
		0.000001, 0.0000025, 0.000005, 0.00001, 0.000025, 0.00005, 0.0001, 0.00025, 0.001, 0.005)
	m.estBatch = reg.Histogram("dased_estimate_batch_size",
		"Snapshots per estimation request body.",
		1, 2, 4, 8, 16, 32, 64)

	reg.GaugeFunc("dased_queue_depth", "Jobs waiting in the queue.",
		func() float64 { return float64(queueDepth()) })
	reg.CounterFunc("dased_cache_hits_total", "Result-cache lookups served without simulating.",
		func() float64 { h, _, _, _ := cacheStats(); return float64(h) })
	reg.CounterFunc("dased_cache_misses_total", "Result-cache lookups that simulated.",
		func() float64 { _, mi, _, _ := cacheStats(); return float64(mi) })
	reg.CounterFunc("dased_cache_evictions_total", "Result-cache entries evicted by the size bound.",
		func() float64 { _, _, e, _ := cacheStats(); return float64(e) })
	reg.GaugeFunc("dased_cache_entries", "Resident result-cache entries.",
		func() float64 { _, _, _, n := cacheStats(); return float64(n) })
	reg.GaugeFunc("dased_uptime_seconds", "Seconds since the server started.",
		func() float64 { return time.Since(m.start).Seconds() })

	buildInfo := reg.GaugeVec("dased_build_info",
		"Build metadata; the value is always 1.",
		"go_version", "module_version", "gomaxprocs")
	buildInfo.With(runtime.Version(), moduleVersion(), strconv.Itoa(runtime.GOMAXPROCS(0))).Set(1)

	return m
}

// moduleVersion reports the main module's version from the embedded build
// info ("(devel)" for plain go-build binaries, "unknown" in tests).
func moduleVersion() string {
	if bi, ok := debug.ReadBuildInfo(); ok && bi.Main.Version != "" {
		return bi.Main.Version
	}
	return "unknown"
}

// initSLO registers the SLO gauge families and seeds one zero-valued child
// per objective; called once at construction so servers without SLO
// evaluation don't export empty families.
func (m *Metrics) initSLO(objectiveNames []string) {
	m.sloBurn = m.reg.GaugeVec("dased_slo_burn_rate",
		"Highest error-budget burn rate across an objective's alert windows (1 = budget spent exactly on schedule).",
		"objective")
	m.sloAlerting = m.reg.GaugeVec("dased_slo_alerting",
		"1 while an objective's multi-window burn-rate alert is firing.",
		"objective")
	for _, name := range objectiveNames {
		m.sloBurn.With(name).Set(0)
		m.sloAlerting.With(name).Set(0)
	}
}

// setJournalRecords exposes the journal's record count; called once when the
// journal is opened so servers without one don't export the gauge.
func (m *Metrics) setJournalRecords(fn func() int) {
	m.reg.GaugeFunc("dased_journal_records", "Records in the journal file.",
		func() float64 { return float64(fn()) })
}

// observeJob records one finished job's wall time.
func (m *Metrics) observeJob(d time.Duration) {
	m.jobDuration.Observe(d.Seconds())
}

// WritePrometheus renders all metrics in Prometheus text format.
func (m *Metrics) WritePrometheus(w io.Writer) {
	m.reg.WritePrometheus(w)
}
