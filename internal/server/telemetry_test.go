package server

import (
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dasesim/internal/telemetry"
)

// promFamily is one parsed metric family from text exposition output.
type promFamily struct {
	typ     string
	samples int
}

// parsePrometheus is a small text-exposition parser: it checks line-level
// syntax (HELP/TYPE comments, `name{labels} value` samples) and returns the
// families with their sample counts.
func parsePrometheus(t *testing.T, text string) map[string]*promFamily {
	t.Helper()
	fams := map[string]*promFamily{}
	var cur string
	for ln, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		switch {
		case strings.HasPrefix(line, "# HELP "):
			rest := strings.TrimPrefix(line, "# HELP ")
			name, _, ok := strings.Cut(rest, " ")
			if !ok {
				t.Fatalf("line %d: HELP without text: %q", ln+1, line)
			}
			cur = name
			if fams[name] == nil {
				fams[name] = &promFamily{}
			}
		case strings.HasPrefix(line, "# TYPE "):
			rest := strings.TrimPrefix(line, "# TYPE ")
			name, typ, ok := strings.Cut(rest, " ")
			if !ok || name != cur {
				t.Fatalf("line %d: TYPE out of order or malformed: %q", ln+1, line)
			}
			switch typ {
			case "counter", "gauge", "histogram", "summary":
			default:
				t.Fatalf("line %d: unknown metric type %q", ln+1, typ)
			}
			fams[name].typ = typ
		case strings.HasPrefix(line, "#"):
			t.Fatalf("line %d: unknown comment %q", ln+1, line)
		default:
			name := line
			if i := strings.IndexAny(line, "{ "); i >= 0 {
				name = line[:i]
			}
			// Histogram children report under <name>_bucket/_sum/_count.
			base := name
			for _, suffix := range []string{"_bucket", "_sum", "_count"} {
				trimmed := strings.TrimSuffix(name, suffix)
				if trimmed != name && fams[trimmed] != nil && fams[trimmed].typ == "histogram" {
					base = trimmed
					break
				}
			}
			fam := fams[base]
			if fam == nil {
				t.Fatalf("line %d: sample %q without a preceding HELP/TYPE", ln+1, line)
			}
			fields := strings.Fields(line[strings.IndexAny(line, " "):])
			if len(fields) != 1 {
				t.Fatalf("line %d: want `name value`: %q", ln+1, line)
			}
			fam.samples++
		}
	}
	return fams
}

// TestMetricsExposition asserts that every family the registry knows is
// exposed with a correct TYPE line and at least one sample.
func TestMetricsExposition(t *testing.T) {
	s, ts := newTestServer(t, Options{Workers: 1})
	v, _ := postJob(t, ts, JobRequest{Kernels: []string{"SB", "SD"}})
	waitDone(t, ts, v.ID)

	text := fetchMetrics(t, ts)
	fams := parsePrometheus(t, text)

	for _, f := range s.metrics.reg.Families() {
		got := fams[f.Name]
		if got == nil {
			t.Errorf("registered metric %s missing from exposition", f.Name)
			continue
		}
		if got.typ != f.Type {
			t.Errorf("metric %s exposed as %s, want %s", f.Name, got.typ, f.Type)
		}
		if got.samples == 0 {
			t.Errorf("metric %s has no samples", f.Name)
		}
	}
	// Spot checks: histogram anatomy and build info.
	for _, want := range []string{
		`dased_job_duration_seconds_bucket{le="+Inf"} 1`,
		"dased_job_duration_seconds_count 1",
		"dased_queue_wait_seconds_count 1",
		`dased_build_info{go_version="go`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	if strings.Contains(text, "dased_journal_records") {
		t.Error("journal gauge exposed without a journal configured")
	}
}

// TestTracedJobEndToEnd runs a DASE-Fair slowdowns job on a tracing server
// and checks both trace formats, the trace file, and the estimation-error
// histogram.
func TestTracedJobEndToEnd(t *testing.T) {
	dir := t.TempDir()
	s, ts := newTestServer(t, Options{
		Workers: 1, TraceDir: dir, DefaultCycles: 120_000,
	})
	v, _ := postJob(t, ts, JobRequest{
		Kernels: []string{"VA", "CT"}, Policy: "fair", Slowdowns: true,
	})
	final := waitDone(t, ts, v.ID)
	if final.Status != StatusDone {
		t.Fatalf("job status %s: %s", final.Status, final.Error)
	}

	// NDJSON: lifecycle + engine + estimator events, ground truth included.
	resp, err := http.Get(fmt.Sprintf("%s/v1/jobs/%s/trace?format=ndjson", ts.URL, v.ID))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace status %d", resp.StatusCode)
	}
	events, err := telemetry.ReadNDJSON(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	kinds := map[telemetry.Kind]int{}
	for _, e := range events {
		kinds[e.Kind]++
	}
	for _, k := range []telemetry.Kind{
		telemetry.KindJobQueued, telemetry.KindJobStarted, telemetry.KindJobDone,
		telemetry.KindInterval, telemetry.KindDASEApp, telemetry.KindSchedDecision,
		telemetry.KindActual,
	} {
		if kinds[k] == 0 {
			t.Errorf("trace has no %s events", k)
		}
	}
	if tls := telemetry.ErrorTimeline(events); len(tls) != 2 {
		t.Errorf("%d app timelines from the served trace, want 2", len(tls))
	}

	// Chrome format (the default) passes the schema validator.
	resp2, err := http.Get(fmt.Sprintf("%s/v1/jobs/%s/trace", ts.URL, v.ID))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	chrome, _ := io.ReadAll(resp2.Body)
	if err := telemetry.ValidateChromeTrace(chrome); err != nil {
		t.Fatalf("served chrome trace invalid: %v", err)
	}

	// The trace file landed in TraceDir and validates too.
	data, err := os.ReadFile(filepath.Join(dir, v.ID+".trace.json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := telemetry.ValidateChromeTrace(data); err != nil {
		t.Fatalf("trace file invalid: %v", err)
	}

	// Slowdowns were computed, so the estimation-error histogram filled.
	if s.metrics.estError.Count() == 0 {
		t.Error("estimation-error histogram empty after a slowdowns job")
	}

	// An unknown format is a 400; an untraced server 404s the endpoint.
	resp3, err := http.Get(fmt.Sprintf("%s/v1/jobs/%s/trace?format=pdf", ts.URL, v.ID))
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown format: status %d, want 400", resp3.StatusCode)
	}

	_, ts2 := newTestServer(t, Options{Workers: 1})
	v2, _ := postJob(t, ts2, JobRequest{Kernels: []string{"SB"}})
	waitDone(t, ts2, v2.ID)
	resp4, err := http.Get(fmt.Sprintf("%s/v1/jobs/%s/trace", ts2.URL, v2.ID))
	if err != nil {
		t.Fatal(err)
	}
	resp4.Body.Close()
	if resp4.StatusCode != http.StatusNotFound {
		t.Errorf("untraced server: status %d, want 404", resp4.StatusCode)
	}
}

// TestCacheHitTraceIsLifecycleOnly documents the cache interplay: a repeated
// submission is served from the result cache, so its trace carries lifecycle
// events but no simulation events.
func TestCacheHitTraceIsLifecycleOnly(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1, TraceEvents: 1024})
	req := JobRequest{Kernels: []string{"SB", "SD"}}
	v1, _ := postJob(t, ts, req)
	waitDone(t, ts, v1.ID)
	v2, _ := postJob(t, ts, req)
	final := waitDone(t, ts, v2.ID)
	if !final.CacheHit {
		t.Fatal("second identical job was not a cache hit")
	}
	resp, err := http.Get(fmt.Sprintf("%s/v1/jobs/%s/trace?format=ndjson", ts.URL, v2.ID))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	events, err := telemetry.ReadNDJSON(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var lifecycle, simEvents int
	for _, e := range events {
		switch e.Kind {
		case telemetry.KindJobQueued, telemetry.KindJobStarted, telemetry.KindJobRetry, telemetry.KindJobDone:
			lifecycle++
		default:
			simEvents++
		}
	}
	if lifecycle < 3 {
		t.Errorf("cache-hit trace has %d lifecycle events, want >= 3", lifecycle)
	}
	if simEvents != 0 {
		t.Errorf("cache-hit trace has %d simulation events, want 0", simEvents)
	}
}
