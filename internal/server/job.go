package server

import (
	"context"
	"fmt"
	"time"

	"dasesim/internal/kernels"
	"dasesim/internal/sim"
	"dasesim/internal/telemetry"
)

// Status is a job's lifecycle state.
type Status string

const (
	StatusQueued   Status = "queued"
	StatusRunning  Status = "running"
	StatusDone     Status = "done"
	StatusFailed   Status = "failed"
	StatusCanceled Status = "canceled"
	// StatusForwarded marks a queued job given away to another cluster node
	// (work-stealing): terminal here, because the work now lives — and is
	// journaled — under a new ID on the stealing node.
	StatusForwarded Status = "forwarded"
)

// terminal reports whether a job in this state will never run again (on this
// node — a forwarded job runs on the node named by ForwardedTo).
func (s Status) terminal() bool {
	return s == StatusDone || s == StatusFailed || s == StatusCanceled || s == StatusForwarded
}

// JobRequest is the body of POST /v1/jobs.
type JobRequest struct {
	// Kernels are Table III abbreviations (or custom-catalogue abbrs).
	Kernels []string `json:"kernels"`
	// Alloc assigns SMs per kernel; empty means an even split. Ignored in
	// alone mode (the kernel gets every SM).
	Alloc []int `json:"alloc,omitempty"`
	// Cycles is the simulation budget (server default when 0; capped by the
	// server's max).
	Cycles uint64 `json:"cycles,omitempty"`
	// Seed is the simulation seed (default 1).
	Seed uint64 `json:"seed,omitempty"`
	// Policy selects the SM scheduler for shared mode: "even" (default),
	// "fair" (DASE-Fair), or "perf" (DASE-Perf).
	Policy string `json:"policy,omitempty"`
	// Mode is "shared" (default) or "alone" (single kernel on all SMs).
	Mode string `json:"mode,omitempty"`
	// Slowdowns additionally computes each application's actual slowdown
	// against its cached alone baseline, plus unfairness and harmonic
	// speedup.
	Slowdowns bool `json:"slowdowns,omitempty"`
	// TimeoutMS bounds this job's wall time; the server's job timeout still
	// applies as a ceiling.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// JobResult is the payload of a finished job.
type JobResult struct {
	// Sim is the raw simulation result, exactly what the equivalent direct
	// sim.RunShared / sim.RunAlone call returns.
	Sim *sim.Result `json:"sim"`
	// Slowdowns, AloneIPC, Unfairness and HarmonicSpeedup are present when
	// the request asked for slowdowns.
	Slowdowns       []float64 `json:"slowdowns,omitempty"`
	AloneIPC        []float64 `json:"alone_ipc,omitempty"`
	Unfairness      float64   `json:"unfairness,omitempty"`
	HarmonicSpeedup float64   `json:"harmonic_speedup,omitempty"`
}

// Job is one tracked submission. Fields other than ID are guarded by the
// server's mutex; done is closed exactly once on the transition to a
// terminal status.
type Job struct {
	ID      string
	Request JobRequest

	Status      Status
	Error       string
	LastError   string // most recent transient error, kept across retries
	Attempts    int    // run attempts so far (1 on the first try)
	Result      *JobResult
	CacheHit    bool
	ForwardedTo string // stealing node's ID when Status is StatusForwarded

	SubmittedAt time.Time
	StartedAt   time.Time
	FinishedAt  time.Time

	plan   plan
	cancel context.CancelFunc
	done   chan struct{}
	// tracer is non-nil when the server traces jobs. It is assigned once at
	// submission (or replay) before the job is visible and is internally
	// concurrency-safe, so reading it needs no lock.
	tracer *telemetry.Tracer
	// span is the job's trace context, minted at submission (a child of the
	// client's or forwarding node's span when the request carried one) and
	// immutable afterwards, so reading it needs no lock either.
	span telemetry.SpanContext
}

// emit stamps the job's span onto e and records it; nil-tracer safe and
// allocation-free, so it is unconditional at every lifecycle site.
func (j *Job) emit(node string, e telemetry.Event) {
	e.SetSpan(j.span)
	e.Node = node
	j.tracer.Emit(e)
}

// JobView is the JSON representation of a job returned by the API.
type JobView struct {
	ID          string     `json:"id"`
	Status      Status     `json:"status"`
	Request     JobRequest `json:"request"`
	Error       string     `json:"error,omitempty"`
	LastError   string     `json:"last_error,omitempty"`
	Attempts    int        `json:"attempts"`
	CacheHit    bool       `json:"cache_hit"`
	ForwardedTo string     `json:"forwarded_to,omitempty"`
	SubmittedAt time.Time  `json:"submitted_at"`
	StartedAt   *time.Time `json:"started_at,omitempty"`
	FinishedAt  *time.Time `json:"finished_at,omitempty"`
	WallMS      float64    `json:"wall_ms,omitempty"`
	Result      *JobResult `json:"result,omitempty"`
}

// view renders the job; the caller holds the server mutex.
func (j *Job) view() JobView {
	v := JobView{
		ID:          j.ID,
		Status:      j.Status,
		Request:     j.Request,
		Error:       j.Error,
		LastError:   j.LastError,
		Attempts:    j.Attempts,
		CacheHit:    j.CacheHit,
		ForwardedTo: j.ForwardedTo,
		SubmittedAt: j.SubmittedAt,
		Result:      j.Result,
	}
	if !j.StartedAt.IsZero() {
		t := j.StartedAt
		v.StartedAt = &t
	}
	if !j.FinishedAt.IsZero() {
		t := j.FinishedAt
		v.FinishedAt = &t
		if !j.StartedAt.IsZero() {
			v.WallMS = float64(j.FinishedAt.Sub(j.StartedAt)) / float64(time.Millisecond)
		}
	}
	return v
}

// plan is a validated, resolved job: profiles looked up, allocation and
// budget defaulted and bounds-checked. Building the plan at submission time
// means a malformed request fails with 400 instead of becoming a failed job.
type plan struct {
	profiles []kernels.Profile
	alloc    []int
	cycles   uint64
	seed     uint64
	policy   string // "even" | "fair" | "perf"
	mode     string // "shared" | "alone"
	slowdown bool
	timeout  time.Duration
}

// variant is the cache-key run-mode tag for the plan's main simulation.
func (p *plan) variant() string {
	if p.mode == "alone" {
		return "alone"
	}
	return "shared/" + p.policy
}

// buildPlan validates a request against the server's catalogue and limits.
func (s *Server) buildPlan(req JobRequest) (plan, error) {
	p := plan{
		cycles:   req.Cycles,
		seed:     req.Seed,
		policy:   req.Policy,
		mode:     req.Mode,
		slowdown: req.Slowdowns,
		timeout:  s.opts.JobTimeout,
	}
	if len(req.Kernels) == 0 {
		return p, fmt.Errorf("no kernels given")
	}
	for _, abbr := range req.Kernels {
		prof, ok := s.lookup(abbr)
		if !ok {
			return p, fmt.Errorf("unknown kernel %q", abbr)
		}
		p.profiles = append(p.profiles, prof)
	}
	if p.cycles == 0 {
		p.cycles = s.opts.DefaultCycles
	}
	if p.cycles > s.opts.MaxCycles {
		return p, fmt.Errorf("cycles %d exceeds server maximum %d", p.cycles, s.opts.MaxCycles)
	}
	if p.seed == 0 {
		p.seed = 1
	}
	switch p.mode {
	case "", "shared":
		p.mode = "shared"
	case "alone":
		if len(p.profiles) != 1 {
			return p, fmt.Errorf("alone mode takes exactly one kernel, got %d", len(p.profiles))
		}
		if req.Slowdowns {
			return p, fmt.Errorf("slowdowns are meaningless in alone mode")
		}
	default:
		return p, fmt.Errorf("unknown mode %q (shared | alone)", p.mode)
	}
	switch p.policy {
	case "":
		p.policy = "even"
	case "even", "fair", "perf":
	default:
		return p, fmt.Errorf("unknown policy %q (even | fair | perf)", p.policy)
	}
	nsm := s.opts.Cfg.NumSMs
	if p.mode == "alone" {
		p.alloc = []int{nsm}
	} else if len(req.Alloc) == 0 {
		p.alloc = sim.EvenAllocation(nsm, len(p.profiles))
	} else {
		if len(req.Alloc) != len(p.profiles) {
			return p, fmt.Errorf("alloc has %d entries for %d kernels", len(req.Alloc), len(p.profiles))
		}
		total := 0
		for _, n := range req.Alloc {
			if n < 0 {
				return p, fmt.Errorf("negative SM allocation %d", n)
			}
			total += n
		}
		if total == 0 || total > nsm {
			return p, fmt.Errorf("allocation %v must use between 1 and %d SMs", req.Alloc, nsm)
		}
		p.alloc = append([]int(nil), req.Alloc...)
	}
	if req.TimeoutMS > 0 {
		d := time.Duration(req.TimeoutMS) * time.Millisecond
		if d < p.timeout {
			p.timeout = d
		}
	}
	return p, nil
}
