package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"dasesim/internal/estimate"
)

// estBody returns a plausible two-app snapshot body.
func estBody(id uint64) []byte {
	req := estimate.Request{
		ID: id,
		Apps: []estimate.AppCounters{
			{SMs: 8, Alpha: 0.4, Served: 9000, TimeInBanks: 180_000, ERBMiss: 300,
				ELLCMiss: 120, RowHits: 7000, RowMisses: 2000, BLP: 9, BLPAccess: 6,
				BLPBlocked: 2.5, TBSum: 96, TBShared: 48},
			{SMs: 8, Alpha: 0.9, Served: 21_000, TimeInBanks: 400_000, ERBMiss: 800,
				ELLCMiss: 300, RowHits: 4000, RowMisses: 16_000, BLP: 17, BLPAccess: 13,
				BLPBlocked: 3, TBSum: 120, TBShared: 60},
		},
	}
	return estimate.AppendRequest(nil, &req)
}

type estResp struct {
	ID   uint64 `json:"id"`
	Apps []struct {
		Slowdown float64 `json:"slowdown"`
		MBB      bool    `json:"mbb"`
	} `json:"apps"`
	Partition []int   `json:"partition"`
	Error     string  `json:"error"`
	Unfair    float64 `json:"unfairness"`
}

func postEstimate(t *testing.T, ts *httptest.Server, body []byte) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/estimate", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func TestEstimateSingleShot(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	resp, data := postEstimate(t, ts, estBody(42))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var er estResp
	if err := json.Unmarshal(data, &er); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, data)
	}
	if er.ID != 42 || len(er.Apps) != 2 || len(er.Partition) != 2 {
		t.Fatalf("unexpected response: %s", data)
	}
	if er.Apps[0].Slowdown < 1 {
		t.Fatalf("slowdown < 1: %s", data)
	}

	metrics := fetchMetrics(t, ts)
	for _, want := range []string{
		"dased_estimate_requests_total 1",
		"dased_estimate_rejected_total 0",
		`dased_estimate_latency_seconds_bucket{le="+Inf"} 1`,
		`dased_estimate_batch_size_bucket{le="1"} 1`,
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

func TestEstimateBatch(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	body := append([]byte{'['}, estBody(1)...)
	body = append(body, ',')
	body = append(body, estBody(2)...)
	body = append(body, ']')
	resp, data := postEstimate(t, ts, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var ers []estResp
	if err := json.Unmarshal(data, &ers); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, data)
	}
	if len(ers) != 2 || ers[0].ID != 1 || ers[1].ID != 2 {
		t.Fatalf("unexpected batch: %s", data)
	}
	if m := fetchMetrics(t, ts); !strings.Contains(m, "dased_estimate_requests_total 2") {
		t.Errorf("batch must count both snapshots")
	}
}

func TestEstimateRejections(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	cases := []struct {
		name, body string
		status     int
	}{
		{"malformed", `{"apps":[`, http.StatusBadRequest},
		{"invalid-alpha", `{"apps":[{"sms":8,"alpha":-3}]}`, http.StatusBadRequest},
		{"no-apps", `{"apps":[]}`, http.StatusBadRequest},
		{"oversized", string(make([]byte, 2<<20)), http.StatusRequestEntityTooLarge},
	}
	for i, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, data := postEstimate(t, ts, []byte(tc.body))
			if resp.StatusCode != tc.status {
				t.Fatalf("status %d want %d: %s", resp.StatusCode, tc.status, data)
			}
			var e struct {
				Error string `json:"error"`
			}
			if err := json.Unmarshal(data, &e); err != nil || e.Error == "" {
				t.Fatalf("error body must carry an error message: %s", data)
			}
			want := fmt.Sprintf("dased_estimate_rejected_total %d", i+1)
			if m := fetchMetrics(t, ts); !strings.Contains(m, want) {
				t.Errorf("metrics missing %q", want)
			}
		})
	}
}

// TestEstimateStream drives the NDJSON endpoint over a single connection:
// responses must arrive per line (backpressure-friendly incremental
// flushing), an invalid line must produce an error line without killing the
// stream, and a malformed line must terminate it.
func TestEstimateStream(t *testing.T) {
	_, ts := newTestServer(t, Options{})

	pr, pw := io.Pipe()
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/estimate/stream", pr)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	lines := bufio.NewScanner(resp.Body)

	send := func(line []byte) {
		t.Helper()
		if _, err := pw.Write(append(line, '\n')); err != nil {
			t.Fatal(err)
		}
	}
	read := func() estResp {
		t.Helper()
		if !lines.Scan() {
			t.Fatalf("stream ended early: %v", lines.Err())
		}
		var er estResp
		if err := json.Unmarshal(lines.Bytes(), &er); err != nil {
			t.Fatalf("bad line %q: %v", lines.Text(), err)
		}
		return er
	}

	// Each request must be answered before the next is sent: per-line flush.
	for i := uint64(1); i <= 3; i++ {
		send(estBody(i))
		er := read()
		if er.ID != i || er.Error != "" {
			t.Fatalf("line %d: %+v", i, er)
		}
	}

	// Invalid counters: error line, stream stays up.
	send([]byte(`{"apps":[{"sms":8,"alpha":-1}]}`))
	if er := read(); er.Error == "" {
		t.Fatalf("want error line, got %+v", er)
	}
	send(estBody(9))
	if er := read(); er.ID != 9 || er.Error != "" {
		t.Fatalf("stream must continue after invalid line: %+v", er)
	}

	// Malformed JSON: error line, then the server closes the stream.
	send([]byte(`{"apps":[`))
	if er := read(); er.Error == "" {
		t.Fatalf("want decode error line")
	}
	if lines.Scan() {
		t.Fatalf("stream must terminate after a malformed line, got %q", lines.Text())
	}
	pw.Close()
}

// TestEstimateStreamDrain: a stream in flight when Shutdown begins gets a
// final error line instead of hanging.
func TestEstimateStreamDrain(t *testing.T) {
	s, ts := newTestServer(t, Options{})

	pr, pw := io.Pipe()
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/estimate/stream", pr)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	lines := bufio.NewScanner(resp.Body)

	if _, err := pw.Write(append(estBody(1), '\n')); err != nil {
		t.Fatal(err)
	}
	if !lines.Scan() {
		t.Fatalf("no response to first line: %v", lines.Err())
	}

	// Begin draining while the stream is open.
	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		shutdownDone <- s.Shutdown(ctx)
	}()
	// Wait until the server reports draining.
	for !s.isDraining() {
		time.Sleep(time.Millisecond)
	}
	if _, err := pw.Write(append(estBody(2), '\n')); err != nil {
		t.Fatal(err)
	}
	if !lines.Scan() {
		t.Fatalf("draining stream must answer with an error line: %v", lines.Err())
	}
	var er estResp
	if err := json.Unmarshal(lines.Bytes(), &er); err != nil || er.Error == "" {
		t.Fatalf("want drain error line, got %q", lines.Text())
	}
	if lines.Scan() {
		t.Fatalf("stream must close after the drain error")
	}
	pw.Close()
	if err := <-shutdownDone; err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	// New estimation work is refused while/after draining.
	resp2, err := http.Post(ts.URL+"/v1/estimate", "application/json", bytes.NewReader(estBody(3)))
	if err == nil {
		defer resp2.Body.Close()
		if resp2.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("draining estimate status %d, want 503", resp2.StatusCode)
		}
	}
}

// TestEstimateMatchesInProcess: the served bytes must equal what the
// in-process service produces for the same body — the transport must not
// touch the payload.
func TestEstimateMatchesInProcess(t *testing.T) {
	s, ts := newTestServer(t, Options{})
	body := estBody(5)
	_, served := postEstimate(t, ts, body)

	sc := s.est.Get()
	defer s.est.Put(sc)
	sc.Body = append(sc.Body[:0], body...)
	if err := s.est.Process(sc); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(served, sc.Out) {
		t.Fatalf("served bytes diverge from in-process bytes:\n got %s\nwant %s", served, sc.Out)
	}
}
