package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"path/filepath"
	"testing"
	"time"
)

// testCtx bounds test shutdowns.
func testCtx() (context.Context, context.CancelFunc) {
	return context.WithTimeout(context.Background(), 60*time.Second)
}

// crash simulates a process kill for journaling purposes: the journal is
// closed first (so no further lifecycle transitions are committed, exactly
// like losing the process), then the world is torn down. The in-memory
// server keeps mutating its own records while unwinding, but those
// mutations are lost — only what Append had already fsynced survives, which
// is the point.
func crash(t *testing.T, s *Server) {
	t.Helper()
	if err := s.journal.Close(); err != nil {
		t.Fatal(err)
	}
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		close(s.queue)
		close(s.drainCh)
	}
	s.mu.Unlock()
	s.baseCancel()
	s.wg.Wait()
}

// statusOf reads a job's status under the server mutex.
func statusOf(t *testing.T, s *Server, id string) Status {
	t.Helper()
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		t.Fatalf("job %s missing", id)
	}
	return j.Status
}

// awaitTerminal blocks until the job's done channel closes and returns its
// view.
func awaitTerminal(t *testing.T, s *Server, id string) JobView {
	t.Helper()
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		t.Fatalf("job %s missing", id)
	}
	select {
	case <-j.done:
	case <-time.After(300 * time.Second): // generous: simulation is ~10x slower under -race
		t.Fatalf("job %s never reached a terminal state", id)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return j.view()
}

func resultJSON(t *testing.T, v JobView) []byte {
	t.Helper()
	if v.Result == nil {
		t.Fatalf("job %s has no result (status=%s error=%q)", v.ID, v.Status, v.Error)
	}
	data, err := json.Marshal(v.Result)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestCrashRecoveryByteIdentical is the kill-and-restart integration test:
// submit jobs, let one finish, drop the server with one job running and two
// queued, reopen the journal, and assert every job reaches a terminal state
// with results byte-identical to an uninterrupted run.
func TestCrashRecoveryByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	jpath := filepath.Join(t.TempDir(), "dased.wal")
	base := Options{
		Workers:       1,
		QueueDepth:    16,
		JournalPath:   jpath,
		JobTimeout:    5 * time.Minute,
		DefaultCycles: testCycles,
		MaxCycles:     2_000_000_000,
		Logger:        slog.New(slog.NewTextHandler(io.Discard, nil)),
	}
	reqs := []JobRequest{
		{Kernels: []string{"SB", "SD"}, Cycles: testCycles, Seed: 3}, // finishes pre-crash
		{Kernels: []string{"SB"}, Cycles: 600_000},                   // running at the crash
		{Kernels: []string{"VA", "CT"}, Cycles: testCycles},          // queued at the crash
		{Kernels: []string{"QR", "BG"}, Cycles: testCycles, Slowdowns: true},
	}

	sA, err := New(base)
	if err != nil {
		t.Fatal(err)
	}
	sA.Start()
	j1, err := sA.submit(reqs[0])
	if err != nil {
		t.Fatal(err)
	}
	if v := awaitTerminal(t, sA, j1.ID); v.Status != StatusDone {
		t.Fatalf("pre-crash job: %s (%s)", v.Status, v.Error)
	}
	j2, err := sA.submit(reqs[1])
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for statusOf(t, sA, j2.ID) != StatusRunning {
		if time.Now().After(deadline) {
			t.Fatal("long job never started")
		}
		time.Sleep(2 * time.Millisecond)
	}
	j3, err := sA.submit(reqs[2])
	if err != nil {
		t.Fatal(err)
	}
	j4, err := sA.submit(reqs[3])
	if err != nil {
		t.Fatal(err)
	}
	preCrashResult := resultJSON(t, func() JobView {
		sA.mu.Lock()
		defer sA.mu.Unlock()
		return sA.jobs[j1.ID].view()
	}())

	crash(t, sA)

	// Restart on the same journal.
	restarted := base
	restarted.Workers = 2
	sB, err := New(restarted)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := testCtx()
		defer cancel()
		_ = sB.Shutdown(ctx)
	})
	if got := sB.metrics.journalReplayed.Load(); got != 4 {
		t.Fatalf("journalReplayed = %d, want 4", got)
	}
	var buf bytes.Buffer
	sB.metrics.WritePrometheus(&buf)
	if n := metricValue(t, buf.String(), "dased_journal_replayed_total"); n != 4 {
		t.Fatalf("dased_journal_replayed_total = %v, want 4", n)
	}
	// The finished job is restored terminal, result intact, without re-running.
	restored := func() JobView {
		sB.mu.Lock()
		defer sB.mu.Unlock()
		j, ok := sB.jobs[j1.ID]
		if !ok {
			t.Fatal("finished job lost in recovery")
		}
		return j.view()
	}()
	if restored.Status != StatusDone {
		t.Fatalf("restored job status %s (%s)", restored.Status, restored.Error)
	}
	if !bytes.Equal(resultJSON(t, restored), preCrashResult) {
		t.Fatal("restored result differs from the pre-crash result")
	}

	sB.Start()
	views := map[string]JobView{}
	for _, id := range []string{j1.ID, j2.ID, j3.ID, j4.ID} {
		v := awaitTerminal(t, sB, id)
		if v.Status != StatusDone {
			t.Fatalf("recovered job %s: %s (%s)", id, v.Status, v.Error)
		}
		views[id] = v
	}

	// Uninterrupted reference run: same requests, fresh server, no journal.
	ref := base
	ref.JournalPath = ""
	ref.Workers = 2
	sC, err := New(ref)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := testCtx()
		defer cancel()
		_ = sC.Shutdown(ctx)
	})
	sC.Start()
	ids := []string{j1.ID, j2.ID, j3.ID, j4.ID}
	for i, req := range reqs {
		rj, err := sC.submit(req)
		if err != nil {
			t.Fatal(err)
		}
		rv := awaitTerminal(t, sC, rj.ID)
		if rv.Status != StatusDone {
			t.Fatalf("reference job %d: %s (%s)", i, rv.Status, rv.Error)
		}
		if !bytes.Equal(resultJSON(t, views[ids[i]]), resultJSON(t, rv)) {
			t.Fatalf("job %s result diverged from the uninterrupted run", ids[i])
		}
	}

	// The journal re-seeded the cache: resubmitting the pre-crash request is
	// a cache hit even though this process never simulated it.
	rehit, err := sB.submit(reqs[0])
	if err != nil {
		t.Fatal(err)
	}
	if v := awaitTerminal(t, sB, rehit.ID); v.Status != StatusDone || !v.CacheHit {
		t.Fatalf("resubmission after recovery: status=%s cache_hit=%t", v.Status, v.CacheHit)
	}
}

// TestRestartRestoresTerminalStateOnly proves a clean shutdown followed by a
// reopen restores every job as a terminal, queryable record and re-enqueues
// nothing, and that startup compaction keeps the journal bounded.
func TestRestartRestoresTerminalStateOnly(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	jpath := filepath.Join(t.TempDir(), "dased.wal")
	opts := Options{
		Workers:       2,
		JournalPath:   jpath,
		JobTimeout:    time.Minute,
		DefaultCycles: testCycles,
		Logger:        slog.New(slog.NewTextHandler(io.Discard, nil)),
	}
	s, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	var ids []string
	for _, ks := range [][]string{{"SB", "SD"}, {"VA", "CT"}} {
		j, err := s.submit(JobRequest{Kernels: ks, Cycles: testCycles})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, j.ID)
	}
	for _, id := range ids {
		if v := awaitTerminal(t, s, id); v.Status != StatusDone {
			t.Fatalf("job %s: %s (%s)", id, v.Status, v.Error)
		}
	}
	ctx, cancel := testCtx()
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}

	s2, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := testCtx()
		defer cancel()
		_ = s2.Shutdown(ctx)
	})
	if got := s2.metrics.journalReplayed.Load(); got != 2 {
		t.Fatalf("journalReplayed = %d, want 2", got)
	}
	if len(s2.queue) != 0 {
		t.Fatalf("%d jobs re-enqueued from terminal records", len(s2.queue))
	}
	for _, id := range ids {
		s2.mu.Lock()
		j, ok := s2.jobs[id]
		s2.mu.Unlock()
		if !ok || j.Status != StatusDone || j.Result == nil {
			t.Fatalf("job %s not restored terminal with result", id)
		}
	}
	// Startup compaction rewrote the journal to ≤ 2 records per job.
	if n := s2.journal.Len(); n > 2*len(ids) {
		t.Fatalf("journal holds %d records after compaction for %d jobs", n, len(ids))
	}
}

// TestJournalCompactionHonorsMaxJobs drives many short jobs through a tiny
// MaxJobs bound and checks the journal is compacted down to the retained
// records instead of growing without bound.
func TestJournalCompactionHonorsMaxJobs(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	jpath := filepath.Join(t.TempDir(), "dased.wal")
	opts := Options{
		Workers:       1,
		MaxJobs:       2,
		JournalPath:   jpath,
		JobTimeout:    time.Minute,
		DefaultCycles: testCycles,
		Logger:        slog.New(slog.NewTextHandler(io.Discard, nil)),
	}
	s, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	// Identical submissions: the first simulates, the rest are cache hits,
	// so this loop is fast while still writing 3 records per job.
	for i := 0; i < 20; i++ {
		j, err := s.submit(JobRequest{Kernels: []string{"SB", "SD"}, Cycles: testCycles})
		if err != nil {
			t.Fatal(err)
		}
		if v := awaitTerminal(t, s, j.ID); v.Status != StatusDone {
			t.Fatalf("job %d: %s (%s)", i, v.Status, v.Error)
		}
	}
	if s.metrics.journalCompactions.Load() == 0 {
		t.Fatal("journal never compacted")
	}
	ctx, cancel := testCtx()
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	// Reopening evicts beyond MaxJobs and compacts the journal down to the
	// retained records (≤ 2 per terminal job).
	s2, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := testCtx()
		defer cancel()
		_ = s2.Shutdown(ctx)
	})
	s2.mu.Lock()
	retained := len(s2.jobs)
	s2.mu.Unlock()
	if retained > opts.MaxJobs {
		t.Fatalf("recovery retained %d jobs, MaxJobs=%d", retained, opts.MaxJobs)
	}
	if n := s2.journal.Len(); n > 2*opts.MaxJobs {
		t.Fatalf("journal holds %d records after startup compaction, want <= %d", n, 2*opts.MaxJobs)
	}
}
