package server

import (
	"errors"
	"io"
	"net/http"
	"time"

	"dasesim/internal/estimate"
)

// The estimation endpoints serve DASE online — counters in, slowdowns and a
// recommended partition out, no simulation in the loop. Unlike the job API,
// they answer synchronously on the request goroutine and keep the
// per-request path allocation-free: all working state lives in a pooled
// estimate.Scratch, responses are written from its recycled output buffer,
// and only the HTTP transport itself allocates. POST /v1/estimate handles
// one body (object or array batch); POST /v1/estimate/stream speaks NDJSON
// both ways over one connection, flushing per line.

var errBodyTooLarge = errors.New("request body too large")

// readBody reads r.Body into buf (recycled, truncated by the caller),
// rejecting bodies over max without buffering them.
func readBody(r *http.Request, buf []byte, max int64) ([]byte, error) {
	if r.ContentLength > max {
		return buf, errBodyTooLarge
	}
	for {
		if len(buf) == cap(buf) {
			buf = append(buf, 0)[:len(buf)]
		}
		n, err := r.Body.Read(buf[len(buf):cap(buf)])
		buf = buf[:len(buf)+n]
		if int64(len(buf)) > max {
			return buf, errBodyTooLarge
		}
		if err == io.EOF {
			return buf, nil
		}
		if err != nil {
			return buf, err
		}
	}
}

// isDraining reports whether shutdown has begun; estimation is refused then
// so the listener can close promptly.
func (s *Server) isDraining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// writeEstimateError maps a Process failure onto 400 with the service's
// error body, counting the rejection.
func (s *Server) writeEstimateError(w http.ResponseWriter, r *http.Request, err error) {
	s.metrics.estRejected.Add(1)
	s.writeError(w, r, http.StatusBadRequest, err.Error())
}

func (s *Server) handleEstimate(w http.ResponseWriter, r *http.Request) {
	if s.isDraining() {
		s.writeError(w, r, http.StatusServiceUnavailable, ErrDraining.Error())
		return
	}
	sc := s.est.Get()
	defer s.est.Put(sc)
	body, err := readBody(r, sc.Body[:0], s.opts.EstimateMaxBody)
	sc.Body = body
	if err != nil {
		if errors.Is(err, errBodyTooLarge) {
			s.metrics.estRejected.Add(1)
			s.writeError(w, r, http.StatusRequestEntityTooLarge, err.Error())
			return
		}
		s.writeError(w, r, http.StatusBadRequest, "read body: "+err.Error())
		return
	}
	start := time.Now()
	perr := s.est.Process(sc)
	s.metrics.estLatency.Observe(time.Since(start).Seconds())
	if perr != nil {
		s.writeEstimateError(w, r, perr)
		return
	}
	s.metrics.estRequests.Add(uint64(sc.BatchSize()))
	s.metrics.estBatch.Observe(float64(sc.BatchSize()))
	w.Header().Set("Content-Type", "application/json")
	if _, werr := w.Write(sc.Out); werr != nil {
		s.opts.Logger.Error("write estimate response failed", "err", werr)
	}
}

// handleEstimateStream serves NDJSON request/response streams: one JSON
// request per line in, one JSON response (or {"error":...}) per line out,
// flushed per line so a slow producer still sees each answer promptly. A
// malformed line terminates the stream — after a framing error the
// connection cannot be trusted — while a line with invalid counter values
// gets an error line and the stream continues. When the server starts
// draining mid-stream, the client gets a final error line and the stream
// closes.
func (s *Server) handleEstimateStream(w http.ResponseWriter, r *http.Request) {
	if s.isDraining() {
		s.writeError(w, r, http.StatusServiceUnavailable, ErrDraining.Error())
		return
	}
	s.metrics.estStreams.Add(1)
	defer s.metrics.estStreams.Add(-1)
	flusher, _ := w.(http.Flusher)
	rc := http.NewResponseController(w)
	// Full duplex: without it, net/http drains the request body before
	// committing response headers, deadlocking a client that waits for our
	// answer to line N before sending line N+1.
	_ = rc.EnableFullDuplex()
	// The server's ReadTimeout is sized for one-shot bodies; a long-lived
	// stream legitimately outlives it, so clear the deadline here.
	_ = rc.SetReadDeadline(time.Time{})
	w.Header().Set("Content-Type", "application/x-ndjson")
	// Commit the response headers before reading any input: clients block on
	// them before sending their first line.
	w.WriteHeader(http.StatusOK)
	if flusher != nil {
		flusher.Flush()
	}
	sc := s.est.Get()
	defer s.est.Put(sc)
	sc.StreamReset(int(s.opts.EstimateMaxBody))

	writeLine := func(line []byte) bool {
		if _, err := w.Write(line); err != nil {
			return false
		}
		if _, err := io.WriteString(w, "\n"); err != nil {
			return false
		}
		if flusher != nil {
			flusher.Flush()
		}
		return true
	}

	for {
		err := sc.StreamNext(r.Body)
		if err == io.EOF {
			return
		}
		if err != nil {
			if errors.Is(err, estimate.ErrLineTooLong) {
				s.metrics.estRejected.Add(1)
				writeLine(estimate.AppendError(sc.Out[:0], err.Error()))
			}
			return // client went away or sent an unreadable stream
		}
		if s.isDraining() {
			writeLine(estimate.AppendError(sc.Out[:0], ErrDraining.Error()))
			return
		}
		start := time.Now()
		perr := s.est.Process(sc)
		s.metrics.estLatency.Observe(time.Since(start).Seconds())
		if perr != nil {
			s.metrics.estRejected.Add(1)
			if !writeLine(estimate.AppendError(sc.Out[:0], perr.Error())) {
				return
			}
			var rerr *estimate.RequestError
			if errors.As(perr, &rerr) && rerr.Kind == estimate.KindDecode {
				return // framing is broken; stop the stream
			}
			continue
		}
		s.metrics.estRequests.Add(uint64(sc.BatchSize()))
		s.metrics.estBatch.Observe(float64(sc.BatchSize()))
		if !writeLine(sc.Out) {
			return
		}
	}
}
