package server

import (
	"context"
	"errors"
	"fmt"
	"time"

	"dasesim/internal/metrics"
	"dasesim/internal/sched"
	"dasesim/internal/sim"
	"dasesim/internal/simcache"
	"dasesim/internal/workload"
)

// worker drains the job queue until it is closed by Shutdown.
func (s *Server) worker() {
	defer s.wg.Done()
	for job := range s.queue {
		s.runJob(job)
	}
}

// runJob executes one queued job, converting panics and context errors into
// terminal job states instead of process death.
func (s *Server) runJob(job *Job) {
	s.mu.Lock()
	if job.Status != StatusQueued {
		// Canceled while waiting in the queue; nothing to run.
		s.mu.Unlock()
		return
	}
	job.Status = StatusRunning
	job.StartedAt = time.Now()
	ctx, cancel := context.WithTimeout(s.baseCtx, job.plan.timeout)
	job.cancel = cancel
	s.mu.Unlock()

	s.metrics.jobsRunning.Add(1)
	defer s.metrics.jobsRunning.Add(-1)
	defer cancel()
	defer func() {
		if r := recover(); r != nil {
			s.finishJob(job, nil, false, fmt.Errorf("panic: %v", r))
		}
	}()

	res, cacheHit, err := s.execute(ctx, job.plan)
	s.finishJob(job, res, cacheHit, err)
}

// finishJob moves the job to its terminal state and updates the metrics.
func (s *Server) finishJob(job *Job, res *JobResult, cacheHit bool, err error) {
	s.mu.Lock()
	job.FinishedAt = time.Now()
	job.CacheHit = cacheHit
	switch {
	case err == nil:
		job.Status = StatusDone
		job.Result = res
		s.metrics.jobsCompleted.Add(1)
	case errors.Is(err, context.Canceled):
		job.Status = StatusCanceled
		job.Error = "canceled"
		s.metrics.jobsCanceled.Add(1)
	case errors.Is(err, context.DeadlineExceeded):
		job.Status = StatusFailed
		job.Error = fmt.Sprintf("timeout after %v", job.plan.timeout)
		s.metrics.jobsFailed.Add(1)
	default:
		job.Status = StatusFailed
		job.Error = err.Error()
		s.metrics.jobsFailed.Add(1)
	}
	wall := job.FinishedAt.Sub(job.StartedAt)
	close(job.done)
	s.mu.Unlock()
	s.metrics.observeJob(wall)
	s.logf("job=%s status=%s cache_hit=%t wall=%s", job.ID, job.Status, cacheHit, wall.Round(time.Millisecond))
}

// execute runs the plan's simulation through the content-addressed cache and
// optionally augments it with slowdown metrics against cached alone
// baselines. The returned cacheHit refers to the main simulation.
func (s *Server) execute(ctx context.Context, p plan) (*JobResult, bool, error) {
	key := simcache.Key(s.opts.Cfg, p.profiles, p.alloc, p.cycles, p.seed, p.variant())
	res, cacheHit, err := s.cachedSim(ctx, key, func(ctx context.Context) (*sim.Result, error) {
		return s.runSim(ctx, p)
	})
	if err != nil {
		return nil, false, err
	}
	out := &JobResult{Sim: res}
	if p.slowdown {
		// Alone baselines are addressed with workload.AloneKey, so they are
		// simulated at most once across slowdown computations and explicit
		// alone-mode jobs with the same budget and seed.
		out.Slowdowns = make([]float64, len(p.profiles))
		out.AloneIPC = make([]float64, len(p.profiles))
		for i, prof := range p.profiles {
			aloneKey := workload.AloneKey(s.opts.Cfg, prof, p.cycles, p.seed)
			alone, _, err := s.cachedSim(ctx, aloneKey, func(ctx context.Context) (*sim.Result, error) {
				return sim.RunAloneContext(ctx, s.opts.Cfg, prof, p.cycles, p.seed)
			})
			if err != nil {
				return nil, false, fmt.Errorf("alone baseline %s: %w", prof.Abbr, err)
			}
			out.AloneIPC[i] = alone.Apps[0].IPC
			out.Slowdowns[i] = metrics.Slowdown(alone.Apps[0].IPC, res.Apps[i].IPC)
		}
		out.Unfairness = metrics.Unfairness(out.Slowdowns)
		out.HarmonicSpeedup = metrics.HarmonicSpeedup(out.Slowdowns)
	}
	return out, cacheHit, nil
}

// cachedSim resolves one simulation through the result cache, counting the
// cycles of runs that actually simulated (cache hits are free).
func (s *Server) cachedSim(ctx context.Context, key string, run func(context.Context) (*sim.Result, error)) (*sim.Result, bool, error) {
	simulated := false
	res, err := s.cache.GetOrCompute(ctx, key, func() (*sim.Result, error) {
		simulated = true
		r, err := run(ctx)
		if err == nil {
			s.metrics.simCycles.Add(r.Cycles)
		}
		return r, err
	})
	return res, !simulated, err
}

// runSim dispatches the plan to the right simulation entry point.
func (s *Server) runSim(ctx context.Context, p plan) (*sim.Result, error) {
	if p.mode == "alone" {
		return sim.RunAloneContext(ctx, s.opts.Cfg, p.profiles[0], p.cycles, p.seed)
	}
	switch p.policy {
	case "fair":
		return sched.RunContext(ctx, s.opts.Cfg, p.profiles, p.alloc, p.cycles, p.seed, sched.NewDASEFair())
	case "perf":
		return sched.RunContext(ctx, s.opts.Cfg, p.profiles, p.alloc, p.cycles, p.seed, sched.NewDASEPerf())
	default:
		return sim.RunSharedContext(ctx, s.opts.Cfg, p.profiles, p.alloc, p.cycles, p.seed)
	}
}
