package server

import (
	"context"
	"errors"
	"fmt"
	"os"
	"time"

	"dasesim/internal/core"
	"dasesim/internal/faults"
	"dasesim/internal/journal"
	"dasesim/internal/metrics"
	"dasesim/internal/sched"
	"dasesim/internal/sim"
	"dasesim/internal/simcache"
	"dasesim/internal/telemetry"
	"dasesim/internal/workload"
)

// transientErr marks a failure as retry-eligible without polluting the
// user-visible message. Injected faults (faults.ErrInjected) are also
// treated as transient.
type transientErr struct{ err error }

func (e transientErr) Error() string { return e.err.Error() }
func (e transientErr) Unwrap() error { return e.err }

// isTransient reports whether err should be retried: injected faults,
// journal I/O failures, and worker panics. Context cancellation and
// deadlines are never transient — a cancel is a decision and a determinstic
// simulation that timed out once will time out again.
func isTransient(err error) bool {
	var te transientErr
	return errors.As(err, &te) || errors.Is(err, faults.ErrInjected)
}

// worker drains the job queue until it is closed by Shutdown.
func (s *Server) worker() {
	defer s.wg.Done()
	for job := range s.queue {
		s.runJob(job)
	}
}

// runJob executes one queued job, converting panics and context errors into
// terminal job states (or a retry) instead of process death.
func (s *Server) runJob(job *Job) {
	s.mu.Lock()
	if job.Status != StatusQueued {
		// Canceled while waiting in the queue; nothing to run.
		s.mu.Unlock()
		return
	}
	job.Status = StatusRunning
	job.Attempts++
	job.StartedAt = time.Now()
	ctx, cancel := context.WithTimeout(s.baseCtx, job.plan.timeout)
	job.cancel = cancel
	attempt := job.Attempts
	queueWait := job.StartedAt.Sub(job.SubmittedAt)
	s.mu.Unlock()

	if attempt == 1 {
		s.metrics.queueWait.Observe(queueWait.Seconds())
	}
	job.emit(s.opts.NodeID, telemetry.Event{
		Kind: telemetry.KindJobStarted, Wall: job.StartedAt.UnixNano(),
		App: -1, SM: -1, Job: job.ID, Attempt: int32(attempt),
	})

	s.metrics.jobsRunning.Add(1)
	defer s.metrics.jobsRunning.Add(-1)
	defer cancel()
	defer func() {
		if r := recover(); r != nil {
			s.finishJob(job, nil, false, transientErr{fmt.Errorf("panic: %v", r)})
		}
	}()

	// Commit the started record before simulating; a journal that cannot
	// take the record is a transient failure of this attempt.
	if err := s.appendJournal(ctx, journal.OpStarted, job.ID, startedData{Attempt: attempt}); err != nil {
		s.metrics.journalErrors.Add(1)
		if ctx.Err() != nil {
			err = ctx.Err()
		} else {
			err = transientErr{fmt.Errorf("journal append: %w", err)}
		}
		s.finishJob(job, nil, false, err)
		return
	}
	if err := faults.FireCtx(ctx, "server.worker"); err != nil {
		s.finishJob(job, nil, false, err)
		return
	}

	res, cacheHit, err := s.execute(ctx, job.plan, job.tracer)
	s.finishJob(job, res, cacheHit, err)
}

// finishJob moves the job to a terminal state — or, when the failure is
// transient and attempts remain, schedules a retry with backoff.
func (s *Server) finishJob(job *Job, res *JobResult, cacheHit bool, err error) {
	s.mu.Lock()
	if job.Status != StatusRunning {
		s.mu.Unlock()
		return
	}
	switch {
	case err == nil:
		s.finalizeLocked(job, StatusDone, "", res, cacheHit)
	case errors.Is(err, context.Canceled):
		s.finalizeLocked(job, StatusCanceled, "canceled", nil, false)
	case errors.Is(err, context.DeadlineExceeded):
		s.finalizeLocked(job, StatusFailed, fmt.Sprintf("timeout after %v", job.plan.timeout), nil, false)
	case isTransient(err) && job.Attempts <= s.opts.MaxRetries && !s.draining:
		job.Status = StatusQueued
		job.LastError = err.Error()
		attempt := job.Attempts
		delay := s.backoffLocked(attempt)
		s.metrics.jobRetries.Add(1)
		s.mu.Unlock()
		job.emit(s.opts.NodeID, telemetry.Event{
			Kind: telemetry.KindJobRetry, Wall: time.Now().UnixNano(),
			App: -1, SM: -1, Job: job.ID, Attempt: int32(attempt), Note: err.Error(),
		})
		s.opts.Logger.Warn("job retry scheduled",
			"job", job.ID, "attempt", attempt, "retry_in", delay.Round(time.Millisecond), "err", err)
		s.requeueAfterBackoff(job, delay)
		return
	default:
		s.finalizeLocked(job, StatusFailed, err.Error(), nil, false)
	}
	wall := job.FinishedAt.Sub(job.StartedAt)
	status, hit, attempts := job.Status, job.CacheHit, job.Attempts
	s.mu.Unlock()
	s.metrics.observeJob(wall)
	s.writeTraceFile(job)
	s.opts.Logger.Info("job finished",
		"job", job.ID, "status", status, "cache_hit", hit, "attempts", attempts,
		"wall", wall.Round(time.Millisecond))
}

// finalizeLocked commits a terminal transition: job fields, metrics, the
// done channel, and (best-effort) the journal's finished record. The caller
// holds s.mu. A finished record that fails to commit is only logged: the
// job's state is authoritative in memory, and on a crash the journal's
// non-terminal records make the job re-run — which is semantically invisible
// because results are deterministic and content-addressed.
func (s *Server) finalizeLocked(job *Job, status Status, errMsg string, res *JobResult, cacheHit bool) {
	job.Status = status
	job.Error = errMsg
	job.Result = res
	job.CacheHit = cacheHit
	job.FinishedAt = time.Now()
	close(job.done)
	job.emit(s.opts.NodeID, telemetry.Event{
		Kind: telemetry.KindJobDone, Wall: job.FinishedAt.UnixNano(),
		App: -1, SM: -1, Job: job.ID, Note: string(status),
		Attempt: int32(job.Attempts), CacheHit: cacheHit,
	})
	switch status {
	case StatusDone:
		s.metrics.jobsCompleted.Add(1)
	case StatusCanceled:
		s.metrics.jobsCanceled.Add(1)
	case StatusForwarded:
		s.metrics.jobsForwarded.Add(1)
	default:
		s.metrics.jobsFailed.Add(1)
	}
	if err := s.appendJournalBounded(journal.OpFinished, job.ID, finishedData{
		Status: status, Error: errMsg, CacheHit: cacheHit, Attempts: job.Attempts,
		ForwardedTo: job.ForwardedTo, Result: res,
	}); err != nil {
		s.metrics.journalErrors.Add(1)
		s.opts.Logger.Error("journal append finished failed", "job", job.ID, "err", err)
	}
	s.maybeCompactLocked()
}

// writeTraceFile dumps a finished job's trace as Chrome trace-event JSON into
// TraceDir. Called outside the server mutex; file I/O must not block job
// state transitions.
func (s *Server) writeTraceFile(job *Job) {
	if s.opts.TraceDir == "" || job.tracer == nil {
		return
	}
	path := fmt.Sprintf("%s/%s.trace.json", s.opts.TraceDir, job.ID)
	f, err := os.Create(path)
	if err != nil {
		s.opts.Logger.Error("trace file create failed", "job", job.ID, "err", err)
		return
	}
	err = telemetry.WriteChromeTrace(f, job.tracer.Events())
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		s.opts.Logger.Error("trace file write failed", "job", job.ID, "path", path, "err", err)
	}
}

// backoffLocked returns the capped exponential backoff with full jitter for
// the given attempt number; the caller holds s.mu (the jitter PRNG is not
// concurrency-safe).
func (s *Server) backoffLocked(attempt int) time.Duration {
	d := s.opts.RetryBaseDelay << uint(attempt-1)
	if d <= 0 || d > s.opts.RetryMaxDelay {
		d = s.opts.RetryMaxDelay
	}
	if s.jitterFn != nil {
		return s.jitterFn(d)
	}
	return time.Duration(s.rng.Int64N(int64(d)) + 1)
}

// requeueAfterBackoff sleeps out the backoff (cut short when the server
// starts draining) and puts the job back on the queue. A job canceled during
// its backoff stays canceled; a drain or full queue during backoff fails the
// job with its last transient error.
func (s *Server) requeueAfterBackoff(job *Job, delay time.Duration) {
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		t := time.NewTimer(delay)
		select {
		case <-t.C:
		case <-s.drainCh:
			t.Stop()
		}
		s.mu.Lock()
		defer s.mu.Unlock()
		if job.Status != StatusQueued {
			return // canceled while backing off
		}
		if s.draining || len(s.queue) == cap(s.queue) {
			s.finalizeLocked(job, StatusFailed, "retry abandoned: "+job.LastError, nil, false)
			return
		}
		s.queue <- job
	}()
}

// TrySteal pops one waiting job off the queue for another node to run,
// finalizing the local record as forwarded-to-thief. It never blocks: when
// the queue is empty (or holds only already-canceled entries) it reports
// false and the victim keeps nothing less. The journal's finished record
// carries the forward, so even a crash right after the steal cannot
// resurrect the job here — the thief journals it under its own ID.
func (s *Server) TrySteal(thief string) (JobRequest, string, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return JobRequest{}, "", false
	}
	for {
		select {
		case job, ok := <-s.queue:
			if !ok {
				return JobRequest{}, "", false
			}
			if job.Status != StatusQueued {
				continue // canceled while queued; already terminal
			}
			job.ForwardedTo = thief
			s.finalizeLocked(job, StatusForwarded, "", nil, false)
			return job.Request, job.ID, true
		default:
			return JobRequest{}, "", false
		}
	}
}

// execute runs the plan's simulation through the content-addressed cache and
// optionally augments it with slowdown metrics against cached alone
// baselines. The returned cacheHit refers to the main simulation. tr, when
// non-nil, receives the simulation's trace events (cache hits skip the
// simulation, so hit jobs carry lifecycle events only) and, for slowdown
// jobs, the measured ground truth.
func (s *Server) execute(ctx context.Context, p plan, tr *telemetry.Tracer) (*JobResult, bool, error) {
	key := simcache.Key(s.opts.Cfg, p.profiles, p.alloc, p.cycles, p.seed, p.variant())
	res, cacheHit, err := s.cachedSim(ctx, key, func(ctx context.Context) (*sim.Result, error) {
		return s.runSim(ctx, p, tr)
	})
	if err != nil {
		return nil, false, err
	}
	out := &JobResult{Sim: res}
	if p.slowdown {
		// Alone baselines are addressed with workload.AloneKey, so they are
		// simulated at most once across slowdown computations and explicit
		// alone-mode jobs with the same budget and seed.
		out.Slowdowns = make([]float64, len(p.profiles))
		out.AloneIPC = make([]float64, len(p.profiles))
		for i, prof := range p.profiles {
			aloneKey := workload.AloneKey(s.opts.Cfg, prof, p.cycles, p.seed)
			alone, _, err := s.cachedSim(ctx, aloneKey, func(ctx context.Context) (*sim.Result, error) {
				return sim.RunAloneContext(ctx, s.opts.Cfg, prof, p.cycles, p.seed, s.simOpts()...)
			})
			if err != nil {
				return nil, false, fmt.Errorf("alone baseline %s: %w", prof.Abbr, err)
			}
			out.AloneIPC[i] = alone.Apps[0].IPC
			out.Slowdowns[i] = metrics.Slowdown(alone.Apps[0].IPC, res.Apps[i].IPC)
		}
		out.Unfairness = metrics.Unfairness(out.Slowdowns)
		out.HarmonicSpeedup = metrics.HarmonicSpeedup(out.Slowdowns)
		s.observeEstimation(p, res, out.Slowdowns, tr)
	}
	return out, cacheHit, nil
}

// observeEstimation scores DASE's per-interval slowdown estimates against the
// job's measured whole-run slowdowns: each interval's relative error feeds
// the dased_estimation_error histogram, and with tracing enabled the ground
// truth is recorded as slowdown.actual events (making the trace
// self-contained for dasetrace). For even-policy jobs — where no scheduler
// ran DASE during the simulation — the per-interval estimates are also
// emitted as dase.app events here. This is pure observation off the hot path:
// the estimator re-runs over the result's retained snapshots.
func (s *Server) observeEstimation(p plan, res *sim.Result, actual []float64, tr *telemetry.Tracer) {
	if p.mode == "alone" {
		return
	}
	est := core.New(core.Options{})
	emitDASE := tr != nil && p.policy == "even"
	for si := range res.Snapshots {
		snap := &res.Snapshots[si]
		det := est.EstimateDetailed(snap)
		for i := range det {
			if i < len(actual) && actual[i] > 0 {
				s.metrics.estError.Observe(abs(det[i].Slowdown-actual[i]) / actual[i])
			}
			if emitDASE {
				tr.Emit(telemetry.Event{
					Kind: telemetry.KindDASEApp, Cycle: snap.Cycle,
					App: int32(i), SM: -1, Note: p.policy,
					Alpha: det[i].Alpha, BLP: snap.Apps[i].BLP,
					TimeBank: det[i].TimeBank, TimeRow: det[i].TimeRow,
					TimeLLC: det[i].TimeLLC, MBB: det[i].MBB,
					Est: det[i].Slowdown, SMs: int32(snap.Apps[i].SMs),
				})
			}
		}
	}
	if tr != nil {
		for i, a := range actual {
			tr.Emit(telemetry.Event{
				Kind: telemetry.KindActual, Cycle: res.Cycles,
				App: int32(i), SM: -1, Actual: a,
			})
		}
	}
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// cachedSim resolves one simulation through the result cache, counting the
// cycles of runs that actually simulated (cache hits are free).
func (s *Server) cachedSim(ctx context.Context, key string, run func(context.Context) (*sim.Result, error)) (*sim.Result, bool, error) {
	simulated := false
	res, err := s.cache.GetOrCompute(ctx, key, func() (*sim.Result, error) {
		simulated = true
		r, err := run(ctx)
		if err == nil {
			s.metrics.simCycles.Add(r.Cycles)
		}
		return r, err
	})
	return res, !simulated, err
}

// simOpts builds the sim options every simulation entry point gets: the
// snapshot-retention cap (so unbounded-length jobs cannot grow a result's
// snapshot slice without limit) and, when configured, the runtime invariant
// sweep. Invariant checking never changes results, so cache keys are shared
// with unchecked servers.
func (s *Server) simOpts() []sim.Option {
	opts := []sim.Option{sim.WithSnapshotRetention(s.opts.SnapshotRetention)}
	if s.opts.CheckInvariants {
		opts = append(opts, sim.WithInvariantChecks())
	}
	if n := s.opts.Parallelism; n != 0 {
		if n < 0 {
			n = 0 // sim.WithParallelism(0) means GOMAXPROCS
		}
		opts = append(opts, sim.WithParallelism(n))
	}
	return opts
}

// runSim dispatches the plan to the right simulation entry point. A non-nil
// tracer is attached to the engine (and, through g.Tracer(), picked up by the
// DASE policies); tracing is observation-only, so traced and untraced runs
// share cache keys.
func (s *Server) runSim(ctx context.Context, p plan, tr *telemetry.Tracer) (*sim.Result, error) {
	opts := s.simOpts()
	if tr != nil {
		opts = append(opts, sim.WithTracer(tr))
	}
	if p.mode == "alone" {
		return sim.RunAloneContext(ctx, s.opts.Cfg, p.profiles[0], p.cycles, p.seed, opts...)
	}
	switch p.policy {
	case "fair":
		return sched.RunContext(ctx, s.opts.Cfg, p.profiles, p.alloc, p.cycles, p.seed, sched.NewDASEFair(), opts...)
	case "perf":
		return sched.RunContext(ctx, s.opts.Cfg, p.profiles, p.alloc, p.cycles, p.seed, sched.NewDASEPerf(), opts...)
	default:
		return sim.RunSharedContext(ctx, s.opts.Cfg, p.profiles, p.alloc, p.cycles, p.seed, opts...)
	}
}
