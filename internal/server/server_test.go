package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"dasesim/internal/config"
	"dasesim/internal/kernels"
	"dasesim/internal/sim"
)

// testCycles keeps the suite fast: one partial interval per run.
const testCycles = 20_000

func newTestServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	if opts.Logger == nil {
		opts.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	if opts.JobTimeout == 0 {
		opts.JobTimeout = time.Minute
	}
	if opts.DefaultCycles == 0 {
		opts.DefaultCycles = testCycles
	}
	s, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})
	return s, ts
}

func postJob(t *testing.T, ts *httptest.Server, req JobRequest) (JobView, *http.Response) {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v JobView
	data, _ := io.ReadAll(resp.Body)
	_ = json.Unmarshal(data, &v)
	return v, resp
}

func getJob(t *testing.T, ts *httptest.Server, id string, waitMS int) JobView {
	t.Helper()
	url := fmt.Sprintf("%s/v1/jobs/%s", ts.URL, id)
	if waitMS > 0 {
		url += "?wait_ms=" + strconv.Itoa(waitMS)
	}
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET job %s: status %d", id, resp.StatusCode)
	}
	var v JobView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

func waitDone(t *testing.T, ts *httptest.Server, id string) JobView {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		v := getJob(t, ts, id, 5000)
		if v.Status.terminal() {
			return v
		}
	}
	t.Fatalf("job %s never finished", id)
	return JobView{}
}

// TestJobMatchesDirectSim proves a job submitted over HTTP returns a result
// byte-identical (as JSON) to calling sim.RunShared directly.
func TestJobMatchesDirectSim(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	_, ts := newTestServer(t, Options{})
	v, resp := postJob(t, ts, JobRequest{Kernels: []string{"SB", "SD"}, Cycles: testCycles, Seed: 7})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d", resp.StatusCode)
	}
	v = waitDone(t, ts, v.ID)
	if v.Status != StatusDone {
		t.Fatalf("job %s: %s (%s)", v.ID, v.Status, v.Error)
	}

	cfg := config.Default()
	sb, _ := kernels.ByAbbr("SB")
	sd, _ := kernels.ByAbbr("SD")
	direct, err := sim.RunShared(cfg, []kernels.Profile{sb, sd}, sim.EvenAllocation(cfg.NumSMs, 2), testCycles, 7)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := json.Marshal(direct)
	got, _ := json.Marshal(v.Result.Sim)
	if !bytes.Equal(want, got) {
		t.Fatalf("HTTP result diverged from direct simulation:\n got %s\nwant %s", got, want)
	}
}

// TestCacheHitOnRepeat proves the second identical submission is served from
// the result cache and the counters record it.
func TestCacheHitOnRepeat(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	_, ts := newTestServer(t, Options{})
	req := JobRequest{Kernels: []string{"SB", "SD"}, Cycles: testCycles}

	v1, _ := postJob(t, ts, req)
	v1 = waitDone(t, ts, v1.ID)
	if v1.Status != StatusDone || v1.CacheHit {
		t.Fatalf("first job: status=%s cache_hit=%t (%s)", v1.Status, v1.CacheHit, v1.Error)
	}

	v2, _ := postJob(t, ts, req)
	v2 = waitDone(t, ts, v2.ID)
	if v2.Status != StatusDone || !v2.CacheHit {
		t.Fatalf("second job: status=%s cache_hit=%t (%s)", v2.Status, v2.CacheHit, v2.Error)
	}

	r1, _ := json.Marshal(v1.Result.Sim)
	r2, _ := json.Marshal(v2.Result.Sim)
	if !bytes.Equal(r1, r2) {
		t.Fatal("cached result differs from the original")
	}

	metrics := fetchMetrics(t, ts)
	if hits := metricValue(t, metrics, "dased_cache_hits_total"); hits < 1 {
		t.Fatalf("cache_hits_total = %v", hits)
	}
	if misses := metricValue(t, metrics, "dased_cache_misses_total"); misses < 1 {
		t.Fatalf("cache_misses_total = %v", misses)
	}
	if n := metricValue(t, metrics, "dased_jobs_completed_total"); n != 2 {
		t.Fatalf("jobs_completed_total = %v", n)
	}
}

// TestConcurrentSubmissions drives 8 concurrent submissions through the
// worker pool and checks deterministic, cache-consistent results.
func TestConcurrentSubmissions(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	_, ts := newTestServer(t, Options{Workers: 4, QueueDepth: 16})
	kernelsBySlot := [][]string{
		{"SB", "SD"}, {"VA", "CT"}, {"SB", "SD"}, {"QR", "BG"},
		{"VA", "CT"}, {"QR", "BG"}, {"SB", "SD"}, {"VA", "CT"},
	}
	ids := make([]string, len(kernelsBySlot))
	var wg sync.WaitGroup
	for i, ks := range kernelsBySlot {
		wg.Add(1)
		go func(i int, ks []string) {
			defer wg.Done()
			v, resp := postJob(t, ts, JobRequest{Kernels: ks, Cycles: testCycles})
			if resp.StatusCode != http.StatusAccepted {
				t.Errorf("slot %d: submit status %d", i, resp.StatusCode)
				return
			}
			ids[i] = v.ID
		}(i, ks)
	}
	wg.Wait()
	results := make([]string, len(ids))
	for i, id := range ids {
		if id == "" {
			t.Fatal("missing job id")
		}
		v := waitDone(t, ts, id)
		if v.Status != StatusDone {
			t.Fatalf("job %s: %s (%s)", id, v.Status, v.Error)
		}
		data, _ := json.Marshal(v.Result.Sim)
		results[i] = string(data)
	}
	// Identical submissions must produce identical results regardless of
	// worker interleaving or cache path.
	for i, ks := range kernelsBySlot {
		for j := i + 1; j < len(kernelsBySlot); j++ {
			if strings.Join(ks, "+") == strings.Join(kernelsBySlot[j], "+") && results[i] != results[j] {
				t.Fatalf("slots %d and %d diverged for %v", i, j, ks)
			}
		}
	}
}

// TestQueueFull429AndCancel exercises backpressure and both cancel paths
// with a single worker held busy by a long-running job.
func TestQueueFull429AndCancel(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	_, ts := newTestServer(t, Options{Workers: 1, QueueDepth: 1, MaxCycles: 2_000_000_000})

	running, _ := postJob(t, ts, JobRequest{Kernels: []string{"SB"}, Cycles: 1_000_000_000})
	deadline := time.Now().Add(30 * time.Second)
	for getJob(t, ts, running.ID, 0).Status != StatusRunning {
		if time.Now().After(deadline) {
			t.Fatal("job never started running")
		}
		time.Sleep(5 * time.Millisecond)
	}

	queued, resp := postJob(t, ts, JobRequest{Kernels: []string{"SD"}, Cycles: testCycles})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("second submit status %d", resp.StatusCode)
	}
	_, resp = postJob(t, ts, JobRequest{Kernels: []string{"VA"}, Cycles: testCycles})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow submit status %d, want 429", resp.StatusCode)
	}
	if n := metricValue(t, fetchMetrics(t, ts), "dased_jobs_rejected_total"); n != 1 {
		t.Fatalf("jobs_rejected_total = %v", n)
	}

	// Cancel the queued job: it must go terminal without ever running.
	cancelJob(t, ts, queued.ID, http.StatusOK)
	if v := waitDone(t, ts, queued.ID); v.Status != StatusCanceled {
		t.Fatalf("queued job after cancel: %s", v.Status)
	}

	// Cancel the running job: the context aborts the simulation.
	cancelJob(t, ts, running.ID, http.StatusOK)
	v := waitDone(t, ts, running.ID)
	if v.Status != StatusCanceled {
		t.Fatalf("running job after cancel: %s (%s)", v.Status, v.Error)
	}
	// Cancelling a finished job conflicts.
	cancelJob(t, ts, running.ID, http.StatusConflict)
}

// TestJobTimeout proves the per-job deadline fails the job, not the server.
func TestJobTimeout(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	_, ts := newTestServer(t, Options{MaxCycles: 2_000_000_000})
	v, _ := postJob(t, ts, JobRequest{Kernels: []string{"SB"}, Cycles: 1_000_000_000, TimeoutMS: 50})
	v = waitDone(t, ts, v.ID)
	if v.Status != StatusFailed || !strings.Contains(v.Error, "timeout") {
		t.Fatalf("status=%s error=%q", v.Status, v.Error)
	}
	if n := metricValue(t, fetchMetrics(t, ts), "dased_jobs_failed_total"); n != 1 {
		t.Fatalf("jobs_failed_total = %v", n)
	}
}

// TestSlowdownJob checks the slowdown augmentation against a direct
// computation through the same public simulation API.
func TestSlowdownJob(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	_, ts := newTestServer(t, Options{})
	v, _ := postJob(t, ts, JobRequest{Kernels: []string{"SB", "SD"}, Cycles: testCycles, Slowdowns: true})
	v = waitDone(t, ts, v.ID)
	if v.Status != StatusDone {
		t.Fatalf("job: %s (%s)", v.Status, v.Error)
	}
	if len(v.Result.Slowdowns) != 2 || len(v.Result.AloneIPC) != 2 {
		t.Fatalf("slowdowns missing: %+v", v.Result)
	}
	for i, s := range v.Result.Slowdowns {
		if s < 1.0 {
			t.Errorf("app %d slowdown %v < 1", i, s)
		}
	}
	if v.Result.Unfairness < 1 || v.Result.HarmonicSpeedup <= 0 {
		t.Fatalf("metrics: unfairness=%v hspeedup=%v", v.Result.Unfairness, v.Result.HarmonicSpeedup)
	}
}

// TestValidationErrors exercises the 400 paths.
func TestValidationErrors(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	cases := []JobRequest{
		{},                        // no kernels
		{Kernels: []string{"XX"}}, // unknown kernel
		{Kernels: []string{"SB"}, Alloc: []int{99}},      // too many SMs
		{Kernels: []string{"SB", "SD"}, Alloc: []int{8}}, // alloc arity
		{Kernels: []string{"SB"}, Cycles: 1 << 62},       // over budget
		{Kernels: []string{"SB"}, Mode: "weird"},         // bad mode
		{Kernels: []string{"SB"}, Policy: "weird"},       // bad policy
		{Kernels: []string{"SB", "SD"}, Mode: "alone"},   // alone arity
	}
	for i, req := range cases {
		_, resp := postJob(t, ts, req)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("case %d: status %d, want 400", i, resp.StatusCode)
		}
	}
	if n := metricValue(t, fetchMetrics(t, ts), "dased_jobs_submitted_total"); n != 0 {
		t.Fatalf("invalid submissions were counted: %v", n)
	}
}

// TestPanicRecovery proves a panicking job fails the job, not the daemon.
func TestPanicRecovery(t *testing.T) {
	s, ts := newTestServer(t, Options{})
	// A plan with no profiles in alone mode panics in runSim — the kind of
	// internal bug panic recovery exists for.
	job := &Job{
		ID:     "job-panic",
		Status: StatusQueued,
		plan:   plan{mode: "alone", timeout: time.Minute},
		done:   make(chan struct{}),
	}
	s.mu.Lock()
	s.jobs[job.ID] = job
	s.jobOrder = append(s.jobOrder, job.ID)
	s.mu.Unlock()
	s.queue <- job

	v := waitDone(t, ts, job.ID)
	if v.Status != StatusFailed || !strings.Contains(v.Error, "panic") {
		t.Fatalf("status=%s error=%q", v.Status, v.Error)
	}
	// The daemon survives and still serves.
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz after panic: %d", resp.StatusCode)
	}
}

// TestHealthzAndKernels covers the read-only endpoints.
func TestHealthzAndKernels(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health map[string]any
	_ = json.NewDecoder(resp.Body).Decode(&health)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || health["status"] != "ok" {
		t.Fatalf("healthz: %d %+v", resp.StatusCode, health)
	}

	resp, err = http.Get(ts.URL + "/v1/kernels")
	if err != nil {
		t.Fatal(err)
	}
	var kr struct {
		Kernels []struct {
			Abbr string `json:"abbr"`
		} `json:"kernels"`
	}
	_ = json.NewDecoder(resp.Body).Decode(&kr)
	resp.Body.Close()
	if len(kr.Kernels) != len(kernels.All()) {
		t.Fatalf("kernels: got %d, want %d", len(kr.Kernels), len(kernels.All()))
	}
}

// TestShutdownDrains proves graceful shutdown finishes queued work and
// rejects new submissions with 503.
func TestShutdownDrains(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	s, ts := newTestServer(t, Options{})
	v, _ := postJob(t, ts, JobRequest{Kernels: []string{"SB", "SD"}, Cycles: testCycles})

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if got := getJob(t, ts, v.ID, 0); got.Status != StatusDone {
		t.Fatalf("drained job: %s (%s)", got.Status, got.Error)
	}
	_, resp := postJob(t, ts, JobRequest{Kernels: []string{"SB"}, Cycles: testCycles})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining: %d, want 503", resp.StatusCode)
	}
}

func cancelJob(t *testing.T, ts *httptest.Server, id string, wantStatus int) {
	t.Helper()
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+id, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != wantStatus {
		t.Fatalf("DELETE %s: status %d, want %d", id, resp.StatusCode, wantStatus)
	}
}

func fetchMetrics(t *testing.T, ts *httptest.Server) string {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status %d", resp.StatusCode)
	}
	data, _ := io.ReadAll(resp.Body)
	return string(data)
}

// metricValue extracts one metric's value from Prometheus text output.
func metricValue(t *testing.T, text, name string) float64 {
	t.Helper()
	re := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(name) + ` ([0-9.e+-]+)$`)
	m := re.FindStringSubmatch(text)
	if m == nil {
		t.Fatalf("metric %s missing from:\n%s", name, text)
	}
	v, err := strconv.ParseFloat(m[1], 64)
	if err != nil {
		t.Fatal(err)
	}
	return v
}
