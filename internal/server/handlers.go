package server

import (
	"encoding/json"
	"errors"
	"net/http"
	"strconv"
	"time"

	"dasesim/internal/telemetry"
)

// ErrQueueFull, ErrShed, ErrDraining, and ErrJournal classify submission
// failures into HTTP statuses (429, 429, 503, 500). They are exported so the
// cluster layer can tell a node that is merely saturated (route the job to
// the next preference) from one rejecting the request outright.
var (
	ErrQueueFull = errors.New("job queue full")
	ErrShed      = errors.New("queue over high-water mark; uncached submissions shed")
	ErrDraining  = errors.New("server shutting down")
	ErrJournal   = errors.New("journal write failed")
)

// SubmitStatus maps a Submit error to the HTTP status the single-node API
// uses for it, keeping cluster-forwarded rejections indistinguishable from
// local ones.
func SubmitStatus(err error) int {
	switch {
	case err == nil:
		return http.StatusAccepted
	case errors.Is(err, ErrQueueFull), errors.Is(err, ErrShed):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrDraining):
		return http.StatusServiceUnavailable
	case errors.Is(err, ErrJournal):
		return http.StatusInternalServerError
	default:
		return http.StatusBadRequest
	}
}

// Handler returns the daemon's HTTP API:
//
//	POST   /v1/jobs              submit a job (202, body: job view)
//	GET    /v1/jobs              list job views, newest last
//	GET    /v1/jobs/{id}         one job view (?wait_ms=N long-polls completion)
//	GET    /v1/jobs/{id}/trace   the job's event trace (?format=chrome|ndjson)
//	DELETE /v1/jobs/{id}         cancel a queued or running job
//	GET    /v1/kernels           the kernel catalogue
//	POST   /v1/estimate          online DASE estimation (object or array batch)
//	POST   /v1/estimate/stream   NDJSON request/response estimation stream
//	GET    /healthz              liveness probe (503 only while draining)
//	GET    /readyz               readiness probe (503 during replay, drain, or failed checks; SLO detail when enabled)
//	GET    /metrics              Prometheus text metrics
//	GET    /v1/metrics/snapshot  structured registry snapshot (metrics federation wire form)
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleGet)
	mux.HandleFunc("GET /v1/jobs/{id}/trace", s.handleTrace)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/kernels", s.handleKernels)
	mux.HandleFunc("POST /v1/estimate", s.handleEstimate)
	mux.HandleFunc("POST /v1/estimate/stream", s.handleEstimateStream)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /readyz", s.handleReady)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /v1/metrics/snapshot", s.handleMetricsSnapshot)
	return s.logMiddleware(mux)
}

// statusRecorder captures the response status for the request log.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

// Flush forwards to the wrapped writer so streaming handlers (the NDJSON
// estimation stream) can push lines through the middleware.
func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Unwrap lets http.ResponseController reach the underlying writer (the
// stream handler needs EnableFullDuplex).
func (r *statusRecorder) Unwrap() http.ResponseWriter {
	return r.ResponseWriter
}

// logMiddleware emits one structured line per request, carrying the job id
// for job-scoped routes.
func (s *Server) logMiddleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		next.ServeHTTP(rec, r)
		attrs := []any{
			"method", r.Method, "path", r.URL.Path,
			"status", rec.status, "dur", time.Since(start).Round(time.Microsecond),
		}
		if id := r.PathValue("id"); id != "" {
			attrs = append(attrs, "job", id)
		}
		s.opts.Logger.Info("request", attrs...)
	})
}

// writeJSON renders v with the given status. Encode failures (a closed
// connection, an unmarshalable value) are logged rather than silently
// dropped — by then the status line is already on the wire, so logging is
// all that is left to do.
func (s *Server) writeJSON(w http.ResponseWriter, r *http.Request, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		s.opts.Logger.Error("write json failed", "path", r.URL.Path, "status", status, "err", err)
	}
}

// writeError renders a JSON error body that names the request path, so a
// client juggling several in-flight calls can tell which one failed.
func (s *Server) writeError(w http.ResponseWriter, r *http.Request, status int, msg string) {
	s.writeJSON(w, r, status, map[string]string{"error": msg, "path": r.URL.Path})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req JobRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.writeError(w, r, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	// Continue the caller's trace when the request carries context headers
	// (set by clients or by a forwarding cluster peer); absent headers start
	// a fresh trace.
	job, err := s.submitSpan(req, telemetry.SpanFromHeaders(r.Header))
	switch {
	case err != nil:
		s.writeError(w, r, SubmitStatus(err), err.Error())
	default:
		s.mu.Lock()
		v := job.view()
		span := job.span
		s.mu.Unlock()
		span.SetHeaders(w.Header())
		s.writeJSON(w, r, http.StatusAccepted, v)
	}
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	views := make([]JobView, 0, len(s.jobOrder))
	for _, id := range s.jobOrder {
		if j, ok := s.jobs[id]; ok {
			views = append(views, j.view())
		}
	}
	s.mu.Unlock()
	s.writeJSON(w, r, http.StatusOK, map[string]any{"jobs": views})
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	job, ok := s.getJob(r.PathValue("id"))
	if !ok {
		s.writeError(w, r, http.StatusNotFound, "no such job")
		return
	}
	if ms, err := strconv.Atoi(r.URL.Query().Get("wait_ms")); err == nil && ms > 0 {
		// Long-poll: return early when the job reaches a terminal state.
		// Oversized waits are clamped so a client cannot pin a handler
		// goroutine indefinitely; a job already terminal returns at once
		// (its done channel is closed).
		wait := time.Duration(ms) * time.Millisecond
		if wait > s.opts.LongPollMax {
			wait = s.opts.LongPollMax
		}
		t := time.NewTimer(wait)
		select {
		case <-job.done:
		case <-t.C:
		case <-r.Context().Done():
		}
		t.Stop()
	}
	s.mu.Lock()
	v := job.view()
	s.mu.Unlock()
	s.writeJSON(w, r, http.StatusOK, v)
}

// handleTrace serves a job's event trace: Chrome trace-event JSON by default
// (loadable in chrome://tracing or Perfetto), NDJSON with ?format=ndjson
// (consumable by cmd/dasetrace).
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	job, ok := s.getJob(r.PathValue("id"))
	if !ok {
		s.writeError(w, r, http.StatusNotFound, "no such job")
		return
	}
	if job.tracer == nil {
		s.writeError(w, r, http.StatusNotFound, "tracing disabled; start the server with trace events enabled")
		return
	}
	events := job.tracer.Events()
	var err error
	switch format := r.URL.Query().Get("format"); format {
	case "", "chrome":
		w.Header().Set("Content-Type", "application/json")
		err = telemetry.WriteChromeTrace(w, events)
	case "ndjson":
		w.Header().Set("Content-Type", "application/x-ndjson")
		err = telemetry.WriteNDJSON(w, events)
	default:
		s.writeError(w, r, http.StatusBadRequest, "unknown format "+strconv.Quote(format)+" (chrome | ndjson)")
		return
	}
	if err != nil {
		s.opts.Logger.Error("write trace failed", "job", job.ID, "err", err)
	}
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	found, canceled := s.cancelJob(id)
	switch {
	case !found:
		s.writeError(w, r, http.StatusNotFound, "no such job")
	case !canceled:
		s.writeError(w, r, http.StatusConflict, "job already finished")
	default:
		s.writeJSON(w, r, http.StatusOK, map[string]string{"id": id, "status": "canceling"})
	}
}

func (s *Server) handleKernels(w http.ResponseWriter, r *http.Request) {
	type kernelView struct {
		Abbr    string  `json:"abbr"`
		Name    string  `json:"name"`
		PaperBW float64 `json:"paper_bw"`
	}
	out := make([]kernelView, 0, len(s.opts.Catalogue))
	for _, p := range s.opts.Catalogue {
		out = append(out, kernelView{Abbr: p.Abbr, Name: p.Name, PaperBW: p.PaperBW})
	}
	s.writeJSON(w, r, http.StatusOK, map[string]any{"kernels": out})
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	status := "ok"
	code := http.StatusOK
	if draining {
		status = "draining"
		code = http.StatusServiceUnavailable
	}
	s.writeJSON(w, r, code, map[string]any{
		"status":   status,
		"uptime_s": time.Since(s.metrics.start).Seconds(),
	})
}

// handleReady is the readiness probe: unlike /healthz (liveness — the process
// is up and able to answer), /readyz answers whether this node should receive
// traffic. It reports 503 until Start has finished journal replay, while
// draining, and whenever any registered readiness check (e.g. cluster quorum)
// fails.
// Enabled SLO evaluation adds an "slo" detail listing each objective's
// current status and burn rate; alerting objectives are informational — a
// node burning error budget should still receive traffic, just also a page.
func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	if err := s.Ready(); err != nil {
		body := map[string]any{
			"status": "unavailable",
			"reason": err.Error(),
		}
		if st := s.SLOStatuses(); st != nil {
			body["slo"] = st
		}
		s.writeJSON(w, r, http.StatusServiceUnavailable, body)
		return
	}
	if st := s.SLOStatuses(); st != nil {
		s.writeJSON(w, r, http.StatusOK, map[string]any{"status": "ready", "slo": st})
		return
	}
	s.writeJSON(w, r, http.StatusOK, map[string]string{"status": "ready"})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.metrics.WritePrometheus(w)
}

// handleMetricsSnapshot serves the registry as a structured NodeSnapshot —
// the wire form the cluster's metrics federation scatter-gathers and merges.
func (s *Server) handleMetricsSnapshot(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, r, http.StatusOK, telemetry.NodeSnapshot{
		Node:     s.opts.NodeID,
		Families: s.metrics.reg.Snapshot(),
	})
}
