package server

import (
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"path/filepath"
	"testing"
	"time"

	"dasesim/internal/journal"
	"dasesim/internal/sim"
)

// TestReadyzLifecycle walks the readiness state machine: 503 before Start,
// 200 after, 503 when a registered check fails, 503 while draining — with
// /healthz staying 200 throughout the non-draining states (liveness and
// readiness are different questions).
func TestReadyzLifecycle(t *testing.T) {
	opts := Options{
		Logger:        slog.New(slog.NewTextHandler(io.Discard, nil)),
		JobTimeout:    time.Minute,
		DefaultCycles: testCycles,
	}
	s, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Ready(); err == nil {
		t.Fatal("Ready() nil before Start")
	}
	s.Start()
	defer func() {
		ctx, cancel := testCtx()
		defer cancel()
		_ = s.Shutdown(ctx)
	}()
	if err := s.Ready(); err != nil {
		t.Fatalf("Ready() after Start: %v", err)
	}

	// A failing named check flips readiness; its name is in the reason.
	failing := true
	s.AddReadinessCheck("quorum", func() error {
		if failing {
			return errNotReady
		}
		return nil
	})
	err = s.Ready()
	if err == nil {
		t.Fatal("Ready() nil with a failing check")
	}
	if got := err.Error(); got != "quorum: not ready" {
		t.Fatalf("Ready() = %q, want the check named in the reason", got)
	}
	failing = false
	if err := s.Ready(); err != nil {
		t.Fatalf("Ready() after the check recovered: %v", err)
	}
}

var errNotReady = jsonErr("not ready")

type jsonErr string

func (e jsonErr) Error() string { return string(e) }

// TestReadyzEndpoint checks the HTTP surface: /readyz mirrors Ready() with
// 200/503 and a JSON reason, while /healthz stays 200 until draining.
func TestReadyzEndpoint(t *testing.T) {
	s, ts := newTestServer(t, Options{})
	get := func(path string) (int, map[string]string) {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var body map[string]string
		_ = json.NewDecoder(resp.Body).Decode(&body)
		return resp.StatusCode, body
	}
	if code, body := get("/readyz"); code != http.StatusOK || body["status"] != "ready" {
		t.Fatalf("/readyz = %d %v, want 200 ready", code, body)
	}
	s.AddReadinessCheck("cluster-quorum", func() error { return errNotReady })
	code, body := get("/readyz")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("/readyz with failing check = %d, want 503", code)
	}
	if body["reason"] != "cluster-quorum: not ready" {
		t.Fatalf("/readyz reason = %q", body["reason"])
	}
	// Liveness is unaffected by readiness checks.
	if code, _ := get("/healthz"); code != http.StatusOK {
		t.Fatalf("/healthz = %d with failing readiness check, want 200", code)
	}
}

// TestNodeIDJobPrefix checks cluster identity threads through job IDs and
// survives a journal restart: IDs carry the node prefix, the sequence
// counter resumes past replayed IDs, and a NodeID that would corrupt the ID
// grammar is rejected at construction.
func TestNodeIDJobPrefix(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	for _, bad := range []string{"a-job-b", "a/b", "a b"} {
		if _, err := New(Options{NodeID: bad}); err == nil {
			t.Fatalf("NodeID %q accepted", bad)
		}
	}
	jpath := filepath.Join(t.TempDir(), "n7.wal")
	opts := Options{
		NodeID:        "n7",
		Workers:       1,
		JournalPath:   jpath,
		JobTimeout:    time.Minute,
		DefaultCycles: testCycles,
		Logger:        slog.New(slog.NewTextHandler(io.Discard, nil)),
	}
	s, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	v, err := s.Submit(JobRequest{Kernels: []string{"SB"}, Cycles: testCycles, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if v.ID != "n7-job-1" {
		t.Fatalf("job ID %q, want n7-job-1", v.ID)
	}
	awaitTerminal(t, s, v.ID)
	crash(t, s)

	s2, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	s2.Start()
	t.Cleanup(func() {
		ctx, cancel := testCtx()
		defer cancel()
		_ = s2.Shutdown(ctx)
	})
	if _, ok := s2.View("n7-job-1"); !ok {
		t.Fatal("replayed job lost its prefixed ID")
	}
	v2, err := s2.Submit(JobRequest{Kernels: []string{"SB"}, Cycles: testCycles, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if v2.ID != "n7-job-2" {
		t.Fatalf("post-replay job ID %q, want n7-job-2", v2.ID)
	}
}

// TestTrySteal checks the work-stealing donor side: only queued jobs are
// handed out, the local record turns terminal forwarded with the thief
// attributed, and — the crash-safety half — the forward is journaled, so a
// restart cannot resurrect the job.
func TestTrySteal(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	jpath := filepath.Join(t.TempDir(), "victim.wal")
	opts := Options{
		Workers:       1,
		QueueDepth:    8,
		JournalPath:   jpath,
		JobTimeout:    5 * time.Minute,
		DefaultCycles: testCycles,
		MaxCycles:     2_000_000_000,
		Logger:        slog.New(slog.NewTextHandler(io.Discard, nil)),
	}
	s, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	if _, _, ok := s.TrySteal("thief"); ok {
		t.Fatal("stole from an empty queue")
	}
	// Pin the single worker, then queue a stealable job behind it.
	long, err := s.Submit(JobRequest{Kernels: []string{"SB"}, Cycles: 600_000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for statusOf(t, s, long.ID) != StatusRunning {
		if time.Now().After(deadline) {
			t.Fatal("long job never started")
		}
		time.Sleep(2 * time.Millisecond)
	}
	queued, err := s.Submit(JobRequest{Kernels: []string{"SB"}, Cycles: testCycles, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	req, id, ok := s.TrySteal("thief")
	if !ok || id != queued.ID {
		t.Fatalf("TrySteal = %q/%v, want %q/true", id, ok, queued.ID)
	}
	if req.Seed != 2 {
		t.Fatalf("stolen request seed %d, want 2", req.Seed)
	}
	v, ok := s.View(queued.ID)
	if !ok || v.Status != StatusForwarded || v.ForwardedTo != "thief" {
		t.Fatalf("stolen job view = %+v, want forwarded to thief", v)
	}
	if got := s.metrics.jobsForwarded.Load(); got != 1 {
		t.Fatalf("jobsForwarded = %d, want 1", got)
	}
	if _, _, ok := s.TrySteal("thief"); ok {
		t.Fatal("stole the running job")
	}
	crash(t, s)

	// The journal remembers the forward: the job replays terminal, not
	// queued — a restart must not run work that was given away.
	s2, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	s2.Start()
	t.Cleanup(func() {
		ctx, cancel := testCtx()
		defer cancel()
		_ = s2.Shutdown(ctx)
	})
	v2, ok := s2.View(queued.ID)
	if !ok {
		t.Fatal("forwarded job lost in replay")
	}
	if v2.Status != StatusForwarded || v2.ForwardedTo != "thief" {
		t.Fatalf("replayed stolen job = %s/%q, want forwarded/thief", v2.Status, v2.ForwardedTo)
	}
}

// TestSubmitStatusMapping pins the error→HTTP-status contract the cluster
// routing layer depends on to tell "try the next node" from "every node
// would refuse this".
func TestSubmitStatusMapping(t *testing.T) {
	cases := []struct {
		err  error
		want int
	}{
		{nil, http.StatusAccepted},
		{ErrQueueFull, http.StatusTooManyRequests},
		{ErrShed, http.StatusTooManyRequests},
		{ErrDraining, http.StatusServiceUnavailable},
		{ErrJournal, http.StatusInternalServerError},
		{errNotReady, http.StatusBadRequest},
	}
	for _, c := range cases {
		if got := SubmitStatus(c.err); got != c.want {
			t.Errorf("SubmitStatus(%v) = %d, want %d", c.err, got, c.want)
		}
	}
}

// TestRouteKeyAndSeedResult checks the cluster-facing cache plumbing without
// running a simulation: the routing key matches the cache key (identical
// requests collide, different seeds do not), and SeedResult inserts exactly
// once.
func TestRouteKeyAndSeedResult(t *testing.T) {
	s, _ := newTestServer(t, Options{})
	req := JobRequest{Kernels: []string{"SB"}, Cycles: testCycles, Seed: 11}
	k1, err := s.RouteKey(req)
	if err != nil {
		t.Fatal(err)
	}
	k2, err := s.RouteKey(JobRequest{Kernels: []string{"SB"}, Cycles: testCycles, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Fatal("identical requests produced different route keys")
	}
	k3, err := s.RouteKey(JobRequest{Kernels: []string{"SB"}, Cycles: testCycles, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	if k1 == k3 {
		t.Fatal("different seeds share a route key")
	}
	if _, err := s.RouteKey(JobRequest{Kernels: []string{"NOPE"}}); err == nil {
		t.Fatal("invalid request produced a route key")
	}

	res := &JobResult{Sim: &sim.Result{}}
	if !s.SeedResult(req, res) {
		t.Fatal("first seed not inserted")
	}
	if s.SeedResult(req, res) {
		t.Fatal("second seed of the same key reported as new")
	}
	if s.SeedResult(req, nil) || s.SeedResult(req, &JobResult{}) {
		t.Fatal("resultless seed accepted")
	}
	if s.SeedResult(JobRequest{Kernels: []string{"NOPE"}}, res) {
		t.Fatal("invalid request seeded")
	}
}

// TestExtractJournalJobs feeds a fabricated journal through the hand-off
// reader: finished jobs come back terminal with results, a forward is
// terminal, a submitted-only job is the non-terminal remainder, and a
// finished record without its submission (torn prefix after compaction
// truncation) is dropped.
func TestExtractJournalJobs(t *testing.T) {
	mustJSON := func(v any) json.RawMessage {
		data, err := json.Marshal(v)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	reqA := JobRequest{Kernels: []string{"SB"}, Seed: 1}
	reqB := JobRequest{Kernels: []string{"SD"}, Seed: 2}
	reqC := JobRequest{Kernels: []string{"VA"}, Seed: 3}
	reqD := JobRequest{Kernels: []string{"CT"}, Seed: 4}
	recs := []journal.Record{
		{Op: journal.OpSubmitted, JobID: "n1-job-1", Data: mustJSON(submittedData{Request: reqA})},
		{Op: journal.OpSubmitted, JobID: "n1-job-2", Data: mustJSON(submittedData{Request: reqB})},
		{Op: journal.OpSubmitted, JobID: "n1-job-3", Data: mustJSON(submittedData{Request: reqC})},
		{Op: journal.OpSubmitted, JobID: "n1-job-4", Data: mustJSON(submittedData{Request: reqD})},
		{Op: journal.OpStarted, JobID: "n1-job-1", Data: mustJSON(startedData{Attempt: 1})},
		{Op: journal.OpFinished, JobID: "n1-job-1", Data: mustJSON(finishedData{
			Status: StatusDone, Result: &JobResult{Sim: &sim.Result{}},
		})},
		{Op: journal.OpFinished, JobID: "n1-job-2", Data: mustJSON(finishedData{
			Status: StatusForwarded, ForwardedTo: "n2",
		})},
		{Op: journal.OpCanceled, JobID: "n1-job-3"},
		{Op: journal.OpStarted, JobID: "n1-job-4", Data: mustJSON(startedData{Attempt: 1})},
		// Torn prefix: a finished record whose submission was compacted away.
		{Op: journal.OpFinished, JobID: "n1-job-0", Data: mustJSON(finishedData{Status: StatusDone})},
	}
	jobs := ExtractJournalJobs(recs)
	if len(jobs) != 4 {
		t.Fatalf("extracted %d jobs, want 4: %+v", len(jobs), jobs)
	}
	byID := map[string]JournaledJob{}
	for _, j := range jobs {
		byID[j.ID] = j
	}
	if j := byID["n1-job-1"]; !j.Terminal || j.Status != StatusDone || j.Result == nil || j.Request.Seed != 1 {
		t.Fatalf("done job extracted wrong: %+v", j)
	}
	if j := byID["n1-job-2"]; !j.Terminal || j.Status != StatusForwarded {
		t.Fatalf("forwarded job extracted wrong: %+v", j)
	}
	if j := byID["n1-job-3"]; !j.Terminal || j.Status != StatusCanceled {
		t.Fatalf("canceled job extracted wrong: %+v", j)
	}
	if j := byID["n1-job-4"]; j.Terminal || j.Status != StatusQueued {
		t.Fatalf("started-not-finished job must be non-terminal queued: %+v", j)
	}
	if _, ok := byID["n1-job-0"]; ok {
		t.Fatal("request-less job must be dropped")
	}
}

// TestViewsAndQueueLen covers the cluster-facing read API on an idle server.
func TestViewsAndQueueLen(t *testing.T) {
	s, _ := newTestServer(t, Options{NodeID: "nx"})
	if got := s.NodeID(); got != "nx" {
		t.Fatalf("NodeID = %q", got)
	}
	if got := s.QueueLen(); got != 0 {
		t.Fatalf("QueueLen = %d on an idle server", got)
	}
	if got := s.Views(); len(got) != 0 {
		t.Fatalf("Views = %v on an empty server", got)
	}
	if _, ok := s.View("nx-job-99"); ok {
		t.Fatal("View found a job that never existed")
	}
	if s.MetricsRegistry() == nil {
		t.Fatal("MetricsRegistry is nil")
	}
}

// TestSubmitListCancelShort drives the programmatic Submit path plus the list
// and cancel endpoints with one cheap job, then kills the server the way the
// cluster test harness does.
func TestSubmitListCancelShort(t *testing.T) {
	s, ts := newTestServer(t, Options{Workers: 1, DefaultCycles: 2_000})
	if _, _, ok := s.TrySteal("thief"); ok {
		t.Fatal("stole from an empty queue")
	}
	v, err := s.Submit(JobRequest{Kernels: []string{"SB"}, Cycles: 2_000, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(JobRequest{Kernels: []string{"NOPE"}}); err == nil {
		t.Fatal("invalid kernel accepted")
	}
	awaitTerminal(t, s, v.ID)
	if got := s.Views(); len(got) != 1 || got[0].ID != v.ID {
		t.Fatalf("Views = %+v, want the one submitted job", got)
	}

	resp, err := http.Get(ts.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	var listed struct {
		Jobs []JobView `json:"jobs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&listed); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(listed.Jobs) != 1 || listed.Jobs[0].ID != v.ID {
		t.Fatalf("GET /v1/jobs = %+v", listed.Jobs)
	}

	del := func(id string) int {
		req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+id, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := del("nope"); code != http.StatusNotFound {
		t.Fatalf("DELETE unknown job = %d, want 404", code)
	}
	if code := del(v.ID); code != http.StatusConflict {
		t.Fatalf("DELETE finished job = %d, want 409", code)
	}

	s.Kill()
	if err := s.Ready(); err == nil {
		t.Fatal("Ready() nil after Kill")
	}
}
