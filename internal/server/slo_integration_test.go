package server

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"dasesim/internal/slo"
)

// TestServerSLOIntegration wires the SLO evaluator into a live server: the
// burn-rate gauges appear on /metrics, /readyz reports per-objective status,
// and driving an impossible latency objective with real estimate traffic
// makes the burn rate climb — all through public surfaces only.
func TestServerSLOIntegration(t *testing.T) {
	objectives := []slo.Objective{
		{
			// Impossible on purpose: no estimate completes in a femtosecond,
			// so every observation burns error budget.
			Name:      "estimate-impossible",
			Metric:    "dased_estimate_latency_seconds",
			Threshold: 1e-15,
			Target:    0.99,
		},
		{
			// Trivially satisfied: estimates finish within an hour.
			Name:      "estimate-generous",
			Metric:    "dased_estimate_latency_seconds",
			Threshold: 3600,
			Target:    0.5,
		},
	}
	// A one-hour interval keeps the background loop quiet; the test forces
	// evaluations via SLOTick for determinism.
	s, ts := newTestServer(t, Options{SLOInterval: time.Hour, SLOObjectives: objectives})

	// Before any traffic the gauges exist, zero-valued, on /metrics.
	metrics := fetchMetrics(t, ts)
	for _, want := range []string{
		`dased_slo_burn_rate{objective="estimate-impossible"} 0`,
		`dased_slo_alerting{objective="estimate-impossible"} 0`,
		`dased_slo_burn_rate{objective="estimate-generous"} 0`,
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics before traffic missing %q", want)
		}
	}

	// Real traffic: every estimate violates the impossible objective.
	for i := 0; i < 5; i++ {
		resp, data := postEstimate(t, ts, estBody(uint64(100+i)))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("estimate %d: status %d: %s", i, resp.StatusCode, data)
		}
	}
	statuses := s.SLOTick()
	if len(statuses) != 2 {
		t.Fatalf("SLOTick returned %d statuses, want 2", len(statuses))
	}
	byName := map[string]slo.Status{}
	for _, st := range statuses {
		byName[st.Name] = st
	}
	imp := byName["estimate-impossible"]
	if imp.Current != 0 {
		t.Errorf("impossible objective good-fraction = %v, want 0", imp.Current)
	}
	if imp.MaxBurn <= 1 {
		t.Errorf("impossible objective burn = %v, want > 1 (budget burning fast)", imp.MaxBurn)
	}
	gen := byName["estimate-generous"]
	if gen.Current != 1 || gen.MaxBurn != 0 {
		t.Errorf("generous objective = current %v burn %v, want 1 and 0", gen.Current, gen.MaxBurn)
	}

	// The evaluation lands on the exposition.
	metrics = fetchMetrics(t, ts)
	if strings.Contains(metrics, `dased_slo_burn_rate{objective="estimate-impossible"} 0`) {
		t.Error("/metrics still reports zero burn for the violated objective")
	}

	// /readyz carries the per-objective detail while staying 200: burning
	// budget is a page, not a reason to shed traffic.
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/readyz status %d, want 200", resp.StatusCode)
	}
	var body struct {
		Status string       `json:"status"`
		SLO    []slo.Status `json:"slo"`
	}
	data, _ := io.ReadAll(resp.Body)
	if err := json.Unmarshal(data, &body); err != nil {
		t.Fatalf("/readyz body: %v\n%s", err, data)
	}
	if body.Status != "ready" || len(body.SLO) != 2 {
		t.Fatalf("/readyz = %s with %d objectives, want ready with 2:\n%s",
			body.Status, len(body.SLO), data)
	}
	for _, st := range body.SLO {
		if st.Name == "estimate-impossible" && st.MaxBurn <= 1 {
			t.Errorf("/readyz burn for violated objective = %v, want > 1", st.MaxBurn)
		}
	}
}

// TestServerSLODisabled pins the default-off behaviour: no SLOInterval means
// no evaluator, no gauges, and a bare /readyz body.
func TestServerSLODisabled(t *testing.T) {
	s, ts := newTestServer(t, Options{})
	if got := s.SLOTick(); got != nil {
		t.Fatalf("SLOTick on a non-SLO server = %v, want nil", got)
	}
	if strings.Contains(fetchMetrics(t, ts), "dased_slo_burn_rate") {
		t.Error("SLO gauges exported without SLO evaluation enabled")
	}
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if strings.Contains(string(data), `"slo"`) {
		t.Errorf("/readyz carries an slo detail without evaluation enabled: %s", data)
	}
}

// TestServerSLODefaultObjectives checks nil SLOObjectives falls back to the
// stock set, and the background loop publishes without manual ticks.
func TestServerSLODefaultObjectives(t *testing.T) {
	s, ts := newTestServer(t, Options{SLOInterval: 10 * time.Millisecond})
	want := map[string]bool{}
	for _, o := range slo.DefaultObjectives() {
		want[o.Name] = true
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if st := s.SLOStatuses(); len(st) == len(want) {
			for _, o := range st {
				if !want[o.Name] {
					t.Fatalf("unexpected objective %q", o.Name)
				}
			}
			if !strings.Contains(fetchMetrics(t, ts), "dased_slo_burn_rate") {
				t.Fatal("loop ticked but gauges missing from /metrics")
			}
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("background SLO loop never published statuses")
}
