package server

import (
	"io"
	"log/slog"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"dasesim/internal/faults"
)

// newFaultServer builds an unstarted server suitable for fault tests; the
// caller arms the registry (installed process-wide, removed at cleanup) and
// then calls Start, so faults armed between submission and Start cannot hit
// the submission path by accident.
func newFaultServer(t *testing.T, opts Options) (*Server, *faults.Registry) {
	t.Helper()
	if opts.Logger == nil {
		opts.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	if opts.JobTimeout == 0 {
		opts.JobTimeout = time.Minute
	}
	if opts.DefaultCycles == 0 {
		opts.DefaultCycles = testCycles
	}
	// Every fault-suite simulation runs with the invariant sweep on: faults
	// must not be able to corrupt engine state in ways a retry then hides.
	opts.CheckInvariants = true
	s, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	reg := faults.New(42)
	faults.Activate(reg)
	t.Cleanup(func() {
		faults.Deactivate()
		ctx, cancel := testCtx()
		defer cancel()
		_ = s.Shutdown(ctx)
	})
	return s, reg
}

// submitAndWait submits req and blocks until the job is terminal.
func submitAndWait(t *testing.T, s *Server, req JobRequest) JobView {
	t.Helper()
	j, err := s.submit(req)
	if err != nil {
		t.Fatal(err)
	}
	return awaitTerminal(t, s, j.ID)
}

// transientPoints are the ctx-aware injection points a job passes through.
var transientPoints = []string{"server.worker", "sim.step", "simcache.get"}

// TestTransientErrorRetriedToSuccess arms each injection point to fail
// exactly once and proves the job is retried to success, with attempts and
// last_error exposed and the retry counter bumped.
func TestTransientErrorRetriedToSuccess(t *testing.T) {
	for _, point := range transientPoints {
		t.Run(point, func(t *testing.T) {
			s, reg := newFaultServer(t, Options{Workers: 1})
			reg.Arm(faults.Spec{Point: point, Mode: faults.ModeError, Count: 1})
			s.Start()
			v := submitAndWait(t, s, JobRequest{Kernels: []string{"SB", "SD"}, Cycles: testCycles})
			if v.Status != StatusDone {
				t.Fatalf("status=%s error=%q", v.Status, v.Error)
			}
			if v.Attempts != 2 {
				t.Fatalf("attempts=%d, want 2", v.Attempts)
			}
			if !strings.Contains(v.LastError, "injected") {
				t.Fatalf("last_error=%q, want the injected fault", v.LastError)
			}
			if got := s.metrics.jobRetries.Load(); got != 1 {
				t.Fatalf("jobRetries=%d, want 1", got)
			}
			if reg.Fired(point) != 1 {
				t.Fatalf("point fired %d times", reg.Fired(point))
			}
		})
	}
}

// TestJournalAppendErrorRetried covers the journal.append point: the
// submitted record commits cleanly, then the started record fails once and
// the attempt is retried.
func TestJournalAppendErrorRetried(t *testing.T) {
	jpath := filepath.Join(t.TempDir(), "dased.wal")
	s, reg := newFaultServer(t, Options{Workers: 1, JournalPath: jpath})
	// Submit while the pool is stopped so the fault cannot hit the
	// submission-time append.
	j, err := s.submit(JobRequest{Kernels: []string{"SB", "SD"}, Cycles: testCycles})
	if err != nil {
		t.Fatal(err)
	}
	reg.Arm(faults.Spec{Point: "journal.append", Mode: faults.ModeError, Count: 1})
	s.Start()
	v := awaitTerminal(t, s, j.ID)
	if v.Status != StatusDone {
		t.Fatalf("status=%s error=%q", v.Status, v.Error)
	}
	if v.Attempts != 2 {
		t.Fatalf("attempts=%d, want 2", v.Attempts)
	}
	if !strings.Contains(v.LastError, "journal") {
		t.Fatalf("last_error=%q, want a journal failure", v.LastError)
	}
	if got := s.metrics.journalErrors.Load(); got == 0 {
		t.Fatal("journal error not counted")
	}
}

// TestInjectedPanicRetried proves a worker panic is recovered AND retried:
// the job succeeds on the second attempt instead of just failing.
func TestInjectedPanicRetried(t *testing.T) {
	s, reg := newFaultServer(t, Options{Workers: 1})
	reg.Arm(faults.Spec{Point: "server.worker", Mode: faults.ModePanic, Count: 1})
	s.Start()
	v := submitAndWait(t, s, JobRequest{Kernels: []string{"SB", "SD"}, Cycles: testCycles})
	if v.Status != StatusDone {
		t.Fatalf("status=%s error=%q", v.Status, v.Error)
	}
	if v.Attempts != 2 {
		t.Fatalf("attempts=%d, want 2", v.Attempts)
	}
	if !strings.Contains(v.LastError, "panic") {
		t.Fatalf("last_error=%q, want a panic", v.LastError)
	}
}

// TestRetriesExhausted proves a persistent fault fails the job after
// MaxRetries extra attempts, keeping the last error.
func TestRetriesExhausted(t *testing.T) {
	s, reg := newFaultServer(t, Options{Workers: 1, MaxRetries: 2})
	reg.Arm(faults.Spec{Point: "server.worker", Mode: faults.ModeError})
	s.Start()
	v := submitAndWait(t, s, JobRequest{Kernels: []string{"SB", "SD"}, Cycles: testCycles})
	if v.Status != StatusFailed {
		t.Fatalf("status=%s", v.Status)
	}
	if v.Attempts != 3 { // 1 try + 2 retries
		t.Fatalf("attempts=%d, want 3", v.Attempts)
	}
	if !strings.Contains(v.Error, "injected") {
		t.Fatalf("error=%q", v.Error)
	}
	if got := s.metrics.jobRetries.Load(); got != 2 {
		t.Fatalf("jobRetries=%d, want 2", got)
	}
}

// TestRetriesDisabled proves MaxRetries < 0 turns retries off.
func TestRetriesDisabled(t *testing.T) {
	s, reg := newFaultServer(t, Options{Workers: 1, MaxRetries: -1})
	reg.Arm(faults.Spec{Point: "server.worker", Mode: faults.ModeError, Count: 1})
	s.Start()
	v := submitAndWait(t, s, JobRequest{Kernels: []string{"SB", "SD"}, Cycles: testCycles})
	if v.Status != StatusFailed || v.Attempts != 1 {
		t.Fatalf("status=%s attempts=%d, want failed after 1 attempt", v.Status, v.Attempts)
	}
}

// TestDeadlineOverrunTimesOut arms each ctx-aware injection point to sleep
// far past the job deadline and proves the job fails with a timeout instead
// of hanging — at every point, including journal.append (whose sleep is
// bounded by the job context during the started-record commit).
func TestDeadlineOverrunTimesOut(t *testing.T) {
	points := append([]string{"journal.append"}, transientPoints...)
	for _, point := range points {
		t.Run(point, func(t *testing.T) {
			opts := Options{Workers: 1}
			if point == "journal.append" {
				opts.JournalPath = filepath.Join(t.TempDir(), "dased.wal")
			}
			s, reg := newFaultServer(t, opts)
			j, err := s.submit(JobRequest{Kernels: []string{"SB", "SD"}, Cycles: testCycles, TimeoutMS: 100})
			if err != nil {
				t.Fatal(err)
			}
			reg.Arm(faults.Spec{Point: point, Mode: faults.ModeSleep, Delay: time.Hour})
			s.Start()
			start := time.Now()
			v := awaitTerminal(t, s, j.ID)
			if v.Status != StatusFailed || !strings.Contains(v.Error, "timeout") {
				t.Fatalf("status=%s error=%q, want timeout", v.Status, v.Error)
			}
			if elapsed := time.Since(start); elapsed > 30*time.Second {
				t.Fatalf("deadline overrun took %v — effectively hung", elapsed)
			}
		})
	}
}

// TestProbabilisticFaultsEventuallySucceed stresses the retry loop with a
// 50% failure probability and generous retry budget: determinism of the
// seeded PRNG makes this reproducible.
func TestProbabilisticFaultsEventuallySucceed(t *testing.T) {
	s, reg := newFaultServer(t, Options{Workers: 2, MaxRetries: 10})
	reg.Arm(faults.Spec{Point: "server.worker", Mode: faults.ModeError, P: 0.5})
	s.Start()
	for i := 0; i < 4; i++ {
		v := submitAndWait(t, s, JobRequest{Kernels: []string{"SB", "SD"}, Cycles: testCycles, Seed: uint64(i + 1)})
		if v.Status != StatusDone {
			t.Fatalf("job %d: status=%s error=%q attempts=%d", i, v.Status, v.Error, v.Attempts)
		}
	}
}

// TestCancelDuringBackoff proves a job canceled while waiting out its retry
// backoff stays canceled and is not resurrected by the requeue.
func TestCancelDuringBackoff(t *testing.T) {
	s, reg := newFaultServer(t, Options{
		Workers:        1,
		RetryBaseDelay: time.Second,
		RetryMaxDelay:  time.Second,
	})
	// Pin the backoff to its full duration so the cancel below deterministically
	// lands while the job is still waiting.
	s.jitterFn = func(d time.Duration) time.Duration { return d }
	reg.Arm(faults.Spec{Point: "server.worker", Mode: faults.ModeError, Count: 1})
	s.Start()
	j, err := s.submit(JobRequest{Kernels: []string{"SB", "SD"}, Cycles: testCycles})
	if err != nil {
		t.Fatal(err)
	}
	// Wait for the attempt to fail into backoff (status back to queued with
	// a last error), then cancel.
	deadline := time.Now().Add(30 * time.Second)
	for {
		s.mu.Lock()
		inBackoff := j.Status == StatusQueued && j.LastError != ""
		s.mu.Unlock()
		if inBackoff {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never entered retry backoff")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if found, canceled := s.cancelJob(j.ID); !found || !canceled {
		t.Fatalf("cancel during backoff: found=%t canceled=%t", found, canceled)
	}
	v := awaitTerminal(t, s, j.ID)
	if v.Status != StatusCanceled {
		t.Fatalf("status=%s, want canceled", v.Status)
	}
	// Give the requeue timer time to fire; the job must stay canceled.
	time.Sleep(1200 * time.Millisecond)
	if got := statusOf(t, s, j.ID); got != StatusCanceled {
		t.Fatalf("job resurrected after backoff: %s", got)
	}
}

// TestLoadSheddingPrefersCached proves admission control over the high-water
// mark: cached submissions are admitted, uncached ones are shed with the
// counter bumped.
func TestLoadSheddingPrefersCached(t *testing.T) {
	s, _ := newFaultServer(t, Options{
		Workers:       1,
		QueueDepth:    4, // high-water mark defaults to 3
		MaxCycles:     2_000_000_000,
		ShedHighWater: 3,
	})
	s.Start()
	// Warm the cache with a fast job.
	cachedReq := JobRequest{Kernels: []string{"SB", "SD"}, Cycles: testCycles}
	if v := submitAndWait(t, s, cachedReq); v.Status != StatusDone {
		t.Fatalf("warmup: %s (%s)", v.Status, v.Error)
	}
	// Occupy the worker, then fill the queue to the high-water mark.
	long, err := s.submit(JobRequest{Kernels: []string{"SB"}, Cycles: 1_000_000_000})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for statusOf(t, s, long.ID) != StatusRunning {
		if time.Now().After(deadline) {
			t.Fatal("long job never started")
		}
		time.Sleep(2 * time.Millisecond)
	}
	for i := 0; i < 3; i++ {
		if _, err := s.submit(JobRequest{Kernels: []string{"VA"}, Cycles: testCycles, Seed: uint64(i + 1)}); err != nil {
			t.Fatalf("fill %d: %v", i, err)
		}
	}
	// Over the mark: uncached is shed, cached is admitted.
	if _, err := s.submit(JobRequest{Kernels: []string{"CT"}, Cycles: testCycles}); err != ErrShed {
		t.Fatalf("uncached over high water: %v, want ErrShed", err)
	}
	if got := s.metrics.jobsShed.Load(); got != 1 {
		t.Fatalf("jobsShed=%d, want 1", got)
	}
	if _, err := s.submit(cachedReq); err != nil {
		t.Fatalf("cached over high water rejected: %v", err)
	}
	// Unblock the worker so shutdown stays fast.
	if found, canceled := s.cancelJob(long.ID); !found || !canceled {
		t.Fatal("could not cancel the long job")
	}
}
