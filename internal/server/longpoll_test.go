package server

import (
	"net/http"
	"testing"
	"time"
)

// TestLongPollClampsOversizedWait proves an absurd wait_ms is clamped to
// LongPollMax instead of pinning the handler for the requested hour.
func TestLongPollClampsOversizedWait(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	_, ts := newTestServer(t, Options{
		Workers:     1,
		MaxCycles:   2_000_000_000,
		LongPollMax: 100 * time.Millisecond,
	})
	long, _ := postJob(t, ts, JobRequest{Kernels: []string{"SB"}, Cycles: 1_000_000_000})
	deadline := time.Now().Add(30 * time.Second)
	for getJob(t, ts, long.ID, 0).Status != StatusRunning {
		if time.Now().After(deadline) {
			t.Fatal("job never started running")
		}
		time.Sleep(5 * time.Millisecond)
	}

	start := time.Now()
	v := getJob(t, ts, long.ID, 3_600_000) // asks for an hour
	elapsed := time.Since(start)
	if v.Status != StatusRunning {
		t.Fatalf("status=%s, want still running", v.Status)
	}
	if elapsed > 10*time.Second {
		t.Fatalf("oversized wait not clamped: took %v", elapsed)
	}
	cancelJob(t, ts, long.ID, http.StatusOK)
	if v := waitDone(t, ts, long.ID); v.Status != StatusCanceled {
		t.Fatalf("cleanup cancel: %s", v.Status)
	}
}

// TestLongPollTerminalAtEntry proves a wait on an already-terminal job
// returns immediately — the done channel is closed before the select.
func TestLongPollTerminalAtEntry(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	_, ts := newTestServer(t, Options{})
	v, _ := postJob(t, ts, JobRequest{Kernels: []string{"SB", "SD"}, Cycles: testCycles})
	v = waitDone(t, ts, v.ID)
	if v.Status != StatusDone {
		t.Fatalf("setup job: %s (%s)", v.Status, v.Error)
	}

	start := time.Now()
	got := getJob(t, ts, v.ID, 30_000)
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("terminal-at-entry wait blocked for %v", elapsed)
	}
	if got.Status != StatusDone || got.Result == nil {
		t.Fatalf("status=%s result=%v", got.Status, got.Result)
	}
}

// TestLongPollCancellationMidWait proves a cancellation arriving while a
// client is parked in wait_ms wakes the poll promptly with the terminal
// state.
func TestLongPollCancellationMidWait(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	_, ts := newTestServer(t, Options{Workers: 1, MaxCycles: 2_000_000_000})
	long, _ := postJob(t, ts, JobRequest{Kernels: []string{"SB"}, Cycles: 1_000_000_000})
	deadline := time.Now().Add(30 * time.Second)
	for getJob(t, ts, long.ID, 0).Status != StatusRunning {
		if time.Now().After(deadline) {
			t.Fatal("job never started running")
		}
		time.Sleep(5 * time.Millisecond)
	}

	type polled struct {
		view    JobView
		elapsed time.Duration
	}
	ch := make(chan polled, 1)
	start := time.Now()
	go func() {
		v := getJob(t, ts, long.ID, 120_000)
		ch <- polled{v, time.Since(start)}
	}()
	// Let the poller park, then cancel out from under it.
	time.Sleep(50 * time.Millisecond)
	cancelJob(t, ts, long.ID, http.StatusOK)

	select {
	case p := <-ch:
		if p.view.Status != StatusCanceled {
			t.Fatalf("long-poll returned %s, want canceled", p.view.Status)
		}
		if p.elapsed > 60*time.Second {
			t.Fatalf("long-poll held for %v after cancellation", p.elapsed)
		}
	case <-time.After(90 * time.Second):
		t.Fatal("long-poll never woke after cancellation")
	}
}
