package sim

import (
	"testing"

	"dasesim/internal/config"
	"dasesim/internal/telemetry"
)

// TestEngineTracing runs a traced two-app workload across interval
// boundaries and a reallocation, and checks the engine's event stream:
// per-app interval events at every boundary, a drain for each SM taken from
// a busy app, and an assign when it moves.
func TestEngineTracing(t *testing.T) {
	cfg := config.Default()
	cfg.IntervalCycles = 10_000
	tr := telemetry.New(0)
	g, err := New(cfg, twoApps(t), []int{8, 8}, 1, WithTracer(tr))
	if err != nil {
		t.Fatal(err)
	}
	if g.Tracer() != tr {
		t.Fatal("Tracer() does not return the attached tracer")
	}
	g.Run(20_000)
	if err := g.SetAllocation([]int{12, 4}); err != nil {
		t.Fatal(err)
	}
	// Draining waits for in-flight warps; ~55k cycles suffice for this pair.
	g.Run(100_000)
	res := g.FinishRun()

	kinds := map[telemetry.Kind]int{}
	drainedSMs := map[int32]int{}
	for _, e := range tr.Events() {
		kinds[e.Kind]++
		if e.Kind == telemetry.KindSMDrain {
			drainedSMs[e.SM]++
		}
	}
	// One interval event per app per boundary.
	wantIntervals := len(res.Snapshots) * 2
	if kinds[telemetry.KindInterval] != wantIntervals {
		t.Errorf("%d interval events, want %d", kinds[telemetry.KindInterval], wantIntervals)
	}
	// 8→4 for app 1 means 4 SMs drained, each exactly once (the drain event
	// must not repeat while the SM empties), and 4 assigns to app 0.
	if kinds[telemetry.KindSMDrain] != 4 {
		t.Errorf("%d drain events, want 4", kinds[telemetry.KindSMDrain])
	}
	for sm, n := range drainedSMs {
		if n != 1 {
			t.Errorf("SM %d drained %d times in the trace, want 1", sm, n)
		}
	}
	if kinds[telemetry.KindSMAssign] != 4 {
		t.Errorf("%d assign events, want 4", kinds[telemetry.KindSMAssign])
	}
}

// TestEngineTracingNil pins the disabled path: a nil tracer is the default
// and the engine must run exactly as before (byte-identical results are
// enforced by the root package's TestTracingGolden).
func TestEngineTracingNil(t *testing.T) {
	g, err := New(config.Default(), twoApps(t), []int{8, 8}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.Tracer() != nil {
		t.Fatal("fresh GPU has a tracer attached")
	}
	g.Run(1_000)
	g.FinishRun()
}
