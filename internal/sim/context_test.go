package sim

import (
	"context"
	"encoding/json"
	"errors"
	"testing"
	"time"

	"dasesim/internal/config"
	"dasesim/internal/kernels"
)

// TestRunContextMatchesRun proves the chunked context-polling loop changes
// nothing about the simulation itself.
func TestRunContextMatchesRun(t *testing.T) {
	cfg := config.Default()
	cfg.IntervalCycles = 10_000
	ps := []kernels.Profile{mustKernel(t, "SB"), mustKernel(t, "SD")}
	plain, err := RunShared(cfg, ps, []int{8, 8}, 30_000, 1)
	if err != nil {
		t.Fatal(err)
	}
	viaCtx, err := RunSharedContext(context.Background(), cfg, ps, []int{8, 8}, 30_000, 1)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(plain)
	b, _ := json.Marshal(viaCtx)
	if string(a) != string(b) {
		t.Fatal("RunSharedContext diverged from RunShared")
	}
}

func TestRunContextCancel(t *testing.T) {
	cfg := config.Default()
	g, err := New(cfg, []kernels.Profile{mustKernel(t, "SB")}, []int{cfg.NumSMs}, 1)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := g.RunContext(ctx, 1_000_000); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	if g.Cycle() > ctxCheckCycles {
		t.Fatalf("simulated %d cycles after cancellation", g.Cycle())
	}
}

func TestRunContextDeadline(t *testing.T) {
	cfg := config.Default()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := RunAloneContext(ctx, cfg, mustKernel(t, "SB"), 500_000_000, 1)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v", err)
	}
	// The bound exists to catch a deadline being ignored outright (the full
	// budget would run for hours). It must absorb one polling chunk at worst:
	// in parallel mode chunks stretch to interval boundaries (up to
	// IntervalCycles ~ 50k cycles), and under the race detector with
	// DASESIM_PARALLEL forced on a small machine one such chunk takes
	// seconds.
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("deadline ignored for %v", elapsed)
	}
}

func mustKernel(t *testing.T, abbr string) kernels.Profile {
	t.Helper()
	p, ok := kernels.ByAbbr(abbr)
	if !ok {
		t.Fatalf("kernel %s missing", abbr)
	}
	return p
}
