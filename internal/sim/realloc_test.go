package sim

import (
	"testing"

	"dasesim/internal/config"
	"dasesim/internal/kernels"
	"dasesim/internal/memreq"
)

// TestReallocationMovesMinimalSMs: shrinking app 0 from 10 to 8 SMs must
// reassign exactly two SMs and leave the other fourteen owners untouched.
func TestReallocationMovesMinimalSMs(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	cfg := config.Default()
	ps := twoApps(t)
	g, err := New(cfg, ps, []int{10, 6}, 1)
	if err != nil {
		t.Fatal(err)
	}
	g.Run(20_000)
	before := g.Owners()
	if err := g.SetAllocation([]int{8, 8}); err != nil {
		t.Fatal(err)
	}
	g.Run(150_000) // allow draining to complete
	after := g.Owners()

	moved := 0
	for i := range before {
		if before[i] != after[i] {
			moved++
			if before[i] != 0 || after[i] != 1 {
				t.Fatalf("SM %d moved %v->%v; only app0->app1 moves expected", i, before[i], after[i])
			}
		}
	}
	if moved != 2 {
		t.Fatalf("%d SMs changed owner, want exactly 2", moved)
	}
	alloc := g.Allocation()
	if alloc[0] != 8 || alloc[1] != 8 {
		t.Fatalf("allocation = %v", alloc)
	}
}

// TestOwnersMatchAllocation: owner counts always agree with Allocation once
// draining settles.
func TestOwnersMatchAllocation(t *testing.T) {
	cfg := config.Default()
	ps := twoApps(t)
	g, err := New(cfg, ps, []int{12, 4}, 1)
	if err != nil {
		t.Fatal(err)
	}
	g.Run(30_000)
	counts := map[memreq.AppID]int{}
	for _, o := range g.Owners() {
		counts[o]++
	}
	if counts[0] != 12 || counts[1] != 4 {
		t.Fatalf("owner counts %v", counts)
	}
}

// TestCancelledReallocationUndrains: flipping the allocation back before
// draining completes must leave all SMs productive.
func TestCancelledReallocationUndrains(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	cfg := config.Default()
	sb, _ := kernels.ByAbbr("SB")
	ct, _ := kernels.ByAbbr("CT")
	g, err := New(cfg, []kernels.Profile{sb, ct}, []int{8, 8}, 1)
	if err != nil {
		t.Fatal(err)
	}
	g.Run(20_000)
	if err := g.SetAllocation([]int{4, 12}); err != nil {
		t.Fatal(err)
	}
	g.Run(1_000) // mid-drain
	if err := g.SetAllocation([]int{8, 8}); err != nil {
		t.Fatal(err)
	}
	g.Run(120_000)
	alloc := g.Allocation()
	if alloc[0] != 8 || alloc[1] != 8 {
		t.Fatalf("allocation = %v after cancellation", alloc)
	}
	res := g.FinishRun()
	for i, a := range res.Apps {
		if a.Instructions == 0 {
			t.Fatalf("app %d made no progress through cancelled reallocation", i)
		}
	}
}
