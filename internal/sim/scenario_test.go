package sim

import (
	"testing"
	"testing/quick"

	"dasesim/internal/config"
	"dasesim/internal/kernels"
)

// The scenario tests assert the interference phenomena the paper's
// motivation section (§3) is built on, end to end through the full GPU.

// TestScenarioCacheThrashVictim: a cache-resident kernel (CT) co-running
// with a streaming kernel (VA) must lose L2 hits — its DRAM traffic rises
// above its alone level and the ATD detects contention misses.
func TestScenarioCacheThrashVictim(t *testing.T) {
	if testing.Short() {
		t.Skip("slow scenario")
	}
	cfg := config.Default()
	va, _ := kernels.ByAbbr("VA")
	ct, _ := kernels.ByAbbr("CT")

	alone, err := RunAlone(cfg, ct, 100_000, 1)
	if err != nil {
		t.Fatal(err)
	}
	shared, err := RunShared(cfg, []kernels.Profile{va, ct}, []int{8, 8}, 100_000, 1)
	if err != nil {
		t.Fatal(err)
	}

	// CT on 8 SMs issues about half the memory instructions it issues on
	// 16, yet its DRAM requests must exceed half its alone level by a
	// clear factor (contention misses).
	aloneRate := float64(alone.Apps[0].Served) / float64(alone.Cycles)
	sharedRate := float64(shared.Apps[1].Served) / float64(shared.Cycles)
	if sharedRate < aloneRate*0.75 {
		t.Fatalf("CT shared DRAM rate %.4f not inflated vs alone %.4f (cache thrash missing)",
			sharedRate, aloneRate)
	}
	// And the ATD must attribute a large share to contention.
	var ellc float64
	for _, s := range shared.Snapshots {
		ellc += s.Apps[1].ELLCMiss
	}
	if ellc < float64(shared.Apps[1].Served)/10 {
		t.Fatalf("ATD detected only %.0f contention misses of %d requests", ellc, shared.Apps[1].Served)
	}
}

// TestScenarioRowLocalityLoss: a streaming kernel loses row-buffer hits
// when a scatter kernel (SD) shares the DRAM.
func TestScenarioRowLocalityLoss(t *testing.T) {
	if testing.Short() {
		t.Skip("slow scenario")
	}
	cfg := config.Default()
	sa, _ := kernels.ByAbbr("SA")
	sd, _ := kernels.ByAbbr("SD")

	alone, err := RunAlone(cfg, sa, 100_000, 1)
	if err != nil {
		t.Fatal(err)
	}
	shared, err := RunShared(cfg, []kernels.Profile{sa, sd}, []int{8, 8}, 100_000, 1)
	if err != nil {
		t.Fatal(err)
	}
	// FR-FCFS defends stream locality, so the rate drop can be small —
	// but sharing must never improve it materially, and the interference
	// detector (the last-access-row registers, Eq. 10) must fire.
	if shared.Apps[0].RowHitRate > alone.Apps[0].RowHitRate+0.03 {
		t.Fatalf("SA row-hit rate improved under sharing: %.3f vs %.3f alone",
			shared.Apps[0].RowHitRate, alone.Apps[0].RowHitRate)
	}
	var erb uint64
	for _, s := range shared.Snapshots {
		erb += s.Apps[0].ERBMiss
	}
	if erb == 0 {
		t.Fatal("no extra row-buffer misses detected for the streamer")
	}
}

// TestScenarioTLPLimitedImmunity: SN (24 thread blocks) fits entirely on 8
// SMs, so halving its SM count costs it almost nothing — its slowdown must
// stay well below a compute-bound kernel's ~2x.
func TestScenarioTLPLimitedImmunity(t *testing.T) {
	if testing.Short() {
		t.Skip("slow scenario")
	}
	cfg := config.Default()
	sn, _ := kernels.ByAbbr("SN")
	qr, _ := kernels.ByAbbr("QR")

	alone, err := RunAlone(cfg, sn, 150_000, 1)
	if err != nil {
		t.Fatal(err)
	}
	shared, err := RunShared(cfg, []kernels.Profile{sn, qr}, []int{8, 8}, 150_000, 1)
	if err != nil {
		t.Fatal(err)
	}
	slow := alone.Apps[0].IPC / shared.Apps[0].IPC
	if slow > 1.6 {
		t.Fatalf("TLP-limited SN slowed %.2fx on half the SMs; expected mild impact", slow)
	}
}

// TestScenarioBandwidthSaturation: two bandwidth-bound streamers sharing
// the GPU must saturate the DRAM (near-zero idle).
func TestScenarioBandwidthSaturation(t *testing.T) {
	if testing.Short() {
		t.Skip("slow scenario")
	}
	cfg := config.Default()
	sb, _ := kernels.ByAbbr("SB")
	va, _ := kernels.ByAbbr("VA")
	shared, err := RunShared(cfg, []kernels.Profile{sb, va}, []int{8, 8}, 100_000, 1)
	if err != nil {
		t.Fatal(err)
	}
	idle := float64(shared.BusIdle) / float64(shared.BusCycles)
	if idle > 0.05 {
		t.Fatalf("two streamers left the DRAM idle %.1f%% of cycles", idle*100)
	}
}

// TestScenarioL2Writeback: with the writeback L2 enabled, a store-heavy
// kernel with L2 reuse must generate dirty-eviction write traffic at the
// DRAM beyond what the write-through-at-miss default produces.
func TestScenarioL2Writeback(t *testing.T) {
	if testing.Short() {
		t.Skip("slow scenario")
	}
	base := config.Default()
	p, _ := kernels.ByAbbr("CS") // partial L2 reuse, stores
	p.WriteFrac = 0.5

	run := func(wb bool) uint64 {
		cfg := base
		cfg.L2.Writeback = wb
		res, err := RunAlone(cfg, p, 60_000, 1)
		if err != nil {
			t.Fatal(err)
		}
		return res.Apps[0].Served
	}
	without := run(false)
	with := run(true)
	if with <= without {
		t.Fatalf("writeback produced no extra DRAM traffic: %d vs %d", with, without)
	}
}

// TestScenarioBarriersPreserveLocality: block barriers (__syncthreads)
// resynchronise warps, so a barrier-enabled streamer holds its row-hit rate
// over time where the unsynchronised version drifts down.
func TestScenarioBarriersPreserveLocality(t *testing.T) {
	if testing.Short() {
		t.Skip("slow scenario")
	}
	cfg := config.Default()
	p, _ := kernels.ByAbbr("SB")
	run := func(barrier int) float64 {
		q := p
		q.BarrierEvery = barrier
		res, err := RunAlone(cfg, q, 300_000, 1)
		if err != nil {
			t.Fatal(err)
		}
		// Row-hit rate of the LAST interval (after warps had time to
		// drift).
		last := res.Snapshots[len(res.Snapshots)-1]
		a := last.Apps[0]
		return float64(a.RowHits) / float64(a.RowHits+a.RowMisses)
	}
	without := run(0)
	with := run(400)
	t.Logf("late-run row-hit rate: no barriers %.3f, barriers %.3f", without, with)
	if with <= without {
		t.Fatalf("barriers did not preserve locality: %.3f vs %.3f", with, without)
	}
}

// TestRandomMixInvariantsProperty runs short simulations over random kernel
// pairs and allocations, checking the structural invariants that must hold
// for any input.
func TestRandomMixInvariantsProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("slow property test")
	}
	cfg := config.Default()
	cfg.IntervalCycles = 5_000
	all := kernels.All()
	f := func(i, j, split, seed uint8) bool {
		a := all[int(i)%len(all)]
		b := all[int(j)%len(all)]
		smA := int(split)%(cfg.NumSMs-1) + 1
		alloc := []int{smA, cfg.NumSMs - smA}
		res, err := RunShared(cfg, []kernels.Profile{a, b}, alloc, 10_000, uint64(seed)+1)
		if err != nil {
			t.Logf("RunShared(%s,%s,%v): %v", a.Abbr, b.Abbr, alloc, err)
			return false
		}
		var data uint64
		for _, app := range res.Apps {
			if app.Alpha < 0 || app.Alpha > 1 {
				return false
			}
			data += app.DataCycles
		}
		if data+res.BusWasted+res.BusIdle > res.BusCycles {
			return false
		}
		for _, s := range res.Snapshots {
			for _, ai := range s.Apps {
				if ai.BLPAccess > ai.BLP+1e-9 || ai.BLPBlocked > ai.BLP+1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}
