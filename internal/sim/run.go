package sim

import (
	"context"

	"dasesim/internal/config"
	"dasesim/internal/kernels"
)

// AppResult summarises one application over a whole run.
type AppResult struct {
	Abbr         string
	Instructions uint64
	IPC          float64 // instructions per GPU cycle, all owned SMs combined
	Alpha        float64
	Served       uint64  // DRAM requests served
	DataCycles   uint64  // DRAM data-bus cycles
	BWUtil       float64 // fraction of total DRAM bus cycles moving this app's data
	RowHitRate   float64
	MemInsts     uint64
	L1HitRate    float64
	BlocksDone   uint64

	// MeanLatency is the average load round-trip latency in cycles;
	// P95Latency is an upper bound on the 95th percentile (log buckets).
	MeanLatency float64
	P95Latency  uint64

	// Occupancy is the fraction of the app's SM-cycles with at least one
	// resident thread block (dispatch coverage).
	Occupancy float64
}

// Result summarises a finished simulation.
type Result struct {
	Cycles    uint64
	Apps      []AppResult
	Snapshots []IntervalSnapshot

	// Cumulative DRAM bus decomposition (Fig. 2(b)); DataCycles are broken
	// out per app in Apps.
	BusCycles uint64
	BusWasted uint64
	BusIdle   uint64
}

// BWUtilTotal returns the total data-bus utilisation of the run.
func (r *Result) BWUtilTotal() float64 {
	if r.BusCycles == 0 {
		return 0
	}
	var data uint64
	for i := range r.Apps {
		data += r.Apps[i].DataCycles
	}
	return float64(data) / float64(r.BusCycles)
}

// FinishRun takes a final partial-interval snapshot if the run did not end
// exactly on an interval boundary, then summarises.
func (g *GPU) FinishRun() *Result {
	if g.cycle > g.intervalStart {
		snap := g.takeSnapshot()
		g.addSnapshot(snap)
		g.resetInterval()
	}
	res := &Result{Cycles: g.cycle, Snapshots: g.snapshots}
	res.Apps = make([]AppResult, len(g.apps))

	// Aggregate memory counters across snapshots (controller counters are
	// reset each interval, so the snapshots are the durable record), seeded
	// with the totals of any snapshots evicted under a retention cap.
	res.BusCycles = g.evicted.busCycles
	res.BusWasted = g.evicted.busWasted
	res.BusIdle = g.evicted.busIdle
	served := make([]uint64, len(g.apps))
	data := make([]uint64, len(g.apps))
	rowHits := make([]uint64, len(g.apps))
	rowMisses := make([]uint64, len(g.apps))
	copy(served, g.evicted.served)
	copy(data, g.evicted.data)
	copy(rowHits, g.evicted.rowHits)
	copy(rowMisses, g.evicted.rowMisses)
	for si := range g.snapshots {
		s := &g.snapshots[si]
		res.BusCycles += s.BusCycles
		res.BusWasted += s.BusWasted
		res.BusIdle += s.BusIdle
		for i := range s.Apps {
			served[i] += s.Apps[i].Served
			data[i] += s.Apps[i].DataCycles
			rowHits[i] += s.Apps[i].RowHits
			rowMisses[i] += s.Apps[i].RowMisses
		}
	}
	for i, app := range g.apps {
		ar := AppResult{
			Abbr:         app.Profile.Abbr,
			Instructions: app.Instructions,
			IPC:          app.IPC(g.cycle),
			Alpha:        app.Alpha(),
			Served:       served[i],
			DataCycles:   data[i],
			MemInsts:     app.MemInsts,
			BlocksDone:   app.BlocksDone,
		}
		if res.BusCycles > 0 {
			ar.BWUtil = float64(data[i]) / float64(res.BusCycles)
		}
		if rowHits[i]+rowMisses[i] > 0 {
			ar.RowHitRate = float64(rowHits[i]) / float64(rowHits[i]+rowMisses[i])
		}
		if app.L1Hits+app.L1Misses > 0 {
			ar.L1HitRate = float64(app.L1Hits) / float64(app.L1Hits+app.L1Misses)
		}
		if app.MemLat.Count > 0 {
			ar.MeanLatency = app.MemLat.Mean()
			ar.P95Latency = app.LatHist.Quantile(0.95)
		}
		if app.SMCycles > 0 {
			ar.Occupancy = float64(app.ActiveCycles) / float64(app.SMCycles)
		}
		res.Apps[i] = ar
	}
	return res
}

// RunAlone simulates one kernel alone on all SMs for the given cycles and
// returns the result. This provides the IPC^alone baseline of Eq. 1.
func RunAlone(cfg config.Config, p kernels.Profile, cycles uint64, seed uint64, opts ...Option) (*Result, error) {
	return RunAloneContext(context.Background(), cfg, p, cycles, seed, opts...)
}

// RunAloneContext is RunAlone with cancellation: the run aborts (returning
// ctx.Err()) when ctx is cancelled or its deadline passes.
func RunAloneContext(ctx context.Context, cfg config.Config, p kernels.Profile, cycles uint64, seed uint64, opts ...Option) (*Result, error) {
	g, err := New(cfg, []kernels.Profile{p}, []int{cfg.NumSMs}, seed, opts...)
	if err != nil {
		return nil, err
	}
	if err := g.RunContext(ctx, cycles); err != nil {
		return nil, err
	}
	return g.FinishRun(), nil
}

// RunShared simulates the given kernels concurrently with alloc[i] SMs for
// app i, for the given cycles, and returns the result.
func RunShared(cfg config.Config, ps []kernels.Profile, alloc []int, cycles uint64, seed uint64, opts ...Option) (*Result, error) {
	return RunSharedContext(context.Background(), cfg, ps, alloc, cycles, seed, opts...)
}

// RunSharedContext is RunShared with cancellation: the run aborts (returning
// ctx.Err()) when ctx is cancelled or its deadline passes.
func RunSharedContext(ctx context.Context, cfg config.Config, ps []kernels.Profile, alloc []int, cycles uint64, seed uint64, opts ...Option) (*Result, error) {
	g, err := New(cfg, ps, alloc, seed, opts...)
	if err != nil {
		return nil, err
	}
	if err := g.RunContext(ctx, cycles); err != nil {
		return nil, err
	}
	return g.FinishRun(), nil
}

// EvenAllocation splits n SMs evenly among k apps (first apps get the
// remainder), the paper's default SM-partition scheme.
func EvenAllocation(n, k int) []int {
	out := make([]int, k)
	base := n / k
	rem := n % k
	for i := range out {
		out[i] = base
		if i < rem {
			out[i]++
		}
	}
	return out
}
