package sim

import (
	"testing"

	"dasesim/internal/config"
	"dasesim/internal/kernels"
)

func twoApps(t *testing.T) []kernels.Profile {
	t.Helper()
	a, ok := kernels.ByAbbr("QR")
	if !ok {
		t.Fatal("QR missing")
	}
	b, ok := kernels.ByAbbr("CT")
	if !ok {
		t.Fatal("CT missing")
	}
	return []kernels.Profile{a, b}
}

func TestNewRejectsBadInputs(t *testing.T) {
	cfg := config.Default()
	ps := twoApps(t)
	cases := []struct {
		name  string
		build func() error
	}{
		{"no apps", func() error { _, err := New(cfg, nil, nil, 1); return err }},
		{"alloc mismatch", func() error { _, err := New(cfg, ps, []int{8}, 1); return err }},
		{"negative alloc", func() error { _, err := New(cfg, ps, []int{17, -1}, 1); return err }},
		{"empty alloc", func() error { _, err := New(cfg, ps, []int{0, 0}, 1); return err }},
		{"over-alloc", func() error { _, err := New(cfg, ps, []int{12, 12}, 1); return err }},
		{"bad config", func() error {
			bad := cfg
			bad.NumSMs = 0
			_, err := New(bad, ps, []int{8, 8}, 1)
			return err
		}},
		{"bad profile", func() error {
			badPs := append([]kernels.Profile(nil), ps...)
			badPs[0].ComputeLat = 0
			_, err := New(cfg, badPs, []int{8, 8}, 1)
			return err
		}},
	}
	for _, tc := range cases {
		if tc.build() == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestDeterminism(t *testing.T) {
	cfg := config.Default()
	cfg.IntervalCycles = 10_000
	ps := twoApps(t)
	run := func() *Result {
		g, err := New(cfg, ps, []int{8, 8}, 42)
		if err != nil {
			t.Fatal(err)
		}
		g.Run(30_000)
		return g.FinishRun()
	}
	r1, r2 := run(), run()
	for i := range r1.Apps {
		if r1.Apps[i].Instructions != r2.Apps[i].Instructions ||
			r1.Apps[i].Served != r2.Apps[i].Served {
			t.Fatalf("nondeterministic run: %+v vs %+v", r1.Apps[i], r2.Apps[i])
		}
	}
	if r1.BusIdle != r2.BusIdle || r1.BusWasted != r2.BusWasted {
		t.Fatal("nondeterministic bus accounting")
	}
}

func TestSeedChangesOutcome(t *testing.T) {
	cfg := config.Default()
	ps := twoApps(t)
	g1, _ := New(cfg, ps, []int{8, 8}, 1)
	g1.Run(30_000)
	r1 := g1.FinishRun()
	g2, _ := New(cfg, ps, []int{8, 8}, 99)
	g2.Run(30_000)
	r2 := g2.FinishRun()
	if r1.Apps[0].Instructions == r2.Apps[0].Instructions &&
		r1.Apps[1].Instructions == r2.Apps[1].Instructions {
		t.Fatal("different seeds produced identical instruction counts")
	}
}

func TestSnapshotConsistency(t *testing.T) {
	cfg := config.Default()
	cfg.IntervalCycles = 10_000
	ps := twoApps(t)
	g, err := New(cfg, ps, []int{8, 8}, 1, WithPriorityEpochs())
	if err != nil {
		t.Fatal(err)
	}
	g.Run(40_000)
	res := g.FinishRun()
	if len(res.Snapshots) != 4 {
		t.Fatalf("snapshots = %d, want 4", len(res.Snapshots))
	}
	for si, s := range res.Snapshots {
		if s.IntervalCycles != 10_000 {
			t.Fatalf("snapshot %d interval = %d", si, s.IntervalCycles)
		}
		for i, a := range s.Apps {
			// Each app owns 8 SMs the whole run.
			if a.SMs != 8 {
				t.Fatalf("snapshot %d app %d SMs = %d", si, i, a.SMs)
			}
			if a.SMCycles != 8*10_000 {
				t.Fatalf("snapshot %d app %d SMCycles = %d", si, i, a.SMCycles)
			}
			if a.Alpha < 0 || a.Alpha > 1 {
				t.Fatalf("alpha out of range: %v", a.Alpha)
			}
			if a.PrioCycles == 0 {
				t.Fatalf("priority epochs enabled but app %d got no priority cycles", i)
			}
			if a.BLP < a.BLPAccess {
				t.Fatalf("BLP %v < BLPAccess %v", a.BLP, a.BLPAccess)
			}
		}
		if s.BusCycles != uint64(cfg.NumMCs)*10_000 {
			t.Fatalf("bus cycles = %d", s.BusCycles)
		}
	}
}

func TestIntervalHookRuns(t *testing.T) {
	cfg := config.Default()
	cfg.IntervalCycles = 5_000
	ps := twoApps(t)
	g, err := New(cfg, ps, []int{8, 8}, 1)
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	g.IntervalHook = func(gg *GPU, snap *IntervalSnapshot) {
		calls++
		if gg != g || snap == nil {
			t.Fatal("bad hook arguments")
		}
	}
	g.Run(20_000)
	if calls != 4 {
		t.Fatalf("hook ran %d times, want 4", calls)
	}
}

func TestAllocationAccessors(t *testing.T) {
	cfg := config.Default()
	ps := twoApps(t)
	g, err := New(cfg, ps, []int{10, 6}, 1)
	if err != nil {
		t.Fatal(err)
	}
	alloc := g.Allocation()
	if alloc[0] != 10 || alloc[1] != 6 {
		t.Fatalf("Allocation = %v", alloc)
	}
	if len(g.Apps()) != 2 || g.Cycle() != 0 {
		t.Fatal("accessors broken")
	}
	if err := g.SetAllocation([]int{20, 6}); err == nil {
		t.Fatal("over-allocation accepted")
	}
	if err := g.SetAllocation([]int{6, 10}); err != nil {
		t.Fatal(err)
	}
	alloc = g.Allocation()
	if alloc[0] != 6 || alloc[1] != 10 {
		t.Fatalf("desired allocation = %v", alloc)
	}
}

func TestEvenAllocation(t *testing.T) {
	if got := EvenAllocation(16, 2); got[0] != 8 || got[1] != 8 {
		t.Fatalf("EvenAllocation(16,2) = %v", got)
	}
	got := EvenAllocation(16, 3)
	if got[0] != 6 || got[1] != 5 || got[2] != 5 {
		t.Fatalf("EvenAllocation(16,3) = %v", got)
	}
}

func TestPartialFinalInterval(t *testing.T) {
	cfg := config.Default()
	cfg.IntervalCycles = 10_000
	ps := twoApps(t)
	g, _ := New(cfg, ps, []int{8, 8}, 1)
	g.Run(15_000) // one full interval + half
	res := g.FinishRun()
	if len(res.Snapshots) != 2 {
		t.Fatalf("snapshots = %d, want 2 (one partial)", len(res.Snapshots))
	}
	if res.Snapshots[1].IntervalCycles != 5_000 {
		t.Fatalf("partial interval = %d", res.Snapshots[1].IntervalCycles)
	}
}

func TestLaunchesRestartKernel(t *testing.T) {
	cfg := config.Default()
	p, _ := kernels.ByAbbr("QR")
	p.Blocks = 4
	p.InstPerWarp = 50
	g, err := New(cfg, []kernels.Profile{p}, []int{16}, 1)
	if err != nil {
		t.Fatal(err)
	}
	g.Run(100_000)
	if g.Apps()[0].Launches() < 2 {
		t.Fatalf("tiny kernel should have relaunched, launches = %d", g.Apps()[0].Launches())
	}
}

func TestFourApps(t *testing.T) {
	cfg := config.Default()
	cfg.IntervalCycles = 10_000
	var ps []kernels.Profile
	for _, ab := range []string{"QR", "CT", "BG", "SD"} {
		p, _ := kernels.ByAbbr(ab)
		ps = append(ps, p)
	}
	res, err := RunShared(cfg, ps, []int{4, 4, 4, 4}, 30_000, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i, a := range res.Apps {
		if a.Instructions == 0 {
			t.Fatalf("app %d idle in four-app mix", i)
		}
	}
}
