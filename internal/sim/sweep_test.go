package sim

import (
	"testing"

	"dasesim/internal/config"
	"dasesim/internal/kernels"
)

// TestSweepLocality is a calibration aid: it maps ScatterFrac/SeqRun to
// saturated bandwidth utilisation for a streaming kernel. Run manually with
// -run SweepLocality -v; skipped in -short mode.
func TestSweepLocality(t *testing.T) {
	if testing.Short() {
		t.Skip("manual calibration sweep")
	}
	cfg := config.Default()
	base, _ := kernels.ByAbbr("SB")
	for _, sf := range []float64{0, 0.1, 0.25, 0.4} {
		for _, run := range []int{8, 24, 64} {
			p := base
			p.ScatterFrac = sf
			p.SeqRun = run
			res, err := RunAlone(cfg, p, 60_000, 1)
			if err != nil {
				t.Fatal(err)
			}
			a := res.Apps[0]
			t.Logf("sf=%.2f run=%-3d util=%.3f rowhit=%.3f IPC=%5.2f alpha=%.3f",
				sf, run, a.BWUtil, a.RowHitRate, a.IPC, a.Alpha)
		}
	}
}
