package sim

import (
	"testing"

	"dasesim/internal/config"
	"dasesim/internal/kernels"
)

// TestSmokeAlone runs one streaming kernel alone and checks that the basic
// machinery produces sane numbers: instructions retire, memory requests are
// served, and bandwidth accounting adds up.
func TestSmokeAlone(t *testing.T) {
	cfg := config.Default()
	cfg.IntervalCycles = 10_000
	p, ok := kernels.ByAbbr("SB")
	if !ok {
		t.Fatal("kernel SB not found")
	}
	res, err := RunAlone(cfg, p, 50_000, 1)
	if err != nil {
		t.Fatal(err)
	}
	a := res.Apps[0]
	t.Logf("SB alone: IPC=%.2f alpha=%.3f served=%d bwutil=%.3f rowhit=%.3f l1hit=%.3f blocks=%d",
		a.IPC, a.Alpha, a.Served, a.BWUtil, a.RowHitRate, a.L1HitRate, a.BlocksDone)
	t.Logf("bus: cycles=%d wasted=%d idle=%d totalUtil=%.3f",
		res.BusCycles, res.BusWasted, res.BusIdle, res.BWUtilTotal())
	if a.Instructions == 0 {
		t.Fatal("no instructions retired")
	}
	if a.Served == 0 {
		t.Fatal("no DRAM requests served")
	}
	if res.BWUtilTotal() <= 0 || res.BWUtilTotal() > 1 {
		t.Fatalf("nonsensical bandwidth utilization %v", res.BWUtilTotal())
	}
	var acct uint64
	for i := range res.Apps {
		acct += res.Apps[i].DataCycles
	}
	if acct+res.BusWasted+res.BusIdle > res.BusCycles {
		t.Fatalf("bus accounting exceeds cycles: data=%d wasted=%d idle=%d cycles=%d",
			acct, res.BusWasted, res.BusIdle, res.BusCycles)
	}
	if a.Occupancy <= 0 || a.Occupancy > 1 {
		t.Fatalf("occupancy %v out of (0,1]", a.Occupancy)
	}
	if a.MeanLatency <= 0 || a.P95Latency == 0 {
		t.Fatalf("latency stats missing: mean=%v p95=%d", a.MeanLatency, a.P95Latency)
	}
}

// TestSmokeShared runs two kernels concurrently on an even split.
func TestSmokeShared(t *testing.T) {
	cfg := config.Default()
	cfg.IntervalCycles = 10_000
	sb, _ := kernels.ByAbbr("SB")
	sd, _ := kernels.ByAbbr("SD")
	res, err := RunShared(cfg, []kernels.Profile{sb, sd}, []int{8, 8}, 50_000, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range res.Apps {
		t.Logf("%s shared: IPC=%.2f alpha=%.3f served=%d bwutil=%.3f rowhit=%.3f",
			a.Abbr, a.IPC, a.Alpha, a.Served, a.BWUtil, a.RowHitRate)
		if a.Instructions == 0 {
			t.Fatalf("%s retired no instructions", a.Abbr)
		}
	}
	if len(res.Snapshots) < 5 {
		t.Fatalf("expected >=5 snapshots, got %d", len(res.Snapshots))
	}
	s := res.Snapshots[len(res.Snapshots)-1]
	for _, ai := range s.Apps {
		t.Logf("%v snap: served=%d blp=%.2f blpacc=%.2f erb=%d ellc=%.1f alpha=%.3f tb=%d/%d",
			ai.App, ai.Served, ai.BLP, ai.BLPAccess, ai.ERBMiss, ai.ELLCMiss, ai.Alpha, ai.TBShared, ai.TBSum)
	}
}
