package sim

import "dasesim/internal/memreq"

// AppInterval is everything the estimators can observe about one app over
// one estimation interval — the software view of the paper's Table I
// hardware counters.
type AppInterval struct {
	App memreq.AppID

	// SM-side.
	SMs          int     // SMs owned at snapshot time
	Alpha        float64 // memory stall fraction (Eq. 15's α)
	Issued       uint64  // warp instructions this interval
	SMCycles     uint64  // SM-cycles accumulated (≈ SMs * interval)
	ActiveCycles uint64
	MemInsts     uint64

	// Memory-side, summed over all partitions.
	Served      uint64  // Request_i: requests whose DRAM transfer completed
	Enqueued    uint64  // requests admitted to DRAM queues
	TimeInBanks uint64  // Σ per-request bank occupancy (Eq. 12 numerator)
	ERBMiss     uint64  // extra row-buffer misses (Eq. 10)
	ELLCMiss    float64 // extra LLC misses scaled from the sampled ATD (Eq. 13)
	RowHits     uint64
	RowMisses   uint64
	DataCycles  uint64  // DRAM data-bus cycles moving this app's lines
	BLP         float64 // Eq. 14 denominator (sample-weighted across MCs)
	BLPAccess   float64
	BLPBlocked  float64 // banks occupied by co-runners while this app waits

	// Thread-block state (Eq. 24).
	TBSum    int
	TBShared int

	// Priority-epoch sampling (MISE/ASM): requests served during this
	// app's own highest-priority slice, and the slice length in cycles.
	PrioServed uint64
	PrioCycles uint64
}

// IntervalSnapshot is the estimator/policy view of one interval.
type IntervalSnapshot struct {
	Cycle          uint64 // cycle at which the snapshot was taken
	IntervalCycles uint64 // interval length (Timeshared)
	NumSMs         int
	NumMCs         int
	PeakReqPerCyc  float64 // aggregate DRAM lines per cycle at 100% bus use
	PeakActPerCyc  float64 // aggregate row activations per cycle (tFAW bound)
	ReqMaxFactor   float64 // the empirical 0.6 of Eq. 20

	Apps []AppInterval

	// Bus decomposition summed over controllers (Fig. 2(b)).
	BusCycles uint64
	BusWasted uint64
	BusIdle   uint64
}

// RequestMax returns the derated maximum serviceable requests over the
// interval (Eq. 20).
func (s *IntervalSnapshot) RequestMax() float64 {
	return s.PeakReqPerCyc * float64(s.IntervalCycles) * s.ReqMaxFactor
}

// TotalServed sums served requests across apps (Eq. 18's Σ Request_i).
func (s *IntervalSnapshot) TotalServed() uint64 {
	var t uint64
	for i := range s.Apps {
		t += s.Apps[i].Served
	}
	return t
}

// takeSnapshot collects all interval counters. It flushes SM stats into the
// windows first so the SM-side numbers cover the full interval.
func (g *GPU) takeSnapshot() *IntervalSnapshot {
	for _, sm := range g.sms {
		g.flushSM(sm)
	}
	// Close the currently open priority slice so its served count lands in
	// this snapshot.
	if g.priorityEpochs && g.curPrio != memreq.InvalidApp {
		g.prioServed[g.curPrio] += g.servedTotal(g.curPrio) - g.prioServedBase[g.curPrio]
		g.prioServedBase[g.curPrio] = g.servedTotal(g.curPrio)
	}

	snap := &IntervalSnapshot{
		Cycle:          g.cycle,
		IntervalCycles: g.cycle - g.intervalStart,
		NumSMs:         g.cfg.NumSMs,
		NumMCs:         g.cfg.NumMCs,
		PeakReqPerCyc:  g.cfg.PeakRequestsPerCycle(),
		PeakActPerCyc:  g.cfg.PeakActivationsPerCycle(),
		ReqMaxFactor:   g.cfg.RequestMaxFactor,
		Apps:           make([]AppInterval, len(g.apps)),
	}
	alloc := g.Allocation()
	for i, app := range g.apps {
		w := g.window[i]
		ai := AppInterval{
			App:          app.ID,
			SMs:          alloc[i],
			Issued:       w.issued,
			SMCycles:     w.smCycles,
			ActiveCycles: w.activeCycles,
			MemInsts:     w.memInsts,
			TBSum:        app.TBSum(),
			TBShared:     app.TBShared(),
			PrioServed:   g.prioServed[i],
			PrioCycles:   g.prioCycles[i],
		}
		if w.activeCycles > 0 {
			ai.Alpha = w.stallUnits / float64(w.activeCycles)
		}
		var blpSum, blpAccSum, blpBlkSum, blpSamples float64
		for _, p := range g.parts {
			c := p.mc.Counters(app.ID)
			ai.Served += c.Served
			ai.Enqueued += c.Enqueued
			ai.TimeInBanks += c.TimeInBanks
			ai.ERBMiss += c.ERBMiss
			ai.RowHits += c.RowHits
			ai.RowMisses += c.RowMisses
			ai.DataCycles += c.DataBusCycles
			ai.ELLCMiss += p.extraMisses(app.ID)
			blpSum += float64(c.BLPSum)
			blpAccSum += float64(c.BLPAccessSum)
			blpBlkSum += float64(c.BLPBlockedSum)
			blpSamples += float64(c.BLPSamples)
		}
		if blpSamples > 0 {
			// Average per-controller BLP, scaled to the whole memory
			// system: an app spreading over all controllers sees the sum
			// of per-controller parallelism.
			ai.BLP = blpSum / blpSamples * float64(g.cfg.NumMCs)
			ai.BLPAccess = blpAccSum / blpSamples * float64(g.cfg.NumMCs)
			ai.BLPBlocked = blpBlkSum / blpSamples * float64(g.cfg.NumMCs)
		}
		snap.Apps[i] = ai
	}
	for _, p := range g.parts {
		b := p.mc.Bus()
		var mcData uint64
		for i := range g.apps {
			mcData += p.mc.Counters(g.apps[i].ID).DataBusCycles
		}
		snap.BusCycles += b.Cycles
		snap.BusWasted += b.Wasted(mcData)
		snap.BusIdle += b.Idle
	}
	return snap
}

// BandwidthUtilization returns, for the last snapshot or cumulative run, the
// fraction of DRAM data-bus cycles used per app and in total. It is computed
// from a snapshot to keep windows consistent.
func (s *IntervalSnapshot) BandwidthUtilization() (perApp []float64, total float64) {
	if s.BusCycles == 0 {
		return make([]float64, len(s.Apps)), 0
	}
	perApp = make([]float64, len(s.Apps))
	var data uint64
	for i := range s.Apps {
		perApp[i] = float64(s.Apps[i].DataCycles) / float64(s.BusCycles)
		data += s.Apps[i].DataCycles
	}
	return perApp, float64(data) / float64(s.BusCycles)
}
