package sim

import (
	"fmt"

	"dasesim/internal/memreq"
)

// InvariantViolation is the error the runtime invariant checker reports (and
// that step panics with, so a checked simulation fails loudly at — or within
// checkEveryCycles of — the cycle the engine's state first went wrong).
type InvariantViolation struct {
	Cycle  uint64
	Check  string // which invariant family failed (conservation, mshr-agreement, ...)
	Detail string
}

func (e *InvariantViolation) Error() string {
	return fmt.Sprintf("sim: invariant %q violated at cycle %d: %s", e.Check, e.Cycle, e.Detail)
}

// checkEveryCycles is the sweep cadence of the runtime checker. The checked
// invariants are state properties, not event properties — a violation
// persists until swept — so checking every cycle would buy only tighter
// localization at ~64x the cost.
const checkEveryCycles = 64

// WithInvariantChecks enables the runtime validation layer: every request
// pool switches into hygiene-checking mode (double-Put, writes after Put,
// non-zeroed reuse — one shared pool sequentially, one per SM and partition
// under WithParallelism), and every checkEveryCycles cycles the GPU sweeps
//
//   - request conservation: every live request appears in exactly one
//     transport location (SM outbox, crossbar, partition replay/toMC/replies,
//     DRAM), except an L2-miss head which is also first in its MSHR waiter
//     list, and merged waiters which appear in no transport at all;
//   - pool hygiene: no live request is simultaneously owned by the pool, and
//     every pooled request is still fully zeroed;
//   - MSHR agreement: per-slot waiter lists match the L2's allocated slots,
//     tags, and merge counts (and the SMs' lists match their L1s), and each
//     cache's index/slot/free-stack views agree internally;
//   - structural ring and queue contracts across SMs, crossbar and DRAM,
//     including the incremental per-bank counters against naive recounts;
//   - monotonic counters: cycle, crossbar traffic, refreshes and retired
//     instructions never decrease.
//
// Checking never changes simulation results (it reads engine state and only
// alters which pooled pointers are recycled when); it exists to turn silent
// state corruption into an immediate *InvariantViolation panic. Off by
// default and free when off — the hot path pays one nil check per step.
func WithInvariantChecks() Option {
	return func(g *GPU) {
		g.pool.EnableChecks()
		g.checks = &invariantChecker{g: g, seen: make(map[*memreq.Request]int, 1024)}
	}
}

// InvariantChecksEnabled reports whether the GPU was built with
// WithInvariantChecks.
func (g *GPU) InvariantChecksEnabled() bool { return g.checks != nil }

// CheckInvariantsNow runs the full invariant sweep immediately and returns
// the first violation found, or nil. It requires WithInvariantChecks.
func (g *GPU) CheckInvariantsNow() error {
	if g.checks == nil {
		return fmt.Errorf("sim: invariant checks not enabled (build the GPU with WithInvariantChecks)")
	}
	if err := g.checks.sweep(); err != nil {
		return err
	}
	return nil
}

// pooledBy returns the pool that currently owns r (free or quarantined), or
// nil. The parallel engine gives every SM and partition a private pool, so
// ownership is checked across all of them; a checked pool only tracks
// requests it has seen, so cross-pool double-Puts surface here as a live
// request owned by some pool rather than at the Put itself.
func (g *GPU) pooledBy(r *memreq.Request) *memreq.Pool {
	for _, pl := range g.pools {
		if pl.Owned(r) {
			return pl
		}
	}
	return nil
}

// invariantChecker holds the sweep's reusable scratch state and the baselines
// for the monotonic-counter checks.
type invariantChecker struct {
	g    *GPU
	seen map[*memreq.Request]int // transport sightings per live request

	lastCycle   uint64
	lastReqSent uint64
	lastRepSent uint64
	lastRefresh []uint64
	lastInstr   []uint64
}

// sweep runs every check once and returns the first violation.
func (c *invariantChecker) sweep() *InvariantViolation {
	g := c.g
	fail := func(check, format string, args ...any) *InvariantViolation {
		return &InvariantViolation{Cycle: g.cycle, Check: check, Detail: fmt.Sprintf(format, args...)}
	}

	// Conservation, pass 1: count each live request's transport sightings.
	clear(c.seen)
	where, nilWhere, dupDetail := "", "", ""
	visit := func(r *memreq.Request) {
		if r == nil {
			if nilWhere == "" {
				nilWhere = where
			}
			return
		}
		c.seen[r]++
		if c.seen[r] == 2 && dupDetail == "" {
			dupDetail = fmt.Sprintf("request %v sighted twice (second time in %s)", r, where)
		}
	}
	for _, sm := range g.sms {
		where = fmt.Sprintf("SM %d outbox", sm.ID)
		sm.ForEachOutbox(visit)
	}
	where = "crossbar"
	g.ic.ForEachInFlight(visit)
	for pi, p := range g.parts {
		where = fmt.Sprintf("partition %d replay", pi)
		if p.replay != nil {
			visit(p.replay)
		}
		where = fmt.Sprintf("partition %d toMC", pi)
		for _, r := range p.toMC {
			visit(r)
		}
		where = fmt.Sprintf("partition %d replies", pi)
		p.replies.Do(func(e timedReq) { visit(e.req) })
		where = fmt.Sprintf("partition %d dram", pi)
		p.mc.ForEachInFlight(visit)
	}
	if nilWhere != "" {
		return fail("conservation", "nil request in %s", nilWhere)
	}
	if dupDetail != "" {
		return fail("conservation", "%s", dupDetail)
	}

	// Conservation, pass 2: L2 MSHR waiter lists. The head of each list is
	// the request forwarded to DRAM (exactly one transport sighting); merged
	// waiters live only in the list (zero sightings). Both agree with the L2's
	// slot/tag/merge-count view.
	for pi, p := range g.parts {
		nonEmpty := 0
		for slot, ws := range p.waiters {
			if len(ws) == 0 {
				continue
			}
			nonEmpty++
			head := ws[0]
			if n := c.seen[head]; n != 1 {
				return fail("conservation", "partition %d MSHR slot %d head %v sighted in %d transport locations, want 1", pi, slot, head, n)
			}
			addr, ok := p.l2.MSHRAddr(slot)
			if !ok {
				return fail("mshr-agreement", "partition %d: %d waiters on unallocated L2 MSHR slot %d", pi, len(ws), slot)
			}
			if addr != head.Addr {
				return fail("mshr-agreement", "partition %d: L2 MSHR slot %d tracks %#x but head waiter is %v", pi, slot, addr, head)
			}
			if want := p.l2.MSHRMerged(slot) + 1; want != len(ws) {
				return fail("mshr-agreement", "partition %d: L2 MSHR slot %d merge count says %d waiters, list holds %d", pi, slot, want, len(ws))
			}
			for _, w := range ws[1:] {
				if n := c.seen[w]; n != 0 {
					return fail("conservation", "partition %d MSHR slot %d merged waiter %v also sighted in %d transport locations", pi, slot, w, n)
				}
				if w.Addr != head.Addr {
					return fail("mshr-agreement", "partition %d MSHR slot %d merges %v onto head %v (different lines)", pi, slot, w, head)
				}
				if pl := g.pooledBy(w); pl != nil {
					return fail("pool-hygiene", "partition %d MSHR slot %d waiter %v is owned by a pool (use-after-Put, gen %d)", pi, slot, w, pl.Generation(w))
				}
			}
		}
		if inUse := p.l2.MSHRsInUse(); nonEmpty != inUse {
			return fail("mshr-agreement", "partition %d: %d allocated L2 MSHRs but %d non-empty waiter lists", pi, inUse, nonEmpty)
		}
	}

	// Pool hygiene: live requests are never pool-owned, pooled requests are
	// still zeroed, and every request is well-formed.
	for r := range c.seen {
		if pl := g.pooledBy(r); pl != nil {
			return fail("pool-hygiene", "live request %v is owned by a pool (use-after-Put, gen %d)", r, pl.Generation(r))
		}
		if int(r.App) < 0 || int(r.App) >= len(g.apps) {
			return fail("conservation", "live request %v has app outside [0,%d)", r, len(g.apps))
		}
		if r.SM < -1 || r.SM >= len(g.sms) {
			return fail("conservation", "live request %v has SM outside [-1,%d)", r, len(g.sms))
		}
		if r.SM == -1 && r.Kind != memreq.Write {
			return fail("conservation", "internal (SM -1) request %v is not a write-back", r)
		}
	}
	for _, pl := range g.pools {
		if err := pl.CheckInvariants(); err != nil {
			return fail("pool-hygiene", "%v", err)
		}
	}

	// Component-local structural checks.
	for _, sm := range g.sms {
		if err := sm.CheckInvariants(); err != nil {
			return fail("structure", "%v", err)
		}
	}
	if err := g.ic.CheckInvariants(); err != nil {
		return fail("structure", "%v", err)
	}
	for pi, p := range g.parts {
		if err := p.l2.CheckInvariants(); err != nil {
			return fail("structure", "partition %d: %v", pi, err)
		}
		if err := p.mc.CheckInvariants(); err != nil {
			return fail("structure", "partition %d: %v", pi, err)
		}
		if err := p.replies.CheckInvariants(func(e timedReq) bool { return e.req == nil && e.ready == 0 }); err != nil {
			return fail("structure", "partition %d replies: %v", pi, err)
		}
	}

	// Monotonic counters.
	if c.lastRefresh == nil {
		c.lastRefresh = make([]uint64, len(g.parts))
		c.lastInstr = make([]uint64, len(g.apps))
	}
	if g.cycle < c.lastCycle {
		return fail("monotonic", "cycle went backward: %d after %d", g.cycle, c.lastCycle)
	}
	c.lastCycle = g.cycle
	if g.ic.ReqSent < c.lastReqSent || g.ic.RepSent < c.lastRepSent {
		return fail("monotonic", "crossbar traffic went backward: req %d after %d, rep %d after %d",
			g.ic.ReqSent, c.lastReqSent, g.ic.RepSent, c.lastRepSent)
	}
	c.lastReqSent, c.lastRepSent = g.ic.ReqSent, g.ic.RepSent
	for pi, p := range g.parts {
		if p.mc.Refreshes < c.lastRefresh[pi] {
			return fail("monotonic", "partition %d refresh count went backward: %d after %d", pi, p.mc.Refreshes, c.lastRefresh[pi])
		}
		c.lastRefresh[pi] = p.mc.Refreshes
	}
	for i, app := range g.apps {
		if app.Instructions < c.lastInstr[i] {
			return fail("monotonic", "app %d retired instructions went backward: %d after %d", i, app.Instructions, c.lastInstr[i])
		}
		c.lastInstr[i] = app.Instructions
	}
	return nil
}
