package sim

import (
	"testing"

	"dasesim/internal/config"
	"dasesim/internal/kernels"
)

// TestCalibrationTable runs every Table III kernel alone on the full GPU and
// logs its measured bandwidth utilisation next to the paper's target. Run
// with -v to read the calibration table. The assertion is deliberately loose
// (behaviour class, not exact percentage): kernels documented as high-BW
// must exceed mid ones, etc.
func TestCalibrationTable(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration run")
	}
	cfg := config.Default()
	cycles := uint64(100_000)
	meas := map[string]float64{}
	for _, p := range kernels.All() {
		res, err := RunAlone(cfg, p, cycles, 1)
		if err != nil {
			t.Fatalf("%s: %v", p.Abbr, err)
		}
		a := res.Apps[0]
		meas[p.Abbr] = a.BWUtil
		t.Logf("%-3s paper=%.2f meas=%.3f IPC=%6.2f alpha=%.3f rowhit=%.3f l1hit=%.3f served=%7d wasted=%5.3f idle=%5.3f",
			p.Abbr, p.PaperBW, a.BWUtil, a.IPC, a.Alpha, a.RowHitRate, a.L1HitRate, a.Served,
			float64(res.BusWasted)/float64(res.BusCycles), float64(res.BusIdle)/float64(res.BusCycles))
	}
	// Behaviour-class assertions: every high-BW kernel beats every low-BW
	// kernel by a clear margin.
	high := []string{"SB", "BS", "AA", "VA", "SA", "NN", "SP", "SC"}
	low := []string{"CT", "QR", "SN", "BG"}
	for _, h := range high {
		for _, l := range low {
			if meas[h] <= meas[l] {
				t.Errorf("expected %s (high-BW, %.3f) > %s (low-BW, %.3f)", h, meas[h], l, meas[l])
			}
		}
	}
}
