package sim

import (
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
)

// The parallel cycle engine shards GPU.step across a persistent worker pool
// with a bulk-synchronous barrier between phases, producing byte-identical
// results to the sequential engine. One simulated cycle becomes:
//
//	P0  (coord)    priority-epoch rotation
//	P1a (coord)    per-SM thread-block dispatch, SM-index order, recording
//	               which SMs went hungry (wanted a block the shared source
//	               could not supply because earlier blocks were in flight)
//	P1b (workers)  per-SM compute/issue with BlockFinished deferred
//	P1c (coord)    per SM in index order: retry a hungry SM's dispatch (plus
//	               the compute its fresh block would have received), then
//	               replay its deferred BlockFinished notifications
//	P2  (coord)    SM outbox -> crossbar injection, SM-index order
//	P3a (workers)  per-partition L2/DRAM cycling (replay, recv, access, DRAM)
//	P3b (coord)    partition reply -> crossbar injection, partition order
//	P4  (workers)  crossbar -> SM reply delivery
//	P5  (coord)    reassignment, cycle++, interval snapshot, debug sweep
//
// Why this is exact. Per-SM compute, per-partition cycling and per-SM reply
// delivery touch only entity-local state (plus the entity's own crossbar
// FIFO end, whose other end is written only in coordinator phases), so the
// worker phases commute freely. The two injection merges (P2, P3b) stay on
// the coordinator because queue-fullness coupling makes their cross-entity
// order observable (CanSendToMem/CanSendToSM decide who wins the last slot
// of a filling FIFO), and they run in exactly the sequential engine's index
// order. The only cross-SM coupling inside the sequential phase 1 is the
// shared per-app block source: the sequential order D0 C0 D1 C1 ... lets a
// BlockFinished from a lower-index SM enable a same-cycle kernel relaunch
// (NextBlock restarts only when inFlight drops to zero) on a higher-index
// SM. P1a/P1c reconstruct that chain exactly: a dispatch P1a makes is one
// the sequential chain also makes (P1a sees an inFlight count >= the
// sequential one, so a relaunch it takes was available to the chain too,
// and pre-relaunch block draws do not depend on inFlight at all); a
// dispatch it misses is flagged hungry and retried in P1c after the
// deferred finishes of lower-index SMs have been replayed — and only a
// completely idle SM can profit from the retry (a non-idle SM's own
// resident blocks pin inFlight above zero), for which the skipped P1b
// compute was a no-op, so dispatch-then-compute in P1c reproduces its
// sequential cycle exactly. Freshly dispatched blocks cannot retire in the
// same cycle (a warp's first instruction leaves it in a wait state), so
// P1c's recovered computes produce no further finishes.
//
// Request pools: memreq.Pool is deliberately not concurrency-safe, so in
// parallel mode every SM and partition gets a private pool (see GPU.pools).
// Request pointer identity never reaches simulated values, so this cannot
// change results.

// parUnset marks "no WithParallelism option given" so New can consult the
// DASESIM_PARALLEL environment default.
const parUnset = -1

// WithParallelism runs the cycle engine on n bulk-synchronous shards:
// n-1 persistent worker goroutines plus the coordinator, spawned once per
// Run/RunContext and reused across all its cycles. n == 0 means
// runtime.GOMAXPROCS(0); n < 0 forces the sequential engine (useful to
// override the DASESIM_PARALLEL environment default, which is consulted
// only when this option is absent). Results are byte-identical to the
// sequential engine for every n; n == 1 runs the phased engine inline with
// no extra goroutines.
func WithParallelism(n int) Option {
	return func(g *GPU) {
		switch {
		case n < 0:
			g.parallelism = 0
		case n == 0:
			g.parallelism = runtime.GOMAXPROCS(0)
		default:
			g.parallelism = n
		}
	}
}

// Parallelism returns the resolved shard count: 0 for the sequential
// engine, n >= 1 for the phased engine.
func (g *GPU) Parallelism() int { return g.parallelism }

// envParallelism reads the DASESIM_PARALLEL default applied when no
// WithParallelism option is given: unset, empty, invalid or negative values
// mean sequential; 0 means GOMAXPROCS. It exists so test suites (the -race
// CI job) can force the parallel engine across a whole package.
func envParallelism() int {
	v := os.Getenv("DASESIM_PARALLEL")
	if v == "" {
		return 0
	}
	n, err := strconv.Atoi(v)
	if err != nil || n < 0 {
		return 0
	}
	if n == 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// Phase kinds a barrier release carries to the workers.
const (
	phaseCompute uint32 = iota
	phasePartitions
	phaseDeliver
	phaseQuit
)

// spinIters is how long waiters spin on the barrier atomics before yielding
// the processor. Short: phases are microseconds apart, and on a machine with
// fewer cores than shards a pure spin would starve the goroutine holding the
// work.
const spinIters = 64

// parEngine is the persistent state of the parallel cycle engine: shard
// ranges, the hungry-SM scratch of phase P1a/P1c, and the barrier.
//
// The barrier is a release-epoch broadcast: the coordinator stores the phase
// kind and cycle, bumps release (the atomic add publishes the plain stores),
// runs its own shard, then waits for the other n-1 shards to bump done.
// Workers track the last epoch they served and wait for the next bump.
// Waits spin briefly then runtime.Gosched, so the engine stays live (if
// slow) even with more shards than cores. All cross-goroutine state passes
// through the two atomics, which give the necessary happens-before edges.
type parEngine struct {
	g *GPU
	n int

	smLo, smHi     []int // SM index range of each shard
	partLo, partHi []int // partition index range of each shard
	hungry         []bool

	kind    uint32 // published by release
	now     uint64 // published by release
	release atomic.Uint64
	done    atomic.Uint32

	wg    sync.WaitGroup
	depth int // nested Run/RunContext depth; workers live at depth >= 1
}

func newParEngine(g *GPU, n int) *parEngine {
	e := &parEngine{
		g:      g,
		n:      n,
		smLo:   make([]int, n),
		smHi:   make([]int, n),
		partLo: make([]int, n),
		partHi: make([]int, n),
		hungry: make([]bool, g.cfg.NumSMs),
	}
	for w := 0; w < n; w++ {
		e.smLo[w] = w * g.cfg.NumSMs / n
		e.smHi[w] = (w + 1) * g.cfg.NumSMs / n
		e.partLo[w] = w * g.cfg.NumMCs / n
		e.partHi[w] = (w + 1) * g.cfg.NumMCs / n
	}
	return e
}

// start spawns the n-1 worker goroutines and switches the SMs into
// BlockFinished deferral. Reentrant: a nested Run inside an IntervalHook
// reuses the already-running workers.
func (e *parEngine) start() {
	e.depth++
	if e.depth > 1 {
		return
	}
	// Deferral is part of the phase protocol at every n, including the
	// inline n == 1 engine: a finish applied eagerly during P1b would let a
	// higher-index SM's block completion enable a lower-index hungry SM's
	// P1c retry, which the sequential chain order forbids.
	for _, sm := range e.g.sms {
		sm.SetDeferFinish(true)
	}
	if e.n == 1 {
		return
	}
	base := e.release.Load()
	for w := 1; w < e.n; w++ {
		e.wg.Add(1)
		go e.worker(w, base)
	}
}

// stop quits the workers and restores direct BlockFinished delivery, so a
// GPU can be driven by plain step() again (tests mix Run styles) and no
// goroutines outlive the Run.
func (e *parEngine) stop() {
	e.depth--
	if e.depth > 0 {
		return
	}
	if e.n > 1 {
		e.kind = phaseQuit
		e.release.Add(1)
		e.wg.Wait()
	}
	for _, sm := range e.g.sms {
		sm.SetDeferFinish(false)
	}
}

// phase runs one worker phase across all shards and returns when every
// shard has finished (the bulk-synchronous barrier).
func (e *parEngine) phase(kind uint32, now uint64) {
	if e.n == 1 {
		e.runShard(0, kind, now)
		return
	}
	e.kind, e.now = kind, now
	e.done.Store(0)
	e.release.Add(1)
	e.runShard(0, kind, now)
	target := uint32(e.n - 1)
	for i := 0; e.done.Load() != target; i++ {
		if i >= spinIters {
			runtime.Gosched()
		}
	}
}

func (e *parEngine) worker(w int, last uint64) {
	defer e.wg.Done()
	for {
		for i := 0; e.release.Load() == last; i++ {
			if i >= spinIters {
				runtime.Gosched()
			}
		}
		last++
		kind, now := e.kind, e.now
		if kind == phaseQuit {
			return
		}
		e.runShard(w, kind, now)
		e.done.Add(1)
	}
}

// runShard executes shard w of one phase.
func (e *parEngine) runShard(w int, kind uint32, now uint64) {
	g := e.g
	switch kind {
	case phaseCompute:
		for i := e.smLo[w]; i < e.smHi[w]; i++ {
			g.sms[i].ComputePhase(now)
		}
	case phasePartitions:
		for pi := e.partLo[w]; pi < e.partHi[w]; pi++ {
			g.partitionInput(g.parts[pi], pi, now)
		}
	case phaseDeliver:
		for si := e.smLo[w]; si < e.smHi[w]; si++ {
			g.deliverReplies(si, g.sms[si], now)
		}
	}
}

// stepParallel advances exactly one core cycle on the phased engine. It is
// the parallel counterpart of step; see the package comment above for the
// phase protocol and its equivalence argument.
func (g *GPU) stepParallel() {
	e := g.par
	now := g.cycle

	if g.priorityEpochs {
		g.updatePriorityEpoch(now)
	}

	// P1a: dispatch scan in SM-index order, recording hunger.
	for i, sm := range g.sms {
		e.hungry[i] = sm.DispatchPhase()
	}

	// P1b: per-SM compute with BlockFinished deferred.
	e.phase(phaseCompute, now)

	// P1c: reconstruct the sequential dispatch/finish interleaving.
	for i, sm := range g.sms {
		if e.hungry[i] {
			sm.RedispatchPhase(now)
		}
		sm.ReplayFinishes()
	}

	// P2: outbox -> crossbar injection in SM-index order.
	for _, sm := range g.sms {
		g.injectSM(sm, now)
	}

	// P3a: per-partition L2/DRAM cycling.
	e.phase(phasePartitions, now)

	// P3b: reply injection in partition-index order.
	for pi, p := range g.parts {
		g.partitionOutput(p, pi, now)
	}

	// P4: reply delivery into SMs.
	e.phase(phaseDeliver, now)

	g.finishCycle()
}
