// Package sim wires the SM cores, interconnect, L2 slices and DRAM
// controllers into a whole-GPU cycle-level simulator with spatial
// multitasking: each SM is owned by one application at a time, ownership
// changes happen by draining (paper §7), and per-interval hardware-counter
// snapshots feed the slowdown estimators and scheduling policies.
package sim

import (
	"context"
	"fmt"

	"dasesim/internal/config"
	"dasesim/internal/faults"
	"dasesim/internal/icnt"
	"dasesim/internal/kernels"
	"dasesim/internal/memreq"
	"dasesim/internal/smcore"
	"dasesim/internal/telemetry"
)

// GPU is one simulated device executing a set of applications.
type GPU struct {
	cfg  config.Config
	amap memreq.AddrMap

	apps  []*App
	disps []*dispatcher
	sms   []*smcore.SM
	parts []*partition
	ic    *icnt.ICNT
	pool  *memreq.Pool // request recycler shared by SMs and partitions

	// pools lists every request pool the engine hands out from: just
	// {pool} for the sequential engine, one private pool per SM and per
	// partition under WithParallelism (the pool is deliberately not
	// concurrency-safe, and pointer identity never reaches simulated
	// values, so per-entity pools keep the parallel engine byte-identical).
	pools []*memreq.Pool

	// parallelism is the resolved worker count of WithParallelism: 0 runs
	// today's sequential engine, n >= 1 the phased engine with n shards.
	// par is its persistent state (nil when sequential).
	parallelism int
	par         *parEngine

	cycle uint64

	// desired[i] is the app that should own SM i; when it differs from the
	// current owner the SM is draining toward reassignment.
	desired []memreq.AppID

	// interval state
	intervalStart uint64
	window        []appWindow // per-app interval accumulators

	// priority-epoch state (MISE/ASM sampling). When enabled, each
	// interval is divided into len(apps) equal slices; during slice k all
	// controllers give app k's requests highest priority.
	priorityEpochs bool
	prioServedBase []uint64 // served count at the start of the current slice
	prioServed     []uint64 // served during own priority slice, this interval
	prioCycles     []uint64
	curPrio        memreq.AppID

	// IntervalHook, when set, runs at every interval boundary with the
	// fresh snapshot, before counters reset. Policies and estimators hang
	// off this.
	IntervalHook func(g *GPU, snap *IntervalSnapshot)

	snapshots []IntervalSnapshot

	// snapRetention caps len(snapshots); 0 means unlimited. When the cap is
	// hit the oldest snapshot's run-total counters are folded into evicted
	// before it is dropped, so FinishRun's aggregates stay exact.
	snapRetention int
	evicted       snapshotAgg

	// checks is non-nil under WithInvariantChecks; step sweeps it
	// periodically and panics with the first *InvariantViolation.
	checks *invariantChecker

	// tracer is non-nil under WithTracer; the engine emits interval
	// snapshots and SM drain/assign transitions into it. Observation-only:
	// results are identical with tracing on, and when off each site pays one
	// nil check.
	tracer *telemetry.Tracer
}

// snapshotAgg accumulates the run-total counters of snapshots evicted under
// a retention cap.
type snapshotAgg struct {
	busCycles, busWasted, busIdle uint64
	served, data                  []uint64
	rowHits, rowMisses            []uint64
}

// appWindow accumulates SM-side stats for one app over the current interval.
type appWindow struct {
	issued       uint64
	smCycles     uint64
	activeCycles uint64
	stallUnits   float64
	memInsts     uint64
}

// Option configures a GPU.
type Option func(*GPU)

// WithPriorityEpochs enables the rotating highest-priority sampling epochs
// that the MISE and ASM estimators require.
func WithPriorityEpochs() Option {
	return func(g *GPU) { g.priorityEpochs = true }
}

// WithSnapshotRetention caps how many interval snapshots the GPU keeps in
// memory (n <= 0 means unlimited, the default). Long-running simulations
// otherwise grow their snapshot slice without bound; with a cap, the oldest
// snapshots are dropped after their run-total counters (bus decomposition,
// served requests, row hits) are folded into accumulators, so FinishRun's
// whole-run aggregates are unaffected — only Result.Snapshots is truncated
// to the most recent n intervals.
func WithSnapshotRetention(n int) Option {
	return func(g *GPU) { g.snapRetention = n }
}

// WithTracer attaches an event tracer. The engine emits one interval event
// per app at every interval boundary plus SM drain/assign transitions during
// repartitioning. Tracing is observation-only — simulation results are
// byte-identical with it enabled — and a nil tracer is the same as not
// passing the option.
func WithTracer(tr *telemetry.Tracer) Option {
	return func(g *GPU) { g.tracer = tr }
}

// Tracer returns the tracer attached with WithTracer, nil when tracing is
// disabled. Policies use this to emit into the same stream as the engine.
func (g *GPU) Tracer() *telemetry.Tracer { return g.tracer }

// New builds a GPU running the given application profiles with alloc[i] SMs
// initially assigned to app i. The sum of alloc must not exceed the SM
// count; SMs are assigned contiguously in order.
func New(cfg config.Config, profiles []kernels.Profile, alloc []int, seed uint64, opts ...Option) (*GPU, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(profiles) == 0 {
		return nil, fmt.Errorf("sim: no applications")
	}
	if len(alloc) != len(profiles) {
		return nil, fmt.Errorf("sim: %d allocations for %d apps", len(alloc), len(profiles))
	}
	total := 0
	for i, n := range alloc {
		if n < 0 {
			return nil, fmt.Errorf("sim: app %d allocated %d SMs", i, n)
		}
		total += n
	}
	if total > cfg.NumSMs {
		return nil, fmt.Errorf("sim: allocation %v exceeds %d SMs", alloc, cfg.NumSMs)
	}
	if total == 0 {
		return nil, fmt.Errorf("sim: allocation %v leaves the GPU empty", alloc)
	}
	for i := range profiles {
		if err := profiles[i].Validate(); err != nil {
			return nil, fmt.Errorf("sim: %w", err)
		}
		if profiles[i].CoalescedLines > 0 && kernels.LineBytes != cfg.L1.LineBytes {
			return nil, fmt.Errorf("sim: kernel line size %d != cache line size %d", kernels.LineBytes, cfg.L1.LineBytes)
		}
	}

	amap := memreq.NewAddrMap(cfg.L2.LineBytes, cfg.NumMCs, cfg.Mem.NumBanks, cfg.Mem.RowBytes)
	g := &GPU{
		cfg:            cfg,
		amap:           amap,
		ic:             icnt.New(cfg.ICNT, cfg.NumSMs, cfg.NumMCs, cfg.L2.LineBytes),
		pool:           &memreq.Pool{},
		parallelism:    parUnset,
		desired:        make([]memreq.AppID, cfg.NumSMs),
		window:         make([]appWindow, len(profiles)),
		prioServedBase: make([]uint64, len(profiles)),
		prioServed:     make([]uint64, len(profiles)),
		prioCycles:     make([]uint64, len(profiles)),
		curPrio:        memreq.InvalidApp,
	}
	g.evicted.served = make([]uint64, len(profiles))
	g.evicted.data = make([]uint64, len(profiles))
	g.evicted.rowHits = make([]uint64, len(profiles))
	g.evicted.rowMisses = make([]uint64, len(profiles))
	for _, o := range opts {
		o(g)
	}
	if g.parallelism == parUnset {
		g.parallelism = envParallelism()
	}
	for i, p := range profiles {
		app := newApp(memreq.AppID(i), p, seed)
		g.apps = append(g.apps, app)
		g.disps = append(g.disps, &dispatcher{app})
	}
	// newPool returns the request recycler for one SM or partition: the
	// shared pool sequentially, a private one per entity in parallel mode.
	g.pools = []*memreq.Pool{g.pool}
	newPool := func() *memreq.Pool {
		if g.parallelism == 0 {
			return g.pool
		}
		p := &memreq.Pool{}
		g.pools = append(g.pools, p)
		return p
	}
	for i := 0; i < cfg.NumSMs; i++ {
		g.sms = append(g.sms, smcore.New(i, cfg, amap, newPool()))
		g.desired[i] = memreq.InvalidApp
	}
	for i := 0; i < cfg.NumMCs; i++ {
		g.parts = append(g.parts, newPartition(i, cfg, amap, len(profiles), newPool()))
	}
	if g.parallelism > 0 {
		g.par = newParEngine(g, g.parallelism)
	}
	if g.checks != nil {
		// WithInvariantChecks enabled hygiene mode on the shared pool when
		// the option ran; cover the per-entity pools too.
		for _, pl := range g.pools {
			pl.EnableChecks()
		}
	}
	smi := 0
	for a, n := range alloc {
		for j := 0; j < n; j++ {
			g.desired[smi] = memreq.AppID(a)
			g.sms[smi].Assign(memreq.AppID(a), g.disps[a])
			smi++
		}
	}
	return g, nil
}

// Config returns the GPU's configuration.
func (g *GPU) Config() config.Config { return g.cfg }

// Cycle returns the current simulation cycle.
func (g *GPU) Cycle() uint64 { return g.cycle }

// Apps returns the simulated applications (live pointers).
func (g *GPU) Apps() []*App { return g.apps }

// Allocation returns how many SMs each app currently owns (desired
// ownership; SMs mid-drain count toward their future owner).
func (g *GPU) Allocation() []int {
	out := make([]int, len(g.apps))
	for _, d := range g.desired {
		if d != memreq.InvalidApp {
			out[d]++
		}
	}
	return out
}

// Owners returns the current owner app of every SM (InvalidApp for idle
// SMs still draining toward a new owner).
func (g *GPU) Owners() []memreq.AppID {
	out := make([]memreq.AppID, len(g.sms))
	for i, sm := range g.sms {
		out[i] = sm.Owner()
	}
	return out
}

// SetAllocation requests a new SM partition: alloc[i] SMs for app i. SMs
// whose ownership changes are drained and reassigned when idle. An app may
// be allocated zero SMs (it stalls until a later reallocation — temporal
// multitasking uses this), but at least one app must get SMs. Returns an
// error if the allocation is infeasible.
func (g *GPU) SetAllocation(alloc []int) error {
	if len(alloc) != len(g.apps) {
		return fmt.Errorf("sim: %d allocations for %d apps", len(alloc), len(g.apps))
	}
	total := 0
	for i, n := range alloc {
		if n < 0 {
			return fmt.Errorf("sim: app %d allocated %d SMs", i, n)
		}
		total += n
	}
	if total > g.cfg.NumSMs {
		return fmt.Errorf("sim: allocation %v exceeds %d SMs", alloc, g.cfg.NumSMs)
	}
	if total == 0 {
		return fmt.Errorf("sim: allocation %v leaves the GPU empty", alloc)
	}

	// Keep as many currently-owned SMs as possible; mark the rest.
	have := make([]int, len(g.apps))
	for i := range g.desired {
		g.desired[i] = memreq.InvalidApp
	}
	// First pass: let each app keep up to alloc[a] of its current SMs.
	for i, sm := range g.sms {
		a := sm.Owner()
		if a != memreq.InvalidApp && have[a] < alloc[a] {
			g.desired[i] = a
			have[a]++
		}
	}
	// Second pass: hand remaining SMs to apps still short.
	for i := range g.sms {
		if g.desired[i] != memreq.InvalidApp {
			continue
		}
		for a := range alloc {
			if have[a] < alloc[a] {
				g.desired[i] = memreq.AppID(a)
				have[a]++
				break
			}
		}
	}
	g.applyDesired()
	return nil
}

// applyDesired drains SMs whose desired owner differs and reassigns the
// idle ones.
func (g *GPU) applyDesired() {
	for i, sm := range g.sms {
		want := g.desired[i]
		if sm.Owner() == want {
			if sm.Draining() && want != memreq.InvalidApp {
				// A previous reassignment was cancelled; resume dispatch.
				sm.Undrain()
			}
			continue
		}
		if !sm.Idle() {
			// Drain() is re-issued every cycle while the SM empties; trace
			// only the transition into draining.
			if g.tracer != nil && !sm.Draining() {
				g.tracer.Emit(telemetry.Event{
					Kind: telemetry.KindSMDrain, Cycle: g.cycle,
					SM: int32(i), App: int32(sm.Owner()),
				})
			}
			sm.Drain()
			continue
		}
		g.flushSM(sm)
		if want == memreq.InvalidApp {
			continue
		}
		sm.Assign(want, g.disps[want])
		if g.tracer != nil {
			g.tracer.Emit(telemetry.Event{
				Kind: telemetry.KindSMAssign, Cycle: g.cycle,
				SM: int32(i), App: int32(want),
			})
		}
	}
}

// flushSM folds an SM's stats into its owner's window and whole-run
// counters, then clears them.
func (g *GPU) flushSM(sm *smcore.SM) {
	a := sm.Owner()
	if a == memreq.InvalidApp {
		sm.ResetStats()
		return
	}
	st := sm.Stats()
	w := &g.window[a]
	w.issued += st.Issued
	w.smCycles += st.Cycles
	w.activeCycles += st.ActiveCycles
	w.stallUnits += st.StallUnits
	w.memInsts += st.MemInsts

	app := g.apps[a]
	app.Instructions += st.Issued
	app.SMCycles += st.Cycles
	app.ActiveCycles += st.ActiveCycles
	app.StallUnits += st.StallUnits
	app.MemInsts += st.MemInsts
	app.L1Hits += st.LoadsL1Hit
	app.L1Misses += st.LoadsL1Miss
	app.MemLat.Merge(st.MemLat)
	app.LatHist.Merge(&st.LatHist)
	sm.ResetStats()
}

// Run advances the simulation by n cycles.
func (g *GPU) Run(n uint64) {
	end := g.cycle + n
	if g.par != nil {
		g.par.start()
		defer g.par.stop()
		for g.cycle < end {
			g.stepParallel()
		}
		return
	}
	for g.cycle < end {
		g.step()
	}
}

// ctxCheckCycles is the granularity at which RunContext polls its context: a
// balance between cancellation latency (a few thousand cycles simulate in
// well under a millisecond) and per-cycle overhead.
const ctxCheckCycles = 4096

// ctxCheckMaxStretch bounds how far the parallel engine stretches a chunk to
// land the context check on an interval boundary (see RunContext). With an
// interval longer than this many check windows, the default mid-interval
// cadence is kept so cancellation latency stays bounded.
const ctxCheckMaxStretch = 64

// RunContext advances the simulation by n cycles, polling ctx between
// coarse chunks so per-job timeouts and cancellation take effect promptly.
// A simulation stopped early is left in a consistent state (FinishRun still
// works), but callers normally discard it.
//
// Under WithParallelism the chunks are sized so the poll lands on interval
// boundaries whenever the configured interval is within ctxCheckMaxStretch
// check windows: an early return then leaves only whole, snapshotted
// intervals behind rather than a partially accumulated one.
func (g *GPU) RunContext(ctx context.Context, n uint64) error {
	end := g.cycle + n
	if g.par != nil {
		g.par.start()
		defer g.par.stop()
	}
	for g.cycle < end {
		if err := ctx.Err(); err != nil {
			return err
		}
		if err := faults.FireCtx(ctx, "sim.step"); err != nil {
			return err
		}
		chunk := end - g.cycle
		limit := uint64(ctxCheckCycles)
		if g.par != nil {
			if toNext := g.intervalStart + g.cfg.IntervalCycles - g.cycle; toNext <= ctxCheckCycles*ctxCheckMaxStretch {
				limit = toNext
			}
		}
		if chunk > limit {
			chunk = limit
		}
		if g.par != nil {
			for i := uint64(0); i < chunk; i++ {
				g.stepParallel()
			}
		} else {
			for i := uint64(0); i < chunk; i++ {
				g.step()
			}
		}
	}
	return nil
}

// step advances exactly one core cycle on the sequential engine.
func (g *GPU) step() {
	now := g.cycle

	if g.priorityEpochs {
		g.updatePriorityEpoch(now)
	}

	// 1. SM compute/issue.
	for _, sm := range g.sms {
		sm.Cycle(now)
	}

	// 2. SM outboxes into the interconnect.
	for _, sm := range g.sms {
		g.injectSM(sm, now)
	}

	// 3. Partitions: pop arrived requests into L2, run DRAM, emit replies.
	for pi, p := range g.parts {
		g.partitionInput(p, pi, now)
		g.partitionOutput(p, pi, now)
	}

	// 4. Replies into SMs.
	for si, sm := range g.sms {
		g.deliverReplies(si, sm, now)
	}

	g.finishCycle()
}

// injectSM moves requests from one SM's outbox into the interconnect (up to
// 2 injections per SM per cycle; the crossbar's per-port serialization does
// fine-grained pacing). Injection order across SMs is determinism-critical:
// it decides which request wins the last slot of a filling partition queue.
func (g *GPU) injectSM(sm *smcore.SM, now uint64) {
	if sm.OutboxLen() == 0 {
		return
	}
	for k := 0; k < 2; k++ {
		r := sm.PeekOutbox()
		if r == nil {
			break
		}
		part := g.amap.Partition(r.Addr)
		if !g.ic.CanSendToMem(part) {
			break
		}
		g.ic.SendToMem(part, sm.PopOutbox(), now)
	}
}

// partitionInput advances one partition: replays a blocked request, pops
// arrived requests into the L2, and cycles the DRAM controller. It touches
// only partition-local state plus the partition's own inbound crossbar FIFO,
// so calls on different partitions may run concurrently.
func (g *GPU) partitionInput(p *partition, pi int, now uint64) {
	// Replay a previously blocked request first.
	if p.replay != nil {
		if p.access(p.replay, now) {
			p.replay = nil
		}
	}
	for k := 0; k < p.l2PerCycle && p.replay == nil && !p.backlogged(); k++ {
		r := g.ic.RecvAtMem(pi, now)
		if r == nil {
			break
		}
		if !p.access(r, now) {
			p.replay = r
		}
	}
	p.cycle(now)
}

// partitionOutput injects one partition's ready replies into the
// interconnect (up to 4 per cycle). Like injectSM, the order across
// partitions is determinism-critical (reply-queue fullness coupling).
func (g *GPU) partitionOutput(p *partition, pi int, now uint64) {
	for k := 0; k < 4; k++ {
		r := p.popReply(now)
		if r == nil {
			break
		}
		if !g.ic.CanSendToSM(r.SM) {
			// Put it back; try next cycle.
			p.replies.PushBack(timedReq{r, now})
			break
		}
		g.ic.SendToSM(pi, r, now)
	}
}

// deliverReplies drains one SM's inbound crossbar FIFO into the SM. It
// touches only SM-local state plus that FIFO, so calls on different SMs may
// run concurrently.
func (g *GPU) deliverReplies(si int, sm *smcore.SM, now uint64) {
	if g.ic.InFlightToSM(si) == 0 {
		return
	}
	for {
		r := g.ic.RecvAtSM(si, now)
		if r == nil {
			break
		}
		sm.DeliverReply(r, now)
	}
}

// finishCycle runs the sequential tail of a step: reassignment progress, the
// cycle increment, interval snapshots, and the debug sweep.
func (g *GPU) finishCycle() {
	// 5. Progress any pending reassignment.
	g.applyDesired()

	g.cycle++

	// 6. Interval boundary.
	if g.cycle-g.intervalStart >= g.cfg.IntervalCycles {
		snap := g.takeSnapshot()
		g.addSnapshot(snap)
		if g.tracer != nil {
			for a := range snap.Apps {
				ai := &snap.Apps[a]
				g.tracer.Emit(telemetry.Event{
					Kind: telemetry.KindInterval, Cycle: g.cycle,
					App: int32(a), SM: -1,
					Alpha: ai.Alpha, BLP: ai.BLP,
					Served: ai.Served, SMs: int32(ai.SMs),
				})
			}
		}
		if g.IntervalHook != nil {
			g.IntervalHook(g, snap)
		}
		g.resetInterval()
	}

	// 7. Debug validation sweep (WithInvariantChecks); one nil check when off.
	if g.checks != nil && g.cycle%checkEveryCycles == 0 {
		if v := g.checks.sweep(); v != nil {
			panic(v)
		}
	}
}

// addSnapshot appends a snapshot, enforcing the retention cap by folding the
// oldest snapshots' run-total counters into the evicted accumulators before
// dropping them.
func (g *GPU) addSnapshot(snap *IntervalSnapshot) {
	g.snapshots = append(g.snapshots, *snap)
	if g.snapRetention <= 0 {
		return
	}
	for len(g.snapshots) > g.snapRetention {
		s := &g.snapshots[0]
		g.evicted.busCycles += s.BusCycles
		g.evicted.busWasted += s.BusWasted
		g.evicted.busIdle += s.BusIdle
		for i := range s.Apps {
			g.evicted.served[i] += s.Apps[i].Served
			g.evicted.data[i] += s.Apps[i].DataCycles
			g.evicted.rowHits[i] += s.Apps[i].RowHits
			g.evicted.rowMisses[i] += s.Apps[i].RowMisses
		}
		copy(g.snapshots, g.snapshots[1:])
		g.snapshots = g.snapshots[:len(g.snapshots)-1]
	}
}

// updatePriorityEpoch rotates the controller priority app across equal
// slices of the interval and records per-app served counts during their own
// slice.
func (g *GPU) updatePriorityEpoch(now uint64) {
	sliceLen := g.cfg.IntervalCycles / uint64(len(g.apps))
	if sliceLen == 0 {
		return
	}
	pos := now - g.intervalStart
	idx := int(pos / sliceLen)
	if idx >= len(g.apps) {
		idx = len(g.apps) - 1
	}
	want := memreq.AppID(idx)
	if want == g.curPrio {
		if g.curPrio != memreq.InvalidApp {
			g.prioCycles[g.curPrio]++
		}
		return
	}
	// Close the previous slice.
	if g.curPrio != memreq.InvalidApp {
		g.prioServed[g.curPrio] += g.servedTotal(g.curPrio) - g.prioServedBase[g.curPrio]
	}
	g.curPrio = want
	g.prioServedBase[want] = g.servedTotal(want)
	g.prioCycles[want]++
	for _, p := range g.parts {
		p.mc.SetPriorityApp(want)
	}
}

// servedTotal sums an app's served-request counters across partitions for
// the current interval.
func (g *GPU) servedTotal(a memreq.AppID) uint64 {
	var s uint64
	for _, p := range g.parts {
		s += p.mc.Counters(a).Served
	}
	return s
}

// resetInterval clears all interval counters after a snapshot.
func (g *GPU) resetInterval() {
	for _, sm := range g.sms {
		g.flushSM(sm)
	}
	for i := range g.window {
		g.window[i] = appWindow{}
	}
	for _, p := range g.parts {
		p.resetIntervalCounters()
	}
	for i := range g.prioServed {
		g.prioServed[i] = 0
		g.prioCycles[i] = 0
	}
	if g.curPrio != memreq.InvalidApp {
		g.prioServedBase[g.curPrio] = 0
	}
	g.curPrio = memreq.InvalidApp
	g.intervalStart = g.cycle
}

// Snapshots returns all interval snapshots taken so far.
func (g *GPU) Snapshots() []IntervalSnapshot { return g.snapshots }
