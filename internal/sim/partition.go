package sim

import (
	"dasesim/internal/cache"
	"dasesim/internal/config"
	"dasesim/internal/dram"
	"dasesim/internal/memreq"
	"dasesim/internal/ring"
)

// timedReq is a request that becomes actionable at a future cycle (models
// the L2 pipeline latency).
type timedReq struct {
	req   *memreq.Request
	ready uint64
}

// partition is one memory partition: an L2 slice, per-application auxiliary
// tag directories, and a DRAM controller.
type partition struct {
	id   int
	cfg  config.Config
	amap memreq.AddrMap

	l2   *cache.Cache
	atds []*cache.ATD
	mc   *dram.Controller
	pool *memreq.Pool // shared per-GPU request recycler

	// waiters[slot] lists the requests merged on the in-flight L2 miss
	// tracked by MSHR slot (the first entry is the one forwarded to DRAM).
	// Slot numbers come from the L2's AccessIdx/FillIdx.
	waiters [][]*memreq.Request

	toMC    []*memreq.Request      // L2 misses awaiting controller space
	replies *ring.Buffer[timedReq] // read replies awaiting interconnect space
	replay  *memreq.Request        // request that found the L2 MSHRs full

	// l2AccessesPerCycle limits slice throughput.
	l2PerCycle int
}

func newPartition(id int, cfg config.Config, amap memreq.AddrMap, numApps int, pool *memreq.Pool) *partition {
	if pool == nil {
		pool = &memreq.Pool{}
	}
	p := &partition{
		id:         id,
		cfg:        cfg,
		amap:       amap,
		l2:         cache.NewCache(cfg.L2, numApps),
		atds:       make([]*cache.ATD, numApps),
		mc:         dram.NewController(cfg.Mem, amap, id, numApps),
		pool:       pool,
		waiters:    make([][]*memreq.Request, cfg.L2.MSHRs),
		replies:    ring.New[timedReq](64),
		l2PerCycle: 2,
	}
	for i := range p.waiters {
		p.waiters[i] = make([]*memreq.Request, 0, cfg.L2.MSHRMerge+1)
	}
	for i := range p.atds {
		p.atds[i] = cache.NewATD(cfg.L2.Sets(), cfg.L2.Assoc, cfg.ATDSampledSets)
	}
	return p
}

// access runs one request through the L2 slice. It returns false when the
// request could not be accepted (L2 MSHRs exhausted) and must be replayed.
func (p *partition) access(r *memreq.Request, now uint64) bool {
	set := p.amap.CacheSet(r.Addr, p.l2.Sets())
	res, slot := p.l2.AccessIdx(r.App, set, r.Addr, r.Kind == memreq.Write)
	if res == cache.Blocked {
		return false
	}
	sharedMiss := res != cache.Hit
	p.atds[r.App].Access(set, r.Addr, sharedMiss)
	switch res {
	case cache.Hit:
		if r.Kind == memreq.Read {
			p.replies.PushBack(timedReq{r, now + p.cfg.L2.HitLatency})
		} else {
			// A write hit completes here; the request is dead — recycle it.
			p.pool.Put(r)
		}
	case cache.Miss:
		r.L2Miss = true
		p.waiters[slot] = append(p.waiters[slot][:0], r)
		p.toMC = append(p.toMC, r)
	case cache.MergedMiss:
		r.L2Miss = true
		p.waiters[slot] = append(p.waiters[slot], r)
	}
	return true
}

// cycle advances the partition: DRAM, fills, and queue draining.
func (p *partition) cycle(now uint64) {
	p.mc.Cycle(now)

	// DRAM completions fill the L2 and release merged requests.
	for _, r := range p.mc.Replies() {
		if r.Kind == memreq.Write && r.SM < 0 {
			// Completed write-back of an evicted dirty line: no fill, no
			// reply — the line left the cache when it was evicted.
			p.pool.Put(r)
			continue
		}
		set := p.amap.CacheSet(r.Addr, p.l2.Sets())
		slot := p.l2.MSHRSlot(r.Addr)
		var waiters []*memreq.Request
		if slot >= 0 {
			waiters = p.waiters[slot]
		}
		write := true
		for _, w := range waiters {
			if w.Kind == memreq.Read {
				write = false
			}
		}
		_, _, wb, _ := p.l2.FillIdx(r.App, set, r.Addr, write && len(waiters) > 0)
		if wb.Valid {
			// Dirty eviction: emit a write-back toward DRAM, attributed
			// to the evicted line's owner; SM -1 marks it internal.
			wbr := p.pool.Get()
			wbr.App, wbr.SM, wbr.Addr = wb.Owner, -1, wb.Addr
			wbr.Kind, wbr.Issued = memreq.Write, now
			p.toMC = append(p.toMC, wbr)
		}
		for _, w := range waiters {
			if w.Kind == memreq.Read {
				p.replies.PushBack(timedReq{w, now + p.cfg.L2.HitLatency})
			} else {
				// A write waiter completes with the fill; recycle it.
				p.pool.Put(w)
			}
		}
		if slot >= 0 {
			p.waiters[slot] = waiters[:0]
		}
	}

	// Forward buffered L2 misses to the controller.
	n := 0
	for _, r := range p.toMC {
		if p.mc.CanAccept() {
			p.mc.Enqueue(r)
		} else {
			p.toMC[n] = r
			n++
		}
	}
	p.toMC = p.toMC[:n]
}

// popReply returns the next read reply ready to inject into the
// interconnect, or nil. Replies are released in ready order because they
// are appended in nondecreasing ready times per source, and small
// reorderings across sources do not matter for timing.
func (p *partition) popReply(now uint64) *memreq.Request {
	n := p.replies.Len()
	if n == 0 {
		return nil
	}
	// Find the earliest-ready entry among the first few to avoid
	// head-of-line blocking from slightly out-of-order ready stamps.
	best := -1
	var bestReady uint64
	for i := 0; i < n && i < 4; i++ {
		e := p.replies.At(i)
		if e.ready <= now && (best == -1 || e.ready < bestReady) {
			best = i
			bestReady = e.ready
		}
	}
	if best == -1 {
		return nil
	}
	return p.replies.RemoveAt(best).req
}

// backlogged reports whether the partition is too full to accept another
// request from the interconnect.
func (p *partition) backlogged() bool {
	return p.replay != nil || len(p.toMC) >= p.cfg.Mem.L2QueueDepth
}

// extraMisses returns the contention-miss estimate for the app on this
// partition (Eq. 13).
func (p *partition) extraMisses(app memreq.AppID) float64 {
	return p.atds[app].ExtraMisses()
}

// resetIntervalCounters clears the per-interval hardware counters while
// keeping all cache/row state warm.
func (p *partition) resetIntervalCounters() {
	p.mc.ResetCounters()
	for _, a := range p.atds {
		a.ResetCounters()
	}
}
