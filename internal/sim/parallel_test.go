package sim

import (
	"context"
	"encoding/json"
	"errors"
	"runtime"
	"testing"
	"time"

	"dasesim/internal/config"
	"dasesim/internal/kernels"
)

// TestWithParallelismResolution pins the option's resolution rules: negative
// forces sequential, zero means GOMAXPROCS, and the DASESIM_PARALLEL
// environment default applies only when the option is absent.
func TestWithParallelismResolution(t *testing.T) {
	cfg := config.Default()
	ps := []kernels.Profile{mustKernel(t, "SB")}
	build := func(t *testing.T, opts ...Option) *GPU {
		t.Helper()
		g, err := New(cfg, ps, []int{cfg.NumSMs}, 1, opts...)
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	// Neutralize any ambient default (the CI race job exports
	// DASESIM_PARALLEL for the whole package) before pinning the rules.
	t.Setenv("DASESIM_PARALLEL", "")

	if got := build(t).Parallelism(); got != 0 {
		t.Fatalf("default Parallelism() = %d, want 0 (sequential)", got)
	}
	if got := build(t, WithParallelism(3)).Parallelism(); got != 3 {
		t.Fatalf("WithParallelism(3): Parallelism() = %d, want 3", got)
	}
	if got := build(t, WithParallelism(0)).Parallelism(); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("WithParallelism(0): Parallelism() = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := build(t, WithParallelism(-1)).Parallelism(); got != 0 {
		t.Fatalf("WithParallelism(-1): Parallelism() = %d, want 0 (sequential)", got)
	}

	t.Setenv("DASESIM_PARALLEL", "3")
	if got := build(t).Parallelism(); got != 3 {
		t.Fatalf("DASESIM_PARALLEL=3: Parallelism() = %d, want 3", got)
	}
	if got := build(t, WithParallelism(-1)).Parallelism(); got != 0 {
		t.Fatalf("DASESIM_PARALLEL=3 + WithParallelism(-1): Parallelism() = %d, want 0", got)
	}
	t.Setenv("DASESIM_PARALLEL", "bogus")
	if got := build(t).Parallelism(); got != 0 {
		t.Fatalf("DASESIM_PARALLEL=bogus: Parallelism() = %d, want 0", got)
	}
}

// TestParallelCancelDuringRun is the regression test for cancellation landing
// mid-parallel-run: the workers must be joined (no goroutine leak), the error
// must surface, the engine must stop on the interval boundary the chunk was
// stretched to, and the GPU must remain fully usable — continuing the
// cancelled run to the original budget must be byte-identical to an
// uninterrupted sequential run.
func TestParallelCancelDuringRun(t *testing.T) {
	cfg := config.Default()
	cfg.IntervalCycles = 10_000
	ps := []kernels.Profile{mustKernel(t, "SB"), mustKernel(t, "SD")}
	const total = 40_000

	before := runtime.NumGoroutine()

	g, err := New(cfg, ps, []int{8, 8}, 1, WithParallelism(4))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// Cancel from inside the run: the hook fires on the coordinator at the
	// first interval boundary, while the worker goroutines are live.
	g.IntervalHook = func(g *GPU, _ *IntervalSnapshot) { cancel() }
	if err := g.RunContext(ctx, total); !errors.Is(err, context.Canceled) {
		t.Fatalf("RunContext err = %v, want context.Canceled", err)
	}
	if g.Cycle() != cfg.IntervalCycles {
		t.Fatalf("cancelled run stopped at cycle %d, want the interval boundary %d", g.Cycle(), cfg.IntervalCycles)
	}

	// Workers are joined synchronously when RunContext unwinds; allow the
	// runtime a few yields to retire the exiting goroutines.
	for i := 0; runtime.NumGoroutine() > before && i < 100; i++ {
		time.Sleep(time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Fatalf("goroutines leaked across a cancelled parallel run: %d before, %d after", before, after)
	}

	// The GPU must be left consistent: finish the budget and compare against
	// an uninterrupted sequential run.
	g.IntervalHook = nil
	g.Run(total - g.Cycle())
	got, err := json.Marshal(g.FinishRun())
	if err != nil {
		t.Fatal(err)
	}
	want, err := RunShared(cfg, ps, []int{8, 8}, total, 1)
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(wantJSON) {
		t.Fatal("resumed cancelled parallel run diverged from the uninterrupted sequential run")
	}
}

// TestParallelRunContextChunkAlignment proves the parallel RunContext stops
// only on interval boundaries (no partially accumulated interval behind an
// early return) when the interval is within the stretch bound.
func TestParallelRunContextChunkAlignment(t *testing.T) {
	cfg := config.Default()
	cfg.IntervalCycles = 50_000 // > ctxCheckCycles, within ctxCheckMaxStretch windows
	ps := []kernels.Profile{mustKernel(t, "SB")}
	g, err := New(cfg, ps, []int{cfg.NumSMs}, 1, WithParallelism(2))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	g.IntervalHook = func(g *GPU, _ *IntervalSnapshot) { cancel() }
	if err := g.RunContext(ctx, 10*cfg.IntervalCycles); !errors.Is(err, context.Canceled) {
		t.Fatalf("RunContext err = %v, want context.Canceled", err)
	}
	if g.Cycle()%cfg.IntervalCycles != 0 {
		t.Fatalf("parallel RunContext stopped mid-interval at cycle %d (interval %d)", g.Cycle(), cfg.IntervalCycles)
	}
	if n := len(g.Snapshots()); n != 1 {
		t.Fatalf("expected exactly the cancelled-at interval snapshot, got %d", n)
	}
}

// TestParallelNestedRun drives a Run from inside an IntervalHook of a parallel
// run (policies re-enter the engine like this) and checks the worker pool is
// reused rather than respawned or torn down under the outer run.
func TestParallelNestedRun(t *testing.T) {
	cfg := config.Default()
	cfg.IntervalCycles = 10_000
	ps := []kernels.Profile{mustKernel(t, "SB"), mustKernel(t, "SD")}
	g, err := New(cfg, ps, []int{8, 8}, 1, WithParallelism(2))
	if err != nil {
		t.Fatal(err)
	}
	hooks := 0
	g.IntervalHook = func(g *GPU, _ *IntervalSnapshot) {
		if hooks == 0 {
			g.IntervalHook = nil // the nested run must not re-enter the hook state machine
			g.Run(5_000)
		}
		hooks++
	}
	g.Run(10_000)
	if g.Cycle() != 15_000 {
		t.Fatalf("cycle = %d after nested run, want 15000", g.Cycle())
	}
	// The engine must still be usable for a follow-up run and summary.
	g.Run(5_000)
	if res := g.FinishRun(); res.Cycles != 20_000 {
		t.Fatalf("FinishRun Cycles = %d, want 20000", res.Cycles)
	}
}
