package sim

import (
	"errors"
	"strings"
	"testing"

	"dasesim/internal/config"
)

func checkedGPU(t *testing.T) *GPU {
	t.Helper()
	g, err := New(config.Default(), twoApps(t), []int{8, 8}, 1, WithInvariantChecks())
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func expectViolation(t *testing.T, g *GPU, check string) {
	t.Helper()
	err := g.CheckInvariantsNow()
	var v *InvariantViolation
	if !errors.As(err, &v) {
		t.Fatalf("expected an InvariantViolation, got %v", err)
	}
	if v.Check != check {
		t.Fatalf("violation check %q (%s), want %q", v.Check, v.Detail, check)
	}
}

// TestInvariantChecksCleanRun runs a real two-app workload with the periodic
// sweep enabled across an interval boundary: the engine must hold every
// invariant on states it actually reaches.
func TestInvariantChecksCleanRun(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy; skipped with -short")
	}
	g := checkedGPU(t)
	if !g.InvariantChecksEnabled() {
		t.Fatal("InvariantChecksEnabled false after WithInvariantChecks")
	}
	g.Run(60_000)
	if err := g.CheckInvariantsNow(); err != nil {
		t.Fatal(err)
	}
}

// TestCheckInvariantsNowRequiresOption documents that the sweep is opt-in.
func TestCheckInvariantsNowRequiresOption(t *testing.T) {
	g, err := New(config.Default(), twoApps(t), []int{8, 8}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.CheckInvariantsNow(); err == nil || !strings.Contains(err.Error(), "WithInvariantChecks") {
		t.Fatalf("expected a not-enabled error, got %v", err)
	}
}

// The tests below plant deliberately broken states — the bug classes the
// validation layer exists to catch — and verify the sweep reports each one
// with the right invariant family.

func TestInvariantChecksDetectDuplicateTransport(t *testing.T) {
	g := checkedGPU(t)
	g.Run(1_000)
	r := g.pool.Get()
	r.App, r.SM = 0, 0
	p := g.parts[0]
	p.toMC = append(p.toMC, r, r) // the bug: one request in two transport slots
	expectViolation(t, g, "conservation")
}

func TestInvariantChecksDetectUseAfterPut(t *testing.T) {
	g := checkedGPU(t)
	g.Run(1_000)
	r := g.pool.Get()
	r.App, r.SM = 0, 0
	p := g.parts[0]
	p.toMC = append(p.toMC, r)
	g.pool.Put(r) // the bug: recycled while still queued toward DRAM
	expectViolation(t, g, "pool-hygiene")
}

func TestInvariantChecksDetectOrphanWaiters(t *testing.T) {
	g := checkedGPU(t) // fresh GPU: every L2 MSHR slot is unallocated
	r := g.pool.Get()
	r.App, r.SM, r.Addr = 0, 0, 0x12340080
	p := g.parts[0]
	p.toMC = append(p.toMC, r)
	p.waiters[0] = append(p.waiters[0][:0], r) // the bug: waiters without an MSHR
	expectViolation(t, g, "mshr-agreement")
}

func TestInvariantChecksDetectCounterRollback(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy; skipped with -short")
	}
	g := checkedGPU(t)
	g.Run(10_000) // real traffic establishes non-zero sweep baselines
	if g.ic.ReqSent == 0 {
		t.Fatal("workload produced no interconnect traffic")
	}
	g.ic.ReqSent = 0 // the bug: a monotonic counter went backward
	expectViolation(t, g, "monotonic")
}

// TestStepPanicsOnViolation verifies the periodic sweep inside step surfaces
// a violation as a panic, so a checked simulation cannot silently keep
// running on corrupted state.
func TestStepPanicsOnViolation(t *testing.T) {
	g := checkedGPU(t)
	g.Run(1_000)
	r := g.pool.Get()
	r.App, r.SM = 0, 0
	p := g.parts[0]
	p.toMC = append(p.toMC, r, r)
	defer func() {
		v, ok := recover().(*InvariantViolation)
		if !ok {
			t.Fatalf("expected an *InvariantViolation panic, got %v", v)
		}
		if v.Check != "conservation" {
			t.Fatalf("panic check %q, want conservation", v.Check)
		}
	}()
	g.Run(checkEveryCycles) // guarantees at least one sweep
	t.Fatal("step never swept the corrupted state")
}
