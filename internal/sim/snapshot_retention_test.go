package sim

import (
	"reflect"
	"testing"

	"dasesim/internal/config"
)

// TestSnapshotRetention pins the contract of WithSnapshotRetention: the
// retained window holds exactly the newest snapshots, and every aggregate
// in FinishRun's Result is identical to an uncapped run — eviction folds
// the dropped intervals into running counters rather than losing them.
func TestSnapshotRetention(t *testing.T) {
	cfg := config.Default()
	cfg.IntervalCycles = 5_000
	ps := twoApps(t)

	run := func(opts ...Option) *Result {
		g, err := New(cfg, ps, []int{8, 8}, 7, opts...)
		if err != nil {
			t.Fatal(err)
		}
		g.Run(60_000) // 12 intervals
		return g.FinishRun()
	}

	full := run()
	capped := run(WithSnapshotRetention(3))

	if len(full.Snapshots) != 12 {
		t.Fatalf("uncapped snapshots = %d, want 12", len(full.Snapshots))
	}
	if len(capped.Snapshots) != 3 {
		t.Fatalf("capped snapshots = %d, want 3", len(capped.Snapshots))
	}
	tail := full.Snapshots[len(full.Snapshots)-3:]
	if !reflect.DeepEqual(capped.Snapshots, tail) {
		t.Fatal("capped window is not the newest 3 snapshots of the uncapped run")
	}

	// Everything except the snapshot window must match exactly.
	fullNoSnaps, cappedNoSnaps := *full, *capped
	fullNoSnaps.Snapshots, cappedNoSnaps.Snapshots = nil, nil
	if !reflect.DeepEqual(fullNoSnaps, cappedNoSnaps) {
		t.Fatalf("aggregates diverge under retention cap:\nuncapped: %+v\ncapped:   %+v",
			fullNoSnaps, cappedNoSnaps)
	}
}
