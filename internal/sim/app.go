package sim

import (
	"dasesim/internal/kernels"
	"dasesim/internal/memreq"
	"dasesim/internal/stats"
)

// App is one application (kernel) participating in a simulation.
type App struct {
	ID      memreq.AppID
	Profile kernels.Profile

	base uint64 // private address-space base
	seed uint64

	// Kernel-launch dispatch state. Following the paper's methodology an
	// application that finishes before the cycle budget is restarted, so
	// dispatch wraps around to a new launch once all blocks of the current
	// launch have retired.
	nextBlock int // next block index to dispatch in this launch
	inFlight  int // dispatched, not yet finished
	done      int // finished in this launch
	launches  int

	// Cumulative whole-run statistics (filled by the GPU).
	Instructions uint64
	SMCycles     uint64
	ActiveCycles uint64
	StallUnits   float64
	MemInsts     uint64
	L1Hits       uint64
	L1Misses     uint64
	BlocksDone   uint64

	// MemLat/LatHist aggregate load round-trip latencies across the app's
	// SMs.
	MemLat  stats.Online
	LatHist stats.LogHist
}

func newApp(id memreq.AppID, p kernels.Profile, seed uint64) *App {
	return &App{
		ID:      id,
		Profile: p,
		base:    (uint64(id) + 1) << 40,
		seed:    seed ^ (uint64(id)+1)*0x9e3779b97f4a7c15,
	}
}

// TBSum is the number of thread blocks of the current launch that have not
// finished (the TB_i^sum of Eq. 24).
func (a *App) TBSum() int { return a.Profile.Blocks - a.done }

// TBShared is the number of thread blocks currently resident on SMs
// (the TB_i^shared of Eq. 24).
func (a *App) TBShared() int { return a.inFlight }

// Launches returns how many times the kernel has been (re)started.
func (a *App) Launches() int { return a.launches }

// IPC returns the application's whole-run aggregate instructions per GPU
// cycle, given the total simulated cycles.
func (a *App) IPC(cycles uint64) float64 {
	if cycles == 0 {
		return 0
	}
	return float64(a.Instructions) / float64(cycles)
}

// Alpha returns the whole-run memory stall fraction across the app's SMs.
func (a *App) Alpha() float64 {
	if a.ActiveCycles == 0 {
		return 0
	}
	return a.StallUnits / float64(a.ActiveCycles)
}

// dispatcher adapts an App to smcore.BlockSource.
type dispatcher struct{ app *App }

func (d *dispatcher) WarpsPerBlock() int { return d.app.Profile.WarpsPerBlock }

func (d *dispatcher) NextBlock() ([]*kernels.WarpStream, bool) {
	a := d.app
	if a.nextBlock >= a.Profile.Blocks {
		// Current launch fully dispatched; a new launch begins only after
		// every block of this one retires (kernel restart).
		if a.inFlight > 0 {
			return nil, false
		}
		a.launches++
		a.nextBlock = 0
		a.done = 0
	}
	blk := a.nextBlock
	a.nextBlock++
	a.inFlight++
	wpb := a.Profile.WarpsPerBlock
	streams := make([]*kernels.WarpStream, wpb)
	blockID := uint64(a.launches)<<32 | uint64(blk)
	for w := 0; w < wpb; w++ {
		streams[w] = kernels.NewWarpStream(&a.Profile, a.base, blockID, w, a.seed)
	}
	return streams, true
}

func (d *dispatcher) BlockFinished() {
	d.app.inFlight--
	d.app.done++
	d.app.BlocksDone++
}
