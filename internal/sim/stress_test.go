package sim

import (
	"testing"

	"dasesim/internal/config"
	"dasesim/internal/kernels"
)

// The stress tests push the simulator into degenerate configurations that
// exercise back-pressure, replay and blocking paths which the Table II
// configuration rarely hits.

func tinyConfig() config.Config {
	cfg := config.Default()
	cfg.NumSMs = 1
	cfg.NumMCs = 1
	cfg.SM.MaxWarps = 4
	cfg.SM.MaxBlocks = 1
	cfg.SM.IssueWidth = 1
	cfg.L1 = config.CacheConfig{
		SizeBytes: 2 * 128 * 2, Assoc: 2, LineBytes: 128,
		HitLatency: 4, MSHRs: 2, MSHRMerge: 1,
	}
	cfg.L2 = config.CacheConfig{
		SizeBytes: 4 * 128 * 2, Assoc: 2, LineBytes: 128,
		HitLatency: 4, MSHRs: 2, MSHRMerge: 1,
	}
	cfg.ICNT.InQueueDepth = 2
	cfg.ICNT.OutQueueDepth = 2
	cfg.Mem.QueueDepth = 4
	cfg.Mem.L2QueueDepth = 2
	cfg.Mem.NumBanks = 2
	cfg.ATDSampledSets = 2
	cfg.IntervalCycles = 2_000
	return cfg
}

func TestStressTinyConfigStillServes(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	cfg := tinyConfig()
	p, _ := kernels.ByAbbr("SB")
	p.WarpsPerBlock = 4
	p.CoalescedLines = 8 // maximum fan-out per instruction
	res, err := RunShared(cfg, []kernels.Profile{p}, []int{1}, 30_000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Apps[0].Instructions == 0 || res.Apps[0].Served == 0 {
		t.Fatalf("tiny config made no progress: %+v", res.Apps[0])
	}
	var data uint64
	for i := range res.Apps {
		data += res.Apps[i].DataCycles
	}
	if data+res.BusWasted+res.BusIdle > res.BusCycles {
		t.Fatal("bus accounting broken under stress")
	}
}

func TestStressTwoAppsOnTwoSMs(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	cfg := tinyConfig()
	cfg.NumSMs = 2
	a, _ := kernels.ByAbbr("SB")
	b, _ := kernels.ByAbbr("SD")
	a.WarpsPerBlock, b.WarpsPerBlock = 4, 4
	res, err := RunShared(cfg, []kernels.Profile{a, b}, []int{1, 1}, 30_000, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Apps {
		if res.Apps[i].Instructions == 0 {
			t.Fatalf("app %d starved under stress config", i)
		}
	}
}

func TestStressReallocationUnderBackpressure(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	cfg := tinyConfig()
	cfg.NumSMs = 4
	a, _ := kernels.ByAbbr("SB")
	b, _ := kernels.ByAbbr("VA")
	a.WarpsPerBlock, b.WarpsPerBlock = 4, 4
	g, err := New(cfg, []kernels.Profile{a, b}, []int{2, 2}, 1)
	if err != nil {
		t.Fatal(err)
	}
	g.Run(5_000)
	if err := g.SetAllocation([]int{3, 1}); err != nil {
		t.Fatal(err)
	}
	g.Run(40_000)
	if err := g.SetAllocation([]int{1, 3}); err != nil {
		t.Fatal(err)
	}
	g.Run(40_000)
	res := g.FinishRun()
	for i := range res.Apps {
		if res.Apps[i].Instructions == 0 {
			t.Fatalf("app %d made no progress across reallocation", i)
		}
	}
	alloc := g.Allocation()
	if alloc[0] != 1 || alloc[1] != 3 {
		t.Fatalf("final allocation %v", alloc)
	}
}

func TestStressWriteOnlyKernel(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	cfg := tinyConfig()
	p, _ := kernels.ByAbbr("AT")
	p.WarpsPerBlock = 4
	p.WriteFrac = 1
	res, err := RunShared(cfg, []kernels.Profile{p}, []int{1}, 20_000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Apps[0].Served == 0 {
		t.Fatal("write-only kernel produced no DRAM traffic")
	}
}

// TestStressBankCampingStride: a strided kernel whose stride resonates with
// the bank interleave (96 lines = exactly one row across the 6 partitions)
// camps on few banks, collapsing bank-level parallelism — the classic
// transpose pathology. The simulator must survive it and show the BLP
// collapse in the counters.
func TestStressBankCampingStride(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	cfg := config.Default()
	cfg.IntervalCycles = 10_000
	camping := kernels.Profile{
		Name: "transpose", Abbr: "TP",
		MemFrac: 0.2, ComputeLat: 4, CoalescedLines: 1,
		Pattern: kernels.Strided,
		// One full row per partition per step: every access of a warp
		// lands in the same bank of each partition.
		StrideLines:    uint64(cfg.Mem.RowBytes/cfg.L2.LineBytes) * uint64(cfg.NumMCs) * 16,
		SeqRun:         8,
		FootprintLines: 1 << 21,
		WarpsPerBlock:  4, Blocks: 1024, InstPerWarp: 1000,
	}
	friendly := camping
	friendly.Pattern = kernels.BlockStream

	runBLP := func(p kernels.Profile) float64 {
		res, err := RunShared(cfg, []kernels.Profile{p}, []int{16}, 40_000, 1)
		if err != nil {
			t.Fatal(err)
		}
		last := res.Snapshots[len(res.Snapshots)-1]
		return last.Apps[0].BLP
	}
	campBLP := runBLP(camping)
	friendBLP := runBLP(friendly)
	t.Logf("BLP: camping=%.1f friendly=%.1f", campBLP, friendBLP)
	if campBLP >= friendBLP {
		t.Fatalf("bank camping did not reduce BLP: %.1f vs %.1f", campBLP, friendBLP)
	}
}

func TestStressRefreshPlusWritebackPlusRR(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	cfg := config.Default()
	cfg.IntervalCycles = 10_000
	cfg.Mem.TREFI = 5_000
	cfg.Mem.TRFC = 200
	cfg.Mem.AppAwareRR = true
	cfg.L2.Writeback = true
	a, _ := kernels.ByAbbr("SB")
	b, _ := kernels.ByAbbr("CT")
	res, err := RunShared(cfg, []kernels.Profile{a, b}, []int{8, 8}, 40_000, 1, WithPriorityEpochs())
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Apps {
		if res.Apps[i].Instructions == 0 {
			t.Fatalf("app %d starved with all options on", i)
		}
	}
	var data uint64
	for i := range res.Apps {
		data += res.Apps[i].DataCycles
	}
	if data+res.BusWasted+res.BusIdle > res.BusCycles {
		t.Fatal("bus accounting broken with refresh+writeback+RR")
	}
}
