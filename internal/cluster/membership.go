package cluster

import (
	"sync"
	"time"
)

// PeerState is a peer's liveness classification.
type PeerState int

const (
	// StateAlive: a heartbeat arrived within SuspectAfter.
	StateAlive PeerState = iota
	// StateSuspect: silent past SuspectAfter — still routed to, but
	// deprioritized for new work.
	StateSuspect
	// StateDead: silent past DeadAfter — its shard fails over and its
	// journal becomes claimable.
	StateDead
)

func (s PeerState) String() string {
	switch s {
	case StateAlive:
		return "alive"
	case StateSuspect:
		return "suspect"
	default:
		return "dead"
	}
}

// PeerInfo is a point-in-time view of one peer.
type PeerInfo struct {
	ID       string
	State    PeerState
	QueueLen int       // last heartbeat's queue depth
	Ready    bool      // last heartbeat's readiness
	LastSeen time.Time // zero until the first heartbeat
}

// Membership tracks liveness for a static peer list by heartbeat arrival
// times. There is no gossip and no dynamic join: the cluster is configured
// once, and a restarted node re-announces itself with its first heartbeat.
// Transitions are evaluated by Tick (call it from the heartbeat loop);
// OnDead/OnAlive callbacks fire outside the lock, once per transition.
type Membership struct {
	mu           sync.Mutex
	self         string
	peers        map[string]*peerRecord
	suspectAfter time.Duration
	deadAfter    time.Duration
	onDead       func(string)
	onAlive      func(string)
	now          func() time.Time // injectable for tests
}

type peerRecord struct {
	state    PeerState
	lastSeen time.Time
	seq      uint64
	queueLen int
	ready    bool
	everSeen bool
}

// NewMembership tracks the given peers (the list must not contain self). A
// freshly tracked peer starts Alive with LastSeen = now, so a cluster booting
// all nodes at once does not declare everyone dead before the first
// heartbeats land; a peer that never speaks still dies after DeadAfter.
func NewMembership(self string, peers []string, suspectAfter, deadAfter time.Duration) *Membership {
	m := &Membership{
		self:         self,
		peers:        make(map[string]*peerRecord, len(peers)),
		suspectAfter: suspectAfter,
		deadAfter:    deadAfter,
		now:          time.Now,
	}
	start := m.now()
	for _, p := range peers {
		m.peers[p] = &peerRecord{state: StateAlive, lastSeen: start}
	}
	return m
}

// OnDead registers the callback fired when a peer transitions to Dead.
// Register before the first Tick.
func (m *Membership) OnDead(fn func(peer string)) { m.onDead = fn }

// OnAlive registers the callback fired when a previously Dead peer is heard
// from again (partition heal or restart). Register before the first Tick.
func (m *Membership) OnAlive(fn func(peer string)) { m.onAlive = fn }

// Observe records a heartbeat (or any authenticated contact) from a peer.
// Out-of-order heartbeats by sequence number are dropped so a delayed packet
// cannot resurrect stale queue stats; a seq of 0 always applies (restarted
// peers reset their counter).
func (m *Membership) Observe(peer string, seq uint64, queueLen int, ready bool) {
	m.mu.Lock()
	rec, ok := m.peers[peer]
	if !ok {
		m.mu.Unlock()
		return
	}
	if rec.everSeen && seq != 0 && seq < rec.seq {
		m.mu.Unlock()
		return
	}
	wasDead := rec.state == StateDead
	rec.state = StateAlive
	rec.lastSeen = m.now()
	rec.seq = seq
	rec.queueLen = queueLen
	rec.ready = ready
	rec.everSeen = true
	cb := m.onAlive
	m.mu.Unlock()
	if wasDead && cb != nil {
		cb(peer)
	}
}

// Tick re-evaluates every peer against the suspicion and death timeouts and
// fires OnDead for fresh deaths. Call it at the heartbeat interval.
func (m *Membership) Tick() {
	m.mu.Lock()
	now := m.now()
	var died []string
	for id, rec := range m.peers {
		silent := now.Sub(rec.lastSeen)
		switch {
		case silent >= m.deadAfter && rec.state != StateDead:
			rec.state = StateDead
			died = append(died, id)
		case silent >= m.suspectAfter && rec.state == StateAlive:
			rec.state = StateSuspect
		}
	}
	cb := m.onDead
	m.mu.Unlock()
	if cb != nil {
		for _, id := range died {
			cb(id)
		}
	}
}

// State returns a peer's current classification; self is always Alive and an
// unknown ID is Dead (never routed to).
func (m *Membership) State(peer string) PeerState {
	if peer == m.self {
		return StateAlive
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	rec, ok := m.peers[peer]
	if !ok {
		return StateDead
	}
	return rec.state
}

// Snapshot returns every tracked peer's info, for metrics and debugging.
func (m *Membership) Snapshot() []PeerInfo {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]PeerInfo, 0, len(m.peers))
	for id, rec := range m.peers {
		info := PeerInfo{ID: id, State: rec.state, QueueLen: rec.queueLen, Ready: rec.ready}
		if rec.everSeen {
			info.LastSeen = rec.lastSeen
		}
		out = append(out, info)
	}
	return out
}

// QuorumOK reports whether this node is in the majority component: itself
// plus non-Dead peers must exceed half the cluster. A minority node keeps
// serving reads but reports unready, steering load balancers to the
// majority side of a partition.
func (m *Membership) QuorumOK() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	alive := 1 // self
	for _, rec := range m.peers {
		if rec.state != StateDead {
			alive++
		}
	}
	return alive*2 > len(m.peers)+1
}

// Busiest returns the alive peer with the deepest queue at its last
// heartbeat, provided it exceeds min; ok is false when no peer qualifies.
// The steal loop uses it to pick a victim.
func (m *Membership) Busiest(min int) (peer string, depth int, ok bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for id, rec := range m.peers {
		if rec.state == StateAlive && rec.everSeen && rec.queueLen > min &&
			(!ok || rec.queueLen > depth || (rec.queueLen == depth && id < peer)) {
			peer, depth, ok = id, rec.queueLen, true
		}
	}
	return peer, depth, ok
}
