package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"dasesim/internal/server"
	"dasesim/internal/telemetry"
)

// Options configures one cluster node.
type Options struct {
	// Self is this node's ID; it must equal the server's NodeID and appear
	// in Peers.
	Self string
	// Peers maps every cluster node ID (including Self) to its base URL,
	// e.g. {"n1": "http://10.0.0.1:8080", ...}. The same map is passed to
	// every node; the ring is built from its keys.
	Peers map[string]string
	// HeartbeatInterval is the push-heartbeat period (default 1s).
	// SuspectAfter and DeadAfter default to 3x and 8x the interval.
	HeartbeatInterval time.Duration
	SuspectAfter      time.Duration
	DeadAfter         time.Duration
	// StealThreshold is the victim queue depth above which an idle node
	// steals (default 4).
	StealThreshold int
	// JournalDir is the shared directory holding every node's journal as
	// <id>.wal. Empty disables journal hand-off (dead peers' queued jobs
	// are only re-run when their clients resubmit).
	JournalDir string
	// RPCTimeout bounds intra-cluster calls (default 5s).
	RPCTimeout time.Duration
	Logger     *slog.Logger
	// TraceEvents enables cluster-layer event tracing with a ring retaining
	// the most recent N events: one cluster.rpc span per intra-cluster call
	// and one job.routed event per forwarded or stolen job, served at
	// GET /cluster/v1/trace. 0 disables tracing (the default). Tracing is
	// observation-only: routing, results and cache keys are unchanged.
	TraceEvents int
	// TraceSeed seeds the node's span-ID source for reproducible traces in
	// tests; 0 derives a per-node seed from Self.
	TraceSeed uint64
}

// Node wires a local server into the cluster: it owns the ring, the
// membership view, the heartbeat and steal loops, and the routing HTTP
// surface that wraps the server's API.
type Node struct {
	srv  *server.Server
	opts Options
	ring *Ring
	mem  *Membership
	tr   *transport
	m    *metrics
	log  *slog.Logger
	// tracer records cluster-layer events when TraceEvents > 0 (nil-safe
	// otherwise); spans mints this node's RPC and routing span IDs.
	tracer *telemetry.Tracer
	spans  *telemetry.SpanSource

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	mu  sync.Mutex
	seq uint64 // heartbeat sequence number
}

// New builds a node around srv. The server must have been created with
// NodeID = opts.Self so its job IDs carry the routing prefix.
func New(srv *server.Server, opts Options) (*Node, error) {
	if opts.Self == "" {
		return nil, fmt.Errorf("cluster: Self is required")
	}
	if srv.NodeID() != opts.Self {
		return nil, fmt.Errorf("cluster: server NodeID %q != Self %q", srv.NodeID(), opts.Self)
	}
	if _, ok := opts.Peers[opts.Self]; !ok {
		return nil, fmt.Errorf("cluster: Peers must include Self %q", opts.Self)
	}
	if opts.HeartbeatInterval <= 0 {
		opts.HeartbeatInterval = time.Second
	}
	if opts.SuspectAfter <= 0 {
		opts.SuspectAfter = 3 * opts.HeartbeatInterval
	}
	if opts.DeadAfter <= 0 {
		opts.DeadAfter = 8 * opts.HeartbeatInterval
	}
	if opts.StealThreshold <= 0 {
		opts.StealThreshold = 4
	}
	if opts.RPCTimeout <= 0 {
		opts.RPCTimeout = 5 * time.Second
	}
	if opts.Logger == nil {
		opts.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	ids := make([]string, 0, len(opts.Peers))
	for id := range opts.Peers {
		ids = append(ids, id)
	}
	ring, err := NewRing(ids)
	if err != nil {
		return nil, err
	}
	others := make([]string, 0, len(ids)-1)
	for _, id := range ids {
		if id != opts.Self {
			others = append(others, id)
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	n := &Node{
		srv:    srv,
		opts:   opts,
		ring:   ring,
		mem:    NewMembership(opts.Self, others, opts.SuspectAfter, opts.DeadAfter),
		tr:     newTransport(opts.Self, 0), // per-call context deadlines, not a client-wide one
		m:      newMetrics(srv.MetricsRegistry()),
		log:    opts.Logger.With("node", opts.Self),
		ctx:    ctx,
		cancel: cancel,
	}
	if opts.TraceEvents > 0 {
		n.tracer = telemetry.New(opts.TraceEvents)
	}
	seed := opts.TraceSeed
	if seed == 0 {
		// FNV-1a over "cluster/<self>": distinct from the co-located
		// server's NodeID-derived seed, so the two span sources in one
		// process never mint colliding IDs.
		seed = 14695981039346656037
		for _, b := range []byte("cluster/" + opts.Self) {
			seed = (seed ^ uint64(b)) * 1099511628211
		}
	}
	n.spans = telemetry.NewSpanSource(seed)
	n.mem.OnDead(n.onPeerDead)
	n.mem.OnAlive(n.onPeerAlive)
	srv.AddReadinessCheck("cluster-quorum", func() error {
		if !n.mem.QuorumOK() {
			return fmt.Errorf("not in majority partition")
		}
		return nil
	})
	return n, nil
}

// Membership exposes the node's liveness view (read-only use).
func (n *Node) Membership() *Membership { return n.mem }

// Ring exposes the node's routing ring (read-only use).
func (n *Node) Ring() *Ring { return n.ring }

// Start launches the heartbeat/failure-detector loop. Call after the
// server's Start.
func (n *Node) Start() {
	n.wg.Add(1)
	go n.heartbeatLoop()
}

// Stop halts the loops; it does not touch the wrapped server.
func (n *Node) Stop() {
	n.cancel()
	n.wg.Wait()
}

func (n *Node) peerURL(id string) string { return n.opts.Peers[id] }

// rpc is the instrumented intra-cluster call path: it mints a child span of
// parent (propagated to the receiver as trace headers), measures round-trip
// latency into dased_cluster_rpc_latency_seconds{method}, and — when tracing
// is on — records one cluster.rpc event. The event's CacheHit field doubles
// as the success flag; Job carries the peer ID. Latency children are
// pre-resolved and Emit is allocation-free, so instrumentation adds no
// allocations to the RPC hot path.
func (n *Node) rpc(ctx context.Context, method, to, httpMethod, url string, body []byte, parent telemetry.SpanContext) (int, []byte, error) {
	span := n.spans.Child(parent)
	start := time.Now()
	st, data, err := n.tr.roundTrip(ctx, to, httpMethod, url, body, span)
	elapsed := time.Since(start)
	if h := n.m.rpcLatency[method]; h != nil {
		h.Observe(elapsed.Seconds())
	}
	if n.tracer != nil {
		e := telemetry.Event{
			Kind: telemetry.KindClusterRPC, Wall: start.UnixNano(),
			Dur: elapsed.Nanoseconds(), App: -1, SM: -1,
			Job: to, Note: method, CacheHit: err == nil,
			Node: n.opts.Self,
		}
		e.SetSpan(span)
		n.tracer.Emit(e)
	}
	return st, data, err
}

// emitRouted records a job.routed event: jobID was placed on peer on behalf
// of the given span's trace.
func (n *Node) emitRouted(jobID, peer string, sc telemetry.SpanContext) {
	if n.tracer == nil {
		return
	}
	e := telemetry.Event{
		Kind: telemetry.KindJobRouted, Wall: time.Now().UnixNano(),
		App: -1, SM: -1, Job: jobID, Note: peer, Node: n.opts.Self,
	}
	e.SetSpan(sc)
	n.tracer.Emit(e)
}

// heartbeatLoop pushes heartbeats to every peer each interval, then advances
// the failure detector and, when idle, tries to steal work.
func (n *Node) heartbeatLoop() {
	defer n.wg.Done()
	t := time.NewTicker(n.opts.HeartbeatInterval)
	defer t.Stop()
	for {
		select {
		case <-n.ctx.Done():
			return
		case <-t.C:
		}
		n.sendHeartbeats()
		n.mem.Tick()
		n.m.observePeers(n.mem.Snapshot())
		n.maybeSteal()
	}
}

// heartbeatBody is the payload of POST /cluster/v1/heartbeat.
type heartbeatBody struct {
	From     string `json:"from"`
	Seq      uint64 `json:"seq"`
	QueueLen int    `json:"queue_len"`
	Ready    bool   `json:"ready"`
}

func (n *Node) sendHeartbeats() {
	n.mu.Lock()
	// The first heartbeat after a (re)start carries seq 0, which Observe
	// always applies: a restarted node must not be ignored until it outruns
	// the sequence number its previous incarnation reached.
	hb := heartbeatBody{
		From:     n.opts.Self,
		Seq:      n.seq,
		QueueLen: n.srv.QueueLen(),
		Ready:    n.srv.Ready() == nil,
	}
	n.seq++
	n.mu.Unlock()
	body, _ := json.Marshal(hb)
	var wg sync.WaitGroup
	for _, id := range n.ring.Nodes() {
		if id == n.opts.Self {
			continue
		}
		wg.Add(1)
		go func(id string) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(n.ctx, n.opts.RPCTimeout)
			defer cancel()
			st, _, err := n.rpc(ctx, rpcHeartbeat, id, http.MethodPost,
				n.peerURL(id)+"/cluster/v1/heartbeat", body, telemetry.SpanContext{})
			if err != nil || st != http.StatusOK {
				n.m.heartbeatsFail.Inc()
				return
			}
			n.m.heartbeatsSent.Inc()
		}(id)
	}
	wg.Wait()
}

// maybeSteal pulls one queued job from the busiest saturated peer when this
// node is idle — cold shards stay warm instead of idling while a hot shard
// backs up.
func (n *Node) maybeSteal() {
	if n.srv.QueueLen() > 0 || n.srv.Ready() != nil {
		return
	}
	victim, _, ok := n.mem.Busiest(n.opts.StealThreshold)
	if !ok {
		return
	}
	ctx, cancel := context.WithTimeout(n.ctx, n.opts.RPCTimeout)
	defer cancel()
	body, _ := json.Marshal(map[string]string{"thief": n.opts.Self})
	st, data, err := n.rpc(ctx, rpcSteal, victim, http.MethodPost,
		n.peerURL(victim)+"/cluster/v1/steal", body, telemetry.SpanContext{})
	if err != nil || st != http.StatusOK {
		return
	}
	var out struct {
		OK      bool              `json:"ok"`
		ID      string            `json:"id"`
		Request server.JobRequest `json:"request"`
		TraceID string            `json:"trace_id,omitempty"`
		SpanID  string            `json:"span_id,omitempty"`
	}
	if json.Unmarshal(data, &out) != nil || !out.OK {
		return
	}
	// The steal response carries the victim job's span; submitting under it
	// keeps the stolen copy on the original trace, so dasetrace reconstructs
	// submit-on-victim → stolen-by-us as one timeline.
	var parent telemetry.SpanContext
	parent.TraceID, _ = telemetry.ParseSpanID(out.TraceID)
	parent.ParentID, _ = telemetry.ParseSpanID(out.SpanID)
	view, err := n.srv.SubmitWithSpan(out.Request, parent)
	if err != nil {
		n.log.Warn("stolen job dropped on resubmit", "victim", victim, "origin", out.ID, "err", err)
		return
	}
	n.m.steals.Inc()
	n.emitRouted(view.ID, n.opts.Self, parent)
	n.log.Info("stole job", "victim", victim, "origin", out.ID)
}

// Handler returns the cluster-aware HTTP API: routing wrappers over the job
// endpoints plus the intra-cluster RPCs, with every other path (health,
// metrics, kernels, estimation, traces) falling through to the server's own
// handler.
func (n *Node) Handler() http.Handler {
	inner := n.srv.Handler()
	mux := http.NewServeMux()
	mux.HandleFunc("POST /cluster/v1/heartbeat", n.handleHeartbeat)
	mux.HandleFunc("POST /cluster/v1/steal", n.handleSteal)
	mux.Handle("POST /v1/jobs", n.hopAware(inner, n.handleSubmit))
	mux.HandleFunc("POST /v1/batch", n.handleBatch)
	mux.Handle("GET /v1/jobs", n.hopAware(inner, n.handleList))
	mux.Handle("GET /v1/jobs/{id}", n.hopAware(inner, n.handleJobProxy(inner)))
	mux.Handle("DELETE /v1/jobs/{id}", n.hopAware(inner, n.handleJobProxy(inner)))
	mux.HandleFunc("GET /v1/cluster/metrics", n.handleClusterMetrics)
	mux.HandleFunc("GET /cluster/v1/trace", n.handleClusterTrace)
	mux.Handle("/", inner)
	return mux
}

// hopAware serves already-routed requests (HopHeader set) with the local
// server and first-contact requests with the routing handler.
func (n *Node) hopAware(local http.Handler, routed http.HandlerFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Header.Get(HopHeader) != "" {
			local.ServeHTTP(w, r)
			return
		}
		routed(w, r)
	})
}

func (n *Node) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		n.log.Error("write json failed", "err", err)
	}
}

func errBody(path, msg string) map[string]string {
	return map[string]string{"error": msg, "path": path}
}

func (n *Node) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var hb heartbeatBody
	if err := json.NewDecoder(r.Body).Decode(&hb); err != nil {
		n.writeJSON(w, http.StatusBadRequest, errBody(r.URL.Path, "bad heartbeat: "+err.Error()))
		return
	}
	n.mem.Observe(hb.From, hb.Seq, hb.QueueLen, hb.Ready)
	n.writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (n *Node) handleSteal(w http.ResponseWriter, r *http.Request) {
	var in struct {
		Thief string `json:"thief"`
	}
	if err := json.NewDecoder(r.Body).Decode(&in); err != nil || in.Thief == "" {
		n.writeJSON(w, http.StatusBadRequest, errBody(r.URL.Path, "bad steal request"))
		return
	}
	req, id, ok := n.srv.TrySteal(in.Thief)
	if !ok {
		n.writeJSON(w, http.StatusOK, map[string]any{"ok": false})
		return
	}
	n.log.Info("job stolen", "thief", in.Thief, "id", id)
	out := map[string]any{"ok": true, "id": id, "request": req}
	if span, ok := n.srv.JobSpan(id); ok && span.Valid() {
		// Hand the thief the forwarded job's trace context so its re-run
		// stays on the submitting client's timeline.
		out["trace_id"] = telemetry.FormatSpanID(span.TraceID)
		out["span_id"] = telemetry.FormatSpanID(span.SpanID)
	}
	n.writeJSON(w, http.StatusOK, out)
}

// handleSubmit is the cluster-aware POST /v1/jobs: hash the request's content
// address, walk the preference list, fall back past saturated or unreachable
// nodes.
func (n *Node) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req server.JobRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		n.writeJSON(w, http.StatusBadRequest, errBody(r.URL.Path, "bad request body: "+err.Error()))
		return
	}
	status, payload := n.routeSubmit(r.Context(), req, telemetry.SpanFromHeaders(r.Header))
	n.writeJSON(w, status, payload)
}

// routeSubmit places one job on the cluster and returns the HTTP status and
// response payload. Refusals that mean "try elsewhere" (queue full, shed,
// draining, transport error, injected partition) advance down the preference
// list; validation errors return immediately — every node would reject them
// identically. A valid parent span keeps the placed job on the caller's
// trace: the routing step gets its own span, the executing node's job span
// becomes its child (directly for local placement, via propagated headers
// for forwards).
func (n *Node) routeSubmit(ctx context.Context, req server.JobRequest, parent telemetry.SpanContext) (int, any) {
	key, err := n.srv.RouteKey(req)
	if err != nil {
		return http.StatusBadRequest, errBody("/v1/jobs", err.Error())
	}
	route := n.spans.Child(parent)
	body, _ := json.Marshal(req)
	lastStatus, lastPayload := 0, any(nil)
	for i, id := range n.ring.Preference(key) {
		if i > 0 {
			n.m.fallbacks.Inc()
		}
		if id == n.opts.Self {
			view, err := n.srv.SubmitWithSpan(req, route)
			if err == nil {
				return http.StatusAccepted, view
			}
			st := server.SubmitStatus(err)
			if st != http.StatusTooManyRequests && st != http.StatusServiceUnavailable {
				return st, errBody("/v1/jobs", err.Error())
			}
			lastStatus, lastPayload = st, errBody("/v1/jobs", err.Error())
			continue
		}
		if n.mem.State(id) == StateDead {
			continue
		}
		rctx, cancel := context.WithTimeout(ctx, n.opts.RPCTimeout)
		st, data, err := n.rpc(rctx, rpcForward, id, http.MethodPost, n.peerURL(id)+"/v1/jobs", body, route)
		cancel()
		if err != nil {
			lastStatus = http.StatusServiceUnavailable
			lastPayload = errBody("/v1/jobs", fmt.Sprintf("node %s unreachable: %v", id, err))
			continue
		}
		switch st {
		case http.StatusAccepted:
			var view server.JobView
			if json.Unmarshal(data, &view) != nil {
				return http.StatusBadGateway, errBody("/v1/jobs", "bad response from "+id)
			}
			n.m.forwards.Inc()
			n.emitRouted(view.ID, id, route)
			return st, view
		case http.StatusTooManyRequests, http.StatusServiceUnavailable:
			lastStatus, lastPayload = st, json.RawMessage(data)
			continue
		default:
			return st, json.RawMessage(data)
		}
	}
	if lastStatus != 0 {
		return lastStatus, lastPayload
	}
	return http.StatusServiceUnavailable, errBody("/v1/jobs", "no cluster node available")
}

// handleBatch is POST /v1/batch: a JSON array of job requests scattered
// concurrently across their owning nodes; the response preserves order, one
// entry per request.
func (n *Node) handleBatch(w http.ResponseWriter, r *http.Request) {
	var reqs []server.JobRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&reqs); err != nil {
		n.writeJSON(w, http.StatusBadRequest, errBody(r.URL.Path, "bad request body (want a JSON array): "+err.Error()))
		return
	}
	if len(reqs) == 0 {
		n.writeJSON(w, http.StatusBadRequest, errBody(r.URL.Path, "empty batch"))
		return
	}
	type entry struct {
		Status int             `json:"status"`
		Job    *server.JobView `json:"job,omitempty"`
		Error  string          `json:"error,omitempty"`
	}
	entries := make([]entry, len(reqs))
	parent := telemetry.SpanFromHeaders(r.Header)
	var wg sync.WaitGroup
	for i, req := range reqs {
		wg.Add(1)
		go func(i int, req server.JobRequest) {
			defer wg.Done()
			status, payload := n.routeSubmit(r.Context(), req, parent)
			e := entry{Status: status}
			switch p := payload.(type) {
			case server.JobView:
				e.Job = &p
			case map[string]string:
				e.Error = p["error"]
			case json.RawMessage:
				var m struct {
					Error string `json:"error"`
				}
				_ = json.Unmarshal(p, &m)
				e.Error = m.Error
			}
			entries[i] = e
		}(i, req)
	}
	wg.Wait()
	accepted := 0
	for _, e := range entries {
		if e.Status == http.StatusAccepted {
			accepted++
		}
	}
	n.writeJSON(w, http.StatusOK, map[string]any{
		"accepted": accepted,
		"total":    len(reqs),
		"jobs":     entries,
	})
}

// handleList is the cluster-aware GET /v1/jobs: gather every reachable
// node's views and merge them by submission time.
func (n *Node) handleList(w http.ResponseWriter, r *http.Request) {
	views := n.srv.Views()
	var wg sync.WaitGroup
	var mu sync.Mutex
	for _, id := range n.ring.Nodes() {
		if id == n.opts.Self || n.mem.State(id) == StateDead {
			continue
		}
		wg.Add(1)
		go func(id string) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(r.Context(), n.opts.RPCTimeout)
			defer cancel()
			st, data, err := n.rpc(ctx, rpcList, id, http.MethodGet, n.peerURL(id)+"/v1/jobs", nil, telemetry.SpanContext{})
			if err != nil || st != http.StatusOK {
				return
			}
			var out struct {
				Jobs []server.JobView `json:"jobs"`
			}
			if json.Unmarshal(data, &out) != nil {
				return
			}
			mu.Lock()
			views = append(views, out.Jobs...)
			mu.Unlock()
		}(id)
	}
	wg.Wait()
	sort.Slice(views, func(i, j int) bool {
		if !views[i].SubmittedAt.Equal(views[j].SubmittedAt) {
			return views[i].SubmittedAt.Before(views[j].SubmittedAt)
		}
		return views[i].ID < views[j].ID
	})
	n.writeJSON(w, http.StatusOK, map[string]any{"jobs": views})
}

// handleJobProxy routes GET/DELETE /v1/jobs/{id} to the node named by the
// ID's prefix ("n2-job-7" lives on n2). Unknown prefixes and unreachable
// owners fall back to the local server — after a hand-off the job may well
// live here under a new ID, and a plain 404 is the honest answer otherwise.
func (n *Node) handleJobProxy(local http.Handler) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		owner := ownerOfJobID(id)
		if owner == "" || owner == n.opts.Self || n.peerURL(owner) == "" ||
			n.mem.State(owner) == StateDead {
			local.ServeHTTP(w, r)
			return
		}
		timeout := n.opts.RPCTimeout
		if ms, err := strconv.Atoi(r.URL.Query().Get("wait_ms")); err == nil && ms > 0 {
			timeout += time.Duration(ms) * time.Millisecond
		}
		ctx, cancel := context.WithTimeout(r.Context(), timeout)
		defer cancel()
		url := n.peerURL(owner) + "/v1/jobs/" + id
		if q := r.URL.RawQuery; q != "" {
			url += "?" + q
		}
		st, data, err := n.rpc(ctx, rpcProxy, owner, r.Method, url, nil, telemetry.SpanFromHeaders(r.Header))
		if err != nil {
			local.ServeHTTP(w, r)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(st)
		w.Write(data)
	}
}

// handleClusterMetrics is GET /v1/cluster/metrics: scatter-gather metrics
// federation. Every reachable member's registry snapshot (self included) is
// merged by metric name and label values — counters add, gauges sum,
// histograms merge buckets — and rendered as Prometheus text, so the cluster
// scrapes like a single node. ?by=node keeps per-node resolution by adding a
// leading "node" label to every series instead of summing it away;
// ?format=json returns the structured snapshot dasetop consumes.
func (n *Node) handleClusterMetrics(w http.ResponseWriter, r *http.Request) {
	nodes := n.gatherSnapshots(r.Context())
	var fams []telemetry.FamilySnapshot
	if r.URL.Query().Get("by") == "node" {
		fams = telemetry.ByNodeSnapshots(nodes)
	} else {
		fams = telemetry.MergeSnapshots(nodes)
	}
	ids := make([]string, 0, len(nodes))
	for _, ns := range nodes {
		ids = append(ids, ns.Node)
	}
	sort.Strings(ids)
	switch format := r.URL.Query().Get("format"); format {
	case "json":
		n.writeJSON(w, http.StatusOK, map[string]any{"nodes": ids, "families": fams})
	case "", "prom":
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		telemetry.WritePrometheusSnapshot(w, fams)
	default:
		n.writeJSON(w, http.StatusBadRequest,
			errBody(r.URL.Path, "unknown format "+strconv.Quote(format)+" (prom | json)"))
	}
}

// gatherSnapshots collects the local registry snapshot plus every live
// peer's GET /v1/metrics/snapshot, concurrently. Unreachable peers are
// simply absent from the result — federation degrades to the nodes that
// answer rather than failing the scrape.
func (n *Node) gatherSnapshots(ctx context.Context) []telemetry.NodeSnapshot {
	nodes := []telemetry.NodeSnapshot{{
		Node:     n.opts.Self,
		Families: n.srv.MetricsRegistry().Snapshot(),
	}}
	var wg sync.WaitGroup
	var mu sync.Mutex
	for _, id := range n.ring.Nodes() {
		if id == n.opts.Self || n.mem.State(id) == StateDead {
			continue
		}
		wg.Add(1)
		go func(id string) {
			defer wg.Done()
			rctx, cancel := context.WithTimeout(ctx, n.opts.RPCTimeout)
			defer cancel()
			st, data, err := n.rpc(rctx, rpcMetrics, id, http.MethodGet,
				n.peerURL(id)+"/v1/metrics/snapshot", nil, telemetry.SpanContext{})
			if err != nil || st != http.StatusOK {
				return
			}
			var snap telemetry.NodeSnapshot
			if json.Unmarshal(data, &snap) != nil {
				return
			}
			if snap.Node == "" {
				snap.Node = id
			}
			mu.Lock()
			nodes = append(nodes, snap)
			mu.Unlock()
		}(id)
	}
	wg.Wait()
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].Node < nodes[j].Node })
	return nodes
}

// handleClusterTrace is GET /cluster/v1/trace: this node's cluster-layer
// events (RPC spans, routed jobs) as Chrome trace-event JSON, or NDJSON with
// ?format=ndjson for merging across nodes with cmd/dasetrace.
func (n *Node) handleClusterTrace(w http.ResponseWriter, r *http.Request) {
	if n.tracer == nil {
		n.writeJSON(w, http.StatusNotFound,
			errBody(r.URL.Path, "cluster tracing disabled; start the node with trace events enabled"))
		return
	}
	events := n.tracer.Events()
	var err error
	switch format := r.URL.Query().Get("format"); format {
	case "", "chrome":
		w.Header().Set("Content-Type", "application/json")
		err = telemetry.WriteChromeTrace(w, events)
	case "ndjson":
		w.Header().Set("Content-Type", "application/x-ndjson")
		err = telemetry.WriteNDJSON(w, events)
	default:
		n.writeJSON(w, http.StatusBadRequest,
			errBody(r.URL.Path, "unknown format "+strconv.Quote(format)+" (chrome | ndjson)"))
		return
	}
	if err != nil {
		n.log.Error("write cluster trace failed", "err", err)
	}
}

// ownerOfJobID extracts the node prefix from a cluster job ID, "" when the
// ID carries none (single-node era or foreign format).
func ownerOfJobID(id string) string {
	i := strings.Index(id, "-job-")
	if i <= 0 {
		return ""
	}
	return id[:i]
}
