package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"dasesim/internal/config"
	"dasesim/internal/faults"
	"dasesim/internal/kernels"
	"dasesim/internal/server"
	"dasesim/internal/sim"
)

// testCycles keeps the suite fast: one partial interval per simulation.
const testCycles = 20_000

// swapHandler lets a fixed httptest URL change its backing handler, so a
// "process" can be killed and restarted at the same address — which is what
// the static peer map requires.
type swapHandler struct {
	mu sync.RWMutex
	h  http.Handler
}

func (s *swapHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	h := s.h
	s.mu.RUnlock()
	h.ServeHTTP(w, r)
}

func (s *swapHandler) set(h http.Handler) {
	s.mu.Lock()
	s.h = h
	s.mu.Unlock()
}

// deadHandler aborts the connection without a response, which is what
// dialing a dead process feels like to the client.
var deadHandler = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
	panic(http.ErrAbortHandler)
})

type testNode struct {
	id        string
	dir       string // shared journal directory ("" disables hand-off)
	peers     map[string]string
	sw        *swapHandler
	ts        *httptest.Server
	srv       *server.Server
	node      *Node
	opts      Options
	srvAdjust func(*server.Options) // optional server-option tweaks before boot
	alive     bool
}

func quietLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

func (tn *testNode) serverOpts() server.Options {
	opts := server.Options{
		NodeID:        tn.id,
		Workers:       1,
		QueueDepth:    16,
		JobTimeout:    5 * time.Minute,
		DefaultCycles: testCycles,
		MaxCycles:     2_000_000_000,
		Logger:        quietLogger(),
	}
	if tn.dir != "" {
		opts.JournalPath = filepath.Join(tn.dir, tn.id+".wal")
	}
	if tn.srvAdjust != nil {
		tn.srvAdjust(&opts)
	}
	return opts
}

func (tn *testNode) boot(t *testing.T) {
	t.Helper()
	srv, err := server.New(tn.serverOpts())
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	node, err := New(srv, tn.opts)
	if err != nil {
		t.Fatal(err)
	}
	tn.srv, tn.node, tn.alive = srv, node, true
	tn.sw.set(node.Handler())
	node.Start()
	t.Cleanup(func() { tn.stop(t) })
}

// stop is the graceful teardown; a no-op after kill.
func (tn *testNode) stop(t *testing.T) {
	if !tn.alive {
		return
	}
	tn.alive = false
	tn.node.Stop()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	_ = tn.srv.Shutdown(ctx)
}

// kill emulates a process crash: the journal stops committing, the address
// stops answering, and in-flight connections are severed.
func (tn *testNode) kill() {
	if !tn.alive {
		return
	}
	tn.alive = false
	tn.sw.set(deadHandler)
	tn.node.Stop()
	tn.srv.Kill()
	tn.ts.CloseClientConnections()
}

// startCluster boots one node per ID against a shared journal directory
// (withJournal=false disables hand-off for tests that keep "dead" nodes
// running). adjust tweaks each node's cluster options before boot.
func startCluster(t *testing.T, withJournal bool, adjust func(*Options), ids ...string) map[string]*testNode {
	t.Helper()
	return startClusterOpts(t, withJournal, adjust, nil, ids...)
}

// startClusterOpts is startCluster with server-option tweaks too (tracing,
// SLO evaluation) — the observability tests need both layers configured.
func startClusterOpts(t *testing.T, withJournal bool, adjust func(*Options), srvAdjust func(*server.Options), ids ...string) map[string]*testNode {
	t.Helper()
	dir := ""
	if withJournal {
		dir = t.TempDir()
	}
	peers := map[string]string{}
	nodes := map[string]*testNode{}
	for _, id := range ids {
		sw := &swapHandler{h: deadHandler}
		ts := httptest.NewServer(sw)
		t.Cleanup(ts.Close)
		peers[id] = ts.URL
		nodes[id] = &testNode{id: id, dir: dir, peers: peers, sw: sw, ts: ts, srvAdjust: srvAdjust}
	}
	for _, id := range ids {
		tn := nodes[id]
		tn.opts = Options{
			Self:              id,
			Peers:             peers,
			HeartbeatInterval: 25 * time.Millisecond,
			SuspectAfter:      150 * time.Millisecond,
			DeadAfter:         400 * time.Millisecond,
			StealThreshold:    1 << 30, // stealing off unless a test opts in
			JournalDir:        dir,
			RPCTimeout:        5 * time.Second,
			Logger:            quietLogger(),
		}
		if adjust != nil {
			adjust(&tn.opts)
		}
		tn.boot(t)
	}
	return nodes
}

// pinRequest searches seeds (from *seed upward) for an SB job whose routing
// preference satisfies pred, advancing *seed past the hit so successive
// calls return distinct content addresses.
func pinRequest(t *testing.T, tn *testNode, cycles uint64, seed *uint64, pred func(prefs []string) bool) server.JobRequest {
	t.Helper()
	for ; *seed < 1_000_000; *seed++ {
		req := server.JobRequest{Kernels: []string{"SB"}, Cycles: cycles, Seed: *seed}
		key, err := tn.srv.RouteKey(req)
		if err != nil {
			t.Fatal(err)
		}
		if pred(tn.node.ring.Preference(key)) {
			*seed++
			return req
		}
	}
	t.Fatal("no seed matches the routing predicate")
	return server.JobRequest{}
}

func ownedBy(id string) func([]string) bool {
	return func(prefs []string) bool { return prefs[0] == id }
}

func postJobTo(t *testing.T, baseURL string, req server.JobRequest) (server.JobView, int) {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(baseURL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/jobs: %v", err)
	}
	defer resp.Body.Close()
	var v server.JobView
	data, _ := io.ReadAll(resp.Body)
	_ = json.Unmarshal(data, &v)
	return v, resp.StatusCode
}

func sameRequest(a, b server.JobRequest) bool {
	if a.Cycles != b.Cycles || a.Seed != b.Seed || len(a.Kernels) != len(b.Kernels) {
		return false
	}
	for i := range a.Kernels {
		if a.Kernels[i] != b.Kernels[i] {
			return false
		}
	}
	return true
}

// awaitDoneByRequest polls the live nodes until a done job with this request
// appears somewhere; handed-off and stolen jobs carry fresh IDs, so the
// request fingerprint is the only stable identity.
func awaitDoneByRequest(t *testing.T, nodes map[string]*testNode, req server.JobRequest, timeout time.Duration) server.JobView {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		for _, tn := range nodes {
			if !tn.alive {
				continue
			}
			for _, v := range tn.srv.Views() {
				if sameRequest(v.Request, req) && v.Status == server.StatusDone {
					return v
				}
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("job {SB cycles=%d seed=%d} never completed on any live node", req.Cycles, req.Seed)
	return server.JobView{}
}

// directSimJSON computes the single-node reference result for an SB shared
// job: the exact bytes an uninterrupted, uncluttered run would return.
func directSimJSON(t *testing.T, req server.JobRequest) []byte {
	t.Helper()
	cfg := config.Default()
	prof, ok := kernels.ByAbbr("SB")
	if !ok {
		t.Fatal("SB not in catalogue")
	}
	res, err := sim.RunShared(cfg, []kernels.Profile{prof}, sim.EvenAllocation(cfg.NumSMs, 1), req.Cycles, req.Seed)
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func simJSON(t *testing.T, v server.JobView) []byte {
	t.Helper()
	if v.Result == nil || v.Result.Sim == nil {
		t.Fatalf("job %s has no result (status=%s error=%q)", v.ID, v.Status, v.Error)
	}
	data, err := json.Marshal(v.Result.Sim)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func eventually(t *testing.T, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(15 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestClusterKillHandOffRestart is the kill-and-restart fault test: jobs
// accepted (202) and journaled by one node survive its death — a survivor
// claims the journal, reseeds the finished result, re-runs the in-flight and
// queued jobs — and the restarted node rejoins cleanly. Results are
// byte-identical to a direct single-node simulation throughout.
func TestClusterKillHandOffRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-node fault test runs simulations")
	}
	nodes := startCluster(t, true, nil, "n1", "n2", "n3")
	n1, victim, n3 := nodes["n1"], nodes["n2"], nodes["n3"]
	seed := uint64(1)

	// A job owned by the victim, finished before the kill: its result must
	// outlive the node via the claimed journal.
	doneReq := pinRequest(t, n1, testCycles, &seed, ownedBy("n2"))
	v, code := postJobTo(t, n1.ts.URL, doneReq)
	if code != http.StatusAccepted {
		t.Fatalf("submit via n1: status %d", code)
	}
	if ownerOfJobID(v.ID) != "n2" {
		t.Fatalf("job %s not routed to owner n2", v.ID)
	}
	preKill := awaitDoneByRequest(t, nodes, doneReq, 120*time.Second)
	preKillBytes := simJSON(t, preKill)

	// A long job occupies the victim's single worker...
	longReq := pinRequest(t, n1, 300_000, &seed, ownedBy("n2"))
	if _, code := postJobTo(t, victim.ts.URL, longReq); code != http.StatusAccepted {
		t.Fatalf("long job refused: %d", code)
	}
	eventually(t, 60*time.Second, "long job running on victim", func() bool {
		for _, v := range victim.srv.Views() {
			if sameRequest(v.Request, longReq) && v.Status == server.StatusRunning {
				return true
			}
		}
		return false
	})
	// ...so these two stay queued (journaled, never started) at the kill.
	q1 := pinRequest(t, n1, testCycles, &seed, ownedBy("n2"))
	q2 := pinRequest(t, n1, testCycles, &seed, ownedBy("n2"))
	for _, req := range []server.JobRequest{q1, q2} {
		if _, code := postJobTo(t, n1.ts.URL, req); code != http.StatusAccepted {
			t.Fatalf("queued job refused: %d", code)
		}
	}
	if got := victim.srv.QueueLen(); got != 2 {
		t.Fatalf("victim queue depth %d, want 2", got)
	}

	victim.kill()

	// A survivor claims the journal: one rename wins, the finished result is
	// seeded, the three non-terminal jobs (1 running + 2 queued) resubmitted.
	eventually(t, 15*time.Second, "journal hand-off", func() bool {
		return n1.node.m.handoffJobs.Load()+n3.node.m.handoffJobs.Load() == 3 &&
			n1.node.m.handoffSeeded.Load()+n3.node.m.handoffSeeded.Load() == 1
	})
	claims, err := filepath.Glob(filepath.Join(n1.dir, "*.handoff"))
	if err != nil {
		t.Fatal(err)
	}
	if len(claims) != 1 {
		t.Fatalf("claimed journals %v, want exactly one", claims)
	}

	// No 202-accepted job is lost: every handed-off job completes on a
	// survivor, byte-identical to the single-node reference.
	for _, req := range []server.JobRequest{longReq, q1, q2} {
		v := awaitDoneByRequest(t, nodes, req, 300*time.Second)
		if got, want := simJSON(t, v), directSimJSON(t, req); !bytes.Equal(got, want) {
			t.Fatalf("handed-off job {seed=%d} diverged from the single-node run", req.Seed)
		}
	}
	// The pre-kill finished result is recoverable too: resubmitting the same
	// request returns identical bytes (served from the seeded cache or
	// recomputed — indistinguishable, which is the point).
	if v, code := postJobTo(t, n1.ts.URL, doneReq); code != http.StatusAccepted {
		t.Fatalf("post-kill resubmit: status %d", code)
	} else if ownerOfJobID(v.ID) == "n2" {
		t.Fatalf("post-kill resubmit routed to the dead node (job %s)", v.ID)
	}
	again := awaitDoneByRequest(t, nodes, doneReq, 120*time.Second)
	if !bytes.Equal(simJSON(t, again), preKillBytes) {
		t.Fatal("recovered result diverged from the pre-kill bytes")
	}

	// Restart the victim at the same address (fresh journal: the old one was
	// claimed). Peers must see it alive and route to it again.
	victim.boot(t)
	eventually(t, 15*time.Second, "victim rejoining", func() bool {
		return n1.node.mem.State("n2") == StateAlive && n3.node.mem.State("n2") == StateAlive
	})
	resp, err := http.Get(victim.ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("restarted victim /readyz = %d, want 200", resp.StatusCode)
	}
	fresh := pinRequest(t, n1, testCycles, &seed, ownedBy("n2"))
	v, code = postJobTo(t, n1.ts.URL, fresh)
	if code != http.StatusAccepted || ownerOfJobID(v.ID) != "n2" {
		t.Fatalf("post-restart submit: status %d, id %s — routing not restored", code, v.ID)
	}
	final := awaitDoneByRequest(t, nodes, fresh, 120*time.Second)
	if !bytes.Equal(simJSON(t, final), directSimJSON(t, fresh)) {
		t.Fatal("post-restart job diverged from the single-node run")
	}
}

// TestClusterAsymmetricPartition severs exactly one direction of one link
// (n1 can no longer reach n2) and checks the failure detector sees exactly
// that asymmetry, submissions route around the cut without losing a single
// 202, and the partition-heal reconciliation detects the duplicated work —
// idempotent by content address, byte-identical results on both sides.
func TestClusterAsymmetricPartition(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-node fault test runs simulations")
	}
	// No journal dir: nodes here are partitioned, not dead, and a test this
	// precise must not have a survivor "claiming" a living node's journal.
	nodes := startCluster(t, false, nil, "n1", "n2", "n3")
	n1, n2 := nodes["n1"], nodes["n2"]
	seed := uint64(1)

	// The job must prefer [n2, n1, ...]: owned by the unreachable node with
	// the submitter itself as first fallback, so the partition forces n1 to
	// run a copy locally.
	req := pinRequest(t, n1, testCycles, &seed, func(prefs []string) bool {
		return prefs[0] == "n2" && prefs[1] == "n1"
	})

	reg := faults.New(42)
	reg.Arm(faults.Spec{Point: "cluster.dial", Label: "n1->n2", Mode: faults.ModePartition})
	faults.Activate(reg)
	defer faults.Deactivate()

	// n2 stops hearing n1 (push heartbeats travel the cut direction) and
	// declares it dead; n1 still hears n2 and keeps it alive. Exactly
	// one-way blindness — the definition of an asymmetric partition.
	eventually(t, 15*time.Second, "asymmetric suspicion", func() bool {
		return n2.node.mem.State("n1") == StateDead && n1.node.mem.State("n2") == StateAlive
	})
	// Everyone still holds a majority (n2+n3, n1+n3), so readiness holds
	// cluster-wide.
	for id, tn := range nodes {
		resp, err := http.Get(tn.ts.URL + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s /readyz = %d during partial partition, want 200", id, resp.StatusCode)
		}
	}

	// Submitting via n1: the forward to owner n2 hits the cut, falls back to
	// n1 itself. Still a 202 — no accepted job lost to the partition.
	v1, code := postJobTo(t, n1.ts.URL, req)
	if code != http.StatusAccepted {
		t.Fatalf("submit across the cut: status %d", code)
	}
	if ownerOfJobID(v1.ID) != "n1" {
		t.Fatalf("job %s should have fallen back to n1", v1.ID)
	}
	if n1.node.m.fallbacks.Load() == 0 {
		t.Fatal("fallback counter untouched by the rerouted submission")
	}
	// Submitting via n2 directly: it owns the key and runs its own copy.
	v2, code := postJobTo(t, n2.ts.URL, req)
	if code != http.StatusAccepted {
		t.Fatalf("submit on owner: status %d", code)
	}
	if ownerOfJobID(v2.ID) != "n2" {
		t.Fatalf("job %s should have stayed on n2", v2.ID)
	}
	d1 := awaitDoneByRequest(t, map[string]*testNode{"n1": n1}, req, 120*time.Second)
	d2 := awaitDoneByRequest(t, map[string]*testNode{"n2": n2}, req, 120*time.Second)

	// Both sides computed the same content address: byte-identical to each
	// other and to the single-node reference.
	ref := directSimJSON(t, req)
	if !bytes.Equal(simJSON(t, d1), ref) || !bytes.Equal(simJSON(t, d2), ref) {
		t.Fatal("partition-side results diverged from the single-node run")
	}

	// Heal. n2 hears n1 again, fires reconciliation, and finds n1's copy of
	// the result already present locally: duplicate work detected, zero
	// conflicts possible.
	faults.Deactivate()
	eventually(t, 15*time.Second, "partition heal", func() bool {
		return n2.node.mem.State("n1") == StateAlive
	})
	eventually(t, 15*time.Second, "duplicate-result reconciliation", func() bool {
		return n2.node.m.dupResults.Load() >= 1
	})
}

// TestClusterQuorumLoss isolates n1 from all inbound heartbeats: it sees
// every peer dead, loses quorum, and flips /readyz to 503 while /healthz
// stays 200 (alive, not ready). Healing restores readiness.
func TestClusterQuorumLoss(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-node fault test")
	}
	nodes := startCluster(t, false, nil, "n1", "n2", "n3")
	n1 := nodes["n1"]

	reg := faults.New(7)
	reg.Arm(faults.Spec{Point: "cluster.heartbeat", Label: "n2->n1", Mode: faults.ModePartition})
	reg.Arm(faults.Spec{Point: "cluster.heartbeat", Label: "n3->n1", Mode: faults.ModePartition})
	faults.Activate(reg)
	defer faults.Deactivate()

	eventually(t, 15*time.Second, "n1 losing quorum", func() bool {
		return n1.srv.Ready() != nil
	})
	readyz, err := http.Get(n1.ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	readyz.Body.Close()
	if readyz.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("minority /readyz = %d, want 503", readyz.StatusCode)
	}
	healthz, err := http.Get(n1.ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	healthz.Body.Close()
	if healthz.StatusCode != http.StatusOK {
		t.Fatalf("minority /healthz = %d, want 200 (alive, just not ready)", healthz.StatusCode)
	}

	faults.Deactivate()
	eventually(t, 15*time.Second, "quorum restored", func() bool {
		return n1.srv.Ready() == nil
	})
}

// TestClusterWorkStealing saturates one node's queue and checks an idle peer
// pulls jobs over, the victim marks them forwarded (terminal, journaled),
// and every job still completes with correct bytes.
func TestClusterWorkStealing(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-node fault test runs simulations")
	}
	nodes := startCluster(t, true, func(o *Options) { o.StealThreshold = 1 }, "n1", "n2")
	n1, n2 := nodes["n1"], nodes["n2"]
	seed := uint64(1)

	// One long job pins n1's single worker; three short jobs pile up behind
	// it, over the steal threshold.
	longReq := pinRequest(t, n1, 300_000, &seed, ownedBy("n1"))
	if _, code := postJobTo(t, n1.ts.URL, longReq); code != http.StatusAccepted {
		t.Fatalf("long job refused: %d", code)
	}
	shorts := make([]server.JobRequest, 3)
	for i := range shorts {
		shorts[i] = pinRequest(t, n1, testCycles, &seed, ownedBy("n1"))
		if _, code := postJobTo(t, n1.ts.URL, shorts[i]); code != http.StatusAccepted {
			t.Fatalf("short job %d refused: %d", i, code)
		}
	}

	eventually(t, 30*time.Second, "n2 stealing work", func() bool {
		return n2.node.m.steals.Load() >= 1
	})
	for _, req := range append(shorts, longReq) {
		v := awaitDoneByRequest(t, nodes, req, 300*time.Second)
		if !bytes.Equal(simJSON(t, v), directSimJSON(t, req)) {
			t.Fatalf("job {seed=%d} diverged after stealing", req.Seed)
		}
	}
	// The victim's ledger shows the forwards: terminal, attributed to the
	// thief, so a victim crash cannot resurrect stolen work.
	forwarded := 0
	for _, v := range n1.srv.Views() {
		if v.Status == server.StatusForwarded {
			forwarded++
			if v.ForwardedTo != "n2" {
				t.Fatalf("forwarded job %s attributes thief %q, want n2", v.ID, v.ForwardedTo)
			}
		}
	}
	if forwarded == 0 {
		t.Fatal("no forwarded job on the victim despite a recorded steal")
	}
}
