package cluster

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"dasesim/internal/faults"
	"dasesim/internal/telemetry"
)

// HopHeader marks a request already routed by a peer. A node receiving it
// serves the request locally instead of consulting the ring again, which
// caps every submission at one forwarding hop and makes routing loops
// impossible even when two nodes disagree about liveness.
const HopHeader = "X-Dased-Cluster-Hop"

// transport issues intra-cluster HTTP requests with network fault injection.
// Every request passes three labeled fault points — cluster.dial for
// connection establishment, then cluster.heartbeat or cluster.rpc by path —
// labeled "src->dst", so a test can sever exactly one direction of one link
// (an asymmetric partition) while the rest of the mesh stays healthy.
type transport struct {
	self   string
	client *http.Client
}

func newTransport(self string, timeout time.Duration) *transport {
	return &transport{
		self:   self,
		client: &http.Client{Timeout: timeout},
	}
}

// roundTrip sends one intra-cluster request and returns the status and body.
// Injected partitions surface as transport errors (the caller cannot tell
// them from a dead peer, by design), never as HTTP statuses. A valid span
// context travels as trace headers, so the receiving node's work joins the
// caller's timeline.
func (t *transport) roundTrip(ctx context.Context, to, method, url string, body []byte, sc telemetry.SpanContext) (int, []byte, error) {
	label := t.self + "->" + to
	if err := faults.FireLabeledCtx(ctx, "cluster.dial", label); err != nil {
		return 0, nil, fmt.Errorf("cluster: dial %s: %w", to, err)
	}
	point := "cluster.rpc"
	if strings.Contains(url, "/cluster/v1/heartbeat") {
		point = "cluster.heartbeat"
	}
	if err := faults.FireLabeledCtx(ctx, point, label); err != nil {
		return 0, nil, fmt.Errorf("cluster: rpc %s: %w", to, err)
	}
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, url, rd)
	if err != nil {
		return 0, nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	req.Header.Set(HopHeader, t.self)
	sc.SetHeaders(req.Header)
	resp, err := t.client.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return 0, nil, err
	}
	return resp.StatusCode, data, nil
}
