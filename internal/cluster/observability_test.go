package cluster

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"testing"
	"time"

	"dasesim/internal/server"
	"dasesim/internal/telemetry"
)

// obsAdjust turns on both observability layers with fixed seeds: the span
// sources mint deterministic IDs, so reruns of these tests produce the same
// trace topology.
func obsCluster(t *testing.T, withJournal bool, adjust func(*Options), ids ...string) map[string]*testNode {
	t.Helper()
	seed := uint64(0)
	return startClusterOpts(t, withJournal,
		func(o *Options) {
			o.TraceEvents = 4096
			seed++
			o.TraceSeed = 1000 + seed
			if adjust != nil {
				adjust(o)
			}
		},
		func(o *server.Options) {
			o.TraceEvents = 4096
			o.TraceSeed = 2000 + uint64(o.NodeID[len(o.NodeID)-1])
		},
		ids...)
}

func httpGet(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read: %v", url, err)
	}
	return resp.StatusCode, data
}

// gatherClusterNDJSON pulls every live node's cluster-layer trace plus every
// finished job's trace as NDJSON over HTTP (strict-validated — the same path
// CI uses) and returns the merged event stream.
func gatherClusterNDJSON(t *testing.T, nodes map[string]*testNode) []telemetry.Event {
	t.Helper()
	var merged []telemetry.Event
	for id, tn := range nodes {
		if !tn.alive {
			continue
		}
		st, data := httpGet(t, tn.ts.URL+"/cluster/v1/trace?format=ndjson")
		if st != http.StatusOK {
			t.Fatalf("%s cluster trace: status %d", id, st)
		}
		events, err := telemetry.ReadNDJSONStrict(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("%s cluster trace schema-invalid: %v", id, err)
		}
		merged = append(merged, events...)
		for _, v := range tn.srv.Views() {
			st, data := httpGet(t, tn.ts.URL+"/v1/jobs/"+v.ID+"/trace?format=ndjson")
			if st != http.StatusOK {
				continue // proxied or trace-less record
			}
			events, err := telemetry.ReadNDJSONStrict(bytes.NewReader(data))
			if err != nil {
				t.Fatalf("%s job %s trace schema-invalid: %v", id, v.ID, err)
			}
			merged = append(merged, events...)
		}
	}
	return merged
}

// tracesByKind indexes merged events: kind → events, keeping only span-carrying ones.
func spanEvents(events []telemetry.Event, trace uint64) []telemetry.Event {
	var out []telemetry.Event
	for _, e := range events {
		if e.TraceID == trace {
			out = append(out, e)
		}
	}
	return out
}

// TestClusterMetricsFederation exercises the scatter-gather endpoint: the
// merged Prometheus view sums per-node counters, the by-node variant keeps a
// leading node label, the JSON form feeds dasetop, and the per-RPC latency
// histogram has heartbeat observations on every node.
func TestClusterMetricsFederation(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-node test runs simulations")
	}
	nodes := obsCluster(t, false, nil, "n1", "n2", "n3")
	n1 := nodes["n1"]
	seed := uint64(1)

	// One job per node by routing preference, so every member has non-zero
	// submission counters.
	var reqs []server.JobRequest
	for _, owner := range []string{"n1", "n2", "n3"} {
		req := pinRequest(t, n1, testCycles, &seed, ownedBy(owner))
		if _, code := postJobTo(t, n1.ts.URL, req); code != http.StatusAccepted {
			t.Fatalf("submit for %s: status %d", owner, code)
		}
		reqs = append(reqs, req)
	}
	for _, req := range reqs {
		awaitDoneByRequest(t, nodes, req, 120*time.Second)
	}

	// Merged view: submissions across the cluster add up to 3.
	st, data := httpGet(t, n1.ts.URL+"/v1/cluster/metrics")
	if st != http.StatusOK {
		t.Fatalf("/v1/cluster/metrics: status %d", st)
	}
	text := string(data)
	if !strings.Contains(text, "dased_jobs_submitted_total 3") {
		t.Errorf("merged view should sum submissions to 3:\n%s", firstMatching(text, "dased_jobs_submitted_total"))
	}
	if !strings.Contains(text, "dased_cluster_rpc_latency_seconds_bucket") {
		t.Error("merged view lacks the RPC latency histogram")
	}

	// By-node view: a leading node label, one series per member.
	st, data = httpGet(t, n1.ts.URL+"/v1/cluster/metrics?by=node")
	if st != http.StatusOK {
		t.Fatalf("?by=node: status %d", st)
	}
	text = string(data)
	for _, id := range []string{"n1", "n2", "n3"} {
		if !strings.Contains(text, fmt.Sprintf(`dased_jobs_submitted_total{node=%q} 1`, id)) {
			t.Errorf("by-node view lacks %s's submission count:\n%s", id, firstMatching(text, "dased_jobs_submitted_total"))
		}
	}

	// JSON form: the dasetop contract.
	st, data = httpGet(t, n1.ts.URL+"/v1/cluster/metrics?by=node&format=json")
	if st != http.StatusOK {
		t.Fatalf("?format=json: status %d", st)
	}
	var frame struct {
		Nodes    []string                   `json:"nodes"`
		Families []telemetry.FamilySnapshot `json:"families"`
	}
	if err := json.Unmarshal(data, &frame); err != nil {
		t.Fatalf("JSON federation decode: %v", err)
	}
	if len(frame.Nodes) != 3 {
		t.Errorf("federated nodes = %v, want 3 members", frame.Nodes)
	}
	if len(frame.Families) == 0 {
		t.Fatal("JSON federation has no families")
	}

	// Unknown format is a loud 400, not silent prom fallback.
	if st, _ := httpGet(t, n1.ts.URL+"/v1/cluster/metrics?format=xml"); st != http.StatusBadRequest {
		t.Errorf("unknown format: status %d, want 400", st)
	}

	// Every node observed heartbeat RPC latency locally.
	for id, tn := range nodes {
		found := false
		for _, f := range tn.srv.MetricsRegistry().Snapshot() {
			if f.Name != "dased_cluster_rpc_latency_seconds" {
				continue
			}
			for _, p := range f.Points {
				if len(p.LabelValues) == 1 && p.LabelValues[0] == rpcHeartbeat && p.Count > 0 {
					found = true
				}
			}
		}
		if !found {
			t.Errorf("%s has no heartbeat RPC latency observations", id)
		}
	}

	// Hand-off and partition gauges are registered (zero-valued) everywhere.
	st, data = httpGet(t, n1.ts.URL+"/metrics")
	if st != http.StatusOK {
		t.Fatalf("/metrics: status %d", st)
	}
	for _, name := range []string{"dased_cluster_handoffs_total", "dased_cluster_partition_suspected"} {
		if !strings.Contains(string(data), name) {
			t.Errorf("/metrics lacks %s", name)
		}
	}
}

// firstMatching returns the exposition lines mentioning name, for failure messages.
func firstMatching(text, name string) string {
	var out []string
	for _, line := range strings.Split(text, "\n") {
		if strings.Contains(line, name) && !strings.HasPrefix(line, "#") {
			out = append(out, line)
		}
	}
	return strings.Join(out, "\n")
}

// TestClusterTraceReconstruction is the cross-node tracing acceptance test:
// a seeded 3-node run where one job is submitted on n1, forwarded to its
// owner n2, stolen by an idle peer, and completed there — then n2 is killed
// with a second job queued, and a survivor's hand-off resubmission continues
// the same trace. The merged NDJSON (validated strictly over HTTP) must
// reconstruct the full chain under single trace IDs, and the merged Chrome
// export must carry one track per node.
func TestClusterTraceReconstruction(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-node fault test runs simulations")
	}
	nodes := obsCluster(t, true, func(o *Options) { o.StealThreshold = 1 }, "n1", "n2", "n3")
	n1, victim, n3 := nodes["n1"], nodes["n2"], nodes["n3"]
	seed := uint64(1)

	// Pin n2's single worker with a long job so the next arrival queues.
	longReq := pinRequest(t, n1, 300_000, &seed, ownedBy("n2"))
	if _, code := postJobTo(t, victim.ts.URL, longReq); code != http.StatusAccepted {
		t.Fatalf("long job refused: %d", code)
	}
	eventually(t, 60*time.Second, "long job running on n2", func() bool {
		for _, v := range victim.srv.Views() {
			if sameRequest(v.Request, longReq) && v.Status == server.StatusRunning {
				return true
			}
		}
		return false
	})

	// The target job: submitted via n1, owned by n2 → forwarded, queued
	// behind the long job at the head of the line. Two fillers push the
	// queue past the steal threshold, so an idle peer pulls the target.
	target := pinRequest(t, n1, testCycles, &seed, ownedBy("n2"))
	v, code := postJobTo(t, n1.ts.URL, target)
	if code != http.StatusAccepted || ownerOfJobID(v.ID) != "n2" {
		t.Fatalf("target submit: status %d id %s", code, v.ID)
	}
	for i := 0; i < 2; i++ {
		filler := pinRequest(t, n1, testCycles, &seed, ownedBy("n2"))
		if _, code := postJobTo(t, victim.ts.URL, filler); code != http.StatusAccepted {
			t.Fatalf("filler %d refused: %d", i, code)
		}
	}
	eventually(t, 60*time.Second, "an idle peer stealing from n2", func() bool {
		return n1.node.m.steals.Load()+n3.node.m.steals.Load() >= 1
	})
	done := awaitDoneByRequest(t, nodes, target, 300*time.Second)
	if !bytes.Equal(simJSON(t, done), directSimJSON(t, target)) {
		t.Fatal("stolen job diverged from the single-node reference")
	}
	// The executor is wherever the done record lives; a steal means it is
	// not the owner.
	thief := ""
	for id, tn := range nodes {
		for _, view := range tn.srv.Views() {
			if sameRequest(view.Request, target) && view.Status == server.StatusDone {
				thief = id
			}
		}
	}
	if thief == "" || thief == "n2" {
		t.Fatalf("target executed on %q; expected a steal away from the owner", thief)
	}

	// The routing decision on n1 named the target's trace.
	var targetTrace uint64
	for _, e := range n1.node.tracer.Events() {
		if e.Kind == telemetry.KindJobRouted && e.Job == v.ID {
			targetTrace = e.TraceID
		}
	}
	if targetTrace == 0 {
		t.Fatal("n1 recorded no job.routed event for the forwarded target")
	}

	merged := gatherClusterNDJSON(t, nodes)
	// Keep the owner's events: this scrape is the last one before the kill
	// below, exactly what an operator would have on disk for a dead node.
	var victimEvents []telemetry.Event
	for _, e := range merged {
		if e.Node == "n2" {
			victimEvents = append(victimEvents, e)
		}
	}
	chain := spanEvents(merged, targetTrace)
	// The chain must span n1 (routing + forward RPC), n2 (queued as the
	// owner, then forwarded to the thief) and the thief (queued + done).
	byNodeKind := map[string]map[string]bool{}
	for _, e := range chain {
		if byNodeKind[e.Node] == nil {
			byNodeKind[e.Node] = map[string]bool{}
		}
		byNodeKind[e.Node][e.Kind.String()] = true
	}
	if !byNodeKind["n1"]["cluster.rpc"] || !byNodeKind["n1"]["job.routed"] {
		t.Errorf("n1 leg missing from trace %x: %v", targetTrace, byNodeKind["n1"])
	}
	if !byNodeKind["n2"]["job.queued"] {
		t.Errorf("owner leg missing from trace %x: %v", targetTrace, byNodeKind["n2"])
	}
	if !byNodeKind[thief]["job.queued"] || !byNodeKind[thief]["job.done"] {
		t.Errorf("thief %s leg missing from trace %x: %v", thief, targetTrace, byNodeKind[thief])
	}

	// Parent linkage across the forward hop: the owner's queued span must
	// point at a span minted on n1 within the same trace.
	n1Spans := map[uint64]bool{}
	for _, e := range chain {
		if e.Node == "n1" {
			n1Spans[e.SpanID] = true
		}
	}
	linked := false
	for _, e := range chain {
		if e.Node == "n2" && e.Kind == telemetry.KindJobQueued && n1Spans[e.ParentID] {
			linked = true
		}
	}
	if !linked {
		t.Error("owner's job.queued span is not parented to a n1 span")
	}

	// Hand-off continuation: queue a second job on n2, kill it, and require
	// the survivor's resubmission to reuse the original trace.
	long2 := pinRequest(t, n1, 300_000, &seed, ownedBy("n2"))
	if _, code := postJobTo(t, victim.ts.URL, long2); code != http.StatusAccepted {
		t.Fatalf("second long job refused: %d", code)
	}
	eventually(t, 60*time.Second, "second long job running on n2", func() bool {
		for _, v := range victim.srv.Views() {
			if sameRequest(v.Request, long2) && v.Status == server.StatusRunning {
				return true
			}
		}
		return false
	})
	handoffReq := pinRequest(t, n1, testCycles, &seed, ownedBy("n2"))
	hv, code := postJobTo(t, n1.ts.URL, handoffReq)
	if code != http.StatusAccepted {
		t.Fatalf("hand-off target submit: status %d", code)
	}
	var handoffTrace uint64
	for _, e := range n1.node.tracer.Events() {
		if e.Kind == telemetry.KindJobRouted && e.Job == hv.ID {
			handoffTrace = e.TraceID
		}
	}
	if handoffTrace == 0 {
		t.Fatal("n1 recorded no routing trace for the hand-off target")
	}

	victim.kill()
	handedOff := awaitDoneByRequest(t, nodes, handoffReq, 300*time.Second)
	if handedOff.ID == hv.ID {
		t.Fatalf("job %s completed under its original ID; expected a hand-off resubmission", hv.ID)
	}

	merged = gatherClusterNDJSON(t, nodes)
	continued := false
	for _, e := range spanEvents(merged, handoffTrace) {
		if e.Kind == telemetry.KindJobQueued && e.Node != "n2" && e.Job == handedOff.ID {
			continued = true
		}
	}
	if !continued {
		t.Errorf("hand-off resubmission did not continue trace %x on a survivor", handoffTrace)
	}

	// The merged stream — survivors' live scrapes plus the victim's final
	// pre-crash scrape — exports as one structurally valid Chrome trace
	// with one synthetic process per node.
	merged = append(merged, victimEvents...)
	var sb strings.Builder
	if err := telemetry.WriteChromeTrace(&sb, merged); err != nil {
		t.Fatal(err)
	}
	if err := telemetry.ValidateChromeTrace([]byte(sb.String())); err != nil {
		t.Fatalf("merged chrome trace invalid: %v", err)
	}
	for _, want := range []string{`"node n1"`, `"node n2"`, `"node n3"`} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("merged chrome trace lacks track %s", want)
		}
	}
}

// TestClusterGoldenFingerprints extends the determinism goldens to cluster
// mode: every scenario expressible through the job API, run through a 3-node
// cluster with trace propagation AND metrics federation active, must produce
// the exact fingerprint recorded in testdata/determinism_golden.json —
// distributed observability is observation-only down to the last byte.
func TestClusterGoldenFingerprints(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy; skipped with -short")
	}
	data, err := os.ReadFile("../../testdata/determinism_golden.json")
	if err != nil {
		t.Fatalf("read golden file: %v", err)
	}
	golden := map[string]string{}
	if err := json.Unmarshal(data, &golden); err != nil {
		t.Fatal(err)
	}

	nodes := obsCluster(t, false, nil, "n1", "n2", "n3")
	n1 := nodes["n1"]

	cases := []struct {
		name string
		req  server.JobRequest
	}{
		{"pair-SB-SD", server.JobRequest{Kernels: []string{"SB", "SD"}, Cycles: 120_000, Seed: 1}},
		{"pair-VA-CT-uneven", server.JobRequest{Kernels: []string{"VA", "CT"}, Alloc: []int{6, 10}, Cycles: 120_000, Seed: 3}},
		{"quad-SB-SD-CT-QR", server.JobRequest{Kernels: []string{"SB", "SD", "CT", "QR"}, Cycles: 120_000, Seed: 7}},
		{"pair-VA-CT-dasefair", server.JobRequest{Kernels: []string{"VA", "CT"}, Cycles: 160_000, Seed: 5, Policy: "fair"}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, code := postJobTo(t, n1.ts.URL, c.req); code != http.StatusAccepted {
				t.Fatalf("submit: status %d", code)
			}
			// Exercise federation mid-run: scraping the cluster view must not
			// perturb the simulation.
			if st, _ := httpGet(t, n1.ts.URL+"/v1/cluster/metrics"); st != http.StatusOK {
				t.Fatalf("federation scrape during run: status %d", st)
			}
			v := awaitDoneByRequest(t, nodes, c.req, 300*time.Second)
			sum := sha256.Sum256(simJSON(t, v))
			want, ok := golden[c.name]
			if !ok {
				t.Fatalf("no golden fingerprint for %q", c.name)
			}
			if got := hex.EncodeToString(sum[:]); got != want {
				t.Errorf("cluster-mode fingerprint mismatch: got %s want %s\ntracing and federation must be observation-only", got, want)
			}
		})
	}
}

// TestClusterObservabilityEndpointsShort covers the federation and trace
// endpoints without running a single simulation, so it stays in the -short
// suite: a booted cluster heartbeats, which is enough for scatter-gather,
// per-node labeling, RPC latency observation, and the trace ring's HTTP
// surface.
func TestClusterObservabilityEndpointsShort(t *testing.T) {
	nodes := obsCluster(t, false, nil, "n1", "n2")
	n1 := nodes["n1"]

	// Heartbeats populate the RPC latency histogram on their own.
	eventually(t, 30*time.Second, "heartbeat RPC latency observed", func() bool {
		for _, f := range n1.srv.MetricsRegistry().Snapshot() {
			if f.Name == "dased_cluster_rpc_latency_seconds" {
				for _, p := range f.Points {
					if p.Count > 0 {
						return true
					}
				}
			}
		}
		return false
	})

	st, data := httpGet(t, n1.ts.URL+"/v1/cluster/metrics")
	if st != http.StatusOK || !strings.Contains(string(data), "dased_cluster_rpc_latency_seconds") {
		t.Fatalf("merged scrape: status %d", st)
	}
	st, data = httpGet(t, n1.ts.URL+"/v1/cluster/metrics?by=node&format=json")
	if st != http.StatusOK {
		t.Fatalf("json scrape: status %d", st)
	}
	var frame struct {
		Nodes []string `json:"nodes"`
	}
	if err := json.Unmarshal(data, &frame); err != nil || len(frame.Nodes) != 2 {
		t.Fatalf("json frame nodes = %v (err %v), want both members", frame.Nodes, err)
	}
	if st, _ := httpGet(t, n1.ts.URL+"/v1/cluster/metrics?format=yaml"); st != http.StatusBadRequest {
		t.Errorf("unknown metrics format: status %d, want 400", st)
	}

	// The cluster-layer trace ring serves both formats; heartbeat RPCs have
	// already landed in it.
	st, data = httpGet(t, n1.ts.URL+"/cluster/v1/trace?format=ndjson")
	if st != http.StatusOK {
		t.Fatalf("ndjson trace: status %d", st)
	}
	events, err := telemetry.ReadNDJSONStrict(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("cluster trace schema-invalid: %v", err)
	}
	sawRPC := false
	for _, e := range events {
		if e.Kind == telemetry.KindClusterRPC && e.Node == "n1" {
			sawRPC = true
		}
	}
	if !sawRPC {
		t.Error("no cluster.rpc events in the ring despite heartbeats")
	}
	st, data = httpGet(t, n1.ts.URL+"/cluster/v1/trace")
	if st != http.StatusOK {
		t.Fatalf("chrome trace: status %d", st)
	}
	if err := telemetry.ValidateChromeTrace(data); err != nil {
		t.Fatalf("chrome trace invalid: %v", err)
	}
	if st, _ := httpGet(t, n1.ts.URL+"/cluster/v1/trace?format=xml"); st != http.StatusBadRequest {
		t.Errorf("unknown trace format: status %d, want 400", st)
	}
}

// TestClusterTraceDisabledShort pins the degraded surface: without
// TraceEvents the cluster trace endpoint 404s but federation still works.
func TestClusterTraceDisabledShort(t *testing.T) {
	nodes := startCluster(t, false, nil, "n1", "n2")
	n1 := nodes["n1"]
	if st, _ := httpGet(t, n1.ts.URL+"/cluster/v1/trace"); st != http.StatusNotFound {
		t.Errorf("trace endpoint without tracer: status %d, want 404", st)
	}
	if st, _ := httpGet(t, n1.ts.URL+"/v1/cluster/metrics"); st != http.StatusOK {
		t.Errorf("federation without tracer: status %d, want 200", st)
	}
}
