package cluster

import "dasesim/internal/telemetry"

// metrics are the cluster layer's observability signals, registered on the
// co-located server's registry so one /metrics scrape covers both layers.
type metrics struct {
	peerAlive      *telemetry.GaugeVec // 1 alive, 0.5 suspect, 0 dead, per peer
	peerQueue      *telemetry.GaugeVec // last heartbeat queue depth, per peer
	heartbeatsSent *telemetry.Counter
	heartbeatsFail *telemetry.Counter
	forwards       *telemetry.Counter // submissions routed to a peer
	fallbacks      *telemetry.Counter // preference-list retries after a refusal
	handoffJobs    *telemetry.Counter // non-terminal jobs resubmitted from a claimed journal
	handoffSeeded  *telemetry.Counter // finished results seeded from a claimed journal
	steals         *telemetry.Counter // jobs pulled from a saturated peer
	dupResults     *telemetry.Counter // reconciliation: results both sides computed
}

func newMetrics(reg *telemetry.Registry) *metrics {
	return &metrics{
		peerAlive: reg.GaugeVec("dased_cluster_peer_alive",
			"Peer liveness: 1 alive, 0.5 suspect, 0 dead.", "peer"),
		peerQueue: reg.GaugeVec("dased_cluster_peer_queue_depth",
			"Peer queue depth at its last heartbeat.", "peer"),
		heartbeatsSent: reg.Counter("dased_cluster_heartbeats_sent_total",
			"Heartbeats successfully delivered to peers."),
		heartbeatsFail: reg.Counter("dased_cluster_heartbeats_failed_total",
			"Heartbeat sends that errored (includes injected partitions)."),
		forwards: reg.Counter("dased_cluster_forwards_total",
			"Submissions routed to the owning peer."),
		fallbacks: reg.Counter("dased_cluster_fallbacks_total",
			"Submissions retried on the next preference after a refusal."),
		handoffJobs: reg.Counter("dased_cluster_handoff_jobs_total",
			"Non-terminal jobs resubmitted from a dead peer's claimed journal."),
		handoffSeeded: reg.Counter("dased_cluster_handoff_results_seeded_total",
			"Finished results recovered from a dead peer's claimed journal."),
		steals: reg.Counter("dased_cluster_steals_total",
			"Queued jobs pulled from a saturated peer."),
		dupResults: reg.Counter("dased_cluster_duplicate_results_total",
			"Results found already present during partition-heal reconciliation."),
	}
}

// observePeers mirrors the membership snapshot into the per-peer gauges.
func (m *metrics) observePeers(infos []PeerInfo) {
	for _, p := range infos {
		v := 0.0
		switch p.State {
		case StateAlive:
			v = 1
		case StateSuspect:
			v = 0.5
		}
		m.peerAlive.With(p.ID).Set(v)
		m.peerQueue.With(p.ID).Set(float64(p.QueueLen))
	}
}
