package cluster

import "dasesim/internal/telemetry"

// RPC method labels: fixed strings shared by the dased_cluster_rpc_latency
// histogram, per-RPC trace events, and tests.
const (
	rpcHeartbeat = "heartbeat"
	rpcSteal     = "steal"
	rpcForward   = "forward"
	rpcList      = "list"
	rpcProxy     = "proxy"
	rpcReconcile = "reconcile"
	rpcMetrics   = "metrics"
)

// rpcMethods is every method label, for pre-resolving histogram children.
var rpcMethods = []string{
	rpcHeartbeat, rpcSteal, rpcForward, rpcList, rpcProxy, rpcReconcile, rpcMetrics,
}

// metrics are the cluster layer's observability signals, registered on the
// co-located server's registry so one /metrics scrape covers both layers.
type metrics struct {
	peerAlive      *telemetry.GaugeVec // 1 alive, 0.5 suspect, 0 dead, per peer
	peerQueue      *telemetry.GaugeVec // last heartbeat queue depth, per peer
	heartbeatsSent *telemetry.Counter
	heartbeatsFail *telemetry.Counter
	forwards       *telemetry.Counter // submissions routed to a peer
	fallbacks      *telemetry.Counter // preference-list retries after a refusal
	handoffs       *telemetry.Counter // dead-peer journals claimed for hand-off
	handoffJobs    *telemetry.Counter // non-terminal jobs resubmitted from a claimed journal
	handoffSeeded  *telemetry.Counter // finished results seeded from a claimed journal
	steals         *telemetry.Counter // jobs pulled from a saturated peer
	dupResults     *telemetry.Counter // reconciliation: results both sides computed

	partitionSuspected *telemetry.Gauge // peers currently suspect or dead

	// rpcLatency children are resolved once at construction: With locks and
	// allocates, Observe on a resolved child is lock- and allocation-free,
	// keeping the per-RPC hot path allocation-clean.
	rpcLatency map[string]*telemetry.Histogram
}

func newMetrics(reg *telemetry.Registry) *metrics {
	m := &metrics{
		peerAlive: reg.GaugeVec("dased_cluster_peer_alive",
			"Peer liveness: 1 alive, 0.5 suspect, 0 dead.", "peer"),
		peerQueue: reg.GaugeVec("dased_cluster_peer_queue_depth",
			"Peer queue depth at its last heartbeat.", "peer"),
		heartbeatsSent: reg.Counter("dased_cluster_heartbeats_sent_total",
			"Heartbeats successfully delivered to peers."),
		heartbeatsFail: reg.Counter("dased_cluster_heartbeats_failed_total",
			"Heartbeat sends that errored (includes injected partitions)."),
		forwards: reg.Counter("dased_cluster_forwards_total",
			"Submissions routed to the owning peer."),
		fallbacks: reg.Counter("dased_cluster_fallbacks_total",
			"Submissions retried on the next preference after a refusal."),
		handoffs: reg.Counter("dased_cluster_handoffs_total",
			"Dead-peer journals claimed for hand-off."),
		handoffJobs: reg.Counter("dased_cluster_handoff_jobs_total",
			"Non-terminal jobs resubmitted from a dead peer's claimed journal."),
		handoffSeeded: reg.Counter("dased_cluster_handoff_results_seeded_total",
			"Finished results recovered from a dead peer's claimed journal."),
		steals: reg.Counter("dased_cluster_steals_total",
			"Queued jobs pulled from a saturated peer."),
		dupResults: reg.Counter("dased_cluster_duplicate_results_total",
			"Results found already present during partition-heal reconciliation."),
		partitionSuspected: reg.Gauge("dased_cluster_partition_suspected",
			"Peers this node currently considers suspect or dead."),
	}
	lat := reg.HistogramVec("dased_cluster_rpc_latency_seconds",
		"Round-trip latency of intra-cluster RPCs by method.",
		[]float64{0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5},
		"method")
	m.rpcLatency = make(map[string]*telemetry.Histogram, len(rpcMethods))
	for _, method := range rpcMethods {
		m.rpcLatency[method] = lat.With(method)
	}
	return m
}

// observePeers mirrors the membership snapshot into the per-peer gauges and
// the partition-suspicion gauge.
func (m *metrics) observePeers(infos []PeerInfo) {
	suspected := 0
	for _, p := range infos {
		v := 0.0
		switch p.State {
		case StateAlive:
			v = 1
		case StateSuspect:
			v = 0.5
			suspected++
		default:
			suspected++
		}
		m.peerAlive.With(p.ID).Set(v)
		m.peerQueue.With(p.ID).Set(float64(p.QueueLen))
	}
	m.partitionSuspected.Set(float64(suspected))
}
