package cluster

import (
	"context"
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"

	"dasesim/internal/journal"
	"dasesim/internal/server"
	"dasesim/internal/telemetry"
)

// onPeerDead fires when the failure detector declares a peer dead. Every
// survivor races to claim the dead node's journal by atomic rename — exactly
// one wins, because the source path exists once — and the winner replays it:
// finished results are seeded into the local cache (and from there reachable
// by any client re-asking for the same work), non-terminal jobs are
// resubmitted through normal routing, which skips the dead node.
//
// Recovery is at-least-once by construction: a falsely-suspected node may
// still be running its copy of a handed-off job. That is safe — simulations
// are deterministic functions of their content address, so both executions
// produce byte-identical results and the caches deduplicate by key.
func (n *Node) onPeerDead(peer string) {
	n.log.Warn("peer dead", "peer", peer)
	if n.opts.JournalDir == "" {
		return
	}
	src := filepath.Join(n.opts.JournalDir, peer+".wal")
	claimed := src + "." + n.opts.Self + ".handoff"
	if err := os.Rename(src, claimed); err != nil {
		// Lost the claim race, or the peer never journaled — either way
		// another survivor (or nobody) is responsible.
		return
	}
	n.m.handoffs.Inc()
	n.log.Info("claimed journal", "peer", peer, "path", claimed)
	recs, err := journal.Load(claimed)
	if err != nil {
		n.log.Error("claimed journal unreadable", "peer", peer, "err", err)
		return
	}
	seeded, resubmitted := 0, 0
	for _, j := range server.ExtractJournalJobs(recs) {
		if j.Terminal {
			if j.Status == server.StatusDone && n.srv.SeedResult(j.Request, j.Result) {
				n.m.handoffSeeded.Inc()
				seeded++
			}
			continue
		}
		// The dead node accepted this job with a 202 and never finished
		// it; honoring that acknowledgment is the whole point of hand-off.
		n.m.handoffJobs.Inc()
		resubmitted++
		// Resubmission continues the job's original trace: the journaled
		// span becomes the parent, so dasetrace shows submit-on-dead-node
		// and rerun-after-hand-off as one cross-node timeline.
		if status, payload := n.routeSubmit(n.ctx, j.Request, j.Span); status != http.StatusAccepted {
			body, _ := json.Marshal(payload)
			n.log.Error("hand-off resubmit refused", "peer", peer, "origin", j.ID,
				"status", status, "body", string(body))
		}
	}
	n.log.Info("hand-off complete", "peer", peer,
		"jobs", len(server.ExtractJournalJobs(recs)), "seeded", seeded, "resubmitted", resubmitted)
}

// onPeerAlive fires when a dead peer is heard from again — a restart or a
// healed partition. Both sides may have computed the same content addresses
// in the meantime; reconciliation pulls the peer's finished results and
// seeds any we miss, counting the overlap. It runs off the heartbeat
// handler's goroutine so the peer's first contact is not delayed.
func (n *Node) onPeerAlive(peer string) {
	n.log.Info("peer alive again", "peer", peer)
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		n.reconcile(peer)
	}()
}

// reconcile merges one returned peer's finished work into the local cache.
func (n *Node) reconcile(peer string) {
	ctx, cancel := context.WithTimeout(n.ctx, n.opts.RPCTimeout)
	defer cancel()
	st, data, err := n.rpc(ctx, rpcReconcile, peer, http.MethodGet, n.peerURL(peer)+"/v1/jobs", nil, telemetry.SpanContext{})
	if err != nil || st != http.StatusOK {
		n.log.Warn("reconcile fetch failed", "peer", peer, "status", st, "err", err)
		return
	}
	var out struct {
		Jobs []server.JobView `json:"jobs"`
	}
	if err := json.Unmarshal(data, &out); err != nil {
		n.log.Warn("reconcile decode failed", "peer", peer, "err", err)
		return
	}
	seeded, dups := 0, 0
	for _, v := range out.Jobs {
		if v.Status != server.StatusDone || v.Result == nil || v.Result.Sim == nil {
			continue
		}
		if n.srv.SeedResult(v.Request, v.Result) {
			seeded++
		} else {
			// Already present locally: both partition sides ran this
			// content address. Duplicate effort, but — determinism —
			// identical bytes.
			n.m.dupResults.Inc()
			dups++
		}
	}
	n.log.Info("reconciled", "peer", peer, "seeded", seeded, "duplicates", dups)
}
