package cluster

import (
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"testing"

	"dasesim/internal/server"
)

// TestHeartbeatSeqStartsAtZero pins the restart contract between the
// heartbeat sender and Membership.Observe: the first heartbeat a (re)started
// node sends must carry seq 0, the one value Observe always applies. A node
// that restarts after a long uptime would otherwise be dropped as stale by
// its peers until its fresh sequence outran the old incarnation's — one
// heartbeat interval per step.
func TestHeartbeatSeqStartsAtZero(t *testing.T) {
	var got []uint64
	peer := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var hb heartbeatBody
		if err := json.NewDecoder(r.Body).Decode(&hb); err != nil {
			t.Errorf("bad heartbeat body: %v", err)
		}
		got = append(got, hb.Seq)
	}))
	defer peer.Close()

	srv, err := server.New(server.Options{
		NodeID: "n1",
		Logger: slog.New(slog.NewTextHandler(io.Discard, nil)),
	})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	defer srv.Kill()
	n, err := New(srv, Options{
		Self:   "n1",
		Peers:  map[string]string{"n1": "http://unused", "n2": peer.URL},
		Logger: slog.New(slog.NewTextHandler(io.Discard, nil)),
	})
	if err != nil {
		t.Fatal(err)
	}
	// Drive the sender directly instead of Start() so the test sees an exact
	// sequence rather than a timing-dependent prefix.
	defer n.cancel()
	for i := 0; i < 3; i++ {
		n.sendHeartbeats()
	}
	if len(got) != 3 || got[0] != 0 || got[1] != 1 || got[2] != 2 {
		t.Fatalf("heartbeat seqs = %v, want [0 1 2]", got)
	}
}
