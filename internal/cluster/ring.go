// Package cluster turns a set of dased servers into a sharded, crash-tolerant
// job cluster. Jobs are routed by consistent hashing on their simulation
// content address (the simcache key), so identical submissions land on — and
// share the result cache of — one node. A lightweight static-peer membership
// detects node death by heartbeat silence and hands a dead node's journaled,
// non-terminal jobs to the next node in the key's preference order. Idle
// nodes steal queued work from saturated peers, and batch submissions
// scatter-gather across the ring.
//
// The cluster is AP-flavoured: there is no consensus, and every recovery
// action is at-least-once. Correctness leans on the fact that simulations are
// deterministic functions of their content address — running a job twice on
// two sides of a partition produces byte-identical results, and the caches
// reconcile by content address when the partition heals.
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// defaultReplicas is the virtual-node count per physical node. 64 vnodes keep
// the shard imbalance of a small (3-10 node) ring under a few percent without
// making Preference scans noticeable.
const defaultReplicas = 64

// Ring is an immutable consistent-hash ring over the cluster's node IDs.
// Membership changes do not rebuild the ring: routing always consults the
// full static peer list, and liveness filtering happens at call sites via the
// preference order. That keeps shard ownership stable across restarts, which
// the journal hand-off relies on.
type Ring struct {
	nodes  []string
	hashes []uint64          // sorted vnode positions
	owner  map[uint64]string // vnode position -> node ID
}

// NewRing builds a ring with the default vnode count. Node IDs must be
// non-empty and unique.
func NewRing(nodes []string) (*Ring, error) {
	return newRing(nodes, defaultReplicas)
}

func newRing(nodes []string, replicas int) (*Ring, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one node")
	}
	r := &Ring{owner: make(map[uint64]string, len(nodes)*replicas)}
	seen := map[string]bool{}
	for _, n := range nodes {
		if n == "" {
			return nil, fmt.Errorf("cluster: empty node ID")
		}
		if seen[n] {
			return nil, fmt.Errorf("cluster: duplicate node ID %q", n)
		}
		seen[n] = true
		r.nodes = append(r.nodes, n)
		for v := 0; v < replicas; v++ {
			h := hash64(fmt.Sprintf("%s#%d", n, v))
			// A vnode collision across nodes would silently shrink a shard;
			// perturb until free (deterministic, effectively never loops).
			for _, taken := r.owner[h]; taken; _, taken = r.owner[h] {
				h++
			}
			r.owner[h] = n
			r.hashes = append(r.hashes, h)
		}
	}
	sort.Slice(r.hashes, func(i, j int) bool { return r.hashes[i] < r.hashes[j] })
	sort.Strings(r.nodes)
	return r, nil
}

// Nodes returns the ring's node IDs, sorted.
func (r *Ring) Nodes() []string { return append([]string(nil), r.nodes...) }

// Owner returns the node owning key: the first vnode at or clockwise of the
// key's hash.
func (r *Ring) Owner(key string) string {
	return r.owner[r.hashes[r.search(key)]]
}

// Preference returns every node exactly once, in the order a job with this
// key should try them: the owner first, then successive distinct nodes
// clockwise. Hand-off sends a dead owner's jobs to the next entry, so the
// order must be a pure function of the key — it is.
func (r *Ring) Preference(key string) []string {
	out := make([]string, 0, len(r.nodes))
	seen := make(map[string]bool, len(r.nodes))
	start := r.search(key)
	for n := 0; n < len(r.hashes) && len(out) < len(r.nodes); n++ {
		id := r.owner[r.hashes[(start+n)%len(r.hashes)]]
		if !seen[id] {
			seen[id] = true
			out = append(out, id)
		}
	}
	return out
}

// search finds the index of the first vnode at or clockwise of the key.
func (r *Ring) search(key string) int {
	h := hash64(key)
	i := sort.Search(len(r.hashes), func(i int) bool { return r.hashes[i] >= h })
	if i == len(r.hashes) {
		i = 0
	}
	return i
}

// hash64 is FNV-1a with a splitmix64 finalizer: plain FNV of short, similar
// strings ("n1#0", "n1#1", ...) clusters on the ring badly enough to skew
// shard sizes 5x; the finalizer's avalanche restores uniform vnode spacing.
func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
