package cluster

import (
	"sync"
	"testing"
	"time"
)

// fakeClock drives Membership transitions without sleeping.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func newTestMembership(peers ...string) (*Membership, *fakeClock) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	m := NewMembership("self", peers, 30*time.Millisecond, 100*time.Millisecond)
	m.now = clk.now
	// Re-anchor the initial grace period on the fake clock.
	for _, rec := range m.peers {
		rec.lastSeen = clk.t
	}
	return m, clk
}

func TestMembershipTransitions(t *testing.T) {
	m, clk := newTestMembership("p1", "p2")
	var died, revived []string
	m.OnDead(func(p string) { died = append(died, p) })
	m.OnAlive(func(p string) { revived = append(revived, p) })

	if got := m.State("p1"); got != StateAlive {
		t.Fatalf("initial state %v, want alive", got)
	}
	// p1 keeps talking, p2 goes silent.
	clk.advance(50 * time.Millisecond)
	m.Observe("p1", 1, 0, true)
	m.Tick()
	if got := m.State("p1"); got != StateAlive {
		t.Fatalf("p1 %v after heartbeat, want alive", got)
	}
	if got := m.State("p2"); got != StateSuspect {
		t.Fatalf("p2 %v after 50ms silence, want suspect", got)
	}
	if len(died) != 0 {
		t.Fatalf("premature deaths: %v", died)
	}

	clk.advance(60 * time.Millisecond) // p2 silent 110ms total
	m.Tick()
	if got := m.State("p2"); got != StateDead {
		t.Fatalf("p2 %v after 110ms silence, want dead", got)
	}
	if len(died) != 1 || died[0] != "p2" {
		t.Fatalf("OnDead fired %v, want [p2]", died)
	}
	m.Tick() // no re-fire
	if len(died) != 1 {
		t.Fatalf("OnDead re-fired: %v", died)
	}

	// p2 comes back.
	m.Observe("p2", 1, 3, true)
	if got := m.State("p2"); got != StateAlive {
		t.Fatalf("p2 %v after revival heartbeat, want alive", got)
	}
	if len(revived) != 1 || revived[0] != "p2" {
		t.Fatalf("OnAlive fired %v, want [p2]", revived)
	}
}

func TestMembershipStaleSeqDropped(t *testing.T) {
	m, _ := newTestMembership("p1")
	m.Observe("p1", 5, 10, true)
	m.Observe("p1", 3, 99, false) // delayed packet: must not apply
	for _, info := range m.Snapshot() {
		if info.QueueLen != 10 || !info.Ready {
			t.Fatalf("stale heartbeat applied: %+v", info)
		}
	}
	m.Observe("p1", 0, 7, true) // seq 0 = restarted peer, always applies
	for _, info := range m.Snapshot() {
		if info.QueueLen != 7 {
			t.Fatalf("restart heartbeat dropped: %+v", info)
		}
	}
}

func TestMembershipUnknownPeer(t *testing.T) {
	m, _ := newTestMembership("p1")
	m.Observe("stranger", 1, 0, true) // must not panic or add a peer
	if got := m.State("stranger"); got != StateDead {
		t.Fatalf("unknown peer state %v, want dead", got)
	}
	if got := m.State("self"); got != StateAlive {
		t.Fatalf("self state %v, want alive", got)
	}
}

func TestMembershipQuorum(t *testing.T) {
	m, clk := newTestMembership("p1", "p2") // cluster of 3
	if !m.QuorumOK() {
		t.Fatal("full cluster lacks quorum")
	}
	clk.advance(150 * time.Millisecond)
	m.Observe("p1", 1, 0, true) // p1 alive, p2 dead
	m.Tick()
	if !m.QuorumOK() {
		t.Fatal("2 of 3 lacks quorum")
	}
	clk.advance(150 * time.Millisecond) // now p1 dead too
	m.Tick()
	if m.QuorumOK() {
		t.Fatal("1 of 3 claims quorum")
	}
}

func TestMembershipBusiest(t *testing.T) {
	m, clk := newTestMembership("p1", "p2", "p3")
	m.Observe("p1", 1, 2, true)
	m.Observe("p2", 1, 9, true)
	m.Observe("p3", 1, 9, true)
	peer, depth, ok := m.Busiest(4)
	if !ok || depth != 9 || peer != "p2" { // ties break to the lower ID
		t.Fatalf("Busiest = %s/%d/%v, want p2/9/true", peer, depth, ok)
	}
	if _, _, ok := m.Busiest(9); ok {
		t.Fatal("Busiest found a peer at threshold 9")
	}
	// A dead peer is never a steal victim, however deep its queue.
	clk.advance(150 * time.Millisecond)
	m.Observe("p1", 2, 2, true)
	m.Observe("p3", 2, 3, true)
	m.Tick() // p2 dead
	if peer, _, ok := m.Busiest(0); !ok || peer == "p2" {
		t.Fatalf("Busiest = %s/%v, want a live peer", peer, ok)
	}
}
