package cluster

import (
	"fmt"
	"reflect"
	"testing"
)

func TestRingErrors(t *testing.T) {
	if _, err := NewRing(nil); err == nil {
		t.Fatal("empty node list accepted")
	}
	if _, err := NewRing([]string{"a", ""}); err == nil {
		t.Fatal("empty node ID accepted")
	}
	if _, err := NewRing([]string{"a", "b", "a"}); err == nil {
		t.Fatal("duplicate node ID accepted")
	}
}

// TestRingDeterministic proves routing is a pure function of the node set —
// independent of construction order, so every cluster member computes the
// same owner for every key.
func TestRingDeterministic(t *testing.T) {
	r1, err := NewRing([]string{"n1", "n2", "n3"})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := NewRing([]string{"n3", "n1", "n2"})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("key-%d", i)
		if r1.Owner(key) != r2.Owner(key) {
			t.Fatalf("key %q: owner differs by construction order", key)
		}
		if !reflect.DeepEqual(r1.Preference(key), r2.Preference(key)) {
			t.Fatalf("key %q: preference differs by construction order", key)
		}
	}
}

// TestRingPreference checks the preference list is a permutation of all
// nodes starting at the owner.
func TestRingPreference(t *testing.T) {
	nodes := []string{"n1", "n2", "n3", "n4", "n5"}
	r, err := NewRing(nodes)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("key-%d", i)
		prefs := r.Preference(key)
		if len(prefs) != len(nodes) {
			t.Fatalf("key %q: preference %v does not cover all nodes", key, prefs)
		}
		if prefs[0] != r.Owner(key) {
			t.Fatalf("key %q: preference head %s != owner %s", key, prefs[0], r.Owner(key))
		}
		seen := map[string]bool{}
		for _, id := range prefs {
			if seen[id] {
				t.Fatalf("key %q: duplicate %s in preference %v", key, id, prefs)
			}
			seen[id] = true
		}
	}
}

// TestRingBalance checks vnodes spread keys roughly evenly: no node of three
// should own more than half or under a tenth of 10k keys.
func TestRingBalance(t *testing.T) {
	r, err := NewRing([]string{"n1", "n2", "n3"})
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	const total = 10_000
	for i := 0; i < total; i++ {
		counts[r.Owner(fmt.Sprintf("key-%d", i))]++
	}
	for id, c := range counts {
		if c > total/2 || c < total/10 {
			t.Fatalf("node %s owns %d of %d keys; distribution %v", id, c, total, counts)
		}
	}
}

// TestRingStability checks removing a node only moves that node's keys:
// every key owned by a survivor keeps its owner.
func TestRingStability(t *testing.T) {
	full, err := NewRing([]string{"n1", "n2", "n3"})
	if err != nil {
		t.Fatal(err)
	}
	reduced, err := NewRing([]string{"n1", "n3"})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("key-%d", i)
		if o := full.Owner(key); o != "n2" && reduced.Owner(key) != o {
			t.Fatalf("key %q moved from %s to %s though its owner survived", key, o, reduced.Owner(key))
		}
	}
}
