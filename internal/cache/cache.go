// Package cache implements the set-associative caches used for the per-SM L1
// and the per-partition L2 slices, including MSHR-based miss tracking, and
// the sampled auxiliary tag directory (ATD) that DASE and ASM use to detect
// contention-induced shared-cache misses (paper §4.2, "Cache Interference").
package cache

import (
	"dasesim/internal/config"
	"dasesim/internal/memreq"
)

// AccessResult describes the outcome of a cache access.
type AccessResult int

const (
	// Hit means the line was present.
	Hit AccessResult = iota
	// Miss means the line was absent and an MSHR was allocated; the caller
	// must forward a fill request downstream.
	Miss
	// MergedMiss means the line was absent but a fill for it is already in
	// flight; the access was queued on the existing MSHR.
	MergedMiss
	// Blocked means no MSHR (or merge slot) was available; the caller must
	// retry later. The cache state is unchanged.
	Blocked
)

func (r AccessResult) String() string {
	switch r {
	case Hit:
		return "hit"
	case Miss:
		return "miss"
	case MergedMiss:
		return "merged-miss"
	default:
		return "blocked"
	}
}

type line struct {
	tag   uint64
	valid bool
	dirty bool
	owner memreq.AppID // app that brought the line in (replacement stats)
	lru   uint64       // last-touch stamp; higher = more recent
}

type mshr struct {
	tag    uint64
	valid  bool
	merged int // accesses waiting on this fill, beyond the first
}

// Stats aggregates cache activity. Counters are cumulative; callers snapshot
// and subtract for per-interval numbers.
type Stats struct {
	Accesses   uint64
	Hits       uint64
	Misses     uint64 // demand misses that allocated an MSHR
	Merged     uint64
	Blockings  uint64
	Evictions  uint64
	Writebacks uint64 // dirty evictions (writeback mode only)
}

// Cache is a blocking-free set-associative cache with LRU replacement and a
// fixed pool of MSHRs. It tracks tags only (no data), which is all a timing
// model needs.
type Cache struct {
	cfg   config.CacheConfig
	sets  int
	lines []line // sets*assoc, row-major by set
	mshrs []mshr
	stamp uint64

	// Stats is indexed by app; index len-1 aggregates all apps when the
	// cache is shared. Callers size it via NewCache's numApps.
	stats []Stats
}

// NewCache builds a cache sized by cfg, keeping per-app statistics for
// numApps applications.
func NewCache(cfg config.CacheConfig, numApps int) *Cache {
	c := &Cache{
		cfg:   cfg,
		sets:  cfg.Sets(),
		lines: make([]line, cfg.Sets()*cfg.Assoc),
		mshrs: make([]mshr, cfg.MSHRs),
		stats: make([]Stats, numApps),
	}
	return c
}

// Sets returns the number of cache sets.
func (c *Cache) Sets() int { return c.sets }

// Stats returns a copy of the statistics for app.
func (c *Cache) Stats(app memreq.AppID) Stats { return c.stats[app] }

func (c *Cache) setSlice(set int) []line {
	base := set * c.cfg.Assoc
	return c.lines[base : base+c.cfg.Assoc]
}

// Access performs a demand access for the line containing addr on behalf of
// app; set is the caller-computed set index (callers share an AddrMap so the
// L2 slice and its ATD see identical indices). On Miss the line is NOT yet
// installed — the caller installs it via Fill when the downstream reply
// arrives.
func (c *Cache) Access(app memreq.AppID, set int, addr uint64) AccessResult {
	return c.AccessRW(app, set, addr, false)
}

// AccessRW is Access with a store flag: when the cache is configured for
// writeback, a store hit marks the line dirty.
func (c *Cache) AccessRW(app memreq.AppID, set int, addr uint64, write bool) AccessResult {
	c.stamp++
	tag := addr
	st := &c.stats[app]
	st.Accesses++
	ways := c.setSlice(set)
	for i := range ways {
		if ways[i].valid && ways[i].tag == tag {
			ways[i].lru = c.stamp
			if write && c.cfg.Writeback {
				ways[i].dirty = true
			}
			st.Hits++
			return Hit
		}
	}
	// Miss path: find or allocate an MSHR.
	var free *mshr
	for i := range c.mshrs {
		m := &c.mshrs[i]
		if m.valid && m.tag == tag {
			if m.merged >= c.cfg.MSHRMerge {
				st.Blockings++
				return Blocked
			}
			m.merged++
			st.Merged++
			return MergedMiss
		}
		if !m.valid && free == nil {
			free = m
		}
	}
	if free == nil {
		st.Blockings++
		return Blocked
	}
	free.valid = true
	free.tag = tag
	free.merged = 0
	st.Misses++
	return Miss
}

// Probe reports whether the line is present without updating LRU or stats.
func (c *Cache) Probe(set int, addr uint64) bool {
	ways := c.setSlice(set)
	for i := range ways {
		if ways[i].valid && ways[i].tag == addr {
			return true
		}
	}
	return false
}

// Fill installs the line for app after its downstream fill returned, freeing
// the MSHR. It returns the number of accesses that were merged on the MSHR
// (waiters to wake beyond the original miss) and the previous owner of the
// evicted line (InvalidApp if no valid line was evicted).
func (c *Cache) Fill(app memreq.AppID, set int, addr uint64) (merged int, evicted memreq.AppID) {
	merged, evicted, _ = c.FillRW(app, set, addr, false)
	return merged, evicted
}

// FillRW is Fill with a store flag (the fill completes a write miss, so the
// installed line is dirty under writeback) and a write-back report: when a
// dirty line is evicted, wb carries its address and wb.Valid is true — the
// caller must emit the write-back transaction downstream.
func (c *Cache) FillRW(app memreq.AppID, set int, addr uint64, write bool) (merged int, evicted memreq.AppID, wb Writeback) {
	c.stamp++
	tag := addr
	for i := range c.mshrs {
		m := &c.mshrs[i]
		if m.valid && m.tag == tag {
			merged = m.merged
			m.valid = false
			break
		}
	}
	evicted = memreq.InvalidApp
	ways := c.setSlice(set)
	victim := 0
	var oldest uint64 = ^uint64(0)
	for i := range ways {
		if !ways[i].valid {
			victim = i
			oldest = 0
			break
		}
		if ways[i].lru < oldest {
			oldest = ways[i].lru
			victim = i
		}
	}
	v := &ways[victim]
	if v.valid {
		evicted = v.owner
		c.stats[app].Evictions++
		if v.dirty && c.cfg.Writeback {
			wb = Writeback{Valid: true, Addr: v.tag, Owner: v.owner}
			c.stats[app].Writebacks++
		}
	}
	v.valid = true
	v.tag = tag
	v.owner = app
	v.lru = c.stamp
	v.dirty = write && c.cfg.Writeback
	return merged, evicted, wb
}

// Writeback describes a dirty line evicted by a Fill.
type Writeback struct {
	Valid bool
	Addr  uint64
	Owner memreq.AppID
}

// MSHRsInUse reports how many MSHRs are currently allocated.
func (c *Cache) MSHRsInUse() int {
	n := 0
	for i := range c.mshrs {
		if c.mshrs[i].valid {
			n++
		}
	}
	return n
}

// Reset invalidates all lines, MSHRs and statistics.
func (c *Cache) Reset() {
	for i := range c.lines {
		c.lines[i] = line{}
	}
	for i := range c.mshrs {
		c.mshrs[i] = mshr{}
	}
	for i := range c.stats {
		c.stats[i] = Stats{}
	}
}
