// Package cache implements the set-associative caches used for the per-SM L1
// and the per-partition L2 slices, including MSHR-based miss tracking, and
// the sampled auxiliary tag directory (ATD) that DASE and ASM use to detect
// contention-induced shared-cache misses (paper §4.2, "Cache Interference").
package cache

import (
	"fmt"

	"dasesim/internal/config"
	"dasesim/internal/memreq"
)

// AccessResult describes the outcome of a cache access.
type AccessResult int

const (
	// Hit means the line was present.
	Hit AccessResult = iota
	// Miss means the line was absent and an MSHR was allocated; the caller
	// must forward a fill request downstream.
	Miss
	// MergedMiss means the line was absent but a fill for it is already in
	// flight; the access was queued on the existing MSHR.
	MergedMiss
	// Blocked means no MSHR (or merge slot) was available; the caller must
	// retry later. The cache state is unchanged.
	Blocked
)

func (r AccessResult) String() string {
	switch r {
	case Hit:
		return "hit"
	case Miss:
		return "miss"
	case MergedMiss:
		return "merged-miss"
	default:
		return "blocked"
	}
}

type line struct {
	tag   uint64
	valid bool
	dirty bool
	owner memreq.AppID // app that brought the line in (replacement stats)
	lru   uint64       // last-touch stamp; higher = more recent
}

type mshr struct {
	tag    uint64
	valid  bool
	merged int // accesses waiting on this fill, beyond the first
}

// mshrIndex is an open-addressed hash table mapping in-flight miss line
// addresses to MSHR slots. Capacity is fixed at construction (at least twice
// the MSHR count, so load factor stays below 1/2) and collisions are resolved
// by linear probing with backward-shift deletion — no tombstones, so probe
// chains never degrade no matter how many fills complete. It replaces both
// the per-miss linear scan over every MSHR and the per-line map the callers
// used for wake lists.
type mshrIndex struct {
	keys  []uint64
	slots []int32 // MSHR slot, or -1 for an empty table entry
	mask  uint64
	shift uint
}

func newMSHRIndex(entries int) mshrIndex {
	size := 8
	for size < 2*entries {
		size <<= 1
	}
	ix := mshrIndex{
		keys:  make([]uint64, size),
		slots: make([]int32, size),
		mask:  uint64(size - 1),
	}
	for s := size; s > 1; s >>= 1 {
		ix.shift++
	}
	ix.shift = 64 - ix.shift
	for i := range ix.slots {
		ix.slots[i] = -1
	}
	return ix
}

// home is the preferred table position for an address (Fibonacci hashing:
// line addresses are highly regular, the multiply spreads them).
func (ix *mshrIndex) home(addr uint64) uint64 {
	return (addr * 0x9e3779b97f4a7c15) >> ix.shift
}

// get returns the MSHR slot registered for addr, or -1.
func (ix *mshrIndex) get(addr uint64) int32 {
	i := ix.home(addr)
	for ix.slots[i] >= 0 {
		if ix.keys[i] == addr {
			return ix.slots[i]
		}
		i = (i + 1) & ix.mask
	}
	return -1
}

// put registers addr -> slot. addr must not already be present, and the
// caller guarantees fewer live entries than MSHRs, so a free cell exists.
func (ix *mshrIndex) put(addr uint64, slot int32) {
	i := ix.home(addr)
	for ix.slots[i] >= 0 {
		i = (i + 1) & ix.mask
	}
	ix.keys[i] = addr
	ix.slots[i] = slot
}

// del removes addr, closing the probe-chain gap by shifting later entries
// back so lookups never need tombstones.
func (ix *mshrIndex) del(addr uint64) {
	i := ix.home(addr)
	for {
		if ix.slots[i] < 0 {
			return // not present
		}
		if ix.keys[i] == addr {
			break
		}
		i = (i + 1) & ix.mask
	}
	j := i
	for {
		j = (j + 1) & ix.mask
		if ix.slots[j] < 0 {
			break
		}
		h := ix.home(ix.keys[j])
		// Entry j may fill the hole at i only if its home position is not
		// cyclically inside (i, j] — otherwise moving it would break the
		// probe chain that leads to it.
		if (j > i && (h <= i || h > j)) || (j < i && (h <= i && h > j)) {
			ix.keys[i] = ix.keys[j]
			ix.slots[i] = ix.slots[j]
			i = j
		}
	}
	ix.slots[i] = -1
}

// reset empties the table.
func (ix *mshrIndex) reset() {
	for i := range ix.slots {
		ix.slots[i] = -1
	}
}

// Stats aggregates cache activity. Counters are cumulative; callers snapshot
// and subtract for per-interval numbers.
type Stats struct {
	Accesses   uint64
	Hits       uint64
	Misses     uint64 // demand misses that allocated an MSHR
	Merged     uint64
	Blockings  uint64
	Evictions  uint64
	Writebacks uint64 // dirty evictions (writeback mode only)
}

// Cache is a blocking-free set-associative cache with LRU replacement and a
// fixed pool of MSHRs. It tracks tags only (no data), which is all a timing
// model needs.
type Cache struct {
	cfg   config.CacheConfig
	sets  int
	lines []line // sets*assoc, row-major by set
	mshrs []mshr
	index mshrIndex // in-flight miss address -> MSHR slot
	free  []int32   // free MSHR slots (LIFO)
	stamp uint64

	// Stats is indexed by app; index len-1 aggregates all apps when the
	// cache is shared. Callers size it via NewCache's numApps.
	stats []Stats
}

// NewCache builds a cache sized by cfg, keeping per-app statistics for
// numApps applications.
func NewCache(cfg config.CacheConfig, numApps int) *Cache {
	c := &Cache{
		cfg:   cfg,
		sets:  cfg.Sets(),
		lines: make([]line, cfg.Sets()*cfg.Assoc),
		mshrs: make([]mshr, cfg.MSHRs),
		index: newMSHRIndex(cfg.MSHRs),
		free:  make([]int32, 0, cfg.MSHRs),
		stats: make([]Stats, numApps),
	}
	c.resetFreeSlots()
	return c
}

// resetFreeSlots rebuilds the free stack so slots are handed out in
// ascending order from an empty cache (pop from the top of the stack).
func (c *Cache) resetFreeSlots() {
	c.free = c.free[:0]
	for i := c.cfg.MSHRs - 1; i >= 0; i-- {
		c.free = append(c.free, int32(i))
	}
}

// Sets returns the number of cache sets.
func (c *Cache) Sets() int { return c.sets }

// Stats returns a copy of the statistics for app.
func (c *Cache) Stats(app memreq.AppID) Stats { return c.stats[app] }

func (c *Cache) setSlice(set int) []line {
	base := set * c.cfg.Assoc
	return c.lines[base : base+c.cfg.Assoc]
}

// Access performs a demand access for the line containing addr on behalf of
// app; set is the caller-computed set index (callers share an AddrMap so the
// L2 slice and its ATD see identical indices). On Miss the line is NOT yet
// installed — the caller installs it via Fill when the downstream reply
// arrives.
func (c *Cache) Access(app memreq.AppID, set int, addr uint64) AccessResult {
	return c.AccessRW(app, set, addr, false)
}

// AccessRW is Access with a store flag: when the cache is configured for
// writeback, a store hit marks the line dirty.
func (c *Cache) AccessRW(app memreq.AppID, set int, addr uint64, write bool) AccessResult {
	res, _ := c.AccessIdx(app, set, addr, write)
	return res
}

// AccessIdx is AccessRW that additionally returns the MSHR slot involved: the
// allocated slot on Miss, the merged-onto slot on MergedMiss, and -1 for Hit
// and Blocked. Callers use the slot to index their own waiter lists, which is
// what makes the miss path map-free.
func (c *Cache) AccessIdx(app memreq.AppID, set int, addr uint64, write bool) (AccessResult, int) {
	c.stamp++
	tag := addr
	st := &c.stats[app]
	st.Accesses++
	ways := c.setSlice(set)
	for i := range ways {
		if ways[i].valid && ways[i].tag == tag {
			ways[i].lru = c.stamp
			if write && c.cfg.Writeback {
				ways[i].dirty = true
			}
			st.Hits++
			return Hit, -1
		}
	}
	// Miss path: find or allocate an MSHR through the open-addressed index.
	if slot := c.index.get(tag); slot >= 0 {
		m := &c.mshrs[slot]
		if m.merged >= c.cfg.MSHRMerge {
			st.Blockings++
			return Blocked, -1
		}
		m.merged++
		st.Merged++
		return MergedMiss, int(slot)
	}
	if len(c.free) == 0 {
		st.Blockings++
		return Blocked, -1
	}
	slot := c.free[len(c.free)-1]
	c.free = c.free[:len(c.free)-1]
	m := &c.mshrs[slot]
	m.valid = true
	m.tag = tag
	m.merged = 0
	c.index.put(tag, slot)
	st.Misses++
	return Miss, int(slot)
}

// Probe reports whether the line is present without updating LRU or stats.
func (c *Cache) Probe(set int, addr uint64) bool {
	ways := c.setSlice(set)
	for i := range ways {
		if ways[i].valid && ways[i].tag == addr {
			return true
		}
	}
	return false
}

// Fill installs the line for app after its downstream fill returned, freeing
// the MSHR. It returns the number of accesses that were merged on the MSHR
// (waiters to wake beyond the original miss) and the previous owner of the
// evicted line (InvalidApp if no valid line was evicted).
func (c *Cache) Fill(app memreq.AppID, set int, addr uint64) (merged int, evicted memreq.AppID) {
	merged, evicted, _ = c.FillRW(app, set, addr, false)
	return merged, evicted
}

// FillRW is Fill with a store flag (the fill completes a write miss, so the
// installed line is dirty under writeback) and a write-back report: when a
// dirty line is evicted, wb carries its address and wb.Valid is true — the
// caller must emit the write-back transaction downstream.
func (c *Cache) FillRW(app memreq.AppID, set int, addr uint64, write bool) (merged int, evicted memreq.AppID, wb Writeback) {
	merged, evicted, wb, _ = c.FillIdx(app, set, addr, write)
	return merged, evicted, wb
}

// FillIdx is FillRW that additionally returns the MSHR slot the fill freed
// (-1 when no MSHR was registered for the address), so callers can drain and
// recycle the waiter list they indexed by that slot.
func (c *Cache) FillIdx(app memreq.AppID, set int, addr uint64, write bool) (merged int, evicted memreq.AppID, wb Writeback, slot int) {
	c.stamp++
	tag := addr
	slot = -1
	if s := c.index.get(tag); s >= 0 {
		m := &c.mshrs[s]
		merged = m.merged
		m.valid = false
		c.index.del(tag)
		c.free = append(c.free, s)
		slot = int(s)
	}
	evicted = memreq.InvalidApp
	ways := c.setSlice(set)
	victim := 0
	var oldest uint64 = ^uint64(0)
	for i := range ways {
		if !ways[i].valid {
			victim = i
			oldest = 0
			break
		}
		if ways[i].lru < oldest {
			oldest = ways[i].lru
			victim = i
		}
	}
	v := &ways[victim]
	if v.valid {
		evicted = v.owner
		c.stats[app].Evictions++
		if v.dirty && c.cfg.Writeback {
			wb = Writeback{Valid: true, Addr: v.tag, Owner: v.owner}
			c.stats[app].Writebacks++
		}
	}
	v.valid = true
	v.tag = tag
	v.owner = app
	v.lru = c.stamp
	v.dirty = write && c.cfg.Writeback
	return merged, evicted, wb, slot
}

// Writeback describes a dirty line evicted by a Fill.
type Writeback struct {
	Valid bool
	Addr  uint64
	Owner memreq.AppID
}

// MSHRSlot returns the MSHR slot tracking an in-flight miss of addr, or -1.
// Callers that keep per-slot waiter state use it to inspect the waiters
// before a Fill retires the slot.
func (c *Cache) MSHRSlot(addr uint64) int { return int(c.index.get(addr)) }

// MSHRsInUse reports how many MSHRs are currently allocated.
func (c *Cache) MSHRsInUse() int { return c.cfg.MSHRs - len(c.free) }

// MSHRAddr returns the miss address tracked by an MSHR slot, and whether the
// slot is currently allocated. Callers that keep per-slot waiter lists use it
// to cross-check their lists against the cache's view.
func (c *Cache) MSHRAddr(slot int) (uint64, bool) {
	if slot < 0 || slot >= len(c.mshrs) || !c.mshrs[slot].valid {
		return 0, false
	}
	return c.mshrs[slot].tag, true
}

// MSHRMerged returns how many accesses are merged on an allocated slot beyond
// the original miss (0 for free slots).
func (c *Cache) MSHRMerged(slot int) int {
	if slot < 0 || slot >= len(c.mshrs) || !c.mshrs[slot].valid {
		return 0
	}
	return c.mshrs[slot].merged
}

// CheckInvariants verifies the agreement between the three MSHR views — the
// mshr array, the open-addressed address index, and the free-slot stack:
//
//   - every index entry points at an allocated MSHR whose tag matches the key,
//     and no slot is indexed twice;
//   - every key is reachable through the probe sequence (get finds it), so
//     backward-shift deletion never broke a chain;
//   - every allocated MSHR is indexed, every free-stack slot is unallocated,
//     each slot is exactly one of the two, and the counts add up.
//
// It is O(MSHRs + table size) and mutates nothing; the simulator's invariant
// checker calls it periodically when enabled.
func (c *Cache) CheckInvariants() error {
	indexed := make(map[int32]uint64, len(c.mshrs))
	entries := 0
	for i := range c.index.slots {
		slot := c.index.slots[i]
		if slot < 0 {
			continue
		}
		entries++
		key := c.index.keys[i]
		if int(slot) >= len(c.mshrs) {
			return fmt.Errorf("cache: index entry %#x -> slot %d out of range", key, slot)
		}
		m := &c.mshrs[slot]
		if !m.valid {
			return fmt.Errorf("cache: index entry %#x -> slot %d which is not allocated", key, slot)
		}
		if m.tag != key {
			return fmt.Errorf("cache: index entry %#x -> slot %d holding tag %#x", key, slot, m.tag)
		}
		if prev, dup := indexed[slot]; dup {
			return fmt.Errorf("cache: slot %d indexed twice (%#x and %#x)", slot, prev, key)
		}
		indexed[slot] = key
		if got := c.index.get(key); got != slot {
			return fmt.Errorf("cache: probe chain broken: get(%#x)=%d, table holds slot %d", key, got, slot)
		}
	}
	free := make(map[int32]bool, len(c.free))
	for _, s := range c.free {
		if int(s) >= len(c.mshrs) || s < 0 {
			return fmt.Errorf("cache: free stack holds out-of-range slot %d", s)
		}
		if free[s] {
			return fmt.Errorf("cache: slot %d on the free stack twice", s)
		}
		free[s] = true
		if c.mshrs[s].valid {
			return fmt.Errorf("cache: slot %d both free and allocated", s)
		}
	}
	allocated := 0
	for s := range c.mshrs {
		m := &c.mshrs[s]
		switch {
		case m.valid:
			allocated++
			if _, ok := indexed[int32(s)]; !ok {
				return fmt.Errorf("cache: allocated slot %d (tag %#x) missing from the index", s, m.tag)
			}
		case !free[int32(s)]:
			return fmt.Errorf("cache: slot %d neither allocated nor on the free stack", s)
		}
	}
	if entries != allocated {
		return fmt.Errorf("cache: %d index entries for %d allocated MSHRs", entries, allocated)
	}
	if allocated+len(c.free) != c.cfg.MSHRs {
		return fmt.Errorf("cache: %d allocated + %d free != %d MSHRs", allocated, len(c.free), c.cfg.MSHRs)
	}
	return nil
}

// Reset invalidates all lines, MSHRs and statistics.
func (c *Cache) Reset() {
	for i := range c.lines {
		c.lines[i] = line{}
	}
	for i := range c.mshrs {
		c.mshrs[i] = mshr{}
	}
	c.index.reset()
	c.resetFreeSlots()
	for i := range c.stats {
		c.stats[i] = Stats{}
	}
}
