package cache

import (
	"testing"
	"testing/quick"

	"dasesim/internal/config"
	"dasesim/internal/memreq"
)

func smallCache() *Cache {
	return NewCache(config.CacheConfig{
		SizeBytes: 4 * 128 * 4, // 4 sets, 4-way
		Assoc:     4,
		LineBytes: 128,
		MSHRs:     4,
		MSHRMerge: 2,
	}, 2)
}

func TestMissThenFillThenHit(t *testing.T) {
	c := smallCache()
	if res := c.Access(0, 1, 0x1000); res != Miss {
		t.Fatalf("cold access = %v, want miss", res)
	}
	merged, evicted := c.Fill(0, 1, 0x1000)
	if merged != 0 || evicted != memreq.InvalidApp {
		t.Fatalf("fill: merged=%d evicted=%v", merged, evicted)
	}
	if res := c.Access(0, 1, 0x1000); res != Hit {
		t.Fatalf("post-fill access = %v, want hit", res)
	}
	st := c.Stats(0)
	if st.Hits != 1 || st.Misses != 1 || st.Accesses != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestMSHRMergeAndBlock(t *testing.T) {
	c := smallCache()
	if c.Access(0, 0, 0x2000) != Miss {
		t.Fatal("want miss")
	}
	if c.Access(0, 0, 0x2000) != MergedMiss {
		t.Fatal("want merged miss")
	}
	if c.Access(0, 0, 0x2000) != MergedMiss {
		t.Fatal("want second merged miss")
	}
	// Merge limit (2) reached.
	if c.Access(0, 0, 0x2000) != Blocked {
		t.Fatal("want blocked at merge limit")
	}
	merged, _ := c.Fill(0, 0, 0x2000)
	if merged != 2 {
		t.Fatalf("fill released %d merged, want 2", merged)
	}
	if c.MSHRsInUse() != 0 {
		t.Fatalf("MSHRs still in use: %d", c.MSHRsInUse())
	}
}

func TestMSHRExhaustion(t *testing.T) {
	c := smallCache()
	addrs := []uint64{0x1000, 0x2000, 0x3000, 0x4000}
	for _, a := range addrs {
		if c.Access(0, 0, a) != Miss {
			t.Fatalf("access %#x: want miss", a)
		}
	}
	if c.Access(0, 0, 0x5000) != Blocked {
		t.Fatal("want blocked when all MSHRs allocated")
	}
	c.Fill(0, 0, addrs[0])
	if c.Access(0, 0, 0x5000) != Miss {
		t.Fatal("want miss after an MSHR freed")
	}
}

func TestLRUEviction(t *testing.T) {
	c := smallCache()
	// Fill set 2 with 4 lines, touching them in order.
	for i := 0; i < 4; i++ {
		addr := uint64(0x10000 + i*0x1000)
		c.Access(0, 2, addr)
		c.Fill(0, 2, addr)
	}
	// Touch line 0 to refresh it; line 1 becomes LRU.
	if c.Access(0, 2, 0x10000) != Hit {
		t.Fatal("line 0 should hit")
	}
	// New fill must evict line 1 (the LRU), owned by app 0.
	c.Access(0, 2, 0x20000)
	_, evicted := c.Fill(1, 2, 0x20000)
	if evicted != 0 {
		t.Fatalf("evicted owner = %v, want app 0", evicted)
	}
	if c.Access(0, 2, 0x10000) != Hit {
		t.Fatal("refreshed line 0 must survive")
	}
	if res := c.Access(0, 2, 0x11000); res == Hit {
		t.Fatal("LRU line 1 should have been evicted")
	}
}

func TestProbeDoesNotTouch(t *testing.T) {
	c := smallCache()
	c.Access(0, 3, 0x7000)
	c.Fill(0, 3, 0x7000)
	before := c.Stats(0)
	if !c.Probe(3, 0x7000) {
		t.Fatal("probe should find the line")
	}
	if c.Probe(3, 0x8000) {
		t.Fatal("probe should miss an absent line")
	}
	if c.Stats(0) != before {
		t.Fatal("probe changed statistics")
	}
}

func TestReset(t *testing.T) {
	c := smallCache()
	c.Access(0, 0, 0x1000)
	c.Fill(0, 0, 0x1000)
	c.Reset()
	if c.Stats(0).Accesses != 0 {
		t.Fatal("stats survived reset")
	}
	if c.Access(0, 0, 0x1000) != Miss {
		t.Fatal("line survived reset")
	}
}

// TestSetOccupancyProperty: a set never holds more valid distinct tags than
// its associativity, no matter the access pattern.
func TestSetOccupancyProperty(t *testing.T) {
	f := func(addrs []uint16) bool {
		c := smallCache()
		live := map[uint64]bool{}
		for _, a := range addrs {
			addr := uint64(a) * 128
			if c.Access(0, 0, addr) == Miss {
				c.Fill(0, 0, addr)
				live[addr] = true
			}
		}
		// Count how many of the touched lines are still present.
		present := 0
		for addr := range live {
			if c.Probe(0, addr) {
				present++
			}
		}
		return present <= 4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestATDContentionDetection(t *testing.T) {
	// ATD shadowing a 8-set cache, sampling all 8 sets, 2-way.
	atd := NewATD(8, 2, 8)
	if atd.SampleFraction() != 1 {
		t.Fatalf("full sampling fraction = %v", atd.SampleFraction())
	}
	// App touches a line; ATD installs it.
	if atd.Access(0, 0x1000, true) {
		t.Fatal("first access cannot be a contention miss")
	}
	// Second access, shared cache hit: no contention.
	if atd.Access(0, 0x1000, false) {
		t.Fatal("shared hit is never a contention miss")
	}
	// Third access, shared cache MISS but ATD hit: the line was evicted by
	// another app -> contention miss.
	if !atd.Access(0, 0x1000, true) {
		t.Fatal("shared miss with ATD hit must be a contention miss")
	}
	if atd.SampleMisses != 1 {
		t.Fatalf("SampleMisses = %d", atd.SampleMisses)
	}
	if atd.ExtraMisses() != 1 {
		t.Fatalf("ExtraMisses = %v", atd.ExtraMisses())
	}
}

func TestATDSampling(t *testing.T) {
	// 64 sets, sample 8: stride 8, only sets 0,8,16,... observed.
	atd := NewATD(64, 4, 8)
	if got := atd.SampleFraction(); got != 0.125 {
		t.Fatalf("SampleFraction = %v, want 0.125", got)
	}
	if atd.Access(1, 0xAA000, true) {
		t.Fatal("unsampled set must never report contention")
	}
	if atd.SampleAccesses != 0 {
		t.Fatal("unsampled set counted as sampled")
	}
	atd.Access(0, 0xBB000, true) // set 0 is sampled
	if atd.SampleAccesses != 1 {
		t.Fatalf("SampleAccesses = %d, want 1", atd.SampleAccesses)
	}
	// A contention miss in a sampled set scales by 1/fraction.
	atd.Access(0, 0xBB000, true)
	if atd.ExtraMisses() != 8 {
		t.Fatalf("ExtraMisses = %v, want 8 (1 sampled / 0.125)", atd.ExtraMisses())
	}
}

func TestATDLRUWithinSet(t *testing.T) {
	atd := NewATD(8, 2, 8)
	atd.Access(0, 0x1000, true) // install A
	atd.Access(0, 0x2000, true) // install B (same set 0? depends on caller's set arg)
	// Third distinct line in set 0 evicts the LRU (A).
	atd.Access(0, 0x3000, true)
	// A was evicted from the ATD too, so a shared miss on A is NOT
	// contention (the app's own footprint overflows the set).
	if atd.Access(0, 0x1000, true) {
		t.Fatal("self-eviction must not count as contention")
	}
	// B... was evicted by the A reinstall; C is still resident.
	if !atd.Access(0, 0x3000, true) {
		t.Fatal("resident line with shared miss must be contention")
	}
}

func TestATDResetCounters(t *testing.T) {
	atd := NewATD(8, 2, 8)
	atd.Access(0, 0x1000, true)
	atd.Access(0, 0x1000, true)
	if atd.SampleMisses != 1 {
		t.Fatal("setup failed")
	}
	atd.ResetCounters()
	if atd.SampleMisses != 0 || atd.SampleAccesses != 0 {
		t.Fatal("counters survived reset")
	}
	// Tag state must survive: another shared miss is still contention.
	if !atd.Access(0, 0x1000, true) {
		t.Fatal("ATD tags must survive ResetCounters")
	}
	atd.Reset()
	if atd.Access(0, 0x1000, true) {
		t.Fatal("ATD tags must be cleared by Reset")
	}
}
