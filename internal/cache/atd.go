package cache

import "dasesim/internal/memreq"

// ATD is a per-application auxiliary tag directory (Qureshi & Patt, MICRO'06)
// with set sampling, as used by DASE and ASM to detect contention cache
// misses in the shared L2: the ATD has the same associativity and LRU policy
// as the L2 slice but is touched only by one application's accesses, so it
// tracks what the cache contents would be if the application ran alone. When
// the shared L2 misses but the ATD hits, the line was evicted by another
// application — an "extra LLC miss" (paper §4.2, Eq. 13).
type ATD struct {
	assoc       int
	stride      int // sample every stride-th set of the underlying cache
	sampledSets int
	tags        []line // sampledSets*assoc
	stamp       uint64

	// SampleMisses counts shared-cache misses that hit in the ATD, over
	// sampled sets only (the SampleMiss counter of Eq. 13).
	SampleMisses uint64
	// SampleAccesses counts accesses that fell in sampled sets.
	SampleAccesses uint64
}

// NewATD builds an ATD shadowing a cache with totalSets sets and the given
// associativity, sampling sampledSets of them evenly.
func NewATD(totalSets, assoc, sampledSets int) *ATD {
	if sampledSets > totalSets {
		sampledSets = totalSets
	}
	return &ATD{
		assoc:       assoc,
		stride:      totalSets / sampledSets,
		sampledSets: sampledSets,
		tags:        make([]line, sampledSets*assoc),
	}
}

// SampleFraction returns the fraction of cache sets that are sampled
// (SampleFraction of Eq. 13).
func (a *ATD) SampleFraction() float64 {
	return 1 / float64(a.stride)
}

// sampleIndex maps an underlying cache set to the local sampled-set index,
// or -1 if the set is not sampled.
func (a *ATD) sampleIndex(set int) int {
	if set%a.stride != 0 {
		return -1
	}
	idx := set / a.stride
	if idx >= a.sampledSets {
		return -1
	}
	return idx
}

// Access mirrors one application access to the shared cache. set is the
// underlying cache's set index for addr; sharedMiss says whether the shared
// cache missed. It returns true when a contention miss is detected (shared
// miss, ATD hit). The ATD is updated (LRU touch or fill) regardless.
func (a *ATD) Access(set int, addr uint64, sharedMiss bool) bool {
	idx := a.sampleIndex(set)
	if idx < 0 {
		return false
	}
	a.stamp++
	a.SampleAccesses++
	ways := a.tags[idx*a.assoc : (idx+1)*a.assoc]
	for i := range ways {
		if ways[i].valid && ways[i].tag == addr {
			ways[i].lru = a.stamp
			if sharedMiss {
				a.SampleMisses++
				return true
			}
			return false
		}
	}
	// ATD miss: install with LRU replacement. The application would have
	// missed even alone, so this is not a contention miss.
	victim := 0
	var oldest uint64 = ^uint64(0)
	for i := range ways {
		if !ways[i].valid {
			victim = i
			oldest = 0
			break
		}
		if ways[i].lru < oldest {
			oldest = ways[i].lru
			victim = i
		}
	}
	ways[victim] = line{tag: addr, valid: true, lru: a.stamp, owner: memreq.InvalidApp}
	return false
}

// ExtraMisses scales the sampled contention-miss count up to the whole cache
// (Eq. 13: ELLCMiss = SampleMiss / SampleFraction).
func (a *ATD) ExtraMisses() float64 {
	return float64(a.SampleMisses) / a.SampleFraction()
}

// ResetCounters clears the interval counters but keeps the tag state (the
// ATD must stay warm across intervals, mirroring the hardware).
func (a *ATD) ResetCounters() {
	a.SampleMisses = 0
	a.SampleAccesses = 0
}

// Reset clears tags and counters.
func (a *ATD) Reset() {
	for i := range a.tags {
		a.tags[i] = line{}
	}
	a.ResetCounters()
}
