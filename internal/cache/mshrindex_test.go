package cache

import (
	"math/rand"
	"testing"
)

// TestMSHRIndexChurn hammers the open-addressed index with a seeded
// insert/delete/lookup churn, mirroring every operation into a Go map and
// requiring identical answers. Backward-shift deletion is the part worth
// distrusting: a broken shift silently orphans entries whose probe chain
// passed through the deleted cell.
func TestMSHRIndexChurn(t *testing.T) {
	const entries = 192 // the default L2 slice's MSHR count
	ix := newMSHRIndex(entries)
	ref := map[uint64]int32{}
	rng := rand.New(rand.NewSource(42))

	// Line-aligned addresses drawn from a small pool force heavy collision
	// and re-insertion of previously deleted keys.
	addrPool := make([]uint64, 512)
	for i := range addrPool {
		addrPool[i] = uint64(rng.Intn(1<<20)) << 7
	}

	for step := 0; step < 200_000; step++ {
		addr := addrPool[rng.Intn(len(addrPool))]
		switch {
		case rng.Intn(3) != 0 && len(ref) < entries:
			if _, ok := ref[addr]; !ok {
				slot := int32(len(ref))
				ix.put(addr, slot)
				ref[addr] = slot
			}
		default:
			if _, ok := ref[addr]; ok {
				ix.del(addr)
				delete(ref, addr)
			}
		}
		// Spot-check a few keys per step (every key every step is O(n^2)).
		for k := 0; k < 4; k++ {
			probe := addrPool[rng.Intn(len(addrPool))]
			want, ok := ref[probe]
			got := ix.get(probe)
			if !ok && got != -1 {
				t.Fatalf("step %d: get(%#x) = %d, want absent", step, probe, got)
			}
			if ok && got != want {
				t.Fatalf("step %d: get(%#x) = %d, want %d", step, probe, got, want)
			}
		}
	}

	// Final full verification.
	for addr, want := range ref {
		if got := ix.get(addr); got != want {
			t.Fatalf("final: get(%#x) = %d, want %d", addr, got, want)
		}
	}
}

// TestMSHRIndexFullCapacity fills the index to its entry bound, deletes
// everything, and refills — probing must still terminate and find all keys.
func TestMSHRIndexFullCapacity(t *testing.T) {
	const entries = 32
	ix := newMSHRIndex(entries)
	for round := 0; round < 3; round++ {
		base := uint64(round+1) << 30
		for i := 0; i < entries; i++ {
			ix.put(base+uint64(i)*128, int32(i))
		}
		for i := 0; i < entries; i++ {
			if got := ix.get(base + uint64(i)*128); got != int32(i) {
				t.Fatalf("round %d: get(entry %d) = %d", round, i, got)
			}
		}
		for i := 0; i < entries; i++ {
			ix.del(base + uint64(i)*128)
		}
		for i := 0; i < entries; i++ {
			if got := ix.get(base + uint64(i)*128); got != -1 {
				t.Fatalf("round %d: entry %d survived deletion (slot %d)", round, i, got)
			}
		}
	}
}
