package cache

import (
	"testing"

	"dasesim/internal/config"
	"dasesim/internal/memreq"
)

func wbCache() *Cache {
	return NewCache(config.CacheConfig{
		SizeBytes: 2 * 128 * 2, // 2 sets, 2-way
		Assoc:     2,
		LineBytes: 128,
		MSHRs:     4,
		MSHRMerge: 2,
		Writeback: true,
	}, 2)
}

func TestWritebackOnDirtyEviction(t *testing.T) {
	c := wbCache()
	// Install a line via a write miss -> dirty.
	if c.AccessRW(0, 0, 0x1000, true) != Miss {
		t.Fatal("want miss")
	}
	if _, _, wb := c.FillRW(0, 0, 0x1000, true); wb.Valid {
		t.Fatal("fill into empty way must not write back")
	}
	// Fill the other way (clean).
	c.AccessRW(0, 0, 0x2000, false)
	c.FillRW(0, 0, 0x2000, false)
	// Next fill evicts the LRU = the dirty 0x1000 line.
	c.AccessRW(1, 0, 0x3000, false)
	_, evicted, wb := c.FillRW(1, 0, 0x3000, false)
	if evicted != 0 {
		t.Fatalf("evicted owner = %v", evicted)
	}
	if !wb.Valid || wb.Addr != 0x1000 || wb.Owner != 0 {
		t.Fatalf("expected writeback of 0x1000 owned by app 0, got %+v", wb)
	}
	if c.Stats(1).Writebacks != 1 {
		t.Fatalf("writeback stat = %d", c.Stats(1).Writebacks)
	}
}

func TestCleanEvictionSilent(t *testing.T) {
	c := wbCache()
	for i, addr := range []uint64{0x1000, 0x2000, 0x3000} {
		c.AccessRW(0, 0, addr, false)
		_, _, wb := c.FillRW(0, 0, addr, false)
		if wb.Valid {
			t.Fatalf("clean eviction %d produced a writeback", i)
		}
	}
}

func TestStoreHitMarksDirty(t *testing.T) {
	c := wbCache()
	// Install clean, then store-hit it, then evict: must write back.
	c.AccessRW(0, 1, 0x1080, false)
	c.FillRW(0, 1, 0x1080, false)
	if c.AccessRW(0, 1, 0x1080, true) != Hit {
		t.Fatal("store should hit")
	}
	c.AccessRW(0, 1, 0x2080, false)
	c.FillRW(0, 1, 0x2080, false)
	c.AccessRW(0, 1, 0x3080, false)
	_, _, wb := c.FillRW(0, 1, 0x3080, false)
	if !wb.Valid || wb.Addr != 0x1080 {
		t.Fatalf("store-hit line not written back: %+v", wb)
	}
}

func TestWritebackDisabledByDefault(t *testing.T) {
	c := smallCache() // Writeback: false
	c.AccessRW(0, 0, 0x1000, true)
	if _, _, wb := c.FillRW(0, 0, 0x1000, true); wb.Valid {
		t.Fatal("writeback emitted with writeback disabled")
	}
	for _, addr := range []uint64{0x2000, 0x3000, 0x4000, 0x5000} {
		c.AccessRW(0, 0, addr, true)
		if _, _, wb := c.FillRW(0, 0, addr, true); wb.Valid {
			t.Fatal("writeback emitted with writeback disabled")
		}
	}
	_ = memreq.InvalidApp
}
