package cache

import (
	"testing"

	"dasesim/internal/refmodel"
)

// FuzzMSHRIndex drives the open-addressed mshrIndex and the map-based
// refmodel.MSHRIndex it replaced with one put/get/del stream over a small
// address space (forcing probe collisions and backward-shift deletions), and
// compares every lookup plus the full address space after each mutation.
//
// Byte stream: opcode byte then address byte. Addresses are multiplied to
// line granularity so the Fibonacci-hash path sees realistic regular keys.
func FuzzMSHRIndex(f *testing.F) {
	f.Add([]byte("0a0b0c2a2b1a2a0a2c1b1c"))               // put/del/get churn
	f.Add([]byte("000102030405060708091011121314151617")) // fill then delete in order
	f.Add([]byte("0a0b0c0d1b0e1a1c0f1d1e1f"))             // interleaved deletes (shift chains)
	f.Add([]byte("0z1z2z0z1z2z0y1y0x2x2y1x"))             // same keys recycled
	f.Fuzz(func(t *testing.T, data []byte) {
		const entries = 12 // table size 32: collisions guaranteed at high load
		ix := newMSHRIndex(entries)
		ref := refmodel.NewMSHRIndex()
		var nextSlot int32
		addrOf := func(b byte) uint64 { return uint64(b%48) * 128 }
		for i := 0; i+1 < len(data); i += 2 {
			op, addr := data[i]%3, addrOf(data[i+1])
			switch op {
			case 0: // put (only when absent and below capacity, as the cache guarantees)
				if ref.Get(addr) >= 0 || ref.Len() >= entries {
					continue
				}
				slot := nextSlot % entries
				nextSlot++
				ix.put(addr, slot)
				ref.Put(addr, slot)
			case 1: // del
				ix.del(addr)
				ref.Del(addr)
			case 2: // get
				if got, want := ix.get(addr), ref.Get(addr); got != want {
					t.Fatalf("get(%#x): index %d, reference %d", addr, got, want)
				}
			}
			// Sweep the whole key space: any divergence shows up immediately,
			// including entries lost to a broken backward-shift delete.
			for b := byte(0); b < 48; b++ {
				a := uint64(b) * 128
				if got, want := ix.get(a), ref.Get(a); got != want {
					t.Fatalf("after op %d: get(%#x) index %d, reference %d", i/2, a, got, want)
				}
			}
		}
	})
}
