package experiments

import (
	"fmt"
	"math"

	"dasesim/internal/kernels"
	"dasesim/internal/sim"
	"dasesim/internal/workload"
)

// Fig2Pairs are the two-application combinations shown in the motivation
// figure. The paper picks pairs around SD (srad); we show the pairs whose
// interference is strongest on this substrate, keeping SD-based pairs for
// comparability.
var Fig2Pairs = [][2]string{
	{"SA", "SD"}, {"SB", "SD"}, {"VA", "CT"}, {"NN", "CT"}, {"BS", "SA"},
}

// Fig2Row is one workload of Figure 2(a): measured unfairness under the
// even SM split.
type Fig2Row struct {
	Workload   string
	Slowdowns  []float64
	Unfairness float64
}

// Fig2a measures unfairness for the motivation pairs (paper Fig. 2(a)).
func Fig2a(p Params, cache workload.Baseline) ([]Fig2Row, error) {
	opt := p.evalOptions()
	opt.Estimators = nil
	rows := make([]Fig2Row, 0, len(Fig2Pairs))
	for _, pr := range Fig2Pairs {
		a, ok := kernels.ByAbbr(pr[0])
		if !ok {
			return nil, fmt.Errorf("unknown kernel %q", pr[0])
		}
		b, ok := kernels.ByAbbr(pr[1])
		if !ok {
			return nil, fmt.Errorf("unknown kernel %q", pr[1])
		}
		combo := workload.Combo{Profiles: []kernels.Profile{a, b}}
		ev, err := workload.Evaluate(opt, combo, evenAlloc(p.Cfg.NumSMs, 2), cache)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Fig2Row{
			Workload:   combo.Name(),
			Slowdowns:  ev.Actual,
			Unfairness: ev.Unfairness,
		})
	}
	return rows, nil
}

// RenderFig2a renders Figure 2(a).
func RenderFig2a(rows []Fig2Row) *Table {
	t := &Table{
		Title:   "Fig.2(a) — Unfairness of two-application combinations (even SM split)",
		Columns: []string{"workload", "slowdown A", "slowdown B", "unfairness"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{r.Workload, f2(r.Slowdowns[0]), f2(r.Slowdowns[1]), f2(r.Unfairness)})
	}
	t.Notes = append(t.Notes, "ideal (completely fair) unfairness is 1.00")
	return t
}

// Fig2bRow decomposes DRAM bandwidth for one workload: the victim's share,
// the co-runners' share, timing-constraint waste, and idle (paper Fig. 2(b)),
// plus the victim's share when running alone.
type Fig2bRow struct {
	Workload    string
	VictimShare float64
	OtherShare  float64
	Wasted      float64
	Idle        float64
	VictimAlone float64 // victim's attained BW when running alone
}

// Fig2b decomposes bandwidth for the motivation pairs; the second kernel of
// each pair is treated as the victim (as SD is in the paper).
func Fig2b(p Params, cache workload.Baseline) ([]Fig2bRow, error) {
	rows := make([]Fig2bRow, 0, len(Fig2Pairs))
	for _, pr := range Fig2Pairs {
		a, _ := kernels.ByAbbr(pr[0])
		b, _ := kernels.ByAbbr(pr[1])
		shared, err := sim.RunShared(p.Cfg, []kernels.Profile{a, b}, evenAlloc(p.Cfg.NumSMs, 2), p.SharedCycles, p.Seed, p.SimOpts...)
		if err != nil {
			return nil, err
		}
		alone, err := cache.Get(b)
		if err != nil {
			return nil, err
		}
		r := Fig2bRow{
			Workload:    a.Abbr + "+" + b.Abbr,
			VictimShare: shared.Apps[1].BWUtil,
			OtherShare:  shared.Apps[0].BWUtil,
			VictimAlone: alone.Apps[0].BWUtil,
		}
		if shared.BusCycles > 0 {
			r.Wasted = float64(shared.BusWasted) / float64(shared.BusCycles)
			r.Idle = float64(shared.BusIdle) / float64(shared.BusCycles)
		}
		rows = append(rows, r)
	}
	return rows, nil
}

// RenderFig2b renders Figure 2(b).
func RenderFig2b(rows []Fig2bRow) *Table {
	t := &Table{
		Title:   "Fig.2(b) — DRAM bandwidth decomposition (second app = victim)",
		Columns: []string{"workload", "victim", "others", "wasted", "idle", "victim-alone"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Workload, pct(r.VictimShare), pct(r.OtherShare), pct(r.Wasted), pct(r.Idle), pct(r.VictimAlone),
		})
	}
	t.Notes = append(t.Notes,
		"DRAM-level victims (e.g. SD) keep less bandwidth than alone; cache-level victims (e.g. CT) draw MORE — their extra traffic is contention misses",
	)
	return t
}

// Fig3Row is one point of the performance-vs-service-rate validation: a
// fixed memory-intensive kernel run under scaled memory throughput.
type Fig3Row struct {
	BWScale     float64 // memory-bandwidth scale factor applied
	ServiceRate float64 // served requests per 1000 cycles
	IPC         float64
}

// Fig3 runs a fixed memory-intensive kernel (SB) while sweeping the DRAM
// throughput (burst and activation-window scaling), so its attained request
// service rate varies; the paper's observation — the performance of a
// memory-intensive application is directly proportional to its request
// service rate — should appear as a near-1 correlation. (The paper sweeps
// "memory intensity" of a CUDA kernel; scaling the service rate of a fixed
// kernel exercises the same proportionality without changing the
// instructions-per-request ratio.)
func Fig3(p Params) ([]Fig3Row, float64, error) {
	base, _ := kernels.ByAbbr("SB")
	scales := []float64{1.0, 1.5, 2.0, 3.0, 4.0, 6.0}
	rows := make([]Fig3Row, 0, len(scales))
	for _, s := range scales {
		cfg := p.Cfg
		cfg.Mem.TBurst = uint64(float64(cfg.Mem.TBurst) * s)
		cfg.Mem.TFAW = uint64(float64(cfg.Mem.TFAW) * s)
		cfg.Mem.TRRD = uint64(float64(cfg.Mem.TRRD) * s)
		res, err := sim.RunAlone(cfg, base, p.SharedCycles, p.Seed, p.SimOpts...)
		if err != nil {
			return nil, 0, err
		}
		a := res.Apps[0]
		rows = append(rows, Fig3Row{
			BWScale:     1 / s,
			ServiceRate: float64(a.Served) / float64(res.Cycles) * 1000,
			IPC:         a.IPC,
		})
	}
	return rows, correlation(rows), nil
}

// correlation returns the Pearson correlation between service rate and IPC.
func correlation(rows []Fig3Row) float64 {
	n := float64(len(rows))
	if n < 2 {
		return 0
	}
	var sx, sy, sxx, syy, sxy float64
	for _, r := range rows {
		sx += r.ServiceRate
		sy += r.IPC
		sxx += r.ServiceRate * r.ServiceRate
		syy += r.IPC * r.IPC
		sxy += r.ServiceRate * r.IPC
	}
	num := n*sxy - sx*sy
	den := (n*sxx - sx*sx) * (n*syy - sy*sy)
	if den <= 0 {
		return 0
	}
	return num / math.Sqrt(den)
}

// RenderFig3 renders Figure 3.
func RenderFig3(rows []Fig3Row, corr float64) *Table {
	t := &Table{
		Title:   "Fig.3 — Performance vs request service rate (SB alone, DRAM throughput sweep)",
		Columns: []string{"bw scale", "served/1Kcyc", "IPC"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{fmt.Sprintf("%.2f", r.BWScale), f2(r.ServiceRate), f2(r.IPC)})
	}
	t.Notes = append(t.Notes, fmt.Sprintf("Pearson correlation(service rate, IPC) = %.3f (paper: directly proportional)", corr))
	return t
}

// Fig4Row compares SB's served requests alone against the summed served
// requests of SB and its partner when sharing (paper Fig. 4).
type Fig4Row struct {
	Partner     string
	AloneRate   float64 // SB alone, served per 1000 cycles
	SharedSum   float64 // SB + partner combined, served per 1000 cycles
	SharedSB    float64
	SharedOther float64
}

// Fig4 runs SB against several partners.
func Fig4(p Params, cache workload.Baseline) ([]Fig4Row, error) {
	sb, _ := kernels.ByAbbr("SB")
	alone, err := cache.Get(sb)
	if err != nil {
		return nil, err
	}
	aloneRate := float64(alone.Apps[0].Served) / float64(alone.Cycles) * 1000
	partners := []string{"SA", "VA", "SD", "NN", "AT"}
	rows := make([]Fig4Row, 0, len(partners))
	for _, pa := range partners {
		prof, ok := kernels.ByAbbr(pa)
		if !ok {
			return nil, fmt.Errorf("unknown kernel %q", pa)
		}
		shared, err := sim.RunShared(p.Cfg, []kernels.Profile{sb, prof}, evenAlloc(p.Cfg.NumSMs, 2), p.SharedCycles, p.Seed, p.SimOpts...)
		if err != nil {
			return nil, err
		}
		sbRate := float64(shared.Apps[0].Served) / float64(shared.Cycles) * 1000
		otherRate := float64(shared.Apps[1].Served) / float64(shared.Cycles) * 1000
		rows = append(rows, Fig4Row{
			Partner:     pa,
			AloneRate:   aloneRate,
			SharedSum:   sbRate + otherRate,
			SharedSB:    sbRate,
			SharedOther: otherRate,
		})
	}
	return rows, nil
}

// RenderFig4 renders Figure 4.
func RenderFig4(rows []Fig4Row) *Table {
	t := &Table{
		Title:   "Fig.4 — Served requests per 1K cycles: SB alone vs SB+partner shared sum",
		Columns: []string{"partner", "SB alone", "shared sum", "SB shared", "partner shared"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{r.Partner, f2(r.AloneRate), f2(r.SharedSum), f2(r.SharedSB), f2(r.SharedOther)})
	}
	t.Notes = append(t.Notes, "the paper's MBB observation: alone ≈ shared sum")
	return t
}
