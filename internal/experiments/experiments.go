// Package experiments regenerates every table and figure of the paper's
// evaluation (see DESIGN.md §4 for the index). Each experiment returns a
// structured result that the cmd/experiments tool renders as a text table,
// so the numbers behind Figures 2-9 and Tables I-III can be reproduced with
// one command.
package experiments

import (
	"fmt"
	"sort"
	"strings"

	"dasesim/internal/baseline"
	"dasesim/internal/config"
	"dasesim/internal/core"
	"dasesim/internal/sim"
	"dasesim/internal/workload"
)

// Params bundle the knobs shared by all experiments.
type Params struct {
	Cfg config.Config
	// SharedCycles is the shared-mode simulation budget per workload (the
	// paper uses 5M; the default here is smaller because behaviour is
	// steady-state long before that — see EXPERIMENTS.md).
	SharedCycles uint64
	Seed         uint64
	// Warmup intervals skipped in estimator averaging.
	Warmup int
	// QuadCount is the number of random four-app workloads (paper: 30).
	QuadCount int
	// PairSample is the number of random pairs for the sensitivity
	// studies (paper: 30).
	PairSample int
	// Fig9Cycles is the budget for the policy study; the dynamic policy
	// needs several estimation intervals plus SM-draining time before its
	// allocation takes effect, so it defaults to 3x SharedCycles.
	Fig9Cycles uint64
	// SimOpts are engine options applied to every simulation the
	// experiments run (e.g. sim.WithParallelism(n) to shard the cycle
	// engine). Results are byte-identical with or without them, so every
	// table and figure is unchanged; only wall-clock moves.
	SimOpts []sim.Option
}

// fig9Budget returns the policy-study budget.
func (p Params) fig9Budget() uint64 {
	if p.Fig9Cycles > 0 {
		return p.Fig9Cycles
	}
	return 3 * p.SharedCycles
}

// DefaultParams returns the configuration used for EXPERIMENTS.md.
func DefaultParams() Params {
	return Params{
		Cfg:          config.Default(),
		SharedCycles: 250_000,
		Seed:         1,
		Warmup:       1,
		QuadCount:    30,
		PairSample:   30,
	}
}

func (p Params) evalOptions() workload.Options {
	return workload.Options{
		Cfg:             p.Cfg,
		SharedCycles:    p.SharedCycles,
		Seed:            p.Seed,
		WarmupIntervals: p.Warmup,
		Estimators:      []core.Estimator{core.New(core.Options{})},
		// MISE and ASM are evaluated on their own priority-epoch system.
		EpochEstimators: []core.Estimator{baseline.NewMISE(), baseline.NewASM()},
		SimOpts:         p.SimOpts,
	}
}

// EstimatorNames lists the estimators compared in Figs. 5-7, in print order.
var EstimatorNames = []string{"DASE", "MISE", "ASM"}

// Table renders rows of labelled values as fixed-width text.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// String renders the table.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, r := range t.Rows {
		for i, v := range r {
			if i < len(widths) && len(v) > widths[i] {
				widths[i] = len(v)
			}
		}
	}
	line := func(cells []string) {
		for i, v := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], v)
		}
		b.WriteByte('\n')
	}
	line(t.Columns)
	for _, r := range t.Rows {
		line(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Markdown renders the table as GitHub-flavoured markdown (used when
// exporting results into EXPERIMENTS.md-style documents).
func (t *Table) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "**%s**\n\n", t.Title)
	b.WriteString("| " + strings.Join(t.Columns, " | ") + " |\n")
	b.WriteString("|" + strings.Repeat("---|", len(t.Columns)) + "\n")
	for _, r := range t.Rows {
		cells := make([]string, len(t.Columns))
		copy(cells, r)
		b.WriteString("| " + strings.Join(cells, " | ") + " |\n")
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "\n*%s*\n", n)
	}
	return b.String()
}

func f2(v float64) string  { return fmt.Sprintf("%.2f", v) }
func pct(v float64) string { return fmt.Sprintf("%.1f%%", v*100) }

// AccuracyResult is the outcome of Fig. 5 or Fig. 6: per-workload and
// average estimation errors per estimator.
type AccuracyResult struct {
	Evals     []*workload.Eval
	MeanError map[string]float64 // estimator -> mean |error| over all apps
}

func accuracy(opt workload.Options, jobs []workload.Job, cache workload.Baseline) (*AccuracyResult, error) {
	evals, err := workload.EvaluateAll(opt, jobs, cache)
	if err != nil {
		return nil, err
	}
	res := &AccuracyResult{Evals: evals, MeanError: map[string]float64{}}
	counts := map[string]int{}
	for _, ev := range evals {
		for name, errs := range ev.Errors {
			for _, e := range errs {
				res.MeanError[name] += e
				counts[name]++
			}
		}
	}
	for name := range res.MeanError {
		res.MeanError[name] /= float64(counts[name])
	}
	return res, nil
}

// Fig5 evaluates all two-application workloads with the even SM split and
// compares DASE/MISE/ASM estimation error (paper Fig. 5).
func Fig5(p Params, cache workload.Baseline) (*AccuracyResult, error) {
	opt := p.evalOptions()
	combos := workload.AllPairs()
	jobs := make([]workload.Job, len(combos))
	for i, c := range combos {
		jobs[i] = workload.Job{Combo: c, Alloc: evenAlloc(p.Cfg.NumSMs, 2)}
	}
	return accuracy(opt, jobs, cache)
}

// Fig6 evaluates the random four-application workloads (paper Fig. 6).
func Fig6(p Params, cache workload.Baseline) (*AccuracyResult, error) {
	opt := p.evalOptions()
	combos := workload.RandomQuads(p.QuadCount, p.Seed)
	jobs := make([]workload.Job, len(combos))
	for i, c := range combos {
		jobs[i] = workload.Job{Combo: c, Alloc: evenAlloc(p.Cfg.NumSMs, 4)}
	}
	return accuracy(opt, jobs, cache)
}

// Render returns the accuracy result as a table (one row per workload plus
// the average, the number the paper quotes).
func (r *AccuracyResult) Render(title string) *Table {
	t := &Table{Title: title, Columns: append([]string{"workload"}, EstimatorNames...)}
	for _, ev := range r.Evals {
		row := []string{ev.Combo.Name()}
		for _, name := range EstimatorNames {
			row = append(row, pct(mean(ev.Errors[name])))
		}
		t.Rows = append(t.Rows, row)
	}
	avg := []string{"AVERAGE"}
	for _, name := range EstimatorNames {
		avg = append(avg, pct(r.MeanError[name]))
	}
	t.Rows = append(t.Rows, avg)
	return t
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func evenAlloc(n, k int) []int {
	out := make([]int, k)
	for i := range out {
		out[i] = n / k
	}
	rem := n % k
	for i := 0; i < rem; i++ {
		out[i]++
	}
	return out
}

// Fig7Result is the error-distribution histogram of Fig. 7.
type Fig7Result struct {
	// Fractions[name] holds the share of estimates in each bucket:
	// <10%, 10-20%, 20-40%, 40-80%, >=80%.
	Fractions map[string][]float64
	Buckets   []string
}

// Fig7 builds the error distribution from the Fig. 5 and Fig. 6 samples.
func Fig7(two, four *AccuracyResult) *Fig7Result {
	edges := []float64{0.10, 0.20, 0.40, 0.80}
	labels := []string{"<10%", "10-20%", "20-40%", "40-80%", ">=80%"}
	out := &Fig7Result{Fractions: map[string][]float64{}, Buckets: labels}
	for _, name := range EstimatorNames {
		counts := make([]int, len(edges)+1)
		total := 0
		for _, r := range []*AccuracyResult{two, four} {
			if r == nil {
				continue
			}
			for _, ev := range r.Evals {
				for _, e := range ev.Errors[name] {
					total++
					placed := false
					for i, edge := range edges {
						if e < edge {
							counts[i]++
							placed = true
							break
						}
					}
					if !placed {
						counts[len(edges)]++
					}
				}
			}
		}
		fr := make([]float64, len(counts))
		for i, c := range counts {
			if total > 0 {
				fr[i] = float64(c) / float64(total)
			}
		}
		out.Fractions[name] = fr
	}
	return out
}

// Render returns the Fig. 7 histogram as a table.
func (r *Fig7Result) Render() *Table {
	t := &Table{Title: "Fig.7 — Distribution of slowdown estimation error", Columns: append([]string{"estimator"}, r.Buckets...)}
	names := make([]string, 0, len(r.Fractions))
	for n := range r.Fractions {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		row := []string{n}
		for _, f := range r.Fractions[n] {
			row = append(row, pct(f))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}
