package experiments

import (
	"testing"

	"dasesim/internal/workload"
)

func tinyParams() Params {
	p := DefaultParams()
	p.SharedCycles = 30_000
	p.Cfg.IntervalCycles = 10_000
	p.PairSample = 2
	p.QuadCount = 1
	p.Fig9Cycles = 30_000
	return p
}

func TestFig2aIntegration(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	p := tinyParams()
	cache := workload.NewAloneCache(p.Cfg, p.SharedCycles, p.Seed)
	rows, err := Fig2a(p, cache)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(Fig2Pairs) {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Unfairness < 1 {
			t.Fatalf("%s unfairness %v < 1", r.Workload, r.Unfairness)
		}
	}
	if RenderFig2a(rows).String() == "" {
		t.Fatal("empty render")
	}
}

func TestFig2bIntegration(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	p := tinyParams()
	cache := workload.NewAloneCache(p.Cfg, p.SharedCycles, p.Seed)
	rows, err := Fig2b(p, cache)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		sum := r.VictimShare + r.OtherShare + r.Wasted + r.Idle
		if sum < 0.9 || sum > 1.05 {
			t.Fatalf("%s decomposition sums to %v", r.Workload, sum)
		}
	}
	if RenderFig2b(rows).String() == "" {
		t.Fatal("empty render")
	}
}

func TestFig3Integration(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	p := tinyParams()
	rows, corr, err := Fig3(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	// The paper's core observation: performance is directly proportional
	// to the request service rate for a memory-intensive kernel.
	if corr < 0.95 {
		t.Fatalf("service-rate/IPC correlation %v, want near 1", corr)
	}
	if RenderFig3(rows, corr).String() == "" {
		t.Fatal("empty render")
	}
}

func TestFig4Integration(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	p := tinyParams()
	cache := workload.NewAloneCache(p.Cfg, p.SharedCycles, p.Seed)
	rows, err := Fig4(p, cache)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		// The MBB observation: shared sum within 40% of alone.
		ratio := r.SharedSum / r.AloneRate
		if ratio < 0.6 || ratio > 1.4 {
			t.Fatalf("partner %s: shared sum/alone = %v, MBB observation broken", r.Partner, ratio)
		}
	}
	if RenderFig4(rows).String() == "" {
		t.Fatal("empty render")
	}
}

func TestTableIIIIntegration(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	p := tinyParams()
	p.SharedCycles = 60_000 // calibration needs a little longer
	rows, err := TableIII(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 15 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.MeasBW <= 0 || r.MeasBW > 1 {
			t.Fatalf("%s measured BW %v", r.Abbr, r.MeasBW)
		}
		// Calibration contract: within 12 percentage points of Table III
		// even at this reduced budget.
		diff := r.MeasBW - r.PaperBW
		if diff < -0.12 || diff > 0.12 {
			t.Errorf("%s measured %.3f vs paper %.3f (out of band)", r.Abbr, r.MeasBW, r.PaperBW)
		}
	}
}

func TestExtSchedulersIntegration(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	p := tinyParams()
	cache := workload.NewAloneCache(p.Cfg, p.SharedCycles, p.Seed)
	rows, err := ExtSchedulers(p, cache)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(Fig2Pairs) {
		t.Fatalf("rows = %d", len(rows))
	}
	if RenderExtSchedulers(rows).String() == "" {
		t.Fatal("empty render")
	}
}

func TestExtEstimatorsIntegration(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	p := tinyParams()
	cache := workload.NewAloneCache(p.Cfg, p.SharedCycles, p.Seed)
	res, err := ExtEstimators(p, cache)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Evals) != p.PairSample {
		t.Fatalf("evals = %d", len(res.Evals))
	}
	if _, ok := res.MeanError["Profiled"]; !ok {
		t.Fatal("Profiled estimator missing from results")
	}
	if RenderExtEstimators(res).String() == "" {
		t.Fatal("empty render")
	}
}

func TestFig9Integration(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	p := tinyParams()
	// Shrink to a couple of pairs by shortening the budget; the full
	// workload list still runs, so keep the budget tiny.
	p.Fig9Cycles = 20_000
	p.SharedCycles = 20_000
	cache := workload.NewAloneCache(p.Cfg, p.SharedCycles, p.Seed)
	res, err := Fig9(p, cache)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 91 { // C(14,2): SN excluded
		t.Fatalf("rows = %d, want 91", len(res.Rows))
	}
	if RenderFig9(res).String() == "" {
		t.Fatal("empty render")
	}
}
