package experiments

import (
	"dasesim/internal/baseline"
	"dasesim/internal/core"
	"dasesim/internal/kernels"
	"dasesim/internal/metrics"
	"dasesim/internal/sim"
	"dasesim/internal/workload"
)

// ExtSchedRow compares memory-controller scheduling policies on one
// workload (extension beyond the paper: its related work, Jog et al.'s
// application-aware scheduler, head-to-head with the baseline FR-FCFS and
// with SM-level DASE-Fair repartitioning).
type ExtSchedRow struct {
	Workload     string
	UnfFRFCFS    float64
	UnfAppRR     float64
	HSpeedFRFCFS float64
	HSpeedAppRR  float64
}

// ExtSchedulers measures unfairness under FR-FCFS vs the application-aware
// round-robin memory scheduler, even SM split, on the motivation pairs.
func ExtSchedulers(p Params, cache workload.Baseline) ([]ExtSchedRow, error) {
	rows := make([]ExtSchedRow, 0, len(Fig2Pairs))
	for _, pr := range Fig2Pairs {
		a, _ := kernels.ByAbbr(pr[0])
		b, _ := kernels.ByAbbr(pr[1])
		ps := []kernels.Profile{a, b}
		aloneIPC := make([]float64, 2)
		for i, prof := range ps {
			alone, err := cache.Get(prof)
			if err != nil {
				return nil, err
			}
			aloneIPC[i] = alone.Apps[0].IPC
		}
		slowdowns := func(cfg Params, appRR bool) ([]float64, error) {
			c := cfg.Cfg
			c.Mem.AppAwareRR = appRR
			res, err := sim.RunShared(c, ps, evenAlloc(c.NumSMs, 2), cfg.SharedCycles, cfg.Seed, cfg.SimOpts...)
			if err != nil {
				return nil, err
			}
			out := make([]float64, 2)
			for i := range out {
				out[i] = metrics.Slowdown(aloneIPC[i], res.Apps[i].IPC)
			}
			return out, nil
		}
		fr, err := slowdowns(p, false)
		if err != nil {
			return nil, err
		}
		rr, err := slowdowns(p, true)
		if err != nil {
			return nil, err
		}
		rows = append(rows, ExtSchedRow{
			Workload:     pr[0] + "+" + pr[1],
			UnfFRFCFS:    metrics.Unfairness(fr),
			UnfAppRR:     metrics.Unfairness(rr),
			HSpeedFRFCFS: metrics.HarmonicSpeedup(fr),
			HSpeedAppRR:  metrics.HarmonicSpeedup(rr),
		})
	}
	return rows, nil
}

// RenderExtSchedulers renders the scheduler comparison.
func RenderExtSchedulers(rows []ExtSchedRow) *Table {
	t := &Table{
		Title:   "Ext.A — Memory scheduler comparison: FR-FCFS vs app-aware RR (even SM split)",
		Columns: []string{"workload", "unf FR-FCFS", "unf app-RR", "hs FR-FCFS", "hs app-RR"},
	}
	var ufSum, urSum float64
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{r.Workload, f2(r.UnfFRFCFS), f2(r.UnfAppRR), f2(r.HSpeedFRFCFS), f2(r.HSpeedAppRR)})
		ufSum += r.UnfFRFCFS
		urSum += r.UnfAppRR
	}
	if len(rows) > 0 {
		t.Rows = append(t.Rows, []string{"AVERAGE",
			f2(ufSum / float64(len(rows))), f2(urSum / float64(len(rows))), "", ""})
	}
	t.Notes = append(t.Notes, "application-aware memory scheduling reduces memory-level starvation (Jog et al.), but does not equalise slowdowns the way SM repartitioning can")
	return t
}

// ExtEstimators compares DASE against the offline-profiling estimator the
// paper contrasts with (Aguilera et al.): profiled alone-bandwidth ratios.
func ExtEstimators(p Params, cache workload.Baseline) (*AccuracyResult, error) {
	// Build the offline profile the way those works do: run every kernel
	// alone and record its bandwidth share.
	profiles := kernels.All()
	aloneBW := map[string]float64{}
	for _, prof := range profiles {
		res, err := cache.Get(prof)
		if err != nil {
			return nil, err
		}
		aloneBW[prof.Abbr] = res.Apps[0].BWUtil
	}
	opt := p.evalOptions()
	combos := workload.RandomPairs(p.PairSample, p.Seed)
	jobs := make([]workload.Job, len(combos))
	for i, c := range combos {
		jobs[i] = workload.Job{Combo: c, Alloc: evenAlloc(p.Cfg.NumSMs, 2)}
	}
	// Per-combo estimator construction needs the per-app profile order, so
	// evaluate serially here.
	res := &AccuracyResult{MeanError: map[string]float64{}}
	counts := map[string]int{}
	for _, job := range jobs {
		bw := make([]float64, len(job.Combo.Profiles))
		for i, prof := range job.Combo.Profiles {
			bw[i] = aloneBW[prof.Abbr]
		}
		o := opt
		o.Estimators = []core.Estimator{
			core.New(core.Options{}),
			baseline.NewProfiled(bw),
		}
		ev, err := workload.Evaluate(o, job.Combo, job.Alloc, cache)
		if err != nil {
			return nil, err
		}
		res.Evals = append(res.Evals, ev)
		for name, errs := range ev.Errors {
			for _, e := range errs {
				res.MeanError[name] += e
				counts[name]++
			}
		}
	}
	for name := range res.MeanError {
		res.MeanError[name] /= float64(counts[name])
	}
	return res, nil
}

// RenderExtEstimators renders the profiled-estimator comparison.
func RenderExtEstimators(r *AccuracyResult) *Table {
	t := &Table{
		Title:   "Ext.B — DASE vs offline-profiled bandwidth-ratio estimation",
		Columns: []string{"workload", "DASE", "Profiled"},
	}
	for _, ev := range r.Evals {
		t.Rows = append(t.Rows, []string{
			ev.Combo.Name(), pct(mean(ev.Errors["DASE"])), pct(mean(ev.Errors["Profiled"])),
		})
	}
	t.Rows = append(t.Rows, []string{"AVERAGE", pct(r.MeanError["DASE"]), pct(r.MeanError["Profiled"])})
	t.Notes = append(t.Notes, "the profiled approach needs an offline pass per kernel and input; DASE needs none (the paper's practicality argument)")
	return t
}
