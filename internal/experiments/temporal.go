package experiments

import (
	"dasesim/internal/kernels"
	"dasesim/internal/metrics"
	"dasesim/internal/sched"
	"dasesim/internal/workload"
)

// ExtTemporalRow compares multitasking paradigms on one workload.
type ExtTemporalRow struct {
	Workload string
	// Weighted speedup (Σ 1/slowdown) and unfairness per paradigm.
	WSTemporal, WSSpatial, WSFair    float64
	UnfTemporal, UnfSpatial, UnfFair float64
}

// ExtTemporal (Ext.G) reproduces the premise of spatial multitasking
// (Adriaens et al., the paper's reference [1]): running two kernels
// side-by-side on partitioned SMs beats time-slicing the whole GPU,
// especially when one kernel cannot fill the machine. Compares temporal
// round-robin (2-interval slices), the spatial even split, and DASE-Fair.
func ExtTemporal(p Params, cache workload.Baseline) ([]ExtTemporalRow, error) {
	pairs := [][2]string{{"SN", "VA"}, {"QR", "SB"}, {"CT", "NN"}, {"BG", "SA"}, {"SD", "SP"}}
	cycles := p.fig9Budget()
	rows := make([]ExtTemporalRow, 0, len(pairs))
	for _, pr := range pairs {
		a, _ := kernels.ByAbbr(pr[0])
		b, _ := kernels.ByAbbr(pr[1])
		ps := []kernels.Profile{a, b}
		aloneIPC := make([]float64, 2)
		for i, prof := range ps {
			alone, err := cache.Get(prof)
			if err != nil {
				return nil, err
			}
			aloneIPC[i] = alone.Apps[0].IPC
		}
		slowUnder := func(pol sched.Policy, alloc []int) ([]float64, error) {
			res, err := sched.Run(p.Cfg, ps, alloc, cycles, p.Seed, pol, p.SimOpts...)
			if err != nil {
				return nil, err
			}
			out := make([]float64, 2)
			for i := range out {
				out[i] = metrics.Slowdown(aloneIPC[i], res.Apps[i].IPC)
			}
			return out, nil
		}

		temporal, err := slowUnder(sched.NewTimeSlice(2), []int{p.Cfg.NumSMs, 0})
		if err != nil {
			return nil, err
		}
		spatial, err := slowUnder(sched.Even{}, evenAlloc(p.Cfg.NumSMs, 2))
		if err != nil {
			return nil, err
		}
		fair, err := slowUnder(sched.NewDASEFair(), evenAlloc(p.Cfg.NumSMs, 2))
		if err != nil {
			return nil, err
		}
		rows = append(rows, ExtTemporalRow{
			Workload:    pr[0] + "+" + pr[1],
			WSTemporal:  metrics.WeightedSpeedup(temporal),
			WSSpatial:   metrics.WeightedSpeedup(spatial),
			WSFair:      metrics.WeightedSpeedup(fair),
			UnfTemporal: metrics.Unfairness(temporal),
			UnfSpatial:  metrics.Unfairness(spatial),
			UnfFair:     metrics.Unfairness(fair),
		})
	}
	return rows, nil
}

// RenderExtTemporal renders the paradigm comparison.
func RenderExtTemporal(rows []ExtTemporalRow) *Table {
	t := &Table{
		Title: "Ext.G — Temporal vs spatial multitasking vs DASE-Fair (weighted speedup / unfairness)",
		Columns: []string{"workload",
			"ws temporal", "ws spatial", "ws DASE-Fair",
			"unf temporal", "unf spatial", "unf DASE-Fair"},
	}
	var wt, wsp, wf float64
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{r.Workload,
			f2(r.WSTemporal), f2(r.WSSpatial), f2(r.WSFair),
			f2(r.UnfTemporal), f2(r.UnfSpatial), f2(r.UnfFair)})
		wt += r.WSTemporal
		wsp += r.WSSpatial
		wf += r.WSFair
	}
	if n := float64(len(rows)); n > 0 {
		t.Rows = append(t.Rows, []string{"AVERAGE", f2(wt / n), f2(wsp / n), f2(wf / n), "", "", ""})
	}
	t.Notes = append(t.Notes, "spatial multitasking's premise (paper ref [1]): partitioned SMs beat whole-GPU time slicing, most for kernels that cannot fill the machine (SN, QR, CT, BG)")
	return t
}
