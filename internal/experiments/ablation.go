package experiments

import (
	"fmt"

	"dasesim/internal/config"
	"dasesim/internal/core"
	"dasesim/internal/workload"
)

// ExtIntervalSensitivity (Ext.C) sweeps the estimation interval length.
// The paper fixes 50K cycles, stating it "is enough effective to capture
// application characteristics" (§4.4); this experiment quantifies that:
// DASE's accuracy across interval lengths on a random pair sample.
func ExtIntervalSensitivity(p Params) ([]SensitivityRow, error) {
	intervals := []uint64{12_500, 25_000, 50_000, 100_000}
	combos := workload.RandomPairs(p.PairSample, p.Seed)
	rows := make([]SensitivityRow, 0, len(intervals))
	for _, iv := range intervals {
		cfg := p.Cfg
		cfg.IntervalCycles = iv
		opt := workload.Options{
			Cfg:             cfg,
			SharedCycles:    p.SharedCycles,
			Seed:            p.Seed,
			WarmupIntervals: 1,
			Estimators:      []core.Estimator{core.New(core.Options{})},
		}
		// Alone runs are interval-independent in aggregate, but the cache
		// is keyed per configuration here for strict comparability.
		cache := workload.NewAloneCache(cfg, p.SharedCycles, p.Seed, p.SimOpts...)
		jobs := make([]workload.Job, len(combos))
		for i, c := range combos {
			jobs[i] = workload.Job{Combo: c, Alloc: evenAlloc(cfg.NumSMs, 2)}
		}
		acc, err := accuracy(opt, jobs, cache)
		if err != nil {
			return nil, err
		}
		rows = append(rows, SensitivityRow{
			Label:     fmt.Sprintf("%dK cycles", iv/1000),
			MeanError: acc.MeanError["DASE"],
		})
	}
	return rows, nil
}

// ExtLargeGPU (Ext.E) re-runs the DASE accuracy study on the Large (24-SM,
// 8-partition) device: the model reads only relative counters, so its
// accuracy should carry across GPU generations without re-tuning.
func ExtLargeGPU(p Params) ([]SensitivityRow, error) {
	rows := make([]SensitivityRow, 0, 2)
	for _, cfgCase := range []struct {
		label string
		cfg   config.Config
	}{
		{"Table II GPU (16 SM, 6 MC)", p.Cfg},
		{"Large GPU (24 SM, 8 MC)", config.Large()},
	} {
		opt := workload.Options{
			Cfg:             cfgCase.cfg,
			SharedCycles:    p.SharedCycles,
			Seed:            p.Seed,
			WarmupIntervals: 1,
			Estimators:      []core.Estimator{core.New(core.Options{})},
		}
		cache := workload.NewAloneCache(cfgCase.cfg, p.SharedCycles, p.Seed, p.SimOpts...)
		combos := workload.RandomPairs(p.PairSample, p.Seed)
		jobs := make([]workload.Job, len(combos))
		for i, c := range combos {
			jobs[i] = workload.Job{Combo: c, Alloc: evenAlloc(cfgCase.cfg.NumSMs, 2)}
		}
		acc, err := accuracy(opt, jobs, cache)
		if err != nil {
			return nil, err
		}
		rows = append(rows, SensitivityRow{Label: cfgCase.label, MeanError: acc.MeanError["DASE"]})
	}
	return rows, nil
}

// ExtRequestMaxFactor (Ext.D) sweeps the empirical derating factor of
// Eq. 20 (paper default 0.6) with the static Requestmax model, isolating
// how sensitive the MBB classification and bandwidth caps are to it — the
// exploration the paper defers ("the strategy of dynamically calculating
// Requestmax ... can be further explored").
func ExtRequestMaxFactor(p Params, cache workload.Baseline) ([]SensitivityRow, error) {
	factors := []float64{0.4, 0.5, 0.6, 0.7, 0.8}
	combos := workload.RandomPairs(p.PairSample, p.Seed)
	rows := make([]SensitivityRow, 0, len(factors)+1)
	for _, f := range factors {
		cfg := p.Cfg
		cfg.RequestMaxFactor = f
		opt := workload.Options{
			Cfg:             cfg,
			SharedCycles:    p.SharedCycles,
			Seed:            p.Seed,
			WarmupIntervals: 1,
			Estimators:      []core.Estimator{core.New(core.Options{StaticRequestMax: true})},
		}
		jobs := make([]workload.Job, len(combos))
		for i, c := range combos {
			jobs[i] = workload.Job{Combo: c, Alloc: evenAlloc(cfg.NumSMs, 2)}
		}
		acc, err := accuracy(opt, jobs, cache)
		if err != nil {
			return nil, err
		}
		rows = append(rows, SensitivityRow{
			Label:     fmt.Sprintf("static %.1f", f),
			MeanError: acc.MeanError["DASE"],
		})
	}
	// Reference: the dynamic Requestmax extension (repo default).
	opt := workload.Options{
		Cfg:             p.Cfg,
		SharedCycles:    p.SharedCycles,
		Seed:            p.Seed,
		WarmupIntervals: 1,
		Estimators:      []core.Estimator{core.New(core.Options{})},
	}
	jobs := make([]workload.Job, len(combos))
	for i, c := range combos {
		jobs[i] = workload.Job{Combo: c, Alloc: evenAlloc(p.Cfg.NumSMs, 2)}
	}
	acc, err := accuracy(opt, jobs, cache)
	if err != nil {
		return nil, err
	}
	rows = append(rows, SensitivityRow{Label: "dynamic (default)", MeanError: acc.MeanError["DASE"]})
	return rows, nil
}
