package experiments

import (
	"fmt"

	"dasesim/internal/core"
	"dasesim/internal/kernels"
	"dasesim/internal/sim"
)

// TableIIIRow is one application of Table III with its measured alone
// bandwidth utilisation next to the paper's.
type TableIIIRow struct {
	Abbr     string
	Name     string
	PaperBW  float64
	MeasBW   float64
	IPC      float64
	Alpha    float64
	RowHit   float64
	Served   uint64
	Launches int
}

// TableIII runs every kernel alone on the full GPU and reports attained
// DRAM bandwidth utilisation (paper Table III).
func TableIII(p Params) ([]TableIIIRow, error) {
	rows := make([]TableIIIRow, 0, 15)
	for _, prof := range kernels.All() {
		res, err := sim.RunAlone(p.Cfg, prof, p.SharedCycles, p.Seed, p.SimOpts...)
		if err != nil {
			return nil, err
		}
		a := res.Apps[0]
		rows = append(rows, TableIIIRow{
			Abbr: prof.Abbr, Name: prof.Name, PaperBW: prof.PaperBW,
			MeasBW: a.BWUtil, IPC: a.IPC, Alpha: a.Alpha,
			RowHit: a.RowHitRate, Served: a.Served,
		})
	}
	return rows, nil
}

// RenderTableIII renders the Table III comparison.
func RenderTableIII(rows []TableIIIRow) *Table {
	t := &Table{
		Title:   "Table III — alone DRAM bandwidth utilisation (paper vs measured)",
		Columns: []string{"app", "name", "paper", "measured", "IPC", "alpha", "rowhit"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Abbr, r.Name, pct(r.PaperBW), pct(r.MeasBW), f2(r.IPC), f2(r.Alpha), f2(r.RowHit),
		})
	}
	return t
}

// TableII renders the active GPU configuration (paper Table II).
func TableII(p Params) *Table {
	c := p.Cfg
	t := &Table{Title: "Table II — baseline GPU configuration", Columns: []string{"component", "value"}}
	add := func(k, v string) { t.Rows = append(t.Rows, []string{k, v}) }
	add("SMs", fmt.Sprintf("%d SMs, max %d warps (%d threads), issue width %d",
		c.NumSMs, c.SM.MaxWarps, c.SM.MaxWarps*c.SM.WarpSize, c.SM.IssueWidth))
	add("Shared memory", fmt.Sprintf("%d KB per SM, %d registers", c.SM.SharedMemBytes/1024, c.SM.Registers))
	add("L1 cache", fmt.Sprintf("%d KB %d-way, %d B lines, %d MSHRs",
		c.L1.SizeBytes/1024, c.L1.Assoc, c.L1.LineBytes, c.L1.MSHRs))
	add("L2 cache", fmt.Sprintf("%d x %d KB slices (%d KB total), %d-way",
		c.NumMCs, c.L2.SizeBytes/1024, c.NumMCs*c.L2.SizeBytes/1024, c.L2.Assoc))
	add("Interconnect", fmt.Sprintf("crossbar, %d B flits, latency %d cycles", c.ICNT.FlitBytes, c.ICNT.Latency))
	add("Memory", fmt.Sprintf("FR-FCFS, %d MCs x %d banks, tRP=%d tRCD=%d tCAS=%d tBurst=%d tRRD=%d tFAW=%d (core cycles)",
		c.NumMCs, c.Mem.NumBanks, c.Mem.TRP, c.Mem.TRCD, c.Mem.TCAS, c.Mem.TBurst, c.Mem.TRRD, c.Mem.TFAW))
	add("Estimation interval", fmt.Sprintf("%d cycles, %d sampled ATD sets", c.IntervalCycles, c.ATDSampledSets))
	return t
}

// TableI renders the DASE hardware-cost model (paper Table I).
func TableI(p Params, numApps int) *Table {
	cost := core.HardwareCost(numApps, p.Cfg.Mem.NumBanks, p.Cfg.ATDSampledSets, p.Cfg.L2.Assoc, p.Cfg.NumSMs)
	t := &Table{
		Title:   fmt.Sprintf("Table I — DASE hardware cost (N=%d applications)", numApps),
		Columns: []string{"structure", "bits per memory partition"},
	}
	for _, item := range cost.Items {
		t.Rows = append(t.Rows, []string{item.Name, fmt.Sprintf("%d", item.Bits)})
	}
	t.Rows = append(t.Rows, []string{"TOTAL per partition", fmt.Sprintf("%d bits (%.2f KB)", cost.PerPartitionBits, float64(cost.PerPartitionBits)/8/1024)})
	t.Notes = append(t.Notes, fmt.Sprintf("fraction of a 64KB L2 slice: %.3f%%", cost.FractionOfL2(64*1024)*100))
	return t
}
