package experiments

import (
	"fmt"

	"dasesim/internal/workload"
)

// Fig8aAllocations are the uneven SM splits of the sensitivity study
// (paper Fig. 8(a): e.g. "6+10" = 6 SMs for the first app, 10 for the
// second).
var Fig8aAllocations = [][]int{{4, 12}, {6, 10}, {8, 8}, {10, 6}, {12, 4}}

// SensitivityRow is DASE's mean estimation error for one configuration.
type SensitivityRow struct {
	Label     string
	MeanError float64
}

// Fig8a measures DASE's accuracy across uneven SM allocations on a random
// pair sample (paper Fig. 8(a)).
func Fig8a(p Params, cache workload.Baseline) ([]SensitivityRow, error) {
	opt := p.evalOptions()
	combos := workload.RandomPairs(p.PairSample, p.Seed)
	rows := make([]SensitivityRow, 0, len(Fig8aAllocations))
	for _, alloc := range Fig8aAllocations {
		jobs := make([]workload.Job, len(combos))
		for i, c := range combos {
			jobs[i] = workload.Job{Combo: c, Alloc: alloc}
		}
		acc, err := accuracy(opt, jobs, cache)
		if err != nil {
			return nil, err
		}
		rows = append(rows, SensitivityRow{
			Label:     fmt.Sprintf("%d+%d", alloc[0], alloc[1]),
			MeanError: acc.MeanError["DASE"],
		})
	}
	return rows, nil
}

// Fig8b measures DASE's accuracy across equal allocations of varying size
// (paper Fig. 8(b)): both apps get k SMs, the rest of the GPU stays idle.
func Fig8b(p Params, cache workload.Baseline) ([]SensitivityRow, error) {
	opt := p.evalOptions()
	combos := workload.RandomPairs(p.PairSample, p.Seed)
	sizes := []int{2, 4, 6, 8}
	rows := make([]SensitivityRow, 0, len(sizes))
	for _, k := range sizes {
		jobs := make([]workload.Job, len(combos))
		for i, c := range combos {
			jobs[i] = workload.Job{Combo: c, Alloc: []int{k, k}}
		}
		acc, err := accuracy(opt, jobs, cache)
		if err != nil {
			return nil, err
		}
		rows = append(rows, SensitivityRow{
			Label:     fmt.Sprintf("%d+%d SMs", k, k),
			MeanError: acc.MeanError["DASE"],
		})
	}
	return rows, nil
}

// RenderSensitivity renders a Fig. 8 sensitivity table.
func RenderSensitivity(title string, rows []SensitivityRow) *Table {
	t := &Table{Title: title, Columns: []string{"allocation", "DASE mean error"}}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{r.Label, pct(r.MeanError)})
	}
	return t
}
