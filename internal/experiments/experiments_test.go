package experiments

import (
	"strings"
	"testing"

	"dasesim/internal/kernels"
	"dasesim/internal/workload"
)

func TestTableRendering(t *testing.T) {
	tab := &Table{
		Title:   "demo",
		Columns: []string{"a", "bb"},
		Rows:    [][]string{{"x", "y"}, {"longer", "z"}},
		Notes:   []string{"a note"},
	}
	s := tab.String()
	for _, want := range []string{"demo", "longer", "a note"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendered table missing %q:\n%s", want, s)
		}
	}
}

func TestTableMarkdown(t *testing.T) {
	tab := &Table{
		Title:   "demo",
		Columns: []string{"a", "b"},
		Rows:    [][]string{{"1", "2"}},
		Notes:   []string{"n"},
	}
	md := tab.Markdown()
	for _, want := range []string{"**demo**", "| a | b |", "| 1 | 2 |", "*n*"} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown missing %q:\n%s", want, md)
		}
	}
}

func TestEvenAlloc(t *testing.T) {
	if got := evenAlloc(16, 2); got[0] != 8 || got[1] != 8 {
		t.Fatalf("evenAlloc(16,2) = %v", got)
	}
	got := evenAlloc(16, 3)
	if got[0]+got[1]+got[2] != 16 || got[0] != 6 {
		t.Fatalf("evenAlloc(16,3) = %v", got)
	}
}

func TestFig7Bucketing(t *testing.T) {
	two := &AccuracyResult{
		Evals: []*workload.Eval{
			{Errors: map[string][]float64{
				"DASE": {0.05, 0.15},
				"MISE": {0.5, 0.9},
				"ASM":  {0.25, 0.45},
			}},
		},
	}
	r := Fig7(two, nil)
	d := r.Fractions["DASE"]
	if d[0] != 0.5 || d[1] != 0.5 {
		t.Fatalf("DASE buckets = %v", d)
	}
	m := r.Fractions["MISE"]
	if m[3] != 0.5 || m[4] != 0.5 {
		t.Fatalf("MISE buckets = %v", m)
	}
	tab := r.Render()
	if len(tab.Rows) != 3 {
		t.Fatalf("Fig7 table rows = %d", len(tab.Rows))
	}
}

func TestTableIIMentionsKeyParameters(t *testing.T) {
	s := TableII(DefaultParams()).String()
	for _, want := range []string{"16 SMs", "48 warps", "768 KB", "FR-FCFS", "tRP=18"} {
		if !strings.Contains(s, want) {
			t.Errorf("Table II missing %q", want)
		}
	}
}

func TestTableIMatchesPaperBound(t *testing.T) {
	s := TableI(DefaultParams(), 4).String()
	if !strings.Contains(s, "0.32 KB") {
		t.Errorf("Table I cost changed:\n%s", s)
	}
}

func TestFig2PairsAreKnownKernels(t *testing.T) {
	for _, pr := range Fig2Pairs {
		for _, ab := range pr {
			if _, ok := kernels.ByAbbr(ab); !ok {
				t.Errorf("Fig2 pair references unknown kernel %q", ab)
			}
		}
	}
}

func TestCorrelation(t *testing.T) {
	rows := []Fig3Row{{ServiceRate: 1, IPC: 2}, {ServiceRate: 2, IPC: 4}, {ServiceRate: 3, IPC: 6}}
	if got := correlation(rows); got < 0.999 {
		t.Fatalf("perfectly linear data: corr = %v", got)
	}
	anti := []Fig3Row{{ServiceRate: 1, IPC: 6}, {ServiceRate: 2, IPC: 4}, {ServiceRate: 3, IPC: 2}}
	if got := correlation(anti); got > -0.999 {
		t.Fatalf("anti-correlated data: corr = %v", got)
	}
	if got := correlation(rows[:1]); got != 0 {
		t.Fatalf("degenerate data: corr = %v", got)
	}
}

func TestAccuracyAggregation(t *testing.T) {
	evals := []*workload.Eval{
		{Errors: map[string][]float64{"DASE": {0.1, 0.3}}},
		{Errors: map[string][]float64{"DASE": {0.2, 0.2}}},
	}
	res := &AccuracyResult{Evals: evals, MeanError: map[string]float64{}}
	counts := map[string]int{}
	for _, ev := range evals {
		for name, errs := range ev.Errors {
			for _, e := range errs {
				res.MeanError[name] += e
				counts[name]++
			}
		}
	}
	for name := range res.MeanError {
		res.MeanError[name] /= float64(counts[name])
	}
	if res.MeanError["DASE"] != 0.2 {
		t.Fatalf("mean = %v", res.MeanError["DASE"])
	}
}

func TestFig9ResultImprovements(t *testing.T) {
	r := &Fig9Result{MeanUnfEven: 2.0, MeanUnfFair: 1.6, MeanHSEven: 0.5, MeanHSFair: 0.55}
	if got := r.FairnessImprovement(); got < 0.199 || got > 0.201 {
		t.Fatalf("fairness improvement = %v", got)
	}
	if got := r.PerformanceImprovement(); got < 0.099 || got > 0.101 {
		t.Fatalf("performance improvement = %v", got)
	}
	var zero Fig9Result
	if zero.FairnessImprovement() != 0 || zero.PerformanceImprovement() != 0 {
		t.Fatal("zero result should yield zero improvements")
	}
}
