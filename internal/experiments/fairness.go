package experiments

import (
	"runtime"
	"strconv"
	"sync"

	"dasesim/internal/metrics"
	"dasesim/internal/sched"
	"dasesim/internal/workload"
)

// Fig9Row compares SM-allocation policies on one workload.
type Fig9Row struct {
	Workload       string
	UnfairnessEven float64
	UnfairnessFair float64
	HSpeedupEven   float64
	HSpeedupFair   float64
	Reallocations  int
}

// Fig9Result aggregates the policy comparison (paper Fig. 9).
type Fig9Result struct {
	Rows []Fig9Row
	// Mean unfairness / harmonic speedup per policy and the relative
	// improvements the paper quotes (16.1% fairness, 3.7% performance).
	MeanUnfEven, MeanUnfFair float64
	MeanHSEven, MeanHSFair   float64
}

// FairnessImprovement returns the mean relative unfairness reduction.
func (r *Fig9Result) FairnessImprovement() float64 {
	if r.MeanUnfEven == 0 {
		return 0
	}
	return (r.MeanUnfEven - r.MeanUnfFair) / r.MeanUnfEven
}

// PerformanceImprovement returns the mean relative harmonic-speedup gain.
func (r *Fig9Result) PerformanceImprovement() float64 {
	if r.MeanHSEven == 0 {
		return 0
	}
	return (r.MeanHSFair - r.MeanHSEven) / r.MeanHSEven
}

// fig9Unfit lists kernels excluded from the policy study, as the paper
// excludes kernels "which have too less thread blocks or are too short":
// draining cannot reallocate their SMs in useful time.
var fig9Unfit = map[string]bool{"SN": true}

// Fig9 runs every two-application workload (minus unfit kernels) under the
// even split and under DASE-Fair, comparing unfairness and harmonic
// speedup.
func Fig9(p Params, cache workload.Baseline) (*Fig9Result, error) {
	var combos []workload.Combo
	for _, c := range workload.AllPairs() {
		if fig9Unfit[c.Profiles[0].Abbr] || fig9Unfit[c.Profiles[1].Abbr] {
			continue
		}
		combos = append(combos, c)
	}

	rows := make([]Fig9Row, len(combos))
	errs := make([]error, len(combos))
	idxCh := make(chan int)
	var wg sync.WaitGroup
	workers := runtime.GOMAXPROCS(0)
	if workers > len(combos) {
		workers = len(combos)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idxCh {
				rows[i], errs[i] = fig9One(p, combos[i], cache)
			}
		}()
	}
	for i := range combos {
		idxCh <- i
	}
	close(idxCh)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	res := &Fig9Result{Rows: rows}
	for _, r := range rows {
		res.MeanUnfEven += r.UnfairnessEven
		res.MeanUnfFair += r.UnfairnessFair
		res.MeanHSEven += r.HSpeedupEven
		res.MeanHSFair += r.HSpeedupFair
	}
	n := float64(len(rows))
	if n > 0 {
		res.MeanUnfEven /= n
		res.MeanUnfFair /= n
		res.MeanHSEven /= n
		res.MeanHSFair /= n
	}
	return res, nil
}

func fig9One(p Params, combo workload.Combo, cache workload.Baseline) (Fig9Row, error) {
	alloc := evenAlloc(p.Cfg.NumSMs, len(combo.Profiles))
	row := Fig9Row{Workload: combo.Name()}

	aloneIPC := make([]float64, len(combo.Profiles))
	for i, prof := range combo.Profiles {
		alone, err := cache.Get(prof)
		if err != nil {
			return row, err
		}
		aloneIPC[i] = alone.Apps[0].IPC
	}

	cycles := p.fig9Budget()
	evenRes, err := sched.Run(p.Cfg, combo.Profiles, alloc, cycles, p.Seed, sched.Even{}, p.SimOpts...)
	if err != nil {
		return row, err
	}
	pol := sched.NewDASEFair()
	fairRes, err := sched.Run(p.Cfg, combo.Profiles, alloc, cycles, p.Seed, pol, p.SimOpts...)
	if err != nil {
		return row, err
	}

	slowEven := make([]float64, len(aloneIPC))
	slowFair := make([]float64, len(aloneIPC))
	for i := range aloneIPC {
		slowEven[i] = metrics.Slowdown(aloneIPC[i], evenRes.Apps[i].IPC)
		slowFair[i] = metrics.Slowdown(aloneIPC[i], fairRes.Apps[i].IPC)
	}
	row.UnfairnessEven = metrics.Unfairness(slowEven)
	row.UnfairnessFair = metrics.Unfairness(slowFair)
	row.HSpeedupEven = metrics.HarmonicSpeedup(slowEven)
	row.HSpeedupFair = metrics.HarmonicSpeedup(slowFair)
	row.Reallocations = pol.Reallocations
	return row, nil
}

// ExtQuadFairness (Ext.F) extends the Fig. 9 policy study to
// four-application workloads: the DASE-Fair search space grows from 15
// two-way partitions to C(15,3) = 455 compositions of the 16 SMs.
func ExtQuadFairness(p Params, cache workload.Baseline, quads int) (*Fig9Result, error) {
	var combos []workload.Combo
	for _, c := range workload.RandomQuads(quads*3, p.Seed) {
		unfit := false
		for _, prof := range c.Profiles {
			if fig9Unfit[prof.Abbr] {
				unfit = true
			}
		}
		if !unfit {
			combos = append(combos, c)
		}
		if len(combos) == quads {
			break
		}
	}
	rows := make([]Fig9Row, len(combos))
	for i, combo := range combos {
		row, err := fig9One(p, combo, cache)
		if err != nil {
			return nil, err
		}
		rows[i] = row
	}
	res := &Fig9Result{Rows: rows}
	for _, r := range rows {
		res.MeanUnfEven += r.UnfairnessEven
		res.MeanUnfFair += r.UnfairnessFair
		res.MeanHSEven += r.HSpeedupEven
		res.MeanHSFair += r.HSpeedupFair
	}
	if n := float64(len(rows)); n > 0 {
		res.MeanUnfEven /= n
		res.MeanUnfFair /= n
		res.MeanHSEven /= n
		res.MeanHSFair /= n
	}
	return res, nil
}

// RenderFig9 renders the policy comparison.
func RenderFig9(r *Fig9Result) *Table {
	t := &Table{
		Title:   "Fig.9 — Unfairness and H.Speedup: even split vs DASE-Fair",
		Columns: []string{"workload", "unf even", "unf fair", "hs even", "hs fair", "reallocs"},
	}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{
			row.Workload, f2(row.UnfairnessEven), f2(row.UnfairnessFair),
			f2(row.HSpeedupEven), f2(row.HSpeedupFair), strconv.Itoa(row.Reallocations),
		})
	}
	t.Rows = append(t.Rows, []string{
		"AVERAGE", f2(r.MeanUnfEven), f2(r.MeanUnfFair), f2(r.MeanHSEven), f2(r.MeanHSFair), "",
	})
	t.Notes = append(t.Notes,
		"fairness improvement: "+pct(r.FairnessImprovement())+" (paper: 16.1%)",
		"performance improvement: "+pct(r.PerformanceImprovement())+" (paper: 3.7%)",
	)
	return t
}
