package workload

import (
	"testing"

	"dasesim/internal/config"
	"dasesim/internal/kernels"
)

func TestAllPairsCount(t *testing.T) {
	pairs := AllPairs()
	if len(pairs) != 105 { // C(15,2)
		t.Fatalf("AllPairs = %d, want 105", len(pairs))
	}
	seen := map[string]bool{}
	for _, c := range pairs {
		if len(c.Profiles) != 2 {
			t.Fatalf("pair with %d profiles", len(c.Profiles))
		}
		if c.Profiles[0].Abbr == c.Profiles[1].Abbr {
			t.Fatalf("self-pair %s", c.Name())
		}
		if seen[c.Name()] {
			t.Fatalf("duplicate pair %s", c.Name())
		}
		seen[c.Name()] = true
	}
}

func TestRandomQuads(t *testing.T) {
	quads := RandomQuads(30, 1)
	if len(quads) != 30 {
		t.Fatalf("got %d quads", len(quads))
	}
	for _, q := range quads {
		if len(q.Profiles) != 4 {
			t.Fatalf("quad with %d profiles", len(q.Profiles))
		}
		names := map[string]bool{}
		for _, p := range q.Profiles {
			if names[p.Abbr] {
				t.Fatalf("quad %s repeats a kernel", q.Name())
			}
			names[p.Abbr] = true
		}
	}
	// Deterministic in the seed.
	again := RandomQuads(30, 1)
	for i := range quads {
		if quads[i].Name() != again[i].Name() {
			t.Fatal("RandomQuads not deterministic")
		}
	}
	other := RandomQuads(30, 2)
	same := 0
	for i := range quads {
		if quads[i].Name() == other[i].Name() {
			same++
		}
	}
	if same == 30 {
		t.Fatal("different seeds gave identical quads")
	}
}

func TestRandomPairs(t *testing.T) {
	ps := RandomPairs(30, 7)
	if len(ps) != 30 {
		t.Fatalf("got %d pairs", len(ps))
	}
	seen := map[string]bool{}
	for _, c := range ps {
		if seen[c.Name()] {
			t.Fatalf("duplicate pair %s in sample", c.Name())
		}
		seen[c.Name()] = true
	}
	if got := RandomPairs(1000, 7); len(got) != 105 {
		t.Fatalf("oversized sample should clamp to 105, got %d", len(got))
	}
}

func TestComboName(t *testing.T) {
	a, _ := kernels.ByAbbr("SB")
	b, _ := kernels.ByAbbr("SD")
	c := Combo{Profiles: []kernels.Profile{a, b}}
	if c.Name() != "SB+SD" {
		t.Fatalf("Name = %q", c.Name())
	}
}

func TestAloneCacheMemoizes(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a simulation")
	}
	cfg := config.Default()
	cache := NewAloneCache(cfg, 20_000, 1)
	p, _ := kernels.ByAbbr("QR")
	r1, err := cache.Get(p)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := cache.Get(p)
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Fatal("cache did not memoize")
	}
	// A MemFrac variant is a distinct key.
	r3, err := cache.Get(p.WithMemFrac(p.MemFrac * 2))
	if err != nil {
		t.Fatal(err)
	}
	if r3 == r1 {
		t.Fatal("variant profile hit the same cache entry")
	}
}

func TestEvaluateAllPreservesOrder(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	cfg := config.Default()
	cfg.IntervalCycles = 10_000
	opt := Options{Cfg: cfg, SharedCycles: 20_000, Seed: 1}
	cache := NewAloneCache(cfg, 20_000, 1)
	qr, _ := kernels.ByAbbr("QR")
	bg, _ := kernels.ByAbbr("BG")
	ct, _ := kernels.ByAbbr("CT")
	jobs := []Job{
		{Combo: Combo{Profiles: []kernels.Profile{qr, bg}}, Alloc: []int{8, 8}},
		{Combo: Combo{Profiles: []kernels.Profile{qr, ct}}, Alloc: []int{8, 8}},
	}
	evals, err := EvaluateAll(opt, jobs, cache)
	if err != nil {
		t.Fatal(err)
	}
	if evals[0].Combo.Name() != "QR+BG" || evals[1].Combo.Name() != "QR+CT" {
		t.Fatalf("order not preserved: %s, %s", evals[0].Combo.Name(), evals[1].Combo.Name())
	}
	for _, ev := range evals {
		if len(ev.Actual) != 2 || ev.Unfairness < 1 {
			t.Fatalf("bad eval: %+v", ev)
		}
	}
}
