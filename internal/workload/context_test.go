package workload

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"

	"dasesim/internal/config"
	"dasesim/internal/kernels"
	"dasesim/internal/sim"
)

// countingBaseline counts lookups to observe how much work a batch did.
type countingBaseline struct {
	inner Baseline
	calls atomic.Int64
}

func (c *countingBaseline) Get(p kernels.Profile) (*sim.Result, error) {
	c.calls.Add(1)
	return c.inner.Get(p)
}

// TestEvaluateAllAbortsOnFirstError proves a failing job surfaces its own
// error (not a cancellation) and cancels the rest of the batch.
func TestEvaluateAllAbortsOnFirstError(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	cfg := config.Default()
	opt := Options{Cfg: cfg, SharedCycles: 20_000, Seed: 1}
	cache := NewAloneCache(cfg, 20_000, 1)
	qr, _ := kernels.ByAbbr("QR")
	bg, _ := kernels.ByAbbr("BG")
	good := Combo{Profiles: []kernels.Profile{qr, bg}}
	jobs := []Job{
		// Allocation exceeding the SM count fails inside sim.New.
		{Combo: good, Alloc: []int{99, 99}},
		{Combo: good, Alloc: []int{8, 8}},
		{Combo: good, Alloc: []int{8, 8}},
	}
	_, err := EvaluateAll(opt, jobs, cache)
	if err == nil {
		t.Fatal("expected an error")
	}
	if errors.Is(err, context.Canceled) {
		t.Fatalf("batch reported an induced cancellation, not the cause: %v", err)
	}
	if !strings.Contains(err.Error(), "exceeds") {
		t.Fatalf("unexpected error: %v", err)
	}
}

// TestEvaluateAllExternalCancel proves a pre-cancelled context skips every
// job without running simulations.
func TestEvaluateAllExternalCancel(t *testing.T) {
	cfg := config.Default()
	opt := Options{Cfg: cfg, SharedCycles: 20_000, Seed: 1}
	counting := &countingBaseline{inner: NewAloneCache(cfg, 20_000, 1)}
	qr, _ := kernels.ByAbbr("QR")
	bg, _ := kernels.ByAbbr("BG")
	jobs := make([]Job, 8)
	for i := range jobs {
		jobs[i] = Job{Combo: Combo{Profiles: []kernels.Profile{qr, bg}}, Alloc: []int{8, 8}}
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := EvaluateAllContext(ctx, opt, jobs, counting)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	if n := counting.calls.Load(); n != 0 {
		t.Fatalf("cancelled batch still did %d baseline lookups", n)
	}
}

// TestAloneCacheSharedStore proves two AloneCache views over one store share
// simulated baselines.
func TestAloneCacheSharedStore(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a simulation")
	}
	cfg := config.Default()
	c1 := NewAloneCache(cfg, 20_000, 1)
	c2 := NewAloneCacheWith(c1.store, cfg, 20_000, 1)
	p, _ := kernels.ByAbbr("QR")
	r1, err := c1.Get(p)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := c2.Get(p)
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Fatal("views over one store did not share the result")
	}
	st := c1.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v", st)
	}
}
