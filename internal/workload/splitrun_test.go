package workload

import (
	"testing"

	"dasesim/internal/baseline"
	"dasesim/internal/config"
	"dasesim/internal/core"
	"dasesim/internal/kernels"
)

// TestEvaluateSplitRuns verifies the two-system evaluation: passive
// estimators read the plain run, epoch estimators read the priority-epoch
// run and are judged against its own actual slowdowns.
func TestEvaluateSplitRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	cfg := config.Default()
	cfg.IntervalCycles = 10_000
	opt := Options{
		Cfg:             cfg,
		SharedCycles:    30_000,
		Seed:            1,
		WarmupIntervals: 1,
		Estimators:      []core.Estimator{core.New(core.Options{})},
		EpochEstimators: []core.Estimator{baseline.NewMISE()},
	}
	a, _ := kernels.ByAbbr("SB")
	b, _ := kernels.ByAbbr("SD")
	cache := NewAloneCache(cfg, 30_000, 1)
	ev, err := Evaluate(opt, Combo{Profiles: []kernels.Profile{a, b}}, []int{8, 8}, cache)
	if err != nil {
		t.Fatal(err)
	}
	if ev.ActualEpoch == nil {
		t.Fatal("epoch-run actual slowdowns missing")
	}
	if _, ok := ev.Errors["DASE"]; !ok {
		t.Fatal("DASE errors missing")
	}
	if _, ok := ev.Errors["MISE"]; !ok {
		t.Fatal("MISE errors missing")
	}
	for i := range ev.Actual {
		if ev.Actual[i] < 1 || ev.ActualEpoch[i] < 1 {
			t.Fatalf("slowdowns below 1: %v / %v", ev.Actual[i], ev.ActualEpoch[i])
		}
	}
}

// TestEvaluateWithoutEpochEstimators keeps the second run off.
func TestEvaluateWithoutEpochEstimators(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	cfg := config.Default()
	cfg.IntervalCycles = 10_000
	opt := Options{
		Cfg:          cfg,
		SharedCycles: 20_000,
		Seed:         1,
		Estimators:   []core.Estimator{core.New(core.Options{})},
	}
	a, _ := kernels.ByAbbr("QR")
	b, _ := kernels.ByAbbr("BG")
	cache := NewAloneCache(cfg, 20_000, 1)
	ev, err := Evaluate(opt, Combo{Profiles: []kernels.Profile{a, b}}, []int{8, 8}, cache)
	if err != nil {
		t.Fatal(err)
	}
	if ev.ActualEpoch != nil {
		t.Fatal("epoch run executed without epoch estimators")
	}
}
