package workload

import (
	"testing"

	"dasesim/internal/baseline"
	"dasesim/internal/core"
	"dasesim/internal/kernels"
	"dasesim/internal/sim"
)

// TestAccuracySample evaluates a handful of representative pairs and logs
// per-estimator errors; it asserts only that DASE beats the baselines on
// average, the paper's headline claim.
func TestAccuracySample(t *testing.T) {
	if testing.Short() {
		t.Skip("slow accuracy sample")
	}
	opt := DefaultOptions(150_000)
	opt.Estimators = []core.Estimator{core.New(core.Options{})}
	opt.EpochEstimators = []core.Estimator{baseline.NewMISE(), baseline.NewASM()}
	cache := NewAloneCache(opt.Cfg, opt.SharedCycles, opt.Seed)
	pairs := [][2]string{{"SB", "SD"}, {"SA", "SD"}, {"VA", "CT"}, {"QR", "BG"}, {"BS", "SA"}, {"SN", "NN"}}
	sums := map[string]float64{}
	n := 0
	for _, pr := range pairs {
		a, _ := kernels.ByAbbr(pr[0])
		b, _ := kernels.ByAbbr(pr[1])
		combo := Combo{Profiles: []kernels.Profile{a, b}}
		ev, err := Evaluate(opt, combo, sim.EvenAllocation(opt.Cfg.NumSMs, 2), cache)
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("%s: actual=%.2f/%.2f unf=%.2f", combo.Name(), ev.Actual[0], ev.Actual[1], ev.Unfairness)
		for _, est := range []core.Estimator{opt.Estimators[0], opt.EpochEstimators[0], opt.EpochEstimators[1]} {
			e := ev.Errors[est.Name()]
			v := ev.Estimates[est.Name()]
			t.Logf("  %-4s est=%.2f/%.2f err=%.1f%%/%.1f%%", est.Name(), v[0], v[1], e[0]*100, e[1]*100)
			sums[est.Name()] += e[0] + e[1]
		}
		n += 2
	}
	for name, s := range sums {
		t.Logf("MEAN %-4s %.1f%%", name, s/float64(n)*100)
	}
	if sums["DASE"] >= sums["MISE"] || sums["DASE"] >= sums["ASM"] {
		t.Errorf("DASE (%.3f) expected more accurate than MISE (%.3f) and ASM (%.3f)",
			sums["DASE"]/float64(n), sums["MISE"]/float64(n), sums["ASM"]/float64(n))
	}
}
