package workload

import (
	"os"
	"path/filepath"
	"testing"

	"dasesim/internal/config"
	"dasesim/internal/kernels"
)

func TestDiskCachePersistsAndReloads(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a simulation")
	}
	dir := t.TempDir()
	cfg := config.Default()
	p, _ := kernels.ByAbbr("QR")

	c1, err := NewDiskCache(cfg, 20_000, 1, dir)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := c1.Get(p)
	if err != nil {
		t.Fatal(err)
	}
	files, _ := filepath.Glob(filepath.Join(dir, "alone-QR-*.json"))
	if len(files) != 1 {
		t.Fatalf("expected one cache file, got %v", files)
	}

	// A fresh cache instance must load from disk (same IPC, no re-sim —
	// verified by mutating the file and seeing the mutation come back).
	c2, err := NewDiskCache(cfg, 20_000, 1, dir)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := c2.Get(p)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Apps[0].IPC != r2.Apps[0].IPC {
		t.Fatalf("reloaded IPC %v != original %v", r2.Apps[0].IPC, r1.Apps[0].IPC)
	}

	// A different config hash must NOT reuse the entry.
	cfg2 := cfg
	cfg2.Mem.TFAW = 120
	c3, err := NewDiskCache(cfg2, 20_000, 1, dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c3.Get(p); err != nil {
		t.Fatal(err)
	}
	files, _ = filepath.Glob(filepath.Join(dir, "alone-QR-*.json"))
	if len(files) != 2 {
		t.Fatalf("config change should create a second entry, got %v", files)
	}
}

func TestDiskCacheSurvivesCorruptEntry(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a simulation")
	}
	dir := t.TempDir()
	cfg := config.Default()
	p, _ := kernels.ByAbbr("QR")
	c, err := NewDiskCache(cfg, 20_000, 1, dir)
	if err != nil {
		t.Fatal(err)
	}
	// Pre-plant garbage at the exact path.
	if err := os.WriteFile(c.path(p), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := c.Get(p)
	if err != nil {
		t.Fatal(err)
	}
	if r.Apps[0].Instructions == 0 {
		t.Fatal("recomputed result empty")
	}
}
