package workload

import (
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"

	"dasesim/internal/config"
	"dasesim/internal/kernels"
	"dasesim/internal/sim"
)

// DiskCache wraps an AloneCache with a JSON-file layer so alone-run
// baselines survive across cmd/experiments invocations. Entries are keyed
// by kernel identity, run budget, seed, and a hash of the full GPU
// configuration, so a config change can never serve stale baselines.
type DiskCache struct {
	inner *AloneCache
	dir   string
	tag   string // config+budget hash embedded in file names
}

// NewDiskCache builds a cache persisting under dir (created if needed).
func NewDiskCache(cfg config.Config, cycles uint64, seed uint64, dir string, simOpts ...sim.Option) (*DiskCache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("workload: cache dir: %w", err)
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "%+v|%d|%d", cfg, cycles, seed)
	return &DiskCache{
		inner: NewAloneCache(cfg, cycles, seed, simOpts...),
		dir:   dir,
		tag:   fmt.Sprintf("%x", h.Sum64()),
	}, nil
}

func (d *DiskCache) path(p kernels.Profile) string {
	h := fnv.New64a()
	fmt.Fprintf(h, "%+v", p)
	return filepath.Join(d.dir, fmt.Sprintf("alone-%s-%x-%s.json", p.Abbr, h.Sum64(), d.tag))
}

// Get returns the alone result, loading it from disk if present, simulating
// and persisting it otherwise.
func (d *DiskCache) Get(p kernels.Profile) (*sim.Result, error) {
	return d.GetContext(context.Background(), p)
}

// GetContext is Get with cancellation of the backing simulation.
func (d *DiskCache) GetContext(ctx context.Context, p kernels.Profile) (*sim.Result, error) {
	// Fast path: in-memory.
	if r, ok := d.inner.store.Get(d.inner.key(p)); ok {
		return r, nil
	}

	path := d.path(p)
	if data, err := os.ReadFile(path); err == nil {
		var r sim.Result
		if err := json.Unmarshal(data, &r); err == nil {
			d.inner.store.Put(d.inner.key(p), &r)
			return &r, nil
		}
		// Corrupt entry: fall through and recompute.
	}

	r, err := d.inner.GetContext(ctx, p)
	if err != nil {
		return nil, err
	}
	data, err := json.Marshal(r)
	if err != nil {
		return nil, fmt.Errorf("workload: marshal alone result: %w", err)
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return nil, fmt.Errorf("workload: persist alone result: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return nil, fmt.Errorf("workload: persist alone result: %w", err)
	}
	return r, nil
}
