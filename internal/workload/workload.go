// Package workload enumerates multiprogrammed workload combinations,
// runs shared and alone simulations (with alone-run caching), and computes
// actual slowdowns, estimator outputs and estimation errors — the machinery
// behind every figure of the paper's evaluation.
//
// Simulations are deterministic and independent, so the harness fans them
// out over a GOMAXPROCS-sized worker pool.
package workload

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"

	"dasesim/internal/config"
	"dasesim/internal/core"
	"dasesim/internal/kernels"
	"dasesim/internal/metrics"
	"dasesim/internal/sim"
	"dasesim/internal/simcache"
)

// Combo is one multiprogrammed workload.
type Combo struct {
	Profiles []kernels.Profile
}

// Name returns a compact label like "SB+SD".
func (c Combo) Name() string {
	s := ""
	for i, p := range c.Profiles {
		if i > 0 {
			s += "+"
		}
		s += p.Abbr
	}
	return s
}

// AllPairs returns every unordered pair of distinct Table III kernels
// (C(15,2) = 105 workloads), the paper's "all two-application workloads".
func AllPairs() []Combo {
	ps := kernels.All()
	var out []Combo
	for i := 0; i < len(ps); i++ {
		for j := i + 1; j < len(ps); j++ {
			out = append(out, Combo{Profiles: []kernels.Profile{ps[i], ps[j]}})
		}
	}
	return out
}

// RandomQuads returns n random four-application combinations drawn from the
// Table III kernels, deterministically from seed.
func RandomQuads(n int, seed uint64) []Combo {
	ps := kernels.All()
	out := make([]Combo, 0, n)
	state := seed ^ 0x9e3779b97f4a7c15
	next := func(mod int) int {
		state = state*6364136223846793005 + 1442695040888963407
		return int((state >> 33) % uint64(mod))
	}
	for len(out) < n {
		idx := map[int]bool{}
		for len(idx) < 4 {
			idx[next(len(ps))] = true
		}
		var combo Combo
		for i := 0; i < len(ps); i++ {
			if idx[i] {
				combo.Profiles = append(combo.Profiles, ps[i])
			}
		}
		out = append(out, combo)
	}
	return out
}

// RandomPairs returns n random distinct-kernel pairs, deterministically.
func RandomPairs(n int, seed uint64) []Combo {
	all := AllPairs()
	state := seed ^ 0xd1342543de82ef95
	// Fisher-Yates shuffle prefix.
	for i := 0; i < n && i < len(all); i++ {
		state = state*6364136223846793005 + 1442695040888963407
		j := i + int((state>>33)%uint64(len(all)-i))
		all[i], all[j] = all[j], all[i]
	}
	if n > len(all) {
		n = len(all)
	}
	return all[:n]
}

// Baseline supplies alone-run results for slowdown ground truth; AloneCache
// (in-memory) and DiskCache (persistent) implement it.
type Baseline interface {
	Get(p kernels.Profile) (*sim.Result, error)
}

// BaselineContext is implemented by baselines that support cancellation;
// Evaluate uses it when available so an aborted batch stops simulating
// alone baselines too.
type BaselineContext interface {
	Baseline
	GetContext(ctx context.Context, p kernels.Profile) (*sim.Result, error)
}

// baselineGet fetches an alone result, routing through the context-aware
// path when the baseline supports it.
func baselineGet(ctx context.Context, cache Baseline, p kernels.Profile) (*sim.Result, error) {
	if bc, ok := cache.(BaselineContext); ok {
		return bc.GetContext(ctx, p)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return cache.Get(p)
}

// AloneCache memoises alone-run results per kernel so the 105 pair
// evaluations reuse the 15 alone baselines. It is a thin view over a
// content-addressed simcache store (keys cover the full profile, GPU
// configuration, budget and seed), so a store can be shared with other
// layers — the dased server hands its job cache to NewAloneCacheWith and
// alone baselines are computed at most once across both. It is safe for
// concurrent use, and concurrent requests for the same kernel simulate it
// only once.
type AloneCache struct {
	cfg     config.Config
	cycles  uint64
	seed    uint64
	store   *simcache.Memory
	simOpts []sim.Option
}

// NewAloneCache builds a cache running alone simulations with the given
// budget, backed by a private store. Any sim options (e.g.
// sim.WithParallelism) apply to the cache's own runs only; they never enter
// the content address, because results are required to be independent of
// them — a store stays shareable between callers with different options.
func NewAloneCache(cfg config.Config, cycles uint64, seed uint64, simOpts ...sim.Option) *AloneCache {
	return NewAloneCacheWith(simcache.NewMemory(0), cfg, cycles, seed, simOpts...)
}

// NewAloneCacheWith builds an AloneCache over an existing result store.
func NewAloneCacheWith(store *simcache.Memory, cfg config.Config, cycles uint64, seed uint64, simOpts ...sim.Option) *AloneCache {
	return &AloneCache{cfg: cfg, cycles: cycles, seed: seed, store: store, simOpts: simOpts}
}

// AloneKey is the content address of a kernel's alone run on all SMs; the
// full profile is hashed, so WithMemFrac sweeps (Fig. 3) and custom kernels
// coexist. Exported so other layers over a shared store (the dased server)
// address the same entries.
func AloneKey(cfg config.Config, p kernels.Profile, cycles, seed uint64) string {
	return simcache.Key(cfg, []kernels.Profile{p}, []int{cfg.NumSMs}, cycles, seed, "alone")
}

func (c *AloneCache) key(p kernels.Profile) string {
	return AloneKey(c.cfg, p, c.cycles, c.seed)
}

// Get returns the alone result for the kernel, simulating it on first use.
func (c *AloneCache) Get(p kernels.Profile) (*sim.Result, error) {
	return c.GetContext(context.Background(), p)
}

// GetContext is Get with cancellation.
func (c *AloneCache) GetContext(ctx context.Context, p kernels.Profile) (*sim.Result, error) {
	return c.store.GetOrCompute(ctx, c.key(p), func() (*sim.Result, error) {
		return sim.RunAloneContext(ctx, c.cfg, p, c.cycles, c.seed, c.simOpts...)
	})
}

// Stats reports the underlying store's hit/miss counters.
func (c *AloneCache) Stats() simcache.Stats { return c.store.Stats() }

// Eval is the outcome of evaluating one workload combination.
type Eval struct {
	Combo  Combo
	Alloc  []int
	Shared *sim.Result

	AloneIPC []float64
	Actual   []float64 // measured slowdowns (Eq. 1), plain FR-FCFS run
	// ActualEpoch holds the slowdowns of the priority-epoch run (the
	// system MISE/ASM are deployed on); nil when no epoch estimator ran.
	ActualEpoch []float64
	Estimates   map[string][]float64 // estimator name -> per-app estimate
	Errors      map[string][]float64 // estimator name -> per-app |error|
	Unfairness  float64              // Eq. 2 on actual slowdowns
	HSpeedup    float64              // Eq. 27 on actual slowdowns
}

// Options configure an evaluation run.
type Options struct {
	Cfg          config.Config
	SharedCycles uint64
	Seed         uint64
	// WarmupIntervals are skipped when averaging estimator intervals.
	WarmupIntervals int
	// Estimators evaluated on the plain shared run (DASE and other
	// passive-counter models).
	Estimators []core.Estimator
	// EpochEstimators evaluated on a second shared run with the rotating
	// highest-priority memory-controller epochs enabled — the system MISE
	// and ASM are designed around. Each estimator family is judged against
	// the actual slowdowns of its own system.
	EpochEstimators []core.Estimator
	// SimOpts are engine options applied to every simulation this
	// evaluation runs (e.g. sim.WithParallelism). Only observation- or
	// speed-only options are sound here: results must not depend on them,
	// or the evaluation would measure the option instead of the workload.
	SimOpts []sim.Option
}

// DefaultOptions returns the evaluation configuration used throughout the
// experiments: Table II GPU, one-interval warmup.
func DefaultOptions(sharedCycles uint64) Options {
	return Options{
		Cfg:             config.Default(),
		SharedCycles:    sharedCycles,
		Seed:            1,
		WarmupIntervals: 1,
	}
}

// Evaluate runs one combo with the given SM allocation and computes actual
// slowdowns and per-estimator errors. When EpochEstimators are present, a
// second run with priority epochs provides their inputs and ground truth.
func Evaluate(opt Options, combo Combo, alloc []int, cache Baseline) (*Eval, error) {
	return EvaluateContext(context.Background(), opt, combo, alloc, cache)
}

// EvaluateContext is Evaluate with cancellation: the shared runs, epoch runs
// and alone-baseline lookups all abort once ctx expires.
func EvaluateContext(ctx context.Context, opt Options, combo Combo, alloc []int, cache Baseline) (*Eval, error) {
	shared, err := sim.RunSharedContext(ctx, opt.Cfg, combo.Profiles, alloc, opt.SharedCycles, opt.Seed, opt.SimOpts...)
	if err != nil {
		return nil, fmt.Errorf("workload %s: %w", combo.Name(), err)
	}
	ev := &Eval{
		Combo:     combo,
		Alloc:     append([]int(nil), alloc...),
		Shared:    shared,
		AloneIPC:  make([]float64, len(combo.Profiles)),
		Actual:    make([]float64, len(combo.Profiles)),
		Estimates: map[string][]float64{},
		Errors:    map[string][]float64{},
	}
	for i, p := range combo.Profiles {
		alone, err := baselineGet(ctx, cache, p)
		if err != nil {
			return nil, err
		}
		ev.AloneIPC[i] = alone.Apps[0].IPC
		ev.Actual[i] = metrics.Slowdown(alone.Apps[0].IPC, shared.Apps[i].IPC)
	}
	ev.Unfairness = metrics.Unfairness(ev.Actual)
	ev.HSpeedup = metrics.HarmonicSpeedup(ev.Actual)

	record := func(est core.Estimator, snaps []sim.IntervalSnapshot, actual []float64) {
		vals := core.AverageEstimates(est, snaps, opt.WarmupIntervals)
		ev.Estimates[est.Name()] = vals
		errs := make([]float64, len(vals))
		for i := range vals {
			errs[i] = metrics.Error(vals[i], actual[i])
		}
		ev.Errors[est.Name()] = errs
	}
	for _, est := range opt.Estimators {
		record(est, shared.Snapshots, ev.Actual)
	}

	if len(opt.EpochEstimators) > 0 {
		epochRun, err := sim.RunSharedContext(ctx, opt.Cfg, combo.Profiles, alloc, opt.SharedCycles, opt.Seed,
			append([]sim.Option{sim.WithPriorityEpochs()}, opt.SimOpts...)...)
		if err != nil {
			return nil, fmt.Errorf("workload %s (epochs): %w", combo.Name(), err)
		}
		ev.ActualEpoch = make([]float64, len(combo.Profiles))
		for i := range combo.Profiles {
			ev.ActualEpoch[i] = metrics.Slowdown(ev.AloneIPC[i], epochRun.Apps[i].IPC)
		}
		for _, est := range opt.EpochEstimators {
			record(est, epochRun.Snapshots, ev.ActualEpoch)
		}
	}
	return ev, nil
}

// Job pairs a combo with its allocation for batch evaluation.
type Job struct {
	Combo Combo
	Alloc []int
}

// EvaluateAll evaluates jobs in parallel over a GOMAXPROCS-sized worker
// pool, preserving input order. The first error cancels the batch: jobs not
// yet started are skipped and in-flight simulations abort.
func EvaluateAll(opt Options, jobs []Job, cache Baseline) ([]*Eval, error) {
	return EvaluateAllContext(context.Background(), opt, jobs, cache)
}

// EvaluateAllContext is EvaluateAll under an external context (cancelling
// ctx aborts the whole batch). The returned error is the first root-cause
// failure in job order; cancellations induced by that failure are not
// reported as the batch error.
func EvaluateAllContext(ctx context.Context, opt Options, jobs []Job, cache Baseline) ([]*Eval, error) {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	out := make([]*Eval, len(jobs))
	errs := make([]error, len(jobs))
	idxCh := make(chan int)
	var wg sync.WaitGroup
	workers := runtime.GOMAXPROCS(0)
	if workers > len(jobs) {
		workers = len(jobs)
	}
	if workers < 1 {
		workers = 1
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idxCh {
				if err := ctx.Err(); err != nil {
					errs[i] = err
					continue
				}
				out[i], errs[i] = EvaluateContext(ctx, opt, jobs[i].Combo, jobs[i].Alloc, cache)
				if errs[i] != nil {
					cancel()
				}
			}
		}()
	}
	for i := range jobs {
		idxCh <- i
	}
	close(idxCh)
	wg.Wait()
	var firstErr error
	for _, e := range errs {
		if e == nil {
			continue
		}
		if firstErr == nil {
			firstErr = e
		}
		// Prefer the real failure over the cancellations it induced.
		if !errors.Is(e, context.Canceled) {
			return nil, e
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}
