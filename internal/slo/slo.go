// Package slo evaluates declarative service-level objectives over sliding
// windows of metric snapshots, in the SRE error-budget idiom: each objective
// names a good-event criterion (histogram observations under a bound, or a
// gauge staying inside a bound), a target good fraction, and multi-window
// burn-rate alert rules. The evaluator consumes the same
// telemetry.FamilySnapshot stream the metrics-federation layer ships between
// nodes, so one implementation serves a single dased, a cluster, and
// offline analysis alike.
//
// Burn rate is the standard normalization: bad-fraction over a window
// divided by the error budget (1 - target). A burn rate of 1 spends the
// budget exactly at the end of the (implied) compliance period; 14.4 spends
// a 30-day budget in 2 days. The default alert rules are the SRE-workbook
// pair — page on a fast burn over (1h, 5m), ticket on a slow burn over
// (6h, 30m) — with both windows required to exceed the threshold so a
// transient spike that already recovered does not alert.
package slo

import (
	"fmt"
	"time"

	"dasesim/internal/telemetry"
)

// Objective is one declarative SLO.
type Objective struct {
	// Name identifies the objective in statuses, gauges and dashboards.
	Name string `json:"name"`
	// Description is a human-readable summary.
	Description string `json:"description,omitempty"`
	// Metric is the telemetry family the objective watches.
	Metric string `json:"metric"`
	// Labels selects the family child by exact label-value match; empty
	// selects the unlabelled (or first) child.
	Labels []string `json:"labels,omitempty"`
	// Threshold is the good/bad boundary: for histogram objectives, an
	// observation is good when it lands in a bucket with upper bound <=
	// Threshold (align it with a bucket bound for exactness); for gauge
	// objectives, a tick is good when the sampled value satisfies the bound.
	Threshold float64 `json:"threshold"`
	// Target is the required good fraction in (0,1), e.g. 0.99 for
	// "p99 under Threshold". The error budget is 1 - Target.
	Target float64 `json:"target"`
	// Gauge interprets Metric as a gauge sampled once per evaluator tick
	// instead of a histogram.
	Gauge bool `json:"gauge,omitempty"`
	// GaugeMin: when true the gauge must stay >= Threshold (a floor, e.g.
	// fairness index > 0.9); when false it must stay <= Threshold.
	GaugeMin bool `json:"gauge_min,omitempty"`
	// Alerts are the burn-rate alert rules; nil takes DefaultAlerts.
	Alerts []Alert `json:"alerts,omitempty"`
}

// Alert is one multi-window burn-rate rule: it fires when the burn rate over
// BOTH the long and the short window reaches Burn. The short window gates
// alert reset — once the bad fraction stops accumulating, the short window
// clears first and the alert resolves without waiting out the long window.
type Alert struct {
	Long  time.Duration `json:"long"`
	Short time.Duration `json:"short"`
	Burn  float64       `json:"burn"`
}

// DefaultAlerts are the SRE-workbook multi-window pairs: a fast-burn page
// (14.4x over 1h/5m: a 30-day budget gone in 2 days) and a slow-burn ticket
// (6x over 6h/30m).
func DefaultAlerts() []Alert {
	return []Alert{
		{Long: time.Hour, Short: 5 * time.Minute, Burn: 14.4},
		{Long: 6 * time.Hour, Short: 30 * time.Minute, Burn: 6},
	}
}

// DefaultObjectives are the paper-derived service objectives the daemon
// ships with: the online estimation API answers in under a millisecond at
// p99, and the DASE estimate stays within 10% relative error of the
// measured slowdown for 90% of intervals (the paper reports ~7.9% mean
// error, so sustained breaches mean the estimator is off its calibration).
func DefaultObjectives() []Objective {
	return []Objective{
		{
			Name:        "estimate-latency-p99",
			Description: "online estimation answers in < 1ms at p99",
			Metric:      "dased_estimate_latency_seconds",
			Threshold:   0.001, Target: 0.99,
		},
		{
			Name:        "dase-error",
			Description: "DASE slowdown estimate within 10% of measured for 90% of intervals",
			Metric:      "dased_estimation_error",
			Threshold:   0.1, Target: 0.9,
		},
	}
}

// FairnessObjective is the fleet-level objective dasetop evaluates from
// tenant telemetry: the Jain fairness index of per-tenant shares must stay
// above min for all but 1-target of samples.
func FairnessObjective(min, target float64) Objective {
	return Objective{
		Name:        "fleet-fairness",
		Description: fmt.Sprintf("Jain fairness index stays above %g", min),
		Metric:      "fleet_jain_index",
		Threshold:   min, Target: target,
		Gauge: true, GaugeMin: true,
	}
}

// WindowStatus is one window's burn-rate reading.
type WindowStatus struct {
	Window   string  `json:"window"` // e.g. "5m"
	BadRatio float64 `json:"bad_ratio"`
	BurnRate float64 `json:"burn_rate"`
}

// Status is one objective's evaluation.
type Status struct {
	Name        string  `json:"name"`
	Description string  `json:"description,omitempty"`
	Target      float64 `json:"target"`
	// Current is the all-time good fraction (gauge objectives: the last
	// sampled value).
	Current  float64        `json:"current"`
	Windows  []WindowStatus `json:"windows,omitempty"`
	Alerting bool           `json:"alerting"`
	// MaxBurn is the highest burn rate across windows, the single number a
	// dashboard sorts by.
	MaxBurn float64 `json:"max_burn"`
}

// counts is one cumulative good/total reading.
type counts struct {
	t           time.Time
	good, total float64
}

// objectiveState is an objective plus its retained sample ring.
type objectiveState struct {
	obj     Objective
	samples []counts
	last    float64 // last raw gauge value
}

// Evaluator turns a stream of registry snapshots into objective statuses.
// It is not concurrency-safe; serialize Tick and Statuses externally (the
// server wraps it in its own mutex).
type Evaluator struct {
	states []objectiveState
	now    func() time.Time
	keep   time.Duration
	latest []Status
}

// Option configures an Evaluator.
type Option func(*Evaluator)

// WithClock injects a deterministic time source for tests.
func WithClock(now func() time.Time) Option {
	return func(e *Evaluator) { e.now = now }
}

// NewEvaluator builds an evaluator for the given objectives. Samples are
// retained just past the longest alert window.
func NewEvaluator(objectives []Objective, opts ...Option) *Evaluator {
	e := &Evaluator{now: time.Now}
	for _, o := range objectives {
		if o.Alerts == nil {
			o.Alerts = DefaultAlerts()
		}
		for _, a := range o.Alerts {
			if a.Long > e.keep {
				e.keep = a.Long
			}
		}
		e.states = append(e.states, objectiveState{obj: o})
	}
	if e.keep == 0 {
		e.keep = time.Hour
	}
	for _, opt := range opts {
		opt(e)
	}
	return e
}

// Objectives returns the configured objectives (alert rules defaulted).
func (e *Evaluator) Objectives() []Objective {
	out := make([]Objective, len(e.states))
	for i := range e.states {
		out[i] = e.states[i].obj
	}
	return out
}

// Tick ingests one registry snapshot and recomputes every objective's
// status. Call it on a fixed cadence; gauge objectives count one good/bad
// event per tick.
func (e *Evaluator) Tick(fams []telemetry.FamilySnapshot) []Status {
	now := e.now()
	out := make([]Status, 0, len(e.states))
	for i := range e.states {
		st := &e.states[i]
		c, raw, ok := extract(st.obj, fams, now)
		if ok {
			if st.obj.Gauge {
				// Gauges accumulate one event per tick.
				var prev counts
				if n := len(st.samples); n > 0 {
					prev = st.samples[n-1]
				}
				c.good += prev.good
				c.total += prev.total
				st.last = raw
			}
			st.samples = append(st.samples, c)
			st.trim(now.Add(-e.keep))
		}
		out = append(out, st.status())
	}
	e.latest = out
	return out
}

// Statuses returns the statuses computed by the last Tick.
func (e *Evaluator) Statuses() []Status { return e.latest }

// trim drops samples older than cutoff, always keeping one sample at or
// before it so window deltas spanning the whole retention stay exact.
func (s *objectiveState) trim(cutoff time.Time) {
	first := 0
	for i, c := range s.samples {
		if !c.t.Before(cutoff) {
			break
		}
		first = i
	}
	if first > 0 {
		s.samples = append(s.samples[:0], s.samples[first:]...)
	}
}

// extract reads the objective's cumulative good/total counts (and the raw
// gauge value) out of a snapshot.
func extract(o Objective, fams []telemetry.FamilySnapshot, now time.Time) (counts, float64, bool) {
	fam, pt := findPoint(fams, o.Metric, o.Labels)
	if pt == nil {
		return counts{}, 0, false
	}
	if o.Gauge {
		v := pt.Value
		good := 0.0
		if (o.GaugeMin && v >= o.Threshold) || (!o.GaugeMin && v <= o.Threshold) {
			good = 1
		}
		return counts{t: now, good: good, total: 1}, v, true
	}
	var good float64
	for i, bound := range fam.Buckets {
		if bound <= o.Threshold+1e-12 && i < len(pt.BucketCounts) {
			good += float64(pt.BucketCounts[i])
		}
	}
	return counts{t: now, good: good, total: float64(pt.Count)}, 0, true
}

// findPoint locates a family and the child matching the label values.
func findPoint(fams []telemetry.FamilySnapshot, name string, labels []string) (*telemetry.FamilySnapshot, *telemetry.PointSnapshot) {
	for i := range fams {
		if fams[i].Name != name {
			continue
		}
		f := &fams[i]
		if len(labels) == 0 {
			if len(f.Points) > 0 {
				return f, &f.Points[0]
			}
			return f, nil
		}
		for j := range f.Points {
			if equalStrings(f.Points[j].LabelValues, labels) {
				return f, &f.Points[j]
			}
		}
		return f, nil
	}
	return nil, nil
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// status computes the objective's current status from its sample ring.
func (s *objectiveState) status() Status {
	o := s.obj
	st := Status{Name: o.Name, Description: o.Description, Target: o.Target}
	if len(s.samples) == 0 {
		st.Current = 1
		if o.Gauge {
			st.Current = 0
		}
		return st
	}
	latest := s.samples[len(s.samples)-1]
	if o.Gauge {
		st.Current = s.last
	} else if latest.total > 0 {
		st.Current = latest.good / latest.total
	} else {
		st.Current = 1
	}
	budget := 1 - o.Target
	if budget <= 0 {
		budget = 1e-9
	}
	now := latest.t
	burn := func(w time.Duration) (float64, float64) {
		base := s.at(now.Add(-w))
		dTotal := latest.total - base.total
		if dTotal <= 0 {
			return 0, 0
		}
		bad := 1 - (latest.good-base.good)/dTotal
		if bad < 0 {
			bad = 0
		}
		return bad, bad / budget
	}
	seen := map[time.Duration]bool{}
	for _, a := range o.Alerts {
		longBad, longBurn := burn(a.Long)
		shortBad, shortBurn := burn(a.Short)
		for _, w := range []struct {
			d         time.Duration
			bad, rate float64
		}{{a.Long, longBad, longBurn}, {a.Short, shortBad, shortBurn}} {
			if !seen[w.d] {
				seen[w.d] = true
				st.Windows = append(st.Windows, WindowStatus{
					Window: w.d.String(), BadRatio: w.bad, BurnRate: w.rate,
				})
			}
			if w.rate > st.MaxBurn {
				st.MaxBurn = w.rate
			}
		}
		if longBurn >= a.Burn && shortBurn >= a.Burn {
			st.Alerting = true
		}
	}
	return st
}

// at returns the newest sample at or before t (the window's baseline); the
// zero counts when every sample is newer — the window then covers the whole
// observed history, which is the honest reading during warm-up.
func (s *objectiveState) at(t time.Time) counts {
	var base counts
	for _, c := range s.samples {
		if c.t.After(t) {
			break
		}
		base = c
	}
	return base
}
