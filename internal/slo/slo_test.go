package slo

import (
	"testing"
	"time"

	"dasesim/internal/telemetry"
)

// histSnap builds a one-family snapshot with the given bucket counts
// (non-cumulative, +Inf last).
func histSnap(name string, bounds []float64, counts []uint64) []telemetry.FamilySnapshot {
	var total uint64
	for _, c := range counts {
		total += c
	}
	return []telemetry.FamilySnapshot{{
		Name: name, Type: "histogram", Buckets: bounds,
		Points: []telemetry.PointSnapshot{{BucketCounts: counts, Count: total}},
	}}
}

func gaugeSnap(name string, v float64) []telemetry.FamilySnapshot {
	return []telemetry.FamilySnapshot{{
		Name: name, Type: "gauge",
		Points: []telemetry.PointSnapshot{{Value: v}},
	}}
}

// fakeClock steps a deterministic wall clock.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newFakeClock() *fakeClock               { return &fakeClock{t: time.Unix(1_700_000_000, 0)} }

func TestHistogramObjectiveHealthy(t *testing.T) {
	clk := newFakeClock()
	obj := Objective{
		Name: "lat", Metric: "m", Threshold: 0.001, Target: 0.99,
		Alerts: []Alert{{Long: 10 * time.Minute, Short: time.Minute, Burn: 14.4}},
	}
	e := NewEvaluator([]Objective{obj}, WithClock(clk.now))
	bounds := []float64{0.0005, 0.001, 0.005}

	// 1000 observations per tick, all under the threshold.
	var good uint64
	var statuses []Status
	for i := 0; i < 12; i++ {
		good += 1000
		statuses = e.Tick(histSnap("m", bounds, []uint64{good / 2, good / 2, 0, 0}))
		clk.advance(time.Minute)
	}
	st := statuses[0]
	if st.Alerting {
		t.Fatalf("healthy service alerting: %+v", st)
	}
	if st.Current != 1 {
		t.Fatalf("current good fraction = %g, want 1", st.Current)
	}
	if st.MaxBurn != 0 {
		t.Fatalf("max burn = %g, want 0", st.MaxBurn)
	}
	if len(st.Windows) != 2 {
		t.Fatalf("want 2 windows, got %+v", st.Windows)
	}
}

func TestHistogramObjectiveFastBurnAlerts(t *testing.T) {
	clk := newFakeClock()
	obj := Objective{
		Name: "lat", Metric: "m", Threshold: 0.001, Target: 0.99,
		Alerts: []Alert{{Long: 10 * time.Minute, Short: time.Minute, Burn: 14.4}},
	}
	e := NewEvaluator([]Objective{obj}, WithClock(clk.now))
	bounds := []float64{0.001}

	// Healthy warm-up, then every observation breaches the threshold: the
	// bad ratio goes to ~1 in both windows, burn rate ~1/budget = 100.
	var good, bad uint64
	var statuses []Status
	for i := 0; i < 20; i++ {
		if i < 10 {
			good += 1000
		} else {
			bad += 1000
		}
		statuses = e.Tick(histSnap("m", bounds, []uint64{good, bad}))
		clk.advance(time.Minute)
	}
	st := statuses[0]
	if !st.Alerting {
		t.Fatalf("sustained total breach must alert: %+v", st)
	}
	if st.MaxBurn < 50 {
		t.Fatalf("max burn = %g, want ~100", st.MaxBurn)
	}
}

func TestMultiWindowGatesOnShortWindow(t *testing.T) {
	clk := newFakeClock()
	obj := Objective{
		Name: "lat", Metric: "m", Threshold: 0.001, Target: 0.9,
		Alerts: []Alert{{Long: 20 * time.Minute, Short: 2 * time.Minute, Burn: 5}},
	}
	e := NewEvaluator([]Objective{obj}, WithClock(clk.now))
	bounds := []float64{0.001}

	// A burst of bad observations, then full recovery. While the burst is
	// fresh both windows burn; once only good observations accumulate the
	// short window clears and the alert must resolve even though the long
	// window still carries the burst.
	var good, bad uint64
	alertedDuringBurst := false
	var st Status
	for i := 0; i < 22; i++ {
		if i >= 2 && i < 8 {
			bad += 1000
		} else {
			good += 1000
		}
		st = e.Tick(histSnap("m", bounds, []uint64{good, bad}))[0]
		if i < 10 && st.Alerting {
			alertedDuringBurst = true
		}
		clk.advance(time.Minute)
	}
	if !alertedDuringBurst {
		t.Fatal("burst never alerted")
	}
	if st.Alerting {
		t.Fatalf("alert must resolve after recovery (short window clean): %+v", st)
	}
}

func TestGaugeObjectiveFairness(t *testing.T) {
	clk := newFakeClock()
	obj := FairnessObjective(0.9, 0.95)
	obj.Alerts = []Alert{{Long: 10 * time.Minute, Short: 2 * time.Minute, Burn: 2}}
	e := NewEvaluator([]Objective{obj}, WithClock(clk.now))

	var st Status
	for i := 0; i < 10; i++ {
		st = e.Tick(gaugeSnap("fleet_jain_index", 0.97))[0]
		clk.advance(time.Minute)
	}
	if st.Alerting {
		t.Fatalf("fair fleet alerting: %+v", st)
	}
	if st.Current != 0.97 {
		t.Fatalf("gauge current = %g, want raw value 0.97", st.Current)
	}

	// Fairness collapses: every tick is now a bad event.
	for i := 0; i < 10; i++ {
		st = e.Tick(gaugeSnap("fleet_jain_index", 0.5))[0]
		clk.advance(time.Minute)
	}
	if !st.Alerting {
		t.Fatalf("collapsed fairness must alert: %+v", st)
	}
}

func TestMissingMetricIsQuiet(t *testing.T) {
	clk := newFakeClock()
	e := NewEvaluator(DefaultObjectives(), WithClock(clk.now))
	statuses := e.Tick(nil)
	if len(statuses) != 2 {
		t.Fatalf("want a status per objective, got %d", len(statuses))
	}
	for _, st := range statuses {
		if st.Alerting {
			t.Fatalf("absent metric must not alert: %+v", st)
		}
	}
}

func TestEmptyHistogramNoBurn(t *testing.T) {
	clk := newFakeClock()
	e := NewEvaluator(DefaultObjectives(), WithClock(clk.now))
	var statuses []Status
	for i := 0; i < 5; i++ {
		statuses = e.Tick(histSnap("dased_estimate_latency_seconds",
			[]float64{0.001}, []uint64{0, 0}))
		clk.advance(time.Minute)
	}
	st := statuses[0]
	if st.MaxBurn != 0 || st.Alerting {
		t.Fatalf("idle service must not burn: %+v", st)
	}
	if st.Current != 1 {
		t.Fatalf("idle current = %g, want 1 (no observations, no violations)", st.Current)
	}
}

func TestSampleTrimKeepsWindowBaseline(t *testing.T) {
	clk := newFakeClock()
	obj := Objective{
		Name: "lat", Metric: "m", Threshold: 1, Target: 0.5,
		Alerts: []Alert{{Long: 5 * time.Minute, Short: time.Minute, Burn: 1}},
	}
	e := NewEvaluator([]Objective{obj}, WithClock(clk.now))
	var good uint64
	for i := 0; i < 200; i++ {
		good += 10
		e.Tick(histSnap("m", []float64{1}, []uint64{good, 0}))
		clk.advance(time.Minute)
	}
	if n := len(e.states[0].samples); n > 10 {
		t.Fatalf("sample ring not trimmed: %d samples retained for a 5m window", n)
	}
}

func TestStatusesReturnsLastTick(t *testing.T) {
	clk := newFakeClock()
	e := NewEvaluator(DefaultObjectives(), WithClock(clk.now))
	if got := e.Statuses(); got != nil {
		t.Fatalf("statuses before any tick = %+v, want nil", got)
	}
	want := e.Tick(nil)
	got := e.Statuses()
	if len(got) != len(want) || got[0].Name != want[0].Name {
		t.Fatalf("Statuses() = %+v, want %+v", got, want)
	}
}
