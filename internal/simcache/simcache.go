// Package simcache provides a content-addressed, concurrency-safe cache for
// simulation results. Simulations are deterministic functions of (GPU
// configuration, kernel profiles, SM allocation, cycle budget, seed, run
// variant), so a result computed once can be served to every later query
// with the same key — the server uses this to answer repeated job
// submissions without re-simulating, and workload.AloneCache uses it to
// share the 15 alone baselines across the 105 pair evaluations.
//
// The Memory implementation additionally deduplicates in-flight computation:
// when several goroutines ask for the same missing key concurrently, exactly
// one runs the simulation and the rest wait for its result.
package simcache

import (
	"context"
	"crypto/sha256"
	"encoding/json"
	"errors"
	"fmt"
	"sync"

	"dasesim/internal/config"
	"dasesim/internal/faults"
	"dasesim/internal/kernels"
	"dasesim/internal/sim"
)

// Key derives the content address of one simulation run. Variant
// distinguishes run modes that share the same inputs but execute differently
// (e.g. "alone", "shared/even", "shared/fair", "shared/epochs"). The key is
// stable across processes: it hashes the canonical JSON encoding of the
// inputs, with the configuration pre-hashed by config.Fingerprint.
func Key(cfg config.Config, profiles []kernels.Profile, alloc []int, cycles, seed uint64, variant string) string {
	payload := struct {
		Config   string
		Profiles []kernels.Profile
		Alloc    []int
		Cycles   uint64
		Seed     uint64
		Variant  string
	}{cfg.Fingerprint(), profiles, alloc, cycles, seed, variant}
	data, err := json.Marshal(payload)
	if err != nil {
		// All fields are plain data; Marshal cannot fail.
		panic(fmt.Sprintf("simcache: key: %v", err))
	}
	return fmt.Sprintf("%x", sha256.Sum256(data))
}

// Stats is a point-in-time snapshot of cache effectiveness counters.
type Stats struct {
	Hits      uint64 // lookups served without simulating
	Misses    uint64 // lookups that had to simulate
	Evictions uint64 // entries dropped by the size bound
	Entries   int    // current resident results
}

// Cache is the result-cache interface shared by the simulation-service
// layer and the workload evaluation harness. Cached results are shared:
// callers must treat them as immutable.
type Cache interface {
	// Get returns the cached result for key, if present.
	Get(key string) (*sim.Result, bool)
	// Put stores a computed result under key.
	Put(key string, r *sim.Result)
	// GetOrCompute returns the cached result for key, or runs compute to
	// produce (and cache) it. Concurrent calls for the same key run compute
	// once; waiters observe the winner's result, or recompute themselves if
	// the winner failed. A waiter whose ctx expires returns ctx.Err().
	GetOrCompute(ctx context.Context, key string, compute func() (*sim.Result, error)) (*sim.Result, error)
	// Stats reports effectiveness counters.
	Stats() Stats
}

// flight is one in-progress computation other goroutines can wait on.
type flight struct {
	done chan struct{}
	r    *sim.Result
	err  error
}

// Memory is a bounded in-memory Cache with FIFO eviction. The zero value is
// not usable; construct with NewMemory.
type Memory struct {
	mu      sync.Mutex
	entries map[string]*sim.Result
	order   []string // insertion order for FIFO eviction
	flights map[string]*flight
	max     int

	hits, misses, evictions uint64
}

// DefaultMaxEntries bounds a Memory cache when NewMemory is given a
// non-positive capacity. A full result with snapshots is O(10 KB), so the
// default caps resident results around a few MB.
const DefaultMaxEntries = 512

// NewMemory builds an empty cache holding at most maxEntries results
// (DefaultMaxEntries when maxEntries <= 0).
func NewMemory(maxEntries int) *Memory {
	if maxEntries <= 0 {
		maxEntries = DefaultMaxEntries
	}
	return &Memory{
		entries: map[string]*sim.Result{},
		flights: map[string]*flight{},
		max:     maxEntries,
	}
}

// Get implements Cache.
func (m *Memory) Get(key string) (*sim.Result, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	r, ok := m.entries[key]
	if ok {
		m.hits++
	} else {
		m.misses++
	}
	return r, ok
}

// Put implements Cache.
func (m *Memory) Put(key string, r *sim.Result) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.put(key, r)
}

// put stores r under key; the caller holds m.mu.
func (m *Memory) put(key string, r *sim.Result) {
	if _, ok := m.entries[key]; ok {
		m.entries[key] = r
		return
	}
	for len(m.entries) >= m.max && len(m.order) > 0 {
		oldest := m.order[0]
		m.order = m.order[1:]
		if _, ok := m.entries[oldest]; ok {
			delete(m.entries, oldest)
			m.evictions++
		}
	}
	m.entries[key] = r
	m.order = append(m.order, key)
}

// PutIfAbsent stores r under key only when the key is not already resident,
// reporting whether it inserted. Results are deterministic functions of the
// key, so a lost race changes nothing — but the report lets callers count
// duplicates, which is how the cluster layer measures how much redundant
// work a partition caused when the halves reconcile.
func (m *Memory) PutIfAbsent(key string, r *sim.Result) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.entries[key]; ok {
		return false
	}
	m.put(key, r)
	return true
}

// Peek reports whether key is resident without touching the hit/miss
// counters — the server's admission control uses it to tell cheap
// (already-cached) submissions from expensive ones when shedding load.
func (m *Memory) Peek(key string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	_, ok := m.entries[key]
	return ok
}

// GetOrCompute implements Cache.
func (m *Memory) GetOrCompute(ctx context.Context, key string, compute func() (*sim.Result, error)) (*sim.Result, error) {
	if err := faults.FireCtx(ctx, "simcache.get"); err != nil {
		return nil, err
	}
	for {
		m.mu.Lock()
		if r, ok := m.entries[key]; ok {
			m.hits++
			m.mu.Unlock()
			return r, nil
		}
		if fl, ok := m.flights[key]; ok {
			m.mu.Unlock()
			select {
			case <-fl.done:
				if fl.err == nil {
					// Served by the winner's simulation: a hit for us.
					m.mu.Lock()
					m.hits++
					m.mu.Unlock()
					return fl.r, nil
				}
				// The winner failed (possibly its own cancellation);
				// retry with our own context and compute.
				continue
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		fl := &flight{done: make(chan struct{})}
		m.flights[key] = fl
		m.misses++
		m.mu.Unlock()

		// The cleanup must run even when compute panics (the server recovers
		// worker panics and may retry the same key): the flight is removed
		// and its done channel closed with an error, so waiters recompute
		// instead of blocking forever on an abandoned flight.
		var (
			r        *sim.Result
			err      error
			panicked = true
		)
		func() {
			defer func() {
				m.mu.Lock()
				delete(m.flights, key)
				if !panicked && err == nil {
					m.put(key, r)
				}
				m.mu.Unlock()
				fl.r, fl.err = r, err
				if panicked && fl.err == nil {
					fl.err = errors.New("simcache: compute panicked")
				}
				close(fl.done)
			}()
			r, err = compute()
			panicked = false
		}()
		return r, err
	}
}

// Stats implements Cache.
func (m *Memory) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return Stats{Hits: m.hits, Misses: m.misses, Evictions: m.evictions, Entries: len(m.entries)}
}
