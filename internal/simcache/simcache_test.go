package simcache

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"dasesim/internal/config"
	"dasesim/internal/kernels"
	"dasesim/internal/sim"
)

func testProfiles() []kernels.Profile {
	a, _ := kernels.ByAbbr("SB")
	b, _ := kernels.ByAbbr("SD")
	return []kernels.Profile{a, b}
}

func TestKeyStableAndSensitive(t *testing.T) {
	cfg := config.Default()
	ps := testProfiles()
	base := Key(cfg, ps, []int{8, 8}, 100_000, 1, "shared/even")
	if base != Key(cfg, ps, []int{8, 8}, 100_000, 1, "shared/even") {
		t.Fatal("key not deterministic")
	}
	variants := map[string]string{
		"alloc":   Key(cfg, ps, []int{4, 12}, 100_000, 1, "shared/even"),
		"cycles":  Key(cfg, ps, []int{8, 8}, 200_000, 1, "shared/even"),
		"seed":    Key(cfg, ps, []int{8, 8}, 100_000, 2, "shared/even"),
		"variant": Key(cfg, ps, []int{8, 8}, 100_000, 1, "shared/fair"),
	}
	cfg2 := cfg
	cfg2.NumMCs = 8
	variants["config"] = Key(cfg2, ps, []int{8, 8}, 100_000, 1, "shared/even")
	ps2 := testProfiles()
	ps2[0].MemFrac *= 2
	variants["profile"] = Key(cfg, ps2, []int{8, 8}, 100_000, 1, "shared/even")
	for name, k := range variants {
		if k == base {
			t.Errorf("changing %s did not change the key", name)
		}
	}
}

func TestConfigFingerprintStable(t *testing.T) {
	cfg := config.Default()
	if cfg.Fingerprint() != config.Default().Fingerprint() {
		t.Fatal("fingerprint not deterministic")
	}
	cfg2 := cfg
	cfg2.IntervalCycles++
	if cfg.Fingerprint() == cfg2.Fingerprint() {
		t.Fatal("fingerprint insensitive to a field change")
	}
}

func TestMemoryGetPutStats(t *testing.T) {
	m := NewMemory(4)
	if _, ok := m.Get("a"); ok {
		t.Fatal("empty cache hit")
	}
	r := &sim.Result{Cycles: 7}
	m.Put("a", r)
	got, ok := m.Get("a")
	if !ok || got != r {
		t.Fatal("stored result not returned")
	}
	st := m.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestMemoryEviction(t *testing.T) {
	m := NewMemory(2)
	for i := 0; i < 3; i++ {
		m.Put(fmt.Sprintf("k%d", i), &sim.Result{Cycles: uint64(i)})
	}
	if _, ok := m.Get("k0"); ok {
		t.Fatal("oldest entry survived beyond the bound")
	}
	if _, ok := m.Get("k2"); !ok {
		t.Fatal("newest entry evicted")
	}
	if st := m.Stats(); st.Evictions != 1 || st.Entries != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestGetOrComputeSingleFlight(t *testing.T) {
	m := NewMemory(8)
	var computes atomic.Int64
	release := make(chan struct{})
	const waiters = 8
	var wg sync.WaitGroup
	results := make([]*sim.Result, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r, err := m.GetOrCompute(context.Background(), "k", func() (*sim.Result, error) {
				computes.Add(1)
				<-release
				return &sim.Result{Cycles: 42}, nil
			})
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = r
		}(i)
	}
	// Let the goroutines pile onto the flight, then release the winner.
	for m.Stats().Misses == 0 {
		runtime.Gosched()
	}
	close(release)
	wg.Wait()
	if n := computes.Load(); n != 1 {
		t.Fatalf("compute ran %d times, want 1", n)
	}
	for _, r := range results {
		if r == nil || r.Cycles != 42 {
			t.Fatalf("waiter saw %+v", r)
		}
	}
}

func TestGetOrComputeErrorNotCached(t *testing.T) {
	m := NewMemory(8)
	boom := errors.New("boom")
	_, err := m.GetOrCompute(context.Background(), "k", func() (*sim.Result, error) {
		return nil, boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	r, err := m.GetOrCompute(context.Background(), "k", func() (*sim.Result, error) {
		return &sim.Result{Cycles: 1}, nil
	})
	if err != nil || r.Cycles != 1 {
		t.Fatalf("recovery compute: %v %+v", err, r)
	}
}

func TestGetOrComputeWaiterCancellation(t *testing.T) {
	m := NewMemory(8)
	release := make(chan struct{})
	started := make(chan struct{})
	go func() {
		_, _ = m.GetOrCompute(context.Background(), "k", func() (*sim.Result, error) {
			close(started)
			<-release
			return &sim.Result{}, nil
		})
	}()
	<-started
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := m.GetOrCompute(ctx, "k", func() (*sim.Result, error) {
		t.Error("waiter must not compute")
		return nil, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	close(release)
}

// TestPutIfAbsent checks insert-vs-duplicate reporting and that a duplicate
// leaves the resident result in place.
func TestPutIfAbsent(t *testing.T) {
	m := NewMemory(4)
	a, b := &sim.Result{Cycles: 1}, &sim.Result{Cycles: 2}
	if !m.PutIfAbsent("k", a) {
		t.Fatal("first PutIfAbsent reported duplicate")
	}
	if m.PutIfAbsent("k", b) {
		t.Fatal("second PutIfAbsent reported insert")
	}
	if got, ok := m.Get("k"); !ok || got != a {
		t.Fatal("duplicate PutIfAbsent replaced the resident result")
	}
}
