// Package metrics implements the paper's evaluation metrics: per-application
// slowdown (Eq. 1), system unfairness (Eq. 2), slowdown-estimation error
// (Eq. 26), harmonic speedup (Eq. 27), and the error-distribution histogram
// of Figure 7.
package metrics

import (
	"fmt"
	"math"
	"sort"
)

// Slowdown computes IPCalone / IPCshared (Eq. 1).
func Slowdown(ipcAlone, ipcShared float64) float64 {
	if ipcShared <= 0 {
		return math.Inf(1)
	}
	return ipcAlone / ipcShared
}

// Unfairness is MAX(slowdowns)/MIN(slowdowns) (Eq. 2); 1.0 is perfectly
// fair. It returns NaN for an empty slice.
func Unfairness(slowdowns []float64) float64 {
	if len(slowdowns) == 0 {
		return math.NaN()
	}
	mx, mn := slowdowns[0], slowdowns[0]
	for _, s := range slowdowns[1:] {
		if s > mx {
			mx = s
		}
		if s < mn {
			mn = s
		}
	}
	if mn <= 0 {
		return math.Inf(1)
	}
	return mx / mn
}

// HarmonicSpeedup is N / Σ slowdown_i (Eq. 27), the harmonic mean of the
// per-application speedups — a balanced fairness/performance measure.
func HarmonicSpeedup(slowdowns []float64) float64 {
	if len(slowdowns) == 0 {
		return math.NaN()
	}
	var sum float64
	for _, s := range slowdowns {
		sum += s
	}
	if sum <= 0 {
		return math.Inf(1)
	}
	return float64(len(slowdowns)) / sum
}

// WeightedSpeedup is Σ 1/slowdown_i — the system-throughput metric used by
// the multiprogramming literature the paper builds on (Jog et al.); N means
// every app runs at alone speed, values near 1 mean the GPU behaves like a
// serialised machine.
func WeightedSpeedup(slowdowns []float64) float64 {
	if len(slowdowns) == 0 {
		return math.NaN()
	}
	var sum float64
	for _, s := range slowdowns {
		if s <= 0 {
			return math.Inf(1)
		}
		sum += 1 / s
	}
	return sum
}

// Error is the relative estimation error |est-actual|/actual (Eq. 26, taken
// as magnitude as in the paper's figures).
func Error(estimated, actual float64) float64 {
	if actual <= 0 {
		return math.Inf(1)
	}
	return math.Abs(estimated-actual) / actual
}

// Mean returns the arithmetic mean, NaN for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Median returns the median, NaN for empty input.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	c := append([]float64(nil), xs...)
	sort.Float64s(c)
	n := len(c)
	if n%2 == 1 {
		return c[n/2]
	}
	return (c[n/2-1] + c[n/2]) / 2
}

// GeoMean returns the geometric mean; inputs must be positive.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var s float64
	for _, x := range xs {
		if x <= 0 {
			return math.NaN()
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// Histogram buckets values into fixed-width ranges, for the Figure 7 error
// distribution.
type Histogram struct {
	// Edges are the upper bounds of each bucket; a final overflow bucket
	// catches everything above the last edge.
	Edges  []float64
	Counts []int
	Total  int
}

// NewHistogram builds a histogram with the given upper bucket edges (must
// be increasing).
func NewHistogram(edges ...float64) *Histogram {
	for i := 1; i < len(edges); i++ {
		if edges[i] <= edges[i-1] {
			panic(fmt.Sprintf("metrics: histogram edges not increasing at %d", i))
		}
	}
	return &Histogram{
		Edges:  append([]float64(nil), edges...),
		Counts: make([]int, len(edges)+1),
	}
}

// Add buckets one value.
func (h *Histogram) Add(v float64) {
	h.Total++
	for i, e := range h.Edges {
		if v < e {
			h.Counts[i]++
			return
		}
	}
	h.Counts[len(h.Edges)]++
}

// Fractions returns each bucket's share of the total (zero total gives
// zeros).
func (h *Histogram) Fractions() []float64 {
	out := make([]float64, len(h.Counts))
	if h.Total == 0 {
		return out
	}
	for i, c := range h.Counts {
		out[i] = float64(c) / float64(h.Total)
	}
	return out
}

// CumulativeBelow returns the fraction of samples below the given edge
// (which must be one of the histogram's edges).
func (h *Histogram) CumulativeBelow(edge float64) float64 {
	if h.Total == 0 {
		return 0
	}
	n := 0
	for i, e := range h.Edges {
		if e > edge {
			break
		}
		n += h.Counts[i]
	}
	return float64(n) / float64(h.Total)
}
