package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-12 }

func TestSlowdown(t *testing.T) {
	if got := Slowdown(10, 5); got != 2 {
		t.Fatalf("Slowdown(10,5) = %v", got)
	}
	if got := Slowdown(10, 0); !math.IsInf(got, 1) {
		t.Fatalf("zero shared IPC should be +Inf, got %v", got)
	}
}

func TestUnfairness(t *testing.T) {
	if got := Unfairness([]float64{2, 2, 2}); got != 1 {
		t.Fatalf("equal slowdowns must be perfectly fair, got %v", got)
	}
	if got := Unfairness([]float64{3.44, 1.37}); !almost(got, 3.44/1.37) {
		t.Fatalf("paper's example: got %v", got)
	}
	if !math.IsNaN(Unfairness(nil)) {
		t.Fatal("empty slice should be NaN")
	}
	if got := Unfairness([]float64{1, 0}); !math.IsInf(got, 1) {
		t.Fatalf("zero slowdown should be +Inf, got %v", got)
	}
}

func TestHarmonicSpeedup(t *testing.T) {
	// Eq. 27: N / sum(slowdowns). Two apps at slowdown 2 -> 0.5.
	if got := HarmonicSpeedup([]float64{2, 2}); got != 0.5 {
		t.Fatalf("HarmonicSpeedup = %v, want 0.5", got)
	}
	if got := HarmonicSpeedup([]float64{1, 1, 1}); got != 1 {
		t.Fatalf("no slowdown must give 1, got %v", got)
	}
	if !math.IsNaN(HarmonicSpeedup(nil)) {
		t.Fatal("empty slice should be NaN")
	}
}

func TestWeightedSpeedup(t *testing.T) {
	if got := WeightedSpeedup([]float64{1, 1}); got != 2 {
		t.Fatalf("WS of no slowdown = %v, want 2", got)
	}
	if got := WeightedSpeedup([]float64{2, 2}); got != 1 {
		t.Fatalf("WS = %v, want 1", got)
	}
	if !math.IsNaN(WeightedSpeedup(nil)) {
		t.Fatal("empty should be NaN")
	}
	if !math.IsInf(WeightedSpeedup([]float64{0}), 1) {
		t.Fatal("zero slowdown should be +Inf")
	}
}

func TestError(t *testing.T) {
	if got := Error(1.1, 1.0); !almost(got, 0.1) {
		t.Fatalf("Error = %v, want 0.1", got)
	}
	if got := Error(0.9, 1.0); !almost(got, 0.1) {
		t.Fatal("error must be magnitude")
	}
	if got := Error(1, 0); !math.IsInf(got, 1) {
		t.Fatalf("zero actual should be +Inf, got %v", got)
	}
}

func TestUnfairnessAtLeastOneProperty(t *testing.T) {
	f := func(raw []float64) bool {
		var xs []float64
		for _, v := range raw {
			v = math.Abs(v)
			if v > 1e-9 && !math.IsInf(v, 0) && !math.IsNaN(v) {
				xs = append(xs, v+1) // slowdowns are >= 1 in practice
			}
		}
		if len(xs) == 0 {
			return true
		}
		u := Unfairness(xs)
		return u >= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestMeanMedianGeoMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Fatalf("Mean = %v", got)
	}
	if got := Median([]float64{5, 1, 3}); got != 3 {
		t.Fatalf("Median odd = %v", got)
	}
	if got := Median([]float64{4, 1, 3, 2}); got != 2.5 {
		t.Fatalf("Median even = %v", got)
	}
	if got := GeoMean([]float64{1, 4}); got != 2 {
		t.Fatalf("GeoMean = %v", got)
	}
	if !math.IsNaN(GeoMean([]float64{1, -1})) {
		t.Fatal("GeoMean of negative input should be NaN")
	}
	if !math.IsNaN(Mean(nil)) || !math.IsNaN(Median(nil)) || !math.IsNaN(GeoMean(nil)) {
		t.Fatal("empty inputs should be NaN")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0.1, 0.2)
	for _, v := range []float64{0.05, 0.15, 0.15, 0.5} {
		h.Add(v)
	}
	fr := h.Fractions()
	if !almost(fr[0], 0.25) || !almost(fr[1], 0.5) || !almost(fr[2], 0.25) {
		t.Fatalf("fractions = %v", fr)
	}
	if got := h.CumulativeBelow(0.2); !almost(got, 0.75) {
		t.Fatalf("CumulativeBelow(0.2) = %v", got)
	}
	if got := h.CumulativeBelow(0.1); !almost(got, 0.25) {
		t.Fatalf("CumulativeBelow(0.1) = %v", got)
	}
}

func TestHistogramPanicsOnBadEdges(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-increasing edges must panic")
		}
	}()
	NewHistogram(0.2, 0.1)
}

func TestHistogramConservationProperty(t *testing.T) {
	f := func(vals []float64) bool {
		h := NewHistogram(0.1, 0.5, 1.0)
		n := 0
		for _, v := range vals {
			if math.IsNaN(v) {
				continue
			}
			h.Add(math.Abs(v))
			n++
		}
		total := 0
		for _, c := range h.Counts {
			total += c
		}
		return total == n && h.Total == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}
