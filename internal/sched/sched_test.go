package sched

import (
	"testing"

	"dasesim/internal/config"
	"dasesim/internal/kernels"
	"dasesim/internal/metrics"
	"dasesim/internal/sim"
	"dasesim/internal/workload"
)

func TestSearchBestPartition(t *testing.T) {
	// Two apps, one slowed 3x and one 1.2x on an 8+8 split: the search
	// must give the slower app more SMs.
	best, unf := SearchBestPartition([]float64{3, 1.2}, []int{8, 8}, 16, 1)
	if best == nil {
		t.Fatal("no partition found")
	}
	if best[0] <= best[1] {
		t.Fatalf("expected more SMs for the slower app, got %v", best)
	}
	if best[0]+best[1] != 16 {
		t.Fatalf("partition %v does not use all SMs", best)
	}
	if unf <= 0 {
		t.Fatalf("nonsensical predicted unfairness %v", unf)
	}
}

func TestSearchBestPartitionFour(t *testing.T) {
	slow := []float64{4, 4, 1.5, 1.5}
	best, _ := SearchBestPartition(slow, []int{4, 4, 4, 4}, 16, 1)
	if best == nil {
		t.Fatal("no partition found")
	}
	sum := 0
	for _, v := range best {
		sum += v
	}
	if sum != 16 {
		t.Fatalf("partition %v does not use all SMs", best)
	}
	if best[0] <= best[2] || best[1] <= best[3] {
		t.Fatalf("slow apps should get more SMs: %v", best)
	}
}

func TestReciprocalAt(t *testing.T) {
	// Estimated reciprocal 0.5 at 8 of 16 SMs: Eq. 29 example from the
	// paper — at 12 SMs the reciprocal is 0.75.
	if got := ReciprocalAt(0.5, 8, 12, 16); got != 0.75 {
		t.Fatalf("Eq.29 example: got %v, want 0.75", got)
	}
	// Eq. 30: at 4 SMs the reciprocal halves to 0.25.
	if got := ReciprocalAt(0.5, 8, 4, 16); got != 0.25 {
		t.Fatalf("Eq.30 example: got %v, want 0.25", got)
	}
	if got := ReciprocalAt(0.5, 8, 16, 16); got != 1 {
		t.Fatalf("all SMs must give reciprocal 1, got %v", got)
	}
	if got := ReciprocalAt(0.5, 8, 8, 16); got != 0.5 {
		t.Fatalf("same SMs must return the estimate, got %v", got)
	}
}

func TestLeftoverAllocation(t *testing.T) {
	cfg := config.Default()
	sn, _ := kernels.ByAbbr("SN") // 24 blocks, 6 resident per SM -> 4 SMs
	sb, _ := kernels.ByAbbr("SB")
	alloc := LeftoverAllocation(cfg, []kernels.Profile{sn, sb})
	if alloc[0] != 4 {
		t.Fatalf("SN needs 4 SMs under LEFTOVER, got %d", alloc[0])
	}
	if alloc[1] != 12 {
		t.Fatalf("SB should get the 12 leftover SMs, got %d", alloc[1])
	}
	// A big kernel first starves the second one entirely.
	alloc = LeftoverAllocation(cfg, []kernels.Profile{sb, sn})
	if alloc[0] != 16 || alloc[1] != 0 {
		t.Fatalf("expected 16+0, got %v", alloc)
	}
}

// TestDASEFairImprovesFairness runs one clearly unfair pair under both
// policies and requires DASE-Fair to reduce measured unfairness.
func TestDASEFairImprovesFairness(t *testing.T) {
	if testing.Short() {
		t.Skip("slow policy run")
	}
	cfg := config.Default()
	va, _ := kernels.ByAbbr("VA")
	ct, _ := kernels.ByAbbr("CT")
	ps := []kernels.Profile{va, ct}
	cycles := uint64(400_000)

	cache := workload.NewAloneCache(cfg, cycles, 1)
	aloneIPC := make([]float64, 2)
	for i, prof := range ps {
		res, err := cache.Get(prof)
		if err != nil {
			t.Fatal(err)
		}
		aloneIPC[i] = res.Apps[0].IPC
	}

	even, err := Run(cfg, ps, []int{8, 8}, cycles, 1, Even{})
	if err != nil {
		t.Fatal(err)
	}
	pol := NewDASEFair()
	fair, err := Run(cfg, ps, []int{8, 8}, cycles, 1, pol)
	if err != nil {
		t.Fatal(err)
	}

	unfEven := metrics.Unfairness([]float64{
		metrics.Slowdown(aloneIPC[0], even.Apps[0].IPC),
		metrics.Slowdown(aloneIPC[1], even.Apps[1].IPC),
	})
	unfFair := metrics.Unfairness([]float64{
		metrics.Slowdown(aloneIPC[0], fair.Apps[0].IPC),
		metrics.Slowdown(aloneIPC[1], fair.Apps[1].IPC),
	})
	t.Logf("unfairness even=%.3f fair=%.3f reallocations=%d finalAlloc=%v",
		unfEven, unfFair, pol.Reallocations, fair.Snapshots[len(fair.Snapshots)-1].Apps)
	if pol.Reallocations == 0 {
		t.Error("DASE-Fair never reallocated on a clearly unfair workload")
	}
	if unfFair >= unfEven {
		t.Errorf("DASE-Fair did not improve fairness: even=%.3f fair=%.3f", unfEven, unfFair)
	}
}

// TestDrainingReallocation checks the SM-draining mechanics directly.
func TestDrainingReallocation(t *testing.T) {
	cfg := config.Default()
	cfg.IntervalCycles = 10_000
	va, _ := kernels.ByAbbr("VA")
	ct, _ := kernels.ByAbbr("CT")
	g, err := sim.New(cfg, []kernels.Profile{va, ct}, []int{8, 8}, 1)
	if err != nil {
		t.Fatal(err)
	}
	g.Run(20_000)
	if err := g.SetAllocation([]int{12, 4}); err != nil {
		t.Fatal(err)
	}
	g.Run(100_000)
	alloc := g.Allocation()
	if alloc[0] != 12 || alloc[1] != 4 {
		t.Fatalf("allocation not applied: %v", alloc)
	}
	res := g.FinishRun()
	for i, a := range res.Apps {
		if a.Instructions == 0 {
			t.Fatalf("app %d stopped retiring instructions after reallocation", i)
		}
	}
}
