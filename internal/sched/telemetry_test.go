package sched

import (
	"testing"

	"dasesim/internal/config"
	"dasesim/internal/kernels"
	"dasesim/internal/sim"
	"dasesim/internal/telemetry"
)

// tracedPolicyRun drives a short traced run (small interval so the policy
// fires several times even in -short mode) and returns the event counts.
func tracedPolicyRun(t *testing.T, pol Policy) map[telemetry.Kind]int {
	t.Helper()
	cfg := config.Default()
	cfg.IntervalCycles = 10_000
	va, _ := kernels.ByAbbr("VA")
	ct, _ := kernels.ByAbbr("CT")
	tr := telemetry.New(0)
	_, err := Run(cfg, []kernels.Profile{va, ct}, []int{8, 8}, 60_000, 5, pol,
		sim.WithTracer(tr))
	if err != nil {
		t.Fatal(err)
	}
	kinds := map[telemetry.Kind]int{}
	for _, e := range tr.Events() {
		kinds[e.Kind]++
	}
	return kinds
}

// TestDASEFairTracing checks that a traced DASE-Fair run emits per-app
// estimator events and one scheduling decision per post-warmup interval.
func TestDASEFairTracing(t *testing.T) {
	kinds := tracedPolicyRun(t, NewDASEFair())
	// 60k cycles / 10k interval = 6 intervals, the first is warmup.
	if got := kinds[telemetry.KindSchedDecision]; got != 5 {
		t.Errorf("%d sched.decision events, want 5", got)
	}
	if got := kinds[telemetry.KindDASEApp]; got != 10 {
		t.Errorf("%d dase.app events, want 10 (2 apps x 5 intervals)", got)
	}
	if kinds[telemetry.KindInterval] == 0 {
		t.Error("no interval events from the engine")
	}
}

// TestDASEPerfTracing checks the same contract for the throughput policy.
func TestDASEPerfTracing(t *testing.T) {
	kinds := tracedPolicyRun(t, NewDASEPerf())
	if got := kinds[telemetry.KindSchedDecision]; got != 5 {
		t.Errorf("%d sched.decision events, want 5", got)
	}
	if got := kinds[telemetry.KindDASEApp]; got != 10 {
		t.Errorf("%d dase.app events, want 10 (2 apps x 5 intervals)", got)
	}
}

// TestUntracedPolicyEmitsNothing pins the zero-overhead contract at the
// policy layer: without a tracer the decision path must not panic and the
// policies must behave identically (covered byte-for-byte by the root
// package's determinism goldens).
func TestUntracedPolicyEmitsNothing(t *testing.T) {
	cfg := config.Default()
	cfg.IntervalCycles = 10_000
	va, _ := kernels.ByAbbr("VA")
	ct, _ := kernels.ByAbbr("CT")
	if _, err := Run(cfg, []kernels.Profile{va, ct}, []int{8, 8}, 30_000, 5, NewDASEFair()); err != nil {
		t.Fatal(err)
	}
}
