package sched

import (
	"testing"

	"dasesim/internal/config"
	"dasesim/internal/kernels"
)

func TestTimeSliceRotates(t *testing.T) {
	if testing.Short() {
		t.Skip("slow policy run")
	}
	cfg := config.Default()
	cfg.IntervalCycles = 10_000
	qr, _ := kernels.ByAbbr("QR")
	bg, _ := kernels.ByAbbr("BG")
	ps := []kernels.Profile{qr, bg}

	pol := NewTimeSlice(2)
	if pol.Name() != "TimeSlice" {
		t.Fatal("name")
	}
	res, err := Run(cfg, ps, []int{16, 0}, 100_000, 1, pol)
	if err != nil {
		t.Fatal(err)
	}
	if pol.Switches < 3 {
		t.Fatalf("only %d context switches in 10 intervals with slice 2", pol.Switches)
	}
	// Both apps must make progress across their slices.
	for i, a := range res.Apps {
		if a.Instructions == 0 {
			t.Fatalf("app %d never ran under temporal multitasking", i)
		}
	}
	// And the GPU should never host both apps at once for long: check the
	// final snapshot has one app with (almost) everything.
	last := res.Snapshots[len(res.Snapshots)-1]
	if last.Apps[0].SMs > 0 && last.Apps[1].SMs > 0 {
		// Mid-drain overlap is possible; require a clear majority holder.
		if last.Apps[0].SMs > 4 && last.Apps[1].SMs > 4 {
			t.Fatalf("temporal multitasking left both apps resident: %d/%d SMs",
				last.Apps[0].SMs, last.Apps[1].SMs)
		}
	}
}

func TestTimeSliceMinimumSlice(t *testing.T) {
	if NewTimeSlice(0).SliceIntervals != 1 {
		t.Fatal("slice length must clamp to >= 1")
	}
}
