package sched

import (
	"testing"

	"dasesim/internal/config"
	"dasesim/internal/kernels"
	"dasesim/internal/metrics"
	"dasesim/internal/workload"
)

// TestDASEQoSProtectsCriticalApp co-runs a cache-sensitive kernel (which
// slows >2x under the even split) with a bandwidth hog and requires the QoS
// policy to pull its measured slowdown down toward the target.
func TestDASEQoSProtectsCriticalApp(t *testing.T) {
	if testing.Short() {
		t.Skip("slow policy run")
	}
	cfg := config.Default()
	va, _ := kernels.ByAbbr("VA")
	ct, _ := kernels.ByAbbr("CT")
	ps := []kernels.Profile{va, ct}
	cycles := uint64(600_000)

	cache := workload.NewAloneCache(cfg, cycles, 1)
	aloneIPC := make([]float64, 2)
	for i, prof := range ps {
		res, err := cache.Get(prof)
		if err != nil {
			t.Fatal(err)
		}
		aloneIPC[i] = res.Apps[0].IPC
	}

	even, err := Run(cfg, ps, []int{8, 8}, cycles, 1, Even{})
	if err != nil {
		t.Fatal(err)
	}
	evenSlow := metrics.Slowdown(aloneIPC[1], even.Apps[1].IPC)

	pol := NewDASEQoS(1, 1.6) // protect CT with a 1.6x slowdown budget
	qos, err := Run(cfg, ps, []int{8, 8}, cycles, 1, pol)
	if err != nil {
		t.Fatal(err)
	}
	qosSlow := metrics.Slowdown(aloneIPC[1], qos.Apps[1].IPC)

	t.Logf("CT slowdown: even=%.2f qos=%.2f (target 1.6), reallocations=%d violations=%d",
		evenSlow, qosSlow, pol.Reallocations, pol.Violations)
	if pol.Reallocations == 0 {
		t.Fatal("QoS policy never reallocated")
	}
	if qosSlow >= evenSlow {
		t.Fatalf("QoS policy did not help the critical app: even=%.2f qos=%.2f", evenSlow, qosSlow)
	}
}

func TestDASEQoSName(t *testing.T) {
	if NewDASEQoS(0, 2).Name() != "DASE-QoS" {
		t.Fatal("policy name")
	}
}

func TestDASEQoSIgnoresBadCriticalIndex(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a simulation")
	}
	cfg := config.Default()
	cfg.IntervalCycles = 10_000
	qr, _ := kernels.ByAbbr("QR")
	bg, _ := kernels.ByAbbr("BG")
	pol := NewDASEQoS(5, 1.5) // out of range: must be a no-op, not a panic
	res, err := Run(cfg, []kernels.Profile{qr, bg}, []int{8, 8}, 30_000, 1, pol)
	if err != nil {
		t.Fatal(err)
	}
	if pol.Reallocations != 0 {
		t.Fatal("reallocated with an invalid critical app")
	}
	if len(res.Apps) != 2 {
		t.Fatal("run lost apps")
	}
}
