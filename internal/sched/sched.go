// Package sched implements SM-allocation policies for spatial multitasking:
// the even static split (the paper's baseline), the LEFTOVER policy of
// current GPUs, and DASE-Fair (§7) — the fairness-oriented dynamic policy
// that re-partitions SMs using DASE slowdown estimates.
package sched

import (
	"context"

	"dasesim/internal/config"
	"dasesim/internal/core"
	"dasesim/internal/kernels"
	"dasesim/internal/sim"
	"dasesim/internal/telemetry"
)

// Policy reacts to interval snapshots and may re-partition the SMs.
type Policy interface {
	Name() string
	OnInterval(g *sim.GPU, snap *sim.IntervalSnapshot)
}

// Even is the static even-partition policy: it never reallocates.
type Even struct{}

// Name implements Policy.
func (Even) Name() string { return "Even" }

// OnInterval implements Policy (no-op).
func (Even) OnInterval(*sim.GPU, *sim.IntervalSnapshot) {}

// Run executes the kernels under the given policy and returns the result.
func Run(cfg config.Config, ps []kernels.Profile, alloc []int, cycles uint64, seed uint64, pol Policy, opts ...sim.Option) (*sim.Result, error) {
	return RunContext(context.Background(), cfg, ps, alloc, cycles, seed, pol, opts...)
}

// RunContext is Run with cancellation: the run aborts (returning ctx.Err())
// when ctx is cancelled or its deadline passes.
func RunContext(ctx context.Context, cfg config.Config, ps []kernels.Profile, alloc []int, cycles uint64, seed uint64, pol Policy, opts ...sim.Option) (*sim.Result, error) {
	g, err := sim.New(cfg, ps, alloc, seed, opts...)
	if err != nil {
		return nil, err
	}
	if pol != nil {
		g.IntervalHook = func(gg *sim.GPU, snap *sim.IntervalSnapshot) {
			pol.OnInterval(gg, snap)
		}
	}
	if err := g.RunContext(ctx, cycles); err != nil {
		return nil, err
	}
	return g.FinishRun(), nil
}

// LeftoverAllocation computes the allocation of the LEFTOVER policy used by
// current GPUs (§2.2): each kernel in turn is given as many SMs as it can
// fill (bounded by its thread-block count and residency); later kernels get
// whatever remains. Kernels that end up with zero SMs simply do not run
// concurrently — the policy's known flaw.
func LeftoverAllocation(cfg config.Config, ps []kernels.Profile) []int {
	remaining := cfg.NumSMs
	out := make([]int, len(ps))
	for i, p := range ps {
		if remaining == 0 {
			break
		}
		perSM := cfg.SM.MaxBlocks
		if byWarps := cfg.SM.MaxWarps / p.WarpsPerBlock; byWarps < perSM {
			perSM = byWarps
		}
		if perSM < 1 {
			perSM = 1
		}
		need := (p.Blocks + perSM - 1) / perSM
		if need > remaining {
			need = remaining
		}
		out[i] = need
		remaining -= need
	}
	return out
}

// DASEFair is the paper's fairness-oriented SM partition policy (§7): each
// interval it estimates every application's all-SM slowdown with DASE,
// converts to reciprocals (Eq. 28), linearly interpolates each app's
// reciprocal as a function of its SM count (Eqs. 29-30), exhaustively
// searches all SM partitions for the one minimising estimated unfairness,
// and re-partitions via SM draining when the predicted improvement exceeds
// the hysteresis threshold.
type DASEFair struct {
	Est *core.DASE
	// WarmupIntervals skipped before the first reallocation.
	WarmupIntervals int
	// ImprovementThreshold is the minimum predicted relative unfairness
	// reduction required to trigger a reallocation (hysteresis).
	ImprovementThreshold float64
	// MinSMs per application.
	MinSMs int

	intervals int
	// Reallocations counts how many times the policy moved SMs.
	Reallocations int
}

// NewDASEFair returns the policy with the paper's defaults.
func NewDASEFair() *DASEFair {
	return &DASEFair{
		Est:                  core.New(core.Options{}),
		WarmupIntervals:      1,
		ImprovementThreshold: 0.05,
		MinSMs:               1,
	}
}

// Name implements Policy.
func (p *DASEFair) Name() string { return "DASE-Fair" }

// OnInterval implements Policy.
func (p *DASEFair) OnInterval(g *sim.GPU, snap *sim.IntervalSnapshot) {
	p.intervals++
	if p.intervals <= p.WarmupIntervals {
		return
	}
	slow := tracedEstimates(p.Est, g, snap, p.Name())
	cur := make([]int, len(snap.Apps))
	for i := range snap.Apps {
		cur[i] = snap.Apps[i].SMs
	}
	best, bestUnf := SearchBestPartition(slow, cur, snap.NumSMs, p.MinSMs)
	curUnf := EstimatedUnfairness(slow, cur, cur, snap.NumSMs)
	realloc := best != nil &&
		bestUnf < curUnf*(1-p.ImprovementThreshold) &&
		!equalInts(best, cur)
	if realloc {
		realloc = g.SetAllocation(best) == nil
		if realloc {
			p.Reallocations++
		}
	}
	emitDecision(g.Tracer(), snap, p.Name(), curUnf, bestUnf, best, realloc)
}

// tracedEstimates runs the interval's DASE estimation, emitting one dase.app
// event per application when tracing is enabled. Estimate delegates to
// EstimateDetailed, so the traced and untraced paths compute identical
// numbers — tracing cannot perturb scheduling decisions.
func tracedEstimates(est *core.DASE, g *sim.GPU, snap *sim.IntervalSnapshot, policy string) []float64 {
	tr := g.Tracer()
	if tr == nil {
		return est.Estimate(snap)
	}
	det := est.EstimateDetailed(snap)
	slow := make([]float64, len(det))
	for i := range det {
		slow[i] = det[i].Slowdown
		tr.Emit(telemetry.Event{
			Kind: telemetry.KindDASEApp, Cycle: snap.Cycle,
			App: int32(i), SM: -1, Note: policy,
			Alpha: det[i].Alpha, BLP: snap.Apps[i].BLP,
			TimeBank: det[i].TimeBank, TimeRow: det[i].TimeRow,
			TimeLLC: det[i].TimeLLC, MBB: det[i].MBB,
			Est: det[i].Slowdown, SMs: int32(snap.Apps[i].SMs),
		})
	}
	return slow
}

// emitDecision records one partition-search outcome (nil-tracer safe). best
// may be nil when the search found no feasible partition.
func emitDecision(tr *telemetry.Tracer, snap *sim.IntervalSnapshot, policy string, curScore, bestScore float64, best []int, realloc bool) {
	if tr == nil {
		return
	}
	e := telemetry.Event{
		Kind: telemetry.KindSchedDecision, Cycle: snap.Cycle,
		App: -1, SM: -1, Note: policy,
		CurScore: curScore, BestScore: bestScore, Realloc: realloc,
	}
	for i, n := range best {
		if i >= telemetry.MaxApps {
			break
		}
		e.Alloc[i] = int32(n)
		e.NApps = int32(i + 1)
	}
	tr.Emit(e)
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// ReciprocalAt interpolates the reciprocal of an app's slowdown at x SMs
// from its current estimate at cur SMs out of total (Eqs. 29-30): linear to
// reciprocal 1 at all SMs and to 0 at zero SMs.
func ReciprocalAt(recipCur float64, cur, x, total int) float64 {
	if cur <= 0 {
		return 0
	}
	if x == cur {
		return recipCur
	}
	if x > cur {
		if total == cur {
			return recipCur
		}
		return recipCur + float64(x-cur)/float64(total-cur)*(1-recipCur)
	}
	return recipCur - float64(cur-x)/float64(cur)*recipCur
}

// EstimatedUnfairness predicts MAX/MIN slowdown for a candidate allocation
// given the current estimates (taken at allocation cur).
func EstimatedUnfairness(slow []float64, cur, cand []int, total int) float64 {
	var minR, maxR float64
	for i := range slow {
		s := slow[i]
		if s < 1 {
			s = 1
		}
		r := ReciprocalAt(1/s, cur[i], cand[i], total)
		if r <= 0 {
			return 1e18 // an app starved entirely: infinitely unfair
		}
		if i == 0 || r < minR {
			minR = r
		}
		if i == 0 || r > maxR {
			maxR = r
		}
	}
	return maxR / minR
}

// SearchBestPartition exhaustively enumerates all compositions of total SMs
// into len(slow) parts (each >= minSMs) and returns the allocation with the
// lowest predicted unfairness, along with that unfairness.
func SearchBestPartition(slow []float64, cur []int, total, minSMs int) ([]int, float64) {
	n := len(slow)
	if n == 0 {
		return nil, 0
	}
	return SearchBestPartitionScratch(slow, cur, total, minSMs, make([]int, n), make([]int, n))
}

// SearchBestPartitionScratch is SearchBestPartition with caller-provided
// scratch: best and cand must each hold at least len(slow) entries, and the
// returned partition aliases best. It allocates nothing, which makes it
// usable on per-request serving hot paths. Candidates are enumerated in
// ascending lexicographic order (ties keep the earliest candidate), exactly
// matching SearchBestPartition.
func SearchBestPartitionScratch(slow []float64, cur []int, total, minSMs int, best, cand []int) ([]int, float64) {
	n := len(slow)
	if n == 0 || minSMs*n > total || len(best) < n || len(cand) < n {
		return nil, 0
	}
	best, cand = best[:n], cand[:n]
	for i := 0; i < n-1; i++ {
		cand[i] = minSMs
	}
	cand[n-1] = total - minSMs*(n-1)
	bestUnf := -1.0
	for {
		u := EstimatedUnfairness(slow, cur, cand, total)
		if bestUnf < 0 || u < bestUnf {
			bestUnf = u
			copy(best, cand)
		}
		if !nextComposition(cand, total, minSMs) {
			break
		}
	}
	return best, bestUnf
}

// nextComposition advances cand to the next composition of total into
// len(cand) parts, each at least minSMs, in ascending lexicographic order of
// the first len(cand)-1 positions (the last position is the remainder). It
// reports false when cand already was the final composition.
func nextComposition(cand []int, total, minSMs int) bool {
	n := len(cand)
	for j := n - 2; j >= 0; j-- {
		pre := 1 // sum of cand[0..j] after incrementing cand[j]
		for i := 0; i <= j; i++ {
			pre += cand[i]
		}
		// Positions j+1..n-1 must each still get minSMs.
		if total-pre < minSMs*(n-1-j) {
			continue
		}
		cand[j]++
		for i := j + 1; i < n-1; i++ {
			cand[i] = minSMs
		}
		cand[n-1] = total - pre - minSMs*(n-2-j)
		return true
	}
	return false
}
