package sched

import (
	"dasesim/internal/core"
	"dasesim/internal/sim"
)

// DASEPerf is the throughput-oriented counterpart of DASE-Fair (in the
// spirit of the weighted-speedup schedulers of Jog et al. that the paper's
// related-work section discusses): each interval it searches the SM
// partitions for the one maximising estimated weighted speedup
// (Σ 1/slowdown) instead of minimising unfairness. Fairness-agnostic: it
// will happily starve an app whose marginal SMs yield less throughput.
type DASEPerf struct {
	Est                  *core.DASE
	WarmupIntervals      int
	ImprovementThreshold float64
	MinSMs               int

	intervals     int
	Reallocations int
}

// NewDASEPerf builds the policy with defaults mirroring DASE-Fair's.
func NewDASEPerf() *DASEPerf {
	return &DASEPerf{
		Est:                  core.New(core.Options{}),
		WarmupIntervals:      1,
		ImprovementThreshold: 0.05,
		MinSMs:               1,
	}
}

// Name implements Policy.
func (p *DASEPerf) Name() string { return "DASE-Perf" }

// OnInterval implements Policy.
func (p *DASEPerf) OnInterval(g *sim.GPU, snap *sim.IntervalSnapshot) {
	p.intervals++
	if p.intervals <= p.WarmupIntervals {
		return
	}
	slow := tracedEstimates(p.Est, g, snap, p.Name())
	cur := make([]int, len(snap.Apps))
	for i := range snap.Apps {
		cur[i] = snap.Apps[i].SMs
	}
	best, bestWS := searchBestThroughput(slow, cur, snap.NumSMs, p.MinSMs)
	curWS := estimatedWeightedSpeedup(slow, cur, cur, snap.NumSMs)
	realloc := best != nil &&
		bestWS > curWS*(1+p.ImprovementThreshold) &&
		!equalInts(best, cur)
	if realloc {
		realloc = g.SetAllocation(best) == nil
		if realloc {
			p.Reallocations++
		}
	}
	emitDecision(g.Tracer(), snap, p.Name(), curWS, bestWS, best, realloc)
}

// estimatedWeightedSpeedup predicts Σ reciprocal for a candidate allocation
// using the Eq. 29/30 interpolation.
func estimatedWeightedSpeedup(slow []float64, cur, cand []int, total int) float64 {
	var ws float64
	for i := range slow {
		s := slow[i]
		if s < 1 {
			s = 1
		}
		ws += ReciprocalAt(1/s, cur[i], cand[i], total)
	}
	return ws
}

// searchBestThroughput enumerates compositions like SearchBestPartition but
// maximises predicted weighted speedup.
func searchBestThroughput(slow []float64, cur []int, total, minSMs int) ([]int, float64) {
	n := len(slow)
	if n == 0 || minSMs*n > total {
		return nil, 0
	}
	best := make([]int, n)
	bestWS := -1.0
	cand := make([]int, n)
	var rec func(i, left int)
	rec = func(i, left int) {
		if i == n-1 {
			if left < minSMs {
				return
			}
			cand[i] = left
			ws := estimatedWeightedSpeedup(slow, cur, cand, total)
			if ws > bestWS {
				bestWS = ws
				copy(best, cand)
			}
			return
		}
		maxHere := left - minSMs*(n-1-i)
		for v := minSMs; v <= maxHere; v++ {
			cand[i] = v
			rec(i+1, left-v)
		}
	}
	rec(0, total)
	if bestWS < 0 {
		return nil, 0
	}
	return best, bestWS
}
