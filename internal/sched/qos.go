package sched

import (
	"dasesim/internal/core"
	"dasesim/internal/sim"
)

// DASEQoS is the slowdown-aware QoS policy the paper names as future work
// (§8): one application is designated latency-critical with a target
// maximum slowdown; every interval the policy estimates slowdowns with
// DASE, uses the Eq. 29/30 reciprocal interpolation to find the smallest SM
// count that keeps the critical app within its target, and hands every
// remaining SM to the other applications (balanced by their estimated
// reciprocals) to maximise throughput under the guarantee.
type DASEQoS struct {
	Est *core.DASE
	// CriticalApp is the index of the QoS-protected application.
	CriticalApp int
	// TargetSlowdown is the maximum tolerated slowdown for the critical
	// app (relative to running alone on the whole GPU).
	TargetSlowdown float64
	// WarmupIntervals skipped before the first reallocation.
	WarmupIntervals int
	// MinSMs per application.
	MinSMs int

	intervals int
	// Reallocations counts the policy's SM moves.
	Reallocations int
	// Violations counts intervals where even all spare SMs could not meet
	// the target.
	Violations int
}

// NewDASEQoS builds the policy protecting app `critical` with the given
// slowdown target.
func NewDASEQoS(critical int, target float64) *DASEQoS {
	return &DASEQoS{
		Est:             core.New(core.Options{}),
		CriticalApp:     critical,
		TargetSlowdown:  target,
		WarmupIntervals: 1,
		MinSMs:          1,
	}
}

// Name implements Policy.
func (p *DASEQoS) Name() string { return "DASE-QoS" }

// OnInterval implements Policy.
func (p *DASEQoS) OnInterval(g *sim.GPU, snap *sim.IntervalSnapshot) {
	p.intervals++
	if p.intervals <= p.WarmupIntervals {
		return
	}
	if p.CriticalApp < 0 || p.CriticalApp >= len(snap.Apps) {
		return
	}
	slow := p.Est.Estimate(snap)
	cur := make([]int, len(snap.Apps))
	for i := range snap.Apps {
		cur[i] = snap.Apps[i].SMs
	}
	total := snap.NumSMs
	others := len(snap.Apps) - 1

	// Smallest SM count whose interpolated reciprocal meets the target.
	targetRecip := 1 / p.TargetSlowdown
	critRecip := 1 / clampLow(slow[p.CriticalApp])
	need := total - others*p.MinSMs // worst case: everything we can give
	met := false
	for x := p.MinSMs; x <= total-others*p.MinSMs; x++ {
		if ReciprocalAt(critRecip, cur[p.CriticalApp], x, total) >= targetRecip {
			need = x
			met = true
			break
		}
	}
	if !met {
		p.Violations++
	}

	// Distribute the remainder over the other apps proportionally to how
	// slowed they are (more SMs to the more-slowed, to balance them).
	alloc := make([]int, len(snap.Apps))
	alloc[p.CriticalApp] = need
	remain := total - need
	if others > 0 {
		weights := make([]float64, 0, others)
		var wsum float64
		idx := make([]int, 0, others)
		for i := range snap.Apps {
			if i == p.CriticalApp {
				continue
			}
			w := clampLow(slow[i])
			weights = append(weights, w)
			wsum += w
			idx = append(idx, i)
		}
		given := 0
		for k, i := range idx {
			share := int(float64(remain) * weights[k] / wsum)
			if share < p.MinSMs {
				share = p.MinSMs
			}
			alloc[i] = share
			given += share
		}
		// Fix rounding drift onto the first other app.
		for given > remain {
			for _, i := range idx {
				if alloc[i] > p.MinSMs && given > remain {
					alloc[i]--
					given--
				}
			}
			if given > remain && allAtMin(alloc, idx, p.MinSMs) {
				break
			}
		}
		for given < remain {
			alloc[idx[0]]++
			given++
		}
	}

	if equalInts(alloc, cur) {
		return
	}
	if err := g.SetAllocation(alloc); err == nil {
		p.Reallocations++
	}
}

func clampLow(v float64) float64 {
	if v < 1 {
		return 1
	}
	return v
}

func allAtMin(alloc []int, idx []int, min int) bool {
	for _, i := range idx {
		if alloc[i] > min {
			return false
		}
	}
	return true
}
