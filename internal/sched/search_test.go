package sched

import (
	"testing"
	"testing/quick"
)

func TestSearchInfeasible(t *testing.T) {
	if best, _ := SearchBestPartition([]float64{2, 2}, []int{8, 8}, 1, 1); best != nil {
		t.Fatalf("infeasible search returned %v", best)
	}
	if best, _ := SearchBestPartition(nil, nil, 16, 1); best != nil {
		t.Fatal("empty search returned a partition")
	}
}

func TestSearchMinSMsRespected(t *testing.T) {
	best, _ := SearchBestPartition([]float64{100, 1}, []int{8, 8}, 16, 3)
	if best == nil {
		t.Fatal("no partition")
	}
	for i, v := range best {
		if v < 3 {
			t.Fatalf("app %d got %d SMs, below MinSMs", i, v)
		}
	}
}

func TestSearchEqualSlowdownsPrefersBalance(t *testing.T) {
	best, unf := SearchBestPartition([]float64{2, 2}, []int{8, 8}, 16, 1)
	if best[0] != 8 || best[1] != 8 {
		t.Fatalf("equal slowdowns should keep the even split, got %v", best)
	}
	if unf > 1.0001 {
		t.Fatalf("even split of equal apps predicted unfair: %v", unf)
	}
}

// TestSearchPartitionProperties: the returned partition always uses all SMs,
// respects MinSMs, and its predicted unfairness is no worse than the
// current allocation's prediction.
func TestSearchPartitionProperties(t *testing.T) {
	f := func(s1, s2, s3 uint8) bool {
		slow := []float64{
			1 + float64(s1%40)/10,
			1 + float64(s2%40)/10,
			1 + float64(s3%40)/10,
		}
		cur := []int{6, 5, 5}
		best, unf := SearchBestPartition(slow, cur, 16, 1)
		if best == nil {
			return false
		}
		sum := 0
		for _, v := range best {
			if v < 1 {
				return false
			}
			sum += v
		}
		if sum != 16 {
			return false
		}
		curUnf := EstimatedUnfairness(slow, cur, cur, 16)
		return unf <= curUnf+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestReciprocalAtEdges(t *testing.T) {
	if got := ReciprocalAt(0.5, 0, 4, 16); got != 0 {
		t.Fatalf("zero current SMs should give 0, got %v", got)
	}
	if got := ReciprocalAt(0.5, 8, 0, 16); got != 0 {
		t.Fatalf("zero target SMs should give 0, got %v", got)
	}
	// Monotone in x.
	prev := -1.0
	for x := 0; x <= 16; x++ {
		v := ReciprocalAt(0.4, 8, x, 16)
		if v < prev {
			t.Fatalf("ReciprocalAt not monotone at x=%d: %v < %v", x, v, prev)
		}
		prev = v
	}
}

func TestDASEFairHysteresis(t *testing.T) {
	// With an absurd improvement threshold, the policy must never move.
	pol := NewDASEFair()
	pol.ImprovementThreshold = 10 // impossible to satisfy
	if pol.Name() != "DASE-Fair" {
		t.Fatal("name")
	}
	// A nil estimator would panic if OnInterval ran its body before the
	// warmup gate; exercise the warmup path.
	pol.WarmupIntervals = 1000
	pol.OnInterval(nil, nil)
	if pol.Reallocations != 0 {
		t.Fatal("reallocated during warmup")
	}
}
