package sched

import "dasesim/internal/sim"

// TimeSlice implements traditional temporal multitasking (paper §2.2): the
// whole GPU is handed to one application at a time, rotating every
// SliceIntervals estimation intervals. Switching drains the outgoing
// application's thread blocks — the context-switch cost the paper's cited
// works try to avoid — so short slices pay proportionally more overhead.
//
// It exists as the baseline paradigm that spatial multitasking (the even
// split, DASE-Fair) is compared against in experiment Ext.G.
type TimeSlice struct {
	// SliceIntervals is the slice length in estimation intervals.
	SliceIntervals int

	intervals int
	cur       int
	// Switches counts completed rotations.
	Switches int
}

// NewTimeSlice builds the policy with the given slice length (intervals).
func NewTimeSlice(sliceIntervals int) *TimeSlice {
	if sliceIntervals < 1 {
		sliceIntervals = 1
	}
	return &TimeSlice{SliceIntervals: sliceIntervals}
}

// Name implements Policy.
func (p *TimeSlice) Name() string { return "TimeSlice" }

// OnInterval implements Policy.
func (p *TimeSlice) OnInterval(g *sim.GPU, snap *sim.IntervalSnapshot) {
	p.intervals++
	if p.intervals%p.SliceIntervals != 0 {
		return
	}
	n := len(snap.Apps)
	if n < 2 {
		return
	}
	p.cur = (p.cur + 1) % n
	alloc := make([]int, n)
	alloc[p.cur] = snap.NumSMs
	if err := g.SetAllocation(alloc); err == nil {
		p.Switches++
	}
}
