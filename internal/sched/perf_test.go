package sched

import (
	"testing"

	"dasesim/internal/config"
	"dasesim/internal/kernels"
	"dasesim/internal/metrics"
	"dasesim/internal/workload"
)

func TestSearchBestThroughputFavoursScalableApp(t *testing.T) {
	// App 0 slows 4x (lots of headroom from more SMs under the linear
	// model); app 1 barely slows. Throughput search gives app 0 more SMs
	// because its reciprocal gains more per SM.
	best, ws := searchBestThroughput([]float64{4, 1.05}, []int{8, 8}, 16, 1)
	if best == nil {
		t.Fatal("no partition")
	}
	if ws <= 0 {
		t.Fatalf("weighted speedup %v", ws)
	}
	if best[0]+best[1] != 16 {
		t.Fatalf("partition %v", best)
	}
	cur := estimatedWeightedSpeedup([]float64{4, 1.05}, []int{8, 8}, []int{8, 8}, 16)
	if ws < cur {
		t.Fatalf("search found worse throughput than current: %v < %v", ws, cur)
	}
}

func TestDASEPerfImprovesThroughput(t *testing.T) {
	if testing.Short() {
		t.Skip("slow policy run")
	}
	cfg := config.Default()
	va, _ := kernels.ByAbbr("VA")
	ct, _ := kernels.ByAbbr("CT")
	ps := []kernels.Profile{va, ct}
	cycles := uint64(500_000)

	cache := workload.NewAloneCache(cfg, cycles, 1)
	aloneIPC := make([]float64, 2)
	for i, prof := range ps {
		res, err := cache.Get(prof)
		if err != nil {
			t.Fatal(err)
		}
		aloneIPC[i] = res.Apps[0].IPC
	}
	wsOf := func(resApps []float64) float64 {
		return metrics.WeightedSpeedup(resApps)
	}

	even, err := Run(cfg, ps, []int{8, 8}, cycles, 1, Even{})
	if err != nil {
		t.Fatal(err)
	}
	pol := NewDASEPerf()
	perf, err := Run(cfg, ps, []int{8, 8}, cycles, 1, pol)
	if err != nil {
		t.Fatal(err)
	}
	evenWS := wsOf([]float64{
		metrics.Slowdown(aloneIPC[0], even.Apps[0].IPC),
		metrics.Slowdown(aloneIPC[1], even.Apps[1].IPC),
	})
	perfWS := wsOf([]float64{
		metrics.Slowdown(aloneIPC[0], perf.Apps[0].IPC),
		metrics.Slowdown(aloneIPC[1], perf.Apps[1].IPC),
	})
	t.Logf("weighted speedup: even=%.3f perf=%.3f reallocs=%d", evenWS, perfWS, pol.Reallocations)
	if pol.Name() != "DASE-Perf" {
		t.Fatal("name")
	}
	if perfWS < evenWS*0.98 {
		t.Fatalf("DASE-Perf lost throughput: %.3f vs %.3f", perfWS, evenWS)
	}
}
