package fleet

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"testing"

	"dasesim/internal/config"
	"dasesim/internal/kernels"
)

var (
	propSeed  = flag.Uint64("fleet.seed", 1, "base seed for the fleet property suite (iteration i uses seed+i)")
	propIters = flag.Int("fleet.iters", 1000, "iterations of the fleet property suite")
)

// propScenario is one randomized property-suite case: a scenario plus an
// optional mid-run tenant join/leave schedule.
type propScenario struct {
	seed     uint64
	sc       Scenario
	joinAt   int // interval to add joiner (-1: never)
	joiner   TenantSpec
	joinJobs []JobSpec
	leaveAt  int    // interval to remove leaver (-1: never)
	leaver   string // tenant name
}

// randomScenario derives a whole fleet scenario from one seed: fleet shape,
// tenant quotas and weights (zero quotas and oversubscription included),
// arrival rates, kernel mix, job demands and work budgets, and sometimes a
// tenant that joins or leaves mid-run. Same seed, same scenario.
func randomScenario(seed uint64) propScenario {
	s := seed
	rnd := func(n int) int { return int(mix64(&s) % uint64(n)) }

	gpu := config.Default()
	gpus := 1 + rnd(4)
	capacity := gpus * gpu.NumSMs

	nTenants := 1 + rnd(4)
	tenants := make([]TenantSpec, nTenants)
	rates := make([]float64, nTenants)
	for i := range tenants {
		quota := rnd(capacity + capacity/2) // oversubscription is in scope
		if rnd(5) == 0 {
			quota = 0 // zero-quota tenants ride on idle capacity only
		}
		tenants[i] = TenantSpec{
			Name:     fmt.Sprintf("t%d", i),
			QuotaSMs: quota,
			Weight:   float64(rnd(4)),
		}
		rates[i] = 0.2 + float64(rnd(20))/10
	}

	all := kernels.All()
	profiles := make([]kernels.Profile, 1+rnd(4))
	for i := range profiles {
		profiles[i] = all[rnd(len(all))]
	}

	works := []uint64{500, 5_000, 50_000, 1 << 40}
	intervals := 5 + rnd(16)
	p := propScenario{
		seed:    seed,
		joinAt:  -1,
		leaveAt: -1,
		sc: Scenario{
			Config: Config{
				GPUs:            gpus,
				GPU:             gpu,
				Tenants:         tenants,
				WindowIntervals: 1 + rnd(8),
				MaxJobsPerGPU:   1 + rnd(4),
				IntervalCycles:  10_000,
				Seed:            mix64(&s),
			},
			Arrivals:  PoissonArrivals(mix64(&s), tenants, rates, profiles, intervals, 1+rnd(gpu.NumSMs), works[rnd(len(works))]),
			Intervals: intervals,
		},
	}
	if rnd(3) == 0 && intervals > 4 {
		p.joinAt = 1 + rnd(intervals/2)
		p.joiner = TenantSpec{Name: "joiner", QuotaSMs: rnd(capacity / 2), Weight: 1}
		for i := 0; i < 1+rnd(3); i++ {
			p.joinJobs = append(p.joinJobs, JobSpec{
				ID:     fmt.Sprintf("joiner-%d", i),
				Tenant: "joiner",
				Kernel: profiles[rnd(len(profiles))],
				MinSMs: 1 + rnd(gpu.NumSMs),
				Work:   works[rnd(len(works))],
			})
		}
	}
	if rnd(3) == 0 && nTenants > 1 && intervals > 4 {
		p.leaveAt = 1 + rnd(intervals-2)
		p.leaver = tenants[rnd(nTenants)].Name
	}
	return p
}

// runProp replays a property scenario (arrivals plus the join/leave
// schedule) and returns the violated invariant, if any.
func runProp(p *propScenario) error {
	f, err := New(p.sc.Config)
	if err != nil {
		return fmt.Errorf("New: %w", err)
	}
	next := 0
	for iv := 0; iv < p.sc.Intervals; iv++ {
		if iv == p.joinAt {
			if err := f.AddTenant(p.joiner); err != nil {
				return fmt.Errorf("interval %d: AddTenant: %w", iv, err)
			}
			for _, js := range p.joinJobs {
				if err := f.Submit(js); err != nil {
					return fmt.Errorf("interval %d: submit joiner job: %w", iv, err)
				}
			}
		}
		if iv == p.leaveAt {
			if err := f.RemoveTenant(p.leaver); err != nil {
				return fmt.Errorf("interval %d: RemoveTenant(%s): %w", iv, p.leaver, err)
			}
		}
		for next < len(p.sc.Arrivals) && p.sc.Arrivals[next].Interval <= iv {
			js := p.sc.Arrivals[next].Job
			next++
			if p.leaveAt >= 0 && js.Tenant == p.leaver && iv >= p.leaveAt {
				continue // departed tenants accept no new work
			}
			if err := f.Submit(js); err != nil {
				return fmt.Errorf("interval %d: Submit(%s): %w", iv, js.ID, err)
			}
		}
		if err := f.Tick(); err != nil {
			return fmt.Errorf("interval %d: Tick: %w", iv, err)
		}
	}
	return CheckAll(f.Records(), f.Capacity(), p.sc.Config.GPU.NumSMs)
}

// shrinkProp minimizes a failing scenario before reporting: drop arrival
// chunks (delta-debugging style), then trim trailing intervals and the
// join/leave schedule, keeping every change that still fails. The shrunken
// scenario pinpoints the interaction; the seed is what gets committed to
// testdata/property_seeds.json as a regression.
func shrinkProp(p propScenario) propScenario {
	fails := func(q propScenario) bool { return runProp(&q) != nil }
	for chunk := len(p.sc.Arrivals) / 2; chunk >= 1; chunk /= 2 {
		for at := 0; at+chunk <= len(p.sc.Arrivals); {
			q := p
			q.sc.Arrivals = append(append([]Arrival{}, p.sc.Arrivals[:at]...), p.sc.Arrivals[at+chunk:]...)
			if fails(q) {
				p = q
			} else {
				at += chunk
			}
		}
	}
	for p.sc.Intervals > 1 {
		q := p
		q.sc.Intervals--
		if !fails(q) {
			break
		}
		p = q
	}
	if p.joinAt >= 0 {
		q := p
		q.joinAt, q.joinJobs = -1, nil
		if fails(q) {
			p = q
		}
	}
	if p.leaveAt >= 0 {
		q := p
		q.leaveAt = -1
		if fails(q) {
			p = q
		}
	}
	return p
}

// regressionSeeds are seeds that once produced a failing (shrunken)
// scenario; they replay before the randomized sweep so a fixed regression
// can never silently return.
func regressionSeeds(t *testing.T) []uint64 {
	data, err := os.ReadFile("testdata/property_seeds.json")
	if err != nil {
		t.Fatalf("reading regression seeds: %v", err)
	}
	var seeds []uint64
	if err := json.Unmarshal(data, &seeds); err != nil {
		t.Fatalf("parsing regression seeds: %v", err)
	}
	return seeds
}

// TestFleetProperties is the randomized fairness suite: for each seed it
// builds a random fleet scenario and asserts work conservation, quota
// safety, and allocation-history bookkeeping over the full run. Failures
// shrink to a minimal scenario before reporting. Run with -fleet.seed/-
// fleet.iters to reproduce or extend; -short trims the sweep.
func TestFleetProperties(t *testing.T) {
	iters := *propIters
	if testing.Short() && iters > 100 {
		iters = 100
	}
	for _, seed := range regressionSeeds(t) {
		p := randomScenario(seed)
		if err := runProp(&p); err != nil {
			t.Fatalf("regression seed %d failed again: %v", seed, err)
		}
	}
	for i := 0; i < iters; i++ {
		seed := *propSeed + uint64(i)
		p := randomScenario(seed)
		if err := runProp(&p); err != nil {
			m := shrinkProp(p)
			t.Fatalf("seed %d violated an invariant: %v\nshrunk to: %d arrivals, %d intervals, join@%d leave@%d (%s)\ncommit the seed to testdata/property_seeds.json and rerun with -fleet.seed=%d -fleet.iters=1",
				seed, err, len(m.sc.Arrivals), m.sc.Intervals, m.joinAt, m.leaveAt, m.leaver, seed)
		}
	}
}
