package fleet

import "fmt"

// The fairness invariants are pure functions over the allocation-history
// record, not assertions buried in the scheduler: the property suite runs
// them over randomized scenarios, and the mutation tests prove each one
// sharp by planting the corresponding violation (an idle GPU beside a
// placeable job, an over-quota placement past a starved in-quota tenant, a
// lost SM in the bookkeeping) and observing the checker fail.

// CheckConservation verifies work conservation: at no interval may a queued
// job fit a GPU's post-placement admission headroom. If a job with demand m
// is still queued while some GPU has a free concurrency slot and m free
// SMs, the scheduler idled capacity a runnable job could have used.
func CheckConservation(rec []IntervalRecord) error {
	for i := range rec {
		r := &rec[i]
		for j := range r.Tenants {
			t := &r.Tenants[j]
			for _, m := range t.QueuedMinSMs {
				for k := range r.GPUs {
					g := &r.GPUs[k]
					if g.FreeSlots > 0 && g.FreeSMs >= m {
						return fmt.Errorf("interval %d: tenant %s has a queued %d-SM job while gpu %d has %d free SMs and %d free slots (work conservation violated)",
							r.Interval, t.Name, m, g.GPU, g.FreeSMs, g.FreeSlots)
					}
				}
			}
		}
	}
	return nil
}

// CheckQuotaSafety verifies that in-quota tenants are never starved by
// over-quota borrowers. The reasoning: when an over-quota tenant placed a
// job of demand s on GPU g, g had a free slot and at least s free SMs at
// that moment — so any queued job of demand m ≤ s was placeable, and every
// tenant under its deserved share had strict priority. Therefore if a
// tenant (a) entered the placement phase under quota, (b) received no
// placement of its own (so its standing never moved during the phase), and
// (c) still has a queued job of demand m ≤ s at interval end (queues only
// shrink during placement, so the job was waiting the whole time), then the
// over-quota placement starved it.
func CheckQuotaSafety(rec []IntervalRecord) error {
	for i := range rec {
		r := &rec[i]
		for j := range r.Tenants {
			t := &r.Tenants[j]
			if t.StartShare >= 1 || t.PlacedJobs > 0 || t.Departed || len(t.QueuedMinSMs) == 0 {
				continue
			}
			minQueued := t.QueuedMinSMs[0]
			for _, m := range t.QueuedMinSMs {
				if m < minQueued {
					minQueued = m
				}
			}
			for _, p := range r.Placements {
				if p.OverQuota && p.Tenant != t.Name && p.MinSMs >= minQueued {
					return fmt.Errorf("interval %d: over-quota tenant %s placed a %d-SM job while in-quota tenant %s had a %d-SM job queued (quota safety violated)",
						r.Interval, p.Tenant, p.MinSMs, t.Name, minQueued)
				}
			}
		}
	}
	return nil
}

// CheckAccounting verifies the allocation-history bookkeeping: each
// interval, the per-tenant allocations plus the recorded idle capacity must
// sum to exactly the fleet capacity, the per-GPU resident partitions must
// tell the same story, and a busy GPU must have all of its SMs partitioned
// (the fleet never leaves an SM of a busy GPU unassigned).
func CheckAccounting(rec []IntervalRecord, capacity, gpuSMs int) error {
	for i := range rec {
		r := &rec[i]
		tenantSum := 0
		for j := range r.Tenants {
			tenantSum += r.Tenants[j].AllocatedSMs
		}
		if tenantSum+r.IdleSMs != capacity {
			return fmt.Errorf("interval %d: tenant allocations %d + idle %d != capacity %d (allocation lost or double-counted)",
				r.Interval, tenantSum, r.IdleSMs, capacity)
		}
		gpuSum := 0
		for k := range r.GPUs {
			g := &r.GPUs[k]
			gpuSum += g.ResidentSMs
			if g.Residents > 0 && g.ResidentSMs != gpuSMs {
				return fmt.Errorf("interval %d: gpu %d has %d residents but partitions only %d of %d SMs",
					r.Interval, g.GPU, g.Residents, g.ResidentSMs, gpuSMs)
			}
			if g.Residents == 0 && g.ResidentSMs != 0 {
				return fmt.Errorf("interval %d: empty gpu %d reports %d resident SMs", r.Interval, g.GPU, g.ResidentSMs)
			}
		}
		if gpuSum != tenantSum {
			return fmt.Errorf("interval %d: per-GPU partitions sum to %d but per-tenant allocations to %d",
				r.Interval, gpuSum, tenantSum)
		}
	}
	return nil
}

// CheckAll runs every invariant over the record.
func CheckAll(rec []IntervalRecord, capacity, gpuSMs int) error {
	if err := CheckConservation(rec); err != nil {
		return err
	}
	if err := CheckQuotaSafety(rec); err != nil {
		return err
	}
	return CheckAccounting(rec, capacity, gpuSMs)
}
