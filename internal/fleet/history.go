package fleet

import (
	"bufio"
	"fmt"
	"io"
)

// Placement records one job placed during an interval, with the tenant's
// quota standing at the moment of placement — the observation the
// quota-safety invariant is checked against.
type Placement struct {
	Tenant string `json:"tenant"`
	Job    string `json:"job"`
	GPU    int    `json:"gpu"`
	MinSMs int    `json:"min_sms"`
	// ShareAtPlace is the tenant's share ratio (recent average allocation
	// over deserved share, provisional placements included) at the moment
	// this job was placed; OverQuota is ShareAtPlace >= 1 — the tenant was
	// borrowing beyond its deserved share.
	ShareAtPlace float64 `json:"share_at_place"`
	OverQuota    bool    `json:"over_quota"`
}

// TenantRecord is one tenant's row of one interval's allocation history.
type TenantRecord struct {
	Name         string  `json:"name"`
	QuotaSMs     int     `json:"quota_sms"`
	DeservedSMs  float64 `json:"deserved_sms"`
	AllocatedSMs int     `json:"allocated_sms"`
	Running      int     `json:"running"`
	Queued       int     `json:"queued"`
	WindowShare  float64 `json:"window_share"`
	OverQuota    bool    `json:"over_quota"`
	// StartShare is the tenant's share ratio at the start of this
	// interval's placement phase (before any provisional placements);
	// PlacedJobs counts jobs the tenant had placed this interval. The
	// quota-safety checker needs both to reason about placement-time
	// standing from the end-of-interval record.
	StartShare float64 `json:"start_share"`
	PlacedJobs int     `json:"placed_jobs,omitempty"`
	Departed   bool    `json:"departed,omitempty"`
	// QueuedMinSMs lists the SM demand of every job still queued after
	// placement, the work-conservation checker's evidence.
	QueuedMinSMs []int `json:"queued_min_sms,omitempty"`
	// MeanSlowdown is the mean DASE-estimated slowdown of the tenant's
	// running jobs this interval (0 when none ran).
	MeanSlowdown float64 `json:"mean_slowdown,omitempty"`
}

// GPURecord is one GPU's post-placement admission state for one interval.
type GPURecord struct {
	GPU       int `json:"gpu"`
	Residents int `json:"residents"`
	// FreeSlots and FreeSMs are the admission headroom left after
	// placement: concurrency slots and unreserved SMs.
	FreeSlots int `json:"free_slots"`
	FreeSMs   int `json:"free_sms"`
	// ResidentSMs is the sum of the residents' actual SM partition (equals
	// the GPU's SM count whenever it has residents).
	ResidentSMs int `json:"resident_sms"`
}

// IntervalRecord is the durable observation of one scheduling interval.
type IntervalRecord struct {
	Interval   int            `json:"interval"`
	Tenants    []TenantRecord `json:"tenants"`
	GPUs       []GPURecord    `json:"gpus"`
	Placements []Placement    `json:"placements,omitempty"`
	// IdleSMs is the capacity no tenant consumed this interval (SMs of
	// GPUs with no residents).
	IdleSMs int `json:"idle_sms"`
}

// WriteCSV renders the allocation history in the KAI-style long format: one
// row per (interval, tenant) plus an `_idle` row per interval, so each
// interval's allocated_sms column sums to exactly the fleet capacity. All
// floats print with fixed precision — a fixed-seed run produces
// byte-identical CSV bytes, which is what the determinism golden pins.
func WriteCSV(w io.Writer, rec []IntervalRecord) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "interval,tenant,quota_sms,deserved_sms,allocated_sms,running,queued,window_share,over_quota,mean_slowdown")
	for i := range rec {
		r := &rec[i]
		for j := range r.Tenants {
			t := &r.Tenants[j]
			fmt.Fprintf(bw, "%d,%s,%d,%.3f,%d,%d,%d,%.4f,%t,%.4f\n",
				r.Interval, t.Name, t.QuotaSMs, t.DeservedSMs, t.AllocatedSMs,
				t.Running, t.Queued, t.WindowShare, t.OverQuota, t.MeanSlowdown)
		}
		fmt.Fprintf(bw, "%d,_idle,0,0.000,%d,0,0,0.0000,false,0.0000\n", r.Interval, r.IdleSMs)
	}
	return bw.Flush()
}

// TenantSummary aggregates one tenant over a whole run.
type TenantSummary struct {
	Name          string
	QuotaSMs      int
	TotalSMs      int     // SM-intervals allocated over the run
	MeanDeserved  float64 // mean deserved share over intervals present
	MaxDebtSMs    float64 // worst (deserved - allocated) while backlogged
	MeanSlowdown  float64 // mean of per-interval mean DASE slowdowns
	IntervalsSeen int
}

// Summary is the run-level fairness digest fleetsim prints.
type Summary struct {
	Intervals int
	Capacity  int
	IdleSMs   int // total idle SM-intervals
	// JainIndex is Jain's fairness index over per-tenant normalized
	// allocation (total allocated / total deserved): 1.0 means every
	// tenant received exactly proportional service.
	JainIndex float64
	Tenants   []TenantSummary
}

// Summarize folds an allocation history into a Summary.
func Summarize(rec []IntervalRecord, capacity int) Summary {
	s := Summary{Intervals: len(rec), Capacity: capacity}
	byName := map[string]*TenantSummary{}
	var order []string
	slowN := map[string]int{}
	deservedTotal := map[string]float64{}
	for i := range rec {
		r := &rec[i]
		s.IdleSMs += r.IdleSMs
		for j := range r.Tenants {
			t := &r.Tenants[j]
			ts, ok := byName[t.Name]
			if !ok {
				ts = &TenantSummary{Name: t.Name, QuotaSMs: t.QuotaSMs}
				byName[t.Name] = ts
				order = append(order, t.Name)
			}
			ts.TotalSMs += t.AllocatedSMs
			ts.IntervalsSeen++
			deservedTotal[t.Name] += t.DeservedSMs
			if t.Queued > 0 {
				if debt := t.DeservedSMs - float64(t.AllocatedSMs); debt > ts.MaxDebtSMs {
					ts.MaxDebtSMs = debt
				}
			}
			if t.MeanSlowdown > 0 {
				ts.MeanSlowdown += t.MeanSlowdown
				slowN[t.Name]++
			}
		}
	}
	var sum, sumSq float64
	n := 0
	for _, name := range order {
		ts := byName[name]
		if ts.IntervalsSeen > 0 {
			ts.MeanDeserved = deservedTotal[name] / float64(ts.IntervalsSeen)
		}
		if c := slowN[name]; c > 0 {
			ts.MeanSlowdown /= float64(c)
		}
		if d := deservedTotal[name]; d > 0 {
			x := float64(ts.TotalSMs) / d
			sum += x
			sumSq += x * x
			n++
		}
		s.Tenants = append(s.Tenants, *ts)
	}
	if n > 0 && sumSq > 0 {
		s.JainIndex = sum * sum / (float64(n) * sumSq)
	} else {
		s.JainIndex = 1
	}
	return s
}
