// Package fleet lifts the paper's single-GPU fairness policy to a
// multi-GPU, multi-tenant fair-share scheduling layer — the datacenter
// question above DASE-Fair. Hierarchical tenant queues with deserved quotas
// and over-quota weights submit kernel jobs (Table III profiles) against a
// fleet of simulated GPUs; a time-aware fair-share policy tracks each
// tenant's allocation history over a sliding window and places jobs onto
// GPUs using DASE estimated slowdowns as the contention signal, then
// partitions each GPU's SMs among its residents with the paper's exhaustive
// partition search (sched.SearchBestPartitionScratch).
//
// The scheduler is fully deterministic: tenants are kept in submission
// order, every sort has an explicit tie-breaker, all randomness derives
// from the fleet seed via splitmix64, and the ground-truth engine derives
// per-invocation seeds from (fleet seed, gpu, epoch). A fixed-seed run
// therefore produces a byte-identical allocation-history CSV across
// processes and across engine shard counts (the PR 8 parallel-engine
// contract), pinned by the eighth determinism golden.
package fleet

import (
	"errors"
	"fmt"
	"sort"

	"dasesim/internal/config"
	"dasesim/internal/core"
	"dasesim/internal/kernels"
	"dasesim/internal/sched"
	"dasesim/internal/sim"
	"dasesim/internal/telemetry"
)

// TenantSpec declares one tenant queue of the hierarchy.
type TenantSpec struct {
	Name string `json:"name"`
	// QuotaSMs is the tenant's deserved fleet-wide SM count. Quotas may
	// oversubscribe the fleet; deserved shares are then scaled down
	// proportionally.
	QuotaSMs int `json:"quota_sms"`
	// Weight distributes surplus capacity (fleet SMs beyond the quota sum)
	// among tenants willing to borrow over quota. Zero means the tenant
	// never receives a deserved share beyond its quota (it can still run
	// on otherwise-idle capacity — the fleet is work conserving).
	Weight float64 `json:"weight"`
}

// JobSpec is one kernel job submitted to a tenant queue.
type JobSpec struct {
	ID     string          `json:"id"`
	Tenant string          `json:"tenant"`
	Kernel kernels.Profile `json:"kernel"`
	// MinSMs is the job's SM demand: the GPU slot it occupies reserves this
	// many SMs for admission purposes. The actual per-interval SM partition
	// of a GPU is dynamic (DASE-Fair style) but never drops a job below
	// MinSMs.
	MinSMs int `json:"min_sms"`
	// Work is the warp-instruction budget; the job completes once it has
	// retired this many instructions.
	Work uint64 `json:"work"`
}

// Config assembles a fleet.
type Config struct {
	// GPUs is the number of identical simulated GPUs, each with GPU SMs.
	GPUs int
	// GPU is the per-GPU hardware configuration (config.Default for the
	// Table II machine).
	GPU config.Config
	// Tenants present at construction; more may join via AddTenant.
	Tenants []TenantSpec
	// WindowIntervals is the sliding allocation-history window the
	// time-aware share accounting uses (default 8 intervals).
	WindowIntervals int
	// MaxJobsPerGPU bounds spatial-multitasking concurrency per GPU
	// (default 4, the paper's maximum).
	MaxJobsPerGPU int
	// IntervalCycles is the scheduling-interval length in GPU cycles
	// (default GPU.IntervalCycles).
	IntervalCycles uint64
	// Seed drives every deterministic random choice.
	Seed uint64
	// Engine supplies per-interval ground truth (default ModelEngine).
	Engine Engine
	// Tracer receives fleet.job and fleet.interval telemetry events
	// (nil = disabled, the repo-standard observation-only discipline).
	Tracer *telemetry.Tracer
}

// ErrJobTooLarge marks a job demanding more SMs than any GPU has. Such a
// job is rejected at submission — it must not wedge the tenant's queue.
var ErrJobTooLarge = errors.New("fleet: job demands more SMs than any GPU has")

// job is the scheduler's view of one submitted job.
type job struct {
	spec    JobSpec
	tenant  *tenant
	gpu     int    // -1 while queued
	done    uint64 // instructions retired so far
	alloc   int    // SMs currently assigned on its GPU
	estSlow float64
}

// tenant is one queue plus its time-aware share accounting.
type tenant struct {
	spec    TenantSpec
	index   int // stable telemetry index, assigned at Add time
	queue   []*job
	running int
	// window is a ring of per-interval fleet-wide allocated SMs; usage is
	// its running sum. usage/window-length is the tenant's recent average
	// allocation, the quantity deserved shares are compared against.
	window     []int
	windowAt   int
	usage      int
	deserved   float64 // recomputed each interval
	placed     int     // SMs placed this interval (provisional usage)
	placedJobs int     // jobs placed this interval
	startShare float64 // share ratio at the start of the placement phase
	departed   bool
}

// overQuota reports whether the tenant is currently consuming at or beyond
// its deserved share: its recent average allocation, plus what it was
// already granted this interval, covers deserved. Placement priority and
// the quota-safety invariant both key off this.
func (t *tenant) overQuota() bool {
	return t.shareRatio() >= 1
}

// shareRatio is recent-average-allocation / deserved share; lower ratios
// are more underserved and place first. Zero-deserved tenants rank last
// (ratio +Inf via the epsilon) but still run on idle capacity.
func (t *tenant) shareRatio() float64 {
	avg := float64(t.usage)/float64(len(t.window)) + float64(t.placed)
	d := t.deserved
	if d < 1e-9 {
		d = 1e-9
	}
	return avg / d
}

// gpuState is one GPU of the fleet: its resident jobs and their current SM
// partition (parallel slices), plus the scratch the zero-alloc DASE and
// partition-search paths reuse across intervals.
type gpuState struct {
	id    int
	jobs  []*job
	alloc []int
	epoch int

	estScratch []core.AppEstimate
	slowBuf    []float64
	curBuf     []int
	bestBuf    []int
	candBuf    []int
}

// reservedSMs is the sum of the residents' admission demands.
func (g *gpuState) reservedSMs() int {
	n := 0
	for _, j := range g.jobs {
		n += j.spec.MinSMs
	}
	return n
}

// Fleet is the multi-GPU multi-tenant scheduler.
type Fleet struct {
	cfg      Config
	tenants  []*tenant
	byName   map[string]*tenant
	gpus     []*gpuState
	interval int
	nTenants int // tenants ever added, for stable indices
	est      *core.DASE
	rec      []IntervalRecord
}

// New validates the configuration and builds an idle fleet.
func New(cfg Config) (*Fleet, error) {
	if cfg.GPUs <= 0 {
		return nil, errors.New("fleet: need at least one GPU")
	}
	if err := cfg.GPU.Validate(); err != nil {
		return nil, fmt.Errorf("fleet: %w", err)
	}
	if cfg.WindowIntervals <= 0 {
		cfg.WindowIntervals = 8
	}
	if cfg.MaxJobsPerGPU <= 0 {
		cfg.MaxJobsPerGPU = 4
	}
	if cfg.MaxJobsPerGPU > telemetry.MaxApps {
		return nil, fmt.Errorf("fleet: MaxJobsPerGPU %d exceeds %d", cfg.MaxJobsPerGPU, telemetry.MaxApps)
	}
	if cfg.IntervalCycles == 0 {
		cfg.IntervalCycles = cfg.GPU.IntervalCycles
	}
	if cfg.Engine == nil {
		cfg.Engine = &ModelEngine{Cfg: cfg.GPU}
	}
	f := &Fleet{cfg: cfg, byName: map[string]*tenant{}, est: core.New(core.Options{})}
	for i := 0; i < cfg.GPUs; i++ {
		f.gpus = append(f.gpus, &gpuState{id: i})
	}
	for _, ts := range cfg.Tenants {
		if err := f.AddTenant(ts); err != nil {
			return nil, err
		}
	}
	return f, nil
}

// AddTenant registers a new tenant queue; it may be called mid-run (the
// tenant joins with an empty allocation window, i.e. maximally underserved).
func (f *Fleet) AddTenant(ts TenantSpec) error {
	if ts.Name == "" || ts.Name[0] == '_' {
		return fmt.Errorf("fleet: invalid tenant name %q (empty or reserved)", ts.Name)
	}
	if _, dup := f.byName[ts.Name]; dup {
		return fmt.Errorf("fleet: duplicate tenant %q", ts.Name)
	}
	if ts.QuotaSMs < 0 || ts.Weight < 0 {
		return fmt.Errorf("fleet: tenant %q: negative quota or weight", ts.Name)
	}
	t := &tenant{spec: ts, index: f.nTenants, window: make([]int, f.cfg.WindowIntervals)}
	f.nTenants++
	f.tenants = append(f.tenants, t)
	f.byName[ts.Name] = t
	return nil
}

// RemoveTenant starts a tenant's departure: its queued jobs are cancelled
// immediately and it receives no further placements; running jobs finish,
// after which the tenant is dropped from the fleet.
func (f *Fleet) RemoveTenant(name string) error {
	t, ok := f.byName[name]
	if !ok || t.departed {
		return fmt.Errorf("fleet: unknown tenant %q", name)
	}
	t.departed = true
	for _, j := range t.queue {
		f.emitJob(j, "cancel", -1)
	}
	t.queue = nil
	f.reap()
	return nil
}

// Submit validates and enqueues one job. A job demanding more SMs than any
// GPU has is rejected with ErrJobTooLarge — rejected, not queued, so an
// impossible job can never wedge the tenant's queue.
func (f *Fleet) Submit(js JobSpec) error {
	t, ok := f.byName[js.Tenant]
	if !ok || t.departed {
		return fmt.Errorf("fleet: job %q: unknown tenant %q", js.ID, js.Tenant)
	}
	if js.MinSMs <= 0 {
		return fmt.Errorf("fleet: job %q: MinSMs must be positive", js.ID)
	}
	if js.Work == 0 {
		return fmt.Errorf("fleet: job %q: Work must be positive", js.ID)
	}
	if err := js.Kernel.Validate(); err != nil {
		return fmt.Errorf("fleet: job %q: %w", js.ID, err)
	}
	j := &job{spec: js, tenant: t, gpu: -1}
	if js.MinSMs > f.cfg.GPU.NumSMs {
		f.emitJob(j, "reject", -1)
		return fmt.Errorf("fleet: job %q: needs %d SMs, GPUs have %d: %w",
			js.ID, js.MinSMs, f.cfg.GPU.NumSMs, ErrJobTooLarge)
	}
	t.queue = append(t.queue, j)
	f.emitJob(j, "arrive", -1)
	return nil
}

// Capacity is the fleet-wide SM count.
func (f *Fleet) Capacity() int { return f.cfg.GPUs * f.cfg.GPU.NumSMs }

// Interval returns how many scheduling intervals have completed.
func (f *Fleet) Interval() int { return f.interval }

// QueuedJobs counts jobs waiting across all tenant queues.
func (f *Fleet) QueuedJobs() int {
	n := 0
	for _, t := range f.tenants {
		n += len(t.queue)
	}
	return n
}

// RunningJobs counts jobs resident on GPUs.
func (f *Fleet) RunningJobs() int {
	n := 0
	for _, g := range f.gpus {
		n += len(g.jobs)
	}
	return n
}

// Records returns the per-interval allocation-history record accumulated so
// far (the input of the CSV writer and the fairness invariant checkers).
func (f *Fleet) Records() []IntervalRecord { return f.rec }

// Tick advances the fleet by one scheduling interval: recompute deserved
// shares, place queued jobs in time-aware fair-share order, repartition
// every busy GPU's SMs with the DASE signal, run the ground-truth engine,
// retire completed jobs, and append the interval's allocation record.
func (f *Fleet) Tick() error {
	f.computeDeserved()
	placements := f.place()
	for _, g := range f.gpus {
		f.repartition(g)
	}
	if err := f.execute(); err != nil {
		return err
	}
	f.account(placements)
	f.finishJobs()
	f.reap()
	f.interval++
	return nil
}

// computeDeserved converts quotas and over-quota weights into this
// interval's deserved SM shares: quotas scaled down proportionally when
// they oversubscribe the fleet, and surplus capacity distributed by weight
// when they undersubscribe it.
func (f *Fleet) computeDeserved() {
	capacity := float64(f.Capacity())
	totalQuota, totalWeight := 0.0, 0.0
	for _, t := range f.tenants {
		if t.departed {
			continue
		}
		totalQuota += float64(t.spec.QuotaSMs)
		totalWeight += t.spec.Weight
	}
	for _, t := range f.tenants {
		t.placed, t.placedJobs = 0, 0
		if t.departed {
			t.deserved = 0
			t.startShare = t.shareRatio()
			continue
		}
		q := float64(t.spec.QuotaSMs)
		switch {
		case totalQuota > capacity:
			t.deserved = q * capacity / totalQuota
		case totalWeight > 0:
			t.deserved = q + (capacity-totalQuota)*t.spec.Weight/totalWeight
		default:
			t.deserved = q
		}
		t.startShare = t.shareRatio()
	}
}

// fits reports whether the job can be admitted to the GPU right now.
func (f *Fleet) fits(g *gpuState, j *job) bool {
	return len(g.jobs) < f.cfg.MaxJobsPerGPU &&
		g.reservedSMs()+j.spec.MinSMs <= f.cfg.GPU.NumSMs
}

// place runs the fair-share placement loop: repeatedly offer the most
// underserved tenant (lowest share ratio, provisional placements included)
// its first placeable queued job, until no queued job fits anywhere. The
// loop is exhaustive, which makes the fleet work conserving by
// construction: placement only stops when nothing placeable remains.
// Within a tenant the queue is FIFO with skip — a small job may overtake a
// blocked head (backfill) so one large job cannot idle the fleet.
func (f *Fleet) place() []Placement {
	var placements []Placement
	for {
		order := f.priorityOrder()
		placed := false
		for _, t := range order {
			qi, g := f.firstPlaceable(t)
			if qi < 0 {
				continue
			}
			j := t.queue[qi]
			t.queue = append(t.queue[:qi], t.queue[qi+1:]...)
			share := t.shareRatio()
			j.gpu = g.id
			j.alloc = j.spec.MinSMs
			j.estSlow = 0
			g.jobs = append(g.jobs, j)
			g.alloc = append(g.alloc, j.spec.MinSMs)
			t.running++
			t.placed += j.spec.MinSMs
			t.placedJobs++
			placements = append(placements, Placement{
				Tenant: t.spec.Name, Job: j.spec.ID, GPU: g.id,
				MinSMs: j.spec.MinSMs, ShareAtPlace: share, OverQuota: share >= 1,
			})
			f.emitJob(j, "place", g.id)
			placed = true
			break
		}
		if !placed {
			return placements
		}
	}
}

// priorityOrder sorts active tenants most-underserved first, ties broken by
// name for determinism.
func (f *Fleet) priorityOrder() []*tenant {
	order := make([]*tenant, 0, len(f.tenants))
	for _, t := range f.tenants {
		if !t.departed && len(t.queue) > 0 {
			order = append(order, t)
		}
	}
	sort.SliceStable(order, func(a, b int) bool {
		ra, rb := order[a].shareRatio(), order[b].shareRatio()
		if ra != rb {
			return ra < rb
		}
		return order[a].spec.Name < order[b].spec.Name
	})
	return order
}

// firstPlaceable scans the tenant's queue in FIFO order for the first job
// some GPU can admit, returning its queue index and the chosen GPU
// (DASE-scored), or (-1, nil).
func (f *Fleet) firstPlaceable(t *tenant) (int, *gpuState) {
	for qi, j := range t.queue {
		if g := f.chooseGPU(j); g != nil {
			return qi, g
		}
	}
	return -1, nil
}

// chooseGPU picks the admissible GPU whose predicted post-placement
// contention is lowest. The prediction synthesizes the candidate
// co-schedule's interval counters and reads them with DASE — estimated
// slowdowns are the packing signal, exactly the role the estimator plays
// inside DASE-Fair. Ties prefer fewer residents, then the lowest GPU id.
func (f *Fleet) chooseGPU(j *job) *gpuState {
	var best *gpuState
	bestScore := 0.0
	for _, g := range f.gpus {
		if !f.fits(g, j) {
			continue
		}
		score := f.predictContention(g, j)
		if best == nil || score < bestScore ||
			(score == bestScore && len(g.jobs) < len(best.jobs)) {
			best, bestScore = g, score
		}
	}
	return best
}

// predictContention scores a candidate placement: synthesize the interval
// snapshot of the GPU's residents plus the newcomer (each at its admission
// demand, remainder to the newcomer), estimate every app's slowdown with
// DASE, and return the predicted maximum slowdown. An empty GPU scores 1
// (no contention) minus a small bonus so spreading wins ties.
func (f *Fleet) predictContention(g *gpuState, j *job) float64 {
	n := len(g.jobs) + 1
	profiles := make([]kernels.Profile, 0, n)
	alloc := make([]int, 0, n)
	used := 0
	for _, r := range g.jobs {
		profiles = append(profiles, r.spec.Kernel)
		alloc = append(alloc, r.spec.MinSMs)
		used += r.spec.MinSMs
	}
	profiles = append(profiles, j.spec.Kernel)
	alloc = append(alloc, f.cfg.GPU.NumSMs-used) // newcomer gets the remainder
	snap := synthesizeSnapshot(f.cfg.GPU, profiles, alloc, f.cfg.IntervalCycles,
		engineSeed(f.cfg.Seed, g.id, -1))
	g.estScratch = f.est.EstimateDetailedInto(snap, g.estScratch)
	worst := 1.0
	for i := range g.estScratch {
		if s := g.estScratch[i].Slowdown; s > worst {
			worst = s
		}
	}
	if len(g.jobs) == 0 {
		worst -= 1e-9 // empty GPU wins exact ties against equal contention
	}
	return worst
}

// repartition splits the GPU's SMs among its residents for the coming
// interval: DASE slowdown estimates from the previous interval's ground
// truth (or the placement prediction for newcomers) feed the paper's
// exhaustive partition search, and the winning partition is clamped so no
// job drops below its admission demand. A lone resident gets every SM.
func (f *Fleet) repartition(g *gpuState) {
	n := len(g.jobs)
	if n == 0 {
		return
	}
	total := f.cfg.GPU.NumSMs
	if n == 1 {
		g.alloc[0] = total
		g.jobs[0].alloc = total
		return
	}
	if cap(g.slowBuf) < n {
		g.slowBuf = make([]float64, n)
		g.curBuf = make([]int, n)
		g.bestBuf = make([]int, n)
		g.candBuf = make([]int, n)
	}
	slow, cur := g.slowBuf[:n], g.curBuf[:n]
	for i, j := range g.jobs {
		s := j.estSlow
		if s < 1 {
			s = 1 // newcomer or first interval: no estimate yet
		}
		slow[i] = s
		cur[i] = g.alloc[i]
	}
	best, _ := sched.SearchBestPartitionScratch(slow, cur, total, 1, g.bestBuf[:n], g.candBuf[:n])
	if best == nil {
		best = sim.EvenAllocation(total, n)
	}
	clampToMinimums(best, g.jobs, total)
	for i, j := range g.jobs {
		g.alloc[i] = best[i]
		j.alloc = best[i]
	}
}

// clampToMinimums raises every entry to its job's admission demand, taking
// the difference from the largest surplus holders (deterministically: the
// lowest-indexed largest entry first). Admission guarantees Σ demands ≤
// total, so the fixup always terminates.
func clampToMinimums(alloc []int, jobs []*job, total int) {
	for i, j := range jobs {
		for alloc[i] < j.spec.MinSMs {
			// Take one SM from the entry with the most surplus.
			donor, surplus := -1, 0
			for k, jk := range jobs {
				if s := alloc[k] - jk.spec.MinSMs; s > surplus {
					donor, surplus = k, s
				}
			}
			if donor < 0 {
				return // Σ demands == total and everyone is at minimum
			}
			alloc[donor]--
			alloc[i]++
		}
	}
}

// execute runs the ground-truth engine for every busy GPU, advances job
// progress, and refreshes each job's DASE slowdown estimate from the real
// interval counters (the signal the next repartition and the telemetry
// consume).
func (f *Fleet) execute() error {
	for _, g := range f.gpus {
		if len(g.jobs) == 0 {
			continue
		}
		profiles := make([]kernels.Profile, len(g.jobs))
		for i, j := range g.jobs {
			profiles[i] = j.spec.Kernel
		}
		snap, instr, err := f.cfg.Engine.Interval(g.id, g.epoch, profiles, g.alloc, f.cfg.Seed, f.cfg.IntervalCycles)
		if err != nil {
			return err
		}
		g.epoch++
		g.estScratch = f.est.EstimateDetailedInto(snap, g.estScratch)
		for i, j := range g.jobs {
			j.done += instr[i]
			j.estSlow = g.estScratch[i].Slowdown
		}
	}
	return nil
}

// finishJobs retires every job whose work budget is met.
func (f *Fleet) finishJobs() {
	for _, g := range f.gpus {
		kept := g.jobs[:0]
		keptAlloc := g.alloc[:0]
		for i, j := range g.jobs {
			if j.done >= j.spec.Work {
				j.tenant.running--
				f.emitJob(j, "done", g.id)
				continue
			}
			kept = append(kept, j)
			keptAlloc = append(keptAlloc, g.alloc[i])
		}
		g.jobs, g.alloc = kept, keptAlloc
	}
}

// reap drops departed tenants once they have fully drained.
func (f *Fleet) reap() {
	kept := f.tenants[:0]
	for _, t := range f.tenants {
		if t.departed && t.running == 0 && len(t.queue) == 0 {
			delete(f.byName, t.spec.Name)
			continue
		}
		kept = append(kept, t)
	}
	f.tenants = kept
}

// account pushes this interval's per-tenant allocations into the sliding
// windows and appends the interval's record (the durable observation the
// CSV writer and the invariant checkers both read).
func (f *Fleet) account(placements []Placement) {
	rec := IntervalRecord{Interval: f.interval, Placements: placements}
	allocated := 0
	for _, t := range f.tenants {
		smsNow := 0
		for _, g := range f.gpus {
			for i, j := range g.jobs {
				if j.tenant == t {
					smsNow += g.alloc[i]
				}
			}
		}
		allocated += smsNow
		t.usage += smsNow - t.window[t.windowAt]
		t.window[t.windowAt] = smsNow
		t.windowAt = (t.windowAt + 1) % len(t.window)
		// The recorded share reflects the refreshed window alone: this
		// interval's allocation is already inside usage, so the provisional
		// placement count must not be double-counted.
		t.placed = 0

		tr := TenantRecord{
			Name:         t.spec.Name,
			QuotaSMs:     t.spec.QuotaSMs,
			DeservedSMs:  t.deserved,
			AllocatedSMs: smsNow,
			Running:      t.running,
			Queued:       len(t.queue),
			WindowShare:  t.shareRatio(),
			OverQuota:    t.overQuota(),
			StartShare:   t.startShare,
			PlacedJobs:   t.placedJobs,
			Departed:     t.departed,
		}
		for _, j := range t.queue {
			tr.QueuedMinSMs = append(tr.QueuedMinSMs, j.spec.MinSMs)
		}
		var slowSum float64
		var slowN int
		for _, g := range f.gpus {
			for _, j := range g.jobs {
				if j.tenant == t && j.estSlow >= 1 {
					slowSum += j.estSlow
					slowN++
				}
			}
		}
		if slowN > 0 {
			tr.MeanSlowdown = slowSum / float64(slowN)
		}
		rec.Tenants = append(rec.Tenants, tr)

		if f.cfg.Tracer != nil {
			f.cfg.Tracer.Emit(telemetry.Event{
				Kind: telemetry.KindFleetInterval, Cycle: uint64(f.interval),
				App: int32(t.index), SM: -1, Note: t.spec.Name,
				SMs: int32(smsNow), Served: uint64(len(t.queue)), Est: tr.MeanSlowdown,
				Deserved: float64(t.deserved),
			})
		}
	}
	rec.IdleSMs = f.Capacity() - allocated
	for _, g := range f.gpus {
		gr := GPURecord{
			GPU: g.id, Residents: len(g.jobs),
			FreeSlots: f.cfg.MaxJobsPerGPU - len(g.jobs),
			FreeSMs:   f.cfg.GPU.NumSMs - g.reservedSMs(),
		}
		for i := range g.jobs {
			gr.ResidentSMs += g.alloc[i]
		}
		rec.GPUs = append(rec.GPUs, gr)
	}
	f.rec = append(f.rec, rec)
}

// emitJob sends one fleet-job lifecycle event (nil-tracer safe).
func (f *Fleet) emitJob(j *job, verb string, gpu int) {
	if f.cfg.Tracer == nil {
		return
	}
	f.cfg.Tracer.Emit(telemetry.Event{
		Kind: telemetry.KindFleetJob, Cycle: uint64(f.interval),
		App: int32(j.tenant.index), SM: int32(gpu),
		Job: j.spec.ID, Note: verb, SMs: int32(j.spec.MinSMs),
	})
}
