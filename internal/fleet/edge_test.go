package fleet

import (
	"errors"
	"testing"

	"dasesim/internal/config"
)

// TestFleetEdgeCases drives the scheduler through the boundary
// configurations table-style: every case runs a small scenario and then
// applies both the shared invariants and a case-specific check.
func TestFleetEdgeCases(t *testing.T) {
	gpu := config.Default()
	cases := []struct {
		name  string
		run   func(t *testing.T) *Fleet
		check func(t *testing.T, f *Fleet)
	}{
		{
			name: "zero-quota tenant runs on idle capacity",
			run: func(t *testing.T) *Fleet {
				f, err := New(testConfig(2,
					TenantSpec{Name: "paid", QuotaSMs: 32, Weight: 1},
					TenantSpec{Name: "free", QuotaSMs: 0, Weight: 0},
				))
				if err != nil {
					t.Fatal(err)
				}
				bs := testProfile(t, "BS")
				if err := f.Submit(JobSpec{ID: "f0", Tenant: "free", Kernel: bs, MinSMs: 4, Work: 1 << 40}); err != nil {
					t.Fatal(err)
				}
				for i := 0; i < 5; i++ {
					if err := f.Tick(); err != nil {
						t.Fatal(err)
					}
				}
				return f
			},
			check: func(t *testing.T, f *Fleet) {
				// The fleet is otherwise idle, so work conservation must let
				// the zero-quota tenant run despite deserving nothing.
				last := f.Records()[len(f.Records())-1]
				for _, tr := range last.Tenants {
					if tr.Name == "free" {
						if tr.DeservedSMs != 0 {
							t.Errorf("zero-quota tenant deserves %v SMs", tr.DeservedSMs)
						}
						if tr.AllocatedSMs == 0 {
							t.Error("zero-quota tenant starved on an idle fleet")
						}
						if !tr.OverQuota {
							t.Error("a running zero-quota tenant must read as over quota")
						}
					}
				}
			},
		},
		{
			name: "single tenant owns the whole fleet",
			run: func(t *testing.T) *Fleet {
				f, err := New(testConfig(3, TenantSpec{Name: "solo", QuotaSMs: 3 * gpu.NumSMs}))
				if err != nil {
					t.Fatal(err)
				}
				bs := testProfile(t, "BS")
				for i := 0; i < 3; i++ {
					if err := f.Submit(JobSpec{ID: string(rune('a' + i)), Tenant: "solo", Kernel: bs, MinSMs: 2, Work: 1 << 40}); err != nil {
						t.Fatal(err)
					}
				}
				for i := 0; i < 4; i++ {
					if err := f.Tick(); err != nil {
						t.Fatal(err)
					}
				}
				return f
			},
			check: func(t *testing.T, f *Fleet) {
				last := f.Records()[len(f.Records())-1]
				if got := last.Tenants[0].DeservedSMs; got != float64(f.Capacity()) {
					t.Errorf("solo tenant deserves %v, want the whole fleet %d", got, f.Capacity())
				}
				// Three 2-SM jobs spread over three GPUs, each expanded to the
				// full GPU: nothing idles while the sole tenant has work.
				if last.IdleSMs != 0 {
					t.Errorf("idle SMs %d with a backlogged sole tenant", last.IdleSMs)
				}
				if last.Tenants[0].AllocatedSMs != f.Capacity() {
					t.Errorf("solo tenant allocated %d of %d", last.Tenants[0].AllocatedSMs, f.Capacity())
				}
			},
		},
		{
			name: "quota sum exceeding capacity scales deserved shares",
			run: func(t *testing.T) *Fleet {
				f, err := New(testConfig(1,
					TenantSpec{Name: "a", QuotaSMs: 3 * gpu.NumSMs},
					TenantSpec{Name: "b", QuotaSMs: gpu.NumSMs},
				))
				if err != nil {
					t.Fatal(err)
				}
				if err := f.Tick(); err != nil {
					t.Fatal(err)
				}
				return f
			},
			check: func(t *testing.T, f *Fleet) {
				r := f.Records()[0]
				// 3:1 quotas over a 16-SM fleet scale to 12 and 4 deserved.
				if a := r.Tenants[0].DeservedSMs; a != 12 {
					t.Errorf("tenant a deserves %v, want 12", a)
				}
				if b := r.Tenants[1].DeservedSMs; b != 4 {
					t.Errorf("tenant b deserves %v, want 4", b)
				}
			},
		},
		{
			name: "tenant joins and leaves mid-run",
			run: func(t *testing.T) *Fleet {
				f, err := New(testConfig(2, TenantSpec{Name: "base", QuotaSMs: 16, Weight: 1}))
				if err != nil {
					t.Fatal(err)
				}
				bs := testProfile(t, "BS")
				if err := f.Submit(JobSpec{ID: "b0", Tenant: "base", Kernel: bs, MinSMs: 4, Work: 1 << 40}); err != nil {
					t.Fatal(err)
				}
				for i := 0; i < 2; i++ {
					if err := f.Tick(); err != nil {
						t.Fatal(err)
					}
				}
				if err := f.AddTenant(TenantSpec{Name: "guest", QuotaSMs: 8, Weight: 1}); err != nil {
					t.Fatal(err)
				}
				for _, id := range []string{"g0", "g1"} {
					if err := f.Submit(JobSpec{ID: id, Tenant: "guest", Kernel: bs, MinSMs: 4, Work: 1 << 40}); err != nil {
						t.Fatal(err)
					}
				}
				for i := 0; i < 2; i++ {
					if err := f.Tick(); err != nil {
						t.Fatal(err)
					}
				}
				if err := f.RemoveTenant("guest"); err != nil {
					t.Fatal(err)
				}
				for i := 0; i < 2; i++ {
					if err := f.Tick(); err != nil {
						t.Fatal(err)
					}
				}
				return f
			},
			check: func(t *testing.T, f *Fleet) {
				// The guest's running jobs drain (Work is effectively
				// infinite, so they are still resident and still recorded).
				last := f.Records()[len(f.Records())-1]
				var sawGuest bool
				for _, tr := range last.Tenants {
					if tr.Name == "guest" {
						sawGuest = true
						if !tr.Departed {
							t.Error("guest not marked departed")
						}
						if tr.Queued != 0 {
							t.Errorf("departed guest still queues %d jobs", tr.Queued)
						}
						if tr.Running == 0 {
							t.Error("departed guest's running jobs vanished instead of draining")
						}
					}
				}
				if !sawGuest {
					t.Error("draining guest missing from the record")
				}
			},
		},
		{
			name: "oversized job rejected without wedging the queue",
			run: func(t *testing.T) *Fleet {
				f, err := New(testConfig(1, TenantSpec{Name: "a", QuotaSMs: 8}))
				if err != nil {
					t.Fatal(err)
				}
				bs := testProfile(t, "BS")
				err = f.Submit(JobSpec{ID: "huge", Tenant: "a", Kernel: bs, MinSMs: gpu.NumSMs + 1, Work: 100})
				if !errors.Is(err, ErrJobTooLarge) {
					t.Fatalf("oversized submit: %v, want ErrJobTooLarge", err)
				}
				if err := f.Submit(JobSpec{ID: "small", Tenant: "a", Kernel: bs, MinSMs: 2, Work: 1 << 40}); err != nil {
					t.Fatal(err)
				}
				if err := f.Tick(); err != nil {
					t.Fatal(err)
				}
				return f
			},
			check: func(t *testing.T, f *Fleet) {
				if f.RunningJobs() != 1 || f.QueuedJobs() != 0 {
					t.Errorf("after reject: running=%d queued=%d, want the small job placed",
						f.RunningJobs(), f.QueuedJobs())
				}
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f := tc.run(t)
			if err := CheckAll(f.Records(), f.Capacity(), gpu.NumSMs); err != nil {
				t.Fatalf("invariants: %v", err)
			}
			tc.check(t, f)
		})
	}
}
