package fleet

import (
	"bytes"
	"errors"
	"reflect"
	"strings"
	"testing"

	"dasesim/internal/config"
	"dasesim/internal/kernels"
	"dasesim/internal/telemetry"
)

func testProfile(t *testing.T, abbr string) kernels.Profile {
	t.Helper()
	p, ok := kernels.ByAbbr(abbr)
	if !ok {
		t.Fatalf("unknown Table III kernel %q", abbr)
	}
	return p
}

func testConfig(gpus int, tenants ...TenantSpec) Config {
	return Config{
		GPUs:            gpus,
		GPU:             config.Default(),
		Tenants:         tenants,
		WindowIntervals: 4,
		Seed:            7,
	}
}

func TestNewValidation(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
	}{
		{"no GPUs", Config{GPUs: 0, GPU: config.Default()}},
		{"bad GPU config", Config{GPUs: 1, GPU: config.Config{}}},
		{"too many slots", func() Config {
			c := testConfig(1)
			c.MaxJobsPerGPU = telemetry.MaxApps + 1
			return c
		}()},
		{"empty tenant name", testConfig(1, TenantSpec{Name: ""})},
		{"reserved tenant name", testConfig(1, TenantSpec{Name: "_idle"})},
		{"duplicate tenant", testConfig(1, TenantSpec{Name: "a"}, TenantSpec{Name: "a"})},
		{"negative quota", testConfig(1, TenantSpec{Name: "a", QuotaSMs: -1})},
		{"negative weight", testConfig(1, TenantSpec{Name: "a", Weight: -0.5})},
	}
	for _, tc := range cases {
		if _, err := New(tc.cfg); err == nil {
			t.Errorf("%s: New accepted an invalid config", tc.name)
		}
	}
}

func TestNewDefaults(t *testing.T) {
	f, err := New(Config{GPUs: 2, GPU: config.Default(), Tenants: []TenantSpec{{Name: "a", QuotaSMs: 8}}})
	if err != nil {
		t.Fatal(err)
	}
	if f.cfg.WindowIntervals != 8 || f.cfg.MaxJobsPerGPU != 4 {
		t.Errorf("defaults not applied: window=%d slots=%d", f.cfg.WindowIntervals, f.cfg.MaxJobsPerGPU)
	}
	if f.cfg.IntervalCycles != config.Default().IntervalCycles {
		t.Errorf("IntervalCycles default = %d", f.cfg.IntervalCycles)
	}
	if _, ok := f.cfg.Engine.(*ModelEngine); !ok {
		t.Errorf("default engine is %T, want *ModelEngine", f.cfg.Engine)
	}
	if got := f.Capacity(); got != 2*config.Default().NumSMs {
		t.Errorf("Capacity = %d", got)
	}
}

func TestSubmitValidation(t *testing.T) {
	tr := telemetry.New(64)
	cfg := testConfig(1, TenantSpec{Name: "a", QuotaSMs: 8})
	cfg.Tracer = tr
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	bs := testProfile(t, "BS")
	ok := JobSpec{ID: "j", Tenant: "a", Kernel: bs, MinSMs: 2, Work: 100}

	bad := []JobSpec{
		{ID: "j", Tenant: "nope", Kernel: bs, MinSMs: 2, Work: 100},
		{ID: "j", Tenant: "a", Kernel: bs, MinSMs: 0, Work: 100},
		{ID: "j", Tenant: "a", Kernel: bs, MinSMs: 2, Work: 0},
		{ID: "j", Tenant: "a", Kernel: kernels.Profile{}, MinSMs: 2, Work: 100},
	}
	for i, js := range bad {
		if err := f.Submit(js); err == nil {
			t.Errorf("case %d: Submit accepted an invalid job", i)
		}
	}

	// An oversized job must be rejected with ErrJobTooLarge and must not be
	// queued: the queue cannot wedge behind an impossible job.
	huge := ok
	huge.ID = "huge"
	huge.MinSMs = config.Default().NumSMs + 1
	if err := f.Submit(huge); !errors.Is(err, ErrJobTooLarge) {
		t.Fatalf("oversized job: err = %v, want ErrJobTooLarge", err)
	}
	if f.QueuedJobs() != 0 {
		t.Fatalf("oversized job was queued")
	}
	var rejected bool
	for _, e := range tr.Events() {
		if e.Kind == telemetry.KindFleetJob && e.Note == "reject" && e.Job == "huge" {
			rejected = true
		}
	}
	if !rejected {
		t.Errorf("no reject telemetry event for the oversized job")
	}

	if err := f.Submit(ok); err != nil {
		t.Fatalf("valid job rejected: %v", err)
	}
	if f.QueuedJobs() != 1 {
		t.Fatalf("QueuedJobs = %d, want 1", f.QueuedJobs())
	}
}

// TestBasicRun drives a small two-tenant fleet with the model engine and
// checks the run completes jobs, satisfies every fairness invariant, and
// books telemetry for each interval.
func TestBasicRun(t *testing.T) {
	tr := telemetry.New(4096)
	cfg := testConfig(2,
		TenantSpec{Name: "a", QuotaSMs: 20, Weight: 1},
		TenantSpec{Name: "b", QuotaSMs: 12, Weight: 1},
	)
	cfg.Tracer = tr
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	bs, ct := testProfile(t, "BS"), testProfile(t, "CT")
	jobs := []JobSpec{
		{ID: "a0", Tenant: "a", Kernel: bs, MinSMs: 4, Work: 200_000},
		{ID: "a1", Tenant: "a", Kernel: ct, MinSMs: 8, Work: 200_000},
		{ID: "b0", Tenant: "b", Kernel: ct, MinSMs: 4, Work: 200_000},
		{ID: "b1", Tenant: "b", Kernel: bs, MinSMs: 2, Work: 200_000},
	}
	for _, js := range jobs {
		if err := f.Submit(js); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 30 && f.QueuedJobs()+f.RunningJobs() > 0; i++ {
		if err := f.Tick(); err != nil {
			t.Fatal(err)
		}
	}
	if n := f.QueuedJobs() + f.RunningJobs(); n != 0 {
		t.Fatalf("%d jobs still outstanding after 30 intervals", n)
	}
	rec := f.Records()
	if len(rec) == 0 {
		t.Fatal("no interval records")
	}
	if err := CheckAll(rec, f.Capacity(), cfg.GPU.NumSMs); err != nil {
		t.Fatalf("invariants: %v", err)
	}
	var done, intervals int
	for _, e := range tr.Events() {
		switch e.Kind {
		case telemetry.KindFleetJob:
			if e.Note == "done" {
				done++
			}
		case telemetry.KindFleetInterval:
			intervals++
		}
	}
	if done != len(jobs) {
		t.Errorf("done events = %d, want %d", done, len(jobs))
	}
	if intervals == 0 {
		t.Error("no fleet.interval telemetry")
	}
}

// TestRunDeterminism replays the same scenario twice and requires identical
// records and identical CSV bytes — the contract the golden pins.
func TestRunDeterminism(t *testing.T) {
	sc := Scenario{
		Config: testConfig(2,
			TenantSpec{Name: "a", QuotaSMs: 16, Weight: 1},
			TenantSpec{Name: "b", QuotaSMs: 16, Weight: 1},
		),
		Intervals: 8,
	}
	sc.Arrivals = PoissonArrivals(11, sc.Config.Tenants, []float64{1, 0.7},
		[]kernels.Profile{testProfile(t, "BS"), testProfile(t, "SP")}, 6, 6, 50_000)

	var runs [2][]IntervalRecord
	var csvs [2]bytes.Buffer
	for i := range runs {
		f, err := sc.Run()
		if err != nil {
			t.Fatal(err)
		}
		runs[i] = f.Records()
		if err := WriteCSV(&csvs[i], runs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if !reflect.DeepEqual(runs[0], runs[1]) {
		t.Fatal("identical scenarios produced different records")
	}
	if !bytes.Equal(csvs[0].Bytes(), csvs[1].Bytes()) {
		t.Fatal("identical scenarios produced different CSV bytes")
	}
}

func TestRemoveTenant(t *testing.T) {
	tr := telemetry.New(256)
	cfg := testConfig(1, TenantSpec{Name: "a", QuotaSMs: 8}, TenantSpec{Name: "b", QuotaSMs: 8})
	cfg.Tracer = tr
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	bs := testProfile(t, "BS")
	for _, js := range []JobSpec{
		{ID: "a0", Tenant: "a", Kernel: bs, MinSMs: 4, Work: 1 << 40}, // long-running
		{ID: "a1", Tenant: "a", Kernel: bs, MinSMs: 4, Work: 100},
	} {
		if err := f.Submit(js); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Tick(); err != nil {
		t.Fatal(err)
	}
	if err := f.RemoveTenant("a"); err != nil {
		t.Fatal(err)
	}
	if err := f.RemoveTenant("a"); err == nil {
		t.Error("double remove succeeded")
	}
	if err := f.Submit(JobSpec{ID: "a2", Tenant: "a", Kernel: bs, MinSMs: 1, Work: 1}); err == nil {
		t.Error("Submit to a departed tenant succeeded")
	}
	var cancelled int
	for _, e := range tr.Events() {
		if e.Kind == telemetry.KindFleetJob && e.Note == "cancel" {
			cancelled++
		}
	}
	// Both a-jobs were placed on the 16-SM GPU in interval 0 (4+4 <= 16), so
	// nothing is queued and nothing cancels; re-check with a queued job.
	f2, err := New(testConfig(1, TenantSpec{Name: "c", QuotaSMs: 8}))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if err := f2.Submit(JobSpec{ID: string(rune('a' + i)), Tenant: "c", Kernel: bs, MinSMs: 10, Work: 1 << 40}); err != nil {
			t.Fatal(err)
		}
	}
	if err := f2.Tick(); err != nil {
		t.Fatal(err)
	}
	if f2.QueuedJobs() == 0 {
		t.Fatal("expected a backlog")
	}
	if err := f2.RemoveTenant("c"); err != nil {
		t.Fatal(err)
	}
	if f2.QueuedJobs() != 0 {
		t.Error("departed tenant still has queued jobs")
	}
	// The running job drains; once done the tenant is reaped entirely.
	if f2.RunningJobs() == 0 {
		t.Error("running job should keep draining after departure")
	}
}

func TestWriteCSVShape(t *testing.T) {
	rec := []IntervalRecord{{
		Interval: 0,
		Tenants: []TenantRecord{
			{Name: "a", QuotaSMs: 8, DeservedSMs: 8, AllocatedSMs: 10, WindowShare: 0.3125},
		},
		IdleSMs: 6,
	}}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, rec); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("CSV lines = %d, want header + tenant + idle", len(lines))
	}
	if !strings.HasPrefix(lines[0], "interval,tenant,") {
		t.Errorf("bad header %q", lines[0])
	}
	if lines[1] != "0,a,8,8.000,10,0,0,0.3125,false,0.0000" {
		t.Errorf("bad tenant row %q", lines[1])
	}
	if lines[2] != "0,_idle,0,0.000,6,0,0,0.0000,false,0.0000" {
		t.Errorf("bad idle row %q", lines[2])
	}
}

func TestSummarize(t *testing.T) {
	rec := []IntervalRecord{
		{Interval: 0, Tenants: []TenantRecord{
			{Name: "a", QuotaSMs: 8, DeservedSMs: 8, AllocatedSMs: 8, MeanSlowdown: 1.5},
			{Name: "b", QuotaSMs: 8, DeservedSMs: 8, AllocatedSMs: 4, Queued: 1},
		}, IdleSMs: 4},
		{Interval: 1, Tenants: []TenantRecord{
			{Name: "a", QuotaSMs: 8, DeservedSMs: 8, AllocatedSMs: 8, MeanSlowdown: 2.5},
			{Name: "b", QuotaSMs: 8, DeservedSMs: 8, AllocatedSMs: 8},
		}},
	}
	s := Summarize(rec, 16)
	if s.Intervals != 2 || s.Capacity != 16 || s.IdleSMs != 4 {
		t.Fatalf("summary header = %+v", s)
	}
	if len(s.Tenants) != 2 {
		t.Fatalf("tenants = %d", len(s.Tenants))
	}
	a, b := s.Tenants[0], s.Tenants[1]
	if a.Name != "a" || a.TotalSMs != 16 || a.MeanSlowdown != 2.0 {
		t.Errorf("tenant a = %+v", a)
	}
	if b.TotalSMs != 12 || b.MaxDebtSMs != 4 {
		t.Errorf("tenant b = %+v", b)
	}
	if s.JainIndex <= 0 || s.JainIndex > 1 {
		t.Errorf("Jain index = %v", s.JainIndex)
	}
	// Perfectly proportional service has index exactly 1.
	even := Summarize(rec[1:], 16)
	if even.JainIndex != 1 {
		t.Errorf("even Jain index = %v, want 1", even.JainIndex)
	}
}

func TestClampToMinimums(t *testing.T) {
	mk := func(mins ...int) []*job {
		js := make([]*job, len(mins))
		for i, m := range mins {
			js[i] = &job{spec: JobSpec{MinSMs: m}}
		}
		return js
	}
	alloc := []int{1, 13, 2}
	clampToMinimums(alloc, mk(4, 4, 2), 16)
	if alloc[0] < 4 || alloc[1] < 4 || alloc[2] < 2 {
		t.Fatalf("clamp left someone under minimum: %v", alloc)
	}
	if alloc[0]+alloc[1]+alloc[2] != 16 {
		t.Fatalf("clamp changed the total: %v", alloc)
	}
	// Tight fit: minimums sum exactly to the total.
	alloc = []int{8, 4, 4}
	clampToMinimums(alloc, mk(8, 4, 4), 16)
	if !reflect.DeepEqual(alloc, []int{8, 4, 4}) {
		t.Fatalf("tight clamp moved SMs: %v", alloc)
	}
}

func TestPoissonArrivalsDeterministic(t *testing.T) {
	tenants := []TenantSpec{{Name: "a"}, {Name: "b"}}
	profiles := []kernels.Profile{testProfile(t, "BS")}
	a := PoissonArrivals(5, tenants, []float64{1.5, 0.5}, profiles, 10, 8, 100)
	b := PoissonArrivals(5, tenants, []float64{1.5, 0.5}, profiles, 10, 8, 100)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different traces")
	}
	c := PoissonArrivals(6, tenants, []float64{1.5, 0.5}, profiles, 10, 8, 100)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical traces")
	}
	if len(a) == 0 {
		t.Fatal("empty trace at rate 1.5")
	}
	for i, ar := range a {
		if i > 0 && ar.Interval < a[i-1].Interval {
			t.Fatal("arrivals out of order")
		}
		if ar.Job.MinSMs < 1 || ar.Job.MinSMs > 8 {
			t.Fatalf("MinSMs %d out of range", ar.Job.MinSMs)
		}
		if err := ar.Job.Kernel.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestEngineSeedStability(t *testing.T) {
	if engineSeed(1, 0, 0) == engineSeed(1, 0, 1) || engineSeed(1, 0, 0) == engineSeed(1, 1, 0) {
		t.Fatal("engine seeds collide across gpu/epoch")
	}
	if engineSeed(1, 2, 3) != engineSeed(1, 2, 3) {
		t.Fatal("engine seed not stable")
	}
}
