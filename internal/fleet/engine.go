package fleet

import (
	"fmt"

	"dasesim/internal/config"
	"dasesim/internal/kernels"
	"dasesim/internal/sim"
)

// Engine produces one scheduling interval of ground truth for one GPU's
// resident jobs: the interval snapshot the DASE signal is computed from, and
// the warp instructions each job retired (its progress toward JobSpec.Work).
//
// Two implementations ship: SimEngine runs the real cycle engine (the PR 8
// parallel engine applies beneath it, so fleet results are byte-identical at
// every shard count), and ModelEngine synthesizes counters from the kernel
// profiles in closed form — cheap enough for thousand-iteration property
// suites and large arrival sweeps.
type Engine interface {
	Name() string
	// Interval simulates intervalCycles of the given co-schedule. profiles
	// and alloc are parallel; alloc sums to the GPU's SM count. gpu and
	// epoch identify the invocation so engines can derive deterministic
	// per-run seeds from the fleet seed.
	Interval(gpu, epoch int, profiles []kernels.Profile, alloc []int, seed, intervalCycles uint64) (*sim.IntervalSnapshot, []uint64, error)
}

// mix64 is splitmix64, the repo-standard deterministic hash step.
func mix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// engineSeed derives the per-invocation simulation seed. It depends only on
// (fleet seed, gpu, epoch), never on wall clock or map order, so a replayed
// trace reproduces every engine run bit for bit.
func engineSeed(seed uint64, gpu, epoch int) uint64 {
	s := seed ^ uint64(gpu+1)*0xc2b2ae3d27d4eb4f
	s ^= uint64(epoch+1) * 0xd1342543de82ef95
	return mix64(&s)
}

// SimEngine drives the real cycle engine: each scheduling interval of each
// busy GPU is one fresh shared simulation of its resident kernels under the
// current SM partition. Opts are passed through (sim.WithParallelism among
// them; when absent the DASESIM_PARALLEL default applies), and PR 8's
// determinism contract makes the fleet CSV independent of the shard count.
type SimEngine struct {
	Cfg  config.Config
	Opts []sim.Option
}

// Name implements Engine.
func (e *SimEngine) Name() string { return "sim" }

// Interval implements Engine.
func (e *SimEngine) Interval(gpu, epoch int, profiles []kernels.Profile, alloc []int, seed, intervalCycles uint64) (*sim.IntervalSnapshot, []uint64, error) {
	res, err := sim.RunShared(e.Cfg, profiles, alloc, intervalCycles, engineSeed(seed, gpu, epoch), e.Opts...)
	if err != nil {
		return nil, nil, fmt.Errorf("fleet: gpu %d epoch %d: %w", gpu, epoch, err)
	}
	if len(res.Snapshots) == 0 {
		return nil, nil, fmt.Errorf("fleet: gpu %d epoch %d: run produced no snapshots", gpu, epoch)
	}
	snap := res.Snapshots[len(res.Snapshots)-1]
	instr := make([]uint64, len(res.Apps))
	for i := range res.Apps {
		instr[i] = res.Apps[i].Instructions
	}
	return &snap, instr, nil
}

// ModelEngine synthesizes interval counters from the kernel profiles in
// closed form: each resident kernel demands DRAM lines in proportion to its
// memory intensity and SM share, demand beyond the bus peak is scaled back
// proportionally, and the counters DASE reads (α, BLP, served requests,
// row/bank/LLC interference) are derived from that contention level. The
// model is not the cycle engine — it is a deterministic signal generator
// whose estimates rank contention sensibly, which is all the scheduler-level
// properties (conservation, quota safety, bookkeeping) need.
type ModelEngine struct {
	Cfg config.Config
}

// Name implements Engine.
func (e *ModelEngine) Name() string { return "model" }

// Interval implements Engine.
func (e *ModelEngine) Interval(gpu, epoch int, profiles []kernels.Profile, alloc []int, seed, intervalCycles uint64) (*sim.IntervalSnapshot, []uint64, error) {
	snap := synthesizeSnapshot(e.Cfg, profiles, alloc, intervalCycles, engineSeed(seed, gpu, epoch))
	instr := make([]uint64, len(profiles))
	for i := range profiles {
		instr[i] = modelInstructions(&snap.Apps[i], &profiles[i])
	}
	return snap, instr, nil
}

// modelInstructions converts a synthesized app interval into retired warp
// instructions: the issue rate degrades with the memory stall fraction, and
// at least one instruction retires per interval so every job always makes
// forward progress.
func modelInstructions(a *sim.AppInterval, p *kernels.Profile) uint64 {
	issue := float64(a.SMCycles) * (1 - 0.85*a.Alpha) / float64(p.ComputeLat)
	if issue < 1 {
		issue = 1
	}
	return uint64(issue)
}

// synthesizeSnapshot is the closed-form counter model shared by ModelEngine
// and the placement predictor: given the co-schedule, produce the
// IntervalSnapshot DASE will read. Jitter (a few percent, hashed from seed)
// keeps property-test scenarios from all collapsing onto the same numbers
// without breaking determinism.
func synthesizeSnapshot(cfg config.Config, profiles []kernels.Profile, alloc []int, intervalCycles, seed uint64) *sim.IntervalSnapshot {
	snap := &sim.IntervalSnapshot{
		Cycle:          intervalCycles,
		IntervalCycles: intervalCycles,
		NumSMs:         cfg.NumSMs,
		NumMCs:         cfg.NumMCs,
		PeakReqPerCyc:  cfg.PeakRequestsPerCycle(),
		PeakActPerCyc:  cfg.PeakActivationsPerCycle(),
		ReqMaxFactor:   cfg.RequestMaxFactor,
		Apps:           make([]sim.AppInterval, len(profiles)),
	}
	// Per-app demanded lines per cycle, before bus contention.
	demand := make([]float64, len(profiles))
	total := 0.0
	for i := range profiles {
		p := &profiles[i]
		perSM := p.MemFrac * float64(p.CoalescedLines) / float64(p.ComputeLat)
		h := seed ^ uint64(i+1)*0xff51afd7ed558ccd
		jitter := 0.95 + 0.1*float64(mix64(&h)>>11)/(1<<53)
		demand[i] = float64(alloc[i]) * perSM * jitter
		total += demand[i]
	}
	peak := snap.PeakReqPerCyc
	scale := 1.0
	if total > peak && total > 0 {
		scale = peak / total
	}
	contention := total / peak // >1 means the bus is oversubscribed
	for i := range profiles {
		p := &profiles[i]
		a := &snap.Apps[i]
		a.App = 0
		a.SMs = alloc[i]
		a.SMCycles = uint64(alloc[i]) * intervalCycles
		served := demand[i] * scale * float64(intervalCycles)
		if served < 1 {
			served = 1
		}
		a.Served = uint64(served)
		a.Enqueued = a.Served

		// Memory stall fraction rises with intensity and contention.
		alpha := p.MemFrac * (2 + contention)
		if alpha > 1 {
			alpha = 1
		}
		a.Alpha = alpha

		// Row locality from the profile's sequential-run length; co-runners
		// steal rows in proportion to their share of the traffic.
		share := demand[i] / total
		rowHitAlone := 1 - 1/float64(p.SeqRun+1)
		rowHit := rowHitAlone * (0.5 + 0.5*share)
		hits := uint64(float64(a.Served) * rowHit)
		a.RowHits = hits
		a.RowMisses = a.Served - hits
		a.ERBMiss = uint64(float64(a.Served) * rowHitAlone * (1 - share) * 0.5)

		// Bank-level parallelism saturates with traffic; blocked-bank time
		// grows with the co-runners' demand.
		banks := float64(cfg.NumMCs * cfg.Mem.NumBanks)
		a.BLP = 1 + (banks-1)*demand[i]/(demand[i]+1)
		a.BLPAccess = a.BLP * share
		a.BLPBlocked = (1 - share) * contention * 0.3
		a.TimeInBanks = a.Served * (cfg.Mem.TCAS + cfg.Mem.TBurst)

		// Cache contention: small footprints lose L2 lines to co-runners.
		if p.FootprintLines < 1<<16 && len(profiles) > 1 {
			a.ELLCMiss = float64(a.Served) * (1 - share) * 0.2
		}

		a.TBSum = p.Blocks
		shared := alloc[i] * maxResidentBlocks(cfg, p)
		if shared > p.Blocks {
			shared = p.Blocks
		}
		a.TBShared = shared
		a.MemInsts = a.Served / uint64(p.CoalescedLines)
		a.Issued = modelInstructions(a, p)
		a.ActiveCycles = uint64(float64(a.SMCycles) * (1 - 0.5*alpha))
	}
	snap.BusCycles = uint64(float64(intervalCycles) * scale * total / peak)
	return snap
}

// maxResidentBlocks is the residency bound of one SM for the profile.
func maxResidentBlocks(cfg config.Config, p *kernels.Profile) int {
	perSM := cfg.SM.MaxBlocks
	if p.WarpsPerBlock > 0 {
		if byWarps := cfg.SM.MaxWarps / p.WarpsPerBlock; byWarps < perSM {
			perSM = byWarps
		}
	}
	if perSM < 1 {
		perSM = 1
	}
	return perSM
}
