package fleet

import (
	"strings"
	"testing"
)

// The mutation tests prove each fairness invariant sharp: start from a real
// run whose history passes every checker, plant exactly the violation the
// invariant exists to catch, and require the checker to fail. A checker
// that tolerates its own violation class would pass the property suite
// vacuously; these tests make that regression loud.

// cleanHistory produces a passing allocation history with at least one
// placement and a trailing interval with admission headroom.
func cleanHistory(t *testing.T) ([]IntervalRecord, int, int) {
	t.Helper()
	cfg := testConfig(2,
		TenantSpec{Name: "a", QuotaSMs: 20, Weight: 1},
		TenantSpec{Name: "b", QuotaSMs: 12, Weight: 1},
	)
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	bs, ct := testProfile(t, "BS"), testProfile(t, "CT")
	for _, js := range []JobSpec{
		{ID: "a0", Tenant: "a", Kernel: bs, MinSMs: 4, Work: 50_000},
		{ID: "a1", Tenant: "a", Kernel: ct, MinSMs: 6, Work: 50_000},
		{ID: "b0", Tenant: "b", Kernel: ct, MinSMs: 4, Work: 50_000},
	} {
		if err := f.Submit(js); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 10; i++ {
		if err := f.Tick(); err != nil {
			t.Fatal(err)
		}
	}
	rec := f.Records()
	if err := CheckAll(rec, f.Capacity(), cfg.GPU.NumSMs); err != nil {
		t.Fatalf("baseline history unexpectedly fails: %v", err)
	}
	var placements int
	for i := range rec {
		placements += len(rec[i].Placements)
	}
	if placements == 0 {
		t.Fatal("baseline history has no placements to mutate")
	}
	return rec, f.Capacity(), cfg.GPU.NumSMs
}

// mutate deep-copies the history and applies the corruption, so each
// mutation starts from the same clean baseline.
func mutate(rec []IntervalRecord, fn func(rec []IntervalRecord)) []IntervalRecord {
	out := make([]IntervalRecord, len(rec))
	for i := range rec {
		r := rec[i]
		r.Tenants = append([]TenantRecord(nil), rec[i].Tenants...)
		for j := range r.Tenants {
			r.Tenants[j].QueuedMinSMs = append([]int(nil), rec[i].Tenants[j].QueuedMinSMs...)
		}
		r.GPUs = append([]GPURecord(nil), rec[i].GPUs...)
		r.Placements = append([]Placement(nil), rec[i].Placements...)
		out[i] = r
	}
	fn(out)
	return out
}

// findHeadroom returns an interval index whose first GPU has a free slot
// and at least one free SM (the run's drained tail always qualifies).
func findHeadroom(t *testing.T, rec []IntervalRecord) int {
	t.Helper()
	for i := range rec {
		for _, g := range rec[i].GPUs {
			if g.FreeSlots > 0 && g.FreeSMs >= 1 {
				return i
			}
		}
	}
	t.Fatal("no interval with admission headroom")
	return -1
}

func TestMutationStarvation(t *testing.T) {
	rec, capacity, gpuSMs := cleanHistory(t)
	// Starvation mutation: pretend a 1-SM job sat queued in an interval
	// where a GPU had a free slot and free SMs — the scheduler idled
	// capacity a runnable job could have used.
	iv := findHeadroom(t, rec)
	bad := mutate(rec, func(rec []IntervalRecord) {
		rec[iv].Tenants[0].QueuedMinSMs = append(rec[iv].Tenants[0].QueuedMinSMs, 1)
		rec[iv].Tenants[0].Queued++
	})
	err := CheckConservation(bad)
	if err == nil {
		t.Fatal("CheckConservation accepted a starved queued job beside free capacity")
	}
	if !strings.Contains(err.Error(), "work conservation") {
		t.Fatalf("wrong failure: %v", err)
	}
	if err := CheckAll(bad, capacity, gpuSMs); err == nil {
		t.Fatal("CheckAll missed the conservation violation")
	}
}

func TestMutationQuotaLeak(t *testing.T) {
	rec, capacity, gpuSMs := cleanHistory(t)
	// Quota-leak mutation: rewrite one placement as an over-quota grab while
	// another tenant was under quota, unplaced, and had a smaller job
	// queued — exactly the starvation-by-borrower quota safety forbids.
	var iv, pi int = -1, -1
	for i := range rec {
		if len(rec[i].Placements) > 0 {
			iv, pi = i, 0
			break
		}
	}
	if iv < 0 {
		t.Fatal("no placement to mutate")
	}
	victimIdx := -1
	for j := range rec[iv].Tenants {
		if rec[iv].Tenants[j].Name != rec[iv].Placements[pi].Tenant {
			victimIdx = j
			break
		}
	}
	if victimIdx < 0 {
		t.Fatal("no victim tenant available")
	}
	bad := mutate(rec, func(rec []IntervalRecord) {
		p := &rec[iv].Placements[pi]
		p.OverQuota = true
		p.ShareAtPlace = 1.5
		v := &rec[iv].Tenants[victimIdx]
		v.StartShare = 0.25
		v.PlacedJobs = 0
		v.Departed = false
		v.QueuedMinSMs = []int{1}
		v.Queued = 1
	})
	err := CheckQuotaSafety(bad)
	if err == nil {
		t.Fatal("CheckQuotaSafety accepted an over-quota placement past a starved in-quota tenant")
	}
	if !strings.Contains(err.Error(), "quota safety") {
		t.Fatalf("wrong failure: %v", err)
	}
	if err := CheckAll(bad, capacity, gpuSMs); err == nil {
		t.Fatal("CheckAll missed the quota violation")
	}
}

func TestMutationLostAllocation(t *testing.T) {
	rec, capacity, gpuSMs := cleanHistory(t)
	// Lost-allocation mutation: shave one SM off a tenant's recorded
	// allocation without crediting idle — the books no longer balance.
	var iv int = -1
	for i := range rec {
		for j := range rec[i].Tenants {
			if rec[i].Tenants[j].AllocatedSMs > 0 {
				iv = i
			}
		}
	}
	if iv < 0 {
		t.Fatal("no allocated interval to mutate")
	}
	bad := mutate(rec, func(rec []IntervalRecord) {
		for j := range rec[iv].Tenants {
			if rec[iv].Tenants[j].AllocatedSMs > 0 {
				rec[iv].Tenants[j].AllocatedSMs--
				return
			}
		}
	})
	err := CheckAccounting(bad, capacity, gpuSMs)
	if err == nil {
		t.Fatal("CheckAccounting accepted a lost SM")
	}
	if !strings.Contains(err.Error(), "lost or double-counted") {
		t.Fatalf("wrong failure: %v", err)
	}
	if err := CheckAll(bad, capacity, gpuSMs); err == nil {
		t.Fatal("CheckAll missed the accounting violation")
	}

	// And the per-GPU side: a busy GPU reporting a short partition.
	bad2 := mutate(rec, func(rec []IntervalRecord) {
		for i := range rec {
			for k := range rec[i].GPUs {
				if rec[i].GPUs[k].Residents > 0 {
					rec[i].GPUs[k].ResidentSMs--
					return
				}
			}
		}
	})
	if err := CheckAccounting(bad2, capacity, gpuSMs); err == nil {
		t.Fatal("CheckAccounting accepted a busy GPU with unpartitioned SMs")
	}
}
