package fleet

import (
	"errors"
	"fmt"
	"math"

	"dasesim/internal/config"
	"dasesim/internal/kernels"
)

// Arrival schedules one job submission at the start of a scheduling
// interval. Traces are replayed in slice order; intervals must be
// non-decreasing.
type Arrival struct {
	Interval int     `json:"interval"`
	Job      JobSpec `json:"job"`
}

// Scenario is a replayable fleet run: a fleet configuration plus a
// deterministic arrival trace and a run length. Everything fleetsim and the
// test suites execute is a Scenario, so a fixed scenario reproduces a fixed
// allocation history byte for byte.
type Scenario struct {
	Config    Config
	Arrivals  []Arrival
	Intervals int
}

// Run replays the scenario: submit each interval's arrivals, then Tick.
// Oversized jobs (ErrJobTooLarge) are rejected by Submit as the scheduler
// contract requires; the replay records the rejection and carries on.
func (s *Scenario) Run() (*Fleet, error) {
	f, err := New(s.Config)
	if err != nil {
		return nil, err
	}
	next := 0
	for iv := 0; iv < s.Intervals; iv++ {
		for next < len(s.Arrivals) && s.Arrivals[next].Interval <= iv {
			if err := f.Submit(s.Arrivals[next].Job); err != nil && !errors.Is(err, ErrJobTooLarge) {
				return nil, fmt.Errorf("fleet: replay interval %d: %w", iv, err)
			}
			next++
		}
		if err := f.Tick(); err != nil {
			return nil, err
		}
	}
	return f, nil
}

// PoissonArrivals synthesizes a deterministic arrival trace: each tenant
// draws an independent Poisson arrival count every interval (rates[i] jobs
// per interval for tenants[i]), and each arriving job cycles through the
// given kernel profiles with a hash-derived SM demand in [1, maxMinSMs].
// All randomness derives from seed via splitmix64, so the same inputs
// always produce the same trace.
func PoissonArrivals(seed uint64, tenants []TenantSpec, rates []float64, profiles []kernels.Profile, intervals, maxMinSMs int, work uint64) []Arrival {
	if len(rates) != len(tenants) {
		panic("fleet: PoissonArrivals: len(rates) != len(tenants)")
	}
	if len(profiles) == 0 || maxMinSMs < 1 {
		panic("fleet: PoissonArrivals: need profiles and a positive maxMinSMs")
	}
	var arrivals []Arrival
	n := 0
	for iv := 0; iv < intervals; iv++ {
		for ti := range tenants {
			s := seed ^ uint64(iv+1)*0x9e3779b97f4a7c15 ^ uint64(ti+1)*0xc2b2ae3d27d4eb4f
			for k := 0; k < poissonDraw(&s, rates[ti]); k++ {
				h := mix64(&s)
				arrivals = append(arrivals, Arrival{
					Interval: iv,
					Job: JobSpec{
						ID:     fmt.Sprintf("%s-%04d", tenants[ti].Name, n),
						Tenant: tenants[ti].Name,
						Kernel: profiles[int(h%uint64(len(profiles)))],
						MinSMs: 1 + int((h>>32)%uint64(maxMinSMs)),
						Work:   work,
					},
				})
				n++
			}
		}
	}
	return arrivals
}

// poissonDraw samples Poisson(rate) by Knuth's product method with
// splitmix64 uniforms — deterministic for a given state.
func poissonDraw(state *uint64, rate float64) int {
	if rate <= 0 {
		return 0
	}
	l := math.Exp(-rate)
	k, p := 0, 1.0
	for {
		p *= float64(mix64(state)>>11) / (1 << 53)
		if p <= l {
			return k
		}
		k++
	}
}

// GoldenScenario is the eighth determinism golden's fixture: a fixed-seed
// 3-tenant, 4-GPU fleet over the real cycle engine with a Poisson arrival
// trace. Its allocation-history CSV hash is pinned in
// testdata/determinism_golden.json and must be byte-identical sequentially
// and at every engine shard count.
func GoldenScenario() Scenario {
	gpu := config.Default()
	tenants := []TenantSpec{
		{Name: "astra", QuotaSMs: 24, Weight: 1},
		{Name: "borei", QuotaSMs: 16, Weight: 1},
		{Name: "ceres", QuotaSMs: 8, Weight: 2},
	}
	profiles := make([]kernels.Profile, 0, 6)
	for _, abbr := range []string{"BS", "CT", "QR", "SP", "SC", "NN"} {
		p, ok := kernels.ByAbbr(abbr)
		if !ok {
			panic("fleet: GoldenScenario: unknown Table III kernel " + abbr)
		}
		profiles = append(profiles, p)
	}
	const seed = 42
	cfg := Config{
		GPUs:            4,
		GPU:             gpu,
		Tenants:         tenants,
		WindowIntervals: 6,
		IntervalCycles:  20_000,
		Seed:            seed,
		Engine:          &SimEngine{Cfg: gpu},
	}
	return Scenario{
		Config:    cfg,
		Arrivals:  PoissonArrivals(seed, tenants, []float64{1.6, 1.1, 0.8}, profiles, 10, 8, 400_000),
		Intervals: 12,
	}
}
