package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// This file is the metrics-federation layer: point-in-time registry
// snapshots that travel as JSON between cluster nodes, merge semantics
// (counters add, gauges sum, histograms merge buckets), a node-label
// preserving variant, and Prometheus text rendering of merged snapshots.
// The cluster's GET /v1/cluster/metrics endpoint is scatter-gather over
// per-node Snapshot() results glued together with MergeSnapshots.

// FamilySnapshot is a point-in-time copy of one metric family, in a wire
// form that survives JSON between nodes.
type FamilySnapshot struct {
	Name       string          `json:"name"`
	Help       string          `json:"help"`
	Type       string          `json:"type"` // "counter" | "gauge" | "histogram"
	LabelNames []string        `json:"label_names,omitempty"`
	Buckets    []float64       `json:"buckets,omitempty"` // histogram upper bounds, +Inf implicit
	Points     []PointSnapshot `json:"points"`
}

// PointSnapshot is one label-value tuple's samples. For counters and gauges
// Value holds the sample; for histograms BucketCounts holds per-bucket
// (non-cumulative) counts with the +Inf bucket last, plus Sum and Count.
type PointSnapshot struct {
	LabelValues  []string `json:"label_values,omitempty"`
	Value        float64  `json:"value"`
	BucketCounts []uint64 `json:"bucket_counts,omitempty"`
	Sum          float64  `json:"sum,omitempty"`
	Count        uint64   `json:"count,omitempty"`
}

// Snapshot copies every registered family, sorted by name, children in
// registration order. Func-backed families are sampled once.
func (r *Registry) Snapshot() []FamilySnapshot {
	r.mu.Lock()
	names := make([]string, 0, len(r.fams))
	for n := range r.fams {
		names = append(names, n)
	}
	sort.Strings(names)
	fams := make([]*family, len(names))
	for i, n := range names {
		fams[i] = r.fams[n]
	}
	r.mu.Unlock()

	out := make([]FamilySnapshot, 0, len(fams))
	for _, f := range fams {
		fs := FamilySnapshot{
			Name: f.Name, Help: f.Help, Type: f.Type,
			LabelNames: append([]string(nil), f.labelNames...),
			Buckets:    append([]float64(nil), f.buckets...),
		}
		if f.fn != nil {
			fs.Points = []PointSnapshot{{Value: f.fn()}}
			out = append(out, fs)
			continue
		}
		f.mu.Lock()
		children := make([]*child, 0, len(f.order))
		for _, key := range f.order {
			children = append(children, f.children[key])
		}
		f.mu.Unlock()
		for _, c := range children {
			p := PointSnapshot{LabelValues: append([]string(nil), c.labelValues...)}
			switch f.Type {
			case "histogram":
				p.BucketCounts = make([]uint64, len(c.bucketCounts))
				for i := range c.bucketCounts {
					p.BucketCounts[i] = c.bucketCounts[i].Load()
				}
				p.Sum = histogramSum(c)
				p.Count = c.count.Load()
			case "counter":
				p.Value = float64(c.bits.Load())
			default:
				p.Value = gaugeValue(c)
			}
			fs.Points = append(fs.Points, p)
		}
		out = append(out, fs)
	}
	return out
}

// NodeSnapshot is one cluster member's full registry snapshot.
type NodeSnapshot struct {
	Node     string           `json:"node"`
	Families []FamilySnapshot `json:"families"`
}

// MergeSnapshots folds per-node snapshots into one cluster-wide view:
// families are matched by name, points by label values; counters and gauges
// add, histograms merge bucket counts (bounds must match — a family whose
// type or buckets disagree with the first-seen definition is skipped, which
// only happens across mixed binary versions). Output families are sorted by
// name; merged points are sorted by label values.
func MergeSnapshots(nodes []NodeSnapshot) []FamilySnapshot {
	type mergedFam struct {
		FamilySnapshot
		points map[string]*PointSnapshot
		order  []string
	}
	fams := map[string]*mergedFam{}
	var order []string
	for _, n := range nodes {
		for _, f := range n.Families {
			mf, ok := fams[f.Name]
			if !ok {
				mf = &mergedFam{FamilySnapshot: FamilySnapshot{
					Name: f.Name, Help: f.Help, Type: f.Type,
					LabelNames: f.LabelNames, Buckets: f.Buckets,
				}, points: map[string]*PointSnapshot{}}
				fams[f.Name] = mf
				order = append(order, f.Name)
			} else if mf.Type != f.Type || !equalBuckets(mf.Buckets, f.Buckets) {
				continue // mixed definitions: keep the first-seen shape
			}
			for _, p := range f.Points {
				key := strings.Join(p.LabelValues, "\xff")
				mp, ok := mf.points[key]
				if !ok {
					cp := p
					cp.LabelValues = append([]string(nil), p.LabelValues...)
					cp.BucketCounts = append([]uint64(nil), p.BucketCounts...)
					mf.points[key] = &cp
					mf.order = append(mf.order, key)
					continue
				}
				mp.Value += p.Value
				mp.Sum += p.Sum
				mp.Count += p.Count
				for i := range mp.BucketCounts {
					if i < len(p.BucketCounts) {
						mp.BucketCounts[i] += p.BucketCounts[i]
					}
				}
			}
		}
	}
	sort.Strings(order)
	out := make([]FamilySnapshot, 0, len(order))
	for _, name := range order {
		mf := fams[name]
		sort.Strings(mf.order)
		for _, key := range mf.order {
			mf.FamilySnapshot.Points = append(mf.FamilySnapshot.Points, *mf.points[key])
		}
		out = append(out, mf.FamilySnapshot)
	}
	return out
}

// ByNodeSnapshots is the node-label preserving variant of MergeSnapshots:
// every point gains a leading "node" label carrying its origin, so nothing
// is summed away.
func ByNodeSnapshots(nodes []NodeSnapshot) []FamilySnapshot {
	relabeled := make([]NodeSnapshot, 0, len(nodes))
	for _, n := range nodes {
		fams := make([]FamilySnapshot, 0, len(n.Families))
		for _, f := range n.Families {
			rf := f
			rf.LabelNames = append([]string{"node"}, f.LabelNames...)
			rf.Points = make([]PointSnapshot, 0, len(f.Points))
			for _, p := range f.Points {
				rp := p
				rp.LabelValues = append([]string{n.Node}, p.LabelValues...)
				rf.Points = append(rf.Points, rp)
			}
			fams = append(fams, rf)
		}
		relabeled = append(relabeled, NodeSnapshot{Node: n.Node, Families: fams})
	}
	return MergeSnapshots(relabeled)
}

// WritePrometheusSnapshot renders snapshot families in the same text
// exposition format WritePrometheus produces, so a federated view scrapes
// like a single node.
func WritePrometheusSnapshot(w io.Writer, fams []FamilySnapshot) {
	for _, f := range fams {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.Name, f.Help, f.Name, f.Type)
		for _, p := range f.Points {
			switch f.Type {
			case "histogram":
				base := labelPairs(f.LabelNames, p.LabelValues)
				var cum uint64
				for i, bound := range f.Buckets {
					if i < len(p.BucketCounts) {
						cum += p.BucketCounts[i]
					}
					pairs := append(append([]string(nil), base...), fmt.Sprintf("le=%q", formatFloat(bound)))
					fmt.Fprintf(w, "%s_bucket{%s} %d\n", f.Name, strings.Join(pairs, ","), cum)
				}
				if len(p.BucketCounts) == len(f.Buckets)+1 {
					cum += p.BucketCounts[len(f.Buckets)]
				}
				pairs := append(append([]string(nil), base...), `le="+Inf"`)
				fmt.Fprintf(w, "%s_bucket{%s} %d\n", f.Name, strings.Join(pairs, ","), cum)
				fmt.Fprintf(w, "%s_sum%s %s\n", f.Name, labelString(f.LabelNames, p.LabelValues), formatFloat(p.Sum))
				fmt.Fprintf(w, "%s_count%s %d\n", f.Name, labelString(f.LabelNames, p.LabelValues), p.Count)
			default:
				fmt.Fprintf(w, "%s%s %s\n", f.Name, labelString(f.LabelNames, p.LabelValues), formatFloat(p.Value))
			}
		}
	}
}

// HistogramQuantile estimates the q-quantile (0..1) from per-bucket counts
// (the PointSnapshot layout: one count per bound, +Inf last), interpolating
// linearly within the winning bucket the way Prometheus histogram_quantile
// does. It returns 0 when the histogram is empty; a quantile landing in the
// +Inf bucket returns the highest finite bound.
func HistogramQuantile(q float64, bounds []float64, counts []uint64) float64 {
	var total uint64
	for _, c := range counts {
		total += c
	}
	if total == 0 || len(bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum float64
	for i, c := range counts {
		prev := cum
		cum += float64(c)
		if cum < rank || c == 0 {
			continue
		}
		if i >= len(bounds) {
			return bounds[len(bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = bounds[i-1]
		}
		return lo + (bounds[i]-lo)*(rank-prev)/float64(c)
	}
	return bounds[len(bounds)-1]
}

// equalBuckets reports whether two bucket-bound slices are identical.
func equalBuckets(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// gaugeValue reads a gauge child's float64 value.
func gaugeValue(c *child) float64 { return math.Float64frombits(c.bits.Load()) }

// histogramSum reads a histogram child's observation sum.
func histogramSum(c *child) float64 { return math.Float64frombits(c.sumBits.Load()) }
