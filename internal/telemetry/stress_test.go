package telemetry

import (
	"sync"
	"testing"
)

// tagID derives a per-event marker from the emitting goroutine and iteration,
// letting the stress test detect torn events: every field stamped from the
// same (g, i) pair must come back together or not at all.
func tagID(g, i int) uint64 {
	return uint64(g)<<32 | uint64(i) | 1<<63 // high bit keeps it non-zero
}

// TestTracerConcurrentEmitStress hammers a small ring from many goroutines
// through thousands of wrap-arounds (run under -race in CI). Invariants: no
// emission is lost from the totals, the retained window is seq-contiguous,
// and no event is torn — every retained event's span fields are exactly the
// ones stamped together by one Emit call.
func TestTracerConcurrentEmitStress(t *testing.T) {
	const (
		goroutines = 16
		perG       = 5_000
		ringSize   = 256 // total emissions wrap the ring ~312 times
	)
	tr := New(ringSize)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				id := tagID(g, i)
				tr.Emit(Event{
					Kind: KindClusterRPC, App: int32(g), SM: -1,
					Cycle: uint64(i), Dur: int64(id),
					TraceID: id, SpanID: id + 1, ParentID: id + 2,
				})
			}
		}(g)
	}
	wg.Wait()

	const want = goroutines * perG
	if tr.Total() != want {
		t.Fatalf("Total = %d, want %d (lost emissions)", tr.Total(), want)
	}
	if tr.Len() != ringSize {
		t.Fatalf("Len = %d, want %d", tr.Len(), ringSize)
	}
	if tr.Dropped() != want-ringSize {
		t.Fatalf("Dropped = %d, want %d", tr.Dropped(), want-ringSize)
	}
	evs := tr.Events()
	for i, e := range evs {
		if i > 0 && e.Seq != evs[i-1].Seq+1 {
			t.Fatalf("seq gap in retained window: %d then %d", evs[i-1].Seq, e.Seq)
		}
		// Reconstruct the marker from the event's own (App, Cycle) stamp and
		// require every other field to match it: a torn event (fields from
		// two interleaved Emit calls) cannot pass.
		id := tagID(int(e.App), int(e.Cycle))
		if e.TraceID != id || e.SpanID != id+1 || e.ParentID != id+2 || e.Dur != int64(id) {
			t.Fatalf("torn event at seq %d: app=%d cycle=%d trace=%x span=%x parent=%x dur=%x",
				e.Seq, e.App, e.Cycle, e.TraceID, e.SpanID, e.ParentID, e.Dur)
		}
	}
}

// TestTracerConcurrentEmitWithReaders interleaves Emit with Events snapshots
// — the access pattern of a live /v1/trace scrape during a run — and requires
// every snapshot to be internally consistent (contiguous sequence numbers, no
// torn span fields).
func TestTracerConcurrentEmitWithReaders(t *testing.T) {
	tr := New(128)
	var writers sync.WaitGroup
	for g := 0; g < 4; g++ {
		writers.Add(1)
		go func(g int) {
			defer writers.Done()
			for i := 0; i < 2_000; i++ {
				id := tagID(g, i)
				tr.Emit(Event{Kind: KindJobQueued, App: int32(g), SM: -1,
					Cycle: uint64(i), TraceID: id, SpanID: id + 1})
			}
		}(g)
	}

	stop := make(chan struct{})
	errCh := make(chan string, 2)
	var readers sync.WaitGroup
	for r := 0; r < 2; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				evs := tr.Events()
				for i, e := range evs {
					if i > 0 && e.Seq != evs[i-1].Seq+1 {
						errCh <- "seq gap in concurrent snapshot"
						return
					}
					if id := tagID(int(e.App), int(e.Cycle)); e.TraceID != id || e.SpanID != id+1 {
						errCh <- "torn event in concurrent snapshot"
						return
					}
				}
			}
		}()
	}

	writers.Wait()
	close(stop)
	readers.Wait()
	select {
	case msg := <-errCh:
		t.Fatal(msg)
	default:
	}
	if tr.Total() != 8_000 {
		t.Fatalf("Total = %d, want 8000", tr.Total())
	}
}

// TestEmitWithSpanDoesNotAllocate pins the zero-alloc budget for the new RPC
// sites: a fully-populated cluster RPC event — span context, node name,
// duration — must still copy into the ring without a single allocation.
func TestEmitWithSpanDoesNotAllocate(t *testing.T) {
	tr := New(64)
	e := Event{
		Kind: KindClusterRPC, Wall: 12345, App: -1, SM: -1,
		Job: "n2", Note: "forward", Node: "n1",
		TraceID: 0xabc, SpanID: 0xdef, ParentID: 0x123,
		Dur: 987654, CacheHit: true,
	}
	avg := testing.AllocsPerRun(1000, func() {
		tr.Emit(e)
	})
	if avg > 0 {
		t.Fatalf("Emit with span fields allocates %.1f objects per call, want 0", avg)
	}
}
