package telemetry

import (
	"io"
	"math"
	"net/http"
	"strings"
	"testing"
)

func TestFormatParseSpanID(t *testing.T) {
	cases := []struct {
		id   uint64
		want string
	}{
		{0, ""},
		{1, "0000000000000001"},
		{0xabcdef0123456789, "abcdef0123456789"},
		{^uint64(0), "ffffffffffffffff"},
	}
	for _, c := range cases {
		if got := FormatSpanID(c.id); got != c.want {
			t.Errorf("FormatSpanID(%#x) = %q, want %q", c.id, got, c.want)
		}
		back, err := ParseSpanID(c.want)
		if err != nil || back != c.id {
			t.Errorf("ParseSpanID(%q) = %#x, %v; want %#x", c.want, back, err, c.id)
		}
	}
	if _, err := ParseSpanID("zzzz"); err == nil {
		t.Error("ParseSpanID accepted non-hex input")
	}
}

func TestSpanContextHeadersRoundTrip(t *testing.T) {
	sc := SpanContext{TraceID: 0xabc, SpanID: 0xdef}
	h := http.Header{}
	sc.SetHeaders(h)
	got := SpanFromHeaders(h)
	// The wire flips the caller's span into the callee's parent.
	if got.TraceID != sc.TraceID || got.ParentID != sc.SpanID || got.SpanID != 0 {
		t.Errorf("round trip = %+v, want trace %#x parent %#x", got, sc.TraceID, sc.SpanID)
	}

	// A zero context writes nothing; absent headers parse to zero.
	h2 := http.Header{}
	(SpanContext{}).SetHeaders(h2)
	if len(h2) != 0 {
		t.Errorf("zero context wrote headers: %v", h2)
	}
	if got := SpanFromHeaders(h2); got.Valid() {
		t.Errorf("absent headers parsed to %+v", got)
	}

	// Malformed trace id yields the zero context; malformed span id keeps
	// the trace (better a parentless span than a lost one).
	h3 := http.Header{}
	h3.Set(TraceIDHeader, "not-hex")
	if got := SpanFromHeaders(h3); got.Valid() {
		t.Errorf("malformed trace id parsed to %+v", got)
	}
	h4 := http.Header{}
	h4.Set(TraceIDHeader, FormatSpanID(0xabc))
	h4.Set(SpanIDHeader, "not-hex")
	got = SpanFromHeaders(h4)
	if got.TraceID != 0xabc || got.ParentID != 0 {
		t.Errorf("malformed span id = %+v, want trace kept, parent dropped", got)
	}
}

func TestSpanSourceDeterministic(t *testing.T) {
	a, b := NewSpanSource(7), NewSpanSource(7)
	ra, rb := a.Root(), b.Root()
	if ra != rb {
		t.Fatalf("same-seed roots differ: %+v vs %+v", ra, rb)
	}
	if !ra.Valid() || ra.SpanID == 0 || ra.ParentID != 0 {
		t.Errorf("root = %+v, want valid, parentless", ra)
	}
	if NewSpanSource(8).Root() == ra {
		t.Error("different seeds minted the same root")
	}
}

func TestSpanSourceChild(t *testing.T) {
	s := NewSpanSource(1)
	root := s.Root()
	child := s.Child(root)
	if child.TraceID != root.TraceID || child.ParentID != root.SpanID {
		t.Errorf("child %+v does not continue root %+v", child, root)
	}
	if child.SpanID == 0 || child.SpanID == root.SpanID {
		t.Errorf("child span id %#x not fresh", child.SpanID)
	}

	// A wire context (SpanID zero, ParentID carrying the remote span) keeps
	// that parent.
	wire := SpanContext{TraceID: root.TraceID, ParentID: 0x42}
	c2 := s.Child(wire)
	if c2.TraceID != root.TraceID || c2.ParentID != 0x42 {
		t.Errorf("wire child = %+v, want parent 0x42 carried through", c2)
	}

	// An invalid parent starts a fresh root.
	orphan := s.Child(SpanContext{})
	if !orphan.Valid() || orphan.ParentID != 0 {
		t.Errorf("orphan child = %+v, want a new root", orphan)
	}
}

func TestEventSpanAccessors(t *testing.T) {
	var e Event
	sc := SpanContext{TraceID: 1, SpanID: 2, ParentID: 3}
	e.SetSpan(sc)
	if got := e.Span(); got != sc {
		t.Errorf("Span() = %+v, want %+v", got, sc)
	}
}

func TestReadNDJSONStrictRoundTrip(t *testing.T) {
	events := []Event{
		{Kind: KindJobQueued, Seq: 1, Wall: 100, App: -1, SM: -1, Job: "j1",
			Node: "n1", TraceID: 0xabc, SpanID: 0xdef, ParentID: 0x123},
		{Kind: KindClusterRPC, Seq: 2, Wall: 200, App: -1, SM: -1, Job: "n2",
			Note: "forward", Node: "n1", Dur: 900, CacheHit: true,
			TraceID: 0xabc, SpanID: 0xbeef},
	}
	var sb strings.Builder
	if err := WriteNDJSON(&sb, events); err != nil {
		t.Fatal(err)
	}
	got, err := ReadNDJSONStrict(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("strict reader rejected our own output: %v", err)
	}
	if len(got) != 2 {
		t.Fatalf("read %d events, want 2", len(got))
	}
	for i := range events {
		if got[i].Span() != events[i].Span() {
			t.Errorf("event %d span = %+v, want %+v", i, got[i].Span(), events[i].Span())
		}
		if got[i].Kind != events[i].Kind || got[i].Job != events[i].Job || got[i].Node != events[i].Node {
			t.Errorf("event %d = %+v, want %+v", i, got[i], events[i])
		}
	}
}

func TestReadNDJSONStrictRejects(t *testing.T) {
	cases := []struct {
		name, line, wantErr string
	}{
		{"unknown kind", `{"kind":"job.exploded","seq":1,"app":-1,"sm":-1}`, "unknown event kind"},
		{"unknown field", `{"kind":"job.queued","seq":1,"app":-1,"sm":-1,"mystery":1}`, "mystery"},
		{"bad trace id", `{"kind":"job.queued","seq":1,"app":-1,"sm":-1,"trace_id":"nope"}`, "invalid trace_id"},
		{"bad span id", `{"kind":"job.queued","seq":1,"app":-1,"sm":-1,"span_id":"nope"}`, "invalid span_id"},
		{"bad parent id", `{"kind":"job.queued","seq":1,"app":-1,"sm":-1,"parent_id":"nope"}`, "invalid parent_id"},
		{"not json", `garbage`, "line 2"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			in := `{"kind":"job.queued","seq":1,"app":-1,"sm":-1}` + "\n" + c.line + "\n"
			_, err := ReadNDJSONStrict(strings.NewReader(in))
			if err == nil {
				t.Fatal("want error")
			}
			if !strings.Contains(err.Error(), c.wantErr) {
				t.Errorf("error %q does not mention %q", err, c.wantErr)
			}
			if !strings.Contains(err.Error(), "line 2") {
				t.Errorf("error %q does not name line 2", err)
			}
			// The permissive reader keeps what strict rejects (except raw
			// non-JSON, which nothing accepts).
			if c.name != "not json" && c.name != "bad trace id" &&
				c.name != "bad span id" && c.name != "bad parent id" {
				if _, err := ReadNDJSON(strings.NewReader(in)); err != nil {
					t.Errorf("permissive reader also rejected: %v", err)
				}
			}
		})
	}
}

func TestHistogramVecChildren(t *testing.T) {
	reg := NewRegistry()
	v := reg.HistogramVec("rpc_seconds", "RPC latency.", []float64{0.1, 1}, "method")
	steal := v.With("steal")
	steal.Observe(0.05)
	steal.Observe(0.5)
	v.With("forward").Observe(2)
	// Same labels resolve to the same child.
	v.With("steal").Observe(0.07)

	var fam FamilySnapshot
	for _, f := range reg.Snapshot() {
		if f.Name == "rpc_seconds" {
			fam = f
		}
	}
	if len(fam.Points) != 2 {
		t.Fatalf("%d children, want 2", len(fam.Points))
	}
	byLabel := map[string]PointSnapshot{}
	for _, p := range fam.Points {
		byLabel[p.LabelValues[0]] = p
	}
	if got := byLabel["steal"]; got.Count != 3 || got.BucketCounts[0] != 2 {
		t.Errorf("steal child = %+v, want 3 observations, 2 in the first bucket", got)
	}
	if got := byLabel["forward"]; got.Count != 1 || got.BucketCounts[2] != 1 {
		t.Errorf("forward child = %+v, want 1 observation in +Inf", got)
	}
}

func TestChromeTraceSpanArgs(t *testing.T) {
	events := []Event{
		{Kind: KindJobQueued, Seq: 1, Wall: 1000, App: -1, SM: -1, Job: "j1",
			Node: "n1", TraceID: 0xabc, SpanID: 0xdef, ParentID: 0x123},
		{Kind: KindJobDone, Seq: 2, Wall: 2000, App: -1, SM: -1, Job: "j1",
			Node: "n1", TraceID: 0xabc, SpanID: 0xdef, ParentID: 0x123},
	}
	var sb strings.Builder
	if err := WriteChromeTrace(&sb, events); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if err := ValidateChromeTrace([]byte(out)); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{FormatSpanID(0xabc), FormatSpanID(0xdef), `"node n1"`} {
		if !strings.Contains(out, want) {
			t.Errorf("chrome trace missing %q", want)
		}
	}
}

func TestTracerDefaultCapacity(t *testing.T) {
	tr := New(0)
	tr.Emit(Event{Kind: KindJobQueued, App: -1, SM: -1})
	if tr.Len() != 1 || cap(tr.Events()) == 0 {
		t.Errorf("default-capacity tracer: len %d", tr.Len())
	}
}

func TestKindStringUnknown(t *testing.T) {
	if got := Kind(255).String(); got != "unknown" {
		t.Errorf("Kind(255).String() = %q", got)
	}
	if got := KindFromString("no.such.kind"); got != 0 {
		t.Errorf("KindFromString = %v, want 0", got)
	}
}

func TestObserveIgnoresNaN(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("h_seconds", "H.", 0.1, 1)
	h.Observe(math.NaN())
	h.Observe(0.05)
	for _, f := range reg.Snapshot() {
		if f.Name == "h_seconds" && f.Points[0].Count != 1 {
			t.Errorf("count = %d, want 1 (NaN dropped)", f.Points[0].Count)
		}
	}
}

func TestMergeSnapshotsMismatchedBucketLengths(t *testing.T) {
	a := NewRegistry()
	a.Histogram("h", "H.", 0.1, 1).Observe(0.05)
	b := NewRegistry()
	b.Histogram("h", "H.", 0.1).Observe(0.05)
	merged := MergeSnapshots([]NodeSnapshot{
		{Node: "n1", Families: a.Snapshot()},
		{Node: "n2", Families: b.Snapshot()},
	})
	for _, f := range merged {
		if f.Name == "h" && f.Points[0].Count != 1 {
			t.Errorf("count = %d, want 1 (shorter-bucket node skipped)", f.Points[0].Count)
		}
	}
}

func TestNDJSONSkipsBlankLines(t *testing.T) {
	in := "\n" + `{"kind":"job.queued","seq":1,"app":-1,"sm":-1}` + "\n\n"
	for name, read := range map[string]func(io.Reader) ([]Event, error){
		"permissive": ReadNDJSON, "strict": ReadNDJSONStrict,
	} {
		got, err := read(strings.NewReader(in))
		if err != nil || len(got) != 1 {
			t.Errorf("%s: %d events, err %v; want 1, nil", name, len(got), err)
		}
	}
}
