package telemetry

import (
	"math"
	"sort"
)

// TimelinePoint is one interval of an application's estimate timeline.
type TimelinePoint struct {
	Cycle uint64
	Est   float64 // DASE's estimated all-SM slowdown for the interval
	// Err is the signed relative error (Est-Actual)/Actual against the
	// app's measured whole-run slowdown; NaN when no actual is known. The
	// paper's Eq. 26 error is its magnitude.
	Err float64
	MBB bool // interval classified memory-bandwidth-bound
}

// AppTimeline is one application's estimated-vs-actual slowdown record,
// assembled from a trace.
type AppTimeline struct {
	App    int
	Actual float64 // measured slowdown (0 when the trace holds none)
	Points []TimelinePoint
}

// MeanAbsErr returns the mean |Err| over intervals with a known actual
// (NaN when there are none).
func (a *AppTimeline) MeanAbsErr() float64 {
	var sum float64
	n := 0
	for _, p := range a.Points {
		if !math.IsNaN(p.Err) {
			sum += math.Abs(p.Err)
			n++
		}
	}
	if n == 0 {
		return math.NaN()
	}
	return sum / float64(n)
}

// MaxAbsErr returns the largest |Err| (NaN when no actual is known).
func (a *AppTimeline) MaxAbsErr() float64 {
	mx := math.NaN()
	for _, p := range a.Points {
		if !math.IsNaN(p.Err) && (math.IsNaN(mx) || math.Abs(p.Err) > mx) {
			mx = math.Abs(p.Err)
		}
	}
	return mx
}

// ErrorTimeline assembles per-application estimated-vs-actual slowdown
// timelines from a trace: per-interval estimates come from dase.app events,
// the ground truth from slowdown.actual events (the last one per app wins).
// Apps are returned in index order; apps with no estimate events are
// omitted.
func ErrorTimeline(events []Event) []AppTimeline {
	byApp := map[int]*AppTimeline{}
	actual := map[int]float64{}
	for i := range events {
		e := &events[i]
		switch e.Kind {
		case KindDASEApp:
			a := byApp[int(e.App)]
			if a == nil {
				a = &AppTimeline{App: int(e.App)}
				byApp[int(e.App)] = a
			}
			a.Points = append(a.Points, TimelinePoint{Cycle: e.Cycle, Est: e.Est, MBB: e.MBB})
		case KindActual:
			actual[int(e.App)] = e.Actual
		}
	}
	out := make([]AppTimeline, 0, len(byApp))
	for _, a := range byApp {
		a.Actual = actual[a.App]
		sort.SliceStable(a.Points, func(i, j int) bool { return a.Points[i].Cycle < a.Points[j].Cycle })
		for i := range a.Points {
			if a.Actual > 0 {
				a.Points[i].Err = (a.Points[i].Est - a.Actual) / a.Actual
			} else {
				a.Points[i].Err = math.NaN()
			}
		}
		out = append(out, *a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].App < out[j].App })
	return out
}
