package telemetry

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// JSONEvent is the NDJSON wire form of an Event: a flat object with
// omitempty on every field whose zero value means "absent" (App and SM keep
// their -1 sentinel explicitly, since 0 is a valid index for both).
type JSONEvent struct {
	Kind  string `json:"kind"`
	Seq   uint64 `json:"seq"`
	Cycle uint64 `json:"cycle,omitempty"`
	Wall  int64  `json:"wall_ns,omitempty"`
	App   int32  `json:"app"`
	SM    int32  `json:"sm"`

	Job  string `json:"job,omitempty"`
	Note string `json:"note,omitempty"`

	Alpha    float64 `json:"alpha,omitempty"`
	BLP      float64 `json:"blp,omitempty"`
	TimeBank float64 `json:"time_bank,omitempty"`
	TimeRow  float64 `json:"time_row,omitempty"`
	TimeLLC  float64 `json:"time_llc,omitempty"`
	MBB      bool    `json:"mbb,omitempty"`
	Est      float64 `json:"est,omitempty"`
	Actual   float64 `json:"actual,omitempty"`
	Served   uint64  `json:"served,omitempty"`
	SMs      int32   `json:"sms,omitempty"`

	CurScore  float64 `json:"cur_score,omitempty"`
	BestScore float64 `json:"best_score,omitempty"`
	Alloc     []int32 `json:"alloc,omitempty"`
	Realloc   bool    `json:"realloc,omitempty"`

	Attempt  int32 `json:"attempt,omitempty"`
	CacheHit bool  `json:"cache_hit,omitempty"`

	TraceID  string `json:"trace_id,omitempty"`
	SpanID   string `json:"span_id,omitempty"`
	ParentID string `json:"parent_id,omitempty"`
	Node     string `json:"node,omitempty"`

	Dur      int64   `json:"dur_ns,omitempty"`
	Deserved float64 `json:"deserved,omitempty"`
}

// toJSON converts an Event to its wire form.
func (e *Event) toJSON() JSONEvent {
	j := JSONEvent{
		Kind: e.Kind.String(), Seq: e.Seq, Cycle: e.Cycle, Wall: e.Wall,
		App: e.App, SM: e.SM, Job: e.Job, Note: e.Note,
		Alpha: e.Alpha, BLP: e.BLP,
		TimeBank: e.TimeBank, TimeRow: e.TimeRow, TimeLLC: e.TimeLLC,
		MBB: e.MBB, Est: e.Est, Actual: e.Actual, Served: e.Served, SMs: e.SMs,
		CurScore: e.CurScore, BestScore: e.BestScore, Realloc: e.Realloc,
		Attempt: e.Attempt, CacheHit: e.CacheHit,
		TraceID: FormatSpanID(e.TraceID), SpanID: FormatSpanID(e.SpanID),
		ParentID: FormatSpanID(e.ParentID), Node: e.Node,
		Dur: e.Dur, Deserved: e.Deserved,
	}
	if n := int(e.NApps); n > 0 && n <= MaxApps {
		j.Alloc = append(j.Alloc, e.Alloc[:n]...)
	}
	return j
}

// toEvent converts the wire form back to an Event.
func (j *JSONEvent) toEvent() Event {
	e := Event{
		Kind: KindFromString(j.Kind), Seq: j.Seq, Cycle: j.Cycle, Wall: j.Wall,
		App: j.App, SM: j.SM, Job: j.Job, Note: j.Note,
		Alpha: j.Alpha, BLP: j.BLP,
		TimeBank: j.TimeBank, TimeRow: j.TimeRow, TimeLLC: j.TimeLLC,
		MBB: j.MBB, Est: j.Est, Actual: j.Actual, Served: j.Served, SMs: j.SMs,
		CurScore: j.CurScore, BestScore: j.BestScore, Realloc: j.Realloc,
		Attempt: j.Attempt, CacheHit: j.CacheHit,
		Node: j.Node, Dur: j.Dur, Deserved: j.Deserved,
	}
	e.TraceID, _ = ParseSpanID(j.TraceID)
	e.SpanID, _ = ParseSpanID(j.SpanID)
	e.ParentID, _ = ParseSpanID(j.ParentID)
	if n := len(j.Alloc); n > 0 && n <= MaxApps {
		e.NApps = int32(n)
		copy(e.Alloc[:], j.Alloc)
	}
	return e
}

// WriteNDJSON streams events as newline-delimited JSON, one object per line,
// oldest first.
func WriteNDJSON(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range events {
		if err := enc.Encode(events[i].toJSON()); err != nil {
			return fmt.Errorf("telemetry: encode event %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// ReadNDJSON parses an NDJSON event stream (blank lines are skipped); events
// with an unknown kind are kept with Kind 0 so foreign annotations survive a
// round trip.
func ReadNDJSON(r io.Reader) ([]Event, error) {
	var out []Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var j JSONEvent
		if err := json.Unmarshal(raw, &j); err != nil {
			return nil, fmt.Errorf("telemetry: line %d: %w", line, err)
		}
		out = append(out, j.toEvent())
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("telemetry: read ndjson: %w", err)
	}
	return out, nil
}

// ReadNDJSONStrict parses an NDJSON event stream like ReadNDJSON, but treats
// schema deviations as errors instead of smoothing them over: unknown event
// kinds, unknown fields, and malformed trace ids all fail, naming the
// offending line. This is the validation mode cmd/dasetrace and CI use so a
// corrupt or foreign stream is rejected loudly rather than silently rendered
// as a partial timeline.
func ReadNDJSONStrict(r io.Reader) ([]Event, error) {
	var out []Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var j JSONEvent
		dec := json.NewDecoder(bytes.NewReader(raw))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&j); err != nil {
			return nil, fmt.Errorf("telemetry: line %d: %w", line, err)
		}
		if KindFromString(j.Kind) == 0 {
			return nil, fmt.Errorf("telemetry: line %d: unknown event kind %q", line, j.Kind)
		}
		for _, p := range [...]struct{ name, v string }{
			{"trace_id", j.TraceID}, {"span_id", j.SpanID}, {"parent_id", j.ParentID},
		} {
			if _, err := ParseSpanID(p.v); err != nil {
				return nil, fmt.Errorf("telemetry: line %d: invalid %s %q", line, p.name, p.v)
			}
		}
		out = append(out, j.toEvent())
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("telemetry: read ndjson: %w", err)
	}
	return out, nil
}

// chromeEvent is one entry of the Chrome trace-event format's traceEvents
// array (the subset of the spec we emit: metadata M, complete X, instant i,
// and counter C phases).
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"` // microseconds
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"` // instant scope
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the JSON-object form of a Chrome trace.
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// Chrome trace process ids: the daemon's wall-clock job spans and the
// simulation's cycle-domain events live on separate timelines, so they get
// separate "processes" in the viewer.
const (
	chromePidJobs   = 1
	chromePidCycles = 2
	// chromePidNodeBase is the first pid used for per-node tracks in merged
	// cross-node traces: events carrying a Node name get one synthetic
	// process per node, assigned in sorted node-name order, so a forwarded
	// or stolen job reads as spans hopping across node tracks.
	chromePidNodeBase = 16
	// chromeTidRPC is the per-node thread carrying cluster RPC spans and
	// routing decisions.
	chromeTidRPC = 1000
)

// WriteChromeTrace renders events as Chrome trace-event JSON, loadable in
// chrome://tracing or Perfetto. Two synthetic processes separate the time
// domains: pid 1 carries the daemon's job lifecycle on wall-clock
// microseconds; pid 2 carries engine and scheduler events with one
// microsecond standing in for one simulated cycle. Per-app estimates become
// counter tracks ("dase.est", "slowdown.actual", "interval.alpha"), DASE
// internals and SM migrations become instant events, and each job becomes a
// complete span from queued to terminal.
func WriteChromeTrace(w io.Writer, events []Event) error {
	tr := chromeTrace{DisplayTimeUnit: "ms", TraceEvents: []chromeEvent{
		{Name: "process_name", Ph: "M", Pid: chromePidJobs, Tid: 0,
			Args: map[string]any{"name": "dased jobs (wall clock)"}},
		{Name: "process_name", Ph: "M", Pid: chromePidCycles, Tid: 0,
			Args: map[string]any{"name": "simulation (cycle domain)"}},
	}}

	// Merged cross-node traces: one synthetic process per node name, in
	// sorted order. Events without a Node keep the legacy pids, so
	// single-process traces render exactly as before.
	nodePid := map[string]int{}
	var nodeOrder []string
	for i := range events {
		if n := events[i].Node; n != "" {
			if _, ok := nodePid[n]; !ok {
				nodePid[n] = 0
				nodeOrder = append(nodeOrder, n)
			}
		}
	}
	sort.Strings(nodeOrder)
	for i, n := range nodeOrder {
		nodePid[n] = chromePidNodeBase + i
		tr.TraceEvents = append(tr.TraceEvents,
			chromeEvent{Name: "process_name", Ph: "M", Pid: nodePid[n], Tid: 0,
				Args: map[string]any{"name": "node " + n}},
			chromeEvent{Name: "thread_name", Ph: "M", Pid: nodePid[n], Tid: chromeTidRPC,
				Args: map[string]any{"name": "cluster rpc"}})
	}
	jobPid := func(node string) int {
		if p, ok := nodePid[node]; ok {
			return p
		}
		return chromePidJobs
	}

	// Pass 1: job span boundaries (queued -> terminal wall times).
	type span struct {
		queued, done int64
		node         string
		trace        uint64
	}
	spans := map[string]*span{}
	var jobOrder []string
	for i := range events {
		e := &events[i]
		switch e.Kind {
		case KindJobQueued:
			if _, ok := spans[e.Job]; !ok {
				spans[e.Job] = &span{queued: e.Wall, node: e.Node, trace: e.TraceID}
				jobOrder = append(jobOrder, e.Job)
			}
		case KindJobDone:
			if sp, ok := spans[e.Job]; ok {
				sp.done = e.Wall
			}
		}
	}
	sort.Strings(jobOrder)
	jobTid := make(map[string]int, len(jobOrder))
	for i, id := range jobOrder {
		jobTid[id] = i + 1
	}
	for _, id := range jobOrder {
		sp := spans[id]
		if sp.done > sp.queued {
			ev := chromeEvent{
				Name: "job " + id, Ph: "X",
				Ts: float64(sp.queued) / 1e3, Dur: float64(sp.done-sp.queued) / 1e3,
				Pid: jobPid(sp.node), Tid: jobTid[id],
			}
			if sp.trace != 0 {
				ev.Args = map[string]any{"trace_id": FormatSpanID(sp.trace)}
			}
			tr.TraceEvents = append(tr.TraceEvents, ev)
		}
	}

	// Pass 2: one chrome event per trace event.
	for i := range events {
		e := &events[i]
		switch e.Kind {
		case KindJobQueued, KindJobStarted, KindJobRetry, KindJobDone:
			tid := jobTid[e.Job]
			if tid == 0 {
				tid = 1
			}
			args := map[string]any{"job": e.Job}
			if e.Attempt > 0 {
				args["attempt"] = e.Attempt
			}
			if e.Note != "" {
				args["note"] = e.Note
			}
			if e.Kind == KindJobDone {
				args["cache_hit"] = e.CacheHit
			}
			addSpanArgs(args, e)
			tr.TraceEvents = append(tr.TraceEvents, chromeEvent{
				Name: e.Kind.String(), Ph: "i", Ts: float64(e.Wall) / 1e3,
				Pid: jobPid(e.Node), Tid: tid, S: "t", Args: args,
			})
		case KindClusterRPC:
			args := map[string]any{"peer": e.Job, "ok": e.CacheHit}
			addSpanArgs(args, e)
			tr.TraceEvents = append(tr.TraceEvents, chromeEvent{
				Name: "rpc " + e.Note, Ph: "X",
				Ts: float64(e.Wall) / 1e3, Dur: float64(e.Dur) / 1e3,
				Pid: jobPid(e.Node), Tid: chromeTidRPC, Args: args,
			})
		case KindJobRouted:
			args := map[string]any{"job": e.Job, "peer": e.Note}
			addSpanArgs(args, e)
			tr.TraceEvents = append(tr.TraceEvents, chromeEvent{
				Name: "job.routed", Ph: "i", Ts: float64(e.Wall) / 1e3,
				Pid: jobPid(e.Node), Tid: chromeTidRPC, S: "t", Args: args,
			})
		case KindInterval:
			tr.TraceEvents = append(tr.TraceEvents, chromeEvent{
				Name: fmt.Sprintf("interval.alpha app%d", e.App), Ph: "C",
				Ts: float64(e.Cycle), Pid: chromePidCycles, Tid: 1,
				Args: map[string]any{"alpha": e.Alpha, "blp": e.BLP, "served": e.Served, "sms": e.SMs},
			})
		case KindDASEApp:
			tr.TraceEvents = append(tr.TraceEvents,
				chromeEvent{
					Name: fmt.Sprintf("dase.est app%d", e.App), Ph: "C",
					Ts: float64(e.Cycle), Pid: chromePidCycles, Tid: 1,
					Args: map[string]any{"slowdown": e.Est},
				},
				chromeEvent{
					Name: fmt.Sprintf("dase.app app%d", e.App), Ph: "i",
					Ts: float64(e.Cycle), Pid: chromePidCycles, Tid: 1, S: "t",
					Args: map[string]any{
						"alpha": e.Alpha, "blp": e.BLP,
						"time_bank": e.TimeBank, "time_row": e.TimeRow, "time_llc": e.TimeLLC,
						"mbb": e.MBB, "est": e.Est, "sms": e.SMs,
					},
				})
		case KindActual:
			tr.TraceEvents = append(tr.TraceEvents, chromeEvent{
				Name: fmt.Sprintf("slowdown.actual app%d", e.App), Ph: "C",
				Ts: float64(e.Cycle), Pid: chromePidCycles, Tid: 1,
				Args: map[string]any{"slowdown": e.Actual},
			})
		case KindSchedDecision:
			args := map[string]any{
				"policy": e.Note, "cur_score": e.CurScore, "best_score": e.BestScore,
				"realloc": e.Realloc,
			}
			if n := int(e.NApps); n > 0 && n <= MaxApps {
				args["alloc"] = fmt.Sprint(e.Alloc[:n])
			}
			tr.TraceEvents = append(tr.TraceEvents, chromeEvent{
				Name: "sched.decision", Ph: "i", Ts: float64(e.Cycle),
				Pid: chromePidCycles, Tid: 1, S: "t", Args: args,
			})
		case KindSMDrain, KindSMAssign:
			tr.TraceEvents = append(tr.TraceEvents, chromeEvent{
				Name: fmt.Sprintf("%s sm%d", e.Kind, e.SM), Ph: "i",
				Ts: float64(e.Cycle), Pid: chromePidCycles, Tid: 1, S: "t",
				Args: map[string]any{"app": e.App},
			})
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(tr)
}

// addSpanArgs attaches the event's trace context to a chrome event's args.
func addSpanArgs(args map[string]any, e *Event) {
	if e.TraceID == 0 {
		return
	}
	args["trace_id"] = FormatSpanID(e.TraceID)
	if e.SpanID != 0 {
		args["span_id"] = FormatSpanID(e.SpanID)
	}
	if e.ParentID != 0 {
		args["parent_id"] = FormatSpanID(e.ParentID)
	}
}

// ValidateChromeTrace checks that data is structurally valid Chrome
// trace-event JSON: an object with a traceEvents array whose entries carry a
// name, a known phase, numeric ts/pid/tid, a dur on complete events, and
// JSON-object args. It is the schema check CI runs against a freshly traced
// simulation, and a debugging aid for foreign traces.
func ValidateChromeTrace(data []byte) error {
	var doc struct {
		TraceEvents []map[string]json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("telemetry: chrome trace is not valid JSON: %w", err)
	}
	if doc.TraceEvents == nil {
		return fmt.Errorf("telemetry: chrome trace has no traceEvents array")
	}
	known := map[string]bool{"M": true, "X": true, "i": true, "C": true, "B": true, "E": true}
	for i, ev := range doc.TraceEvents {
		var name, ph string
		if err := unmarshalField(ev, "name", &name); err != nil || name == "" {
			return fmt.Errorf("telemetry: traceEvents[%d]: missing or invalid name", i)
		}
		if err := unmarshalField(ev, "ph", &ph); err != nil || !known[ph] {
			return fmt.Errorf("telemetry: traceEvents[%d] (%s): missing or unknown phase %q", i, name, ph)
		}
		var num float64
		for _, f := range []string{"ts", "pid", "tid"} {
			if ph == "M" && f == "ts" {
				continue // metadata events may omit ts
			}
			if err := unmarshalField(ev, f, &num); err != nil {
				return fmt.Errorf("telemetry: traceEvents[%d] (%s): field %s: %v", i, name, f, err)
			}
		}
		if ph == "X" {
			if err := unmarshalField(ev, "dur", &num); err != nil || num < 0 {
				return fmt.Errorf("telemetry: traceEvents[%d] (%s): complete event needs non-negative dur", i, name)
			}
		}
		if raw, ok := ev["args"]; ok {
			var args map[string]any
			if err := json.Unmarshal(raw, &args); err != nil {
				return fmt.Errorf("telemetry: traceEvents[%d] (%s): args is not an object: %v", i, name, err)
			}
			if ph == "C" {
				for k, v := range args {
					switch v.(type) {
					case float64, bool:
					default:
						return fmt.Errorf("telemetry: traceEvents[%d] (%s): counter arg %q is not numeric", i, name, k)
					}
				}
			}
		}
	}
	return nil
}

// unmarshalField decodes one field of a raw JSON object into dst; a missing
// field is an error.
func unmarshalField(obj map[string]json.RawMessage, key string, dst any) error {
	raw, ok := obj[key]
	if !ok {
		return fmt.Errorf("missing")
	}
	return json.Unmarshal(raw, dst)
}
